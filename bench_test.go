// Package repro's root benchmark suite regenerates every table and figure
// of the paper: run `go test -bench=. -benchmem` and each BenchmarkFigN /
// BenchmarkTable1 emits the corresponding ASCII table once (on the first
// iteration) and then times the underlying experiment. The cmd/ binaries
// print the same numbers at fuller fidelity.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/nn"
	"repro/internal/simgrad"
	"repro/internal/tensor"
)

// benchOpt keeps the per-iteration cost of the figure benches moderate;
// use cmd/sidco-* for full-fidelity runs.
var benchOpt = harness.Options{Iters: 30, SimScale: 400, Seed: 1}

// onceWriter returns os.Stdout on the first call per key and io.Discard
// afterwards, so each figure prints exactly once under -bench.
var (
	onceMu   sync.Mutex
	oncePerK = map[string]bool{}
)

func onceWriter(key string) io.Writer {
	onceMu.Lock()
	defer onceMu.Unlock()
	if oncePerK[key] {
		return io.Discard
	}
	oncePerK[key] = true
	return os.Stdout
}

func benchFigure(b *testing.B, key string, f func(w io.Writer) error) {
	b.Helper()
	if testing.Short() {
		// Most figure regenerations take seconds per run; `go test -short
		// -bench .` keeps only the raw compressor micro-benches.
		b.Skipf("figure bench %s skipped in -short mode", key)
	}
	for i := 0; i < b.N; i++ {
		if err := f(onceWriter(key)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	benchFigure(b, "table1", func(w io.Writer) error { harness.Table1Catalog(w); return nil })
}

func BenchmarkFig1MicroSpeedupAndQuality(b *testing.B) {
	benchFigure(b, "fig1", func(w io.Writer) error { return harness.Fig1(w, benchOpt) })
}

func BenchmarkFig2FittingNoEC(b *testing.B) {
	benchFigure(b, "fig2", func(w io.Writer) error { return harness.Fig2(w, harness.Options{Iters: 40, Seed: 2}) })
}

func BenchmarkFig3RNNBenchmarks(b *testing.B) {
	benchFigure(b, "fig3", func(w io.Writer) error { return harness.Fig3(w, benchOpt) })
}

func BenchmarkFig4LossAndEstimation(b *testing.B) {
	benchFigure(b, "fig4", func(w io.Writer) error { return harness.Fig4(w, harness.Options{Iters: 30, Seed: 3}) })
}

func BenchmarkFig5CIFAR(b *testing.B) {
	benchFigure(b, "fig5", func(w io.Writer) error { return harness.Fig5(w, benchOpt) })
}

func BenchmarkFig6ImageNet(b *testing.B) {
	benchFigure(b, "fig6", func(w io.Writer) error { return harness.Fig6(w, benchOpt) })
}

func BenchmarkFig7Compressibility(b *testing.B) {
	benchFigure(b, "fig7", func(w io.Writer) error { return harness.Fig7(w, harness.Options{Iters: 30, Seed: 4}) })
}

func BenchmarkFig8FittingWithEC(b *testing.B) {
	benchFigure(b, "fig8", func(w io.Writer) error { return harness.Fig8(w, harness.Options{Iters: 40, Seed: 2}) })
}

func BenchmarkFig9SmoothedRatios(b *testing.B) {
	benchFigure(b, "fig9", func(w io.Writer) error { return harness.Fig9(w, benchOpt) })
}

func BenchmarkFig10LossVsWallTime(b *testing.B) {
	benchFigure(b, "fig10", func(w io.Writer) error {
		return harness.Fig10(w, harness.Options{Iters: 30, SimScale: 400, Seed: 5})
	})
}

func BenchmarkFig11VGG19Breakdown(b *testing.B) {
	benchFigure(b, "fig11", func(w io.Writer) error { return harness.Fig11(w, benchOpt) })
}

func BenchmarkFig12CPUDevice(b *testing.B) {
	benchFigure(b, "fig12", func(w io.Writer) error { return harness.Fig12(w, benchOpt) })
}

func BenchmarkFig13MultiGPUNode(b *testing.B) {
	benchFigure(b, "fig13", func(w io.Writer) error { return harness.Fig13(w, benchOpt) })
}

func BenchmarkFig14And15ModelLatency(b *testing.B) {
	benchFigure(b, "fig14", func(w io.Writer) error { return harness.Fig14And15(w, benchOpt) })
}

func BenchmarkFig16And17SyntheticTensors(b *testing.B) {
	benchFigure(b, "fig16", func(w io.Writer) error { return harness.Fig16And17(w, benchOpt) })
}

func BenchmarkFig18AllSIDs(b *testing.B) {
	benchFigure(b, "fig18", func(w io.Writer) error {
		// One CNN + one RNN workload keeps the bench tractable; the
		// sidco-train binary covers all six.
		return harness.TrainingFigure(w, harness.TrainingFigureConfig{
			Title:     "Fig 18",
			Workloads: []string{"resnet20-cifar10", "lstm-ptb"},
			Opt:       benchOpt,
		})
	})
}

// Ablation benches for the design choices called out in DESIGN.md §4.

func BenchmarkAblationStages(b *testing.B) {
	benchFigure(b, "ab-stages", func(w io.Writer) error { return harness.AblationStages(w, benchOpt) })
}

func BenchmarkAblationDelta1(b *testing.B) {
	benchFigure(b, "ab-delta1", func(w io.Writer) error { return harness.AblationDelta1(w, benchOpt) })
}

func BenchmarkAblationAdapt(b *testing.B) {
	benchFigure(b, "ab-adapt", func(w io.Writer) error { return harness.AblationAdapt(w, benchOpt) })
}

func BenchmarkAblationSID(b *testing.B) {
	benchFigure(b, "ab-sid", func(w io.Writer) error { return harness.AblationSID(w, benchOpt) })
}

func BenchmarkAblationGammaApprox(b *testing.B) {
	benchFigure(b, "ab-gamma", func(w io.Writer) error { return harness.AblationGammaApprox(w, benchOpt) })
}

func BenchmarkAblationEC(b *testing.B) {
	benchFigure(b, "ab-ec", func(w io.Writer) error { return harness.AblationEC(w, harness.Options{Iters: 25, Seed: 7}) })
}

// Raw compressor throughput on this machine (real wall clock, 1M-element
// gradient at delta = 0.001) — the Go-native counterpart of Figure 1.

func rawGrad(dim int) []float64 {
	gen := simgrad.New(simgrad.Config{
		Dim: dim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01, Seed: 9,
	})
	return gen.Next()
}

func benchCompressor(b *testing.B, c compress.Compressor, delta float64) {
	b.Helper()
	g := rawGrad(1 << 20)
	b.SetBytes(int64(8 * len(g)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(g, delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressTopK(b *testing.B)      { benchCompressor(b, compress.NewTopK(), 0.001) }
func BenchmarkCompressDGC(b *testing.B)       { benchCompressor(b, compress.NewDGC(1), 0.001) }
func BenchmarkCompressRedSync(b *testing.B)   { benchCompressor(b, compress.NewRedSync(), 0.001) }
func BenchmarkCompressGaussianK(b *testing.B) { benchCompressor(b, compress.NewGaussianKSGD(), 0.001) }
func BenchmarkCompressSIDCoE(b *testing.B)    { benchCompressor(b, core.NewE(), 0.001) }
func BenchmarkCompressSIDCoGP(b *testing.B)   { benchCompressor(b, core.NewGammaGP(), 0.001) }
func BenchmarkCompressSIDCoP(b *testing.B)    { benchCompressor(b, core.NewGP(), 0.001) }

// Streaming fast-path throughput: the same compressors through
// CompressInto over reused sparse storage. Run with -benchmem — the
// whole point of the pipeline is the 0 allocs/op column.

func benchCompressInto(b *testing.B, c compress.Compressor, delta float64) {
	b.Helper()
	g := rawGrad(1 << 20)
	dst := &tensor.Sparse{}
	if err := c.CompressInto(dst, g, delta); err != nil { // warm scratch
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(g)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.CompressInto(dst, g, delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressIntoTopK(b *testing.B)    { benchCompressInto(b, compress.NewTopK(), 0.001) }
func BenchmarkCompressIntoDGC(b *testing.B)     { benchCompressInto(b, compress.NewDGC(1), 0.001) }
func BenchmarkCompressIntoRedSync(b *testing.B) { benchCompressInto(b, compress.NewRedSync(), 0.001) }
func BenchmarkCompressIntoGaussianK(b *testing.B) {
	benchCompressInto(b, compress.NewGaussianKSGD(), 0.001)
}
func BenchmarkCompressIntoSIDCoE(b *testing.B)  { benchCompressInto(b, core.NewE(), 0.001) }
func BenchmarkCompressIntoSIDCoGP(b *testing.B) { benchCompressInto(b, core.NewGammaGP(), 0.001) }
func BenchmarkCompressIntoSIDCoP(b *testing.B)  { benchCompressInto(b, core.NewGP(), 0.001) }

// Multi-core fan-out: the streaming path at increasing Parallelism for
// the compressors whose passes fan out. Selections are bit-identical at
// every P (pinned by internal/harness tests); this bench shows what the
// fan-out buys on this machine's cores.
func BenchmarkCompressIntoParallel(b *testing.B) {
	factories := []struct {
		name string
		mk   func() compress.Compressor
	}{
		{"topk", func() compress.Compressor { return compress.NewTopK() }},
		{"redsync", func() compress.Compressor { return compress.NewRedSync() }},
		{"sidco-gp", func() compress.Compressor { return core.NewGammaGP() }},
	}
	for _, f := range factories {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/p%d", f.name, p), func(b *testing.B) {
				c := f.mk()
				compress.SetParallelism(c, p)
				benchCompressInto(b, c, 0.001)
			})
		}
	}
}

// BenchmarkTrainerStep measures one synchronous data-parallel step of a
// small dense model with EC+SIDCo compression — the -benchmem guard on
// the end-to-end zero-allocation pipeline (expected: a handful of
// goroutine-spawn allocations per step, nothing proportional to model
// or worker state).
func BenchmarkTrainerStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	model := nn.NewSequential(
		nn.NewDense("d1", 64, 48, rng),
		&nn.ReLU{},
		nn.NewDense("d2", 48, 10, rng),
	)
	const batch, workers = 16, 4
	xs := make([]*nn.Tensor, workers)
	ts := make([][]int, workers)
	for w := range xs {
		xs[w] = nn.NewTensor(batch, 64)
		ts[w] = make([]int, batch)
	}
	tr, err := dist.NewTrainer(dist.TrainerConfig{
		Workers: workers,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			x, targets := xs[worker], ts[worker]
			for i := range targets {
				targets[i] = rng.Intn(10)
				for j := 0; j < 64; j++ {
					x.Data[i*64+j] = rng.NormFloat64()
				}
			}
			return x, targets
		},
		NewCompressor: func() compress.Compressor { return core.NewE() },
		Delta:         0.01,
		EC:            true,
		Seed:          3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
