// Image classification with 8 simulated workers: trains the same conv net
// under no compression, exact Top-k, and SIDCo at delta = 0.01, printing
// the loss trajectory of each — the CIFAR-10 experiment of the paper in
// miniature.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/nn"
)

func buildTrainer(compName string, seed int64) (*dist.Trainer, error) {
	rng := rand.New(rand.NewSource(seed))
	model := nn.NewSequential(
		nn.NewConv2D("c1", 3, 8, 3, rng),
		&nn.ReLU{},
		&nn.MaxPool2D{},
		nn.NewConv2D("c2", 8, 8, 3, rng),
		&nn.ReLU{},
		&nn.Flatten{},
		nn.NewDense("fc", 8*3*3, 10, rng),
	)
	ds := data.NewImages(data.ImagesConfig{N: 1024, Classes: 10, Seed: seed})
	var factory func() compress.Compressor
	switch compName {
	case "none":
	case "topk":
		factory = func() compress.Compressor { return compress.NewTopK() }
	case "sidco-e":
		factory = func() compress.Compressor { return core.NewE() }
	}
	return dist.NewTrainer(dist.TrainerConfig{
		Workers: 8,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			return ds.Batch(rng, 16)
		},
		NewCompressor: factory,
		Delta:         0.01,
		EC:            true,
		Seed:          seed,
	})
}

func main() {
	const iters = 150
	for _, name := range []string{"none", "topk", "sidco-e"} {
		tr, err := buildTrainer(name, 7)
		if err != nil {
			log.Fatal(err)
		}
		losses, ratios, err := tr.Run(iters)
		if err != nil {
			log.Fatal(err)
		}
		final := 0.0
		for _, l := range losses[iters-10:] {
			final += l
		}
		final /= 10
		ratio := 0.0
		for _, r := range ratios {
			ratio += r
		}
		ratio /= float64(len(ratios))
		fmt.Printf("%-8s  params=%d  final loss=%.4f", name, tr.Dim(), final)
		if name != "none" {
			fmt.Printf("  mean k-hat/k=%.3f", ratio)
		}
		fmt.Println()
	}
	fmt.Println("\nSIDCo matches Top-k convergence while estimating the threshold in O(d).")
}
