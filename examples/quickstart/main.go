// Quickstart: compress one gradient vector with SIDCo and compare the
// estimated threshold against the exact Top-k oracle.
package main

import (
	"fmt"
	"log"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/simgrad"
	"repro/internal/tensor"
)

func main() {
	// A synthetic 1M-element gradient with the heavy-tailed, compressible
	// statistics of real DNN training (Property 2 of the paper).
	gen := simgrad.New(simgrad.Config{
		Dim:    1_000_000,
		Family: simgrad.FamilyDoubleGamma,
		Shape:  0.6,
		Scale:  0.01,
		Seed:   42,
	})
	g := gen.Next()

	const delta = 0.001 // keep the top 0.1%
	k := compress.TargetK(len(g), delta)

	// SIDCo-E: multi-stage double-exponential threshold estimation.
	sidco := core.NewE()
	sparse, err := sidco.Compress(g, delta)
	if err != nil {
		log.Fatal(err)
	}

	oracle := tensor.TopKThreshold(g, k)
	fmt.Printf("target k:            %d (delta=%g)\n", k, delta)
	fmt.Printf("SIDCo selected:      %d elements (k-hat/k = %.3f)\n",
		sparse.NNZ(), float64(sparse.NNZ())/float64(k))
	fmt.Printf("SIDCo threshold:     %.6g\n", sidco.LastThreshold())
	fmt.Printf("oracle threshold:    %.6g\n", oracle)
	fmt.Printf("stages used:         %d\n", sidco.LastStagesUsed())

	// The selection error relative to the best possible k-sparse vector.
	idx, _ := tensor.TopKSelect(g, k)
	best := tensor.SparsificationError(g, idx)
	got := tensor.SparsificationError(g, sparse.Idx)
	fmt.Printf("sparsification error: %.6g (Top-k oracle: %.6g)\n", got, best)
}
