// Threshold estimator shoot-out: streams an evolving, heavy-tailed
// gradient sequence (with outliers) through every estimator and prints
// each one's achieved-vs-target selection ratio — a live rendition of
// the paper's Figure 1c.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/simgrad"
)

func main() {
	const (
		dim   = 500_000
		delta = 0.001
		iters = 50
	)
	estimators := []compress.Compressor{
		compress.NewTopK(),
		compress.NewDGC(3),
		compress.NewRedSync(),
		compress.NewGaussianKSGD(),
		core.NewE(),
		core.NewGammaGP(),
		core.NewGP(),
	}
	k := compress.TargetK(dim, delta)
	fmt.Printf("d=%d, delta=%g, k=%d, %d iterations of an evolving gradient stream\n\n",
		dim, delta, k, iters)
	fmt.Printf("%-12s %12s %12s %14s\n", "estimator", "mean k^/k", "worst k^/k", "|log err| avg")

	for _, est := range estimators {
		gen := simgrad.New(simgrad.Config{
			Dim:         dim,
			Family:      simgrad.FamilyDoubleGamma,
			Shape:       0.55,
			Scale:       0.01,
			ScaleDecay:  1e-3,
			SharpenRate: 1e-3,
			OutlierFrac: 1e-5, OutlierScale: 500,
			Seed: 99,
		})
		sum, worst, logErr := 0.0, 1.0, 0.0
		buf := make([]float64, dim)
		for i := 0; i < iters; i++ {
			gen.Fill(buf)
			s, err := est.Compress(buf, delta)
			if err != nil {
				log.Fatal(err)
			}
			r := float64(s.NNZ()) / float64(k)
			sum += r
			if math.Abs(math.Log(math.Max(r, 1e-9))) > math.Abs(math.Log(math.Max(worst, 1e-9))) {
				worst = r
			}
			logErr += math.Abs(math.Log(math.Max(r, 1e-9)))
		}
		fmt.Printf("%-12s %12.4f %12.4f %14.4f\n",
			est.Name(), sum/iters, worst, logErr/iters)
	}
	fmt.Println("\nTop-k is exact by construction; DGC tracks it via sampling; SIDCo")
	fmt.Println("matches both in O(d) while RedSync/GaussianKSGD drift off target.")
}
