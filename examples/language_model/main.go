// Language modelling with gradient compression: an LSTM next-token model
// on a synthetic Markov corpus, trained by 4 workers with SIDCo at an
// aggressive ratio (delta = 0.001) plus error feedback — the PTB
// experiment of the paper in miniature, reporting perplexity.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/nn"
)

func main() {
	const (
		vocab  = 30
		embDim = 16
		hidden = 64
		seqLen = 12
		iters  = 200
	)
	rng := rand.New(rand.NewSource(11))
	model := nn.NewSequential(
		nn.NewEmbedding("emb", vocab, embDim, rng),
		nn.NewLSTM("lstm", embDim, hidden, rng),
		nn.NewTimeDistributed(nn.NewDense("out", hidden, vocab, rng)),
	)
	corpus := data.NewCorpus(data.CorpusConfig{Tokens: 50_000, Vocab: vocab, Seed: 11})

	sidco := func() compress.Compressor { return core.NewE() }
	trainer, err := dist.NewTrainer(dist.TrainerConfig{
		Workers: 4,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.Momentum{LR: 0.2, Mu: 0.9, Nesterov: true},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			return corpus.Batch(rng, 8, seqLen)
		},
		NewCompressor: sidco,
		Delta:         0.001,
		EC:            true,
		ClipNorm:      5,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LSTM LM: %d parameters, 4 workers, delta=0.001, SIDCo-E + EC\n\n", trainer.Dim())
	for i := 0; i < iters; i++ {
		loss, err := trainer.Step()
		if err != nil {
			log.Fatal(err)
		}
		if (i+1)%25 == 0 {
			fmt.Printf("iter %4d  loss %.4f  perplexity %8.2f  k-hat/k %.3f\n",
				i+1, loss, nn.Perplexity(loss), trainer.LastRatio)
		}
	}
	fmt.Println("\nOnly 0.1% of the gradient crosses the wire each iteration; error")
	fmt.Println("feedback re-injects the suppressed mass so perplexity still falls.")
}
