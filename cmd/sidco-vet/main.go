// Command sidco-vet runs the repo's static-analysis suite — the four
// analyzers in internal/analysis that enforce the determinism,
// zero-alloc, lock-discipline and error-taxonomy invariants — over a
// set of package patterns, in the style of a go/analysis multichecker.
//
// Usage:
//
//	sidco-vet [-c analyzer,...] [packages]
//
// Patterns default to ./... relative to the current directory. Each
// finding prints as
//
//	file:line:col: analyzer: message
//
// and any finding makes the process exit 1, so the CI quick gate can
// run `go run ./cmd/sidco-vet ./...` and fail the build on a
// violation. -c restricts the run to a comma-separated subset of
// analyzers (determinism, hotpath, lockcheck, errclass).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	checks := flag.String("c", "", "comma-separated analyzers to run (default: all)")
	flag.Usage = usage
	flag.Parse()

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sidco-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sidco-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sidco-vet:", err)
		os.Exit(2)
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sidco-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: sidco-vet [-c analyzer,...] [packages]\n\nAnalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}
