// Command sidco-micro regenerates the paper's micro-benchmarks: the
// compression speed-up and latency figures (1, 12, 14-17) plus a real Go
// wall-clock measurement on this machine.
//
// Usage:
//
//	sidco-micro -fig 1            # Figure 1 (GPU/CPU speedups + quality)
//	sidco-micro -fig 12           # CPU-as-compression-device throughput
//	sidco-micro -fig 14           # per-model latency/speedup (also 15)
//	sidco-micro -fig 16           # synthetic tensor sweep (also 17)
//	sidco-micro -fig wallclock    # real Go timings on this machine
//	sidco-micro -fig all
//	sidco-micro -json             # machine-readable bench record to stdout
//	sidco-micro -json -compare BENCH_pipeline.json   # + regression gate
//
// -json emits a sidco-bench/v1 record (see internal/harness.BenchReport):
// compressor wall-clock throughput plus measured collective step time and
// exact message/byte traffic, at fixed parameters so successive runs are
// comparable. The committed baseline lives in BENCH_pipeline.json at the
// repo root; regenerate it with
//
//	go run ./cmd/sidco-micro -json > BENCH_pipeline.json
//
// -compare FILE additionally diffs the fresh record against the
// committed baseline and exits non-zero if any compressor's MB/s fell
// more than -tolerance (default 0.30). Only throughput is gated —
// collective step wall times are too noisy across machines; their
// exact traffic counts are asserted by the test suite instead. After
// an intentional perf change (or when moving the reference machine),
// re-baseline by regenerating BENCH_pipeline.json as above and
// committing it alongside the change that explains the shift.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 12, 14, 15, 16, 17, wallclock, all")
	iters := flag.Int("iters", 100, "statistical iterations per run")
	scale := flag.Int("scale", 100, "dimension divisor for statistical streams")
	seed := flag.Int64("seed", 1, "random seed")
	dim := flag.Int("dim", 2_000_000, "dimension for -fig wallclock")
	jsonOut := flag.Bool("json", false, "emit a sidco-bench/v2 JSON bench history to stdout and exit")
	compare := flag.String("compare", "", "with -json: baseline record to diff against; exit non-zero on throughput regression")
	tolerance := flag.Float64("tolerance", 0.30, "with -compare: allowed fractional MB/s drop before failing")
	parallel := flag.Int("parallel", 1, "compression parallelism: -json emits an extra history entry at this fan-out; -compare measures at it")
	flag.Parse()

	opt := harness.Options{Iters: *iters, SimScale: *scale, Seed: *seed}
	w := os.Stdout

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "sidco-micro: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		// Fixed default parameters (only the seed is taken from flags) so
		// every emitted record is comparable with the committed baseline.
		if *compare == "" {
			run("bench", func() error {
				return harness.WriteBenchJSON(w, harness.BenchOptions{Seed: *seed, Parallelism: *parallel})
			})
			return
		}
		if *parallel > runtime.NumCPU() {
			// A fan-out the machine cannot actually run in parallel measures
			// scheduler timesharing, not compressor throughput — on a
			// smaller runner than the baseline machine the gate would fail
			// on noise. Skip loudly rather than gate on garbage.
			fmt.Fprintf(w, "bench compare: skipped — parallelism %d exceeds this machine's %d CPUs; baseline entry not comparable here\n",
				*parallel, runtime.NumCPU())
			return
		}
		history, err := harness.LoadBenchHistory(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sidco-micro: %v\n", err)
			os.Exit(1)
		}
		baseline, err := history.EntryFor(*parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sidco-micro: %v\n", err)
			os.Exit(1)
		}
		var current *harness.BenchReport
		run("bench", func() error {
			current, err = harness.BenchRecord(harness.BenchOptions{Seed: *seed, Parallelism: *parallel})
			return err
		})
		if regs := harness.CompareBenchReports(baseline, current, *tolerance); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "sidco-micro: regression: %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(w, "bench compare: %d compressors within %.0f%% of %s (parallelism %d vs baseline entry at %d)\n",
			len(current.Compressors), *tolerance*100, *compare, *parallel, baseline.Parallelism)
		return
	}
	switch *fig {
	case "1":
		run("fig1", func() error { return harness.Fig1(w, opt) })
	case "12":
		run("fig12", func() error { return harness.Fig12(w, opt) })
	case "14", "15":
		run("fig14/15", func() error { return harness.Fig14And15(w, opt) })
	case "16", "17":
		run("fig16/17", func() error { return harness.Fig16And17(w, opt) })
	case "wallclock":
		run("wallclock", func() error { return harness.GoWallClock(w, *dim, 0.001, 3, *seed) })
	case "all":
		run("fig1", func() error { return harness.Fig1(w, opt) })
		run("fig12", func() error { return harness.Fig12(w, opt) })
		run("fig14/15", func() error { return harness.Fig14And15(w, opt) })
		run("fig16/17", func() error { return harness.Fig16And17(w, opt) })
		run("wallclock", func() error { return harness.GoWallClock(w, *dim, 0.001, 3, *seed) })
	default:
		fmt.Fprintf(os.Stderr, "sidco-micro: unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}
