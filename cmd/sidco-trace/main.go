// Command sidco-trace assembles per-rank telemetry JSONL streams (the
// -telemetry output of cmd/sidco-node, or a single-process engine
// stream) into one merged global timeline and analyzes it.
//
// Sends and receives are paired exactly by per-link sequence number;
// per-rank clocks are aligned from the paired messages themselves
// (midpoint of the feasible offset interval, error bounded by half the
// minimum round-trip); the analysis extracts per-step critical paths,
// attributes waiting time to the ranks being waited on, and rolls up
// per-phase busy time per rank.
//
// Usage:
//
//	sidco-trace trace.jsonl.rank0 trace.jsonl.rank1 ...          # plaintext report
//	sidco-trace -chrome trace.json trace.jsonl.rank*             # + Perfetto/chrome://tracing export
//	sidco-trace -step 3 trace.jsonl.rank*                        # one step only
//	sidco-trace -check -collective allgather -workers 4 -iters 6 trace.jsonl.rank*
//
// -check exits non-zero unless every send pairs with exactly one
// receive (gradient and wire layers both); with -collective/-workers/
// -iters it additionally asserts the paired-message total equals the
// collective's closed-form count — the CI gate over real TCP
// deployments.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netsim"
	"repro/internal/traceview"
)

func main() {
	var (
		chromePath = flag.String("chrome", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
		report     = flag.Bool("report", true, "print the plaintext analysis report")
		step       = flag.Int64("step", -1, "restrict the report's critical path to one training step (-1: per-step sections for all steps)")
		check      = flag.Bool("check", false, "exit non-zero unless every send is paired with exactly one receive")
		collective = flag.String("collective", "", "with -check: assert message counts against this collective's formula (ring, allgather, ps)")
		workers    = flag.Int("workers", 0, "with -check -collective: worker count N of the formula")
		chunks     = flag.Int("chunks", 0, "with -check -collective allgather: chunked-pipeline setting")
		iters      = flag.Int("iters", 1, "with -check -collective: exchanges the run performed")
	)
	flag.Parse()
	if err := run(*chromePath, *report, *step, *check, *collective, *workers, *chunks, *iters, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "sidco-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(chromePath string, report bool, step int64, check bool, collective string, workers, chunks, iters int, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("no trace files; pass one JSONL stream per rank (see -h)")
	}
	streams := make([]*traceview.Stream, 0, len(paths))
	for _, p := range paths {
		s, err := traceview.ReadFile(p)
		if err != nil {
			return err
		}
		streams = append(streams, s)
	}
	tl, err := traceview.Assemble(streams)
	if err != nil {
		return err
	}

	if check {
		if err := traceview.CheckComplete(tl); err != nil {
			return err
		}
		if collective != "" {
			coll, err := parseCollective(collective)
			if err != nil {
				return err
			}
			if workers < 1 {
				return fmt.Errorf("-check -collective needs -workers")
			}
			if err := traceview.CheckMessageCount(tl, coll, workers, chunks, iters); err != nil {
				return err
			}
		}
		paired, _, _ := tl.PairStats(false)
		wirePaired, _, _ := tl.PairStats(true)
		fmt.Printf("check: %d gradient + %d wire messages, every send paired with exactly one receive\n", paired, wirePaired)
	}

	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := traceview.WriteChromeTrace(f, tl); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (load in ui.perfetto.dev or chrome://tracing)\n", chromePath)
	}

	if report {
		if step >= 0 {
			// Narrow the report to one step by filtering the step list.
			tl.Steps = []int64{step}
		}
		if err := traceview.WriteReport(os.Stdout, tl); err != nil {
			return err
		}
	}
	return nil
}

func parseCollective(name string) (netsim.Collective, error) {
	switch name {
	case "ring":
		return netsim.CollectiveRing, nil
	case "allgather":
		return netsim.CollectiveAllGather, nil
	case "ps":
		return netsim.CollectivePS, nil
	}
	return 0, fmt.Errorf("unknown collective %q (ring, allgather, ps)", name)
}
