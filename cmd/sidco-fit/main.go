// Command sidco-fit regenerates the gradient-statistics studies: SID
// fitting with and without error compensation (Figures 2 and 8), the
// compressibility analysis (Figure 7), and the ablation suite over the
// design choices called out in DESIGN.md.
//
// Usage:
//
//	sidco-fit -fig 2              # SID fits, no EC
//	sidco-fit -fig 7              # power-law compressibility
//	sidco-fit -fig 8              # SID fits with EC
//	sidco-fit -fig ablations      # all ablation tables
//	sidco-fit -fig all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure: 2, 7, 8, ablations, all")
	iters := flag.Int("iters", 200, "training iterations per run")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	w := os.Stdout
	opt := harness.Options{Iters: *iters, Seed: *seed}
	ablations := func() error {
		for _, f := range []func() error{
			func() error { return harness.AblationStages(w, opt) },
			func() error { return harness.AblationDelta1(w, opt) },
			func() error { return harness.AblationAdapt(w, opt) },
			func() error { return harness.AblationSID(w, opt) },
			func() error { return harness.AblationGammaApprox(w, opt) },
			func() error { return harness.AblationEC(w, opt) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	}
	figs := map[string]func() error{
		"2":         func() error { return harness.Fig2(w, opt) },
		"7":         func() error { return harness.Fig7(w, opt) },
		"8":         func() error { return harness.Fig8(w, opt) },
		"ablations": ablations,
	}
	if *fig == "all" {
		for _, name := range []string{"2", "7", "8", "ablations"} {
			if err := figs[name](); err != nil {
				fmt.Fprintf(os.Stderr, "sidco-fit: fig %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	f, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "sidco-fit: unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "sidco-fit: %v\n", err)
		os.Exit(1)
	}
}
