// Command sidco-cluster demonstrates the message-passing collective
// layer: real workers exchanging encoded gradient buffers through the
// in-process channel transport, cross-validated against internal/netsim's
// analytic alpha-beta model.
//
// Sections:
//
//  1. Bit-identity: a data-parallel training run whose gradient exchange
//     goes through the cluster engine (all-gather and parameter-server
//     collectives over the lossless wire format) must reproduce the
//     in-process trainer's per-iteration losses exactly.
//  2. Measured vs predicted: per-step message and byte counts from the
//     instrumented transport against netsim's collective step formulas
//     and encoding's size accounting, plus virtual time against the
//     alpha-beta closed forms.
//  3. Scenario knobs: a straggler node and a degraded link dragging the
//     synchronous step.
//  4. Topology study: the analytic comm-time comparison across
//     collectives for the Table 1 workloads.
//  5. Chunk study: the chunked, pipelined all-gather versus the
//     monolithic schedule on the virtual clock — homogeneous and
//     straggler scenarios, with exact traffic cross-checks and
//     bit-identity of the chunked aggregate.
//  6. Loopback study: the same training run over in-process channels,
//     loopback TCP sockets (engine) and the per-rank node topology of
//     cmd/sidco-node — four bit-identical loss columns plus an exact
//     traffic cross-check over real sockets.
//
// Usage:
//
//	sidco-cluster                 # all sections, 4 workers
//	sidco-cluster -workers 8 -delta 0.01 -iters 8
//	sidco-cluster -section 2      # one section only
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/nn"
)

func main() {
	workers := flag.Int("workers", 4, "data-parallel workers N")
	iters := flag.Int("iters", 6, "training iterations for the bit-identity run")
	delta := flag.Float64("delta", 0.05, "compression ratio k/d")
	comp := flag.String("compressor", "sidco-e", "registry compressor for the training run")
	dim := flag.Int("dim", 1<<16, "gradient dimension for the traffic section")
	straggler := flag.Float64("straggler", 4, "compute slowdown factor of the last node in section 3")
	seed := flag.Int64("seed", 1, "random seed")
	section := flag.Int("section", 0, "run a single section 1-6 (0: all)")
	flag.Parse()

	run := func(n int, f func() error) {
		if *section != 0 && *section != n {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "sidco-cluster: section %d: %v\n", n, err)
			os.Exit(1)
		}
	}
	run(1, func() error { return bitIdentity(*workers, *iters, *comp, *delta, *seed) })
	run(2, func() error { return measuredVsPredicted(*workers, *dim, *delta, *seed) })
	run(3, func() error { return scenarioKnobs(*workers, *dim, *straggler, *seed) })
	run(4, func() error {
		return harness.TopologyStudy(os.Stdout, nil, *comp,
			harness.Options{Iters: 30, SimScale: 400, Seed: *seed})
	})
	run(5, func() error {
		return harness.ChunkStudy(os.Stdout, harness.ChunkStudyConfig{
			Workers:   *workers,
			Straggler: *straggler,
			Seed:      *seed,
		})
	})
	run(6, func() error {
		return harness.LoopbackStudy(os.Stdout, harness.LoopbackStudyConfig{
			Workers:    *workers,
			Iters:      *iters,
			Compressor: *comp,
			Delta:      *delta,
			Seed:       *seed,
		})
	})
}

// demoTrainer builds a small dense net on synthetic class-shifted data.
func demoTrainer(workers int, comp string, delta float64, seed int64, ex dist.GradientExchange) (*dist.Trainer, error) {
	rng := rand.New(rand.NewSource(seed))
	model := nn.NewSequential(
		nn.NewDense("d1", 16, 12, rng),
		&nn.ReLU{},
		nn.NewDense("d2", 12, 4, rng),
	)
	var factory func() compress.Compressor
	if comp != "" && comp != "none" {
		factory = harness.Factory(comp, seed)
	}
	return dist.NewTrainer(dist.TrainerConfig{
		Workers: workers,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			x := nn.NewTensor(8, 16)
			targets := make([]int, 8)
			for i := range targets {
				targets[i] = rng.Intn(4)
				for j := 0; j < 16; j++ {
					x.Data[i*16+j] = rng.NormFloat64() + float64(targets[i])
				}
			}
			return x, targets
		},
		NewCompressor: factory,
		Delta:         delta,
		EC:            factory != nil,
		Seed:          seed,
		Exchange:      ex,
	})
}

func bitIdentity(workers, iters int, comp string, delta float64, seed int64) error {
	ref, err := demoTrainer(workers, comp, delta, seed, nil)
	if err != nil {
		return err
	}
	refLoss, _, err := ref.Run(iters)
	if err != nil {
		return err
	}
	tbl := harness.NewTable(
		fmt.Sprintf("Cluster vs in-process training — %s, N=%d, delta=%g: per-iteration loss", comp, workers, delta),
		"iter", "in-process", "allgather", "ps", "max |diff|")
	losses := map[netsim.Collective][]float64{}
	for _, coll := range []netsim.Collective{netsim.CollectiveAllGather, netsim.CollectivePS} {
		e, err := cluster.New(cluster.Config{Workers: workers, Collective: coll, Verify: true})
		if err != nil {
			return err
		}
		tr, err := demoTrainer(workers, comp, delta, seed, e)
		if err != nil {
			e.Close()
			return err
		}
		l, _, err := tr.Run(iters)
		e.Close()
		if err != nil {
			return err
		}
		losses[coll] = l
	}
	for i := range refLoss {
		ag, ps := losses[netsim.CollectiveAllGather][i], losses[netsim.CollectivePS][i]
		diff := math.Max(math.Abs(ag-refLoss[i]), math.Abs(ps-refLoss[i]))
		tbl.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.17g", refLoss[i]), fmt.Sprintf("%.17g", ag),
			fmt.Sprintf("%.17g", ps), fmt.Sprintf("%g", diff))
	}
	tbl.Render(os.Stdout)
	return nil
}

func measuredVsPredicted(workers, dim int, delta float64, seed int64) error {
	net := netsim.Cluster25GbE(workers)
	ins, err := syntheticInputs(workers, dim, delta, seed)
	if err != nil {
		return err
	}
	nnz := ins[0].Sparse.NNZ()
	tbl := harness.NewTable(
		fmt.Sprintf("Measured traffic vs netsim predictions — N=%d, d=%d, delta=%g, 25GbE", workers, dim, delta),
		"collective", "msgs (measured)", "msgs (formula)", "bytes (measured)", "bytes (accounting)",
		"virtual time", "alpha-beta time")
	for _, coll := range []netsim.Collective{netsim.CollectiveRing, netsim.CollectiveAllGather, netsim.CollectivePS} {
		e, err := cluster.New(cluster.Config{
			Workers:    workers,
			Collective: coll,
			Scenario:   cluster.ScenarioFromNetwork(net),
		})
		if err != nil {
			return err
		}
		agg := make([]float64, dim)
		if err := e.Exchange(0, ins, agg); err != nil {
			e.Close()
			return err
		}
		msgs, bytes := e.Transport().Totals()
		virtual := e.Transport().Elapsed()
		var wantMsgs, wantBytes int
		var predicted float64
		switch coll {
		case netsim.CollectiveRing:
			wantMsgs = workers * netsim.RingMessages(workers)
			wantBytes = netsim.RingTrafficBytes(workers, 8*dim)
			predicted = net.AllReduceDense(8 * dim)
		case netsim.CollectiveAllGather:
			wantMsgs = workers * netsim.AllGatherMessages(workers)
			wantBytes = workers * netsim.AllGatherTrafficBytes(workers, encoding.Pairs64Size(dim, nnz))
			predicted = net.AllGatherSparse(encoding.Pairs64Size(dim, nnz))
		case netsim.CollectivePS:
			aggNNZ := 0
			for _, v := range agg {
				if v != 0 {
					aggNNZ++
				}
			}
			wantMsgs = netsim.PSMessages(workers)
			wantBytes = netsim.PSTrafficBytes(workers, encoding.Pairs64Size(dim, nnz), encoding.Pairs64Size(dim, aggNNZ))
			predicted = net.ParameterServer(encoding.Pairs64Size(dim, nnz), encoding.Pairs64Size(dim, aggNNZ))
		}
		tbl.AddRow(coll.String(),
			fmt.Sprintf("%d", msgs), fmt.Sprintf("%d", wantMsgs),
			fmt.Sprintf("%d", bytes), fmt.Sprintf("%d", wantBytes),
			harness.FmtSecs(virtual), harness.FmtSecs(predicted))
		e.Close()
	}
	tbl.Render(os.Stdout)
	return nil
}

func scenarioKnobs(workers, dim int, straggler float64, seed int64) error {
	net := netsim.Cluster25GbE(workers)
	ins, err := syntheticInputs(workers, dim, 0, seed)
	if err != nil {
		return err
	}
	const computeSec = 1e-3
	tbl := harness.NewTable(
		fmt.Sprintf("Scenario knobs — dense ring, N=%d, d=%d, 1ms compute/step", workers, dim),
		"scenario", "step time", "drag vs nominal")
	runScenario := func(name string, scen *cluster.Scenario) (float64, error) {
		e, err := cluster.New(cluster.Config{
			Workers:    workers,
			Collective: netsim.CollectiveRing,
			Scenario:   scen,
			ComputeSec: computeSec,
		})
		if err != nil {
			return 0, err
		}
		defer e.Close()
		agg := make([]float64, dim)
		if err := e.Exchange(0, ins, agg); err != nil {
			return 0, err
		}
		return e.Transport().Elapsed(), nil
	}
	nominal, err := runScenario("nominal", cluster.ScenarioFromNetwork(net))
	if err != nil {
		return err
	}
	tbl.AddRow("nominal", harness.FmtSecs(nominal), "1.00x")

	slow := cluster.ScenarioFromNetwork(net)
	slow.StragglerFactor = map[int]float64{workers - 1: straggler}
	straggled, err := runScenario("straggler", slow)
	if err != nil {
		return err
	}
	tbl.AddRow(fmt.Sprintf("node %d compute x%g", workers-1, straggler),
		harness.FmtSecs(straggled), harness.FmtX(straggled/nominal))

	weak := cluster.ScenarioFromNetwork(net)
	weak.LinkBandwidthBps = map[cluster.Link]float64{
		{From: 0, To: 1}: net.BandwidthBps / 10,
	}
	degraded, err := runScenario("slow link", weak)
	if err != nil {
		return err
	}
	tbl.AddRow("link 0->1 at 1/10 bandwidth", harness.FmtSecs(degraded), harness.FmtX(degraded/nominal))
	tbl.Render(os.Stdout)
	return nil
}

// syntheticInputs draws per-worker gradients (top-k compressed when
// delta > 0).
func syntheticInputs(workers, dim int, delta float64, seed int64) ([]dist.ExchangeInput, error) {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]dist.ExchangeInput, workers)
	for w := range ins {
		dense := make([]float64, dim)
		for i := range dense {
			dense[i] = rng.NormFloat64()
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense}
		if delta > 0 {
			s, err := compress.NewTopK().Compress(dense, delta)
			if err != nil {
				return nil, err
			}
			ins[w].Sparse = s
		}
	}
	return ins, nil
}
