// Command sidco-node runs ONE cluster node as an OS process: the
// multi-process deployment of the message-passing collective layer.
// Every process gets the same host list and its own rank; rank r trains
// global worker r through a Workers=1 dist.Trainer whose gradient
// exchange is a cluster.Node over a TCPTransport, so the ring all-reduce
// / all-gather / parameter-server schedules — including chunked
// pipelining — execute over real sockets. Over the lossless wire format
// the deployment reproduces the single-process in-process trainer's
// global loss sequence bit-for-bit, which -check asserts per process.
//
// Host list: a comma-separated -hosts value or a -hostfile with one
// host:port per line; entry i is node i's listen address. Under
// -collective ps the last entry is the parameter-server node (workers =
// len(hosts)-1), which runs the serving loop instead of training.
//
// Usage:
//
//	sidco-node -launch 4 -check             # quickstart: 4 worker processes over loopback, bit-identity gated
//	sidco-node -launch 4 -collective ps -chunks 0 -compressor topk
//	sidco-node -node 0 -hosts host0:7000,host1:7000,host2:7000 -iters 8
//	sidco-node -node 2 -hostfile hosts.txt -collective allgather -chunks 4 -check
//
// -launch spawns the whole deployment on this machine (kernel-assigned
// loopback ports) and exits non-zero if any process fails its checks —
// the CI quick gate runs exactly that.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/nn"
)

type options struct {
	node          int
	hosts         string
	hostfile      string
	launch        int
	collective    string
	chunks        int
	iters         int
	compressor    string
	delta         float64
	seed          int64
	check         bool
	dialTimeout   time.Duration
	launchTimeout time.Duration
}

func main() {
	var opt options
	flag.IntVar(&opt.node, "node", -1, "this process's rank in the host list (0-based)")
	flag.StringVar(&opt.hosts, "hosts", "", "comma-separated host:port list, entry i = node i")
	flag.StringVar(&opt.hostfile, "hostfile", "", "file with one host:port per line (alternative to -hosts)")
	flag.IntVar(&opt.launch, "launch", 0, "spawn this many worker processes over loopback instead of being one node")
	flag.StringVar(&opt.collective, "collective", "allgather", "collective schedule: auto, ring, allgather or ps")
	flag.IntVar(&opt.chunks, "chunks", 0, "chunked-pipeline setting for the all-gather (0/1: monolithic)")
	flag.IntVar(&opt.iters, "iters", 6, "training iterations")
	flag.StringVar(&opt.compressor, "compressor", "sidco-e", "registry compressor (none: dense training)")
	flag.Float64Var(&opt.delta, "delta", 0.05, "compression ratio k/d")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.BoolVar(&opt.check, "check", false, "verify global losses bit-identical to the in-process trainer and per-node traffic against the collective formulas")
	flag.DurationVar(&opt.dialTimeout, "dial-timeout", 10*time.Second, "per-link lazy-dial retry budget (peers may start later)")
	flag.DurationVar(&opt.launchTimeout, "launch-timeout", 2*time.Minute, "watchdog for -launch: kill the deployment and fail if it has not finished by then")
	flag.Parse()

	var err error
	switch {
	case opt.launch > 0:
		err = runLaunch(opt)
	case opt.node >= 0:
		err = runNode(opt)
	default:
		err = fmt.Errorf("pass -launch N for a loopback deployment, or -node R -hosts ... to be one node (see -h)")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidco-node: %v\n", err)
		os.Exit(1)
	}
}

func parseCollective(name string) (netsim.Collective, error) {
	switch name {
	case "auto":
		return netsim.CollectiveAuto, nil
	case "ring":
		return netsim.CollectiveRing, nil
	case "allgather":
		return netsim.CollectiveAllGather, nil
	case "ps":
		return netsim.CollectivePS, nil
	default:
		return 0, fmt.Errorf("unknown collective %q (want auto, ring, allgather or ps)", name)
	}
}

func parseHosts(opt options) ([]string, error) {
	if opt.hosts != "" && opt.hostfile != "" {
		return nil, fmt.Errorf("pass -hosts or -hostfile, not both")
	}
	raw := opt.hosts
	if opt.hostfile != "" {
		data, err := os.ReadFile(opt.hostfile)
		if err != nil {
			return nil, err
		}
		raw = strings.ReplaceAll(strings.TrimSpace(string(data)), "\n", ",")
	}
	var hosts []string
	for _, h := range strings.Split(raw, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("empty host list")
	}
	return hosts, nil
}

// trainerFor builds the demo workload (the same model and batch stream
// as cmd/sidco-cluster) at any (workers, firstWorker) split, so N
// single-worker processes draw exactly the batches of one N-worker
// in-process trainer.
func trainerFor(opt options, workers, firstWorker int, ex dist.GradientExchange) (*dist.Trainer, error) {
	rng := rand.New(rand.NewSource(opt.seed))
	model := nn.NewSequential(
		nn.NewDense("d1", 16, 12, rng),
		&nn.ReLU{},
		nn.NewDense("d2", 12, 4, rng),
	)
	var factory func() compress.Compressor
	if opt.compressor != "" && opt.compressor != "none" {
		factory = harness.Factory(opt.compressor, opt.seed)
	}
	return dist.NewTrainer(dist.TrainerConfig{
		Workers:     workers,
		FirstWorker: firstWorker,
		Model:       model,
		Loss:        &nn.SoftmaxCrossEntropy{},
		Opt:         &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			x := nn.NewTensor(8, 16)
			targets := make([]int, 8)
			for i := range targets {
				targets[i] = rng.Intn(4)
				for j := 0; j < 16; j++ {
					x.Data[i*16+j] = rng.NormFloat64() + float64(targets[i])
				}
			}
			return x, targets
		},
		NewCompressor: factory,
		Delta:         opt.delta,
		EC:            factory != nil,
		Seed:          opt.seed,
		Exchange:      ex,
	})
}

// runNode is one process of the deployment: worker or parameter server.
func runNode(opt options) error {
	if opt.iters < 1 {
		return fmt.Errorf("-iters %d, need >= 1", opt.iters)
	}
	coll, err := parseCollective(opt.collective)
	if err != nil {
		return err
	}
	hosts, err := parseHosts(opt)
	if err != nil {
		return err
	}
	workers := len(hosts)
	if coll == netsim.CollectivePS {
		workers--
		if workers < 1 {
			return fmt.Errorf("ps needs at least 2 hosts (workers + server), got %d", len(hosts))
		}
	}
	if opt.node >= len(hosts) {
		return fmt.Errorf("-node %d outside the %d-host list", opt.node, len(hosts))
	}
	tp, err := cluster.NewTCPTransport(cluster.TCPConfig{
		Addrs:       hosts,
		Local:       []int{opt.node},
		DialTimeout: opt.dialTimeout,
	})
	if err != nil {
		return err
	}
	defer tp.Close()
	nd, err := cluster.NewNode(cluster.NodeConfig{
		Workers:    workers,
		Rank:       opt.node,
		Collective: coll,
		Chunks:     opt.chunks,
		Transport:  tp,
	})
	if err != nil {
		return err
	}
	if opt.node == workers { // parameter-server rank
		if err := nd.Serve(opt.iters); err != nil {
			return err
		}
		fmt.Printf("node %d (server): served %d rounds\n", opt.node, opt.iters)
		return nil
	}
	tr, err := trainerFor(opt, 1, opt.node, nd)
	if err != nil {
		return err
	}
	losses := make([]float64, 0, opt.iters)
	for it := 0; it < opt.iters; it++ {
		local, err := tr.Step()
		if err != nil {
			return err
		}
		global, err := nd.MeanScalar(local)
		if err != nil {
			return err
		}
		losses = append(losses, global)
	}
	if opt.node == 0 {
		printLosses(opt, coll, losses)
	}
	fmt.Printf("node %d: final global loss %.17g over %d iterations\n", opt.node, losses[len(losses)-1], opt.iters)
	if opt.check {
		return checkNodeRun(opt, coll, workers, nd, losses)
	}
	return nil
}

// printLosses renders rank 0's view of the run.
func printLosses(opt options, coll netsim.Collective, losses []float64) {
	tbl := harness.NewTable(
		fmt.Sprintf("Multi-process run — %s over TCP, %s, N from host list, delta=%g: global loss per iteration",
			coll, opt.compressor, opt.delta),
		"iter", "global loss")
	for i, l := range losses {
		tbl.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.17g", l))
	}
	tbl.Render(os.Stdout)
}

// checkNodeRun asserts this process saw exactly the run the in-process
// trainer produces: bit-identical global losses (for the
// order-preserving collectives over the lossless wire) and per-node
// traffic matching the collective step formulas.
func checkNodeRun(opt options, coll netsim.Collective, workers int, nd *cluster.Node, losses []float64) error {
	ref, err := trainerFor(opt, workers, 0, nil)
	if err != nil {
		return err
	}
	want, _, err := ref.Run(opt.iters)
	if err != nil {
		return err
	}
	resolved := coll
	if resolved == netsim.CollectiveAuto {
		if opt.compressor != "" && opt.compressor != "none" {
			resolved = netsim.CollectiveAllGather
		} else {
			resolved = netsim.CollectiveRing
		}
	}
	bitwise := resolved == netsim.CollectiveAllGather || resolved == netsim.CollectivePS
	for i := range want {
		if bitwise && losses[i] != want[i] {
			return fmt.Errorf("check: loss[%d] = %.17g, in-process trainer says %.17g (must be bit-identical)", i, losses[i], want[i])
		}
		if !bitwise && math.Abs(losses[i]-want[i]) > 1e-9 {
			return fmt.Errorf("check: loss[%d] = %.17g, in-process trainer says %.17g (outside ring tolerance)", i, losses[i], want[i])
		}
	}
	var wantMsgs int
	switch resolved {
	case netsim.CollectiveAllGather:
		wantMsgs = opt.iters * netsim.ChunkedAllGatherMessages(workers, opt.chunks)
	case netsim.CollectiveRing:
		wantMsgs = opt.iters * netsim.RingMessages(workers)
	case netsim.CollectivePS:
		wantMsgs = opt.iters
	}
	if msgs, _ := nd.Transport().Totals(); msgs != wantMsgs {
		return fmt.Errorf("check: sent %d gradient messages, formula says %d", msgs, wantMsgs)
	}
	if msgs, _ := nd.Transport().RecvTotals(); msgs != wantMsgs {
		return fmt.Errorf("check: received %d gradient messages, formula says %d", msgs, wantMsgs)
	}
	mode := "bit-identical to in-process"
	if !bitwise {
		mode = "within ring tolerance of in-process"
	}
	fmt.Printf("node %d: check passed — losses %s, traffic exact (%d msgs)\n", opt.node, mode, wantMsgs)
	return nil
}

// runLaunch spawns the whole deployment on this machine: -launch N
// worker processes (plus a server process under ps) over kernel-assigned
// loopback ports, forwarding the workload flags to every child. The
// first failing child takes the rest of the deployment down with it, and
// a watchdog kills everything if the run overstays -launch-timeout — a
// hung deployment fails fast instead of pinning CI until its global
// timeout.
func runLaunch(opt options) error {
	if opt.iters < 1 {
		return fmt.Errorf("-iters %d, need >= 1", opt.iters)
	}
	coll, err := parseCollective(opt.collective)
	if err != nil {
		return err
	}
	nodes := cluster.NodeCount(opt.launch, coll)
	addrs, err := cluster.FreeLoopbackAddrs(nodes)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	fmt.Printf("launching %d processes over loopback (%s)\n", nodes, strings.Join(addrs, ", "))
	type child struct {
		rank int
		cmd  *exec.Cmd
		out  bytes.Buffer
		err  error
	}
	children := make([]*child, nodes)
	exits := make(chan *child, nodes)
	for rank := 0; rank < nodes; rank++ {
		args := []string{
			"-node", fmt.Sprint(rank),
			"-hosts", strings.Join(addrs, ","),
			"-collective", opt.collective,
			"-chunks", fmt.Sprint(opt.chunks),
			"-iters", fmt.Sprint(opt.iters),
			"-compressor", opt.compressor,
			"-delta", fmt.Sprint(opt.delta),
			"-seed", fmt.Sprint(opt.seed),
			"-dial-timeout", opt.dialTimeout.String(),
		}
		if opt.check {
			args = append(args, "-check")
		}
		c := &child{rank: rank, cmd: exec.Command(exe, args...)}
		c.cmd.Stdout = &c.out
		c.cmd.Stderr = &c.out
		if err := c.cmd.Start(); err != nil {
			for _, prev := range children[:rank] {
				prev.cmd.Process.Kill()
			}
			return fmt.Errorf("starting node %d: %w", rank, err)
		}
		children[rank] = c
	}
	for _, c := range children {
		go func(c *child) {
			c.err = c.cmd.Wait()
			exits <- c
		}(c)
	}
	killAll := func() {
		for _, c := range children {
			c.cmd.Process.Kill()
		}
	}
	watchdog := time.After(opt.launchTimeout)
	failed, timedOut := 0, false
	for collected := 0; collected < nodes; {
		select {
		case c := <-exits:
			collected++
			if c.err != nil {
				failed++
				// One dead node stalls its peers mid-schedule; take the
				// deployment down so every Wait returns promptly.
				killAll()
			}
		case <-watchdog:
			timedOut = true
			killAll()
			watchdog = nil // keep draining exits; children are dying now
		}
	}
	for _, c := range children {
		if c.rank == 0 || c.err != nil {
			os.Stdout.Write(c.out.Bytes())
		}
		if c.err != nil {
			fmt.Fprintf(os.Stderr, "node %d exited with %v\n", c.rank, c.err)
		}
	}
	if timedOut {
		return fmt.Errorf("deployment killed after %v watchdog", opt.launchTimeout)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d processes failed", failed, nodes)
	}
	fmt.Printf("launch: all %d processes finished cleanly\n", nodes)
	return nil
}
