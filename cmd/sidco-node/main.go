// Command sidco-node runs ONE cluster node as an OS process: the
// multi-process deployment of the message-passing collective layer.
// Every process gets the same host list and its own rank; rank r trains
// global worker r through a Workers=1 dist.Trainer whose gradient
// exchange is a cluster.Node over a TCPTransport, so the ring all-reduce
// / all-gather / parameter-server schedules — including chunked
// pipelining — execute over real sockets. Over the lossless wire format
// the deployment reproduces the single-process in-process trainer's
// global loss sequence bit-for-bit, which -check asserts per process —
// and over the quantized all-gather wires (-format pairs, pairs-f16,
// pairs-bf16, pairs-i8) too, because error feedback pre-rounds every
// selected value to wire precision before it ships.
//
// Host list: a comma-separated -hosts value or a -hostfile with one
// host:port per line; entry i is node i's listen address. Under
// -collective ps the last entry is the parameter-server node (workers =
// len(hosts)-1), which runs the serving loop instead of training.
//
// Usage:
//
//	sidco-node -launch 4 -check             # quickstart: 4 worker processes over loopback, bit-identity gated
//	sidco-node -launch 4 -collective ps -chunks 0 -compressor topk
//	sidco-node -node 0 -hosts host0:7000,host1:7000,host2:7000 -iters 8
//	sidco-node -node 2 -hostfile hosts.txt -collective allgather -chunks 4 -check
//	sidco-node -launch 4 -format pairs-i8 -check    # int8 wire (~8x fewer value bytes), still bit-gated via EC pre-rounding
//	sidco-node -launch 4 -metrics auto -check   # + per-process /metrics endpoints, scrape-verified
//
// -launch spawns the whole deployment on this machine (kernel-assigned
// loopback ports) and exits non-zero if any process fails its checks —
// the CI quick gate runs exactly that.
//
// Observability: -metrics ADDR serves this process's live telemetry
// over HTTP (/metrics in Prometheus plaintext, /healthz, /debug/pprof;
// ADDR "auto" binds a kernel-assigned loopback port and prints it), and
// -telemetry FILE streams every span and counter event as JSONL. With
// both -metrics and -check, the process scrapes its own endpoint over
// real HTTP after the run and asserts the exported byte/message
// counters equal the Instrumented totals and the collective's netsim
// message formula — the exporter is gated end to end, not just the
// in-memory counters. Under -launch both flags are forwarded to every
// child (-telemetry FILE becomes FILE.rankR per process).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/traceview"
)

type options struct {
	node          int
	hosts         string
	hostfile      string
	launch        int
	collective    string
	chunks        int
	iters         int
	compressor    string
	delta         float64
	seed          int64
	format        string
	parallel      int
	check         bool
	metrics       string
	telemetryPath string
	dialTimeout   time.Duration
	launchTimeout time.Duration
	stepTimeout   time.Duration
	stepRetries   int
	killAtStep    int
	killRank      string
	ckpt          string
	ckptEvery     int
	resume        string
}

// killExitCode is the exit status of a process that self-killed on its
// -kill-at-step schedule: the launcher distinguishes the planned death
// of the fault-injection target from a genuine child failure by it.
const killExitCode = 3

func main() {
	var opt options
	flag.IntVar(&opt.node, "node", -1, "this process's rank in the host list (0-based)")
	flag.StringVar(&opt.hosts, "hosts", "", "comma-separated host:port list, entry i = node i")
	flag.StringVar(&opt.hostfile, "hostfile", "", "file with one host:port per line (alternative to -hosts)")
	flag.IntVar(&opt.launch, "launch", 0, "spawn this many worker processes over loopback instead of being one node")
	flag.StringVar(&opt.collective, "collective", "allgather", "collective schedule: auto, ring, allgather or ps")
	flag.IntVar(&opt.chunks, "chunks", 0, "chunked-pipeline setting for the all-gather (0/1: monolithic)")
	flag.IntVar(&opt.iters, "iters", 6, "training iterations")
	flag.StringVar(&opt.compressor, "compressor", "sidco-e", "registry compressor (none: dense training)")
	flag.Float64Var(&opt.delta, "delta", 0.05, "compression ratio k/d")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.StringVar(&opt.format, "format", "lossless", "gradient wire format: lossless, pairs, bitmap, dense, delta-varint, pairs-f16, pairs-bf16 or pairs-i8 (lossy wires pair with error feedback, which absorbs the rounding residual)")
	flag.IntVar(&opt.parallel, "parallel", 1, "per-process compression/decode fan-out (goroutines); selections stay bit-identical at any setting")
	flag.BoolVar(&opt.check, "check", false, "verify global losses bit-identical to the in-process trainer and per-node traffic against the collective formulas")
	flag.StringVar(&opt.metrics, "metrics", "", "serve /metrics, /healthz and /debug/pprof on this address (\"auto\": kernel-assigned loopback port)")
	flag.StringVar(&opt.telemetryPath, "telemetry", "", "stream telemetry events as JSONL to this file (per-rank suffix under -launch)")
	flag.DurationVar(&opt.dialTimeout, "dial-timeout", 10*time.Second, "per-link lazy-dial retry budget (peers may start later)")
	flag.DurationVar(&opt.launchTimeout, "launch-timeout", 2*time.Minute, "watchdog for -launch: kill the deployment and fail if it has not finished by then")
	flag.DurationVar(&opt.stepTimeout, "step-timeout", 0, "per-collective-step receive budget; 0 blocks forever. Fault-tolerant runs need it to detect dead peers")
	flag.IntVar(&opt.stepRetries, "step-retries", 0, "elastic recovery: retry a failed step this many times over the renegotiated survivor group (needs -step-timeout > 0)")
	flag.IntVar(&opt.killAtStep, "kill-at-step", -1, fmt.Sprintf("fault injection: exit with code %d immediately before this step's exchange", killExitCode))
	flag.StringVar(&opt.killRank, "kill-rank", "", "launch mode, R@K: forward -kill-at-step K to rank R and gate on the survivors finishing with identical final losses")
	flag.StringVar(&opt.ckpt, "ckpt", "", "write this rank's resume state to PREFIX.rankR (atomic replace) every -ckpt-every steps and after the final step")
	flag.IntVar(&opt.ckptEvery, "ckpt-every", 1, "checkpoint cadence in steps for -ckpt")
	flag.StringVar(&opt.resume, "resume", "", "resume from PREFIX.rankR written by -ckpt; -iters stays the TOTAL step count, the process runs the remaining steps. Bit-identical resume needs a compressor whose only cross-step state is the EC residual (topk, threshold, none)")
	flag.Parse()

	var err error
	switch {
	case opt.launch > 0:
		err = runLaunch(opt)
	case opt.node >= 0:
		err = runNode(opt)
	default:
		err = fmt.Errorf("pass -launch N for a loopback deployment, or -node R -hosts ... to be one node (see -h)")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidco-node: %v\n", err)
		os.Exit(1)
	}
}

func parseCollective(name string) (netsim.Collective, error) {
	switch name {
	case "auto":
		return netsim.CollectiveAuto, nil
	case "ring":
		return netsim.CollectiveRing, nil
	case "allgather":
		return netsim.CollectiveAllGather, nil
	case "ps":
		return netsim.CollectivePS, nil
	default:
		return 0, fmt.Errorf("unknown collective %q (want auto, ring, allgather or ps)", name)
	}
}

func parseHosts(opt options) ([]string, error) {
	if opt.hosts != "" && opt.hostfile != "" {
		return nil, fmt.Errorf("pass -hosts or -hostfile, not both")
	}
	raw := opt.hosts
	if opt.hostfile != "" {
		data, err := os.ReadFile(opt.hostfile)
		if err != nil {
			return nil, err
		}
		raw = strings.ReplaceAll(strings.TrimSpace(string(data)), "\n", ",")
	}
	var hosts []string
	for _, h := range strings.Split(raw, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("empty host list")
	}
	return hosts, nil
}

// nodeTelemetry is one process's observability stack: the tracer fans
// events into an aggregator (scraped over HTTP when -metrics is set)
// and an optional JSONL stream.
type nodeTelemetry struct {
	tracer *telemetry.Tracer
	agg    *telemetry.Aggregator
	jsonl  *telemetry.JSONL
	file   *os.File
	srv    *http.Server
	addr   string // bound metrics address, "" when -metrics is off
}

// setupTelemetry builds the stack for the flags; with neither flag set
// it returns a disabled stack (nil tracer — the zero-cost path).
func setupTelemetry(opt options) (*nodeTelemetry, error) {
	nt := &nodeTelemetry{}
	if opt.metrics == "" && opt.telemetryPath == "" {
		return nt, nil
	}
	var sinks []telemetry.Sink
	nt.agg = telemetry.NewAggregator()
	sinks = append(sinks, nt.agg)
	if opt.telemetryPath != "" {
		f, err := os.Create(opt.telemetryPath)
		if err != nil {
			return nil, fmt.Errorf("-telemetry: %w", err)
		}
		nt.file = f
		// The per-rank node id in the stream's meta record is what lets
		// sidco-trace match message sides to streams when it aligns the
		// ranks' clocks.
		nt.jsonl = telemetry.NewJSONLForNode(f, opt.node)
		sinks = append(sinks, nt.jsonl)
	}
	nt.tracer = telemetry.New(sinks...)
	if opt.metrics != "" {
		addr := opt.metrics
		if addr == "auto" {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			nt.close()
			return nil, fmt.Errorf("-metrics %s: %w", opt.metrics, err)
		}
		nt.addr = ln.Addr().String()
		nt.srv = &http.Server{Handler: telemetry.Handler(nt.agg)}
		go nt.srv.Serve(ln)
		fmt.Printf("node %d: metrics on http://%s/metrics\n", opt.node, nt.addr)
	}
	return nt, nil
}

// close flushes the JSONL stream and stops the metrics server.
func (nt *nodeTelemetry) close() {
	if nt.srv != nil {
		nt.srv.Close()
	}
	if nt.jsonl != nil {
		nt.jsonl.Flush()
	}
	if nt.file != nil {
		nt.file.Close()
	}
}

// trainerFor builds the demo workload (the same model and batch stream
// as cmd/sidco-cluster) at any (workers, firstWorker) split, so N
// single-worker processes draw exactly the batches of one N-worker
// in-process trainer. tel is nil for the telemetry-free reference run.
//
// With a lossy -format and a compressor, both the deployment trainer and
// the -check reference trainer pre-round every selected value to the
// wire's precision through error feedback (TrainerConfig.ECWire): the
// quantization residual feeds back into the next step, and — because the
// emitted values are fixed points of the wire's rounding — what the
// sockets deliver is exactly what the in-process reference computes.
func trainerFor(opt options, workers, firstWorker int, ex dist.GradientExchange, tel *telemetry.Tracer) (*dist.Trainer, error) {
	rng := rand.New(rand.NewSource(opt.seed))
	model := nn.NewSequential(
		nn.NewDense("d1", 16, 12, rng),
		&nn.ReLU{},
		nn.NewDense("d2", 12, 4, rng),
	)
	var factory func() compress.Compressor
	if opt.compressor != "" && opt.compressor != "none" {
		factory = harness.Factory(opt.compressor, opt.seed)
	}
	wire, err := cluster.ParseWire(opt.format)
	if err != nil {
		return nil, err
	}
	var ecWire *encoding.Format
	if factory != nil && wire != cluster.WireLossless {
		f, err := wire.Format()
		if err != nil {
			return nil, err
		}
		ecWire = &f
	}
	return dist.NewTrainer(dist.TrainerConfig{
		Workers:     workers,
		FirstWorker: firstWorker,
		Model:       model,
		Loss:        &nn.SoftmaxCrossEntropy{},
		Opt:         &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			x := nn.NewTensor(8, 16)
			targets := make([]int, 8)
			for i := range targets {
				targets[i] = rng.Intn(4)
				for j := 0; j < 16; j++ {
					x.Data[i*16+j] = rng.NormFloat64() + float64(targets[i])
				}
			}
			return x, targets
		},
		NewCompressor: factory,
		Delta:         opt.delta,
		EC:            factory != nil,
		ECWire:        ecWire,
		Parallelism:   opt.parallel,
		Seed:          opt.seed,
		Exchange:      ex,
		Telemetry:     tel,
	})
}

// runNode is one process of the deployment: worker or parameter server.
func runNode(opt options) error {
	if opt.iters < 1 {
		return fmt.Errorf("-iters %d, need >= 1", opt.iters)
	}
	if opt.ckptEvery < 1 {
		return fmt.Errorf("-ckpt-every %d, need >= 1", opt.ckptEvery)
	}
	coll, err := parseCollective(opt.collective)
	if err != nil {
		return err
	}
	hosts, err := parseHosts(opt)
	if err != nil {
		return err
	}
	workers := len(hosts)
	if coll == netsim.CollectivePS {
		workers--
		if workers < 1 {
			return fmt.Errorf("ps needs at least 2 hosts (workers + server), got %d", len(hosts))
		}
	}
	if opt.node >= len(hosts) {
		return fmt.Errorf("-node %d outside the %d-host list", opt.node, len(hosts))
	}
	wire, err := cluster.ParseWire(opt.format)
	if err != nil {
		return err
	}
	nt, err := setupTelemetry(opt)
	if err != nil {
		return err
	}
	defer nt.close()
	tp, err := cluster.NewTCPTransport(cluster.TCPConfig{
		Addrs:       hosts,
		Local:       []int{opt.node},
		DialTimeout: opt.dialTimeout,
		Telemetry:   nt.tracer,
	})
	if err != nil {
		return err
	}
	defer tp.Close()
	nd, err := cluster.NewNode(cluster.NodeConfig{
		Workers:        workers,
		Rank:           opt.node,
		Collective:     coll,
		Format:         wire,
		Chunks:         opt.chunks,
		Parallelism:    opt.parallel,
		Transport:      tp,
		Telemetry:      nt.tracer,
		StepTimeout:    opt.stepTimeout,
		MaxStepRetries: opt.stepRetries,
	})
	if err != nil {
		return err
	}
	if opt.node == workers { // parameter-server rank
		rounds := opt.iters
		if opt.resume != "" {
			// The server is stateless; it only needs the round offset, which
			// it reads off worker 0's checkpoint (same filesystem under
			// -launch; multi-host operators adjust -iters instead).
			ck, err := dist.LoadCheckpoint(fmt.Sprintf("%s.rank0", opt.resume))
			if err != nil {
				return fmt.Errorf("-resume on the server rank reads rank 0's checkpoint for the round offset: %w", err)
			}
			rounds -= ck.Step
			if rounds < 1 {
				return fmt.Errorf("-resume: checkpoint already at step %d, -iters %d (total) leaves nothing to serve", ck.Step, opt.iters)
			}
		}
		if err := nd.Serve(rounds); err != nil {
			return err
		}
		fmt.Printf("node %d (server): served %d rounds\n", opt.node, rounds)
		return nil
	}
	tr, err := trainerFor(opt, 1, opt.node, nd, nt.tracer)
	if err != nil {
		return err
	}
	ckptPath := ""
	if opt.ckpt != "" {
		ckptPath = fmt.Sprintf("%s.rank%d", opt.ckpt, opt.node)
	}
	start := 0
	if opt.resume != "" {
		ck, err := dist.LoadCheckpoint(fmt.Sprintf("%s.rank%d", opt.resume, opt.node))
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		if ck.Step >= opt.iters {
			return fmt.Errorf("-resume: checkpoint already at step %d, -iters %d (total) leaves nothing to run", ck.Step, opt.iters)
		}
		if err := tr.Restore(ck); err != nil {
			return err
		}
		start = ck.Step
		fmt.Printf("node %d: resumed at step %d\n", opt.node, start)
	}
	losses := make([]float64, 0, opt.iters-start)
	for it := start; it < opt.iters; it++ {
		if opt.killAtStep >= 0 && it == opt.killAtStep {
			// Die at the START of step it: step it-1 fully completed, nothing
			// of step it sent yet — the deterministic point the fault-injection
			// schedule and the elastic-recovery tests are defined against.
			fmt.Printf("node %d: fault injection — dying before step %d\n", opt.node, it)
			nt.close()
			os.Exit(killExitCode)
		}
		local, err := tr.Step()
		if err != nil {
			return err
		}
		global, err := nd.MeanScalar(local)
		if err != nil {
			return err
		}
		losses = append(losses, global)
		if ckptPath != "" && ((it+1)%opt.ckptEvery == 0 || it+1 == opt.iters) {
			ck, err := tr.Checkpoint()
			if err != nil {
				return err
			}
			if err := dist.SaveCheckpoint(ckptPath, ck); err != nil {
				return err
			}
		}
	}
	if opt.node == 0 {
		printLosses(opt, coll, losses)
	}
	fmt.Printf("node %d: final global loss %.17g over %d iterations\n", opt.node, losses[len(losses)-1], opt.iters)
	if opt.check {
		return checkNodeRun(opt, coll, workers, nd, nt, losses, start)
	}
	return nil
}

// resolveCollective maps CollectiveAuto to the schedule the run will
// actually execute: all-gather for compressed training, ring otherwise.
func resolveCollective(opt options, coll netsim.Collective) netsim.Collective {
	if coll != netsim.CollectiveAuto {
		return coll
	}
	if opt.compressor != "" && opt.compressor != "none" {
		return netsim.CollectiveAllGather
	}
	return netsim.CollectiveRing
}

// printLosses renders rank 0's view of the run.
func printLosses(opt options, coll netsim.Collective, losses []float64) {
	tbl := harness.NewTable(
		fmt.Sprintf("Multi-process run — %s over TCP, %s, N from host list, delta=%g: global loss per iteration",
			coll, opt.compressor, opt.delta),
		"iter", "global loss")
	for i, l := range losses {
		tbl.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.17g", l))
	}
	tbl.Render(os.Stdout)
}

// wireValueExact reports whether the wire delivers each worker's
// selected values exactly as the -check reference trainer computes them.
// The lossless wire always does. A lossy wire does when a compressor is
// on — error feedback then pre-rounds every selection to wire precision,
// and the emitted values are fixed points of the wire's rounding — with
// one exception: pairs-i8 under chunked pipelining re-derives its int8
// scale per chunk, which differs from the monolithic pre-round.
func wireValueExact(opt options, wire cluster.Wire) bool {
	if wire == cluster.WireLossless {
		return true
	}
	if opt.compressor == "" || opt.compressor == "none" {
		return false
	}
	return wire != cluster.WirePairsI8 || opt.chunks <= 1
}

// checkNodeRun asserts this process saw exactly the run the in-process
// trainer produces: bit-identical global losses (for the
// order-preserving collectives over a value-exact wire) and per-node
// traffic matching the collective step formulas. With -metrics it
// additionally scrapes this process's own HTTP endpoint and asserts
// the exported counters agree. Under -resume the reference runs the
// full opt.iters from scratch and the comparison covers the resumed
// tail — a bitwise pass proves checkpoint-resume reproduced the
// uninterrupted run exactly.
func checkNodeRun(opt options, coll netsim.Collective, workers int, nd *cluster.Node, nt *nodeTelemetry, losses []float64, start int) error {
	ref, err := trainerFor(opt, workers, 0, nil, nil)
	if err != nil {
		return err
	}
	want, _, err := ref.Run(opt.iters)
	if err != nil {
		return err
	}
	want = want[start:]
	wire, err := cluster.ParseWire(opt.format)
	if err != nil {
		return err
	}
	resolved := resolveCollective(opt, coll)
	// The all-gather replays each worker's pre-rounded selection
	// verbatim, so any value-exact wire keeps it bitwise. The parameter
	// server re-encodes the aggregated mean on the pull side — a mean of
	// wire fixed points is not itself a fixed point — so only the
	// lossless wire stays exact there.
	exact := wireValueExact(opt, wire)
	if resolved == netsim.CollectivePS {
		exact = wire == cluster.WireLossless
	}
	if (resolved == netsim.CollectiveAllGather || resolved == netsim.CollectivePS) && !exact {
		return fmt.Errorf("check: -format %s is not value-exact for this run (compressor off, chunked pairs-i8, or a ps pull re-encode) — no bit-exact reference exists; use -format lossless, or pairs-i8 with a compressor and -chunks <= 1, or drop -check", opt.format)
	}
	bitwise := resolved == netsim.CollectiveAllGather || resolved == netsim.CollectivePS
	for i := range want {
		if bitwise && losses[i] != want[i] {
			return fmt.Errorf("check: loss[%d] = %.17g, in-process trainer says %.17g (must be bit-identical)", i, losses[i], want[i])
		}
		if !bitwise && math.Abs(losses[i]-want[i]) > 1e-9 {
			return fmt.Errorf("check: loss[%d] = %.17g, in-process trainer says %.17g (outside ring tolerance)", i, losses[i], want[i])
		}
	}
	exchanges := opt.iters - start
	var wantMsgs int
	switch resolved {
	case netsim.CollectiveAllGather:
		wantMsgs = exchanges * netsim.ChunkedAllGatherMessages(workers, opt.chunks)
	case netsim.CollectiveRing:
		wantMsgs = exchanges * netsim.RingMessages(workers)
	case netsim.CollectivePS:
		wantMsgs = exchanges
	}
	if msgs, _ := nd.Transport().Totals(); msgs != wantMsgs {
		return fmt.Errorf("check: sent %d gradient messages, formula says %d", msgs, wantMsgs)
	}
	if msgs, _ := nd.Transport().RecvTotals(); msgs != wantMsgs {
		return fmt.Errorf("check: received %d gradient messages, formula says %d", msgs, wantMsgs)
	}
	if nt.addr != "" {
		if err := checkMetricsEndpoint(nt.addr, nd, wantMsgs); err != nil {
			return err
		}
	}
	mode := "bit-identical to in-process"
	if !bitwise {
		mode = "within ring tolerance of in-process"
	}
	fmt.Printf("node %d: check passed — losses %s, traffic exact (%d msgs)\n", opt.node, mode, wantMsgs)
	return nil
}

// checkMetricsEndpoint scrapes this process's own /healthz and /metrics
// over real HTTP and asserts the exported totals equal the instrumented
// transport's exact counters and the collective's message formula — the
// full export path (aggregation, Prometheus rendering, HTTP serving) is
// verified against ground truth, so the observability layer is provably
// not lying about this run.
func checkMetricsEndpoint(addr string, nd *cluster.Node, wantMsgs int) error {
	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", fmt.Errorf("check: GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", fmt.Errorf("check: reading %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("check: GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), nil
	}
	health, err := get("/healthz")
	if err != nil {
		return err
	}
	if strings.TrimSpace(health) != "ok" {
		return fmt.Errorf("check: /healthz said %q, want ok", strings.TrimSpace(health))
	}
	text, err := get("/metrics")
	if err != nil {
		return err
	}
	vals, err := telemetry.ParseProm(text)
	if err != nil {
		return err
	}
	sentMsgs, sentBytes := nd.Transport().Totals()
	recvMsgs, recvBytes := nd.Transport().RecvTotals()
	for _, c := range []struct {
		metric string
		want   int
	}{
		{"sidco_sent_messages_total", sentMsgs},
		{"sidco_sent_bytes_total", sentBytes},
		{"sidco_recv_messages_total", recvMsgs},
		{"sidco_recv_bytes_total", recvBytes},
	} {
		got, ok := vals[c.metric]
		if !ok {
			return fmt.Errorf("check: /metrics did not export %s", c.metric)
		}
		if got != float64(c.want) {
			return fmt.Errorf("check: /metrics %s = %v, instrumented transport says %d", c.metric, got, c.want)
		}
	}
	if got := vals["sidco_sent_messages_total"]; got != float64(wantMsgs) {
		return fmt.Errorf("check: /metrics sidco_sent_messages_total = %v, collective formula says %d", got, wantMsgs)
	}
	// The per-link byte counters must partition the totals exactly.
	var linkSent, linkRecv float64
	for name, v := range vals {
		if strings.HasPrefix(name, "sidco_link_sent_bytes_total{") {
			linkSent += v //sidco:nondet byte counters are integral, float addition of them is exact in any order
		}
		if strings.HasPrefix(name, "sidco_link_recv_bytes_total{") {
			linkRecv += v //sidco:nondet byte counters are integral, float addition of them is exact in any order
		}
	}
	if linkSent != float64(sentBytes) || linkRecv != float64(recvBytes) {
		return fmt.Errorf("check: per-link bytes sum to %v sent / %v recv, instrumented transport says %d / %d",
			linkSent, linkRecv, sentBytes, recvBytes)
	}
	fmt.Printf("metrics endpoint verified: %d msgs, %d bytes sent match formula + instrumented totals\n", sentMsgs, sentBytes)
	return nil
}

// runLaunch spawns the whole deployment on this machine: -launch N
// worker processes (plus a server process under ps) over kernel-assigned
// loopback ports, forwarding the workload flags to every child. The
// first failing child takes the rest of the deployment down with it, and
// a watchdog kills everything if the run overstays -launch-timeout — a
// hung deployment fails fast instead of pinning CI until its global
// timeout.
func runLaunch(opt options) error {
	if opt.iters < 1 {
		return fmt.Errorf("-iters %d, need >= 1", opt.iters)
	}
	coll, err := parseCollective(opt.collective)
	if err != nil {
		return err
	}
	nodes := cluster.NodeCount(opt.launch, coll)
	serverRank := -1
	if resolveCollective(opt, coll) == netsim.CollectivePS {
		serverRank = nodes - 1
	}
	killR, killStep, err := parseKillRank(opt.killRank)
	if err != nil {
		return err
	}
	if killR >= 0 {
		if killR >= nodes {
			return fmt.Errorf("-kill-rank %d outside the %d-node deployment", killR, nodes)
		}
		if killR == serverRank {
			return fmt.Errorf("-kill-rank %d is the parameter server; losing it is unrecoverable by design — kill a worker rank", killR)
		}
		if killStep >= opt.iters {
			return fmt.Errorf("-kill-rank step %d >= -iters %d: the target would never die", killStep, opt.iters)
		}
		// Fault injection needs failure detection and recovery budget;
		// default both on so the quickstart gate works out of the box.
		if opt.stepTimeout <= 0 {
			opt.stepTimeout = 2 * time.Second
		}
		if opt.stepRetries == 0 {
			opt.stepRetries = 2
		}
		if opt.check {
			fmt.Printf("kill-rank: per-child bitwise -check is off (membership shrinks mid-run); gating on survivor agreement instead\n")
		}
	}
	addrs, err := cluster.FreeLoopbackAddrs(nodes)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	// Catch Ctrl-C / SIGTERM before spawning: an interrupted launcher must
	// take its children with it instead of leaking orphan ranks that hold
	// their loopback ports until the schedule deadlocks.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	fmt.Printf("launching %d processes over loopback (%s)\n", nodes, strings.Join(addrs, ", "))
	type child struct {
		rank int
		cmd  *exec.Cmd
		out  bytes.Buffer
		err  error
	}
	children := make([]*child, nodes)
	exits := make(chan *child, nodes)
	for rank := 0; rank < nodes; rank++ {
		args := []string{
			"-node", fmt.Sprint(rank),
			"-hosts", strings.Join(addrs, ","),
			"-collective", opt.collective,
			"-chunks", fmt.Sprint(opt.chunks),
			"-iters", fmt.Sprint(opt.iters),
			"-compressor", opt.compressor,
			"-delta", fmt.Sprint(opt.delta),
			"-seed", fmt.Sprint(opt.seed),
			"-format", opt.format,
			"-parallel", fmt.Sprint(opt.parallel),
			"-dial-timeout", opt.dialTimeout.String(),
			"-step-timeout", opt.stepTimeout.String(),
			"-step-retries", fmt.Sprint(opt.stepRetries),
		}
		if rank == killR {
			args = append(args, "-kill-at-step", fmt.Sprint(killStep))
		}
		if opt.ckpt != "" {
			args = append(args, "-ckpt", opt.ckpt, "-ckpt-every", fmt.Sprint(opt.ckptEvery))
		}
		if opt.resume != "" {
			args = append(args, "-resume", opt.resume)
		}
		if opt.check && killR < 0 {
			args = append(args, "-check")
		}
		if opt.metrics != "" {
			// Children cannot share a fixed address; each binds its own
			// kernel-assigned loopback port (printed in its output).
			args = append(args, "-metrics", "127.0.0.1:0")
		}
		if opt.telemetryPath != "" {
			args = append(args, "-telemetry", fmt.Sprintf("%s.rank%d", opt.telemetryPath, rank))
		}
		c := &child{rank: rank, cmd: exec.Command(exe, args...)}
		c.cmd.Stdout = &c.out
		c.cmd.Stderr = &c.out
		if err := c.cmd.Start(); err != nil {
			for _, prev := range children[:rank] {
				prev.cmd.Process.Kill()
			}
			return fmt.Errorf("starting node %d: %w", rank, err)
		}
		children[rank] = c
	}
	for _, c := range children {
		go func(c *child) {
			c.err = c.cmd.Wait()
			exits <- c
		}(c)
	}
	killAll := func() {
		for _, c := range children {
			c.cmd.Process.Kill()
		}
	}
	// expectedKill: the fault-injection target dying with its designated
	// exit code is the plan, not a failure — the survivors keep running.
	expectedKill := func(c *child) bool {
		return c.rank == killR && exitStatus(c.err) == killExitCode
	}
	watchdog := time.After(opt.launchTimeout) //sidco:nondet process-supervision timeout, not training state
	failed, timedOut, interrupted := 0, false, false
	for collected := 0; collected < nodes; {
		select {
		case c := <-exits:
			collected++
			if c.err == nil {
				continue
			}
			if expectedKill(c) {
				fmt.Printf("launch: rank %d died on schedule before step %d\n", killR, killStep)
				continue
			}
			failed++
			// One dead node stalls its peers mid-schedule; take the
			// deployment down so every Wait returns promptly.
			killAll()
		case <-watchdog:
			timedOut = true
			killAll()
			watchdog = nil // keep draining exits; children are dying now
		case sig := <-sigc:
			interrupted = true
			fmt.Fprintf(os.Stderr, "launch: caught %v, killing %d children\n", sig, nodes)
			killAll()
		}
	}
	for _, c := range children {
		genuineFail := c.err != nil && !expectedKill(c)
		if c.rank == 0 || genuineFail {
			os.Stdout.Write(c.out.Bytes())
		}
		if genuineFail {
			fmt.Fprintf(os.Stderr, "node %d exited with %v\n", c.rank, c.err)
		}
	}
	if interrupted {
		return fmt.Errorf("interrupted; deployment killed")
	}
	if timedOut {
		return fmt.Errorf("deployment killed after %v watchdog", opt.launchTimeout)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d processes failed", failed, nodes)
	}
	if killR >= 0 {
		kc := children[killR]
		if !expectedKill(kc) {
			return fmt.Errorf("kill-rank: rank %d was scheduled to die before step %d but exited with %v", killR, killStep, kc.err)
		}
		if err := checkSurvivorAgreement(nodes, killR, serverRank, func(r int) []byte { return children[r].out.Bytes() }); err != nil {
			return err
		}
		fmt.Printf("launch: rank %d killed at step %d, %d survivors finished cleanly\n", killR, killStep, nodes-1)
		return nil
	}
	fmt.Printf("launch: all %d processes finished cleanly\n", nodes)
	if opt.telemetryPath != "" && opt.check {
		if err := checkLaunchTraces(opt, coll, nodes); err != nil {
			return err
		}
	}
	return nil
}

// parseKillRank decodes a -kill-rank R@K spec; empty means no fault
// injection (rank -1).
func parseKillRank(s string) (rank, step int, err error) {
	if s == "" {
		return -1, -1, nil
	}
	if _, serr := fmt.Sscanf(s, "%d@%d", &rank, &step); serr != nil || rank < 0 || step < 0 {
		return -1, -1, fmt.Errorf("-kill-rank %q: want R@K with rank R and step K both >= 0", s)
	}
	return rank, step, nil
}

// exitStatus extracts a child's exit code, or -1 when it did not exit
// normally (nil error, signal death, start failure).
func exitStatus(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// finalLoss scans a child's output for its "final global loss" line.
// %.17g printing round-trips float64 exactly, so the parsed value is
// bit-identical to what the child computed.
func finalLoss(out []byte) (float64, bool) {
	for _, line := range strings.Split(string(out), "\n") {
		i := strings.Index(line, "final global loss ")
		if i < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i:], "final global loss %g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// checkSurvivorAgreement is the kill-mode gate: every surviving worker
// rank must have printed a final global loss, and — because the
// renegotiated group reduces in the same member order with the same
// rescaled mean everywhere — those losses must agree bit for bit. A
// survivor that silently diverged after the membership change fails the
// launch here even though its process exited zero.
func checkSurvivorAgreement(nodes, killR, serverRank int, output func(rank int) []byte) error {
	ref, refRank := 0.0, -1
	for r := 0; r < nodes; r++ {
		if r == killR || r == serverRank {
			continue
		}
		loss, ok := finalLoss(output(r))
		if !ok {
			return fmt.Errorf("kill-rank: survivor rank %d printed no final global loss", r)
		}
		if refRank < 0 {
			ref, refRank = loss, r
			continue
		}
		if math.Float64bits(loss) != math.Float64bits(ref) {
			return fmt.Errorf("kill-rank: survivor rank %d finished at loss %.17g, rank %d at %.17g — survivors diverged", r, loss, refRank, ref)
		}
	}
	fmt.Printf("kill-rank check passed: survivors agree on final global loss %.17g\n", ref)
	return nil
}

// checkLaunchTraces assembles the children's per-rank telemetry streams
// into one global timeline and gates the deployment on it: every
// gradient message and every TCP frame the ranks sent must pair with
// exactly one receive on the peer's stream, and the paired gradient
// total must equal iters exchanges of the collective's closed-form
// message count — the cross-process half of the traffic accounting each
// child already verified locally.
func checkLaunchTraces(opt options, coll netsim.Collective, nodes int) error {
	streams := make([]*traceview.Stream, 0, nodes)
	for rank := 0; rank < nodes; rank++ {
		s, err := traceview.ReadFile(fmt.Sprintf("%s.rank%d", opt.telemetryPath, rank))
		if err != nil {
			return fmt.Errorf("launch trace check: %w", err)
		}
		streams = append(streams, s)
	}
	tl, err := traceview.Assemble(streams)
	if err != nil {
		return fmt.Errorf("launch trace check: %w", err)
	}
	if err := traceview.CheckComplete(tl); err != nil {
		return fmt.Errorf("launch trace check: %w", err)
	}
	resolved := resolveCollective(opt, coll)
	if err := traceview.CheckMessageCount(tl, resolved, opt.launch, opt.chunks, opt.iters); err != nil {
		return fmt.Errorf("launch trace check: %w", err)
	}
	paired, _, _ := tl.PairStats(false)
	wirePaired, _, _ := tl.PairStats(true)
	fmt.Printf("launch trace check: %d gradient + %d wire messages assembled across %d ranks, all paired, counts match the %s formula\n",
		paired, wirePaired, nodes, resolved)
	return nil
}
