// Command sidco-train regenerates the paper's distributed-training
// evaluation: Table 1 and Figures 3-6, 9-11, 13 and 18, using the
// discrete timeline simulator calibrated to the paper's cluster and
// communication overheads.
//
// Usage:
//
//	sidco-train -list             # print the Table 1 catalog
//	sidco-train -fig 3            # RNN benchmarks (PTB, AN4)
//	sidco-train -fig 5            # CIFAR-10 CNNs
//	sidco-train -fig 6            # ImageNet CNNs
//	sidco-train -fig 9            # smoothed achieved-ratio series
//	sidco-train -fig 18           # all-SIDs full comparison
//	sidco-train -fig all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure: 3, 4, 5, 6, 9, 10, 11, 13, 18, table1, all")
	list := flag.Bool("list", false, "print the Table 1 workload catalog and exit")
	iters := flag.Int("iters", 100, "simulated iterations per run")
	scale := flag.Int("scale", 100, "dimension divisor for statistical streams")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	w := os.Stdout
	if *list {
		harness.Table1Catalog(w)
		return
	}
	opt := harness.Options{Iters: *iters, SimScale: *scale, Seed: *seed}
	figs := map[string]func() error{
		"table1": func() error { harness.Table1Catalog(w); return nil },
		"3":      func() error { return harness.Fig3(w, opt) },
		"4":      func() error { return harness.Fig4(w, opt) },
		"5":      func() error { return harness.Fig5(w, opt) },
		"6":      func() error { return harness.Fig6(w, opt) },
		"9":      func() error { return harness.Fig9(w, opt) },
		"10":     func() error { return harness.Fig10(w, opt) },
		"11":     func() error { return harness.Fig11(w, opt) },
		"13":     func() error { return harness.Fig13(w, opt) },
		"18":     func() error { return harness.Fig18(w, opt) },
	}
	if *fig == "all" {
		for _, name := range []string{"table1", "3", "4", "5", "6", "9", "10", "11", "13", "18"} {
			if err := figs[name](); err != nil {
				fmt.Fprintf(os.Stderr, "sidco-train: fig %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	f, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "sidco-train: unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "sidco-train: %v\n", err)
		os.Exit(1)
	}
}
