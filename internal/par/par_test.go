package par

import (
	"sync/atomic"
	"testing"
)

// TestRangeBoundsPartition checks the fan-out ranges tile [0, d) exactly
// — no gap, no overlap — for awkward sizes and worker counts, including
// p > d (trailing workers get empty ranges).
func TestRangeBoundsPartition(t *testing.T) {
	for _, d := range []int{0, 1, 2, 7, 64, 1021, 1 << 16} {
		for _, p := range []int{1, 2, 3, 8, 13} {
			next := 0
			for w := 0; w < p; w++ {
				lo, hi := RangeBounds(d, p, w)
				if lo != next {
					t.Fatalf("d=%d p=%d w=%d: lo=%d, want %d (gap or overlap)", d, p, w, lo, next)
				}
				if hi < lo {
					t.Fatalf("d=%d p=%d w=%d: hi=%d < lo=%d", d, p, w, hi, lo)
				}
				next = hi
			}
			if next != d {
				t.Fatalf("d=%d p=%d: ranges end at %d, want %d", d, p, next, d)
			}
		}
	}
}

// TestDoRunsEveryWorker checks Do invokes fn exactly once per worker
// index 0..p-1 and returns only after all of them finished.
func TestDoRunsEveryWorker(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		var ran [8]atomic.Int32
		Do(p, func(w int) { ran[w].Add(1) })
		for w := 0; w < p; w++ {
			if got := ran[w].Load(); got != 1 {
				t.Errorf("p=%d: worker %d ran %d times, want 1", p, w, got)
			}
		}
		for w := p; w < len(ran); w++ {
			if got := ran[w].Load(); got != 0 {
				t.Errorf("p=%d: worker %d ran %d times, want 0", p, w, got)
			}
		}
	}
}
