// Package par is the tiny fork-join substrate shared by the
// range-parallel passes in tensor, stats and core: a worker splitter
// that mirrors the cluster layer's chunk split, and a Do that fans a
// function out over worker indices and joins. Determinism is the
// callers' contract: every parallel pass in this codebase assigns
// workers fixed contiguous index ranges and merges results in worker
// order, so P=1 and P=n produce bit-identical outputs.
package par

import "sync"

// RangeBounds returns the half-open range [lo, hi) of worker w of p
// over d elements: lo = w*d/p, hi = (w+1)*d/p. It is the same split
// cluster.chunkBounds uses for chunked collectives, so a parallel pass
// over chunk payloads lands on chunk boundaries.
func RangeBounds(d, p, w int) (lo, hi int) {
	return w * d / p, (w + 1) * d / p
}

// Do runs fn(0), fn(1), ..., fn(p-1), concurrently when p > 1, and
// returns when all calls have finished. fn(0) runs on the calling
// goroutine, so p <= 1 is exactly a direct call with no goroutine or
// synchronisation cost.
func Do(p int, fn func(worker int)) {
	if p <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p - 1)
	for w := 1; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}
