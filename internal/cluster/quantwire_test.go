package cluster

import (
	"math"
	"testing"

	"repro/internal/encoding"
	"repro/internal/netsim"
)

// TestQuantizedWireTrafficMatchesAccounting pins the exact-traffic
// contract for every data-independent wire format, quantized ones
// included: the instrumented byte counters must equal netsim's
// all-gather closed form fed with encoding.Size of each worker's
// per-chunk selection — to the byte, monolithic and chunked.
func TestQuantizedWireTrafficMatchesAccounting(t *testing.T) {
	const dim, workers = 400, 4
	ins := randomInputs(t, workers, dim, 0.05, 23)
	for _, wire := range []Wire{WireLossless, WirePairs, WirePairsF16, WirePairsBF16, WirePairsI8} {
		format, err := wire.Format()
		if err != nil {
			t.Fatal(err)
		}
		for _, chunks := range []int{1, 8} {
			_, e := engineExchange(t, Config{
				Workers: workers, Collective: netsim.CollectiveAllGather,
				Format: wire, Chunks: chunks,
			}, ins, dim)
			msgs, bytes := e.Transport().Totals()
			e.Close()
			if want := workers * netsim.ChunkedAllGatherMessages(workers, chunks); msgs != want {
				t.Errorf("%v chunks=%d: %d messages, want %d", wire, chunks, msgs, want)
			}
			wantBytes := 0
			for _, in := range ins {
				for _, nnz := range ChunkNNZ(in.Sparse.Idx, dim, chunks) {
					sz, err := encoding.Size(format, dim, nnz)
					if err != nil {
						t.Fatal(err)
					}
					wantBytes += netsim.AllGatherTrafficBytes(workers, sz)
				}
			}
			if bytes != wantBytes {
				t.Errorf("%v chunks=%d: %d bytes on the wire, accounting says %d", wire, chunks, bytes, wantBytes)
			}
		}
	}
}

// TestQuantizedWireAggregates checks the value semantics of the
// quantized wires: every node agrees (Verify), and the aggregate equals
// the mean of the per-worker selections pushed through the format's
// RoundTripValues — i.e. the engine loses exactly the precision the
// format defines, nothing more.
func TestQuantizedWireAggregates(t *testing.T) {
	const dim, workers = 257, 3
	ins := randomInputs(t, workers, dim, 0.1, 29)
	for _, wire := range []Wire{WirePairsF16, WirePairsBF16, WirePairsI8} {
		format, err := wire.Format()
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, dim)
		for _, in := range ins {
			vals := append([]float64(nil), in.Sparse.Vals...)
			if err := encoding.RoundTripValues(format, vals); err != nil {
				t.Fatal(err)
			}
			for i, j := range in.Sparse.Idx {
				want[j] += vals[i]
			}
		}
		for i := range want {
			want[i] *= 1 / float64(workers) // Scale's reciprocal multiply, not a divide
		}
		got, e := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveAllGather,
			Format: wire, Verify: true,
		}, ins, dim)
		e.Close()
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%v: element %d = %v, want %v (decode-side mean diverges from RoundTripValues model)",
					wire, i, got[i], want[i])
			}
		}
	}
}

// TestParallelDecodeBitIdentity runs the same exchange with and without
// the decode fan-out and requires bitwise-equal aggregates: parallelism
// must never change the reduction order.
func TestParallelDecodeBitIdentity(t *testing.T) {
	const dim, workers = 1021, 5
	ins := randomInputs(t, workers, dim, 0.1, 31)
	for _, wire := range []Wire{WireLossless, WirePairsI8} {
		for _, chunks := range []int{1, 4} {
			base, e0 := engineExchange(t, Config{
				Workers: workers, Collective: netsim.CollectiveAllGather,
				Format: wire, Chunks: chunks,
			}, ins, dim)
			e0.Close()
			for _, p := range []int{2, 8} {
				got, e := engineExchange(t, Config{
					Workers: workers, Collective: netsim.CollectiveAllGather,
					Format: wire, Chunks: chunks, Parallelism: p, Verify: true,
				}, ins, dim)
				e.Close()
				for i := range base {
					if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
						t.Fatalf("%v chunks=%d P=%d: element %d = %v, want %v", wire, chunks, p, i, got[i], base[i])
					}
				}
			}
		}
	}
}
