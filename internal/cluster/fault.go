package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan is a deterministic failure schedule: faults trigger on step
// counters and per-link send counts, never on wall-clock randomness, so
// an injected failure is a reproducible test input — the same plan over
// the same schedule kills the same operation every run.
type FaultPlan struct {
	// KillRank maps a node id to the step at which it dies. A node dead
	// at step s fails its own operations from the first op tagged step
	// >= s (the error wraps ErrClosed, the unrecoverable local-shutdown
	// class), its inbound links blackhole (models a dead peer's kernel
	// buffering), and peers receiving from it fail with ErrPeerLost once
	// its pre-death payloads are drained — exactly the observable
	// behaviour of a crashed process over TCP, minus the timing noise.
	KillRank map[int]int64
	// KillLink maps a directed link to the number of successful sends
	// after which it breaks: send count >= limit fails both ends of the
	// link with ErrPeerLost (pre-break payloads still deliver).
	KillLink map[Link]int
}

// FaultTransport wraps any Transport with the deterministic failure
// injection of a FaultPlan. It implements TimeoutRecver (forwarding to
// the inner transport's implementation) and consumes the step tags an
// Instrumented wrapper forwards down via SetStep, so step-triggered
// kills fire at exchange boundaries — before any payload of the fatal
// step is sent.
type FaultTransport struct {
	inner Transport
	plan  FaultPlan
	step  atomic.Int64

	mu   sync.Mutex
	sent map[Link]int // guarded by mu; successful sends per killable link
}

// NewFaultTransport wraps inner with plan. The zero plan injects
// nothing: the wrapper is then a transparent pass-through.
func NewFaultTransport(inner Transport, plan FaultPlan) *FaultTransport {
	return &FaultTransport{inner: inner, plan: plan, sent: make(map[Link]int)}
}

// Nodes implements Transport.
func (t *FaultTransport) Nodes() int { return t.inner.Nodes() }

// SetStep advances the fault clock: operations from here on are judged
// against step-triggered kills at this step. Instrumented forwards its
// own SetStep here, so schedules need no extra wiring.
func (t *FaultTransport) SetStep(step int64) { t.step.Store(step) }

// dead reports whether node is killed at the current step.
func (t *FaultTransport) dead(node int) bool {
	s, ok := t.plan.KillRank[node]
	return ok && t.step.Load() >= s
}

// linkBroken reports whether the directed link's send budget is spent.
func (t *FaultTransport) linkBroken(from, to int) bool {
	limit, ok := t.plan.KillLink[Link{from, to}]
	if !ok {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent[Link{from, to}] >= limit
}

// Send implements Transport with the plan applied: a dead sender fails
// (ErrClosed class — its own process is gone), a dead receiver
// blackholes (the payload vanishes, as into a crashed peer's kernel
// buffer), and a broken link fails with ErrPeerLost.
func (t *FaultTransport) Send(from, to int, payload []byte) error {
	if t.dead(from) {
		return fmt.Errorf("cluster: fault: node %d killed at step %d: %w", from, t.plan.KillRank[from], ErrClosed)
	}
	if t.linkBroken(from, to) {
		return fmt.Errorf("cluster: fault: send %d->%d: link killed: %w", from, to, ErrPeerLost)
	}
	if t.dead(to) {
		return nil // blackhole: the dead peer will never read it
	}
	if err := t.inner.Send(from, to, payload); err != nil {
		return err
	}
	if _, ok := t.plan.KillLink[Link{from, to}]; ok {
		t.mu.Lock()
		t.sent[Link{from, to}]++
		t.mu.Unlock()
	}
	return nil
}

// drainOrFail delivers any payload the inner transport already queued on
// a now-dead link (per-link FIFO: pre-death payloads still count), then
// reports the peer lost.
func (t *FaultTransport) drainOrFail(to, from int, cause string) ([]byte, error) {
	if tr, ok := t.inner.(TimeoutRecver); ok {
		p, err := tr.RecvTimeout(to, from, 0)
		if err == nil {
			return p, nil
		}
		if !errors.Is(err, ErrTimeout) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cluster: fault: recv %d->%d: %s: %w", to, from, cause, ErrPeerLost)
}

// Recv implements Transport with the plan applied: a dead receiver
// fails its own call (ErrClosed class), while receiving from a dead
// peer or over a broken link drains pre-fault payloads and then fails
// with ErrPeerLost.
func (t *FaultTransport) Recv(to, from int) ([]byte, error) {
	if t.dead(to) {
		return nil, fmt.Errorf("cluster: fault: node %d killed at step %d: %w", to, t.plan.KillRank[to], ErrClosed)
	}
	if t.dead(from) {
		return t.drainOrFail(to, from, "peer killed")
	}
	if t.linkBroken(from, to) {
		return t.drainOrFail(to, from, "link killed")
	}
	return t.inner.Recv(to, from)
}

// RecvTimeout implements TimeoutRecver, applying the plan before
// forwarding. An inner transport without timeout support degrades to
// the blocking Recv.
func (t *FaultTransport) RecvTimeout(to, from int, timeout time.Duration) ([]byte, error) {
	if t.dead(to) {
		return nil, fmt.Errorf("cluster: fault: node %d killed at step %d: %w", to, t.plan.KillRank[to], ErrClosed)
	}
	if t.dead(from) {
		return t.drainOrFail(to, from, "peer killed")
	}
	if t.linkBroken(from, to) {
		return t.drainOrFail(to, from, "link killed")
	}
	if tr, ok := t.inner.(TimeoutRecver); ok {
		return tr.RecvTimeout(to, from, timeout)
	}
	return t.inner.Recv(to, from)
}

// Close implements Transport.
func (t *FaultTransport) Close() error { return t.inner.Close() }
