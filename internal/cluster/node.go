package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/par"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// sched executes the collective schedules from one node's perspective:
// the shared runner behind Engine (which hosts all N nodes in one
// process) and Node (one node per process). Its fields are immutable
// after construction, so Engine's node goroutines share one value.
type sched struct {
	workers     int
	full        []int // identityMembers(workers): the full-membership list
	server      int   // server node id under PS, else -1
	format      encoding.Format
	chunks      int
	parallel    int // decode fan-out per chunk round (<=1: sequential)
	computeSec  float64
	compressSec float64
	tp          *Instrumented
	tel         *telemetry.Tracer
}

// jobMembers resolves a job's worker member list (nil: full
// membership).
func (s *sched) jobMembers(jb job) []int {
	if jb.members != nil {
		return jb.members
	}
	return s.full
}

// nodeScratch is one node's reusable pipeline storage: encode buffers
// (one per chunk — a chunk's buffer stays pinned while it circulates the
// ring, so chunks cannot share), the all-gather result slots, the decode
// target, the zero-copy view headers and the identity index ramp backing
// dense-as-sparse views.
type nodeScratch struct {
	enc    [][]byte
	gather [][]byte
	ready  []float64 // per-chunk compression completion (virtual time)
	dec    tensor.Sparse
	decs   []tensor.Sparse // per-origin decode targets of the parallel path
	decErr []error         // per-origin decode outcomes, drained in order
	view   tensor.Sparse   // chunk subrange of the local selection
	full   tensor.Sparse   // full-support view of a dense gradient
	ident  []int32         // 0..dim-1 ramp for dense-as-sparse views
}

// chunkCount resolves the configured chunking (0 or 1: monolithic).
func (s *sched) chunkCount() int {
	if s.chunks > 1 {
		return s.chunks
	}
	return 1
}

// runWorker executes worker node w's half of one exchange, leaving the
// aggregated mean in out (which must have jb.dim elements). The whole
// round is traced as one collective span per node.
func (s *sched) runWorker(w int, jb job, sc *nodeScratch, out []float64) error {
	span := s.tel.Begin(telemetry.SpanCollective, w, -1, -1, int64(jb.step))
	err := s.runCollective(w, jb, sc, out)
	span.End()
	return err
}

func (s *sched) runCollective(w int, jb job, sc *nodeScratch, out []float64) error {
	if s.computeSec > 0 {
		s.tp.Compute(w, s.computeSec)
	}
	members := s.jobMembers(jb)
	recv := interceptRecv(s.tp, jb.deadline)
	switch jb.coll {
	case netsim.CollectiveRing:
		// Dense in-ring reduction: start from the local dense gradient
		// (densifying the sparse selection if the caller forced ring).
		if jb.sparse != nil {
			tensor.Zero(out)
			jb.sparse.AddTo(out)
		} else {
			if len(jb.dense) != jb.dim {
				return fmt.Errorf("dense gradient has %d elements, want %d", len(jb.dense), jb.dim) //sidco:errclass geometry violation means a buggy caller, deliberately fatal
			}
			copy(out, jb.dense)
		}
		if err := ringAllReduceGroup(s.tp, recv, members, w, out); err != nil {
			return err
		}
		tensor.Scale(1/float64(len(members)), out)
		return nil

	case netsim.CollectiveAllGather:
		return s.runAllGather(w, jb, sc, out)

	case netsim.CollectivePS:
		sp, err := s.localSparse(jb, sc)
		if err != nil {
			return err
		}
		sc.enc = growSlots(sc.enc, 1)
		es := s.tel.Begin(telemetry.SpanEncode, w, -1, -1, int64(jb.step)).WithValue(int64(s.format))
		sc.enc[0], err = encoding.EncodeTo(sc.enc[0][:0], sp, s.format)
		es.End()
		if err != nil {
			return err
		}
		if err := s.tp.Send(w, s.server, sc.enc[0]); err != nil {
			return err
		}
		reply, err := recv(w, s.server)
		if err != nil {
			return err
		}
		if err := encoding.DecodeInto(&sc.dec, reply); err != nil {
			return fmt.Errorf("decoding server reply: %w", err)
		}
		if sc.dec.Dim != jb.dim {
			return fmt.Errorf("server reply has dim %d, want %d", sc.dec.Dim, jb.dim) //sidco:errclass geometry violation means a buggy peer, deliberately fatal
		}
		tensor.Zero(out)
		sc.dec.AddTo(out)
		return nil
	}
	return fmt.Errorf("unreachable collective") //sidco:errclass internal invariant, deliberately fatal
}

// runAllGather executes the (optionally chunked) sparse all-gather for
// one node. The local selection is partitioned by index range into C
// chunks — each chunk's element budget is exactly what the monolithic
// selection placed in that range, so the global k-budget is preserved
// without any per-chunk floor — and every chunk runs one all-gather of
// encoded payloads. Compression time (CompressSec/C per chunk) and the
// encode of chunk i+1 happen inside chunk i's pipeline overlap slot.
//
// Aggregation stays bit-identical to the monolithic schedule: chunks
// partition the index space, and within each chunk contributions are
// decoded and added in worker-index order — for every element the same
// addition sequence as dist.InProcess over a lossless wire.
//
// Chunk counts beyond the dimension are harmless: chunkBounds collides
// (c*d/C == (c+1)*d/C) for the surplus chunks, whose index ranges are
// empty, so they ship header-only payloads and contribute nothing to the
// sum — the schedule still runs C full all-gathers, which is what the
// traffic formulas (netsim.ChunkedAllGatherMessages) count.
func (s *sched) runAllGather(w int, jb job, sc *nodeScratch, out []float64) error {
	members := s.jobMembers(jb)
	recv := interceptRecv(s.tp, jb.deadline)
	n := len(members)
	C := s.chunkCount()
	sp, err := s.localSparse(jb, sc)
	if err != nil {
		return err
	}
	perChunkCompress := 0.0
	if s.compressSec > 0 {
		perChunkCompress = s.compressSec / float64(C)
	}
	sc.enc = growSlots(sc.enc, C)
	if cap(sc.ready) < C {
		sc.ready = make([]float64, C)
	}
	sc.ready = sc.ready[:C]

	// encodeUpTo materialises chunk payloads in ascending order, charging
	// each chunk's compression slice to the node's compressor lane (which
	// runs concurrently with the NICs) and recording when each chunk
	// becomes sendable. It is called from the overlap hook (the pipelined
	// slot) and is idempotent from the loop head, which keeps single-node
	// rings — no transport step, so no hook — correct.
	encoded, pos := 0, 0
	encodeUpTo := func(c int) error {
		for ; encoded <= c; encoded++ {
			sc.ready[encoded] = 0
			if perChunkCompress > 0 {
				sc.ready[encoded] = s.tp.ComputeOverlap(w, perChunkCompress)
			}
			_, hi := chunkBounds(jb.dim, C, encoded)
			end := pos
			for end < len(sp.Idx) && int(sp.Idx[end]) < hi {
				end++
			}
			sc.view = tensor.Sparse{Dim: jb.dim, Idx: sp.Idx[pos:end], Vals: sp.Vals[pos:end]}
			pos = end
			var err error
			es := s.tel.Begin(telemetry.SpanEncode, w, -1, encoded, int64(jb.step)).WithValue(int64(s.format))
			sc.enc[encoded], err = encoding.EncodeTo(sc.enc[encoded][:0], &sc.view, s.format)
			es.End()
			if err != nil {
				return err
			}
		}
		return nil
	}

	tensor.Zero(out)
	for c := 0; c < C; c++ {
		if err := encodeUpTo(c); err != nil {
			return err
		}
		// The chunk's own payload cannot leave before its compression
		// finishes; everything the node merely forwards is not gated.
		s.tp.WaitFor(w, sc.ready[c])
		overlap := func() error {
			if c+1 < C {
				return encodeUpTo(c + 1)
			}
			return nil
		}
		sc.gather, err = allGatherGroup(s.tp, recv, members, w, sc.enc[c], sc.gather, overlap)
		if err != nil {
			return err
		}
		// Decode and reduce in worker-index order: with a lossless format
		// this is the exact operation sequence of dist.InProcess. With
		// parallel > 1 the per-origin decodes fan out into per-origin
		// scratch, but the floating-point reduction below still runs
		// serially in worker-index order, so the aggregate stays
		// bit-identical to the sequential schedule.
		if p := s.parallel; p > 1 && n > 1 {
			if p > n {
				p = n
			}
			for len(sc.decs) < n {
				sc.decs = append(sc.decs, tensor.Sparse{})
				sc.decErr = append(sc.decErr, nil)
			}
			par.Do(p, func(worker int) {
				lo, hi := par.RangeBounds(n, p, worker)
				for origin := lo; origin < hi; origin++ {
					sc.decErr[origin] = encoding.DecodeInto(&sc.decs[origin], sc.gather[origin])
				}
			})
			for origin := 0; origin < n; origin++ {
				if err := sc.decErr[origin]; err != nil {
					return fmt.Errorf("decoding origin %d chunk %d: %w", members[origin], c, err)
				}
				if sc.decs[origin].Dim != jb.dim {
					return fmt.Errorf("origin %d has dim %d, want %d", members[origin], sc.decs[origin].Dim, jb.dim) //sidco:errclass geometry violation means a buggy peer, deliberately fatal
				}
				sc.decs[origin].AddTo(out)
			}
		} else {
			for origin := 0; origin < n; origin++ {
				if err := encoding.DecodeInto(&sc.dec, sc.gather[origin]); err != nil {
					return fmt.Errorf("decoding origin %d chunk %d: %w", members[origin], c, err)
				}
				if sc.dec.Dim != jb.dim {
					return fmt.Errorf("origin %d has dim %d, want %d", members[origin], sc.dec.Dim, jb.dim) //sidco:errclass geometry violation means a buggy peer, deliberately fatal
				}
				sc.dec.AddTo(out)
			}
		}
	}
	tensor.Scale(1/float64(n), out)
	return nil
}

// localSparse resolves a worker's contribution to a sparse vector
// without copying: compressed gradients are used as-is, dense gradients
// get a full-support view over the scratch's index ramp, so even the
// no-compression baseline moves real encoded bytes.
func (s *sched) localSparse(jb job, sc *nodeScratch) (*tensor.Sparse, error) {
	if jb.sparse != nil {
		return jb.sparse, nil
	}
	if len(jb.dense) != jb.dim {
		return nil, fmt.Errorf("dense gradient has %d elements, want %d", len(jb.dense), jb.dim) //sidco:errclass geometry violation means a buggy caller, deliberately fatal
	}
	for i := len(sc.ident); i < jb.dim; i++ {
		sc.ident = append(sc.ident, int32(i))
	}
	sc.full = tensor.Sparse{Dim: jb.dim, Idx: sc.ident[:jb.dim], Vals: jb.dense}
	return &sc.full, nil
}

// growSlots ensures bufs has at least n reusable byte-buffer slots.
func growSlots(bufs [][]byte, n int) [][]byte {
	for len(bufs) < n {
		bufs = append(bufs, nil)
	}
	return bufs
}

// psServer is the parameter-server node's reusable aggregation state:
// one value lives for the life of the serving loop, whether that loop is
// Engine's server goroutine or a dedicated server process (Node.Serve).
type psServer struct {
	acc  []float64
	dim  int
	dec  tensor.Sparse
	agg  tensor.Sparse
	wire []byte
}

// round serves one parameter-server exchange: receive every surviving
// worker's push in worker-index order, combine, and broadcast the mean
// over the surviving count.
func (s *psServer) round(tp Transport, recv linkRecv, server int, workers []int, format encoding.Format) error {
	combine := func(pos, worker int, payload []byte) error {
		if err := encoding.DecodeInto(&s.dec, payload); err != nil {
			return err
		}
		if pos == 0 {
			s.dim = s.dec.Dim
			if len(s.acc) != s.dim {
				s.acc = make([]float64, s.dim)
			}
			tensor.Zero(s.acc)
		} else if s.dec.Dim != s.dim {
			return fmt.Errorf("worker %d pushed dim %d, want %d", worker, s.dec.Dim, s.dim) //sidco:errclass geometry violation means a buggy peer, deliberately fatal
		}
		// Worker-index arrival order (psServeGroup receives in ascending
		// member order) keeps the sum bit-identical to the in-process
		// reducer.
		s.dec.AddTo(s.acc)
		return nil
	}
	reply := func() ([]byte, error) {
		tensor.Scale(1/float64(len(workers)), s.acc)
		sparsifyInto(&s.agg, s.dim, s.acc)
		var err error
		// The reply buffer is broadcast to every worker and read
		// within the round, so recycling it across rounds is safe:
		// the round barrier ends before reuse.
		s.wire, err = encoding.EncodeTo(s.wire[:0], &s.agg, format)
		if err != nil {
			return nil, err
		}
		return s.wire, nil
	}
	return psServeGroup(tp, recv, server, workers, combine, reply)
}

// sparsifyInto extracts the non-zero support of a dense vector into
// reused sparse storage. Exact zeros drop out of the encoding; decoding
// restores them as zeros, so the round-trip is value-preserving.
func sparsifyInto(dst *tensor.Sparse, dim int, dense []float64) {
	dst.Reset(dim)
	for i, v := range dense {
		if v != 0 {
			dst.Append(int32(i), v)
		}
	}
}

// NodeConfig assembles one cluster node of a multi-process deployment.
type NodeConfig struct {
	// Workers is the global number of training nodes N (>= 1) — not the
	// count hosted by this process.
	Workers int
	// Rank is this node's id: 0..Workers-1 for a worker node, or exactly
	// Workers for the parameter-server node (CollectivePS only), which
	// runs Serve instead of Exchange.
	Rank int
	// Collective, Format, Chunks, ComputeSec and CompressSec mirror the
	// same Config fields; every process of a deployment must pass
	// identical values or the interlocking schedules diverge.
	// Parallelism is purely node-local (it never changes what goes on
	// the wire or the reduction order), so it may differ across the
	// processes of one deployment.
	Collective  netsim.Collective
	Format      Wire
	Chunks      int
	Parallelism int
	ComputeSec  float64
	CompressSec float64
	// StepTimeout, when positive, bounds every blocking receive of one
	// exchange (and of one server round): a receive stuck past the
	// deadline fails the step with an error wrapping ErrTimeout — a
	// recoverable classification, unlike ErrClosed. It must comfortably
	// exceed one full step including every peer's local compute, since
	// the schedules only interlock once all peers reach the exchange.
	// 0 disables deadlines (a dead peer then blocks the step forever
	// unless the transport detects it, as TCP does).
	StepTimeout time.Duration
	// MaxStepRetries enables elastic recovery: a step that fails
	// recoverably (peer lost or receive timeout) triggers a membership
	// renegotiation among the surviving nodes — fixed mask-exchange
	// rounds over the raw transport that double as a link drain — and is
	// then retried over the agreed group, up to this many times across
	// the node's lifetime per step. The surviving workers rescale the
	// aggregated mean to their count. 0 keeps the fail-stop behaviour.
	// Requires StepTimeout > 0: without deadlines, survivors that are
	// not adjacent to the dead peer would block forever instead of
	// joining the renegotiation.
	MaxStepRetries int
	// Transport is required: typically a TCPTransport hosting this rank
	// over the deployment's shared host list. It must span
	// NodeCount(Workers, Collective) nodes.
	//
	// The node reuses its encode buffers across exchanges, and unlike
	// Engine it has no built-in per-round barrier. A TCPTransport copies
	// every payload through the socket, so reuse is always safe there.
	// Nodes sharing a by-reference transport (ChanTransport) must end
	// every round with a collective barrier before the next Exchange —
	// MeanScalar after each step, as cmd/sidco-node does, is one — or a
	// node running ahead would overwrite bytes a slower peer is still
	// decoding. When in doubt in-process, use Engine instead.
	Transport Transport
	// Scenario enables the virtual-time model on the instrumented
	// transport (meaningful for single-process loopback studies; in a
	// real multi-process run each process only sees its own clock).
	Scenario *Scenario
	// Telemetry, if non-nil, traces this node's rounds (collective and
	// encode spans) and its gradient traffic (per-link sent/recv
	// message and byte counters, receive-wait time) — the counters are
	// emitted at the Instrumented layer, so telemetry totals equal
	// Transport().Totals()/RecvTotals() exactly. Nil is free.
	Telemetry *telemetry.Tracer
}

// Node is one cluster node in a process of its own: the per-process
// counterpart of Engine. A worker Node (Rank < Workers) satisfies
// dist.GradientExchange for a single local worker — plug it into a
// Workers=1 dist.Trainer whose FirstWorker is this rank and the process
// trains global worker Rank, exchanging real bytes with its peers. The
// server Node of a parameter-server deployment (Rank == Workers) runs
// Serve instead.
//
// Exchange leaves the global mean over all Workers contributions in agg,
// so the local optimizer applies exactly the update every peer applies:
// replicas that start from identical weights stay identical, and over
// the lossless wire the whole deployment reproduces the in-process
// trainer bit-for-bit.
type Node struct {
	cfg    NodeConfig
	sched  sched
	sc     nodeScratch
	raw    Transport
	out    []float64
	scalar [8]byte
	sgath  [][]byte
	closed bool

	// Elastic-membership state: the agreed participant list (worker node
	// ids plus the server id under PS), the renegotiation epoch, and the
	// stash of membership frames consumed out-of-band.
	group []int
	epoch uint32
	ng    negotiator
}

// NewNode validates cfg and binds the node to its transport.
//
//sidco:errclass construction-time config validation, deliberately fatal
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: Workers = %d, need >= 1", cfg.Workers)
	}
	switch cfg.Collective {
	case netsim.CollectiveAuto, netsim.CollectiveRing, netsim.CollectiveAllGather, netsim.CollectivePS:
	default:
		return nil, fmt.Errorf("cluster: unknown collective %v", cfg.Collective)
	}
	format, err := cfg.Format.Format()
	if err != nil {
		return nil, err
	}
	if err := validateChunks(cfg.Chunks, cfg.Collective); err != nil {
		return nil, err
	}
	if cfg.CompressSec < 0 {
		return nil, fmt.Errorf("cluster: CompressSec = %v, need >= 0", cfg.CompressSec)
	}
	if cfg.StepTimeout < 0 {
		return nil, fmt.Errorf("cluster: StepTimeout = %v, need >= 0", cfg.StepTimeout)
	}
	if cfg.MaxStepRetries < 0 {
		return nil, fmt.Errorf("cluster: MaxStepRetries = %d, need >= 0", cfg.MaxStepRetries)
	}
	if cfg.MaxStepRetries > 0 && cfg.StepTimeout <= 0 {
		return nil, fmt.Errorf("cluster: MaxStepRetries = %d requires StepTimeout > 0 (recovery needs receive deadlines to detect a dead peer from every rank)", cfg.MaxStepRetries)
	}
	nodes := NodeCount(cfg.Workers, cfg.Collective)
	if cfg.Rank < 0 || cfg.Rank >= nodes {
		return nil, fmt.Errorf("cluster: Rank = %d outside the %d-node deployment", cfg.Rank, nodes)
	}
	if cfg.Rank == cfg.Workers && cfg.Collective != netsim.CollectivePS {
		return nil, fmt.Errorf("cluster: Rank = %d is the server slot, which only CollectivePS has", cfg.Rank)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: Node requires a Transport (use Engine for the in-process default)")
	}
	if cfg.Transport.Nodes() < nodes {
		return nil, fmt.Errorf("cluster: transport has %d nodes, need %d", cfg.Transport.Nodes(), nodes)
	}
	server := -1
	if cfg.Collective == netsim.CollectivePS {
		server = cfg.Workers
	}
	return &Node{
		cfg:   cfg,
		raw:   cfg.Transport,
		group: identityMembers(nodes),
		sched: sched{
			workers:     cfg.Workers,
			full:        identityMembers(cfg.Workers),
			server:      server,
			format:      format,
			chunks:      cfg.Chunks,
			parallel:    cfg.Parallelism,
			computeSec:  cfg.ComputeSec,
			compressSec: cfg.CompressSec,
			tp:          NewInstrumented(cfg.Transport, cfg.Scenario).WithTelemetry(cfg.Telemetry),
			tel:         cfg.Telemetry,
		},
	}, nil
}

// Transport exposes the node's instrumented transport: its counters see
// this process's gradient traffic (sends from and receives at this
// rank), which is what a per-node traffic cross-check compares against
// the per-node share of netsim's collective formulas.
func (n *Node) Transport() *Instrumented { return n.sched.tp }

// Exchange implements dist.GradientExchange for the single local worker:
// ins must hold exactly one input — this rank's contribution — and agg
// receives the global mean over all Workers contributions. Every worker
// process must call Exchange for the same step with the same collective
// resolution, or the interlocked schedules deadlock; the transport's
// per-link FIFO keeps successive steps from interleaving.
func (n *Node) Exchange(step int, ins []dist.ExchangeInput, agg []float64) error {
	if n.closed {
		return fmt.Errorf("cluster: exchange on closed node: %w", ErrClosed)
	}
	if n.cfg.Rank >= n.cfg.Workers {
		return fmt.Errorf("cluster: exchange on the server node (rank %d); run Serve instead", n.cfg.Rank) //sidco:errclass caller misuse, deliberately fatal
	}
	if len(ins) != 1 {
		return fmt.Errorf("cluster: node exchange got %d inputs, hosts exactly 1 worker", len(ins)) //sidco:errclass caller misuse, deliberately fatal
	}
	if ins[0].Worker != n.cfg.Rank {
		return fmt.Errorf("cluster: node %d handed worker %d's gradient (is the trainer's FirstWorker set to the rank?)", n.cfg.Rank, ins[0].Worker) //sidco:errclass caller misuse, deliberately fatal
	}
	coll, err := resolveCollective(n.cfg.Collective, ins[0].Sparse != nil, n.cfg.Chunks)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		jb := job{
			step: step, sparse: ins[0].Sparse, dense: ins[0].Dense, dim: len(agg), coll: coll,
			members: n.workerMembers(), deadline: n.stepDeadline(),
		}
		n.sched.tp.SetStep(int64(step))
		err := n.sched.runWorker(n.cfg.Rank, jb, &n.sc, agg)
		if err == nil {
			return nil
		}
		if !Recoverable(err) || attempt >= n.cfg.MaxStepRetries {
			// Fail-stop, like Engine: a broken round leaves stray messages
			// on the links, so this node cannot safely run another
			// schedule.
			n.Close()
			return fmt.Errorf("cluster: node %d: %w", n.cfg.Rank, err)
		}
		if rerr := n.recover(err); rerr != nil {
			n.Close()
			return fmt.Errorf("cluster: node %d: step %d recovery after %v: %w", n.cfg.Rank, step, err, rerr)
		}
	}
}

// workerMembers returns the current worker participants: the agreed
// group minus the server node (if any), ascending.
func (n *Node) workerMembers() []int {
	if n.sched.server < 0 {
		return n.group
	}
	ws := make([]int, 0, len(n.group))
	for _, id := range n.group {
		if id < n.cfg.Workers {
			ws = append(ws, id)
		}
	}
	return ws
}

// stepDeadline computes the receive deadline of one schedule run.
//
//sidco:nondet fault-detection deadline, never feeds gradient math
func (n *Node) stepDeadline() time.Time {
	if n.cfg.StepTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(n.cfg.StepTimeout)
}

// recover handles a recoverable step failure: renegotiate membership
// with the survivors (seeding the protocol with a frame the failing
// receive may already have consumed) and validate that the agreed group
// can still train. The renegotiation timeout is twice the step timeout:
// a survivor adjacent to the dead peer fails fast, one waiting on a
// forwarded payload only after a full step timeout.
func (n *Node) recover(cause error) error {
	var pr *peerRenegotiating
	if errors.As(cause, &pr) {
		n.ng.note(pr.from, pr.frame)
	}
	timeout := 2 * n.cfg.StepTimeout
	dbg("node %d: recovering (epoch %d) after: %v", n.cfg.Rank, n.epoch+1, cause)
	view, err := n.ng.renegotiate(n.raw, n.cfg.Rank, n.group, n.epoch+1, timeout)
	if err != nil {
		return err
	}
	dbg("node %d: epoch %d agreed members %v", n.cfg.Rank, n.epoch+1, view)
	n.epoch++
	n.group = view
	if n.sched.server >= 0 && memberPos(view, n.sched.server) < 0 {
		return fmt.Errorf("cluster: parameter server lost — a PS deployment cannot recover without its server") //sidco:errclass lost server is unrecoverable under PS, deliberately fatal
	}
	if len(n.workerMembers()) < 1 {
		return fmt.Errorf("cluster: no workers left in the renegotiated group %v", view) //sidco:errclass empty worker set is unrecoverable, deliberately fatal
	}
	return nil
}

// MeanScalar all-reduces one scalar across the worker nodes and returns
// the mean, summed in worker-index order — the reduction that makes the
// global training loss of a multi-process run bit-identical to the
// in-process trainer's. It rides the raw transport, not the
// instrumented one: loss reporting is diagnostics, so it never pollutes
// the gradient-traffic counters the netsim cross-checks compare.
func (n *Node) MeanScalar(x float64) (float64, error) {
	if n.closed {
		return 0, fmt.Errorf("cluster: scalar reduce on closed node: %w", ErrClosed)
	}
	if n.cfg.Rank >= n.cfg.Workers {
		return 0, fmt.Errorf("cluster: scalar reduce on the server node (rank %d)", n.cfg.Rank) //sidco:errclass caller misuse, deliberately fatal
	}
	binary.LittleEndian.PutUint64(n.scalar[:], math.Float64bits(x))
	for attempt := 0; ; attempt++ {
		members := n.workerMembers()
		if len(members) == 1 {
			return x, nil
		}
		recv := interceptRecv(n.raw, n.stepDeadline())
		sgath, err := allGatherGroup(n.raw, recv, members, n.cfg.Rank, n.scalar[:], n.sgath, nil)
		if err == nil {
			n.sgath = sgath
			sum := 0.0
			for pos := range members {
				if len(sgath[pos]) != 8 {
					n.Close()
					return 0, fmt.Errorf("cluster: node %d scalar reduce: origin %d payload has %d bytes", n.cfg.Rank, members[pos], len(sgath[pos])) //sidco:errclass geometry violation means a buggy peer, deliberately fatal
				}
				sum += math.Float64frombits(binary.LittleEndian.Uint64(sgath[pos]))
			}
			return sum * (1 / float64(len(members))), nil
		}
		if !Recoverable(err) || attempt >= n.cfg.MaxStepRetries {
			n.Close()
			return 0, fmt.Errorf("cluster: node %d scalar reduce: %w", n.cfg.Rank, err)
		}
		if rerr := n.recover(err); rerr != nil {
			n.Close()
			return 0, fmt.Errorf("cluster: node %d scalar reduce recovery after %v: %w", n.cfg.Rank, err, rerr)
		}
	}
}

// Serve runs the parameter-server loop (Rank == Workers): one
// aggregation round per worker exchange. rounds > 0 serves exactly that
// many rounds — the deterministic shutdown of a fixed-iteration
// deployment, where the server is told the step count every worker was
// told. rounds <= 0 serves until the transport closes (the closure is
// the shutdown signal, so it returns nil rather than an error); note a
// peer merely dropping its connections does not close this node's
// transport, so unbounded serving needs an external Close.
func (n *Node) Serve(rounds int) error {
	if n.cfg.Rank != n.cfg.Workers || n.cfg.Collective != netsim.CollectivePS {
		return fmt.Errorf("cluster: Serve on rank %d, want the server rank %d under PS", n.cfg.Rank, n.cfg.Workers) //sidco:errclass caller misuse, deliberately fatal
	}
	var srv psServer
	for served := 0; rounds <= 0 || served < rounds; served++ {
		n.sched.tp.SetStep(int64(served))
		for attempt := 0; ; attempt++ {
			span := n.sched.tel.Begin(telemetry.SpanCollective, n.cfg.Rank, -1, -1, int64(served))
			recv := interceptRecv(n.sched.tp, n.stepDeadline())
			err := srv.round(n.sched.tp, recv, n.sched.server, n.workerMembers(), n.sched.format)
			span.End()
			if err == nil {
				break
			}
			if errors.Is(err, ErrClosed) {
				n.closed = true
				return nil
			}
			if !Recoverable(err) || attempt >= n.cfg.MaxStepRetries {
				n.closed = true
				n.sched.tp.Close()
				return fmt.Errorf("cluster: server: %w", err)
			}
			if rerr := n.recover(err); rerr != nil {
				n.closed = true
				n.sched.tp.Close()
				return fmt.Errorf("cluster: server: round %d recovery after %v: %w", served, err, rerr)
			}
		}
	}
	return nil
}

// Close marks the node closed and closes its transport. Safe to call
// more than once.
func (n *Node) Close() error {
	if n.closed {
		return nil
	}
	n.closed = true
	return n.sched.tp.Close()
}
