package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Link names a directed transport link.
type Link struct{ From, To int }

// LinkStats is the measured traffic of one directed link.
type LinkStats struct {
	Messages int
	Bytes    int
}

// Scenario parameterises the virtual-time model of an Instrumented
// transport: alpha-beta link costs plus the workload-shaping knobs —
// per-link bandwidth overrides for heterogeneous fabrics and per-node
// straggler factors for slow machines. A nil Scenario disables time
// modelling (traffic is still counted).
type Scenario struct {
	// LatencySec is the per-message latency alpha.
	LatencySec float64
	// BandwidthBps is the default per-link bandwidth in bits/second.
	BandwidthBps float64
	// LinkBandwidthBps overrides the bandwidth of individual links,
	// modelling oversubscribed or degraded paths.
	LinkBandwidthBps map[Link]float64
	// StragglerFactor multiplies node compute time (Compute calls);
	// missing or zero entries mean the nominal factor 1.
	StragglerFactor map[int]float64
}

// ScenarioFromNetwork lifts a netsim fabric into a homogeneous Scenario,
// so measured virtual time can be compared against the analytic model
// it mirrors.
func ScenarioFromNetwork(net netsim.Network) *Scenario {
	return &Scenario{LatencySec: net.LatencySec, BandwidthBps: net.BandwidthBps}
}

func (s *Scenario) bandwidth(from, to int) float64 {
	if bw, ok := s.LinkBandwidthBps[Link{from, to}]; ok && bw > 0 {
		return bw
	}
	return s.BandwidthBps
}

func (s *Scenario) transfer(from, to, bytes int) float64 {
	bw := s.bandwidth(from, to)
	if bw <= 0 {
		return 0
	}
	return float64(bytes) * 8 / bw
}

// Instrumented wraps any Transport with per-link traffic accounting and
// an optional discrete-event alpha-beta clock model. Counting is exact:
// total bytes equal the sum of payload lengths handed to Send, which for
// encoded gradients equals internal/encoding's size accounting.
//
// Sends and receives are counted separately, because the wrapped
// transport need not host every node: over a per-process TCPTransport
// (cmd/sidco-node) this wrapper only observes the local rank's traffic,
// so Totals is the process's outbound share of the collective and
// RecvTotals its inbound share. In a single-process deployment every
// message is both sent and received locally and the two mirror each
// other.
//
// The clock model charges each message alpha + bytes/bandwidth on both
// the sender's and the receiver's NIC: per-node NICs serialise their own
// transfers (so a parameter server's fan-in and fan-out serialise, as in
// netsim.ParameterServer) while distinct links run in parallel (so ring
// steps overlap, as in netsim.AllReduceDense). Stamps ride a per-link
// FIFO alongside the wrapped transport's own per-link FIFO; the schedules
// in this package have one sender and one receiver per link, which keeps
// the two queues aligned.
type Instrumented struct {
	inner Transport
	scen  *Scenario
	tel   *telemetry.Tracer
	step  atomic.Int64 // current training step for emitted message events, -1 outside steps

	mu         sync.Mutex
	stats      map[Link]*LinkStats // guarded by mu
	rstats     map[Link]*LinkStats // guarded by mu
	totalMsgs  int                 // guarded by mu
	totalBytes int                 // guarded by mu
	recvMsgs   int                 // guarded by mu
	recvBytes  int                 // guarded by mu
	clock      []float64           // guarded by mu (elements); per-node logical progress time
	txBusy     []float64           // guarded by mu (elements); per-node send-NIC busy-until
	rxBusy     []float64           // guarded by mu (elements); per-node receive-NIC busy-until
	pipeBusy   []float64           // guarded by mu (elements); per-node compressor-lane busy-until
	stamps     map[Link][]float64  // guarded by mu
	sendSeq    map[Link]int64      // guarded by mu; next send sequence per directed link
	recvSeq    map[Link]int64      // guarded by mu; next recv sequence per directed link
}

// NewInstrumented wraps inner. scen may be nil to count traffic without
// modelling time.
func NewInstrumented(inner Transport, scen *Scenario) *Instrumented {
	n := inner.Nodes()
	t := &Instrumented{
		inner:    inner,
		scen:     scen,
		stats:    make(map[Link]*LinkStats),
		rstats:   make(map[Link]*LinkStats),
		clock:    make([]float64, n),
		txBusy:   make([]float64, n),
		rxBusy:   make([]float64, n),
		pipeBusy: make([]float64, n),
		stamps:   make(map[Link][]float64),
		sendSeq:  make(map[Link]int64),
		recvSeq:  make(map[Link]int64),
	}
	t.step.Store(-1)
	return t
}

// SetStep tags subsequently emitted telemetry message events with the
// given training step, so trace assembly can slice a stream per step.
// The schedules are synchronous — every in-flight message belongs to
// exactly one exchange — so a single transport-wide tag is race-free
// when set before the exchange fans out. Pass -1 to clear. The tag is
// forwarded to the wrapped transport when it wants one (FaultTransport
// triggers step-scheduled kills off it).
func (t *Instrumented) SetStep(step int64) {
	t.step.Store(step)
	if s, ok := t.inner.(interface{ SetStep(int64) }); ok {
		s.SetStep(step)
	}
}

// WithTelemetry attaches a tracer and returns the receiver: every Send
// emits sent-message/byte counter events and every Recv emits
// recv-message/byte counters plus the wall-clock nanoseconds the call
// spent blocked (CounterRecvWaitNanos — the straggler + network wait of
// a synchronous schedule). The events mirror this wrapper's own exact
// counters, at the same layer, so telemetry totals must equal Totals()
// and RecvTotals() — the cross-check the tests assert. A nil tracer
// (the default) costs nothing.
func (t *Instrumented) WithTelemetry(tel *telemetry.Tracer) *Instrumented {
	t.tel = tel
	return t
}

// Nodes implements Transport.
func (t *Instrumented) Nodes() int { return t.inner.Nodes() }

// Send implements Transport, recording the message before delivery.
func (t *Instrumented) Send(from, to int, payload []byte) error {
	t.mu.Lock()
	l := Link{from, to}
	st := t.stats[l]
	if st == nil {
		st = &LinkStats{}
		t.stats[l] = st
	}
	st.Messages++
	st.Bytes += len(payload)
	t.totalMsgs++
	t.totalBytes += len(payload)
	seq := t.sendSeq[l]
	t.sendSeq[l] = seq + 1
	var vStart, vEnd float64
	hasVirtual := false
	if t.scen != nil && from >= 0 && from < len(t.clock) {
		start := t.txBusy[from]
		if t.clock[from] > start {
			start = t.clock[from]
		}
		t.txBusy[from] = start + t.scen.LatencySec + t.scen.transfer(from, to, len(payload))
		t.stamps[l] = append(t.stamps[l], start)
		vStart, vEnd, hasVirtual = start, t.txBusy[from], true
	}
	t.mu.Unlock()
	step := t.step.Load()
	t.tel.CountSeq(telemetry.CounterSentMessages, from, to, 1, seq, step)
	t.tel.CountSeq(telemetry.CounterSentBytes, from, to, int64(len(payload)), seq, step)
	if hasVirtual {
		t.tel.Virtual(telemetry.SpanSend, from, to, -1, step, seq, int64(len(payload)),
			vStart*1e9, vEnd*1e9)
	}
	return t.inner.Send(from, to, payload)
}

// Recv implements Transport, advancing the receiver's clock once the
// payload arrives.
func (t *Instrumented) Recv(to, from int) ([]byte, error) {
	return t.recv(to, from, -1)
}

// RecvTimeout implements TimeoutRecver when the wrapped transport does,
// with identical accounting: a timed-out call delivers nothing and
// counts nothing. Without inner support it degrades to blocking Recv.
func (t *Instrumented) RecvTimeout(to, from int, timeout time.Duration) ([]byte, error) {
	return t.recv(to, from, timeout)
}

// recv is the shared receive path; timeout < 0 blocks.
func (t *Instrumented) recv(to, from int, timeout time.Duration) ([]byte, error) {
	var t0 int64
	if t.tel.Enabled() {
		t0 = telemetry.Monotonic()
	}
	var payload []byte
	var err error
	if tr, ok := t.inner.(TimeoutRecver); ok && timeout >= 0 {
		payload, err = tr.RecvTimeout(to, from, timeout)
	} else {
		payload, err = t.inner.Recv(to, from)
	}
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	l := Link{from, to}
	rst := t.rstats[l]
	if rst == nil {
		rst = &LinkStats{}
		t.rstats[l] = rst
	}
	rst.Messages++
	rst.Bytes += len(payload)
	t.recvMsgs++
	t.recvBytes += len(payload)
	seq := t.recvSeq[l]
	t.recvSeq[l] = seq + 1
	var vStart, vEnd float64
	hasVirtual := false
	if t.scen != nil {
		if q := t.stamps[l]; len(q) > 0 && to >= 0 && to < len(t.clock) {
			start := q[0]
			t.stamps[l] = q[1:]
			if t.rxBusy[to] > start {
				start = t.rxBusy[to]
			}
			t.rxBusy[to] = start + t.scen.LatencySec + t.scen.transfer(from, to, len(payload))
			if t.rxBusy[to] > t.clock[to] {
				t.clock[to] = t.rxBusy[to]
			}
			vStart, vEnd, hasVirtual = start, t.rxBusy[to], true
		}
	}
	t.mu.Unlock()
	if t.tel.Enabled() {
		step := t.step.Load()
		t.tel.CountSeq(telemetry.CounterRecvWaitNanos, to, from, telemetry.Monotonic()-t0, seq, step)
		t.tel.CountSeq(telemetry.CounterRecvMessages, from, to, 1, seq, step)
		t.tel.CountSeq(telemetry.CounterRecvBytes, from, to, int64(len(payload)), seq, step)
		if hasVirtual {
			t.tel.Virtual(telemetry.SpanRecv, to, from, -1, step, seq, int64(len(payload)),
				vStart*1e9, vEnd*1e9)
		}
	}
	return payload, nil
}

// Close implements Transport.
func (t *Instrumented) Close() error { return t.inner.Close() }

// Compute charges seconds of local work to a node's clock, scaled by the
// scenario's straggler factor — the knob that makes one slow machine
// drag a synchronous step.
func (t *Instrumented) Compute(node int, seconds float64) {
	if t.scen == nil || node < 0 || node >= len(t.clock) { //sidco:nolock clock slice header is immutable after construction; only elements are guarded
		return
	}
	t.mu.Lock()
	start := t.clock[node]
	t.clock[node] = start + seconds*t.straggler(node)
	end := t.clock[node]
	t.mu.Unlock()
	t.tel.Virtual(telemetry.SpanCompute, node, -1, -1, t.step.Load(), -1, 0,
		start*1e9, end*1e9)
}

// straggler returns the node's compute slowdown factor. Callers hold mu
// or read immutable scenario state.
func (t *Instrumented) straggler(node int) float64 {
	if f, ok := t.scen.StragglerFactor[node]; ok && f > 0 {
		return f
	}
	return 1
}

// ComputeOverlap charges seconds of work (straggler-scaled) to a node's
// compressor lane and returns the lane's completion time. The lane runs
// concurrently with the node's NICs: unlike Compute it does not advance
// the node clock, so in-flight transfers the node is forwarding are not
// stalled. A send that depends on the charged work (the chunk the
// compressor just produced) is gated explicitly with WaitFor — together
// they model the chunked pipeline, where compressing chunk i+1 hides
// behind chunk i's in-flight collective.
func (t *Instrumented) ComputeOverlap(node int, seconds float64) float64 {
	if t.scen == nil || node < 0 || node >= len(t.clock) { //sidco:nolock clock slice header is immutable after construction; only elements are guarded
		return 0
	}
	t.mu.Lock()
	start := t.pipeBusy[node]
	if t.clock[node] > start {
		// The lane cannot start before the node has produced the work's
		// input (forward/backward charged through Compute).
		start = t.clock[node]
	}
	t.pipeBusy[node] = start + seconds*t.straggler(node)
	end := t.pipeBusy[node]
	t.mu.Unlock()
	t.tel.Virtual(telemetry.SpanCompress, node, -1, -1, t.step.Load(), -1, 0,
		start*1e9, end*1e9)
	return end
}

// WaitFor stalls a node's clock until the given virtual time, typically
// a completion time returned by ComputeOverlap: the point where a
// dependent send becomes ready.
func (t *Instrumented) WaitFor(node int, ts float64) {
	if t.scen == nil || node < 0 || node >= len(t.clock) { //sidco:nolock clock slice header is immutable after construction; only elements are guarded
		return
	}
	t.mu.Lock()
	if ts > t.clock[node] {
		t.clock[node] = ts
	}
	t.mu.Unlock()
}

// LinkStats returns the sent traffic of one directed link.
func (t *Instrumented) LinkStats(from, to int) LinkStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.stats[Link{from, to}]; st != nil {
		return *st
	}
	return LinkStats{}
}

// RecvLinkStats returns the received traffic of one directed link —
// messages this wrapper's Recv actually delivered at node to.
func (t *Instrumented) RecvLinkStats(from, to int) LinkStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.rstats[Link{from, to}]; st != nil {
		return *st
	}
	return LinkStats{}
}

// Totals returns the sent message and byte counts summed over all links.
func (t *Instrumented) Totals() (messages, bytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalMsgs, t.totalBytes
}

// RecvTotals returns the received message and byte counts summed over
// all links — the inbound share of a per-process node's collective.
func (t *Instrumented) RecvTotals() (messages, bytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recvMsgs, t.recvBytes
}

// Elapsed returns the virtual time of the slowest node — the synchronous
// step's critical path. Zero without a Scenario.
func (t *Instrumented) Elapsed() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var max float64
	for _, c := range t.clock {
		if c > max {
			max = c
		}
	}
	return max
}

// NodeTime returns one node's virtual clock.
//
//sidco:errclass caller-misuse validation, deliberately fatal
func (t *Instrumented) NodeTime(node int) (float64, error) {
	// The slice header itself is immutable after construction; only the
	// element values are guarded by mu.
	if node < 0 || node >= len(t.clock) { //sidco:nolock immutable slice header, bounds check only
		return 0, fmt.Errorf("cluster: node %d outside %d", node, len(t.clock))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock[node], nil
}

// Reset clears traffic counters and virtual clocks, typically between
// steps so per-step measurements stay independent.
func (t *Instrumented) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = make(map[Link]*LinkStats)
	t.rstats = make(map[Link]*LinkStats)
	t.totalMsgs, t.totalBytes = 0, 0
	t.recvMsgs, t.recvBytes = 0, 0
	for i := range t.clock {
		t.clock[i], t.txBusy[i], t.rxBusy[i], t.pipeBusy[i] = 0, 0, 0, 0
	}
	t.stamps = make(map[Link][]float64)
	t.sendSeq = make(map[Link]int64)
	t.recvSeq = make(map[Link]int64)
}
