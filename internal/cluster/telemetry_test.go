package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// totalMessagesPerExchange is the netsim closed form for the whole
// transport (every sending node), per exchange.
func totalMessagesPerExchange(coll netsim.Collective, workers, chunks int) int {
	switch coll {
	case netsim.CollectiveRing:
		return workers * netsim.RingMessages(workers)
	case netsim.CollectiveAllGather:
		return workers * netsim.ChunkedAllGatherMessages(workers, chunks)
	case netsim.CollectivePS:
		return netsim.PSMessages(workers)
	}
	return 0
}

// TestEngineTelemetryMatchesInstrumentedAndFormulas is the tentpole
// exactness cross-check: for every collective, the telemetry
// aggregator's message/byte totals must equal the Instrumented
// transport's exact counters AND the netsim closed-form message count —
// three independent accountings of the same traffic, agreeing to the
// byte.
func TestEngineTelemetryMatchesInstrumentedAndFormulas(t *testing.T) {
	const workers, dim, iters = 4, 400, 3
	cases := []struct {
		name   string
		coll   netsim.Collective
		chunks int
		sparse bool
	}{
		{"ring", netsim.CollectiveRing, 0, false},
		{"allgather", netsim.CollectiveAllGather, 0, true},
		{"allgather-chunked", netsim.CollectiveAllGather, 8, true},
		{"ps", netsim.CollectivePS, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ins := randomInputs(t, workers, dim, 0.05, 17)
			if !tc.sparse {
				for i := range ins {
					ins[i].Sparse = nil
				}
			}
			agg := telemetry.NewAggregator()
			e, err := New(Config{
				Workers: workers, Collective: tc.coll, Chunks: tc.chunks,
				Telemetry: telemetry.New(agg),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			aggOut := make([]float64, dim)
			for it := 0; it < iters; it++ {
				if err := e.Exchange(it, ins, aggOut); err != nil {
					t.Fatal(err)
				}
			}

			wantMsgs := iters * totalMessagesPerExchange(tc.coll, workers, tc.chunks)
			msgs, bytes := e.Transport().Totals()
			rmsgs, rbytes := e.Transport().RecvTotals()
			if msgs != wantMsgs {
				t.Errorf("instrumented sent %d messages, formula says %d", msgs, wantMsgs)
			}
			if got := agg.Total(telemetry.CounterSentMessages); got != int64(msgs) {
				t.Errorf("telemetry sent messages = %d, instrumented counted %d", got, msgs)
			}
			if got := agg.Total(telemetry.CounterSentBytes); got != int64(bytes) {
				t.Errorf("telemetry sent bytes = %d, instrumented counted %d", got, bytes)
			}
			if got := agg.Total(telemetry.CounterRecvMessages); got != int64(rmsgs) {
				t.Errorf("telemetry recv messages = %d, instrumented counted %d", got, rmsgs)
			}
			if got := agg.Total(telemetry.CounterRecvBytes); got != int64(rbytes) {
				t.Errorf("telemetry recv bytes = %d, instrumented counted %d", got, rbytes)
			}

			// Per-link attribution must match link for link, and the links
			// must partition the totals.
			var linkMsgSum, linkByteSum int64
			for _, l := range agg.LinksSeen() {
				lc := agg.LinkTotals(int(l.From), int(l.To))
				st := e.Transport().LinkStats(int(l.From), int(l.To))
				if lc.SentMessages != int64(st.Messages) || lc.SentBytes != int64(st.Bytes) {
					t.Errorf("link %d->%d: telemetry %d msgs/%d bytes, instrumented %d/%d",
						l.From, l.To, lc.SentMessages, lc.SentBytes, st.Messages, st.Bytes)
				}
				rst := e.Transport().RecvLinkStats(int(l.From), int(l.To))
				if lc.RecvMessages != int64(rst.Messages) || lc.RecvBytes != int64(rst.Bytes) {
					t.Errorf("link %d->%d recv: telemetry %d msgs/%d bytes, instrumented %d/%d",
						l.From, l.To, lc.RecvMessages, lc.RecvBytes, rst.Messages, rst.Bytes)
				}
				linkMsgSum += lc.SentMessages
				linkByteSum += lc.SentBytes
			}
			if linkMsgSum != int64(msgs) || linkByteSum != int64(bytes) {
				t.Errorf("links sum to %d msgs/%d bytes, totals are %d/%d", linkMsgSum, linkByteSum, msgs, bytes)
			}

			// Every round was spanned: workers rounds per exchange, plus the
			// server's round span under PS.
			wantSpans := int64(iters * workers)
			if tc.coll == netsim.CollectivePS {
				wantSpans += int64(iters)
			}
			var collectives int64
			for _, s := range agg.Spans() {
				if s.Kind == telemetry.SpanCollective {
					collectives = s.Count
				}
			}
			if collectives != wantSpans {
				t.Errorf("recorded %d collective spans, want %d", collectives, wantSpans)
			}
		})
	}
}

// TestTCPWireBytesExact pins the wire-level accounting on a raw
// TCPTransport link: wire bytes exceed the payload bytes by exactly 4
// per message (frame header) plus 12 per connection (handshake), on
// both the write and the read side, and the established connection is
// recorded as one dial span.
func TestTCPWireBytesExact(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	aAgg, bAgg := telemetry.NewAggregator(), telemetry.NewAggregator()
	a, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{0}, Telemetry: telemetry.New(aAgg)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{1}, Telemetry: telemetry.New(bAgg)})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	payloadBytes := 0
	const msgs = 10
	for m := 0; m < msgs; m++ {
		payload := make([]byte, 100+m)
		if err := a.Send(0, 1, payload); err != nil {
			t.Fatal(err)
		}
		payloadBytes += len(payload)
	}
	for m := 0; m < msgs; m++ {
		if _, err := b.Recv(1, 0); err != nil {
			t.Fatal(err)
		}
	}

	want := int64(payloadBytes + 4*msgs + 12) // frames + one handshake
	if got := aAgg.Total(telemetry.CounterWireSentBytes); got != want {
		t.Errorf("sender wire bytes = %d, want %d (payload %d + 4*%d + 12)", got, want, payloadBytes, msgs)
	}
	if got := bAgg.Total(telemetry.CounterWireRecvBytes); got != want {
		t.Errorf("receiver wire bytes = %d, want %d", got, want)
	}
	if got := aAgg.LinkTotals(0, 1).WireSentBytes; got != want {
		t.Errorf("link 0->1 wire bytes = %d, want %d", got, want)
	}
	var dials int64
	for _, s := range aAgg.Spans() {
		if s.Kind == telemetry.SpanDial {
			dials = s.Count
		}
	}
	if dials != 1 {
		t.Errorf("recorded %d dial spans, want 1", dials)
	}
	if got := aAgg.Total(telemetry.CounterDialRetries); got != 0 {
		t.Errorf("counted %d dial retries against a live listener, want 0", got)
	}
}

// TestTCPDialRetriesCounted delays the peer's listener so the lazy dial
// must retry, and asserts the retries show up on the counter.
func TestTCPDialRetriesCounted(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	agg := telemetry.NewAggregator()
	a, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{0}, Telemetry: telemetry.New(agg)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	go func() {
		time.Sleep(150 * time.Millisecond)
		b, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{1}})
		if err != nil {
			return
		}
		// Keep b alive long enough for a's handshake to land.
		time.Sleep(2 * time.Second)
		b.Close()
	}()
	if err := a.Send(0, 1, []byte{1}); err != nil { // blocks in the retry loop
		t.Fatal(err)
	}
	if got := agg.Total(telemetry.CounterDialRetries); got < 1 {
		t.Errorf("counted %d dial retries, want >= 1 (listener came up late)", got)
	}
	if got := agg.LinkTotals(0, 1).DialRetries; got < 1 {
		t.Errorf("link 0->1 retries = %d, want >= 1", got)
	}
}

// telemetryRank is one rank's observability state in the deployment test.
type telemetryRank struct {
	rank     int
	sent     int64 // /metrics sidco_sent_messages_total
	instMsgs int
	err      error
}

// TestDeploymentMetricsEndpointExact is the acceptance criterion
// end-to-end: a multi-node TCP loopback deployment where every rank
// exposes its aggregator over a real HTTP /metrics endpoint; the
// scraped per-link byte counters must partition the totals and the
// totals must equal the Instrumented counters and the netsim formula
// exactly. This is the in-test twin of
// `sidco-node -launch N -metrics auto -check`.
func TestDeploymentMetricsEndpointExact(t *testing.T) {
	const workers, iters, chunks = 3, 4, 2
	coll := netsim.CollectiveAllGather
	addrs, err := FreeLoopbackAddrs(workers)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan telemetryRank, workers)
	runRank := func(rank int) {
		res := telemetryRank{rank: rank}
		defer func() { results <- res }()
		agg := telemetry.NewAggregator()
		tel := telemetry.New(agg)
		tp, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{rank}, Telemetry: tel})
		if err != nil {
			res.err = err
			return
		}
		defer tp.Close()
		nd, err := NewNode(NodeConfig{
			Workers: workers, Rank: rank, Collective: coll, Chunks: chunks,
			Transport: tp, Telemetry: tel,
		})
		if err != nil {
			res.err = err
			return
		}
		cfg := tinyTrainerCfg(1, rank, "topk", 0.1, 42, nd)
		cfg.Telemetry = tel
		tr, err := dist.NewTrainer(cfg)
		if err != nil {
			res.err = err
			return
		}
		for it := 0; it < iters; it++ {
			local, err := tr.Step()
			if err != nil {
				res.err = err
				return
			}
			if _, err := nd.MeanScalar(local); err != nil {
				res.err = err
				return
			}
		}

		// Scrape this rank's aggregator over real HTTP, like a Prometheus
		// server would.
		srv := httptest.NewServer(telemetry.Handler(agg))
		defer srv.Close()
		if res.err = checkHealthz(srv.URL); res.err != nil {
			return
		}
		m, err := scrapeMetrics(srv.URL)
		if err != nil {
			res.err = err
			return
		}

		instMsgs, instBytes := nd.Transport().Totals()
		instRecvMsgs, instRecvBytes := nd.Transport().RecvTotals()
		res.instMsgs = instMsgs
		res.sent = int64(m["sidco_sent_messages_total"])
		checks := []struct {
			metric string
			want   float64
		}{
			{"sidco_sent_messages_total", float64(instMsgs)},
			{"sidco_sent_bytes_total", float64(instBytes)},
			{"sidco_recv_messages_total", float64(instRecvMsgs)},
			{"sidco_recv_bytes_total", float64(instRecvBytes)},
			{fmt.Sprintf("sidco_node_steps_total{node=%q}", fmt.Sprint(rank)), float64(iters)},
			{fmt.Sprintf("sidco_span_duration_seconds_count{span=%q}", "step"), float64(iters)},
		}
		for _, c := range checks {
			if got := m[c.metric]; got != c.want {
				res.err = fmt.Errorf("rank %d: %s = %v, want %v", rank, c.metric, got, c.want)
				return
			}
		}
		// Per-link byte counters scraped off the wire must match the
		// Instrumented per-link stats and partition the rank's totals.
		var linkSent, linkRecv float64
		for peer := 0; peer < workers; peer++ {
			if peer == rank {
				continue
			}
			sk := fmt.Sprintf("sidco_link_sent_bytes_total{from=%q,to=%q}", fmt.Sprint(rank), fmt.Sprint(peer))
			if v, ok := m[sk]; ok {
				if st := nd.Transport().LinkStats(rank, peer); v != float64(st.Bytes) {
					res.err = fmt.Errorf("rank %d: %s = %v, instrumented says %d", rank, sk, v, st.Bytes)
					return
				}
				linkSent += v
			}
			rk := fmt.Sprintf("sidco_link_recv_bytes_total{from=%q,to=%q}", fmt.Sprint(peer), fmt.Sprint(rank))
			if v, ok := m[rk]; ok {
				if st := nd.Transport().RecvLinkStats(peer, rank); v != float64(st.Bytes) {
					res.err = fmt.Errorf("rank %d: %s = %v, instrumented says %d", rank, rk, v, st.Bytes)
					return
				}
				linkRecv += v
			}
		}
		if linkSent != float64(instBytes) || linkRecv != float64(instRecvBytes) {
			res.err = fmt.Errorf("rank %d: links sum to %v sent/%v recv bytes, totals are %d/%d",
				rank, linkSent, linkRecv, instBytes, instRecvBytes)
		}
	}
	for rank := 0; rank < workers; rank++ {
		go runRank(rank)
	}
	wantPerRank := iters * netsim.ChunkedAllGatherMessages(workers, chunks)
	for i := 0; i < workers; i++ {
		select {
		case res := <-results:
			if res.err != nil {
				t.Fatal(res.err)
			}
			if res.sent != int64(wantPerRank) || res.instMsgs != wantPerRank {
				t.Errorf("rank %d: scraped %d sent messages, instrumented %d, formula says %d",
					res.rank, res.sent, res.instMsgs, wantPerRank)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("deployment did not finish")
		}
	}
}

func checkHealthz(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		return fmt.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
	return nil
}

func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	return telemetry.ParseProm(string(body))
}
