package cluster

import (
	"fmt"
)

// The group-aware collective schedules below generalise the exported
// collectives from "nodes 0..n-1" to an arbitrary sorted member list —
// the survivor set after elastic membership excludes a dead peer. Ring
// neighbours are taken by *position* in the member list and chunk
// geometry is computed over the member count, so over the full list the
// message schedules are byte-for-byte the exported collectives'. All
// receives go through a linkRecv hook, which is where the per-step
// deadline and the membership-frame interception live.

// linkRecv abstracts one blocking receive on a directed link. The
// schedule code never calls Transport.Recv directly: the hook lets the
// runner apply a step deadline (RecvTimeout) and turn an intercepted
// membership frame into a recoverable error without the schedules
// knowing about either.
type linkRecv func(to, from int) ([]byte, error)

// identityMembers is the full-membership list 0..n-1.
func identityMembers(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// memberPos returns the position of id in the ascending member list, or
// -1 if id is not a member.
func memberPos(members []int, id int) int {
	for p, m := range members {
		if m == id {
			return p
		}
	}
	return -1
}

// checkMember validates a group schedule call: members must be
// non-empty, within the transport, and contain self.
//
//sidco:errclass caller-misuse validation, deliberately fatal
func checkMember(tp Transport, members []int, self int) (pos int, err error) {
	if len(members) < 1 {
		return -1, fmt.Errorf("cluster: empty member group")
	}
	for _, m := range members {
		if m < 0 || m >= tp.Nodes() {
			return -1, fmt.Errorf("cluster: member %d outside the %d-node transport", m, tp.Nodes())
		}
	}
	pos = memberPos(members, self)
	if pos < 0 {
		return -1, fmt.Errorf("cluster: node %d is not in the member group %v", self, members)
	}
	return pos, nil
}

// ringAllReduceGroup is RingAllReduce over an explicit member list:
// neighbours by position, chunks by member count, reduction in ring
// order. Over identityMembers(n) it is message-for-message
// RingAllReduce.
func ringAllReduceGroup(tp Transport, recv linkRecv, members []int, self int, data []float64) error {
	pos, err := checkMember(tp, members, self)
	if err != nil {
		return err
	}
	m := len(members)
	if m == 1 {
		return nil
	}
	d := len(data)
	next, prev := members[(pos+1)%m], members[(pos+m-1)%m]
	// Reduce-scatter: after step s, the chunk this node just received
	// carries the partial sum of s+2 ring predecessors.
	for s := 0; s < m-1; s++ {
		sc := (pos + m - s) % m
		lo, hi := chunkBounds(d, m, sc)
		if err := tp.Send(self, next, f64Bytes(data[lo:hi])); err != nil {
			return err
		}
		rc := (pos + m - s - 1) % m
		lo, hi = chunkBounds(d, m, rc)
		buf, err := recv(self, prev)
		if err != nil {
			return err
		}
		if err := f64Add(data[lo:hi], buf); err != nil {
			return fmt.Errorf("cluster: ring reduce chunk %d: %w", rc, err)
		}
	}
	// All-gather: circulate the fully reduced chunks.
	for s := 0; s < m-1; s++ {
		sc := (pos + m + 1 - s) % m
		lo, hi := chunkBounds(d, m, sc)
		if err := tp.Send(self, next, f64Bytes(data[lo:hi])); err != nil {
			return err
		}
		rc := (pos + m - s) % m
		lo, hi = chunkBounds(d, m, rc)
		buf, err := recv(self, prev)
		if err != nil {
			return err
		}
		if err := f64Copy(data[lo:hi], buf); err != nil {
			return fmt.Errorf("cluster: ring gather chunk %d: %w", rc, err)
		}
	}
	return nil
}

// allGatherGroup is AllGatherInto over an explicit member list. bufs is
// indexed by member *position* (bufs[pos] holds members[pos]'s payload;
// the caller's own payload is aliased at its position). Over
// identityMembers(n) position equals node id, so the result layout and
// the message schedule match AllGatherInto exactly.
func allGatherGroup(tp Transport, recv linkRecv, members []int, self int, own []byte, bufs [][]byte, overlap func() error) ([][]byte, error) {
	pos, err := checkMember(tp, members, self)
	if err != nil {
		return nil, err
	}
	m := len(members)
	if cap(bufs) < m {
		bufs = make([][]byte, m)
	}
	bufs = bufs[:m]
	bufs[pos] = own
	cur := own
	next, prev := members[(pos+1)%m], members[(pos+m-1)%m]
	for s := 0; s < m-1; s++ {
		if err := tp.Send(self, next, cur); err != nil {
			return nil, err
		}
		if s == 0 && overlap != nil {
			if err := overlap(); err != nil {
				return nil, err
			}
		}
		cur, err = recv(self, prev)
		if err != nil {
			return nil, err
		}
		bufs[(pos+m-1-s)%m] = cur
	}
	return bufs, nil
}

// psServeGroup is PSServe over an explicit worker member list: one push
// per surviving worker, received in member (ascending-rank) order, then
// the reply broadcast to the same set. combine sees both the member
// position (0 = first survivor, which defines the round's dimension)
// and the worker's node id.
func psServeGroup(tp Transport, recv linkRecv, server int, workers []int, combine func(pos, worker int, payload []byte) error, reply func() ([]byte, error)) error {
	for pos, w := range workers {
		payload, err := recv(server, w)
		if err != nil {
			return err
		}
		if err := combine(pos, w, payload); err != nil {
			return fmt.Errorf("cluster: ps combine worker %d: %w", w, err)
		}
	}
	out, err := reply()
	if err != nil {
		return fmt.Errorf("cluster: ps reply: %w", err)
	}
	for _, w := range workers {
		if err := tp.Send(server, w, out); err != nil {
			return err
		}
	}
	return nil
}
