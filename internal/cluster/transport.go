// Package cluster is the message-passing collective-communication layer
// of the reproduction: where internal/netsim prices gradient exchanges
// analytically, this package executes them — goroutine-per-node workers
// serialise compressed gradients with internal/encoding and move real
// byte buffers through a pluggable Transport.
//
// Three collectives are implemented as explicit message schedules over
// any Transport: ring all-reduce for dense gradients (2(N-1) messages
// per node), ring all-gather for sparse gradients (N-1 messages per
// node), and a central parameter server (2N messages total). An
// Instrumented transport wrapper counts messages and bytes per directed
// link — cross-validating netsim's collective step formulas against
// observed traffic — and, given a Scenario, runs an alpha-beta
// virtual-time model with per-link bandwidth overrides and per-node
// straggler factors.
//
// Two transports ship: ChanTransport moves payloads over in-process
// channels, and TCPTransport moves length-prefix-framed payloads over
// real sockets, one listener per hosted node — the implementation the
// Transport interface always promised. A multi-process deployment runs
// one node per OS process (cmd/sidco-node), each holding a TCPTransport
// over a shared host list.
//
// The Engine ties the schedules to training: it satisfies
// dist.GradientExchange, so a dist.Trainer can swap its in-process
// reducer for a real exchange. Over the lossless FormatPairs64 wire
// format the all-gather and parameter-server collectives sum decoded
// contributions in worker-index order, reproducing the in-process
// trainer's losses bit-for-bit. Node is the per-process counterpart:
// one cluster node plus a Workers=1 Trainer per process reproduces the
// same losses over TCP.
//
// The package also survives dead peers. Errors classify into a
// recoverable class (ErrPeerLost, ErrTimeout — see Recoverable) and the
// fatal local-shutdown class (ErrClosed); NodeConfig.StepTimeout bounds
// every schedule receive, and NodeConfig.MaxStepRetries enables elastic
// membership: survivors of a recoverable failure agree on the live
// member set (a fixed-round mask exchange that doubles as a link drain),
// re-run the step over the surviving group, and rescale the aggregate to
// the survivor count. FaultTransport injects deterministic link/node
// failures for tests, and dist's checkpointing restores a killed rank's
// training state for rejoin.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is wrapped by every transport error caused by Close rather
// than by an invalid operation: schedule code distinguishes an engine
// shutdown (expected, e.g. the parameter-server loop draining) from a
// genuine failure with errors.Is(err, ErrClosed).
var ErrClosed = errors.New("transport closed")

// ErrPeerLost is wrapped by transport errors caused by a remote peer
// dying or dropping a link while the local transport stays healthy: the
// TCP reader poisons a link whose connection broke, and FaultTransport
// synthesizes the same failure on its deterministic kill schedule.
// Unlike ErrClosed it is a *recoverable* condition — the surviving
// members can renegotiate the group and retry the step.
var ErrPeerLost = errors.New("peer lost")

// ErrTimeout is wrapped by RecvTimeout errors caused by the deadline
// expiring before a payload arrived. Like ErrPeerLost it classifies as
// recoverable: a peer that stalls past the per-step timeout is treated
// exactly like a dead one (it may be excluded and the step retried).
var ErrTimeout = errors.New("receive timed out")

// Recoverable reports whether a schedule error names a condition the
// fault-tolerance layer can recover from by renegotiating membership
// and retrying the step: a lost peer or a receive timeout. ErrClosed
// (local shutdown) and validation errors are not recoverable.
func Recoverable(err error) bool {
	return errors.Is(err, ErrPeerLost) || errors.Is(err, ErrTimeout)
}

// TimeoutRecver is the optional Transport capability the per-step
// timeout rides on: RecvTimeout behaves like Recv but fails with an
// error wrapping ErrTimeout once the timeout elapses with no payload
// deliverable. A timed-out call consumes nothing — a payload arriving
// later stays queued for the next receive, preserving per-link FIFO.
// Both ChanTransport and TCPTransport implement it.
type TimeoutRecver interface {
	RecvTimeout(to, from int, timeout time.Duration) ([]byte, error)
}

// Transport moves opaque byte payloads between numbered nodes over
// directed links. Implementations must preserve per-link FIFO order.
// Payloads are immutable by convention: receivers must not modify them,
// which lets ring schedules forward buffers without copying.
//
// Close semantics are deterministic, so a schedule torn down mid-flight
// fails the same way every run: delivery is preferred over the shutdown
// error. A Recv whose payload was already delivered locally returns that
// payload, not the close error; a Send that has free link capacity at
// the moment it observes the close still completes (the payload is
// simply never read). Operations fail with an error wrapping ErrClosed
// only when the transport is closed AND the operation would have to
// block. TCPTransport matches this contract on the receive side exactly;
// its sends additionally fail once the underlying sockets are torn down.
type Transport interface {
	// Nodes returns the number of addressable nodes.
	Nodes() int
	// Send delivers payload on the directed link from -> to. It may
	// block until link capacity frees up; it errors once the transport
	// is closed (and the link has no free capacity) or on an invalid
	// node id.
	Send(from, to int, payload []byte) error
	// Recv blocks until a payload arrives on the link from -> to, and
	// errors once the transport is closed (and no payload is
	// deliverable) or on an invalid node id.
	Recv(to, from int) ([]byte, error)
	// Close tears the transport down, unblocking pending operations.
	Close() error
}

// ChanTransport is the in-process Transport: one buffered Go channel per
// directed link. It is the zero-dependency stand-in for a real fabric;
// TCPTransport is the real-socket implementation of the same contract.
type ChanTransport struct {
	n     int
	links [][]chan []byte // links[from][to]
	done  chan struct{}
	once  sync.Once
}

// linkDepth bounds in-flight messages per directed link. Every schedule
// in this package keeps at most one message outstanding per link, so any
// positive depth avoids deadlock; a little slack lets senders run ahead.
const linkDepth = 4

// NewChanTransport builds a channel transport connecting nodes
// 0..nodes-1 with an all-to-all directed link mesh.
//
//sidco:errclass construction-time config validation, deliberately fatal
func NewChanTransport(nodes int) (*ChanTransport, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: %d nodes", nodes)
	}
	t := &ChanTransport{
		n:     nodes,
		links: make([][]chan []byte, nodes),
		done:  make(chan struct{}),
	}
	for from := range t.links {
		t.links[from] = make([]chan []byte, nodes)
		for to := range t.links[from] {
			t.links[from][to] = make(chan []byte, linkDepth)
		}
	}
	return t, nil
}

// Nodes implements Transport.
func (t *ChanTransport) Nodes() int { return t.n }

// check validates a link's endpoints.
//
//sidco:errclass caller-misuse validation, deliberately fatal
func (t *ChanTransport) check(from, to int) error {
	if from < 0 || from >= t.n || to < 0 || to >= t.n {
		return fmt.Errorf("cluster: link %d->%d outside %d nodes", from, to, t.n)
	}
	if from == to {
		return fmt.Errorf("cluster: node %d sending to itself", from)
	}
	return nil
}

// Send implements Transport. The two-phase select makes the close race
// deterministic: a select listing the link and done together lets Go's
// random case choice report closure even while capacity is free, so the
// link case is tried alone first, and retried once more after done fires
// — Send fails only if the link is genuinely full at shutdown.
func (t *ChanTransport) Send(from, to int, payload []byte) error {
	if err := t.check(from, to); err != nil {
		return err
	}
	select {
	case t.links[from][to] <- payload:
		return nil
	default:
	}
	select {
	case t.links[from][to] <- payload:
		return nil
	case <-t.done:
		select {
		case t.links[from][to] <- payload:
			return nil
		default:
			return fmt.Errorf("cluster: send %d->%d: %w", from, to, ErrClosed)
		}
	}
}

// Recv implements Transport, with the same deterministic preference for
// delivery: a payload already sitting in the link is returned even when
// the done case fired first in the combined select.
func (t *ChanTransport) Recv(to, from int) ([]byte, error) {
	if err := t.check(from, to); err != nil {
		return nil, err
	}
	select {
	case p := <-t.links[from][to]:
		return p, nil
	default:
	}
	select {
	case p := <-t.links[from][to]:
		return p, nil
	case <-t.done:
		select {
		case p := <-t.links[from][to]:
			return p, nil
		default:
			return nil, fmt.Errorf("cluster: recv %d->%d: %w", to, from, ErrClosed)
		}
	}
}

// RecvTimeout implements TimeoutRecver with the same deterministic
// delivery preference as Recv: a payload already in the link wins over
// both the shutdown error and the timeout.
func (t *ChanTransport) RecvTimeout(to, from int, timeout time.Duration) ([]byte, error) {
	if err := t.check(from, to); err != nil {
		return nil, err
	}
	select {
	case p := <-t.links[from][to]:
		return p, nil
	default:
	}
	timer := time.NewTimer(timeout) //sidco:nondet receive timeout, fault detection only
	defer timer.Stop()
	select {
	case p := <-t.links[from][to]:
		return p, nil
	case <-t.done:
		select {
		case p := <-t.links[from][to]:
			return p, nil
		default:
			return nil, fmt.Errorf("cluster: recv %d->%d: %w", to, from, ErrClosed)
		}
	case <-timer.C:
		select {
		case p := <-t.links[from][to]:
			return p, nil
		default:
			return nil, fmt.Errorf("cluster: recv %d->%d after %v: %w", to, from, timeout, ErrTimeout)
		}
	}
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}
