package cluster

import (
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/nn"
)

// localTCP builds a transport hosting all nodes in this process on
// kernel-assigned loopback ports, failing the test on error.
func localTCP(t *testing.T, nodes int) *TCPTransport {
	t.Helper()
	tp, err := newLoopbackTCP(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestTCPTransportFIFO pins the framing and per-link ordering: payloads
// of varied sizes (including empty) arrive intact and in order on every
// directed link of a mesh, interleaved across links.
func TestTCPTransportFIFO(t *testing.T) {
	const n, msgs = 3, 16
	tp := localTCP(t, n)
	defer tp.Close()
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			for m := 0; m < msgs; m++ {
				payload := make([]byte, m*7%11) // sizes 0..10, some empty
				for i := range payload {
					payload[i] = byte(from ^ to ^ m)
				}
				if err := tp.Send(from, to, payload); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			for m := 0; m < msgs; m++ {
				p, err := tp.Recv(to, from)
				if err != nil {
					t.Fatal(err)
				}
				if len(p) != m*7%11 {
					t.Fatalf("link %d->%d msg %d: %d bytes, want %d", from, to, m, len(p), m*7%11)
				}
				for i := range p {
					if p[i] != byte(from^to^m) {
						t.Fatalf("link %d->%d msg %d corrupted at byte %d", from, to, m, i)
					}
				}
			}
		}
	}
}

// TestTCPRecvPrefersDeliveredPayloads exercises the close contract's
// receive side over real sockets: a payload that reached the local inbox
// before Close must be returned, not the closure error.
func TestTCPRecvPrefersDeliveredPayloads(t *testing.T) {
	tp := localTCP(t, 2)
	if err := tp.Send(0, 1, []byte{42}); err != nil {
		t.Fatal(err)
	}
	// First recv proves the frame made it into the inbox pipeline; the
	// second payload then sits delivered when Close lands.
	if _, err := tp.Recv(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.Send(0, 1, []byte{43}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // generous: loopback delivery is microseconds
	tp.Close()
	p, err := tp.Recv(1, 0)
	if err != nil {
		t.Fatalf("recv of pre-close payload failed: %v", err)
	}
	if len(p) != 1 || p[0] != 43 {
		t.Fatalf("got %v, want [43]", p)
	}
	if _, err := tp.Recv(1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained recv error = %v, want ErrClosed", err)
	}
}

// TestTCPPeerDeathFailsRecv pins the dead-peer behaviour: when the
// remote side of a link goes away mid-run (its process dies, its
// transport closes), a blocked or subsequent Recv on that link must fail
// promptly — never hang on an inbox nobody will feed again — while
// payloads that arrived before the loss still drain first, and the
// failure stays sticky.
func TestTCPPeerDeathFailsRecv(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(0, 1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the frame land in b's inbox
	a.Close()                          // peer 0 is gone
	if p, err := b.Recv(1, 0); err != nil || len(p) != 1 || p[0] != 2 {
		t.Fatalf("pre-death payload: got %v, %v; want [2]", p, err)
	}
	for attempt := 0; attempt < 2; attempt++ { // sticky across calls
		done := make(chan error, 1)
		go func() {
			_, err := b.Recv(1, 0)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || errors.Is(err, ErrClosed) {
				t.Fatalf("attempt %d: recv from dead peer returned %v, want a link-lost error", attempt, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("attempt %d: recv from dead peer hung", attempt)
		}
	}
}

// TestTCPTransportValidation covers the hosting and id checks.
func TestTCPTransportValidation(t *testing.T) {
	if _, err := NewTCPTransport(TCPConfig{}); err == nil {
		t.Error("no addresses should error")
	}
	if _, err := NewTCPTransport(TCPConfig{Addrs: []string{"127.0.0.1:0"}, Local: []int{1}}); err == nil {
		t.Error("out-of-range local node should error")
	}
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if err := tp.Send(1, 0, nil); err == nil {
		t.Error("send from a non-hosted node should error")
	}
	if _, err := tp.Recv(1, 0); err == nil {
		t.Error("recv at a non-hosted node should error")
	}
	if err := tp.Send(0, 0, nil); err == nil {
		t.Error("self-send should error")
	}
	if a, err := tp.Addr(0); err != nil || a == "" {
		t.Errorf("Addr(0) = %q, %v", a, err)
	}
	if _, err := tp.Addr(5); err == nil {
		t.Error("out-of-range Addr should error")
	}
}

// TestTCPEngineMatchesChanBitwise runs the same exchange through an
// engine over the channel transport and an engine over TCP loopback: the
// all-gather and parameter-server aggregates must match the in-process
// reducer bit-for-bit, and the ring result must match the channel ring
// bit-for-bit (both run the identical reduction schedule).
func TestTCPEngineMatchesChanBitwise(t *testing.T) {
	const dim = 513
	for _, workers := range []int{1, 2, 4} {
		ins := randomInputs(t, workers, dim, 0.05, int64(workers))
		want := make([]float64, dim)
		if err := (dist.InProcess{}).Exchange(0, ins, want); err != nil {
			t.Fatal(err)
		}
		for _, coll := range []netsim.Collective{netsim.CollectiveAllGather, netsim.CollectivePS} {
			got, e := engineExchange(t, Config{
				Workers: workers, Collective: coll, Verify: true,
				Transport: localTCP(t, NodeCount(workers, coll)),
			}, ins, dim)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d %v over tcp: element %d = %v, want %v (must be bit-identical)",
						workers, coll, i, got[i], want[i])
				}
			}
			e.Close()
		}
		// Dense ring: compare TCP against the channel transport.
		for i := range ins {
			ins[i].Sparse = nil
		}
		chanAgg, e1 := engineExchange(t, Config{Workers: workers, Collective: netsim.CollectiveRing, Verify: true}, ins, dim)
		e1.Close()
		tcpAgg, e2 := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveRing, Verify: true,
			Transport: localTCP(t, workers),
		}, ins, dim)
		e2.Close()
		for i := range chanAgg {
			if tcpAgg[i] != chanAgg[i] {
				t.Fatalf("workers=%d ring over tcp: element %d = %v, want %v (same schedule, must be bit-identical)",
					workers, i, tcpAgg[i], chanAgg[i])
			}
		}
	}
}

// TestTCPTrainerAllCompressorsBitIdentical is the tentpole acceptance
// sweep over real sockets: training through an engine whose transport is
// TCP loopback must reproduce the in-process trainer's losses and final
// weights bit-for-bit for every registry compressor, on both
// order-preserving collectives.
func TestTCPTrainerAllCompressorsBitIdentical(t *testing.T) {
	const workers, iters = 4, 5
	run := func(comp string, ex dist.GradientExchange) ([]float64, []float64) {
		tr := tinyTrainer(t, workers, comp, 0.1, 42, ex)
		losses, _, err := tr.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return losses, nn.FlattenWeights(tr.Params(), nil)
	}
	for _, comp := range registryNames {
		for _, coll := range []netsim.Collective{netsim.CollectiveAllGather, netsim.CollectivePS} {
			t.Run(fmt.Sprintf("%s-%v", comp, coll), func(t *testing.T) {
				e, err := New(Config{
					Workers: workers, Collective: coll, Verify: true,
					Transport: localTCP(t, NodeCount(workers, coll)),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				wantLoss, wantW := run(comp, nil)
				gotLoss, gotW := run(comp, e)
				for i := range wantLoss {
					if gotLoss[i] != wantLoss[i] {
						t.Fatalf("loss[%d] = %v, want %v (bit-identical)", i, gotLoss[i], wantLoss[i])
					}
				}
				for i := range wantW {
					if gotW[i] != wantW[i] {
						t.Fatalf("weight[%d] = %v, want %v (bit-identical)", i, gotW[i], wantW[i])
					}
				}
			})
		}
	}
}

// TestTCPInstrumentedTrafficExact pins the Instrumented-over-TCP
// contract: message and byte counts measured on real sockets equal
// netsim's collective formulas and encoding's size accounting exactly —
// including the chunked all-gather with its header-only surplus chunks —
// and the recv-side counters mirror the send side in a single-process
// deployment.
func TestTCPInstrumentedTrafficExact(t *testing.T) {
	const dim, workers = 400, 4
	ins := randomInputs(t, workers, dim, 0.05, 11)
	nnz := ins[0].Sparse.NNZ()

	check := func(t *testing.T, e *Engine, wantMsgs, wantBytes int) {
		t.Helper()
		msgs, bytes := e.Transport().Totals()
		if msgs != wantMsgs {
			t.Errorf("sent %d messages, formula says %d", msgs, wantMsgs)
		}
		if bytes != wantBytes {
			t.Errorf("sent %d bytes, accounting says %d", bytes, wantBytes)
		}
		rmsgs, rbytes := e.Transport().RecvTotals()
		if rmsgs != wantMsgs || rbytes != wantBytes {
			t.Errorf("received %d msgs / %d bytes, want %d / %d (all traffic local)", rmsgs, rbytes, wantMsgs, wantBytes)
		}
	}

	t.Run("allgather", func(t *testing.T) {
		_, e := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveAllGather,
			Transport: localTCP(t, workers),
		}, ins, dim)
		defer e.Close()
		check(t, e, workers*netsim.AllGatherMessages(workers), workers*(workers-1)*encoding.Pairs64Size(dim, nnz))
	})
	t.Run("allgather-chunked", func(t *testing.T) {
		const chunks = 8
		_, e := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveAllGather, Chunks: chunks,
			Transport: localTCP(t, workers),
		}, ins, dim)
		defer e.Close()
		wantBytes := 0
		for _, in := range ins {
			for _, n := range ChunkNNZ(in.Sparse.Idx, dim, chunks) {
				wantBytes += (workers - 1) * encoding.Pairs64Size(dim, n)
			}
		}
		check(t, e, workers*netsim.ChunkedAllGatherMessages(workers, chunks), wantBytes)
	})
	t.Run("ring", func(t *testing.T) {
		dense := make([]dist.ExchangeInput, workers)
		for i, in := range ins {
			dense[i] = dist.ExchangeInput{Worker: in.Worker, Dense: in.Dense}
		}
		_, e := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveRing,
			Transport: localTCP(t, workers),
		}, dense, dim)
		defer e.Close()
		check(t, e, workers*netsim.RingMessages(workers), 2*(workers-1)*8*dim)
	})
	t.Run("ps", func(t *testing.T) {
		e, err := New(Config{
			Workers: workers, Collective: netsim.CollectivePS,
			Transport: localTCP(t, workers+1),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		agg := make([]float64, dim)
		if err := e.Exchange(0, ins, agg); err != nil {
			t.Fatal(err)
		}
		aggNNZ := 0
		for _, v := range agg {
			if v != 0 {
				aggNNZ++
			}
		}
		check(t, e, netsim.PSMessages(workers),
			workers*encoding.Pairs64Size(dim, nnz)+workers*encoding.Pairs64Size(dim, aggNNZ))
	})
}

// rankResult is one node process's outcome in a deployment test.
type rankResult struct {
	rank    int
	losses  []float64 // global per-iteration mean losses
	weights []float64
	err     error
}

// runTCPDeployment trains the one-node-per-transport topology of
// cmd/sidco-node, minus process isolation: every rank gets its own
// TCPTransport (hosting only itself over the shared host list), its own
// Node and its own Workers=1 trainer whose FirstWorker is the rank. It
// returns the per-rank results after asserting every rank agrees.
func runTCPDeployment(t *testing.T, workers, iters int, coll netsim.Collective, chunks int, comp string, delta float64, seed int64) []rankResult {
	t.Helper()
	nodes := NodeCount(workers, coll)
	addrs, err := FreeLoopbackAddrs(nodes)
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan rankResult, nodes)
	runRank := func(rank int) {
		res := rankResult{rank: rank}
		defer func() { results <- res }()
		tp, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{rank}})
		if err != nil {
			res.err = err
			return
		}
		defer tp.Close()
		nd, err := NewNode(NodeConfig{
			Workers: workers, Rank: rank, Collective: coll, Chunks: chunks, Transport: tp,
		})
		if err != nil {
			res.err = err
			return
		}
		if rank == workers { // parameter-server process
			res.err = nd.Serve(iters)
			return
		}
		tr, err := dist.NewTrainer(tinyTrainerCfg(1, rank, comp, delta, seed, nd))
		if err != nil {
			res.err = err
			return
		}
		for it := 0; it < iters; it++ {
			local, err := tr.Step()
			if err != nil {
				res.err = err
				return
			}
			global, err := nd.MeanScalar(local)
			if err != nil {
				res.err = err
				return
			}
			res.losses = append(res.losses, global)
		}
		res.weights = nn.FlattenWeights(tr.Params(), nil)
		// Per-rank traffic share: this process only saw its own sends and
		// receives, which must match the per-node slice of the formulas.
		// Auto resolves the way the trainer's rounds did: all-gather when
		// a compressor produced sparse contributions, ring otherwise.
		effColl := coll
		if effColl == netsim.CollectiveAuto {
			if comp != "" {
				effColl = netsim.CollectiveAllGather
			} else {
				effColl = netsim.CollectiveRing
			}
		}
		var wantSent, wantRecv int
		switch effColl {
		case netsim.CollectiveAllGather:
			wantSent = iters * netsim.ChunkedAllGatherMessages(workers, chunks)
			wantRecv = wantSent
		case netsim.CollectiveRing:
			wantSent = iters * netsim.RingMessages(workers)
			wantRecv = wantSent
		case netsim.CollectivePS:
			wantSent = iters
			wantRecv = iters
		}
		if msgs, _ := nd.Transport().Totals(); msgs != wantSent {
			res.err = fmt.Errorf("rank %d sent %d messages, formula says %d", rank, msgs, wantSent)
			return
		}
		if msgs, _ := nd.Transport().RecvTotals(); msgs != wantRecv {
			res.err = fmt.Errorf("rank %d received %d messages, formula says %d", rank, msgs, wantRecv)
		}
	}
	for rank := 0; rank < nodes; rank++ {
		go runRank(rank)
	}
	got := make([]rankResult, 0, nodes)
	for i := 0; i < nodes; i++ {
		select {
		case res := <-results:
			got = append(got, res)
		case <-time.After(60 * time.Second):
			t.Fatal("deployment did not finish")
		}
	}
	var first *rankResult
	for i := range got {
		res := &got[i]
		if res.err != nil {
			t.Fatalf("rank %d: %v", res.rank, res.err)
		}
		if res.rank == workers {
			continue // server has no losses
		}
		if first == nil {
			first = res
			continue
		}
		for it := range first.losses {
			if res.losses[it] != first.losses[it] {
				t.Fatalf("rank %d loss[%d] = %v, rank %d says %v (global loss must agree bitwise)",
					res.rank, it, res.losses[it], first.rank, first.losses[it])
			}
		}
		for j := range first.weights {
			if res.weights[j] != first.weights[j] {
				t.Fatalf("rank %d weight[%d] diverged: %v vs %v (replicas must stay identical)",
					res.rank, j, res.weights[j], first.weights[j])
			}
		}
	}
	return got
}

// refLosses trains the in-process reference with the full worker count.
func refLosses(t *testing.T, workers, iters int, comp string, delta float64, seed int64) ([]float64, []float64) {
	t.Helper()
	tr := tinyTrainer(t, workers, comp, delta, seed, nil)
	losses, _, err := tr.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	return losses, nn.FlattenWeights(tr.Params(), nil)
}

// TestNodeDeploymentBitIdentical is the multi-process acceptance check
// in miniature: N separate single-node transports over loopback TCP,
// each training its own worker, must reproduce the in-process trainer's
// global loss sequence and final weights bit-for-bit — monolithic and
// chunked all-gather, and parameter server.
func TestNodeDeploymentBitIdentical(t *testing.T) {
	const workers, iters = 3, 4
	cases := []struct {
		name   string
		coll   netsim.Collective
		chunks int
		comp   string
	}{
		{"allgather", netsim.CollectiveAllGather, 0, "sidco-e"},
		{"allgather-chunked", netsim.CollectiveAllGather, 3, "topk"},
		{"auto-chunked", netsim.CollectiveAuto, 4, "topk"}, // Auto resolves to all-gather on sparse rounds
		{"ps", netsim.CollectivePS, 0, "dgc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantW := refLosses(t, workers, iters, tc.comp, 0.1, 42)
			got := runTCPDeployment(t, workers, iters, tc.coll, tc.chunks, tc.comp, 0.1, 42)
			for i := range got {
				if got[i].rank >= workers {
					continue
				}
				for it := range want {
					if got[i].losses[it] != want[it] {
						t.Fatalf("rank %d loss[%d] = %v, in-process says %v (must be bit-identical)",
							got[i].rank, it, got[i].losses[it], want[it])
					}
				}
				for j := range wantW {
					if got[i].weights[j] != wantW[j] {
						t.Fatalf("rank %d weight[%d] = %v, in-process says %v (must be bit-identical)",
							got[i].rank, j, got[i].weights[j], wantW[j])
					}
				}
			}
		})
	}
}

// TestNodeDeploymentDenseRing covers the dense multi-process path: the
// ring reassociates float addition, so ranks agree bitwise with each
// other (asserted inside runTCPDeployment) and track the in-process
// trainer within tolerance.
func TestNodeDeploymentDenseRing(t *testing.T) {
	const workers, iters = 3, 4
	want, _ := refLosses(t, workers, iters, "", 0, 7)
	got := runTCPDeployment(t, workers, iters, netsim.CollectiveRing, 0, "", 0, 7)
	for _, res := range got {
		for it := range want {
			if math.Abs(res.losses[it]-want[it]) > 1e-9 {
				t.Fatalf("rank %d loss[%d] = %v, want %v within ring tolerance", res.rank, it, res.losses[it], want[it])
			}
		}
	}
}

// TestNodeValidation pins NewNode's configuration checks.
func TestNodeValidation(t *testing.T) {
	tp, err := NewChanTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if _, err := NewNode(NodeConfig{Workers: 0, Transport: tp}); err == nil {
		t.Error("0 workers should error")
	}
	if _, err := NewNode(NodeConfig{Workers: 2, Rank: 0}); err == nil {
		t.Error("nil transport should error")
	}
	if _, err := NewNode(NodeConfig{Workers: 2, Rank: 2, Transport: tp}); err == nil {
		t.Error("rank == workers without PS should error")
	}
	if _, err := NewNode(NodeConfig{Workers: 3, Rank: 0, Collective: netsim.CollectivePS, Transport: tp}); err == nil {
		t.Error("PS needs workers+1 transport nodes")
	}
	if _, err := NewNode(NodeConfig{Workers: 2, Rank: 0, Chunks: 2, Collective: netsim.CollectiveRing, Transport: tp}); err == nil {
		t.Error("chunked ring should error")
	}
	nd, err := NewNode(NodeConfig{Workers: 2, Rank: 1, Collective: netsim.CollectiveAllGather, Transport: tp})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Exchange(0, make([]dist.ExchangeInput, 2), nil); err == nil {
		t.Error("two inputs should error")
	}
	if err := nd.Exchange(0, []dist.ExchangeInput{{Worker: 0}}, nil); err == nil {
		t.Error("wrong worker id should error")
	}
	if err := nd.Serve(1); err == nil {
		t.Error("Serve on a worker rank should error")
	}
}

// TestHandshakeTimeoutNamed pins the accept-side diagnosis of a peer
// that connects but never speaks: the transport must record a distinct
// ErrHandshakeTimeout-wrapped error naming the remote address, instead
// of silently dropping the connection (which looks identical to "peer
// never dialed" from the outside).
func TestHandshakeTimeoutNamed(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{0}, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	// A raw client that completes the TCP connect but sends no handshake
	// bytes — a stray scanner, or a wedged peer process.
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	local := conn.LocalAddr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		errs := tp.HandshakeErrors()
		if len(errs) > 0 {
			found := false
			for _, e := range errs {
				if errors.Is(e, ErrHandshakeTimeout) && strings.Contains(e.Error(), local) {
					found = true
				}
			}
			if !found {
				t.Fatalf("handshake errors %v wrap no ErrHandshakeTimeout naming %s", errs, local)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no handshake error recorded within 5s of a silent connection")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
