package cluster

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/netsim"
)

// runAll executes f concurrently for nodes 0..n-1 and returns the first
// error in node order.
func runAll(n int, f func(node int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func TestRingAllReduceSums(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for _, d := range []int{1, 5, 16, 33} {
			tp, err := NewChanTransport(n)
			if err != nil {
				t.Fatal(err)
			}
			// Integer-valued data keeps float addition exact regardless of
			// reduction order, so the sum check is bitwise.
			data := make([][]float64, n)
			want := make([]float64, d)
			for i := range data {
				data[i] = make([]float64, d)
				for j := range data[i] {
					data[i][j] = float64((i+1)*(j+3)%17 - 8)
					want[j] += data[i][j]
				}
			}
			if err := runAll(n, func(node int) error {
				return RingAllReduce(tp, node, n, data[node])
			}); err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
			for i := range data {
				for j := range want {
					if data[i][j] != want[j] {
						t.Fatalf("n=%d d=%d: node %d element %d = %v, want %v",
							n, d, i, j, data[i][j], want[j])
					}
				}
			}
			tp.Close()
		}
	}
}

func TestAllGatherReturnsAllPayloadsByOrigin(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		tp, err := NewChanTransport(n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][][]byte, n)
		if err := runAll(n, func(node int) error {
			own := []byte(fmt.Sprintf("payload-from-%d", node))
			bufs, err := AllGather(tp, node, n, own)
			got[node] = bufs
			return err
		}); err != nil {
			t.Fatal(err)
		}
		for node := 0; node < n; node++ {
			for origin := 0; origin < n; origin++ {
				want := fmt.Sprintf("payload-from-%d", origin)
				if string(got[node][origin]) != want {
					t.Fatalf("n=%d: node %d slot %d = %q, want %q",
						n, node, origin, got[node][origin], want)
				}
			}
		}
		tp.Close()
	}
}

func TestParameterServerExchange(t *testing.T) {
	n := 4
	tp, err := NewChanTransport(n + 1)
	if err != nil {
		t.Fatal(err)
	}
	server := n
	replies := make([][]byte, n)
	var sum int
	var order []int
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- PSServe(tp, server, n,
			func(worker int, payload []byte) error {
				order = append(order, worker)
				sum += int(payload[0])
				return nil
			},
			func() ([]byte, error) { return []byte{byte(sum)}, nil })
	}()
	if err := runAll(n, func(node int) error {
		r, err := PSPushPull(tp, node, server, []byte{byte(10 * (node + 1))})
		replies[node] = r
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	for w, r := range replies {
		if len(r) != 1 || int(r[0]) != 100 {
			t.Errorf("worker %d reply %v, want [100]", w, r)
		}
	}
	for w, o := range order {
		if o != w {
			t.Fatalf("server combined in order %v, want worker-index order", order)
		}
	}
	tp.Close()
}

func TestCollectiveMessageCountsMatchNetsimFormulas(t *testing.T) {
	d := 64
	for _, n := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("ring-n%d", n), func(t *testing.T) {
			inner, _ := NewChanTransport(n)
			tp := NewInstrumented(inner, nil)
			data := make([][]float64, n)
			for i := range data {
				data[i] = make([]float64, d)
			}
			if err := runAll(n, func(node int) error {
				return RingAllReduce(tp, node, n, data[node])
			}); err != nil {
				t.Fatal(err)
			}
			// Every ring link carries exactly the per-node step count.
			for i := 0; i < n; i++ {
				st := tp.LinkStats(i, (i+1)%n)
				if st.Messages != netsim.RingMessages(n) {
					t.Errorf("link %d->%d: %d messages, want %d", i, (i+1)%n, st.Messages, netsim.RingMessages(n))
				}
			}
			msgs, bytes := tp.Totals()
			if want := n * netsim.RingMessages(n); msgs != want {
				t.Errorf("total messages %d, want %d", msgs, want)
			}
			// Each of the two phases moves every chunk n-1 times: 2(n-1)*8d.
			if want := 2 * (n - 1) * 8 * d; bytes != want {
				t.Errorf("total bytes %d, want %d", bytes, want)
			}
			inner.Close()
		})
		t.Run(fmt.Sprintf("allgather-n%d", n), func(t *testing.T) {
			inner, _ := NewChanTransport(n)
			tp := NewInstrumented(inner, nil)
			payload := make([]byte, 100)
			if err := runAll(n, func(node int) error {
				_, err := AllGather(tp, node, n, payload)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				st := tp.LinkStats(i, (i+1)%n)
				if st.Messages != netsim.AllGatherMessages(n) {
					t.Errorf("link %d->%d: %d messages, want %d", i, (i+1)%n, st.Messages, netsim.AllGatherMessages(n))
				}
			}
			msgs, bytes := tp.Totals()
			if want := n * netsim.AllGatherMessages(n); msgs != want {
				t.Errorf("total messages %d, want %d", msgs, want)
			}
			if want := n * (n - 1) * len(payload); bytes != want {
				t.Errorf("total bytes %d, want %d", bytes, want)
			}
			inner.Close()
		})
		t.Run(fmt.Sprintf("ps-n%d", n), func(t *testing.T) {
			inner, _ := NewChanTransport(n + 1)
			tp := NewInstrumented(inner, nil)
			serverErr := make(chan error, 1)
			go func() {
				serverErr <- PSServe(tp, n, n,
					func(int, []byte) error { return nil },
					func() ([]byte, error) { return make([]byte, 40), nil })
			}()
			if err := runAll(n, func(node int) error {
				_, err := PSPushPull(tp, node, n, make([]byte, 25))
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if err := <-serverErr; err != nil {
				t.Fatal(err)
			}
			msgs, bytes := tp.Totals()
			if want := netsim.PSMessages(n); msgs != want {
				t.Errorf("total messages %d, want %d", msgs, want)
			}
			if want := n*25 + n*40; bytes != want {
				t.Errorf("total bytes %d, want %d", bytes, want)
			}
			inner.Close()
		})
	}
}

func TestVirtualTimeMatchesNetsimAlphaBeta(t *testing.T) {
	// Uniform payloads on a homogeneous fabric: the instrumented
	// transport's discrete-event clocks must land exactly on the
	// alpha-beta closed forms.
	net := netsim.Network{Workers: 4, BandwidthBps: 1e9, LatencySec: 1e-4}
	n := net.Workers
	const d = 4096 // divisible by n: equal ring chunks

	t.Run("ring", func(t *testing.T) {
		inner, _ := NewChanTransport(n)
		tp := NewInstrumented(inner, ScenarioFromNetwork(net))
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, d)
		}
		if err := runAll(n, func(node int) error {
			return RingAllReduce(tp, node, n, data[node])
		}); err != nil {
			t.Fatal(err)
		}
		want := net.AllReduceDense(8 * d)
		if got := tp.Elapsed(); relErr(got, want) > 1e-9 {
			t.Errorf("ring elapsed %v, netsim predicts %v", got, want)
		}
		inner.Close()
	})
	t.Run("allgather", func(t *testing.T) {
		inner, _ := NewChanTransport(n)
		tp := NewInstrumented(inner, ScenarioFromNetwork(net))
		payload := make([]byte, 8*d/100)
		if err := runAll(n, func(node int) error {
			_, err := AllGather(tp, node, n, payload)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		want := net.AllGatherSparse(len(payload))
		if got := tp.Elapsed(); relErr(got, want) > 1e-9 {
			t.Errorf("allgather elapsed %v, netsim predicts %v", got, want)
		}
		inner.Close()
	})
	t.Run("ps", func(t *testing.T) {
		inner, _ := NewChanTransport(n + 1)
		tp := NewInstrumented(inner, ScenarioFromNetwork(net))
		push, pull := 120, 4096
		serverErr := make(chan error, 1)
		go func() {
			serverErr <- PSServe(tp, n, n,
				func(int, []byte) error { return nil },
				func() ([]byte, error) { return make([]byte, pull), nil })
		}()
		if err := runAll(n, func(node int) error {
			_, err := PSPushPull(tp, node, n, make([]byte, push))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := <-serverErr; err != nil {
			t.Fatal(err)
		}
		want := net.ParameterServer(push, pull)
		if got := tp.Elapsed(); relErr(got, want) > 1e-9 {
			t.Errorf("ps elapsed %v, netsim predicts %v", got, want)
		}
		inner.Close()
	})
}

func TestScenarioKnobs(t *testing.T) {
	net := netsim.Network{Workers: 4, BandwidthBps: 1e9, LatencySec: 1e-5}
	n := net.Workers
	base := func(scen *Scenario, compute map[int]float64) float64 {
		inner, _ := NewChanTransport(n)
		tp := NewInstrumented(inner, scen)
		defer inner.Close()
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, 1024)
		}
		if err := runAll(n, func(node int) error {
			tp.Compute(node, compute[node])
			return RingAllReduce(tp, node, n, data[node])
		}); err != nil {
			t.Fatal(err)
		}
		return tp.Elapsed()
	}
	work := map[int]float64{0: 1e-3, 1: 1e-3, 2: 1e-3, 3: 1e-3}

	nominal := base(ScenarioFromNetwork(net), work)

	// A 5x straggler on one node must slow the synchronous step by
	// roughly the extra compute it burns.
	slow := ScenarioFromNetwork(net)
	slow.StragglerFactor = map[int]float64{2: 5}
	straggled := base(slow, work)
	if straggled <= nominal+3e-3 {
		t.Errorf("straggler elapsed %v, nominal %v: expected ~4ms of drag", straggled, nominal)
	}

	// Degrading one ring link to a tenth of the bandwidth must slow the
	// collective.
	weak := ScenarioFromNetwork(net)
	weak.LinkBandwidthBps = map[Link]float64{{From: 1, To: 2}: net.BandwidthBps / 10}
	degraded := base(weak, work)
	if degraded <= nominal {
		t.Errorf("degraded-link elapsed %v not above nominal %v", degraded, nominal)
	}
}

func TestTransportErrors(t *testing.T) {
	tp, err := NewChanTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChanTransport(0); err == nil {
		t.Error("0 nodes should error")
	}
	if err := tp.Send(0, 5, nil); err == nil {
		t.Error("out-of-range destination should error")
	}
	if err := tp.Send(1, 1, nil); err == nil {
		t.Error("self-send should error")
	}
	if _, err := tp.Recv(2, 0); err == nil {
		t.Error("out-of-range receiver should error")
	}
	// Messages delivered before Close still drain; then Recv errors.
	if err := tp.Send(0, 1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	tp.Close()
	if p, err := tp.Recv(1, 0); err != nil || len(p) != 1 {
		t.Errorf("pre-close message should drain: %v %v", p, err)
	}
	if _, err := tp.Recv(1, 0); err == nil {
		t.Error("recv on closed drained transport should error")
	}
	if err := tp.Send(0, 1, []byte{2}); err == nil {
		// Buffered link could still accept; the contract only requires an
		// eventual error, so a blocked send must fail once capacity is gone.
		for i := 0; i < linkDepth+1; i++ {
			if err := tp.Send(0, 1, []byte{2}); err != nil {
				return
			}
		}
		t.Error("send on closed transport never errored")
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
