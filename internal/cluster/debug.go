package cluster

import (
	"fmt"
	"os"
	"time"
)

// debugOn enables fault-path diagnostics (membership renegotiations,
// recovery attempts) on stderr when SIDCO_CLUSTER_DEBUG is set. The
// happy path never logs; the fault path is rare and operators debugging
// a split deployment need the per-rank timeline.
var debugOn = os.Getenv("SIDCO_CLUSTER_DEBUG") != ""

var debugStart = time.Now() //sidco:nondet debug-log timestamps never feed computation

// dbg prints one debug line when SIDCO_CLUSTER_DEBUG is set.
//
//sidco:nondet stderr debug timeline, gated off by default
func dbg(format string, args ...any) {
	if !debugOn {
		return
	}
	fmt.Fprintf(os.Stderr, "[cluster %8.3fs] %s\n",
		time.Since(debugStart).Seconds(), fmt.Sprintf(format, args...))
}
