package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestChanTransportCloseSemantics pins the deterministic close contract:
// delivery wins over the shutdown error whenever the link operation is
// ready, every single time — no dependence on Go's random select choice.
func TestChanTransportCloseSemantics(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		tp, err := NewChanTransport(2)
		if err != nil {
			t.Fatal(err)
		}
		// Two payloads sit in the link when Close lands: both must come
		// out, in order, before Recv reports the closure.
		if err := tp.Send(0, 1, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := tp.Send(0, 1, []byte{2}); err != nil {
			t.Fatal(err)
		}
		tp.Close()
		for want := byte(1); want <= 2; want++ {
			p, err := tp.Recv(1, 0)
			if err != nil {
				t.Fatalf("trial %d: recv of pre-close payload %d failed: %v", trial, want, err)
			}
			if len(p) != 1 || p[0] != want {
				t.Fatalf("trial %d: got payload %v, want [%d] (FIFO across close)", trial, p, want)
			}
		}
		if _, err := tp.Recv(1, 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("trial %d: drained recv error = %v, want ErrClosed", trial, err)
		}
		// Send after close with free link capacity completes (delivery
		// preferred); once the link is full it reports the closure.
		for i := 0; i < linkDepth; i++ {
			if err := tp.Send(1, 0, []byte{3}); err != nil {
				t.Fatalf("trial %d: post-close send %d with free capacity failed: %v", trial, i, err)
			}
		}
		if err := tp.Send(1, 0, []byte{4}); !errors.Is(err, ErrClosed) {
			t.Fatalf("trial %d: post-close send on full link error = %v, want ErrClosed", trial, err)
		}
	}
}

// TestChanTransportCloseUnblocksPending covers the blocking side of
// Close: a Recv waiting on an empty link and a Send waiting on a full
// one must both return ErrClosed instead of hanging.
func TestChanTransportCloseUnblocksPending(t *testing.T) {
	tp, err := NewChanTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < linkDepth; i++ {
		if err := tp.Send(0, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 2)
	go func() {
		_, err := tp.Recv(0, 1) // empty link
		errs <- err
	}()
	go func() {
		errs <- tp.Send(0, 1, []byte{9}) // full link
	}()
	time.Sleep(10 * time.Millisecond)
	tp.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("unblocked op error = %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending operation did not unblock on Close")
		}
	}
}

// TestTransportCloseMidScheduleRace is the -race regression for the
// shutdown path: nodes run interlocked ring schedules flat out while the
// main goroutine closes the transport under them. Every node must return
// (no deadlock), and any error must be the closure — never a corrupted
// payload or a spurious failure. Runs over both transports.
func TestTransportCloseMidScheduleRace(t *testing.T) {
	const n, dim, steps = 4, 256, 400
	transports := map[string]func() (Transport, error){
		"chan": func() (Transport, error) { return NewChanTransport(n) },
		"tcp":  func() (Transport, error) { return newLoopbackTCP(n) },
	}
	for name, mk := range transports {
		t.Run(name, func(t *testing.T) {
			for _, closeAfter := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
				tp, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				errs := make([]error, n)
				for node := 0; node < n; node++ {
					wg.Add(1)
					go func(node int) {
						defer wg.Done()
						data := make([]float64, dim)
						for i := range data {
							data[i] = float64(node*dim + i)
						}
						for step := 0; step < steps; step++ {
							if err := RingAllReduce(tp, node, n, data); err != nil {
								errs[node] = err
								return
							}
						}
					}(node)
				}
				time.Sleep(closeAfter)
				tp.Close()
				done := make(chan struct{})
				go func() { wg.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatalf("close after %v: schedule deadlocked on shutdown", closeAfter)
				}
				for node, err := range errs {
					if err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("close after %v: node %d failed with %v, want ErrClosed or clean finish", closeAfter, node, err)
					}
				}
			}
		})
	}
}

// newLoopbackTCP builds a TCP transport hosting all n nodes on
// kernel-assigned loopback ports.
func newLoopbackTCP(n int) (*TCPTransport, error) {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return NewTCPTransport(TCPConfig{Addrs: addrs, DialTimeout: 10 * time.Second})
}

// TestChanTransportValidation keeps the link-id checks pinned.
func TestChanTransportValidation(t *testing.T) {
	if _, err := NewChanTransport(0); err == nil {
		t.Error("0 nodes should error")
	}
	tp, err := NewChanTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	if err := tp.Send(0, 2, nil); err == nil || errors.Is(err, ErrClosed) {
		t.Errorf("out-of-range send error = %v, want a validation error", err)
	}
	if err := tp.Send(1, 1, nil); err == nil {
		t.Error("self-send should error")
	}
	if _, err := tp.Recv(-1, 0); err == nil {
		t.Error("out-of-range recv should error")
	}
	if fmt.Sprint(tp.Nodes()) != "2" {
		t.Errorf("nodes = %d, want 2", tp.Nodes())
	}
}
