package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrHandshakeTimeout is wrapped by the error an accepted connection
// produces when its peer never completes the 12-byte handshake within
// the dial-timeout budget: the connection was established, so the dial
// retry loop is the wrong diagnosis — the peer is up but not speaking
// the protocol (a stray client on the port, or a wedged process). The
// recorded error names the remote address; HandshakeErrors retrieves
// what the accept side observed.
var ErrHandshakeTimeout = errors.New("handshake timed out")

// TCPConfig assembles a TCPTransport.
type TCPConfig struct {
	// Addrs is the shared host list: Addrs[i] is node i's listen address
	// (host:port). Every process of a deployment passes the same list. A
	// port of 0 asks the kernel for a free port — usable only for nodes
	// hosted by this process (peers cannot dial an unknown port); Addr
	// reports the bound address.
	Addrs []string
	// Local lists the node ids this process hosts (it listens for them
	// and may Send from / Recv to them). Empty means all nodes — the
	// single-process configuration the in-process tests use.
	Local []int
	// DialTimeout bounds the lazy-dial retry loop per link: peers of a
	// multi-process launch come up at different times, so the first Send
	// to a node keeps retrying the connection until this budget runs
	// out. Zero means 10 seconds.
	DialTimeout time.Duration
	// Telemetry, if non-nil, records transport-level events: raw wire
	// bytes per directed link (payloads + 4-byte frame headers + the
	// 12-byte handshake, on both the write and the read side), a dial
	// span per established connection, and a counter of retried dial
	// attempts. These sit below the gradient-traffic counters the
	// Instrumented wrapper emits: wire_sent bytes on a link exceed the
	// payload bytes by exactly 4 per message plus 12 per connection.
	// Nil is free.
	Telemetry *telemetry.Tracer
}

// tcpMagic opens every connection's handshake frame, so a stray client
// on the port fails fast instead of corrupting a link.
const tcpMagic = 0x53444331 // "SDC1"

// tcpMaxFrame bounds a frame's declared payload size (1 GiB): a
// corrupted or hostile length prefix fails the link instead of
// attempting an absurd allocation.
const tcpMaxFrame = 1 << 30

// TCPTransport is the real-socket Transport: length-prefix-framed
// payloads over one TCP connection per directed link, with a listener
// per hosted node. Per-link FIFO follows from TCP's byte-stream order
// plus the one-connection-per-link rule; the handshake frame tags each
// connection with its (from, to) link, so accepted connections
// demultiplex into per-link inboxes.
//
// A transport instance may host any subset of the node set: one node per
// process in a real deployment (cmd/sidco-node), or all nodes in one
// process for loopback tests — either way every payload crosses a real
// socket. Close follows the Transport contract on the receive side
// (payloads already delivered to an inbox are preferred over the close
// error); sends fail once the sockets are torn down.
type TCPTransport struct {
	n           int
	addrs       []string
	local       []bool
	dialTimeout time.Duration
	tel         *telemetry.Tracer

	lns   []net.Listener       // per hosted node, nil elsewhere
	inbox map[Link]chan []byte // links into hosted nodes
	done  chan struct{}
	once  sync.Once

	mu    sync.Mutex
	sends map[Link]*tcpSendLink // guarded by mu
	conns map[net.Conn]struct{} // guarded by mu
	wg    sync.WaitGroup

	hsMu   sync.Mutex
	hsErrs []error // guarded by hsMu; accept-side handshake failures, per connection
}

// tcpSendLink is the sender half of one directed link: the lazily
// dialed connection and its write lock (schedules have a single sender
// per link, but the lock keeps misuse safe rather than corrupting the
// frame stream).
type tcpSendLink struct {
	mu   sync.Mutex
	conn net.Conn // guarded by mu
	seq  int64    // guarded by mu; next wire sequence number; the handshake took 0
	err  error    // guarded by mu; sticky dial failure
}

// NewTCPTransport binds a listener for every hosted node and starts
// their accept loops. Connections are dialed lazily on first Send per
// link. Callers must Close the transport to release the sockets.
//
//sidco:errclass construction-time config validation, deliberately fatal
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	n := len(cfg.Addrs)
	if n < 1 {
		return nil, fmt.Errorf("cluster: tcp transport needs at least one address")
	}
	t := &TCPTransport{
		n:           n,
		addrs:       append([]string(nil), cfg.Addrs...),
		local:       make([]bool, n),
		dialTimeout: cfg.DialTimeout,
		tel:         cfg.Telemetry,
		lns:         make([]net.Listener, n),
		inbox:       make(map[Link]chan []byte),
		done:        make(chan struct{}),
		sends:       make(map[Link]*tcpSendLink),
		conns:       make(map[net.Conn]struct{}),
	}
	if t.dialTimeout <= 0 {
		t.dialTimeout = 10 * time.Second
	}
	if len(cfg.Local) == 0 {
		for i := range t.local {
			t.local[i] = true
		}
	} else {
		for _, id := range cfg.Local {
			if id < 0 || id >= n {
				return nil, fmt.Errorf("cluster: local node %d outside %d addresses", id, n)
			}
			t.local[id] = true
		}
	}
	for node := range t.addrs {
		if !t.local[node] {
			continue
		}
		ln, err := net.Listen("tcp", t.addrs[node])
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("cluster: node %d listen %s: %w", node, t.addrs[node], err)
		}
		t.lns[node] = ln
		t.addrs[node] = ln.Addr().String() // resolve port 0
		for from := 0; from < n; from++ {
			if from != node {
				t.inbox[Link{from, node}] = make(chan []byte, linkDepth)
			}
		}
	}
	for node, ln := range t.lns {
		if ln == nil {
			continue
		}
		t.wg.Add(1)
		go t.acceptLoop(node, ln)
	}
	return t, nil
}

// Nodes implements Transport.
func (t *TCPTransport) Nodes() int { return t.n }

// Addr returns the address node listens on (with any port 0 resolved to
// the bound port) — what a single-process launcher passes to the host
// list of its children.
//
//sidco:errclass caller-misuse validation, deliberately fatal
func (t *TCPTransport) Addr(node int) (string, error) {
	if node < 0 || node >= t.n {
		return "", fmt.Errorf("cluster: node %d outside %d nodes", node, t.n)
	}
	return t.addrs[node], nil
}

func (t *TCPTransport) closed() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// check validates a link's endpoints.
//
//sidco:errclass caller-misuse validation, deliberately fatal
func (t *TCPTransport) check(from, to int) error {
	if from < 0 || from >= t.n || to < 0 || to >= t.n {
		return fmt.Errorf("cluster: link %d->%d outside %d nodes", from, to, t.n)
	}
	if from == to {
		return fmt.Errorf("cluster: node %d sending to itself", from)
	}
	return nil
}

// Send implements Transport: it lazily dials the link's connection (with
// retries, so peers may come up later) and writes one framed payload.
// TCP flow control provides the link-capacity backpressure: when the
// receiver's inbox is full its reader stops draining the socket, and the
// write here eventually blocks.
func (t *TCPTransport) Send(from, to int, payload []byte) error {
	if err := t.check(from, to); err != nil {
		return err
	}
	if !t.local[from] {
		return fmt.Errorf("cluster: send from node %d, which this transport does not host", from) //sidco:errclass caller misuse, deliberately fatal
	}
	if len(payload) > tcpMaxFrame {
		return fmt.Errorf("cluster: send %d->%d: payload %d bytes exceeds frame limit", from, to, len(payload)) //sidco:errclass caller misuse, deliberately fatal
	}
	if t.closed() {
		return fmt.Errorf("cluster: send %d->%d: %w", from, to, ErrClosed)
	}
	sl := t.sendLink(from, to)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.err != nil {
		return sl.err
	}
	if sl.conn == nil {
		conn, err := t.dial(from, to)
		if err != nil {
			sl.err = err
			return err
		}
		sl.conn = conn
		sl.seq = 1 // the handshake carried wire sequence 0
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := sl.conn.Write(hdr[:]); err != nil {
		return t.sendErr(from, to, err)
	}
	if _, err := sl.conn.Write(payload); err != nil {
		return t.sendErr(from, to, err)
	}
	seq := sl.seq
	sl.seq++
	t.tel.CountSeq(telemetry.CounterWireSentBytes, from, to, int64(4+len(payload)), seq, -1)
	return nil
}

// sendErr maps a socket write failure onto the Transport contract: after
// Close every send error reports the closure, not the torn-down socket;
// before it, a failed write means the peer tore the connection down
// (process death shows up as RST/broken pipe on the next write), which
// classifies as the recoverable peer-loss the elastic layer handles.
func (t *TCPTransport) sendErr(from, to int, err error) error {
	if t.closed() {
		return fmt.Errorf("cluster: send %d->%d: %w", from, to, ErrClosed)
	}
	return fmt.Errorf("cluster: send %d->%d: link broke: %w: %v", from, to, ErrPeerLost, err)
}

func (t *TCPTransport) sendLink(from, to int) *tcpSendLink {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := Link{from, to}
	sl := t.sends[l]
	if sl == nil {
		sl = &tcpSendLink{}
		t.sends[l] = sl
	}
	return sl
}

// dial connects the directed link from -> to and performs the handshake.
// Peers of a multi-process launch start at different times, so refused
// connections are retried with backoff until DialTimeout.
func (t *TCPTransport) dial(from, to int) (net.Conn, error) {
	span := t.tel.Begin(telemetry.SpanDial, from, to, -1, -1)
	deadline := time.Now().Add(t.dialTimeout) //sidco:nondet dial deadline, connection setup only
	backoff := 10 * time.Millisecond
	for {
		if t.closed() {
			return nil, fmt.Errorf("cluster: dial %d->%d: %w", from, to, ErrClosed)
		}
		d := net.Dialer{Deadline: deadline}
		conn, err := d.Dial("tcp", t.addrs[to])
		if err == nil {
			var hs [12]byte
			binary.LittleEndian.PutUint32(hs[0:], tcpMagic)
			binary.LittleEndian.PutUint32(hs[4:], uint32(from))
			binary.LittleEndian.PutUint32(hs[8:], uint32(to))
			if _, werr := conn.Write(hs[:]); werr != nil {
				conn.Close()
				return nil, fmt.Errorf("cluster: dial %d->%d handshake: %w", from, to, werr)
			}
			t.mu.Lock()
			t.conns[conn] = struct{}{}
			t.mu.Unlock()
			if t.closed() { // Close raced the registration: tear down now
				conn.Close()
				return nil, fmt.Errorf("cluster: dial %d->%d: %w", from, to, ErrClosed)
			}
			// The handshake is wire sequence 0 on its directed link: the
			// first paired event trace assembly aligns process clocks with.
			t.tel.CountSeq(telemetry.CounterWireSentBytes, from, to, int64(len(hs)), 0, -1)
			span.End() // only successful establishments are recorded
			return conn, nil
		}
		if time.Now().After(deadline) { //sidco:nondet dial deadline, connection setup only
			if t.closed() {
				return nil, fmt.Errorf("cluster: dial %d->%d: %w", from, to, ErrClosed)
			}
			return nil, fmt.Errorf("cluster: dial %d->%d (%s): %w", from, to, t.addrs[to], err)
		}
		t.tel.Count(telemetry.CounterDialRetries, from, to, 1)
		time.Sleep(backoff)
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// Recv implements Transport with the contract's deterministic close
// preference: payloads the reader goroutine already delivered to the
// link's inbox win over the shutdown error. A nil payload is the
// reader's poison pill — the peer's connection broke (its process died
// or dropped the link), so Recv fails instead of blocking forever on an
// inbox no one will ever feed again.
func (t *TCPTransport) Recv(to, from int) ([]byte, error) {
	if err := t.check(from, to); err != nil {
		return nil, err
	}
	if !t.local[to] {
		return nil, fmt.Errorf("cluster: recv at node %d, which this transport does not host", to) //sidco:errclass caller misuse, deliberately fatal
	}
	ch := t.inbox[Link{from, to}]
	deliver := func(p []byte) ([]byte, error) {
		if p == nil {
			// Keep the death signal sticky for subsequent Recvs.
			select {
			case ch <- nil:
			default:
			}
			if t.closed() {
				// Local Close raced the reader's poison: report closure,
				// the deterministic signal the contract promises.
				return nil, fmt.Errorf("cluster: recv %d->%d: %w", to, from, ErrClosed)
			}
			return nil, fmt.Errorf("cluster: recv %d->%d: link broke: %w", to, from, ErrPeerLost)
		}
		return p, nil
	}
	select {
	case p := <-ch:
		return deliver(p)
	default:
	}
	select {
	case p := <-ch:
		return deliver(p)
	case <-t.done:
		select {
		case p := <-ch:
			return deliver(p)
		default:
			return nil, fmt.Errorf("cluster: recv %d->%d: %w", to, from, ErrClosed)
		}
	}
}

// RecvTimeout implements TimeoutRecver over the same inbox machinery as
// Recv: delivered payloads win over the close error and the timeout; a
// nil poison still reports the lost link.
func (t *TCPTransport) RecvTimeout(to, from int, timeout time.Duration) ([]byte, error) {
	if err := t.check(from, to); err != nil {
		return nil, err
	}
	if !t.local[to] {
		return nil, fmt.Errorf("cluster: recv at node %d, which this transport does not host", to) //sidco:errclass caller misuse, deliberately fatal
	}
	ch := t.inbox[Link{from, to}]
	deliver := func(p []byte) ([]byte, error) {
		if p == nil {
			select {
			case ch <- nil:
			default:
			}
			if t.closed() {
				return nil, fmt.Errorf("cluster: recv %d->%d: %w", to, from, ErrClosed)
			}
			return nil, fmt.Errorf("cluster: recv %d->%d: link broke: %w", to, from, ErrPeerLost)
		}
		return p, nil
	}
	select {
	case p := <-ch:
		return deliver(p)
	default:
	}
	timer := time.NewTimer(timeout) //sidco:nondet receive timeout, fault detection only
	defer timer.Stop()
	select {
	case p := <-ch:
		return deliver(p)
	case <-t.done:
		select {
		case p := <-ch:
			return deliver(p)
		default:
			return nil, fmt.Errorf("cluster: recv %d->%d: %w", to, from, ErrClosed)
		}
	case <-timer.C:
		select {
		case p := <-ch:
			return deliver(p)
		default:
			return nil, fmt.Errorf("cluster: recv %d->%d after %v: %w", to, from, timeout, ErrTimeout)
		}
	}
}

// acceptLoop owns one hosted node's listener: each accepted connection
// is handshake-validated and handed to a reader goroutine for the life
// of the link.
func (t *TCPTransport) acceptLoop(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		t.mu.Lock()
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		if t.closed() {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(node, conn)
	}
}

// readLoop validates a connection's handshake and then pumps its frames
// into the link's inbox until the connection or the transport closes. A
// connection that breaks after carrying the link (peer crash, dropped
// socket) poisons the inbox with a nil payload so blocked Recvs fail
// fast instead of waiting on a dead peer forever.
func (t *TCPTransport) readLoop(node int, conn net.Conn) {
	defer t.wg.Done()
	conn.SetReadDeadline(time.Now().Add(t.dialTimeout)) //sidco:nondet handshake read deadline, connection setup only
	var hs [12]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		// A connection that was accepted but never finished the handshake
		// is a distinct failure from a refused dial: the peer is reachable
		// but not speaking the protocol. Record a named error (the dial
		// retry loop cannot see this side) instead of dying silently.
		if !t.closed() {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				t.noteHandshakeErr(fmt.Errorf(
					"cluster: node %d: connection from %s: %w after %v",
					node, conn.RemoteAddr(), ErrHandshakeTimeout, t.dialTimeout))
			} else {
				t.noteHandshakeErr(fmt.Errorf(
					"cluster: node %d: connection from %s: handshake read: %w",
					node, conn.RemoteAddr(), err))
			}
		}
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	from := int(binary.LittleEndian.Uint32(hs[4:]))
	to := int(binary.LittleEndian.Uint32(hs[8:]))
	if binary.LittleEndian.Uint32(hs[0:]) != tcpMagic || to != node || from < 0 || from >= t.n || from == to {
		conn.Close()
		return
	}
	// Wire sequence numbers mirror the sender's exactly: TCP's byte
	// stream delivers the handshake (0) and every frame (1, 2, ...) in
	// write order, and this goroutine is the link's only reader.
	t.tel.CountSeq(telemetry.CounterWireRecvBytes, from, to, int64(len(hs)), 0, -1)
	wireSeq := int64(1)
	ch := t.inbox[Link{from, to}]
	fail := func() {
		conn.Close()
		if t.closed() {
			return // local shutdown: ErrClosed is the signal, not link loss
		}
		select {
		case ch <- nil: // poison: Recv turns this into a link-lost error
		case <-t.done:
		}
	}
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			fail()
			return
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		if size > tcpMaxFrame {
			fail()
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			fail()
			return
		}
		t.tel.CountSeq(telemetry.CounterWireRecvBytes, from, to, int64(4+size), wireSeq, -1)
		wireSeq++
		select {
		case ch <- payload:
		case <-t.done:
			conn.Close()
			return
		}
	}
}

// noteHandshakeErr records one accept-side handshake failure.
func (t *TCPTransport) noteHandshakeErr(err error) {
	t.hsMu.Lock()
	t.hsErrs = append(t.hsErrs, err)
	t.hsMu.Unlock()
}

// HandshakeErrors returns the accept-side handshake failures observed so
// far: connections that were established but never delivered a valid
// handshake frame. A peer that accepts-but-stalls surfaces here as an
// error wrapping ErrHandshakeTimeout naming the remote address.
func (t *TCPTransport) HandshakeErrors() []error {
	t.hsMu.Lock()
	defer t.hsMu.Unlock()
	return append([]error(nil), t.hsErrs...)
}

// FreeLoopbackAddrs reserves n distinct loopback host:port addresses by
// binding and immediately releasing kernel-assigned ports — the host
// list a single-machine launcher (cmd/sidco-node -launch, the loopback
// tests) hands to every node before any listener is up. The ports are
// free at return but not held, so a rebind race is possible in
// principle; callers that cannot tolerate it should retry construction.
func FreeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: reserving loopback port %d: %w", i, err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// Close implements Transport: it stops the accept and reader goroutines,
// closes every connection and unblocks pending operations. Payloads
// already delivered to inboxes stay receivable per the contract.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		for _, ln := range t.lns {
			if ln != nil {
				ln.Close()
			}
		}
		t.mu.Lock()
		for conn := range t.conns {
			conn.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}
