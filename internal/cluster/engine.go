package cluster

import (
	"fmt"
	"sync"

	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/tensor"
)

// Config assembles a cluster Engine.
type Config struct {
	// Workers is the number of training nodes N (>= 1).
	Workers int
	// Collective selects the exchange schedule. CollectiveAuto mirrors
	// netsim: all-gather when a contribution is sparse, ring all-reduce
	// when dense.
	Collective netsim.Collective
	// Format is the wire format for encoded gradient payloads. The zero
	// value WireLossless (encoding.FormatPairs64) makes all-gather and
	// parameter-server exchanges reproduce the in-process reducer
	// bit-for-bit; the float32 wires model what production fabrics
	// actually ship.
	Format Wire
	// Transport overrides the default in-process channel transport. It
	// must span NodeCount(Workers, Collective) nodes.
	Transport Transport
	// Scenario enables the virtual-time model on the instrumented
	// transport (nil: traffic counting only).
	Scenario *Scenario
	// ComputeSec charges this much local work to every worker's clock at
	// the start of each exchange (scaled per node by the scenario's
	// straggler factors).
	ComputeSec float64
	// Verify makes every exchange cross-check that all nodes computed
	// identical aggregates (a distributed-consistency assertion for
	// tests; it costs O(N*d) comparisons per step).
	Verify bool
}

// NodeCount returns the transport size a configuration needs: the
// parameter-server collective adds one server node after the workers.
func NodeCount(workers int, c netsim.Collective) int {
	if c == netsim.CollectivePS {
		return workers + 1
	}
	return workers
}

// Wire selects the payload wire format. Its zero value is the lossless
// default, so Config{} trains bit-identically to the in-process path.
type Wire int

const (
	// WireLossless ships encoding.FormatPairs64: 12 bytes per element,
	// float64 values bit-for-bit.
	WireLossless Wire = iota
	// WirePairs ships encoding.FormatPairs: 8 bytes per element, float32.
	WirePairs
	// WireBitmap ships encoding.FormatBitmap.
	WireBitmap
	// WireDense ships encoding.FormatDense.
	WireDense
	// WireDeltaVarint ships encoding.FormatDeltaVarint.
	WireDeltaVarint
)

// Format maps the wire selector onto its encoding format.
func (w Wire) Format() (encoding.Format, error) {
	switch w {
	case WireLossless:
		return encoding.FormatPairs64, nil
	case WirePairs:
		return encoding.FormatPairs, nil
	case WireBitmap:
		return encoding.FormatBitmap, nil
	case WireDense:
		return encoding.FormatDense, nil
	case WireDeltaVarint:
		return encoding.FormatDeltaVarint, nil
	default:
		return 0, fmt.Errorf("cluster: unknown wire format %d", int(w))
	}
}

// job is one node's share of a gradient exchange.
type job struct {
	step   int
	sparse *tensor.Sparse // nil on the dense path
	dense  []float64
	dim    int
	coll   netsim.Collective // resolved collective, never Auto
}

// result is what a node reports back after running its schedule.
type result struct {
	node int
	err  error
}

// Engine runs one goroutine per cluster node; each Exchange call hands
// every node its worker's gradient, the nodes execute the configured
// collective as real message passing, and the aggregated mean lands in
// the caller's buffer. Engine satisfies dist.GradientExchange, so it
// plugs directly into dist.TrainerConfig.Exchange.
type Engine struct {
	cfg     Config
	format  encoding.Format // resolved from cfg.Format
	tp      *Instrumented
	server  int // server node id under PS, else -1
	jobs    []chan job
	results chan result
	outs    [][]float64 // per-node aggregation buffers
	wg      sync.WaitGroup
	closed  bool
}

// New validates cfg, builds the transport and starts the node
// goroutines. Callers must Close the engine to stop them.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: Workers = %d, need >= 1", cfg.Workers)
	}
	switch cfg.Collective {
	case netsim.CollectiveAuto, netsim.CollectiveRing, netsim.CollectiveAllGather, netsim.CollectivePS:
	default:
		return nil, fmt.Errorf("cluster: unknown collective %v", cfg.Collective)
	}
	format, err := cfg.Format.Format()
	if err != nil {
		return nil, err
	}
	nodes := NodeCount(cfg.Workers, cfg.Collective)
	inner := cfg.Transport
	if inner == nil {
		var err error
		inner, err = NewChanTransport(nodes)
		if err != nil {
			return nil, err
		}
	}
	if inner.Nodes() < nodes {
		return nil, fmt.Errorf("cluster: transport has %d nodes, need %d", inner.Nodes(), nodes)
	}
	e := &Engine{
		cfg:     cfg,
		format:  format,
		tp:      NewInstrumented(inner, cfg.Scenario),
		server:  -1,
		jobs:    make([]chan job, cfg.Workers),
		results: make(chan result, nodes),
		outs:    make([][]float64, cfg.Workers),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.jobs[w] = make(chan job)
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	if cfg.Collective == netsim.CollectivePS {
		e.server = cfg.Workers
		e.wg.Add(1)
		go e.serverLoop()
	}
	return e, nil
}

// Transport exposes the instrumented transport for traffic and
// virtual-time inspection.
func (e *Engine) Transport() *Instrumented { return e.tp }

// Close stops the node goroutines and closes the transport. The Engine
// is not concurrency-safe: Exchange and Close must come from one
// goroutine (the Trainer's step loop).
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	err := e.tp.Close()
	for _, ch := range e.jobs {
		close(ch)
	}
	e.wg.Wait()
	return err
}

// Exchange implements dist.GradientExchange: it fans the workers'
// contributions out to the node goroutines, runs the collective, and
// copies the agreed mean into agg.
func (e *Engine) Exchange(step int, ins []dist.ExchangeInput, agg []float64) error {
	if e.closed {
		return fmt.Errorf("cluster: exchange on closed engine")
	}
	if len(ins) != e.cfg.Workers {
		return fmt.Errorf("cluster: %d inputs for %d workers", len(ins), e.cfg.Workers)
	}
	// Resolve Auto once for the whole round — per-node resolution could
	// diverge on a mixed dense/sparse input set and deadlock the
	// schedule.
	coll := e.cfg.Collective
	if coll == netsim.CollectiveAuto {
		if ins[0].Sparse != nil {
			coll = netsim.CollectiveAllGather
		} else {
			coll = netsim.CollectiveRing
		}
	}
	for w, in := range ins {
		e.jobs[w] <- job{step: step, sparse: in.Sparse, dense: in.Dense, dim: len(agg), coll: coll}
	}
	want := e.cfg.Workers
	if e.server >= 0 {
		want++ // the server also reports
	}
	var firstErr error
	for i := 0; i < want; i++ {
		r := <-e.results
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: node %d: %w", r.node, r.err)
			// Peers may be blocked mid-schedule waiting on the failed
			// node; closing the transport unblocks them so the round
			// drains instead of deadlocking.
			e.tp.Close()
		}
	}
	if firstErr == nil && e.cfg.Verify {
		for w := 1; w < e.cfg.Workers; w++ {
			for i := range e.outs[0] {
				if e.outs[w][i] != e.outs[0][i] {
					firstErr = fmt.Errorf("cluster: node %d disagrees with node 0 at element %d: %v vs %v",
						w, i, e.outs[w][i], e.outs[0][i])
					break
				}
			}
		}
	}
	if firstErr != nil {
		// Fail-stop: a broken round leaves stray messages in the
		// transport, so the engine cannot safely run another schedule.
		e.Close()
		return firstErr
	}
	copy(agg, e.outs[0])
	return nil
}

// workerLoop is the goroutine body of worker node w.
func (e *Engine) workerLoop(w int) {
	defer e.wg.Done()
	for jb := range e.jobs[w] {
		e.results <- result{node: w, err: e.runWorker(w, jb)}
	}
}

func (e *Engine) runWorker(w int, jb job) error {
	if len(e.outs[w]) != jb.dim {
		e.outs[w] = make([]float64, jb.dim)
	}
	out := e.outs[w]
	if e.cfg.ComputeSec > 0 {
		e.tp.Compute(w, e.cfg.ComputeSec)
	}
	n := e.cfg.Workers
	switch jb.coll {
	case netsim.CollectiveRing:
		// Dense in-ring reduction: start from the local dense gradient
		// (densifying the sparse selection if the caller forced ring).
		if jb.sparse != nil {
			tensor.Zero(out)
			jb.sparse.AddTo(out)
		} else {
			if len(jb.dense) != jb.dim {
				return fmt.Errorf("dense gradient has %d elements, want %d", len(jb.dense), jb.dim)
			}
			copy(out, jb.dense)
		}
		if err := RingAllReduce(e.tp, w, n, out); err != nil {
			return err
		}
		tensor.Scale(1/float64(n), out)
		return nil

	case netsim.CollectiveAllGather:
		enc, err := e.encodeLocal(jb)
		if err != nil {
			return err
		}
		bufs, err := AllGather(e.tp, w, n, enc)
		if err != nil {
			return err
		}
		// Decode and reduce in worker-index order: with a lossless format
		// this is the exact operation sequence of dist.InProcess.
		tensor.Zero(out)
		for origin := 0; origin < n; origin++ {
			s, err := encoding.Decode(bufs[origin])
			if err != nil {
				return fmt.Errorf("decoding origin %d: %w", origin, err)
			}
			if s.Dim != jb.dim {
				return fmt.Errorf("origin %d has dim %d, want %d", origin, s.Dim, jb.dim)
			}
			s.AddTo(out)
		}
		tensor.Scale(1/float64(n), out)
		return nil

	case netsim.CollectivePS:
		enc, err := e.encodeLocal(jb)
		if err != nil {
			return err
		}
		reply, err := PSPushPull(e.tp, w, e.server, enc)
		if err != nil {
			return err
		}
		s, err := encoding.Decode(reply)
		if err != nil {
			return fmt.Errorf("decoding server reply: %w", err)
		}
		if s.Dim != jb.dim {
			return fmt.Errorf("server reply has dim %d, want %d", s.Dim, jb.dim)
		}
		tensor.Zero(out)
		s.AddTo(out)
		return nil
	}
	return fmt.Errorf("unreachable collective")
}

// encodeLocal serialises a worker's contribution in the configured wire
// format; dense gradients ship as a full-support sparse vector so even
// the no-compression baseline moves real encoded bytes.
func (e *Engine) encodeLocal(jb job) ([]byte, error) {
	s := jb.sparse
	if s == nil {
		if len(jb.dense) != jb.dim {
			return nil, fmt.Errorf("dense gradient has %d elements, want %d", len(jb.dense), jb.dim)
		}
		idx := make([]int32, jb.dim)
		for i := range idx {
			idx[i] = int32(i)
		}
		var err error
		s, err = tensor.NewSparse(jb.dim, idx, jb.dense)
		if err != nil {
			return nil, err
		}
	}
	return encoding.Encode(s, e.format)
}

// serverLoop is the goroutine body of the parameter-server node: one
// PSServe round per exchange. The server learns each round's start from
// the first arriving push, so it needs no job channel.
func (e *Engine) serverLoop() {
	defer e.wg.Done()
	n := e.cfg.Workers
	var acc []float64
	var dim int
	for {
		combine := func(worker int, payload []byte) error {
			s, err := encoding.Decode(payload)
			if err != nil {
				return err
			}
			if worker == 0 {
				dim = s.Dim
				if len(acc) != dim {
					acc = make([]float64, dim)
				}
				tensor.Zero(acc)
			} else if s.Dim != dim {
				return fmt.Errorf("worker %d pushed dim %d, want %d", worker, s.Dim, dim)
			}
			// Worker-index arrival order (PSServe receives 0..n-1) keeps
			// the sum bit-identical to the in-process reducer.
			s.AddTo(acc)
			return nil
		}
		reply := func() ([]byte, error) {
			tensor.Scale(1/float64(n), acc)
			sp, err := sparsify(dim, acc)
			if err != nil {
				return nil, err
			}
			return encoding.Encode(sp, e.format)
		}
		if err := PSServe(e.tp, e.server, n, combine, reply); err != nil {
			// A server failure is fatal to the cluster: close the
			// transport so workers blocked on their pull unblock with an
			// error instead of hanging, then report and exit. (On a
			// normal engine Close the transport is already closed and
			// this is a no-op.)
			e.tp.Close()
			e.results <- result{node: e.server, err: err}
			return
		}
		e.results <- result{node: e.server}
	}
}

// sparsify extracts the non-zero support of a dense vector. Exact zeros
// drop out of the encoding; decoding restores them as zeros, so the
// round-trip is value-preserving.
func sparsify(dim int, dense []float64) (*tensor.Sparse, error) {
	idx := make([]int32, 0, len(dense))
	vals := make([]float64, 0, len(dense))
	for i, v := range dense {
		if v != 0 {
			idx = append(idx, int32(i))
			vals = append(vals, v)
		}
	}
	return tensor.NewSparse(dim, idx, vals)
}
