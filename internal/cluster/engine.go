package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config assembles a cluster Engine.
type Config struct {
	// Workers is the number of training nodes N (>= 1).
	Workers int
	// Collective selects the exchange schedule. CollectiveAuto mirrors
	// netsim: all-gather when a contribution is sparse, ring all-reduce
	// when dense.
	Collective netsim.Collective
	// Format is the wire format for encoded gradient payloads. The zero
	// value WireLossless (encoding.FormatPairs64) makes all-gather and
	// parameter-server exchanges reproduce the in-process reducer
	// bit-for-bit; the float32 wires model what production fabrics
	// actually ship.
	Format Wire
	// Transport overrides the default in-process channel transport. It
	// must span NodeCount(Workers, Collective) nodes.
	Transport Transport
	// Scenario enables the virtual-time model on the instrumented
	// transport (nil: traffic counting only).
	Scenario *Scenario
	// ComputeSec charges this much local work to every worker's clock at
	// the start of each exchange (scaled per node by the scenario's
	// straggler factors).
	ComputeSec float64
	// Chunks enables the chunked execution mode on the all-gather
	// collective: each exchange splits the index space into this many
	// near-equal ranges, ships every worker's selection as one encoded
	// payload per chunk, and pipelines chunk i+1's compression while
	// chunk i's collective is in flight. The per-chunk element budget is
	// whatever the monolithic selection placed in each range — the global
	// k-budget partitioned, never a per-chunk re-quota — so chunked
	// aggregates are bit-identical to monolithic ones for any compressor.
	// 0 or 1 keeps the monolithic schedule. Valid with CollectiveAllGather
	// and with CollectiveAuto (which resolves to all-gather on every
	// sparse exchange; an Auto exchange that resolves to the dense ring
	// rejects Chunks > 1 at that point).
	Chunks int
	// CompressSec charges this much compression time per exchange to
	// every worker's clock, split evenly across chunks. Unlike
	// ComputeSec, which is charged up front, the per-chunk slices are
	// charged inside the pipeline overlap slot, so under Chunks > 1 they
	// hide behind in-flight communication (scaled per node by the
	// scenario's straggler factors).
	CompressSec float64
	// Parallelism fans each node's per-origin payload decodes out over
	// up to this many goroutines per chunk round; the decoded
	// contributions are then reduced serially in worker-index order, so
	// aggregates are bit-identical to the sequential schedule at any
	// setting. 0 or 1 decodes sequentially.
	Parallelism int
	// StepTimeout, when positive, bounds every blocking receive of one
	// exchange: a worker stuck past the deadline fails its step with an
	// error wrapping ErrTimeout instead of hanging. The Engine stays
	// fail-stop — the classified error surfaces from Exchange and the
	// engine shuts down; elastic recovery (retry over the surviving
	// members) is Node's, the per-process runner. 0 disables deadlines.
	StepTimeout time.Duration
	// Telemetry, if non-nil, traces every round (per-node collective
	// spans, per-chunk encode spans) and the gradient traffic on the
	// instrumented transport (per-link sent/recv message and byte
	// counters, receive-wait time). Telemetry totals equal
	// Transport().Totals()/RecvTotals() exactly — same layer, same
	// events. Nil (the default) costs nothing.
	Telemetry *telemetry.Tracer
	// Verify makes every exchange cross-check that all nodes computed
	// identical aggregates (a distributed-consistency assertion for
	// tests; it costs O(N*d) comparisons per step).
	Verify bool
}

// NodeCount returns the transport size a configuration needs: the
// parameter-server collective adds one server node after the workers.
func NodeCount(workers int, c netsim.Collective) int {
	if c == netsim.CollectivePS {
		return workers + 1
	}
	return workers
}

// Wire selects the payload wire format. Its zero value is the lossless
// default, so Config{} trains bit-identically to the in-process path.
type Wire int

const (
	// WireLossless ships encoding.FormatPairs64: 12 bytes per element,
	// float64 values bit-for-bit.
	WireLossless Wire = iota
	// WirePairs ships encoding.FormatPairs: 8 bytes per element, float32.
	WirePairs
	// WireBitmap ships encoding.FormatBitmap.
	WireBitmap
	// WireDense ships encoding.FormatDense.
	WireDense
	// WireDeltaVarint ships encoding.FormatDeltaVarint.
	WireDeltaVarint
	// WirePairsF16 ships encoding.FormatPairsF16: 6 bytes per element,
	// IEEE binary16 values.
	WirePairsF16
	// WirePairsBF16 ships encoding.FormatPairsBF16: 6 bytes per
	// element, bfloat16 values.
	WirePairsBF16
	// WirePairsI8 ships encoding.FormatPairsI8: 5 bytes per element
	// plus a 4-byte payload-wide scale, absmax-scaled int8 values — the
	// most aggressive quantized wire (8x smaller values than lossless).
	WirePairsI8
)

// String implements fmt.Stringer; the names are what ParseWire accepts.
func (w Wire) String() string {
	switch w {
	case WireLossless:
		return "lossless"
	case WirePairs:
		return "pairs"
	case WireBitmap:
		return "bitmap"
	case WireDense:
		return "dense"
	case WireDeltaVarint:
		return "delta-varint"
	case WirePairsF16:
		return "pairs-f16"
	case WirePairsBF16:
		return "pairs-bf16"
	case WirePairsI8:
		return "pairs-i8"
	default:
		return fmt.Sprintf("wire(%d)", int(w))
	}
}

// ParseWire resolves a wire format name (the String values) — the
// -format flag of cmd/sidco-node.
//
//sidco:errclass flag validation, deliberately fatal
func ParseWire(name string) (Wire, error) {
	for w := WireLossless; w <= WirePairsI8; w++ {
		if w.String() == name {
			return w, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown wire format %q (want lossless, pairs, bitmap, dense, delta-varint, pairs-f16, pairs-bf16 or pairs-i8)", name)
}

// Format maps the wire selector onto its encoding format.
//
//sidco:errclass config validation, deliberately fatal
func (w Wire) Format() (encoding.Format, error) {
	switch w {
	case WireLossless:
		return encoding.FormatPairs64, nil
	case WirePairs:
		return encoding.FormatPairs, nil
	case WireBitmap:
		return encoding.FormatBitmap, nil
	case WireDense:
		return encoding.FormatDense, nil
	case WireDeltaVarint:
		return encoding.FormatDeltaVarint, nil
	case WirePairsF16:
		return encoding.FormatPairsF16, nil
	case WirePairsBF16:
		return encoding.FormatPairsBF16, nil
	case WirePairsI8:
		return encoding.FormatPairsI8, nil
	default:
		return 0, fmt.Errorf("cluster: unknown wire format %d", int(w))
	}
}

// validateChunks checks the chunked-mode configuration against the
// selected collective, shared by Engine and Node construction. Auto is
// accepted: it resolves to the all-gather on every sparse exchange, and
// the per-exchange resolution re-validates if a dense round slips in.
//
//sidco:errclass config validation, deliberately fatal
func validateChunks(chunks int, c netsim.Collective) error {
	if chunks < 0 {
		return fmt.Errorf("cluster: Chunks = %d, need >= 0", chunks)
	}
	if chunks > 1 && c != netsim.CollectiveAllGather && c != netsim.CollectiveAuto {
		// Ring all-reduce is already d/N-chunked by construction and the
		// parameter server has no ring to pipeline against; the chunked
		// mode is defined for the sparse all-gather only.
		return fmt.Errorf("cluster: Chunks = %d requires the all-gather collective, got %v", chunks, c)
	}
	return nil
}

// resolveCollective resolves Auto against the round's inputs (sparse:
// all-gather, dense: ring) and re-validates the chunked mode against the
// outcome. Resolution happens once per round, never per node — per-node
// resolution could diverge on a mixed dense/sparse input set and
// deadlock the schedule.
//
//sidco:errclass config validation, deliberately fatal
func resolveCollective(c netsim.Collective, sparse bool, chunks int) (netsim.Collective, error) {
	if c == netsim.CollectiveAuto {
		if sparse {
			c = netsim.CollectiveAllGather
		} else {
			c = netsim.CollectiveRing
		}
	}
	if chunks > 1 && c != netsim.CollectiveAllGather {
		return 0, fmt.Errorf("cluster: Chunks = %d, but this exchange resolved to %v (dense inputs under Auto take the ring)", chunks, c)
	}
	return c, nil
}

// job is one node's share of a gradient exchange.
type job struct {
	step   int
	sparse *tensor.Sparse // nil on the dense path
	dense  []float64
	dim    int
	coll   netsim.Collective // resolved collective, never Auto
	// members is the participating worker node-id list (ascending) of an
	// elastic deployment; nil means full membership 0..workers-1.
	members []int
	// deadline, when non-zero, bounds every blocking receive of the
	// schedule run; a receive past it fails with ErrTimeout.
	deadline time.Time
}

// result is what a node reports back after running its schedule.
type result struct {
	node int
	err  error
}

// Engine runs one goroutine per cluster node; each Exchange call hands
// every node its worker's gradient, the nodes execute the configured
// collective as real message passing, and the aggregated mean lands in
// the caller's buffer. Engine satisfies dist.GradientExchange, so it
// plugs directly into dist.TrainerConfig.Exchange.
//
// Engine is the single-process deployment: all N nodes live in one
// process and share one Transport (in-process channels by default, or a
// TCPTransport hosting every node for loopback-socket runs). Node is the
// one-node-per-process counterpart behind cmd/sidco-node.
type Engine struct {
	cfg     Config
	sched   sched
	jobs    []chan job
	results chan result
	outs    [][]float64 // per-node aggregation buffers
	scratch []nodeScratch
	ident   []int32 // shared 0..dim-1 ramp, aliased into every scratch
	wg      sync.WaitGroup
	closed  bool
}

// New validates cfg, builds the transport and starts the node
// goroutines. Callers must Close the engine to stop them.
//
//sidco:errclass construction-time config validation, deliberately fatal
func New(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: Workers = %d, need >= 1", cfg.Workers)
	}
	switch cfg.Collective {
	case netsim.CollectiveAuto, netsim.CollectiveRing, netsim.CollectiveAllGather, netsim.CollectivePS:
	default:
		return nil, fmt.Errorf("cluster: unknown collective %v", cfg.Collective)
	}
	format, err := cfg.Format.Format()
	if err != nil {
		return nil, err
	}
	if err := validateChunks(cfg.Chunks, cfg.Collective); err != nil {
		return nil, err
	}
	if cfg.CompressSec < 0 {
		return nil, fmt.Errorf("cluster: CompressSec = %v, need >= 0", cfg.CompressSec)
	}
	if cfg.StepTimeout < 0 {
		return nil, fmt.Errorf("cluster: StepTimeout = %v, need >= 0", cfg.StepTimeout)
	}
	nodes := NodeCount(cfg.Workers, cfg.Collective)
	inner := cfg.Transport
	if inner == nil {
		var err error
		inner, err = NewChanTransport(nodes)
		if err != nil {
			return nil, err
		}
	}
	if inner.Nodes() < nodes {
		return nil, fmt.Errorf("cluster: transport has %d nodes, need %d", inner.Nodes(), nodes)
	}
	server := -1
	if cfg.Collective == netsim.CollectivePS {
		server = cfg.Workers
	}
	e := &Engine{
		cfg: cfg,
		sched: sched{
			workers:     cfg.Workers,
			full:        identityMembers(cfg.Workers),
			server:      server,
			format:      format,
			chunks:      cfg.Chunks,
			parallel:    cfg.Parallelism,
			computeSec:  cfg.ComputeSec,
			compressSec: cfg.CompressSec,
			tp:          NewInstrumented(inner, cfg.Scenario).WithTelemetry(cfg.Telemetry),
			tel:         cfg.Telemetry,
		},
		jobs:    make([]chan job, cfg.Workers),
		results: make(chan result, nodes),
		outs:    make([][]float64, cfg.Workers),
		scratch: make([]nodeScratch, cfg.Workers),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.jobs[w] = make(chan job)
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	if server >= 0 {
		e.wg.Add(1)
		go e.serverLoop()
	}
	return e, nil
}

// Transport exposes the instrumented transport for traffic and
// virtual-time inspection.
func (e *Engine) Transport() *Instrumented { return e.sched.tp }

// Close stops the node goroutines and closes the transport. The Engine
// is not concurrency-safe: Exchange and Close must come from one
// goroutine (the Trainer's step loop).
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	err := e.sched.tp.Close()
	for _, ch := range e.jobs {
		close(ch)
	}
	e.wg.Wait()
	return err
}

// Exchange implements dist.GradientExchange: it fans the workers'
// contributions out to the node goroutines, runs the collective, and
// copies the agreed mean into agg.
func (e *Engine) Exchange(step int, ins []dist.ExchangeInput, agg []float64) error {
	if e.closed {
		return fmt.Errorf("cluster: exchange on closed engine: %w", ErrClosed)
	}
	if len(ins) != e.cfg.Workers {
		return fmt.Errorf("cluster: %d inputs for %d workers", len(ins), e.cfg.Workers) //sidco:errclass caller misuse, deliberately fatal
	}
	coll, err := resolveCollective(e.cfg.Collective, ins[0].Sparse != nil, e.cfg.Chunks)
	if err != nil {
		return err
	}
	// Dense-as-sparse views all read the same identity index ramp: grown
	// here, before fan-out, and aliased into every node's scratch, so the
	// node goroutines never mutate it (localSparse's grow loop is a no-op
	// once the shared ramp covers the dimension) and the engine pays for
	// one ramp instead of one per worker.
	if coll != netsim.CollectiveRing {
		for _, in := range ins {
			if in.Sparse == nil {
				for i := len(e.ident); i < len(agg); i++ {
					e.ident = append(e.ident, int32(i))
				}
				for w := range e.scratch {
					e.scratch[w].ident = e.ident
				}
				break
			}
		}
	}
	// Tag the round's telemetry message events with the step before any
	// node goroutine can send: Exchange is a synchronous barrier, so no
	// message from another step can be in flight here.
	e.sched.tp.SetStep(int64(step))
	var deadline time.Time
	if e.cfg.StepTimeout > 0 {
		deadline = time.Now().Add(e.cfg.StepTimeout) //sidco:nondet fault-detection deadline, never feeds gradient math
	}
	for w, in := range ins {
		e.jobs[w] <- job{step: step, sparse: in.Sparse, dense: in.Dense, dim: len(agg), coll: coll, deadline: deadline}
	}
	want := e.cfg.Workers
	if e.sched.server >= 0 {
		want++ // the server also reports
	}
	var firstErr error
	for i := 0; i < want; i++ {
		r := <-e.results
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: node %d: %w", r.node, r.err)
			// Peers may be blocked mid-schedule waiting on the failed
			// node; closing the transport unblocks them so the round
			// drains instead of deadlocking.
			e.sched.tp.Close()
		}
	}
	if firstErr == nil && e.cfg.Verify {
		for w := 1; w < e.cfg.Workers; w++ {
			for i := range e.outs[0] {
				if e.outs[w][i] != e.outs[0][i] {
					firstErr = fmt.Errorf("cluster: node %d disagrees with node 0 at element %d: %v vs %v",
						w, i, e.outs[w][i], e.outs[0][i])
					break
				}
			}
		}
	}
	if firstErr != nil {
		// Fail-stop: a broken round leaves stray messages in the
		// transport, so the engine cannot safely run another schedule.
		e.Close()
		return firstErr
	}
	copy(agg, e.outs[0])
	return nil
}

// workerLoop is the goroutine body of worker node w.
func (e *Engine) workerLoop(w int) {
	defer e.wg.Done()
	for jb := range e.jobs[w] {
		if len(e.outs[w]) != jb.dim {
			e.outs[w] = make([]float64, jb.dim)
		}
		e.results <- result{node: w, err: e.sched.runWorker(w, jb, &e.scratch[w], e.outs[w])}
	}
}

// serverLoop is the goroutine body of the parameter-server node: one
// round per exchange. The server learns each round's start from the
// first arriving push, so it needs no job channel.
func (e *Engine) serverLoop() {
	defer e.wg.Done()
	var srv psServer
	for round := int64(0); ; round++ {
		span := e.sched.tel.Begin(telemetry.SpanCollective, e.sched.server, -1, -1, round)
		// The server receives without a deadline: it idles here between
		// exchanges, so a round-start deadline would misfire. A worker
		// timing out under StepTimeout closes the transport, which
		// unblocks this receive with ErrClosed.
		err := srv.round(e.sched.tp, e.sched.tp.Recv, e.sched.server, e.sched.full, e.sched.format)
		span.End()
		if err != nil {
			// A server failure is fatal to the cluster: close the
			// transport so workers blocked on their pull unblock with an
			// error instead of hanging, then report and exit. (On a
			// normal engine Close the transport is already closed and
			// this is a no-op.)
			e.sched.tp.Close()
			e.results <- result{node: e.sched.server, err: err}
			return
		}
		e.results <- result{node: e.sched.server}
	}
}
