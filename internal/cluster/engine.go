package cluster

import (
	"fmt"
	"sync"

	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/tensor"
)

// Config assembles a cluster Engine.
type Config struct {
	// Workers is the number of training nodes N (>= 1).
	Workers int
	// Collective selects the exchange schedule. CollectiveAuto mirrors
	// netsim: all-gather when a contribution is sparse, ring all-reduce
	// when dense.
	Collective netsim.Collective
	// Format is the wire format for encoded gradient payloads. The zero
	// value WireLossless (encoding.FormatPairs64) makes all-gather and
	// parameter-server exchanges reproduce the in-process reducer
	// bit-for-bit; the float32 wires model what production fabrics
	// actually ship.
	Format Wire
	// Transport overrides the default in-process channel transport. It
	// must span NodeCount(Workers, Collective) nodes.
	Transport Transport
	// Scenario enables the virtual-time model on the instrumented
	// transport (nil: traffic counting only).
	Scenario *Scenario
	// ComputeSec charges this much local work to every worker's clock at
	// the start of each exchange (scaled per node by the scenario's
	// straggler factors).
	ComputeSec float64
	// Chunks enables the chunked execution mode on the all-gather
	// collective: each exchange splits the index space into this many
	// near-equal ranges, ships every worker's selection as one encoded
	// payload per chunk, and pipelines chunk i+1's compression while
	// chunk i's collective is in flight. The per-chunk element budget is
	// whatever the monolithic selection placed in each range — the global
	// k-budget partitioned, never a per-chunk re-quota — so chunked
	// aggregates are bit-identical to monolithic ones for any compressor.
	// 0 or 1 keeps the monolithic schedule.
	Chunks int
	// CompressSec charges this much compression time per exchange to
	// every worker's clock, split evenly across chunks. Unlike
	// ComputeSec, which is charged up front, the per-chunk slices are
	// charged inside the pipeline overlap slot, so under Chunks > 1 they
	// hide behind in-flight communication (scaled per node by the
	// scenario's straggler factors).
	CompressSec float64
	// Verify makes every exchange cross-check that all nodes computed
	// identical aggregates (a distributed-consistency assertion for
	// tests; it costs O(N*d) comparisons per step).
	Verify bool
}

// NodeCount returns the transport size a configuration needs: the
// parameter-server collective adds one server node after the workers.
func NodeCount(workers int, c netsim.Collective) int {
	if c == netsim.CollectivePS {
		return workers + 1
	}
	return workers
}

// Wire selects the payload wire format. Its zero value is the lossless
// default, so Config{} trains bit-identically to the in-process path.
type Wire int

const (
	// WireLossless ships encoding.FormatPairs64: 12 bytes per element,
	// float64 values bit-for-bit.
	WireLossless Wire = iota
	// WirePairs ships encoding.FormatPairs: 8 bytes per element, float32.
	WirePairs
	// WireBitmap ships encoding.FormatBitmap.
	WireBitmap
	// WireDense ships encoding.FormatDense.
	WireDense
	// WireDeltaVarint ships encoding.FormatDeltaVarint.
	WireDeltaVarint
)

// Format maps the wire selector onto its encoding format.
func (w Wire) Format() (encoding.Format, error) {
	switch w {
	case WireLossless:
		return encoding.FormatPairs64, nil
	case WirePairs:
		return encoding.FormatPairs, nil
	case WireBitmap:
		return encoding.FormatBitmap, nil
	case WireDense:
		return encoding.FormatDense, nil
	case WireDeltaVarint:
		return encoding.FormatDeltaVarint, nil
	default:
		return 0, fmt.Errorf("cluster: unknown wire format %d", int(w))
	}
}

// job is one node's share of a gradient exchange.
type job struct {
	step   int
	sparse *tensor.Sparse // nil on the dense path
	dense  []float64
	dim    int
	coll   netsim.Collective // resolved collective, never Auto
}

// result is what a node reports back after running its schedule.
type result struct {
	node int
	err  error
}

// Engine runs one goroutine per cluster node; each Exchange call hands
// every node its worker's gradient, the nodes execute the configured
// collective as real message passing, and the aggregated mean lands in
// the caller's buffer. Engine satisfies dist.GradientExchange, so it
// plugs directly into dist.TrainerConfig.Exchange.
type Engine struct {
	cfg     Config
	format  encoding.Format // resolved from cfg.Format
	tp      *Instrumented
	server  int // server node id under PS, else -1
	jobs    []chan job
	results chan result
	outs    [][]float64 // per-node aggregation buffers
	scratch []nodeScratch
	ident   []int32 // shared 0..dim-1 index ramp for dense-as-sparse views
	wg      sync.WaitGroup
	closed  bool
}

// nodeScratch is one node goroutine's reusable pipeline storage: encode
// buffers (one per chunk — a chunk's buffer stays pinned while it
// circulates the ring, so chunks cannot share), the all-gather result
// slots, the decode target and the zero-copy view headers.
type nodeScratch struct {
	enc    [][]byte
	gather [][]byte
	ready  []float64 // per-chunk compression completion (virtual time)
	dec    tensor.Sparse
	view   tensor.Sparse // chunk subrange of the local selection
	full   tensor.Sparse // full-support view of a dense gradient
}

// New validates cfg, builds the transport and starts the node
// goroutines. Callers must Close the engine to stop them.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: Workers = %d, need >= 1", cfg.Workers)
	}
	switch cfg.Collective {
	case netsim.CollectiveAuto, netsim.CollectiveRing, netsim.CollectiveAllGather, netsim.CollectivePS:
	default:
		return nil, fmt.Errorf("cluster: unknown collective %v", cfg.Collective)
	}
	format, err := cfg.Format.Format()
	if err != nil {
		return nil, err
	}
	if cfg.Chunks < 0 {
		return nil, fmt.Errorf("cluster: Chunks = %d, need >= 0", cfg.Chunks)
	}
	if cfg.Chunks > 1 && cfg.Collective != netsim.CollectiveAllGather {
		// Ring all-reduce is already d/N-chunked by construction and the
		// parameter server has no ring to pipeline against; the chunked
		// mode is defined for the sparse all-gather only.
		return nil, fmt.Errorf("cluster: Chunks = %d requires the all-gather collective, got %v", cfg.Chunks, cfg.Collective)
	}
	if cfg.CompressSec < 0 {
		return nil, fmt.Errorf("cluster: CompressSec = %v, need >= 0", cfg.CompressSec)
	}
	nodes := NodeCount(cfg.Workers, cfg.Collective)
	inner := cfg.Transport
	if inner == nil {
		var err error
		inner, err = NewChanTransport(nodes)
		if err != nil {
			return nil, err
		}
	}
	if inner.Nodes() < nodes {
		return nil, fmt.Errorf("cluster: transport has %d nodes, need %d", inner.Nodes(), nodes)
	}
	e := &Engine{
		cfg:     cfg,
		format:  format,
		tp:      NewInstrumented(inner, cfg.Scenario),
		server:  -1,
		jobs:    make([]chan job, cfg.Workers),
		results: make(chan result, nodes),
		outs:    make([][]float64, cfg.Workers),
		scratch: make([]nodeScratch, cfg.Workers),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.jobs[w] = make(chan job)
		e.wg.Add(1)
		go e.workerLoop(w)
	}
	if cfg.Collective == netsim.CollectivePS {
		e.server = cfg.Workers
		e.wg.Add(1)
		go e.serverLoop()
	}
	return e, nil
}

// Transport exposes the instrumented transport for traffic and
// virtual-time inspection.
func (e *Engine) Transport() *Instrumented { return e.tp }

// Close stops the node goroutines and closes the transport. The Engine
// is not concurrency-safe: Exchange and Close must come from one
// goroutine (the Trainer's step loop).
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	err := e.tp.Close()
	for _, ch := range e.jobs {
		close(ch)
	}
	e.wg.Wait()
	return err
}

// Exchange implements dist.GradientExchange: it fans the workers'
// contributions out to the node goroutines, runs the collective, and
// copies the agreed mean into agg.
func (e *Engine) Exchange(step int, ins []dist.ExchangeInput, agg []float64) error {
	if e.closed {
		return fmt.Errorf("cluster: exchange on closed engine")
	}
	if len(ins) != e.cfg.Workers {
		return fmt.Errorf("cluster: %d inputs for %d workers", len(ins), e.cfg.Workers)
	}
	// Resolve Auto once for the whole round — per-node resolution could
	// diverge on a mixed dense/sparse input set and deadlock the
	// schedule.
	coll := e.cfg.Collective
	if coll == netsim.CollectiveAuto {
		if ins[0].Sparse != nil {
			coll = netsim.CollectiveAllGather
		} else {
			coll = netsim.CollectiveRing
		}
	}
	// The shared identity index ramp backs zero-copy dense-as-sparse
	// views; it is grown here, before fan-out, so node goroutines only
	// ever read it.
	if coll != netsim.CollectiveRing {
		for _, in := range ins {
			if in.Sparse == nil {
				e.growIdent(len(agg))
				break
			}
		}
	}
	for w, in := range ins {
		e.jobs[w] <- job{step: step, sparse: in.Sparse, dense: in.Dense, dim: len(agg), coll: coll}
	}
	want := e.cfg.Workers
	if e.server >= 0 {
		want++ // the server also reports
	}
	var firstErr error
	for i := 0; i < want; i++ {
		r := <-e.results
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: node %d: %w", r.node, r.err)
			// Peers may be blocked mid-schedule waiting on the failed
			// node; closing the transport unblocks them so the round
			// drains instead of deadlocking.
			e.tp.Close()
		}
	}
	if firstErr == nil && e.cfg.Verify {
		for w := 1; w < e.cfg.Workers; w++ {
			for i := range e.outs[0] {
				if e.outs[w][i] != e.outs[0][i] {
					firstErr = fmt.Errorf("cluster: node %d disagrees with node 0 at element %d: %v vs %v",
						w, i, e.outs[w][i], e.outs[0][i])
					break
				}
			}
		}
	}
	if firstErr != nil {
		// Fail-stop: a broken round leaves stray messages in the
		// transport, so the engine cannot safely run another schedule.
		e.Close()
		return firstErr
	}
	copy(agg, e.outs[0])
	return nil
}

// workerLoop is the goroutine body of worker node w.
func (e *Engine) workerLoop(w int) {
	defer e.wg.Done()
	for jb := range e.jobs[w] {
		e.results <- result{node: w, err: e.runWorker(w, jb)}
	}
}

func (e *Engine) runWorker(w int, jb job) error {
	if len(e.outs[w]) != jb.dim {
		e.outs[w] = make([]float64, jb.dim)
	}
	out := e.outs[w]
	if e.cfg.ComputeSec > 0 {
		e.tp.Compute(w, e.cfg.ComputeSec)
	}
	n := e.cfg.Workers
	switch jb.coll {
	case netsim.CollectiveRing:
		// Dense in-ring reduction: start from the local dense gradient
		// (densifying the sparse selection if the caller forced ring).
		if jb.sparse != nil {
			tensor.Zero(out)
			jb.sparse.AddTo(out)
		} else {
			if len(jb.dense) != jb.dim {
				return fmt.Errorf("dense gradient has %d elements, want %d", len(jb.dense), jb.dim)
			}
			copy(out, jb.dense)
		}
		if err := RingAllReduce(e.tp, w, n, out); err != nil {
			return err
		}
		tensor.Scale(1/float64(n), out)
		return nil

	case netsim.CollectiveAllGather:
		return e.runAllGather(w, jb, out)

	case netsim.CollectivePS:
		sc := &e.scratch[w]
		s, err := e.localSparse(jb, sc)
		if err != nil {
			return err
		}
		sc.enc = growSlots(sc.enc, 1)
		sc.enc[0], err = encoding.EncodeTo(sc.enc[0][:0], s, e.format)
		if err != nil {
			return err
		}
		reply, err := PSPushPull(e.tp, w, e.server, sc.enc[0])
		if err != nil {
			return err
		}
		if err := encoding.DecodeInto(&sc.dec, reply); err != nil {
			return fmt.Errorf("decoding server reply: %w", err)
		}
		if sc.dec.Dim != jb.dim {
			return fmt.Errorf("server reply has dim %d, want %d", sc.dec.Dim, jb.dim)
		}
		tensor.Zero(out)
		sc.dec.AddTo(out)
		return nil
	}
	return fmt.Errorf("unreachable collective")
}

// chunkCount resolves the configured chunking (0 or 1: monolithic).
func (e *Engine) chunkCount() int {
	if e.cfg.Chunks > 1 {
		return e.cfg.Chunks
	}
	return 1
}

// runAllGather executes the (optionally chunked) sparse all-gather for
// one node. The local selection is partitioned by index range into C
// chunks — each chunk's element budget is exactly what the monolithic
// selection placed in that range, so the global k-budget is preserved
// without any per-chunk floor — and every chunk runs one all-gather of
// encoded payloads. Compression time (CompressSec/C per chunk) and the
// encode of chunk i+1 happen inside chunk i's pipeline overlap slot.
//
// Aggregation stays bit-identical to the monolithic schedule: chunks
// partition the index space, and within each chunk contributions are
// decoded and added in worker-index order — for every element the same
// addition sequence as dist.InProcess over a lossless wire.
func (e *Engine) runAllGather(w int, jb job, out []float64) error {
	n := e.cfg.Workers
	C := e.chunkCount()
	sc := &e.scratch[w]
	s, err := e.localSparse(jb, sc)
	if err != nil {
		return err
	}
	perChunkCompress := 0.0
	if e.cfg.CompressSec > 0 {
		perChunkCompress = e.cfg.CompressSec / float64(C)
	}
	sc.enc = growSlots(sc.enc, C)
	if cap(sc.ready) < C {
		sc.ready = make([]float64, C)
	}
	sc.ready = sc.ready[:C]

	// encodeUpTo materialises chunk payloads in ascending order, charging
	// each chunk's compression slice to the node's compressor lane (which
	// runs concurrently with the NICs) and recording when each chunk
	// becomes sendable. It is called from the overlap hook (the pipelined
	// slot) and is idempotent from the loop head, which keeps single-node
	// rings — no transport step, so no hook — correct.
	encoded, pos := 0, 0
	encodeUpTo := func(c int) error {
		for ; encoded <= c; encoded++ {
			sc.ready[encoded] = 0
			if perChunkCompress > 0 {
				sc.ready[encoded] = e.tp.ComputeOverlap(w, perChunkCompress)
			}
			_, hi := chunkBounds(jb.dim, C, encoded)
			end := pos
			for end < len(s.Idx) && int(s.Idx[end]) < hi {
				end++
			}
			sc.view = tensor.Sparse{Dim: jb.dim, Idx: s.Idx[pos:end], Vals: s.Vals[pos:end]}
			pos = end
			var err error
			sc.enc[encoded], err = encoding.EncodeTo(sc.enc[encoded][:0], &sc.view, e.format)
			if err != nil {
				return err
			}
		}
		return nil
	}

	tensor.Zero(out)
	for c := 0; c < C; c++ {
		if err := encodeUpTo(c); err != nil {
			return err
		}
		// The chunk's own payload cannot leave before its compression
		// finishes; everything the node merely forwards is not gated.
		e.tp.WaitFor(w, sc.ready[c])
		overlap := func() error {
			if c+1 < C {
				return encodeUpTo(c + 1)
			}
			return nil
		}
		sc.gather, err = AllGatherInto(e.tp, w, n, sc.enc[c], sc.gather, overlap)
		if err != nil {
			return err
		}
		// Decode and reduce in worker-index order: with a lossless format
		// this is the exact operation sequence of dist.InProcess.
		for origin := 0; origin < n; origin++ {
			if err := encoding.DecodeInto(&sc.dec, sc.gather[origin]); err != nil {
				return fmt.Errorf("decoding origin %d chunk %d: %w", origin, c, err)
			}
			if sc.dec.Dim != jb.dim {
				return fmt.Errorf("origin %d has dim %d, want %d", origin, sc.dec.Dim, jb.dim)
			}
			sc.dec.AddTo(out)
		}
	}
	tensor.Scale(1/float64(n), out)
	return nil
}

// localSparse resolves a worker's contribution to a sparse vector
// without copying: compressed gradients are used as-is, dense gradients
// get a full-support view over the shared index ramp, so even the
// no-compression baseline moves real encoded bytes.
func (e *Engine) localSparse(jb job, sc *nodeScratch) (*tensor.Sparse, error) {
	if jb.sparse != nil {
		return jb.sparse, nil
	}
	if len(jb.dense) != jb.dim {
		return nil, fmt.Errorf("dense gradient has %d elements, want %d", len(jb.dense), jb.dim)
	}
	sc.full = tensor.Sparse{Dim: jb.dim, Idx: e.ident[:jb.dim], Vals: jb.dense}
	return &sc.full, nil
}

// growIdent extends the shared identity index ramp to at least dim
// entries. Only Exchange (a single goroutine) may call it; node
// goroutines treat the ramp as read-only.
func (e *Engine) growIdent(dim int) {
	for i := len(e.ident); i < dim; i++ {
		e.ident = append(e.ident, int32(i))
	}
}

// growSlots ensures bufs has at least n reusable byte-buffer slots.
func growSlots(bufs [][]byte, n int) [][]byte {
	for len(bufs) < n {
		bufs = append(bufs, nil)
	}
	return bufs
}

// serverLoop is the goroutine body of the parameter-server node: one
// PSServe round per exchange. The server learns each round's start from
// the first arriving push, so it needs no job channel.
func (e *Engine) serverLoop() {
	defer e.wg.Done()
	n := e.cfg.Workers
	var acc []float64
	var dim int
	var dec, agg tensor.Sparse
	var wire []byte
	for {
		combine := func(worker int, payload []byte) error {
			if err := encoding.DecodeInto(&dec, payload); err != nil {
				return err
			}
			if worker == 0 {
				dim = dec.Dim
				if len(acc) != dim {
					acc = make([]float64, dim)
				}
				tensor.Zero(acc)
			} else if dec.Dim != dim {
				return fmt.Errorf("worker %d pushed dim %d, want %d", worker, dec.Dim, dim)
			}
			// Worker-index arrival order (PSServe receives 0..n-1) keeps
			// the sum bit-identical to the in-process reducer.
			dec.AddTo(acc)
			return nil
		}
		reply := func() ([]byte, error) {
			tensor.Scale(1/float64(n), acc)
			sparsifyInto(&agg, dim, acc)
			var err error
			// The reply buffer is broadcast to every worker and read
			// within the round, so recycling it across rounds is safe:
			// Exchange's result barrier ends the round before reuse.
			wire, err = encoding.EncodeTo(wire[:0], &agg, e.format)
			if err != nil {
				return nil, err
			}
			return wire, nil
		}
		if err := PSServe(e.tp, e.server, n, combine, reply); err != nil {
			// A server failure is fatal to the cluster: close the
			// transport so workers blocked on their pull unblock with an
			// error instead of hanging, then report and exit. (On a
			// normal engine Close the transport is already closed and
			// this is a no-op.)
			e.tp.Close()
			e.results <- result{node: e.server, err: err}
			return
		}
		e.results <- result{node: e.server}
	}
}

// sparsifyInto extracts the non-zero support of a dense vector into
// reused sparse storage. Exact zeros drop out of the encoding; decoding
// restores them as zeros, so the round-trip is value-preserving.
func sparsifyInto(dst *tensor.Sparse, dim int, dense []float64) {
	dst.Reset(dim)
	for i, v := range dense {
		if v != 0 {
			dst.Append(int32(i), v)
		}
	}
}
