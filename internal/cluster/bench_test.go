package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/netsim"
)

// benchInputs builds one reusable exchange input set.
func benchInputs(b *testing.B, workers, dim int, delta float64) []dist.ExchangeInput {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	ins := make([]dist.ExchangeInput, workers)
	for w := range ins {
		dense := make([]float64, dim)
		for i := range dense {
			dense[i] = rng.NormFloat64()
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense}
		if delta > 0 {
			s, err := compress.NewTopK().Compress(dense, delta)
			if err != nil {
				b.Fatal(err)
			}
			ins[w].Sparse = s
		}
	}
	return ins
}

// benchExchange times one collective exchange per iteration and reports
// measured traffic alongside netsim's alpha-beta prediction for the
// paper's 25 GbE fabric, so `-bench Exchange` doubles as the
// measured-vs-predicted cross-validation table.
func benchExchange(b *testing.B, workers, dim int, delta float64, coll netsim.Collective) {
	ins := benchInputs(b, workers, dim, delta)
	e, err := New(Config{Workers: workers, Collective: coll})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	agg := make([]float64, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Exchange(i, ins, agg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	msgs, bytes := e.Transport().Totals()
	perStepBytes := float64(bytes) / float64(b.N)
	net := netsim.Cluster25GbE(workers)
	predicted := net.CollectiveTime(coll, 8*dim, int(perStepBytes)/workers, delta > 0)
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/step")
	b.ReportMetric(perStepBytes, "bytes/step")
	b.ReportMetric(predicted*1e6, "pred-us/step")
}

func BenchmarkExchange(b *testing.B) {
	const dim = 1 << 16
	for _, bc := range []struct {
		name  string
		delta float64
		coll  netsim.Collective
	}{
		{"ring-dense", 0, netsim.CollectiveRing},
		{"allgather-sparse", 0.01, netsim.CollectiveAllGather},
		{"ps-sparse", 0.01, netsim.CollectivePS},
	} {
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s-n%d", bc.name, workers), func(b *testing.B) {
				benchExchange(b, workers, dim, bc.delta, bc.coll)
			})
		}
	}
}
