package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// randomInputs builds per-worker dense gradients plus top-k selections.
func randomInputs(t *testing.T, workers, dim int, delta float64, seed int64) []dist.ExchangeInput {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ins := make([]dist.ExchangeInput, workers)
	for w := range ins {
		dense := make([]float64, dim)
		for i := range dense {
			dense[i] = rng.NormFloat64()
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense}
		if delta > 0 {
			s, err := compress.NewTopK().Compress(dense, delta)
			if err != nil {
				t.Fatal(err)
			}
			ins[w].Sparse = s
		}
	}
	return ins
}

func engineExchange(t *testing.T, cfg Config, ins []dist.ExchangeInput, dim int) ([]float64, *Engine) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := make([]float64, dim)
	if err := e.Exchange(0, ins, agg); err != nil {
		e.Close()
		t.Fatal(err)
	}
	return agg, e
}

func TestEngineMatchesInProcessBitwise(t *testing.T) {
	const dim = 513 // odd: uneven ring chunks
	for _, workers := range []int{1, 2, 4, 7} {
		ins := randomInputs(t, workers, dim, 0.05, int64(workers))
		want := make([]float64, dim)
		if err := (dist.InProcess{}).Exchange(0, ins, want); err != nil {
			t.Fatal(err)
		}
		for _, coll := range []netsim.Collective{netsim.CollectiveAllGather, netsim.CollectivePS} {
			got, e := engineExchange(t, Config{Workers: workers, Collective: coll, Verify: true}, ins, dim)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d %v: element %d = %v, want %v (must be bit-identical)",
						workers, coll, i, got[i], want[i])
				}
			}
			e.Close()
		}
	}
}

func TestEngineRingDenseMatchesWithinReassociation(t *testing.T) {
	const dim = 257
	workers := 4
	ins := randomInputs(t, workers, dim, 0, 9)
	want := make([]float64, dim)
	if err := (dist.InProcess{}).Exchange(0, ins, want); err != nil {
		t.Fatal(err)
	}
	got, e := engineExchange(t, Config{Workers: workers, Collective: netsim.CollectiveRing, Verify: true}, ins, dim)
	defer e.Close()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("element %d = %v, want %v within reassociation tolerance", i, got[i], want[i])
		}
	}
}

func TestEngineAutoMirrorsNetsim(t *testing.T) {
	const dim = 128
	workers := 3
	// Sparse inputs under Auto take the all-gather schedule: N-1 messages
	// per node and no server.
	ins := randomInputs(t, workers, dim, 0.1, 3)
	_, e := engineExchange(t, Config{Workers: workers, Collective: netsim.CollectiveAuto}, ins, dim)
	msgs, _ := e.Transport().Totals()
	if want := workers * netsim.AllGatherMessages(workers); msgs != want {
		t.Errorf("auto sparse: %d messages, want %d", msgs, want)
	}
	e.Close()
	// Dense inputs take the ring schedule.
	for i := range ins {
		ins[i].Sparse = nil
	}
	_, e = engineExchange(t, Config{Workers: workers, Collective: netsim.CollectiveAuto}, ins, dim)
	msgs, _ = e.Transport().Totals()
	if want := workers * netsim.RingMessages(workers); msgs != want {
		t.Errorf("auto dense: %d messages, want %d", msgs, want)
	}
	e.Close()
}

func TestEngineBytesPerStepMatchEncodingAccounting(t *testing.T) {
	const dim = 400
	workers := 4
	ins := randomInputs(t, workers, dim, 0.05, 11)
	nnz := ins[0].Sparse.NNZ()
	for _, in := range ins {
		if in.Sparse.NNZ() != nnz {
			t.Fatalf("top-k nnz not uniform: %d vs %d", in.Sparse.NNZ(), nnz)
		}
	}

	t.Run("allgather-pairs64", func(t *testing.T) {
		_, e := engineExchange(t, Config{Workers: workers, Collective: netsim.CollectiveAllGather}, ins, dim)
		defer e.Close()
		_, bytes := e.Transport().Totals()
		// Each worker's encoded buffer traverses N-1 links.
		if want := (workers - 1) * workers * encoding.Pairs64Size(dim, nnz); bytes != want {
			t.Errorf("measured %d bytes, encoding accounting says %d", bytes, want)
		}
	})
	t.Run("allgather-pairs32", func(t *testing.T) {
		_, e := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveAllGather, Format: WirePairs,
		}, ins, dim)
		defer e.Close()
		_, bytes := e.Transport().Totals()
		if want := (workers - 1) * workers * encoding.PairsSize(dim, nnz); bytes != want {
			t.Errorf("measured %d bytes, encoding accounting says %d", bytes, want)
		}
	})
	t.Run("ps-pairs64", func(t *testing.T) {
		e, err := New(Config{Workers: workers, Collective: netsim.CollectivePS})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		agg := make([]float64, dim)
		if err := e.Exchange(0, ins, agg); err != nil {
			t.Fatal(err)
		}
		aggNNZ := 0
		for _, v := range agg {
			if v != 0 {
				aggNNZ++
			}
		}
		_, bytes := e.Transport().Totals()
		want := workers*encoding.Pairs64Size(dim, nnz) + workers*encoding.Pairs64Size(dim, aggNNZ)
		if bytes != want {
			t.Errorf("measured %d bytes, encoding accounting says %d", bytes, want)
		}
		msgs, _ := e.Transport().Totals()
		if msgs != netsim.PSMessages(workers) {
			t.Errorf("%d messages, want %d", msgs, netsim.PSMessages(workers))
		}
	})
	t.Run("reset-isolates-steps", func(t *testing.T) {
		e, err := New(Config{Workers: workers, Collective: netsim.CollectiveAllGather})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		agg := make([]float64, dim)
		perStep := (workers - 1) * workers * encoding.Pairs64Size(dim, nnz)
		for step := 0; step < 3; step++ {
			e.Transport().Reset()
			if err := e.Exchange(step, ins, agg); err != nil {
				t.Fatal(err)
			}
			if _, bytes := e.Transport().Totals(); bytes != perStep {
				t.Fatalf("step %d: %d bytes, want %d", step, bytes, perStep)
			}
		}
	})
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Error("0 workers should error")
	}
	if _, err := New(Config{Workers: 2, Collective: netsim.Collective(99)}); err == nil {
		t.Error("unknown collective should error")
	}
	small, _ := NewChanTransport(2)
	if _, err := New(Config{Workers: 2, Collective: netsim.CollectivePS, Transport: small}); err == nil {
		t.Error("PS needs workers+1 transport nodes")
	}
	e, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exchange(0, make([]dist.ExchangeInput, 3), make([]float64, 4)); err == nil {
		t.Error("wrong input count should error")
	}
	e.Close()
	if err := e.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	ins := randomInputs(t, 2, 4, 0, 1)
	if err := e.Exchange(0, ins, make([]float64, 4)); err == nil {
		t.Error("exchange on closed engine should error")
	}
}

func TestEngineFailStopOnBadInput(t *testing.T) {
	// A worker whose dense gradient disagrees with the aggregation
	// dimension must fail the round and leave the engine closed, not
	// deadlocked.
	e, err := New(Config{Workers: 3, Collective: netsim.CollectiveRing})
	if err != nil {
		t.Fatal(err)
	}
	ins := randomInputs(t, 3, 64, 0, 5)
	ins[1].Dense = ins[1].Dense[:10]
	if err := e.Exchange(0, ins, make([]float64, 64)); err == nil {
		t.Fatal("mismatched gradient accepted")
	}
	if err := e.Exchange(1, randomInputs(t, 3, 64, 0, 6), make([]float64, 64)); err == nil {
		t.Error("engine should be fail-stopped after a broken round")
	}
}

// tinyTrainerCfg builds the configuration of a small dense-net trainer,
// shared by the single-process bit-identity sweeps (workers trainers in
// one process, firstWorker 0) and the per-process node deployments of
// the TCP tests (Workers=1 trainers whose firstWorker is the rank) — one
// builder, so the two setups cannot drift apart.
func tinyTrainerCfg(workers, firstWorker int, comp string, delta float64, seed int64, ex dist.GradientExchange) dist.TrainerConfig {
	rng := rand.New(rand.NewSource(seed))
	model := nn.NewSequential(
		nn.NewDense("d1", 12, 10, rng),
		&nn.ReLU{},
		nn.NewDense("d2", 10, 4, rng),
	)
	var factory func() compress.Compressor
	if comp != "" {
		factory = func() compress.Compressor { return registryCompressor(comp, seed) }
	}
	return dist.TrainerConfig{
		Workers:     workers,
		FirstWorker: firstWorker,
		Model:       model,
		Loss:        &nn.SoftmaxCrossEntropy{},
		Opt:         &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			x := nn.NewTensor(8, 12)
			targets := make([]int, 8)
			for i := range targets {
				targets[i] = rng.Intn(4)
				for j := 0; j < 12; j++ {
					x.Data[i*12+j] = rng.NormFloat64() + float64(targets[i])
				}
			}
			return x, targets
		},
		NewCompressor: factory,
		Delta:         delta,
		EC:            comp != "",
		Seed:          seed,
		Exchange:      ex,
	}
}

// tinyTrainer builds a small dense-net trainer so the bit-identity sweep
// over every registry compressor stays fast.
func tinyTrainer(t *testing.T, workers int, comp string, delta float64, seed int64, ex dist.GradientExchange) *dist.Trainer {
	t.Helper()
	tr, err := dist.NewTrainer(tinyTrainerCfg(workers, 0, comp, delta, seed, ex))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTrainerOverChannelTransportBitIdentical is the tentpole acceptance
// check: training over the channel transport must yield bit-identical
// per-iteration losses (and final weights) to the in-process Trainer for
// a fixed seed, across every compressor in the registry, on both the
// all-gather and parameter-server collectives.
func TestTrainerOverChannelTransportBitIdentical(t *testing.T) {
	const workers, iters = 4, 5
	run := func(comp string, ex dist.GradientExchange) ([]float64, []float64) {
		tr := tinyTrainer(t, workers, comp, 0.1, 42, ex)
		losses, _, err := tr.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return losses, nn.FlattenWeights(tr.Params(), nil)
	}
	for _, comp := range registryNames {
		for _, coll := range []netsim.Collective{netsim.CollectiveAllGather, netsim.CollectivePS} {
			t.Run(fmt.Sprintf("%s-%v", comp, coll), func(t *testing.T) {
				e, err := New(Config{Workers: workers, Collective: coll, Verify: true})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				wantLoss, wantW := run(comp, nil)
				gotLoss, gotW := run(comp, e)
				for i := range wantLoss {
					if gotLoss[i] != wantLoss[i] {
						t.Fatalf("loss[%d] = %v, want %v (bit-identical)", i, gotLoss[i], wantLoss[i])
					}
				}
				for i := range wantW {
					if gotW[i] != wantW[i] {
						t.Fatalf("weight[%d] = %v, want %v (bit-identical)", i, gotW[i], wantW[i])
					}
				}
			})
		}
	}
}

// TestTrainerDenseRingConverges covers the dense cluster path: ring
// all-reduce reassociates float addition, so losses track the in-process
// run closely but not bitwise.
func TestTrainerDenseRingConverges(t *testing.T) {
	const workers, iters = 4, 8
	e, err := New(Config{Workers: workers, Collective: netsim.CollectiveRing, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ref := tinyTrainer(t, workers, "", 0, 7, nil)
	wantLoss, _, err := ref.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	tr := tinyTrainer(t, workers, "", 0, 7, e)
	gotLoss, _, err := tr.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantLoss {
		if math.Abs(gotLoss[i]-wantLoss[i]) > 1e-9 {
			t.Fatalf("loss[%d] = %v, want %v within ring tolerance", i, gotLoss[i], wantLoss[i])
		}
	}
}

func TestSparsifyKeepsExactSupport(t *testing.T) {
	dense := []float64{0, 1.5, 0, -2, 0, 1e-300}
	s := &tensor.Sparse{}
	sparsifyInto(s, len(dense), dense)
	if s.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", s.NNZ())
	}
	back := make([]float64, len(dense))
	s.AddTo(back)
	for i := range dense {
		if back[i] != dense[i] {
			t.Errorf("element %d = %v, want %v", i, back[i], dense[i])
		}
	}
	if _, err := tensor.NewSparse(3, []int32{0, 1, 2}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

// registryNames mirrors harness.CompressorNames; the cluster tests keep
// their own copy because harness now depends on this package (the chunk
// study), and a test-only import back into harness would be a cycle.
var registryNames = []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"}

// registryCompressor mirrors harness.NewCompressor for the names above.
func registryCompressor(name string, seed int64) compress.Compressor {
	switch name {
	case "topk":
		return compress.NewTopK()
	case "dgc":
		return compress.NewDGC(seed)
	case "redsync":
		return compress.NewRedSync()
	case "gaussiank":
		return compress.NewGaussianKSGD()
	case "sidco-e":
		return core.NewE()
	case "sidco-gp":
		return core.NewGammaGP()
	case "sidco-p":
		return core.NewGP()
	default:
		panic("unknown registry compressor " + name)
	}
}

// TestChunkedMatchesMonolithicProperty is the chunked-mode property
// test: over random gradients, the chunked all-gather aggregate must be
// bit-identical to the monolithic one for the deterministic compressors
// (topk) and for seeded DGC — the chunk split partitions the already-
// selected support, so no compressor randomness can diverge between the
// two schedules.
func TestChunkedMatchesMonolithicProperty(t *testing.T) {
	const workers = 4
	for trial := 0; trial < 8; trial++ {
		dim := 200 + 157*trial // non-power-of-two dims exercise uneven chunk bounds
		delta := []float64{0.01, 0.05, 0.2}[trial%3]
		for _, compName := range []string{"topk", "dgc"} {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			ins := make([]dist.ExchangeInput, workers)
			for w := range ins {
				dense := make([]float64, dim)
				for i := range dense {
					dense[i] = rng.NormFloat64()
				}
				// One compressor per worker, seeded per (trial, worker):
				// DGC consumes randomness, so both schedules must see the
				// same pre-computed selection.
				s, err := registryCompressor(compName, int64(trial*10+w)).Compress(dense, delta)
				if err != nil {
					t.Fatal(err)
				}
				ins[w] = dist.ExchangeInput{Worker: w, Dense: dense, Sparse: s}
			}
			mono, e1 := engineExchange(t, Config{Workers: workers, Collective: netsim.CollectiveAllGather}, ins, dim)
			e1.Close()
			for _, chunks := range []int{2, 3, 8, 64} {
				got, e := engineExchange(t, Config{
					Workers: workers, Collective: netsim.CollectiveAllGather, Chunks: chunks, Verify: true,
				}, ins, dim)
				e.Close()
				for i := range mono {
					if got[i] != mono[i] {
						t.Fatalf("%s trial %d chunks %d: element %d = %v, want %v (bit-identity broken)",
							compName, trial, chunks, i, got[i], mono[i])
					}
				}
			}
		}
	}
}

// TestChunkedTrafficMatchesAccounting pins the chunked traffic contract:
// C*(N-1) messages per node, and total bytes equal to the per-chunk
// encoded sizes of every worker's partitioned selection, each forwarded
// N-1 times. Empty chunks still ship a header-only payload.
func TestChunkedTrafficMatchesAccounting(t *testing.T) {
	const dim, workers, chunks = 400, 4, 8
	ins := randomInputs(t, workers, dim, 0.05, 17)
	_, e := engineExchange(t, Config{
		Workers: workers, Collective: netsim.CollectiveAllGather, Chunks: chunks,
	}, ins, dim)
	defer e.Close()
	msgs, bytes := e.Transport().Totals()
	if want := workers * netsim.ChunkedAllGatherMessages(workers, chunks); msgs != want {
		t.Errorf("%d messages, want %d", msgs, want)
	}
	wantBytes := 0
	for _, in := range ins {
		for _, n := range ChunkNNZ(in.Sparse.Idx, dim, chunks) {
			wantBytes += (workers - 1) * encoding.Pairs64Size(dim, n)
		}
	}
	if bytes != wantBytes {
		t.Errorf("%d bytes, want %d", bytes, wantBytes)
	}
}

// TestChunkedTrainerBitIdentical trains through a chunked engine and
// requires the loss trajectory bit-identical to the in-process reducer —
// the end-to-end form of the chunked safety net, including error
// feedback feeding selections back across iterations.
func TestChunkedTrainerBitIdentical(t *testing.T) {
	const workers, iters = 3, 4
	ref := tinyTrainer(t, workers, "sidco-e", 0.1, 11, nil)
	want, _, err := ref.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Workers: workers, Collective: netsim.CollectiveAllGather, Chunks: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tr := tinyTrainer(t, workers, "sidco-e", 0.1, 11, e)
	got, _, err := tr.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loss[%d] = %v, want %v (must be bit-identical)", i, got[i], want[i])
		}
	}
}

// TestChunkedOverlapHidesCompression pins the virtual-clock win the
// chunked mode exists for: with compression charged per exchange, the
// pipelined chunked schedule must finish strictly earlier than the
// monolithic one, both homogeneously and under a straggler.
func TestChunkedOverlapHidesCompression(t *testing.T) {
	const dim, workers = 1 << 14, 4
	ins := randomInputs(t, workers, dim, 0.05, 23)
	net := netsim.Network{Workers: workers, BandwidthBps: 1e9, LatencySec: 20e-6}
	measure := func(chunks int, straggler float64) float64 {
		scen := ScenarioFromNetwork(net)
		if straggler > 1 {
			scen.StragglerFactor = map[int]float64{workers - 1: straggler}
		}
		e, err := New(Config{
			Workers:     workers,
			Collective:  netsim.CollectiveAllGather,
			Scenario:    scen,
			Chunks:      chunks,
			CompressSec: 2e-3,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if err := e.Exchange(0, ins, make([]float64, dim)); err != nil {
			t.Fatal(err)
		}
		return e.Transport().Elapsed()
	}
	for _, straggler := range []float64{1, 8} {
		mono := measure(1, straggler)
		chunked := measure(4, straggler)
		if chunked >= mono {
			t.Errorf("straggler x%g: chunked %v not faster than monolithic %v", straggler, chunked, mono)
		}
	}
}

// TestChunkedConfigValidation covers the chunked-mode constraints.
func TestChunkedConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: 2, Chunks: -1, Collective: netsim.CollectiveAllGather}); err == nil {
		t.Error("negative chunks should error")
	}
	if _, err := New(Config{Workers: 2, Chunks: 4, Collective: netsim.CollectiveRing}); err == nil {
		t.Error("chunked ring should error")
	}
	if _, err := New(Config{Workers: 2, Chunks: 4, Collective: netsim.CollectivePS}); err == nil {
		t.Error("chunked PS should error")
	}
	if _, err := New(Config{Workers: 2, CompressSec: -1}); err == nil {
		t.Error("negative CompressSec should error")
	}
	// Chunks may exceed the element count: surplus chunks ship empty
	// payloads and the result is still exact.
	ins := randomInputs(t, 2, 16, 0.1, 3)
	want := make([]float64, 16)
	if err := (dist.InProcess{}).Exchange(0, ins, want); err != nil {
		t.Fatal(err)
	}
	got, e := engineExchange(t, Config{
		Workers: 2, Collective: netsim.CollectiveAllGather, Chunks: 32, Verify: true,
	}, ins, 16)
	defer e.Close()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunks > dim: element %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestChunkedAutoResolvesBeforeValidation is the regression for the
// construction-time rejection of Chunks > 1 under CollectiveAuto: Auto
// resolves to the all-gather on every sparse exchange, so the chunked
// mode must be validated against the resolved collective, not the
// selector. A dense round that resolves to the ring is rejected at
// exchange time instead — without fail-stopping the engine.
func TestChunkedAutoResolvesBeforeValidation(t *testing.T) {
	const dim, workers = 120, 3
	e, err := New(Config{Workers: workers, Collective: netsim.CollectiveAuto, Chunks: 4, Verify: true})
	if err != nil {
		t.Fatalf("Auto + Chunks > 1 rejected at construction: %v", err)
	}
	defer e.Close()
	ins := randomInputs(t, workers, dim, 0.1, 21)
	want := make([]float64, dim)
	if err := (dist.InProcess{}).Exchange(0, ins, want); err != nil {
		t.Fatal(err)
	}
	agg := make([]float64, dim)
	if err := e.Exchange(0, ins, agg); err != nil {
		t.Fatalf("sparse exchange under Auto + chunks: %v", err)
	}
	for i := range want {
		if agg[i] != want[i] {
			t.Fatalf("element %d = %v, want %v (chunked Auto must stay bit-identical)", i, agg[i], want[i])
		}
	}
	dense := make([]dist.ExchangeInput, workers)
	for i, in := range ins {
		dense[i] = dist.ExchangeInput{Worker: in.Worker, Dense: in.Dense}
	}
	if err := e.Exchange(1, dense, agg); err == nil {
		t.Fatal("dense round under Auto + chunks resolved to the ring and should error")
	}
	// The rejection happened before fan-out, so the engine is still live.
	if err := e.Exchange(2, ins, agg); err != nil {
		t.Fatalf("engine fail-stopped on a pre-flight validation error: %v", err)
	}
	// Training end-to-end through Auto + chunks (the configuration the
	// old validation made unreachable).
	ref := tinyTrainer(t, workers, "topk", 0.1, 31, nil)
	wantLoss, _, err := ref.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{Workers: workers, Collective: netsim.CollectiveAuto, Chunks: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tr := tinyTrainer(t, workers, "topk", 0.1, 31, e2)
	gotLoss, _, err := tr.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantLoss {
		if gotLoss[i] != wantLoss[i] {
			t.Fatalf("loss[%d] = %v, want %v (bit-identical)", i, gotLoss[i], wantLoss[i])
		}
	}
}

// TestChunkedTinyDimEdges is the regression for chunk counts colliding
// with tiny dimensions: at d=3, C=8 most chunk ranges are empty
// (c*d/C == (c+1)*d/C), and at d=0 all of them are. Neither may panic or
// short-count — empty chunks ship header-only payloads, the aggregate
// stays bit-identical to the in-process reducer, and the traffic still
// matches the chunked formulas.
func TestChunkedTinyDimEdges(t *testing.T) {
	t.Run("d3c8", func(t *testing.T) {
		const dim, workers, chunks = 3, 2, 8
		counts := ChunkNNZ([]int32{0, 1, 2}, dim, chunks)
		if len(counts) != chunks {
			t.Fatalf("ChunkNNZ returned %d chunks, want %d", len(counts), chunks)
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != dim {
			t.Fatalf("ChunkNNZ partition covers %d indices, want %d", total, dim)
		}
		ins := randomInputs(t, workers, dim, 1, 13) // full-support selections
		want := make([]float64, dim)
		if err := (dist.InProcess{}).Exchange(0, ins, want); err != nil {
			t.Fatal(err)
		}
		got, e := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveAllGather, Chunks: chunks, Verify: true,
		}, ins, dim)
		defer e.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
			}
		}
		msgs, bytes := e.Transport().Totals()
		if wantMsgs := workers * netsim.ChunkedAllGatherMessages(workers, chunks); msgs != wantMsgs {
			t.Errorf("%d messages, want %d (empty chunks still run their all-gather)", msgs, wantMsgs)
		}
		wantBytes := 0
		for _, in := range ins {
			for _, n := range ChunkNNZ(in.Sparse.Idx, dim, chunks) {
				wantBytes += (workers - 1) * encoding.Pairs64Size(dim, n)
			}
		}
		if bytes != wantBytes {
			t.Errorf("%d bytes, want %d (header-only payloads for empty chunks)", bytes, wantBytes)
		}
	})
	t.Run("d0", func(t *testing.T) {
		const workers, chunks = 2, 4
		for _, c := range ChunkNNZ(nil, 0, chunks) {
			if c != 0 {
				t.Fatal("ChunkNNZ at d=0 must be all zeros")
			}
		}
		ins := []dist.ExchangeInput{
			{Worker: 0, Dense: []float64{}, Sparse: &tensor.Sparse{Dim: 0}},
			{Worker: 1, Dense: []float64{}, Sparse: &tensor.Sparse{Dim: 0}},
		}
		got, e := engineExchange(t, Config{
			Workers: workers, Collective: netsim.CollectiveAllGather, Chunks: chunks, Verify: true,
		}, ins, 0)
		defer e.Close()
		if len(got) != 0 {
			t.Fatalf("aggregate has %d elements, want 0", len(got))
		}
	})
}

// TestChunkedSingleWorker covers the degenerate one-node ring, where the
// overlap hook never fires and chunks must still encode lazily.
func TestChunkedSingleWorker(t *testing.T) {
	ins := randomInputs(t, 1, 64, 0.2, 9)
	want := make([]float64, 64)
	if err := (dist.InProcess{}).Exchange(0, ins, want); err != nil {
		t.Fatal(err)
	}
	got, e := engineExchange(t, Config{
		Workers: 1, Collective: netsim.CollectiveAllGather, Chunks: 4,
	}, ins, 64)
	defer e.Close()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
}
