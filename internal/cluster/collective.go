package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The three collectives below are written from one node's perspective:
// every participating node calls the same function with its own id, and
// the per-node message schedules interlock into the collective. All of
// them preserve the package's traffic contract — ring all-reduce sends
// 2(N-1) messages per node, all-gather N-1 per node, parameter server
// 2N in total — matching internal/netsim's alpha-beta step formulas.

// chunkBounds splits d elements into n near-equal chunks (the standard
// balanced split: chunk c covers [c*d/n, (c+1)*d/n)).
func chunkBounds(d, n, c int) (lo, hi int) {
	return c * d / n, (c + 1) * d / n
}

// ChunkNNZ counts how many of the ascending selection indices fall into
// each balanced chunk range of [0, dim) — the partition the chunked
// execution mode ships. It is THE definition of the chunk split for
// external accounting: the harness study and traffic cross-checks use it
// so a change to the split here cannot silently diverge from them.
func ChunkNNZ(idx []int32, dim, chunks int) []int {
	if chunks < 1 {
		chunks = 1
	}
	counts := make([]int, chunks)
	pos := 0
	for c := 0; c < chunks; c++ {
		_, hi := chunkBounds(dim, chunks, c)
		start := pos
		for pos < len(idx) && int(idx[pos]) < hi {
			pos++
		}
		counts[c] = pos - start
	}
	return counts
}

// RingAllReduce runs the bandwidth-optimal ring all-reduce in place:
// N-1 reduce-scatter steps followed by N-1 all-gather steps, each node
// sending one ~d/N-element chunk to its ring successor. On return, data
// holds the elementwise sum over all nodes' inputs.
//
// The reduction for chunk c accumulates contributions in ring order
// starting at node c — a rotation of worker-index order — so results
// equal the in-process reducer's only up to floating-point
// reassociation. Training paths that need bit-identity use the
// all-gather or parameter-server collectives instead.
func RingAllReduce(tp Transport, node, n int, data []float64) error {
	if err := checkNode(tp, node, n); err != nil {
		return err
	}
	return ringAllReduceGroup(tp, tp.Recv, identityMembers(n), node, data)
}

// AllGather circulates each node's payload once around the ring in N-1
// forwarding steps and returns all payloads indexed by origin node (the
// caller's own payload is aliased at index node). This is the collective
// for sparse gradients, whose irregular supports cannot be reduced
// in-ring without densifying.
func AllGather(tp Transport, node, n int, own []byte) ([][]byte, error) {
	return AllGatherInto(tp, node, n, own, nil, nil)
}

// AllGatherInto is AllGather over reused result storage: bufs (which may
// be nil) is grown to n slots and returned. The message schedule is
// byte-for-byte identical to AllGather's.
//
// overlap, if non-nil, is invoked exactly once, after the node's own
// payload has been sent but before any blocking receive. That is the
// pipeline slot of the chunked execution mode: a node compresses and
// encodes its next chunk there, so on an instrumented transport the
// compression time charged inside the hook hides behind the current
// chunk's in-flight collective instead of extending the critical path.
// An overlap error aborts the schedule.
func AllGatherInto(tp Transport, node, n int, own []byte, bufs [][]byte, overlap func() error) ([][]byte, error) {
	if err := checkNode(tp, node, n); err != nil {
		return nil, err
	}
	return allGatherGroup(tp, tp.Recv, identityMembers(n), node, own, bufs, overlap)
}

// PSPushPull is the worker half of the parameter-server exchange: push
// the local payload to the server node, then block for the aggregated
// reply.
func PSPushPull(tp Transport, worker, server int, payload []byte) ([]byte, error) {
	if err := tp.Send(worker, server, payload); err != nil {
		return nil, err
	}
	return tp.Recv(worker, server)
}

// PSServe is the server half: receive one push from each of workers
// 0..n-1 in worker-index order (the order that keeps aggregation
// deterministic), hand each to combine, then broadcast reply's result to
// every worker. Message total across both halves is 2N.
func PSServe(tp Transport, server, n int, combine func(worker int, payload []byte) error, reply func() ([]byte, error)) error {
	return psServeGroup(tp, tp.Recv, server, identityMembers(n),
		func(_, worker int, payload []byte) error { return combine(worker, payload) }, reply)
}

// checkNode validates a schedule call's node arguments.
//
//sidco:errclass caller-misuse validation, deliberately fatal
func checkNode(tp Transport, node, n int) error {
	if n < 1 || n > tp.Nodes() {
		return fmt.Errorf("cluster: %d participants on a %d-node transport", n, tp.Nodes())
	}
	if node < 0 || node >= n {
		return fmt.Errorf("cluster: node %d outside %d participants", node, n)
	}
	return nil
}

// f64Bytes serialises a float64 slice little-endian. Chunks are raw
// (headerless): both ends of a ring step know the chunk geometry.
func f64Bytes(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

//sidco:errclass geometry violation means a buggy peer, deliberately fatal
func f64Add(dst []float64, buf []byte) error {
	if len(buf) != 8*len(dst) {
		return fmt.Errorf("payload %d bytes, want %d", len(buf), 8*len(dst))
	}
	for i := range dst {
		dst[i] += math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

//sidco:errclass geometry violation means a buggy peer, deliberately fatal
func f64Copy(dst []float64, buf []byte) error {
	if len(buf) != 8*len(dst) {
		return fmt.Errorf("payload %d bytes, want %d", len(buf), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}
