package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"
)

// Elastic membership: when a schedule fails recoverably (a peer died or
// a receive timed out), the survivors agree on a new member set and
// retry the step over it. The agreement protocol is a fixed number of
// mask-exchange rounds over the *raw* transport — the same links the
// gradient schedules use, so per-link FIFO makes the protocol double as
// a drain barrier: by the time a peer's final-round frame is received,
// every frame that peer sent earlier (stale gradient payloads of the
// aborted step included) has been consumed, and the peer sends its
// retry gradients only after its own final round. Riding the raw
// transport also keeps the frames out of the instrumented
// gradient-traffic counters, like MeanScalar's loss frames.
//
// Membership frames are 20 bytes with a magic prefix no legitimate
// payload can collide with: raw ring chunks are a multiple of 8 bytes,
// loss scalars are 8 bytes, and encoded gradient payloads start with a
// small format id, never the magic byte. A frame arriving where a
// gradient was expected is therefore unambiguous evidence that the
// sender aborted the step and is renegotiating — the schedule receive
// hook turns it into a recoverable error instead of a decode failure.

// memberMagic prefixes every membership frame ("SDCM" little-endian on
// the wire).
const memberMagic uint32 = 0x4D434453

// memberRounds is the fixed round count of the agreement protocol. Two
// rounds let every survivor first learn who responded, then confirm the
// intersected view; because the count is fixed, no rank can finish the
// protocol while a survivor still waits on a frame it will never send.
const memberRounds = 2

// memberFrameLen is the wire size: magic u32 | epoch u32 | round u32 |
// mask u64, little-endian.
const memberFrameLen = 20

// memberFrame is one membership protocol message: the sender's current
// view of the deployment as a node-id bitmask, tagged with the
// renegotiation epoch and protocol round.
type memberFrame struct {
	epoch uint32
	round uint32
	mask  uint64
}

func (f memberFrame) encode() []byte {
	buf := make([]byte, memberFrameLen)
	binary.LittleEndian.PutUint32(buf[0:], memberMagic)
	binary.LittleEndian.PutUint32(buf[4:], f.epoch)
	binary.LittleEndian.PutUint32(buf[8:], f.round)
	binary.LittleEndian.PutUint64(buf[12:], f.mask)
	return buf
}

// parseMemberFrame reports whether p is a membership frame and decodes
// it if so.
func parseMemberFrame(p []byte) (memberFrame, bool) {
	if len(p) != memberFrameLen || binary.LittleEndian.Uint32(p) != memberMagic {
		return memberFrame{}, false
	}
	return memberFrame{
		epoch: binary.LittleEndian.Uint32(p[4:]),
		round: binary.LittleEndian.Uint32(p[8:]),
		mask:  binary.LittleEndian.Uint64(p[12:]),
	}, true
}

// peerRenegotiating is the error a schedule receive raises when it
// pulls a membership frame off a link where a gradient payload was
// expected: the peer aborted the step and opened a renegotiation. It
// classifies as recoverable (it wraps ErrPeerLost) and carries the
// frame so the local renegotiation starts with it already consumed.
type peerRenegotiating struct {
	from  int
	frame memberFrame
}

func (e *peerRenegotiating) Error() string {
	return fmt.Sprintf("cluster: peer %d renegotiating membership (epoch %d): %v", e.from, e.frame.epoch, ErrPeerLost)
}

func (e *peerRenegotiating) Unwrap() error { return ErrPeerLost }

// recvDeadline is one blocking receive bounded by an absolute deadline:
// zero deadline (or a transport without timeout support) blocks
// indefinitely, otherwise the remaining budget is applied per receive,
// so every receive of a schedule run shares one step deadline.
func recvDeadline(tp Transport, to, from int, deadline time.Time) ([]byte, error) {
	tr, ok := tp.(TimeoutRecver)
	if deadline.IsZero() || !ok {
		return tp.Recv(to, from)
	}
	remaining := time.Until(deadline) //sidco:nondet converts a fault-detection deadline to a timeout
	if remaining < 0 {
		remaining = 0
	}
	return tr.RecvTimeout(to, from, remaining)
}

// interceptRecv builds the schedule receive hook: deadline-bounded
// receives that classify an arriving membership frame as a recoverable
// peerRenegotiating error instead of handing it to a gradient decoder.
func interceptRecv(tp Transport, deadline time.Time) linkRecv {
	return func(to, from int) ([]byte, error) {
		p, err := recvDeadline(tp, to, from, deadline)
		if err != nil {
			return nil, err
		}
		if f, ok := parseMemberFrame(p); ok {
			return nil, &peerRenegotiating{from: from, frame: f}
		}
		return p, nil
	}
}

func maskOf(members []int) uint64 {
	var m uint64
	for _, id := range members {
		m |= 1 << uint(id)
	}
	return m
}

func maskMembers(mask uint64) []int {
	var ids []int
	for id := 0; id < 64; id++ {
		if mask&(1<<uint(id)) != 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// negotiator holds the cross-renegotiation state one node keeps: the
// latest membership frame seen per peer. Frames a schedule receive
// intercepted land here (via note) so the protocol does not wait for a
// message it already consumed; frames from a peer running ahead of the
// local round satisfy later rounds from the stash — per-link FIFO
// guarantees a stashed frame is never newer than an unconsumed one.
type negotiator struct {
	stash map[int]memberFrame
}

// note records an intercepted frame from a peer.
func (ng *negotiator) note(from int, f memberFrame) {
	if ng.stash == nil {
		ng.stash = make(map[int]memberFrame)
	}
	if old, ok := ng.stash[from]; ok && (old.epoch > f.epoch || (old.epoch == f.epoch && old.round >= f.round)) {
		return
	}
	ng.stash[from] = f
}

// frameFrom obtains peer id's frame for (epoch, round): from the stash
// if an equal-or-newer frame was already consumed, else by receiving on
// the link, draining stale payloads (aborted-step gradient bytes,
// frames from older epochs) until a current frame or the timeout.
// ok=false means the peer stayed silent — it is treated as dead. A
// non-recoverable receive error (transport closed) aborts the protocol.
func (ng *negotiator) frameFrom(tp Transport, self, id int, epoch, round uint32, timeout time.Duration) (memberFrame, bool, error) {
	if f, ok := ng.stash[id]; ok && (f.epoch > epoch || (f.epoch == epoch && f.round >= round)) {
		return f, true, nil
	}
	deadline := time.Now().Add(timeout) //sidco:nondet renegotiation deadline, fault path only
	for {
		remaining := time.Until(deadline) //sidco:nondet renegotiation deadline, fault path only
		if remaining < 0 {
			remaining = 0
		}
		var p []byte
		var err error
		if tr, ok := tp.(TimeoutRecver); ok {
			p, err = tr.RecvTimeout(self, id, remaining)
		} else {
			p, err = tp.Recv(self, id)
		}
		if err != nil {
			if Recoverable(err) {
				return memberFrame{}, false, nil
			}
			return memberFrame{}, false, err
		}
		f, ok := parseMemberFrame(p)
		if !ok || f.epoch < epoch {
			continue // stale gradient payload or an older renegotiation
		}
		ng.note(id, f)
		if f.epoch > epoch || f.round >= round {
			return f, true, nil
		}
	}
}

// renegotiate runs the membership protocol from one node: starting from
// the current member view (which must contain self), exchange view
// masks with every peer for memberRounds rounds, dropping peers that
// stay silent past the timeout and intersecting the views of those that
// respond. It returns the agreed member list, ascending and containing
// self. Send failures are ignored (the peer is dead or unreachable —
// exactly what the protocol is resolving); a closed local transport
// surfaces as a non-recoverable receive error during collection.
//
// The timeout is the base per-frame wait and must cover the detection
// skew between survivors: a survivor adjacent to the dead peer fails
// fast, while one waiting on a forwarded payload blocks a full step
// timeout first — callers pass roughly twice the step timeout. Later
// rounds wait proportionally longer (see the loop) to absorb the skew
// a dead-peer probe adds to a live peer's earlier rounds; with several
// peers dying at once behind unestablished links, those probes stack
// and a larger step timeout may be needed.
func (ng *negotiator) renegotiate(tp Transport, self int, members []int, epoch uint32, timeout time.Duration) ([]int, error) {
	view := append([]int(nil), members...)
	if memberPos(view, self) < 0 {
		return nil, fmt.Errorf("cluster: node %d renegotiating a group it is not in (%v)", self, members) //sidco:errclass caller misuse, deliberately fatal
	}
	// One sender goroutine per peer: frames to the same peer stay ordered
	// (a single goroutine per link, and Send serialises per link), while a
	// dead peer cannot delay anyone else's frames — sending to a vanished
	// process over a never-established link burns the transport's full
	// lazy-dial budget, which can exceed every protocol timeout here.
	// Serial sends would push the frames of peers later in the loop past
	// the survivors' collection windows and split the group.
	type sender struct {
		ch   chan []byte
		done chan struct{}
	}
	sends := make(map[int]*sender, len(view))
	for _, id := range view {
		if id == self {
			continue
		}
		sn := &sender{ch: make(chan []byte, memberRounds), done: make(chan struct{})}
		sends[id] = sn
		go func(id int, sn *sender) {
			defer close(sn.done)
			for wire := range sn.ch {
				tp.Send(self, id, wire)
			}
		}(id, sn)
	}
	// finish closes every sender and, crucially, WAITS for the senders of
	// peers that stay in the agreed view: the caller's very next sends on
	// those links are retry-schedule payloads from another goroutine, and
	// returning with a final-round frame still queued would let a gradient
	// chunk overtake it — the peer then drains the chunk as stale while
	// waiting for the frame, and every later payload on the link lands one
	// slot out of phase. Senders of dropped peers are left to drain in the
	// background (nothing will ever send on those links again), so a dead
	// peer's dial budget cannot stall the survivors.
	finish := func(final []int) {
		for id, sn := range sends {
			close(sn.ch)
			if final != nil && memberPos(final, id) >= 0 {
				<-sn.done
			}
		}
	}
	selfBit := uint64(1) << uint(self)
	for round := uint32(1); round <= memberRounds; round++ {
		frame := memberFrame{epoch: epoch, round: round, mask: maskOf(view)}
		wire := frame.encode()
		for _, id := range view {
			if id == self {
				continue
			}
			// Buffered to memberRounds, one frame per round: never blocks.
			sends[id].ch <- wire
		}
		agreed := maskOf(view)
		alive := selfBit
		for _, id := range view {
			if id == self {
				continue
			}
			// The wait budget grows with the round: a live peer's round-r
			// frame can lag behind ours by its own round-r-1 collection,
			// which may have spent a full timeout probing a dead peer whose
			// link was never established (and so never got poisoned).
			// Survivors adjacent to the dead node finish their rounds almost
			// immediately; a flat budget would make them give up on the
			// slow-but-live ranks exactly when those ranks' frames are about
			// to arrive, splitting the deployment into inconsistent views.
			f, ok, err := ng.frameFrom(tp, self, id, epoch, round, time.Duration(round)*timeout)
			dbg("node %d: e%d r%d peer %d: ok=%v frame={e%d r%d mask %b} err=%v", self, epoch, round, id, ok, f.epoch, f.round, f.mask, err)
			if err != nil {
				finish(nil)
				return nil, err
			}
			if !ok {
				continue
			}
			alive |= 1 << uint(id)
			agreed &= f.mask | selfBit
		}
		view = maskMembers(agreed & alive)
		sort.Ints(view)
	}
	finish(view)
	return view, nil
}
