package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/netsim"
)

// TestFaultTransportPlan pins the deterministic failure semantics of
// FaultTransport: a dead node's own operations fail with the ErrClosed
// class, its inbound links blackhole, peers drain pre-death payloads
// before seeing ErrPeerLost, and a killed link breaks after exactly its
// send budget.
func TestFaultTransportPlan(t *testing.T) {
	t.Run("kill-rank", func(t *testing.T) {
		inner, err := NewChanTransport(3)
		if err != nil {
			t.Fatal(err)
		}
		defer inner.Close()
		ft := NewFaultTransport(inner, FaultPlan{KillRank: map[int]int64{1: 2}})

		// Before the fatal step everything passes through.
		ft.SetStep(1)
		if err := ft.Send(1, 0, []byte{7}); err != nil {
			t.Fatalf("pre-death send: %v", err)
		}
		ft.SetStep(2)
		// The dead node's own ops are the unrecoverable local class.
		if err := ft.Send(1, 0, []byte{8}); !errors.Is(err, ErrClosed) {
			t.Fatalf("dead sender error = %v, want ErrClosed", err)
		}
		if _, err := ft.Recv(1, 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("dead receiver error = %v, want ErrClosed", err)
		}
		// Peers drain what the node sent before dying, then see peer loss.
		p, err := ft.Recv(0, 1)
		if err != nil || len(p) != 1 || p[0] != 7 {
			t.Fatalf("pre-death payload: %v, %v", p, err)
		}
		if _, err := ft.Recv(0, 1); !errors.Is(err, ErrPeerLost) {
			t.Fatalf("post-drain recv = %v, want ErrPeerLost", err)
		}
		if !Recoverable(fmt.Errorf("wrap: %w", ErrPeerLost)) {
			t.Fatal("ErrPeerLost must classify as recoverable")
		}
		// Sends into the dead node blackhole rather than erroring: a
		// crashed peer's kernel would have accepted the bytes too.
		if err := ft.Send(0, 1, []byte{9}); err != nil {
			t.Fatalf("blackhole send: %v", err)
		}
	})
	t.Run("kill-link", func(t *testing.T) {
		inner, err := NewChanTransport(2)
		if err != nil {
			t.Fatal(err)
		}
		defer inner.Close()
		ft := NewFaultTransport(inner, FaultPlan{KillLink: map[Link]int{{0, 1}: 2}})
		for i := 0; i < 2; i++ {
			if err := ft.Send(0, 1, []byte{byte(i)}); err != nil {
				t.Fatalf("send %d within budget: %v", i, err)
			}
		}
		if err := ft.Send(0, 1, []byte{2}); !errors.Is(err, ErrPeerLost) {
			t.Fatalf("over-budget send = %v, want ErrPeerLost", err)
		}
		for i := 0; i < 2; i++ {
			if p, err := ft.Recv(1, 0); err != nil || p[0] != byte(i) {
				t.Fatalf("draining payload %d: %v, %v", i, p, err)
			}
		}
		if _, err := ft.Recv(1, 0); !errors.Is(err, ErrPeerLost) {
			t.Fatalf("post-drain recv = %v, want ErrPeerLost", err)
		}
		// The reverse direction is untouched.
		if err := ft.Send(1, 0, []byte{42}); err != nil {
			t.Fatalf("reverse link send: %v", err)
		}
	})
}

// TestMemberFrameCodec pins the membership wire format and that no
// legitimate payload shape parses as a frame.
func TestMemberFrameCodec(t *testing.T) {
	f := memberFrame{epoch: 3, round: 2, mask: 0b1011}
	got, ok := parseMemberFrame(f.encode())
	if !ok || got != f {
		t.Fatalf("round trip: %+v ok=%v, want %+v", got, ok, f)
	}
	for _, p := range [][]byte{nil, {1}, make([]byte, 8), make([]byte, memberFrameLen), make([]byte, 64)} {
		if _, ok := parseMemberFrame(p); ok {
			t.Fatalf("%d zero bytes parsed as a member frame", len(p))
		}
	}
}

// TestMembershipAgreesOnSurvivors runs the renegotiation protocol at
// three live nodes of a four-node group: the silent node is dropped and
// every survivor agrees on the same view, with stale aborted-step
// payloads on the links drained rather than misparsed.
func TestMembershipAgreesOnSurvivors(t *testing.T) {
	tp, err := NewChanTransport(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	// Stale gradient bytes from the aborted step sit ahead of the
	// protocol frames on some links; the drain must skip them.
	if err := tp.Send(0, 1, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tp.Send(2, 0, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3}
	type res struct {
		self int
		view []int
		err  error
	}
	out := make(chan res, 3)
	for _, self := range []int{0, 1, 2} { // node 3 is dead: never speaks
		go func(self int) {
			var ng negotiator
			view, err := ng.renegotiate(tp, self, members, 1, 200*time.Millisecond)
			out <- res{self, view, err}
		}(self)
	}
	for i := 0; i < 3; i++ {
		select {
		case r := <-out:
			if r.err != nil {
				t.Fatalf("node %d: %v", r.self, r.err)
			}
			if len(r.view) != 3 || r.view[0] != 0 || r.view[1] != 1 || r.view[2] != 2 {
				t.Fatalf("node %d agreed on %v, want [0 1 2]", r.self, r.view)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("renegotiation hung")
		}
	}
}

// faultEnv builds one dead-peer scenario: per-rank transports (a shared
// fault-wrapped channel transport, or one real TCP transport per rank),
// a victim rank, and a kill switch that makes the victim disappear
// between steps.
type faultEnv struct {
	name  string
	build func(t *testing.T, nodes, victim int) (tps []Transport, kill func())
}

var faultEnvs = []faultEnv{
	{"chan-fault", func(t *testing.T, nodes, victim int) ([]Transport, func()) {
		inner, err := NewChanTransport(nodes)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { inner.Close() })
		// Step-1 kill, one wrapper per rank: each node judges the victim
		// dead by its OWN step clock (as separate processes would), so a
		// rank that runs ahead — the PS server starts round 1 the moment
		// round 0 ends — cannot kill the victim out from under a peer
		// still finishing step 0.
		tps := make([]Transport, nodes)
		for i := range tps {
			tps[i] = NewFaultTransport(inner, FaultPlan{KillRank: map[int]int64{victim: 1}})
		}
		return tps, func() {}
	}},
	{"tcp", func(t *testing.T, nodes, victim int) ([]Transport, func()) {
		addrs, err := FreeLoopbackAddrs(nodes)
		if err != nil {
			t.Fatal(err)
		}
		tps := make([]Transport, nodes)
		for i := range tps {
			tp, err := NewTCPTransport(TCPConfig{Addrs: addrs, Local: []int{i}, DialTimeout: 500 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { tp.Close() })
			tps[i] = tp
		}
		return tps, func() { tps[victim].Close() }
	}},
}

// TestKillRankSurfacesClassifiedError is the fail-stop regression test:
// with retries disabled, killing one rank between steps must surface a
// classified error — Recoverable (peer lost / timeout) or the ErrClosed
// shutdown class — at every surviving rank within the step timeout, for
// every collective schedule, over both the deterministic fault transport
// and real TCP sockets. No surviving goroutine may hang.
func TestKillRankSurfacesClassifiedError(t *testing.T) {
	const workers, dim = 3, 32
	cases := []struct {
		name   string
		coll   netsim.Collective
		chunks int
	}{
		{"ring", netsim.CollectiveRing, 0},
		{"allgather", netsim.CollectiveAllGather, 0},
		{"allgather-chunked", netsim.CollectiveAllGather, 3},
		{"ps", netsim.CollectivePS, 0},
	}
	for _, env := range faultEnvs {
		for _, tc := range cases {
			t.Run(env.name+"/"+tc.name, func(t *testing.T) {
				nodes := NodeCount(workers, tc.coll)
				victim := 1 // always a worker; the PS server must survive
				tps, kill := env.build(t, nodes, victim)

				type outcome struct {
					rank int
					err  error
				}
				results := make(chan outcome, nodes)
				step := func(nd *Node, rank, it int) error {
					in := []dist.ExchangeInput{{Worker: rank, Dense: denseGrad(rank, dim)}}
					agg := make([]float64, dim)
					if err := nd.Exchange(it, in, agg); err != nil {
						return err
					}
					// The per-step barrier of a real deployment (loss
					// reduction) keeps shared-buffer transports safe.
					_, err := nd.MeanScalar(float64(rank))
					return err
				}
				barrier := make(chan struct{})
				for rank := 0; rank < nodes; rank++ {
					go func(rank int) {
						nd, err := NewNode(NodeConfig{
							Workers: workers, Rank: rank, Collective: tc.coll, Chunks: tc.chunks,
							Transport: tps[rank], StepTimeout: 500 * time.Millisecond,
						})
						if err != nil {
							results <- outcome{rank, fmt.Errorf("build: %v", err)}
							return
						}
						if rank == workers && tc.coll == netsim.CollectivePS {
							results <- outcome{rank, nd.Serve(2)}
							return
						}
						if err := step(nd, rank, 0); err != nil {
							results <- outcome{rank, fmt.Errorf("healthy step: %v", err)}
							return
						}
						<-barrier
						if rank == victim {
							results <- outcome{rank, nil} // dead: never runs step 1
							return
						}
						results <- outcome{rank, step(nd, rank, 1)}
					}(rank)
				}
				// Give every rank time to finish the healthy step, then kill.
				time.Sleep(300 * time.Millisecond)
				kill()
				close(barrier)
				for i := 0; i < nodes; i++ {
					select {
					case r := <-results:
						if r.rank == victim {
							continue
						}
						if r.err == nil {
							// The server treats a closed transport as clean
							// shutdown (its documented stop signal): when a
							// fail-stopping worker closes a shared transport,
							// a nil Serve result is correct.
							if r.rank == workers && tc.coll == netsim.CollectivePS {
								continue
							}
							t.Errorf("rank %d finished step 1 despite the dead peer", r.rank)
							continue
						}
						if !Recoverable(r.err) && !errors.Is(r.err, ErrClosed) {
							t.Errorf("rank %d error not classified: %v", r.rank, r.err)
						}
					case <-time.After(30 * time.Second):
						t.Fatal("a surviving rank hung past the step timeout")
					}
				}
			})
		}
	}
}

// denseGrad is a rank-distinct gradient so aggregation results identify
// exactly who contributed.
func denseGrad(rank, dim int) []float64 {
	g := make([]float64, dim)
	for i := range g {
		g[i] = float64(rank+1) + float64(i)/16
	}
	return g
}

// TestElasticRecoverySurvivorsComplete is the elastic-membership
// acceptance test: with retries enabled, the survivors of a mid-run
// death renegotiate, exclude the dead rank from the next schedule, and
// complete the step with the aggregate rescaled to the survivor count —
// over both the fault transport and real TCP.
func TestElasticRecoverySurvivorsComplete(t *testing.T) {
	const workers, dim = 4, 32
	const victim = 2
	for _, env := range faultEnvs {
		t.Run(env.name, func(t *testing.T) {
			tps, kill := env.build(t, workers, victim)
			type outcome struct {
				rank   int
				agg    []float64
				scalar float64
				err    error
			}
			results := make(chan outcome, workers)
			barrier := make(chan struct{})
			for rank := 0; rank < workers; rank++ {
				go func(rank int) {
					nd, err := NewNode(NodeConfig{
						Workers: workers, Rank: rank, Collective: netsim.CollectiveAllGather,
						Transport: tps[rank], StepTimeout: 400 * time.Millisecond, MaxStepRetries: 2,
					})
					if err != nil {
						results <- outcome{rank: rank, err: err}
						return
					}
					run := func(it int) ([]float64, float64, error) {
						in := []dist.ExchangeInput{{Worker: rank, Dense: denseGrad(rank, dim)}}
						agg := make([]float64, dim)
						if err := nd.Exchange(it, in, agg); err != nil {
							return nil, 0, err
						}
						s, err := nd.MeanScalar(float64(rank))
						return agg, s, err
					}
					if _, _, err := run(0); err != nil {
						results <- outcome{rank: rank, err: fmt.Errorf("healthy step: %v", err)}
						return
					}
					<-barrier
					if rank == victim {
						results <- outcome{rank: rank}
						return
					}
					agg, s, err := run(1)
					results <- outcome{rank: rank, agg: agg, scalar: s, err: err}
				}(rank)
			}
			time.Sleep(300 * time.Millisecond)
			kill()
			close(barrier)

			// Expected survivor aggregate: contributions summed in member
			// order and rescaled by the survivor count, exactly as the
			// group schedule computes it.
			wantAgg := make([]float64, dim)
			for _, r := range []int{0, 1, 3} {
				g := denseGrad(r, dim)
				for i := range wantAgg {
					wantAgg[i] += g[i]
				}
			}
			for i := range wantAgg {
				wantAgg[i] *= 1 / float64(3)
			}
			wantScalar := (0.0 + 1.0 + 3.0) * (1 / float64(3))

			for i := 0; i < workers; i++ {
				select {
				case r := <-results:
					if r.rank == victim {
						continue
					}
					if r.err != nil {
						t.Fatalf("survivor %d failed step 1: %v", r.rank, r.err)
					}
					for j := range wantAgg {
						if r.agg[j] != wantAgg[j] {
							t.Fatalf("survivor %d agg[%d] = %v, want %v (mean over survivors)", r.rank, j, r.agg[j], wantAgg[j])
						}
					}
					if r.scalar != wantScalar {
						t.Fatalf("survivor %d scalar = %v, want %v", r.rank, r.scalar, wantScalar)
					}
				case <-time.After(30 * time.Second):
					t.Fatal("a survivor hung during elastic recovery")
				}
			}
		})
	}
}

// TestRetriesRequireTimeout pins the config coupling: elastic recovery
// without receive deadlines would hang non-adjacent survivors forever,
// so NewNode rejects it.
func TestRetriesRequireTimeout(t *testing.T) {
	tp, err := NewChanTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	_, err = NewNode(NodeConfig{
		Workers: 2, Rank: 0, Collective: netsim.CollectiveAllGather,
		Transport: tp, MaxStepRetries: 1,
	})
	if err == nil {
		t.Fatal("MaxStepRetries without StepTimeout should be rejected")
	}
}
