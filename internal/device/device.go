// Package device models the compression-op latency of GPU-like and
// CPU-like devices. The paper's micro-benchmarks (Figures 1, 12, 14-17)
// hinge on two architectural facts this model encodes: sorting/Top-k is
// disproportionately slow on GPUs relative to streaming passes, and random
// gather (DGC's sampling) is disproportionately slow on CPUs. Rates are
// calibrated so the *relative* ordering and rough factors of the paper's
// figures hold; absolute times are synthetic.
package device

import (
	"fmt"
	"math"
)

// Profile describes a compression device by the throughput of its
// primitive operations.
type Profile struct {
	// Name labels the device ("gpu", "cpu").
	Name string
	// StreamRate is elements/second for sequential elementwise passes
	// (abs, compare-and-count, mean/variance accumulation).
	StreamRate float64
	// SortRate is element*log2(element) units/second for comparison
	// sorting — the Top-k path on throughput devices.
	SortRate float64
	// SelectRate is elements/second for linear-time selection
	// (quickselect) — the Top-k path on latency devices.
	SelectRate float64
	// GatherRate is elements/second for random-index gather (DGC
	// sampling, Random-k).
	GatherRate float64
	// PassOverhead is the fixed cost of launching one pass/kernel.
	PassOverhead float64
	// TopkUsesSort selects the sort-based Top-k path (GPUs) instead of
	// quickselect (CPUs).
	TopkUsesSort bool
	// ComputeRate is model-FLOPs/second for the forward+backward pass,
	// used by the training-timeline model.
	ComputeRate float64
}

// GPU returns the GPU-like profile (V100-era calibration).
func GPU() Profile {
	return Profile{
		Name:         "gpu",
		StreamRate:   1.5e10,
		SortRate:     2.5e9,
		SelectRate:   2.5e9, // GPU selection is sort-like; kept equal
		GatherRate:   6e9,
		PassOverhead: 8e-6,
		TopkUsesSort: true,
		ComputeRate:  1.2e13,
	}
}

// CPU returns the CPU-like profile (Xeon-era calibration).
func CPU() Profile {
	return Profile{
		Name:         "cpu",
		StreamRate:   1.2e9,
		SortRate:     1.2e8,
		SelectRate:   3.2e8,
		GatherRate:   6e7,
		PassOverhead: 2e-7,
		TopkUsesSort: false,
		ComputeRate:  2e11,
	}
}

// stream returns the cost of one streaming pass over n elements.
func (p Profile) stream(n int) float64 {
	return float64(n)/p.StreamRate + p.PassOverhead
}

// sortCost returns the cost of comparison-sorting n elements.
func (p Profile) sortCost(n int) float64 {
	if n < 2 {
		return p.PassOverhead
	}
	return float64(n)*math.Log2(float64(n))/p.SortRate + p.PassOverhead
}

// selectCost returns the cost of linear-time selection over n elements.
func (p Profile) selectCost(n int) float64 {
	return 2*float64(n)/p.SelectRate + p.PassOverhead // ~2n expected touches
}

// gather returns the cost of randomly gathering n elements.
func (p Profile) gather(n int) float64 {
	return float64(n)/p.GatherRate + p.PassOverhead
}

// topk returns the device's exact Top-k cost over d elements.
func (p Profile) topk(d int) float64 {
	if p.TopkUsesSort {
		return p.stream(d) + p.sortCost(d) // abs pass + sort
	}
	return p.stream(d) + p.selectCost(d)
}

// CompressLatency returns the modelled latency in seconds for compressor
// name (the Compressor.Name() strings of internal/compress and
// internal/core) on a d-dimensional gradient at ratio delta. stages is the
// SIDCo stage count M (ignored for others).
func (p Profile) CompressLatency(name string, d int, delta float64, stages int) (float64, error) {
	k := int(math.Max(1, math.Round(delta*float64(d))))
	switch name {
	case "none":
		return 0, nil
	case "topk", "topk+ec":
		return p.topk(d), nil
	case "dgc", "dgc+ec":
		s := int(math.Max(256, 0.01*float64(d))) // 1% sample
		// Index generation/permutation touches the full vector at gather
		// rate (the documented reason DGC collapses on CPUs), then sort
		// the sample, one filter pass, and a hierarchical trim over the
		// ~2k exceedances.
		return p.gather(d) + p.sortCost(s) + p.stream(d) + p.topk(2*k), nil
	case "redsync", "redsync+ec":
		// mean+max pass, ~5 effective half-vector count probes of the
		// bounded binary search, then the filter pass.
		return p.stream(d) + 5*p.stream(d)/2 + p.stream(d), nil
	case "gaussiank", "gaussiank+ec":
		// mean pass + variance pass + filter pass.
		return 3 * p.stream(d), nil
	case "sidco-e", "sidco-e+ec":
		return p.sidco(d, stages, 1), nil
	case "sidco-gp", "sidco-gp+ec", "sidco-p", "sidco-p+ec":
		// The gamma/GP variants need a second moment (and log-moment)
		// accumulation in the first stage.
		return p.sidco(d, stages, 2), nil
	case "randomk", "randomk+ec":
		return p.gather(k), nil
	default:
		return 0, fmt.Errorf("device: unknown compressor %q", name)
	}
}

// sidco composes the multi-stage estimator cost: firstPassCount fitting
// passes over d, then geometrically shrinking exceedance stages (ratio
// delta1 = 0.25 per stage), then the final filter pass over d.
func (p Profile) sidco(d, stages int, firstPassCount int) float64 {
	if stages < 1 {
		stages = 1
	}
	cost := float64(firstPassCount) * p.stream(d)
	remaining := float64(d)
	for m := 1; m < stages; m++ {
		remaining *= 0.25
		cost += p.stream(int(remaining)) * 2 // fit + filter on exceedances
	}
	return cost + p.stream(d) // final threshold filter
}

// ComputeTime returns the modelled forward+backward time for a model with
// the given parameter count and per-worker batch size, using the standard
// ~6 FLOPs per parameter per sample estimate (2 forward + 4 backward).
func (p Profile) ComputeTime(params, batch int) float64 {
	return 6 * float64(params) * float64(batch) / p.ComputeRate
}
