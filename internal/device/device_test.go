package device

import (
	"testing"
)

func latency(t *testing.T, p Profile, name string, d int, delta float64, stages int) float64 {
	t.Helper()
	l, err := p.CompressLatency(name, d, delta, stages)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// VGG16's dimension, the paper's Figure 1 micro-benchmark subject.
const vgg16Dim = 14982987

func TestGPUOrderingMatchesFigure1a(t *testing.T) {
	p := GPU()
	topk := latency(t, p, "topk", vgg16Dim, 0.001, 1)
	dgc := latency(t, p, "dgc", vgg16Dim, 0.001, 1)
	sidco := latency(t, p, "sidco-e", vgg16Dim, 0.001, 3)
	redsync := latency(t, p, "redsync", vgg16Dim, 0.001, 1)
	gauss := latency(t, p, "gaussiank", vgg16Dim, 0.001, 1)

	// On GPU everything beats Top-k, and threshold-estimation methods
	// beat DGC (Figure 1a).
	for name, l := range map[string]float64{"dgc": dgc, "sidco": sidco, "redsync": redsync, "gauss": gauss} {
		if l >= topk {
			t.Errorf("GPU: %s (%.3gs) not faster than topk (%.3gs)", name, l, topk)
		}
	}
	if sidco >= dgc {
		t.Errorf("GPU: sidco (%.3gs) not faster than dgc (%.3gs)", sidco, dgc)
	}
	// Paper: threshold methods are ~50-60x over Top-k, DGC ~15-40x.
	if sp := topk / sidco; sp < 20 || sp > 120 {
		t.Errorf("GPU sidco speedup over topk = %.1fx, want within [20, 120]", sp)
	}
	if sp := topk / dgc; sp < 5 || sp > 60 {
		t.Errorf("GPU dgc speedup over topk = %.1fx, want within [5, 60]", sp)
	}
}

func TestCPUOrderingMatchesFigure1b(t *testing.T) {
	p := CPU()
	topk := latency(t, p, "topk", vgg16Dim, 0.001, 1)
	dgc := latency(t, p, "dgc", vgg16Dim, 0.001, 1)
	sidco := latency(t, p, "sidco-e", vgg16Dim, 0.001, 3)

	// Figure 1b: DGC is *slower* than Top-k on CPU (random sampling);
	// threshold methods remain faster.
	if dgc <= topk {
		t.Errorf("CPU: dgc (%.3gs) should be slower than topk (%.3gs)", dgc, topk)
	}
	if sidco >= topk {
		t.Errorf("CPU: sidco (%.3gs) should be faster than topk (%.3gs)", sidco, topk)
	}
	if sp := topk / sidco; sp < 1.5 || sp > 6 {
		t.Errorf("CPU sidco speedup = %.2fx, want within [1.5, 6]", sp)
	}
}

func TestSIDCoStageCostGrowsSlowly(t *testing.T) {
	p := GPU()
	one := latency(t, p, "sidco-e", vgg16Dim, 0.001, 1)
	four := latency(t, p, "sidco-e", vgg16Dim, 0.001, 4)
	if four <= one {
		t.Errorf("more stages should cost more: %v vs %v", four, one)
	}
	// Stage ratio 0.25 makes later stages geometrically cheap: 4 stages
	// must cost well under 2x one stage.
	if four > 2*one {
		t.Errorf("stage cost explosion: 1 stage %.3g, 4 stages %.3g", one, four)
	}
}

func TestVariantCostDifferences(t *testing.T) {
	p := GPU()
	e := latency(t, p, "sidco-e", vgg16Dim, 0.01, 2)
	gp := latency(t, p, "sidco-gp", vgg16Dim, 0.01, 2)
	if gp <= e {
		t.Errorf("GP variant needs an extra moment pass: e=%v gp=%v", e, gp)
	}
}

func TestECSuffixAccepted(t *testing.T) {
	p := GPU()
	plain := latency(t, p, "topk", 1000000, 0.01, 1)
	ec := latency(t, p, "topk+ec", 1000000, 0.01, 1)
	if plain != ec {
		t.Errorf("EC wrapper should not change compression latency model")
	}
}

func TestUnknownCompressorErrors(t *testing.T) {
	if _, err := GPU().CompressLatency("nope", 1000, 0.1, 1); err == nil {
		t.Error("unknown compressor should error")
	}
}

func TestNoneIsFree(t *testing.T) {
	if l := latency(t, GPU(), "none", vgg16Dim, 0.001, 1); l != 0 {
		t.Errorf("none latency = %v", l)
	}
}

func TestComputeTimeScales(t *testing.T) {
	p := GPU()
	small := p.ComputeTime(1000000, 32)
	big := p.ComputeTime(10000000, 32)
	if big <= small {
		t.Error("compute time must grow with parameters")
	}
	doubleBatch := p.ComputeTime(1000000, 64)
	if doubleBatch <= small {
		t.Error("compute time must grow with batch")
	}
}

func TestLatencyMonotoneInDimension(t *testing.T) {
	for _, name := range []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e"} {
		for _, p := range []Profile{GPU(), CPU()} {
			small := latency(t, p, name, 260000, 0.01, 2)
			big := latency(t, p, name, 26000000, 0.01, 2)
			if big <= small {
				t.Errorf("%s on %s: latency not monotone in d", name, p.Name)
			}
		}
	}
}
