// Package data provides deterministic synthetic datasets standing in for
// the paper's benchmarks: class-conditional images (CIFAR-10 / ImageNet
// stand-in), a Zipfian Markov token corpus (PTB stand-in), and
// frame-labelled feature sequences (AN4 stand-in). The tasks are learnable
// but noisy, so training-loss curves have the monotone-but-slowing shape
// real benchmarks show, and they degrade under bad gradient compression
// exactly as the paper's Figure 4 illustrates.
package data

import (
	"math"
	"math/rand"

	"repro/internal/nn"
)

// Images is a synthetic image-classification dataset: each class has a
// characteristic 2-D sinusoidal texture, and samples are the class texture
// plus Gaussian pixel noise.
type Images struct {
	N, C, H, W, Classes int

	pixels []float64 // [N, C, H, W]
	labels []int
}

// ImagesConfig parameterises NewImages.
type ImagesConfig struct {
	// N is the number of samples.
	N int
	// C, H, W are channel/height/width (CIFAR-like default 3x12x12 when
	// zero).
	C, H, W int
	// Classes is the number of classes (default 10).
	Classes int
	// Noise is the pixel noise standard deviation (default 0.6: hard
	// enough that learning takes many iterations).
	Noise float64
	// Seed fixes the dataset.
	Seed int64
}

// NewImages builds the dataset.
func NewImages(cfg ImagesConfig) *Images {
	if cfg.C == 0 {
		cfg.C = 3
	}
	if cfg.H == 0 {
		cfg.H = 12
	}
	if cfg.W == 0 {
		cfg.W = 12
	}
	if cfg.Classes == 0 {
		cfg.Classes = 10
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Images{
		N: cfg.N, C: cfg.C, H: cfg.H, W: cfg.W, Classes: cfg.Classes,
		pixels: make([]float64, cfg.N*cfg.C*cfg.H*cfg.W),
		labels: make([]int, cfg.N),
	}
	vol := cfg.C * cfg.H * cfg.W
	// Class-specific frequency/phase per channel.
	type pat struct{ fx, fy, phase float64 }
	pats := make([][]pat, cfg.Classes)
	for cl := range pats {
		pats[cl] = make([]pat, cfg.C)
		for ch := range pats[cl] {
			pats[cl][ch] = pat{
				fx:    1 + rng.Float64()*3,
				fy:    1 + rng.Float64()*3,
				phase: rng.Float64() * 2 * math.Pi,
			}
		}
	}
	for n := 0; n < cfg.N; n++ {
		cl := rng.Intn(cfg.Classes)
		d.labels[n] = cl
		for ch := 0; ch < cfg.C; ch++ {
			p := pats[cl][ch]
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					signal := math.Sin(p.fx*float64(x)/float64(cfg.W)*2*math.Pi+p.phase) *
						math.Cos(p.fy*float64(y)/float64(cfg.H)*2*math.Pi)
					d.pixels[n*vol+(ch*cfg.H+y)*cfg.W+x] = signal + rng.NormFloat64()*cfg.Noise
				}
			}
		}
	}
	return d
}

// Len returns the number of samples.
func (d *Images) Len() int { return d.N }

// Batch samples a batch of the given size (with replacement) using rng and
// returns the pixel tensor [B, C, H, W] and the labels.
func (d *Images) Batch(rng *rand.Rand, size int) (*nn.Tensor, []int) {
	x := nn.NewTensor(size, d.C, d.H, d.W)
	labels := make([]int, size)
	vol := d.C * d.H * d.W
	for b := 0; b < size; b++ {
		n := rng.Intn(d.N)
		copy(x.Data[b*vol:(b+1)*vol], d.pixels[n*vol:(n+1)*vol])
		labels[b] = d.labels[n]
	}
	return x, labels
}

// All returns the full dataset as one batch (for evaluation).
func (d *Images) All() (*nn.Tensor, []int) {
	x := nn.NewTensor(d.N, d.C, d.H, d.W)
	copy(x.Data, d.pixels)
	labels := append([]int(nil), d.labels...)
	return x, labels
}

// Corpus is a synthetic token stream from a Zipfian first-order Markov
// chain, the PTB stand-in for language modelling: next-token prediction
// with learnable bigram structure.
type Corpus struct {
	Vocab  int
	tokens []int
}

// CorpusConfig parameterises NewCorpus.
type CorpusConfig struct {
	// Tokens is the stream length.
	Tokens int
	// Vocab is the vocabulary size (default 50).
	Vocab int
	// Skew is the Zipf exponent of the transition rows (default 1.2;
	// higher is more predictable).
	Skew float64
	// Seed fixes the corpus.
	Seed int64
}

// NewCorpus builds the token stream.
func NewCorpus(cfg CorpusConfig) *Corpus {
	if cfg.Vocab == 0 {
		cfg.Vocab = 50
	}
	if cfg.Skew == 0 {
		cfg.Skew = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Each row is a Zipf distribution over a randomly permuted successor
	// set: structure a model can learn, with realistic long-tail noise.
	zipf := rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Vocab-1))
	perms := make([][]int, cfg.Vocab)
	for v := range perms {
		perms[v] = rng.Perm(cfg.Vocab)
	}
	c := &Corpus{Vocab: cfg.Vocab, tokens: make([]int, cfg.Tokens)}
	cur := 0
	for i := range c.tokens {
		c.tokens[i] = cur
		cur = perms[cur][int(zipf.Uint64())]
	}
	return c
}

// Len returns the stream length.
func (c *Corpus) Len() int { return len(c.tokens) }

// Batch samples contiguous windows: x is [B, T] token ids, targets are the
// next tokens (one per position, length B*T).
func (c *Corpus) Batch(rng *rand.Rand, batch, T int) (*nn.Tensor, []int) {
	x := nn.NewTensor(batch, T)
	targets := make([]int, batch*T)
	for b := 0; b < batch; b++ {
		start := rng.Intn(len(c.tokens) - T - 1)
		for t := 0; t < T; t++ {
			x.Data[b*T+t] = float64(c.tokens[start+t])
			targets[b*T+t] = c.tokens[start+t+1]
		}
	}
	return x, targets
}

// Sequences is a synthetic frame-labelled sequence dataset standing in for
// AN4 speech: input frames are noisy embeddings of hidden phoneme-like
// states that evolve as a Markov chain, and the task is per-frame state
// classification (a CTC-free stand-in for acoustic modelling).
type Sequences struct {
	N, T, Feat, States int

	frames []float64 // [N, T, Feat]
	labels []int     // [N, T]
}

// SequencesConfig parameterises NewSequences.
type SequencesConfig struct {
	// N is the number of utterances, T frames each.
	N, T int
	// Feat is the frame feature dimension (default 8).
	Feat int
	// States is the number of hidden states (default 6).
	States int
	// Noise is the frame noise standard deviation (default 0.5).
	Noise float64
	// Seed fixes the dataset.
	Seed int64
}

// NewSequences builds the dataset.
func NewSequences(cfg SequencesConfig) *Sequences {
	if cfg.Feat == 0 {
		cfg.Feat = 8
	}
	if cfg.States == 0 {
		cfg.States = 6
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// State embeddings.
	emb := make([][]float64, cfg.States)
	for s := range emb {
		emb[s] = make([]float64, cfg.Feat)
		for j := range emb[s] {
			emb[s][j] = rng.NormFloat64()
		}
	}
	d := &Sequences{
		N: cfg.N, T: cfg.T, Feat: cfg.Feat, States: cfg.States,
		frames: make([]float64, cfg.N*cfg.T*cfg.Feat),
		labels: make([]int, cfg.N*cfg.T),
	}
	for n := 0; n < cfg.N; n++ {
		state := rng.Intn(cfg.States)
		for t := 0; t < cfg.T; t++ {
			// Sticky Markov dynamics: stay with probability 0.7.
			if rng.Float64() > 0.7 {
				state = rng.Intn(cfg.States)
			}
			d.labels[n*cfg.T+t] = state
			for j := 0; j < cfg.Feat; j++ {
				d.frames[(n*cfg.T+t)*cfg.Feat+j] = emb[state][j] + rng.NormFloat64()*cfg.Noise
			}
		}
	}
	return d
}

// Len returns the number of utterances.
func (d *Sequences) Len() int { return d.N }

// Batch samples utterances with replacement: x is [B, T, Feat], targets
// are per-frame labels (length B*T).
func (d *Sequences) Batch(rng *rand.Rand, size int) (*nn.Tensor, []int) {
	x := nn.NewTensor(size, d.T, d.Feat)
	targets := make([]int, size*d.T)
	vol := d.T * d.Feat
	for b := 0; b < size; b++ {
		n := rng.Intn(d.N)
		copy(x.Data[b*vol:(b+1)*vol], d.frames[n*vol:(n+1)*vol])
		copy(targets[b*d.T:(b+1)*d.T], d.labels[n*d.T:(n+1)*d.T])
	}
	return x, targets
}
