package data

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func TestImagesDeterministic(t *testing.T) {
	a := NewImages(ImagesConfig{N: 50, Seed: 1})
	b := NewImages(ImagesConfig{N: 50, Seed: 1})
	xa, la := a.All()
	xb, lb := b.All()
	for i := range xa.Data {
		if xa.Data[i] != xb.Data[i] {
			t.Fatal("same seed, different pixels")
		}
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed, different labels")
		}
	}
}

func TestImagesBatchShapes(t *testing.T) {
	d := NewImages(ImagesConfig{N: 100, C: 3, H: 12, W: 12, Classes: 10, Seed: 2})
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	rng := rand.New(rand.NewSource(3))
	x, labels := d.Batch(rng, 16)
	if x.Shape[0] != 16 || x.Shape[1] != 3 || x.Shape[2] != 12 || x.Shape[3] != 12 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if len(labels) != 16 {
		t.Fatalf("labels %d", len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label out of range: %d", l)
		}
	}
}

func TestImagesAreLearnable(t *testing.T) {
	// A tiny conv net must do far better than chance quickly.
	d := NewImages(ImagesConfig{N: 400, Classes: 4, Noise: 0.3, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	model := nn.NewSequential(
		nn.NewConv2D("c1", 3, 6, 3, rng),
		&nn.ReLU{},
		&nn.MaxPool2D{},
		&nn.Flatten{},
		nn.NewDense("d1", 6*5*5, 4, rng),
	)
	loss := &nn.SoftmaxCrossEntropy{}
	opt := &nn.SGD{LR: 0.05}
	for step := 0; step < 150; step++ {
		x, labels := d.Batch(rng, 32)
		model.ZeroGrad()
		loss.Forward(model.Forward(x), labels)
		model.Backward(loss.Backward())
		opt.Step(model.Params())
	}
	x, labels := d.All()
	acc := nn.Accuracy(model.Forward(x), labels)
	if acc < 0.6 {
		t.Errorf("accuracy after training = %v, want > 0.6 (chance 0.25)", acc)
	}
}

func TestCorpusBatchAndTargets(t *testing.T) {
	c := NewCorpus(CorpusConfig{Tokens: 5000, Vocab: 30, Seed: 6})
	if c.Len() != 5000 || c.Vocab != 30 {
		t.Fatalf("corpus meta wrong")
	}
	rng := rand.New(rand.NewSource(7))
	x, targets := c.Batch(rng, 4, 10)
	if x.Shape[0] != 4 || x.Shape[1] != 10 || len(targets) != 40 {
		t.Fatalf("batch shapes wrong: %v %d", x.Shape, len(targets))
	}
	for i, v := range x.Data {
		tok := int(v)
		if tok < 0 || tok >= 30 {
			t.Fatalf("token out of vocab: %v", v)
		}
		if targets[i] < 0 || targets[i] >= 30 {
			t.Fatalf("target out of vocab: %d", targets[i])
		}
	}
}

func TestCorpusHasLearnableStructure(t *testing.T) {
	// A bigram table (the optimal first-order model) must beat the uniform
	// baseline decisively: verify the Markov structure exists.
	c := NewCorpus(CorpusConfig{Tokens: 50000, Vocab: 20, Seed: 8})
	counts := make([][]float64, 20)
	for i := range counts {
		counts[i] = make([]float64, 20)
	}
	for i := 0; i+1 < c.Len(); i++ {
		counts[c.tokens[i]][c.tokens[i+1]]++
	}
	// Mean max-transition probability across rows.
	sum := 0.0
	for _, row := range counts {
		total, max := 0.0, 0.0
		for _, v := range row {
			total += v
			if v > max {
				max = v
			}
		}
		if total > 0 {
			sum += max / total
		}
	}
	if avg := sum / 20; avg < 0.3 {
		t.Errorf("mean argmax transition prob = %v; corpus too random to learn", avg)
	}
}

func TestSequencesShapesAndLabels(t *testing.T) {
	d := NewSequences(SequencesConfig{N: 40, T: 12, Seed: 9})
	if d.Len() != 40 {
		t.Fatalf("Len = %d", d.Len())
	}
	rng := rand.New(rand.NewSource(10))
	x, targets := d.Batch(rng, 8)
	if x.Shape[0] != 8 || x.Shape[1] != 12 || x.Shape[2] != d.Feat {
		t.Fatalf("shape %v", x.Shape)
	}
	if len(targets) != 8*12 {
		t.Fatalf("targets %d", len(targets))
	}
	for _, l := range targets {
		if l < 0 || l >= d.States {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestSequencesAreLearnable(t *testing.T) {
	d := NewSequences(SequencesConfig{N: 200, T: 10, Noise: 0.3, Seed: 11})
	rng := rand.New(rand.NewSource(12))
	model := nn.NewSequential(
		nn.NewSimpleRNN("r1", d.Feat, 16, rng),
		nn.NewTimeDistributed(nn.NewDense("out", 16, d.States, rng)),
	)
	loss := &nn.SoftmaxCrossEntropy{}
	opt := &nn.Momentum{LR: 0.05, Mu: 0.9, Nesterov: true}
	var final float64
	for step := 0; step < 200; step++ {
		x, targets := d.Batch(rng, 16)
		model.ZeroGrad()
		final = loss.Forward(model.Forward(x), targets)
		model.Backward(loss.Backward())
		nn.ClipGradNorm(model.Params(), 5)
		opt.Step(model.Params())
	}
	// Chance loss is log(6) ~ 1.79; the model should roughly halve it.
	if final > 1.0 {
		t.Errorf("sequence loss after training = %v", final)
	}
}
