// Package trace records gradient snapshots from live training so the
// fitting and compressibility studies (Figures 2, 7, 8) can analyse the
// same vectors the compressors saw. Snapshots are normalized by their l2
// norm, matching the paper's preprocessing in Appendix B.2.
package trace

import (
	"fmt"

	"repro/internal/tensor"
)

// Recorder captures gradient snapshots at chosen iterations.
type Recorder struct {
	// Normalize divides each snapshot by its l2 norm before storage
	// (paper's convention).
	Normalize bool

	want map[int]struct{}
	snap map[int][]float64
}

// NewRecorder records the given iterations (0-based).
func NewRecorder(normalize bool, iters ...int) *Recorder {
	r := &Recorder{Normalize: normalize, want: map[int]struct{}{}, snap: map[int][]float64{}}
	for _, i := range iters {
		r.want[i] = struct{}{}
	}
	return r
}

// Observe is the dist.TrainerConfig.OnGradient callback.
func (r *Recorder) Observe(iter int, flat []float64) {
	if _, ok := r.want[iter]; !ok {
		return
	}
	cp := tensor.Clone(flat)
	if r.Normalize {
		if n := tensor.Norm2(cp); n > 0 {
			tensor.Scale(1/n, cp)
		}
	}
	r.snap[iter] = cp
}

// Snapshot returns the recorded gradient for an iteration.
func (r *Recorder) Snapshot(iter int) ([]float64, error) {
	s, ok := r.snap[iter]
	if !ok {
		return nil, fmt.Errorf("trace: no snapshot for iteration %d", iter)
	}
	return s, nil
}

// Iterations returns the recorded iteration numbers in no particular
// order.
func (r *Recorder) Iterations() []int {
	out := make([]int, 0, len(r.snap))
	for i := range r.snap {
		out = append(out, i)
	}
	return out
}
