// Package trace records gradient snapshots from live training so the
// fitting and compressibility studies (Figures 2, 7, 8) can analyse the
// same vectors the compressors saw. Snapshots are normalized by their l2
// norm, matching the paper's preprocessing in Appendix B.2.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// Recorder captures gradient snapshots at chosen iterations.
//
// Recorder is safe for concurrent use: Observe, Snapshot and Iterations
// may be called from any goroutine. dist.Trainer happens to serialise
// its OnGradient callback today (only worker 0 taps, between step
// barriers), but the Recorder does not rely on that — a recorder shared
// across trainers, or a future per-worker tap, stays race-free. Observe
// copies the observed slice before storing it, so the caller may reuse
// the buffer immediately; slices returned by Snapshot are owned by the
// Recorder and must be treated as read-only.
type Recorder struct {
	// Normalize divides each snapshot by its l2 norm before storage
	// (paper's convention). Set it before the first Observe; it is read
	// without the lock.
	Normalize bool

	mu   sync.Mutex
	want map[int]struct{}  // immutable after NewRecorder; read lock-free
	snap map[int][]float64 // guarded by mu
}

// NewRecorder records the given iterations (0-based).
func NewRecorder(normalize bool, iters ...int) *Recorder {
	r := &Recorder{Normalize: normalize, want: map[int]struct{}{}, snap: map[int][]float64{}}
	for _, i := range iters {
		r.want[i] = struct{}{}
	}
	return r
}

// Observe is the dist.TrainerConfig.OnGradient callback.
func (r *Recorder) Observe(iter int, flat []float64) {
	if _, ok := r.want[iter]; !ok {
		// want is written only by NewRecorder, so the miss path stays
		// lock-free — the common case when sampling a few iterations out
		// of a long run.
		return
	}
	cp := tensor.Clone(flat)
	if r.Normalize {
		if n := tensor.Norm2(cp); n > 0 {
			tensor.Scale(1/n, cp)
		}
	}
	r.mu.Lock()
	r.snap[iter] = cp
	r.mu.Unlock()
}

// Snapshot returns the recorded gradient for an iteration. The returned
// slice is shared with the Recorder: callers must not modify it.
func (r *Recorder) Snapshot(iter int) ([]float64, error) {
	r.mu.Lock()
	s, ok := r.snap[iter]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("trace: no snapshot for iteration %d", iter)
	}
	return s, nil
}

// Iterations returns the recorded iteration numbers in ascending
// order.
func (r *Recorder) Iterations() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.snap))
	for i := range r.snap {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
