package trace

import (
	"math"
	"sync"
	"testing"
)

func TestRecorderCapturesRequestedIterations(t *testing.T) {
	r := NewRecorder(false, 0, 5)
	for i := 0; i < 10; i++ {
		r.Observe(i, []float64{float64(i), 1})
	}
	got, err := r.Snapshot(5)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Errorf("snapshot content = %v", got)
	}
	if _, err := r.Snapshot(3); err == nil {
		t.Error("unrequested iteration should error")
	}
	iters := r.Iterations()
	if len(iters) != 2 {
		t.Errorf("Iterations = %v", iters)
	}
}

func TestRecorderCopiesTheSlice(t *testing.T) {
	r := NewRecorder(false, 0)
	buf := []float64{1, 2}
	r.Observe(0, buf)
	buf[0] = 99 // the trainer reuses its buffer
	got, err := r.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("recorder must copy, not alias, the gradient")
	}
}

func TestRecorderNormalizes(t *testing.T) {
	r := NewRecorder(true, 0)
	r.Observe(0, []float64{3, 4})
	got, err := r.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	norm := math.Hypot(got[0], got[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("normalized snapshot has norm %v", norm)
	}
}

// TestRecorderConcurrentObserve hammers one Recorder from many
// goroutines mixing Observe with the read methods — the documented
// concurrency contract. Run under -race (CI does) this is the
// regression test for the unlocked-map version of the Recorder.
func TestRecorderConcurrentObserve(t *testing.T) {
	const goroutines, iters = 8, 200
	want := make([]int, iters)
	for i := range want {
		want[i] = i
	}
	r := NewRecorder(true, want...)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := []float64{3, 4}
			for i := g; i < iters; i += goroutines {
				r.Observe(i, buf)
				if s, err := r.Snapshot(i); err != nil || len(s) != 2 {
					t.Errorf("snapshot %d: %v (len %d)", i, err, len(s))
					return
				}
				_ = r.Iterations()
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Iterations()); got != iters {
		t.Errorf("recorded %d iterations, want %d", got, iters)
	}
}

func TestRecorderZeroGradient(t *testing.T) {
	r := NewRecorder(true, 0)
	r.Observe(0, []float64{0, 0})
	got, err := r.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero norm must not produce NaNs.
	if math.IsNaN(got[0]) {
		t.Error("zero gradient normalized to NaN")
	}
}
