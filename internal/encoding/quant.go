package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Quantized pair formats: same (uint32 index, value) layout as
// FormatPairs but with the value narrowed below float32. They stack on
// top of k-selection — the sparsifier decides *which* values ship, the
// quantizer decides *how wide* — and the error-feedback wrapper in
// internal/compress absorbs the quantization residual exactly as it
// absorbs the sparsification residual, so narrower wire values trade
// per-step noise (corrected over time) for bytes, not convergence.
const (
	// FormatPairsF16 encodes (uint32 index, IEEE 754 binary16 value): 6
	// bytes per non-zero. Values are converted float64 -> float32 (Go's
	// round-to-nearest-even) -> binary16 (again round-to-nearest-even);
	// the double rounding is deterministic and documented as part of the
	// wire contract. Out-of-range magnitudes overflow to ±Inf exactly as
	// IEEE conversion does.
	FormatPairsF16 Format = 5
	// FormatPairsBF16 encodes (uint32 index, bfloat16 value): 6 bytes per
	// non-zero. bfloat16 keeps float32's exponent range with an 8-bit
	// mantissa, so it never overflows where float32 didn't — the usual
	// trade against binary16's extra mantissa bits.
	FormatPairsBF16 Format = 6
	// FormatPairsI8 encodes one float32 step s after the header, then
	// (uint32 index, int8 quantum) per non-zero: 9 + 4 + 5k bytes. The
	// encoder sets s = float32(absmax/127) over the finite values and
	// stores q = clamp(roundEven(v/s), -127, 127); the decoder returns
	// exactly float64(q)*float64(s) (an exact product: |q| <= 127 and a
	// float32 step both fit a float64 mantissa with room to spare, so
	// decoding is bit-reproducible everywhere). NaN encodes as 0, ±Inf
	// saturates to ±127; if s is 0 (all-zero or no finite values) every
	// quantum is forced to 0.
	FormatPairsI8 Format = 7
)

// PairsF16Size returns the encoded size in bytes of k non-zeros of a
// d-dimensional vector in binary16 pair format.
func PairsF16Size(d, k int) int { return headerSize + 6*k }

// PairsBF16Size returns the encoded size in bytes in bfloat16 pair format.
func PairsBF16Size(d, k int) int { return headerSize + 6*k }

// PairsI8Size returns the encoded size in bytes in absmax-scaled int8
// pair format: header, one float32 step, then 5 bytes per non-zero.
func PairsI8Size(d, k int) int { return headerSize + 4 + 5*k }

// f32ToF16 converts float32 to IEEE 754 binary16 with
// round-to-nearest-even, the hardware conversion semantics.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & 0x8000)
	exp := int((b >> 23) & 0xFF)
	mant := b & 0x007FFFFF
	if exp == 0xFF { // Inf or NaN
		if mant != 0 {
			return sign | 0x7E00 // canonical quiet NaN
		}
		return sign | 0x7C00
	}
	e := exp - 127 + 15
	if e >= 0x1F {
		return sign | 0x7C00 // overflow to Inf
	}
	if e <= 0 {
		// Subnormal binary16 (or underflow to zero). Shift the mantissa
		// with its implicit bit right, rounding to nearest even.
		if e < -10 {
			return sign
		}
		m := mant | 0x00800000
		shift := uint(14 - e) // 14..24
		half := uint32(1) << (shift - 1)
		return sign | uint16((m+half-1+((m>>shift)&1))>>shift)
	}
	// Normal: round 23-bit mantissa to 10 bits; a carry out of the
	// mantissa propagates into the exponent by the addition below,
	// including the carry from 0x1E to the Inf encoding.
	rounded := (mant + 0xFFF + ((mant >> 13) & 1)) >> 13
	return sign | uint16(uint32(e)<<10+rounded)
}

// f16ToF32 converts IEEE 754 binary16 to float32 exactly (binary16 is a
// subset of float32, so no rounding occurs).
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0x1F: // Inf or NaN
		if mant != 0 {
			return math.Float32frombits(sign | 0x7FC00000)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal binary16: normalize into a float32 normal.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (mant&0x3FF)<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// f32ToBF16 converts float32 to bfloat16 with round-to-nearest-even.
func f32ToBF16(f float32) uint16 {
	b := math.Float32bits(f)
	if b&0x7FFFFFFF > 0x7F800000 {
		// NaN: truncation could round a signalling pattern to Inf; force a
		// quiet bit instead.
		return uint16(b>>16) | 0x0040
	}
	return uint16((b + 0x7FFF + ((b >> 16) & 1)) >> 16)
}

// bf16ToF32 converts bfloat16 to float32 exactly.
func bf16ToF32(h uint16) float32 { return math.Float32frombits(uint32(h) << 16) }

// i8Step computes the FormatPairsI8 step for a value stream: absmax over
// the finite values divided by 127, rounded to float32. A zero absmax
// (all zeros, or nothing finite) yields step 0, which forces every
// quantum to 0; an absmax so large that float32(absmax/127) overflows
// clamps to MaxFloat32 so the stored step stays finite.
func i8Step(vals []float64) float32 {
	absmax := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > absmax && !math.IsInf(v, 0) {
			// NaN fails a > absmax on its own; only Inf needs the guard.
			absmax = a
		}
	}
	if absmax == 0 {
		return 0
	}
	s := float32(absmax / 127)
	if math.IsInf(float64(s), 0) {
		return math.MaxFloat32
	}
	return s
}

// quantizeI8 maps one value onto the int8 grid with the given step:
// clamp(roundEven(v/step), -127, 127), with NaN -> 0, ±Inf -> ±127, and
// everything -> 0 when step is 0. -128 is never produced, keeping the
// grid symmetric.
func quantizeI8(v float64, step float32) int8 {
	if step == 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return 127
	}
	if math.IsInf(v, -1) {
		return -127
	}
	q := math.RoundToEven(v / float64(step))
	if q > 127 {
		q = 127
	} else if q < -127 {
		q = -127
	}
	return int8(q)
}

func appendPairsF16(dst []byte, s *tensor.Sparse) []byte {
	dst, buf := extend(dst, PairsF16Size(s.Dim, s.NNZ()))
	putHeader(buf, FormatPairsF16, s.Dim, s.NNZ())
	off := headerSize
	for i, j := range s.Idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(j))
		binary.LittleEndian.PutUint16(buf[off+4:], f32ToF16(float32(s.Vals[i])))
		off += 6
	}
	return dst
}

func decodePairsF16(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	if len(buf) != PairsF16Size(dim, nnz) {
		return fmt.Errorf("encoding: pairs-f16 size %d, want %d", len(buf), PairsF16Size(dim, nnz))
	}
	s.Reset(dim)
	s.Grow(nnz)
	off := headerSize
	for i := 0; i < nnz; i++ {
		j := int32(binary.LittleEndian.Uint32(buf[off:]))
		v := float64(f16ToF32(binary.LittleEndian.Uint16(buf[off+4:])))
		s.Append(j, v)
		off += 6
	}
	return s.Validate()
}

func appendPairsBF16(dst []byte, s *tensor.Sparse) []byte {
	dst, buf := extend(dst, PairsBF16Size(s.Dim, s.NNZ()))
	putHeader(buf, FormatPairsBF16, s.Dim, s.NNZ())
	off := headerSize
	for i, j := range s.Idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(j))
		binary.LittleEndian.PutUint16(buf[off+4:], f32ToBF16(float32(s.Vals[i])))
		off += 6
	}
	return dst
}

func decodePairsBF16(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	if len(buf) != PairsBF16Size(dim, nnz) {
		return fmt.Errorf("encoding: pairs-bf16 size %d, want %d", len(buf), PairsBF16Size(dim, nnz))
	}
	s.Reset(dim)
	s.Grow(nnz)
	off := headerSize
	for i := 0; i < nnz; i++ {
		j := int32(binary.LittleEndian.Uint32(buf[off:]))
		v := float64(bf16ToF32(binary.LittleEndian.Uint16(buf[off+4:])))
		s.Append(j, v)
		off += 6
	}
	return s.Validate()
}

func appendPairsI8(dst []byte, s *tensor.Sparse) []byte {
	dst, buf := extend(dst, PairsI8Size(s.Dim, s.NNZ()))
	putHeader(buf, FormatPairsI8, s.Dim, s.NNZ())
	step := i8Step(s.Vals)
	binary.LittleEndian.PutUint32(buf[headerSize:], math.Float32bits(step))
	off := headerSize + 4
	for i, j := range s.Idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(j))
		buf[off+4] = byte(quantizeI8(s.Vals[i], step))
		off += 5
	}
	return dst
}

func decodePairsI8(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	if len(buf) != PairsI8Size(dim, nnz) {
		return fmt.Errorf("encoding: pairs-i8 size %d, want %d", len(buf), PairsI8Size(dim, nnz))
	}
	step := math.Float32frombits(binary.LittleEndian.Uint32(buf[headerSize:]))
	if math.IsNaN(float64(step)) || math.IsInf(float64(step), 0) || step < 0 {
		return fmt.Errorf("encoding: pairs-i8 step %v not a finite non-negative float", step)
	}
	s.Reset(dim)
	s.Grow(nnz)
	off := headerSize + 4
	for i := 0; i < nnz; i++ {
		j := int32(binary.LittleEndian.Uint32(buf[off:]))
		v := float64(int8(buf[off+4])) * float64(step)
		s.Append(j, v)
		off += 5
	}
	return s.Validate()
}

// RoundTripValues applies format f's value narrowing to vals in place:
// after the call, vals holds exactly what a receiver would decode. This
// is what the error-feedback wrapper uses to pre-absorb the quantization
// residual — it must match the encode+decode pipeline bit for bit, so
// every branch here calls the same conversion helpers the wire path
// does. FormatPairs64 is the identity (lossless); FormatPairsI8 shares
// the encoder's absmax step, so the round trip is exact only for the
// whole value stream an encoder would see at once (chunked encoders
// compute per-chunk steps).
func RoundTripValues(f Format, vals []float64) error {
	switch f {
	case FormatPairs, FormatBitmap, FormatDense, FormatDeltaVarint:
		for i, v := range vals {
			vals[i] = float64(float32(v))
		}
	case FormatPairs64:
		// lossless
	case FormatPairsF16:
		for i, v := range vals {
			vals[i] = float64(f16ToF32(f32ToF16(float32(v))))
		}
	case FormatPairsBF16:
		for i, v := range vals {
			vals[i] = float64(bf16ToF32(f32ToBF16(float32(v))))
		}
	case FormatPairsI8:
		step := i8Step(vals)
		for i, v := range vals {
			vals[i] = float64(quantizeI8(v, step)) * float64(step)
		}
	default:
		return fmt.Errorf("encoding: unknown format %d", f)
	}
	return nil
}
