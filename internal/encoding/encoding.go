// Package encoding provides the wire formats used to ship sparse and dense
// gradients between workers: (uint32 index, float32 value) pair encoding,
// a bitmap+values encoding that wins at moderate densities, dense float32
// encoding for the no-compression baseline, delta-varint index gaps, a
// lossless float64 pair format for bit-exact cluster training, and exact
// size accounting that the network cost model and the instrumented
// cluster transport both consume.
package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Format identifies a gradient wire format.
type Format int

const (
	// FormatPairs encodes (uint32 index, float32 value) per non-zero: 8
	// bytes each. Best for aggressive sparsity.
	FormatPairs Format = iota
	// FormatBitmap encodes a d-bit presence bitmap plus packed float32
	// values: d/8 + 4k bytes. Wins when density exceeds ~1/16.
	FormatBitmap
	// FormatDense encodes all d values as float32: 4d bytes.
	FormatDense
)

// header layout: 1 byte format, 4 bytes dim, 4 bytes nnz.
const headerSize = 9

// PairsSize returns the encoded size in bytes of k non-zeros of a
// d-dimensional vector in pair format.
func PairsSize(d, k int) int { return headerSize + 8*k }

// BitmapSize returns the encoded size in bytes in bitmap format.
func BitmapSize(d, k int) int { return headerSize + (d+7)/8 + 4*k }

// DenseSize returns the encoded size in bytes of the dense format.
func DenseSize(d int) int { return headerSize + 4*d }

// BestFormat returns the smallest format for the given dimension and
// non-zero count, with its size in bytes.
func BestFormat(d, k int) (Format, int) {
	best, size := FormatPairs, PairsSize(d, k)
	if s := BitmapSize(d, k); s < size {
		best, size = FormatBitmap, s
	}
	if s := DenseSize(d); s < size {
		best, size = FormatDense, s
	}
	return best, size
}

// Encode serialises s in the given format.
func Encode(s *tensor.Sparse, f Format) ([]byte, error) {
	if s.Dim > math.MaxUint32 || s.NNZ() > math.MaxUint32 {
		return nil, fmt.Errorf("encoding: vector too large")
	}
	switch f {
	case FormatPairs:
		return encodePairs(s), nil
	case FormatBitmap:
		return encodeBitmap(s), nil
	case FormatDense:
		return encodeDense(s), nil
	case FormatDeltaVarint:
		return EncodeDeltaVarint(s)
	case FormatPairs64:
		return encodePairs64(s), nil
	default:
		return nil, fmt.Errorf("encoding: unknown format %d", f)
	}
}

// EncodeBest serialises s in whichever format is smallest.
func EncodeBest(s *tensor.Sparse) ([]byte, error) {
	f, _ := BestFormat(s.Dim, s.NNZ())
	return Encode(s, f)
}

func putHeader(buf []byte, f Format, dim, nnz int) {
	buf[0] = byte(f)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(dim))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(nnz))
}

func encodePairs(s *tensor.Sparse) []byte {
	buf := make([]byte, PairsSize(s.Dim, s.NNZ()))
	putHeader(buf, FormatPairs, s.Dim, s.NNZ())
	off := headerSize
	for i, j := range s.Idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(j))
		binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(float32(s.Vals[i])))
		off += 8
	}
	return buf
}

func encodeBitmap(s *tensor.Sparse) []byte {
	buf := make([]byte, BitmapSize(s.Dim, s.NNZ()))
	putHeader(buf, FormatBitmap, s.Dim, s.NNZ())
	bitmap := buf[headerSize : headerSize+(s.Dim+7)/8]
	for _, j := range s.Idx {
		bitmap[j/8] |= 1 << (uint(j) % 8)
	}
	off := headerSize + len(bitmap)
	for _, v := range s.Vals {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
		off += 4
	}
	return buf
}

func encodeDense(s *tensor.Sparse) []byte {
	buf := make([]byte, DenseSize(s.Dim))
	putHeader(buf, FormatDense, s.Dim, s.NNZ())
	off := headerSize
	dense := s.Dense()
	for _, v := range dense {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
		off += 4
	}
	return buf
}

// Decode deserialises a gradient encoded by Encode. All formats except
// FormatPairs64 round-trip values through float32, matching the precision
// real systems transmit. Decode never panics on malformed input: header
// fields are validated against the buffer length before any
// size-proportional allocation, so hostile headers claiming huge
// dimensions or counts fail cleanly.
func Decode(buf []byte) (*tensor.Sparse, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("encoding: truncated header")
	}
	f := Format(buf[0])
	dim := int(binary.LittleEndian.Uint32(buf[1:5]))
	nnz := int(binary.LittleEndian.Uint32(buf[5:9]))
	if nnz > dim {
		return nil, fmt.Errorf("encoding: nnz %d exceeds dim %d", nnz, dim)
	}
	switch f {
	case FormatPairs:
		return decodePairs(buf, dim, nnz)
	case FormatBitmap:
		return decodeBitmap(buf, dim, nnz)
	case FormatDense:
		return decodeDense(buf, dim, nnz)
	case FormatDeltaVarint:
		return decodeDeltaVarint(buf, dim, nnz)
	case FormatPairs64:
		return decodePairs64(buf, dim, nnz)
	default:
		return nil, fmt.Errorf("encoding: unknown format byte %d", buf[0])
	}
}

func decodePairs(buf []byte, dim, nnz int) (*tensor.Sparse, error) {
	if len(buf) != PairsSize(dim, nnz) {
		return nil, fmt.Errorf("encoding: pairs size %d, want %d", len(buf), PairsSize(dim, nnz))
	}
	idx := make([]int32, nnz)
	vals := make([]float64, nnz)
	off := headerSize
	for i := 0; i < nnz; i++ {
		idx[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:])))
		off += 8
	}
	return tensor.NewSparse(dim, idx, vals)
}

func decodeBitmap(buf []byte, dim, nnz int) (*tensor.Sparse, error) {
	if len(buf) != BitmapSize(dim, nnz) {
		return nil, fmt.Errorf("encoding: bitmap size %d, want %d", len(buf), BitmapSize(dim, nnz))
	}
	bitmap := buf[headerSize : headerSize+(dim+7)/8]
	if dim%8 != 0 && bitmap[len(bitmap)-1]>>(uint(dim)%8) != 0 {
		// Set padding bits past dim would make two distinct buffers decode
		// identically; reject the non-canonical form.
		return nil, fmt.Errorf("encoding: bitmap padding bits set past dim %d", dim)
	}
	idx := make([]int32, 0, nnz)
	for j := 0; j < dim; j++ {
		if bitmap[j/8]&(1<<(uint(j)%8)) != 0 {
			idx = append(idx, int32(j))
		}
	}
	if len(idx) != nnz {
		return nil, fmt.Errorf("encoding: bitmap popcount %d, header says %d", len(idx), nnz)
	}
	vals := make([]float64, nnz)
	off := headerSize + len(bitmap)
	for i := range vals {
		vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
	}
	return tensor.NewSparse(dim, idx, vals)
}

func decodeDense(buf []byte, dim, nnz int) (*tensor.Sparse, error) {
	if len(buf) != DenseSize(dim) {
		return nil, fmt.Errorf("encoding: dense size %d, want %d", len(buf), DenseSize(dim))
	}
	idx := make([]int32, 0, nnz)
	vals := make([]float64, 0, nnz)
	off := headerSize
	for j := 0; j < dim; j++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if v != 0 {
			idx = append(idx, int32(j))
			vals = append(vals, float64(v))
		}
	}
	return tensor.NewSparse(dim, idx, vals)
}
