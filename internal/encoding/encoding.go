// Package encoding provides the wire formats used to ship sparse and dense
// gradients between workers: (uint32 index, float32 value) pair encoding,
// a bitmap+values encoding that wins at moderate densities, dense float32
// encoding for the no-compression baseline, delta-varint index gaps, a
// lossless float64 pair format for bit-exact cluster training, quantized
// pair formats (binary16, bfloat16, absmax-scaled int8) that narrow the
// value below float32, and exact size accounting that the network cost
// model and the instrumented cluster transport both consume.
//
// Exact encoded sizes, for a d-dimensional vector with k stored
// non-zeros (every format starts with the 9-byte header: 1 format byte,
// uint32 dim, uint32 nnz):
//
//	Format           Size in bytes      Value width
//	FormatPairs      9 + 8k             float32 (4 B) + uint32 index
//	FormatBitmap     9 + ceil(d/8)+4k   float32 (4 B) + d-bit bitmap
//	FormatDense      9 + 4d             float32 (4 B), all d positions
//	FormatDeltaVarint 9 + 4k + gaps     float32 (4 B) + varint index gaps
//	                                    (data-dependent, <= 9+9k)
//	FormatPairs64    9 + 12k            float64 (8 B) + uint32 index, lossless
//	FormatPairsF16   9 + 6k             binary16 (2 B) + uint32 index
//	FormatPairsBF16  9 + 6k             bfloat16 (2 B) + uint32 index
//	FormatPairsI8    9 + 4 + 5k         int8 (1 B) + uint32 index,
//	                                    one shared float32 step
//
// Size returns these closed forms programmatically; BestFormat picks the
// smallest format that preserves a requested value precision.
package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Format identifies a gradient wire format.
type Format int

const (
	// FormatPairs encodes (uint32 index, float32 value) per non-zero: 8
	// bytes each. Best for aggressive sparsity.
	FormatPairs Format = iota
	// FormatBitmap encodes a d-bit presence bitmap plus packed float32
	// values: d/8 + 4k bytes. Wins when density exceeds ~1/16.
	FormatBitmap
	// FormatDense encodes all d values as float32: 4d bytes.
	FormatDense
)

// String implements fmt.Stringer; the names appear in bench records and
// telemetry attributions.
func (f Format) String() string {
	switch f {
	case FormatPairs:
		return "pairs"
	case FormatBitmap:
		return "bitmap"
	case FormatDense:
		return "dense"
	case FormatDeltaVarint:
		return "delta-varint"
	case FormatPairs64:
		return "pairs64"
	case FormatPairsF16:
		return "pairs-f16"
	case FormatPairsBF16:
		return "pairs-bf16"
	case FormatPairsI8:
		return "pairs-i8"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// header layout: 1 byte format, 4 bytes dim, 4 bytes nnz.
const headerSize = 9

// PairsSize returns the encoded size in bytes of k non-zeros of a
// d-dimensional vector in pair format.
func PairsSize(d, k int) int { return headerSize + 8*k }

// BitmapSize returns the encoded size in bytes in bitmap format.
func BitmapSize(d, k int) int { return headerSize + (d+7)/8 + 4*k }

// DenseSize returns the encoded size in bytes of the dense format.
func DenseSize(d int) int { return headerSize + 4*d }

// Size returns the exact encoded size in bytes of k non-zeros of a
// d-dimensional vector in format f. FormatDeltaVarint has a
// data-dependent size (use the encoded buffer's length) and reports an
// error, as do unknown formats.
func Size(f Format, d, k int) (int, error) {
	switch f {
	case FormatPairs:
		return PairsSize(d, k), nil
	case FormatBitmap:
		return BitmapSize(d, k), nil
	case FormatDense:
		return DenseSize(d), nil
	case FormatPairs64:
		return Pairs64Size(d, k), nil
	case FormatPairsF16:
		return PairsF16Size(d, k), nil
	case FormatPairsBF16:
		return PairsBF16Size(d, k), nil
	case FormatPairsI8:
		return PairsI8Size(d, k), nil
	case FormatDeltaVarint:
		return 0, fmt.Errorf("encoding: delta-varint size is data-dependent")
	default:
		return 0, fmt.Errorf("encoding: unknown format %d", f)
	}
}

// precisionClass orders formats by value width for BestFormat: int8 <
// {binary16, bfloat16} < float32 < float64. binary16 and bfloat16 share
// a class because neither is uniformly more precise than the other
// (binary16 has more mantissa bits, bfloat16 more exponent range).
func precisionClass(f Format) int {
	switch f {
	case FormatPairsI8:
		return 0
	case FormatPairsF16, FormatPairsBF16:
		return 1
	case FormatPairs64:
		return 3
	default: // float32 value formats
		return 2
	}
}

// atLeastAsPrecise reports whether candidate preserves at least the
// value precision of value. Within the 16-bit class only the identical
// format qualifies, since binary16 and bfloat16 are not ordered.
func atLeastAsPrecise(candidate, value Format) bool {
	cc, vc := precisionClass(candidate), precisionClass(value)
	if cc != vc {
		return cc > vc
	}
	if cc == 1 {
		return candidate == value
	}
	return true
}

// BestFormat returns the smallest data-independent-size format for the
// given dimension and non-zero count that preserves at least the value
// precision of the value format, with its exact size in bytes. Callers
// that only care about float32 precision (the historical assumption)
// pass FormatPairs; passing FormatPairsI8 lets the quantized formats
// compete, and passing FormatPairs64 always yields FormatPairs64.
// FormatDeltaVarint never wins (its size is data-dependent).
func BestFormat(d, k int, value Format) (Format, int) {
	candidates := [...]struct {
		f Format
		s int
	}{
		{FormatPairsI8, PairsI8Size(d, k)},
		{FormatPairsF16, PairsF16Size(d, k)},
		{FormatPairsBF16, PairsBF16Size(d, k)},
		{FormatPairs, PairsSize(d, k)},
		{FormatBitmap, BitmapSize(d, k)},
		{FormatDense, DenseSize(d)},
		{FormatPairs64, Pairs64Size(d, k)},
	}
	best, size := Format(-1), 0
	for _, c := range candidates {
		if !atLeastAsPrecise(c.f, value) {
			continue
		}
		if best < 0 || c.s < size {
			best, size = c.f, c.s
		}
	}
	return best, size
}

// Encode serialises s in the given format.
func Encode(s *tensor.Sparse, f Format) ([]byte, error) {
	return EncodeTo(nil, s, f)
}

// EncodeTo appends the serialisation of s in the given format to dst
// (which may be nil) and returns the extended buffer. Callers that keep
// the returned buffer and pass `buf[:0]` back in amortise the wire
// allocation away — the streaming pipeline encodes every chunk of every
// step into recycled buffers this way.
//
//sidco:hotpath
func EncodeTo(dst []byte, s *tensor.Sparse, f Format) ([]byte, error) {
	if s.Dim > math.MaxUint32 || s.NNZ() > math.MaxUint32 {
		return nil, fmt.Errorf("encoding: vector too large") //sidco:alloc input-validation error path, not steady state
	}
	switch f {
	case FormatPairs:
		return appendPairs(dst, s), nil
	case FormatBitmap:
		return appendBitmap(dst, s), nil
	case FormatDense:
		return appendDense(dst, s), nil
	case FormatDeltaVarint:
		return appendDeltaVarint(dst, s), nil
	case FormatPairs64:
		return appendPairs64(dst, s), nil
	case FormatPairsF16:
		return appendPairsF16(dst, s), nil
	case FormatPairsBF16:
		return appendPairsBF16(dst, s), nil
	case FormatPairsI8:
		return appendPairsI8(dst, s), nil
	default:
		return nil, fmt.Errorf("encoding: unknown format %d", f) //sidco:alloc input-validation error path, not steady state
	}
}

// EncodeBest serialises s in whichever float32-precision format is
// smallest.
func EncodeBest(s *tensor.Sparse) ([]byte, error) {
	f, _ := BestFormat(s.Dim, s.NNZ(), FormatPairs)
	return Encode(s, f)
}

// extend grows dst by n bytes and returns the full buffer plus the
// writable window for those n bytes. The window is not zeroed: fixed-
// layout encoders overwrite every byte they claim.
func extend(dst []byte, n int) (all, w []byte) {
	if cap(dst)-len(dst) >= n {
		all = dst[:len(dst)+n]
	} else {
		all = append(dst, make([]byte, n)...)
	}
	return all, all[len(all)-n:]
}

func putHeader(buf []byte, f Format, dim, nnz int) {
	buf[0] = byte(f)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(dim))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(nnz))
}

func appendPairs(dst []byte, s *tensor.Sparse) []byte {
	dst, buf := extend(dst, PairsSize(s.Dim, s.NNZ()))
	putHeader(buf, FormatPairs, s.Dim, s.NNZ())
	off := headerSize
	for i, j := range s.Idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(j))
		binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(float32(s.Vals[i])))
		off += 8
	}
	return dst
}

func appendBitmap(dst []byte, s *tensor.Sparse) []byte {
	dst, buf := extend(dst, BitmapSize(s.Dim, s.NNZ()))
	putHeader(buf, FormatBitmap, s.Dim, s.NNZ())
	bitmap := buf[headerSize : headerSize+(s.Dim+7)/8]
	clear(bitmap) // reused windows carry stale bits
	for _, j := range s.Idx {
		bitmap[j/8] |= 1 << (uint(j) % 8)
	}
	off := headerSize + len(bitmap)
	for _, v := range s.Vals {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
		off += 4
	}
	return dst
}

func appendDense(dst []byte, s *tensor.Sparse) []byte {
	dst, buf := extend(dst, DenseSize(s.Dim))
	putHeader(buf, FormatDense, s.Dim, s.NNZ())
	// Scatter directly into the wire buffer: positions without a stored
	// element encode float32(0), which is exactly the 4 zero bytes the
	// cleared window holds.
	vals := buf[headerSize:]
	clear(vals)
	for i, j := range s.Idx {
		binary.LittleEndian.PutUint32(vals[4*int(j):], math.Float32bits(float32(s.Vals[i])))
	}
	return dst
}

// Decode deserialises a gradient encoded by Encode. All formats except
// FormatPairs64 round-trip values through float32, matching the precision
// real systems transmit. Decode never panics on malformed input: header
// fields are validated against the buffer length before any
// size-proportional allocation, so hostile headers claiming huge
// dimensions or counts fail cleanly.
func Decode(buf []byte) (*tensor.Sparse, error) {
	s := &tensor.Sparse{}
	if err := DecodeInto(s, buf); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeInto is Decode over caller-owned sparse storage: s is Reset and
// filled in place, so a receive loop decoding into the same vector does
// no per-message allocation once its capacity has warmed up. s's prior
// contents are never visible in the result — on error s may hold partial
// data, but a nil error guarantees the full Sparse invariant (DecodeInto
// re-validates untrusted index streams just as Decode did).
//
//sidco:hotpath
func DecodeInto(s *tensor.Sparse, buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("encoding: truncated header") //sidco:alloc corrupt-input error path, not steady state
	}
	f := Format(buf[0])
	dim := int(binary.LittleEndian.Uint32(buf[1:5]))
	nnz := int(binary.LittleEndian.Uint32(buf[5:9]))
	if nnz > dim {
		return fmt.Errorf("encoding: nnz %d exceeds dim %d", nnz, dim) //sidco:alloc corrupt-input error path, not steady state
	}
	switch f {
	case FormatPairs:
		return decodePairs(s, buf, dim, nnz)
	case FormatBitmap:
		return decodeBitmap(s, buf, dim, nnz)
	case FormatDense:
		return decodeDense(s, buf, dim, nnz)
	case FormatDeltaVarint:
		return decodeDeltaVarint(s, buf, dim, nnz)
	case FormatPairs64:
		return decodePairs64(s, buf, dim, nnz)
	case FormatPairsF16:
		return decodePairsF16(s, buf, dim, nnz)
	case FormatPairsBF16:
		return decodePairsBF16(s, buf, dim, nnz)
	case FormatPairsI8:
		return decodePairsI8(s, buf, dim, nnz)
	default:
		return fmt.Errorf("encoding: unknown format byte %d", buf[0]) //sidco:alloc corrupt-input error path, not steady state
	}
}

func decodePairs(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	if len(buf) != PairsSize(dim, nnz) {
		return fmt.Errorf("encoding: pairs size %d, want %d", len(buf), PairsSize(dim, nnz))
	}
	s.Reset(dim)
	s.Grow(nnz)
	off := headerSize
	for i := 0; i < nnz; i++ {
		j := int32(binary.LittleEndian.Uint32(buf[off:]))
		v := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:])))
		s.Append(j, v)
		off += 8
	}
	// The index stream is untrusted wire data; re-establish the Sparse
	// invariant exactly as the allocating path's NewSparse did.
	return s.Validate()
}

func decodeBitmap(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	if len(buf) != BitmapSize(dim, nnz) {
		return fmt.Errorf("encoding: bitmap size %d, want %d", len(buf), BitmapSize(dim, nnz))
	}
	bitmap := buf[headerSize : headerSize+(dim+7)/8]
	if dim%8 != 0 && bitmap[len(bitmap)-1]>>(uint(dim)%8) != 0 {
		// Set padding bits past dim would make two distinct buffers decode
		// identically; reject the non-canonical form.
		return fmt.Errorf("encoding: bitmap padding bits set past dim %d", dim)
	}
	s.Reset(dim)
	s.Grow(nnz)
	for j := 0; j < dim; j++ {
		if bitmap[j/8]&(1<<(uint(j)%8)) != 0 {
			s.Idx = append(s.Idx, int32(j))
		}
	}
	if len(s.Idx) != nnz {
		return fmt.Errorf("encoding: bitmap popcount %d, header says %d", len(s.Idx), nnz)
	}
	off := headerSize + len(bitmap)
	for i := 0; i < nnz; i++ {
		s.Vals = append(s.Vals, float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))))
		off += 4
	}
	return nil
}

func decodeDense(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	if len(buf) != DenseSize(dim) {
		return fmt.Errorf("encoding: dense size %d, want %d", len(buf), DenseSize(dim))
	}
	s.Reset(dim)
	s.Grow(nnz)
	off := headerSize
	for j := 0; j < dim; j++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if v != 0 {
			s.Append(int32(j), float64(v))
		}
	}
	return nil
}
