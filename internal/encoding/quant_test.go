package encoding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// TestF16RoundTripExhaustive walks every binary16 bit pattern: decoding
// to float32 and re-encoding must reproduce the pattern exactly (the
// idempotency DecodeInto/EncodeTo reuse paths rely on), except that
// non-canonical NaN payloads collapse to the canonical quiet NaN.
func TestF16RoundTripExhaustive(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		v := f16ToF32(uint16(h))
		got := f32ToF16(v)
		isNaN := h&0x7C00 == 0x7C00 && h&0x3FF != 0
		if isNaN {
			if got&0x7C00 != 0x7C00 || got&0x3FF == 0 {
				t.Fatalf("NaN %#04x decoded+re-encoded to non-NaN %#04x", h, got)
			}
			continue
		}
		if got != uint16(h) {
			t.Fatalf("binary16 %#04x -> %v -> %#04x, not idempotent", h, v, got)
		}
	}
}

// TestBF16RoundTripExhaustive is the bfloat16 analogue.
func TestBF16RoundTripExhaustive(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		v := bf16ToF32(uint16(h))
		got := f32ToBF16(v)
		isNaN := h&0x7F80 == 0x7F80 && h&0x7F != 0
		if isNaN {
			if got&0x7F80 != 0x7F80 || got&0x7F == 0 {
				t.Fatalf("NaN %#04x decoded+re-encoded to non-NaN %#04x", h, got)
			}
			continue
		}
		if got != uint16(h) {
			t.Fatalf("bfloat16 %#04x -> %v -> %#04x, not idempotent", h, v, got)
		}
	}
}

// TestF16ConversionBounds property-checks the float32 -> binary16
// rounding error: for finite inputs inside binary16's normal range the
// relative error is bounded by half a 10-bit ULP, and specials map to
// specials.
func TestF16ConversionBounds(t *testing.T) {
	check := func(x float32) bool {
		h := f32ToF16(x)
		back := float64(f16ToF32(h))
		fx := float64(x)
		switch {
		case math.IsNaN(fx):
			return math.IsNaN(back)
		case math.IsInf(fx, 0) || math.Abs(fx) >= 65520: // overflow threshold
			return math.IsInf(back, int(math.Copysign(1, fx)))
		case math.Abs(fx) < 65504 && math.Abs(fx) >= 6.103515625e-05: // normal range
			return math.Abs(back-fx) <= math.Abs(fx)*(1.0/2048)
		default: // subnormal range: absolute error at most half the smallest step
			return math.Abs(back-fx) <= 5.960464477539063e-08/2
		}
	}
	cfg := &quick.Config{MaxCount: 20000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestI8QuantizationInvariants property-checks the absmax-scaled int8
// scheme over random value streams mixed with specials: decoded values
// stay on the step grid within ±127 steps, finite values with a normal
// step land within half a step of the input, NaN maps to 0, ±Inf
// saturates, and a stream with no finite non-zero value decodes all-zero.
func TestI8QuantizationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(10) {
			case 0:
				vals[i] = math.NaN()
			case 1:
				vals[i] = math.Inf(1 - 2*rng.Intn(2))
			case 2:
				vals[i] = 0
			default:
				vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(13)-6))
			}
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		s := &tensor.Sparse{Dim: n, Idx: idx, Vals: vals}

		buf, err := Encode(s, FormatPairsI8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		step := float64(i8Step(vals))
		for i, v := range vals {
			dec := got.Vals[i]
			q := 0.0
			if step > 0 {
				q = dec / step
			}
			if math.Abs(q) > 127 || q != math.Trunc(q) {
				t.Fatalf("trial %d: decoded %v is not an int8 multiple of step %v", trial, dec, step)
			}
			switch {
			case math.IsNaN(v):
				if dec != 0 {
					t.Fatalf("trial %d: NaN decoded to %v, want 0", trial, dec)
				}
			case math.IsInf(v, 0):
				if want := math.Copysign(127*step, v); dec != want {
					t.Fatalf("trial %d: %v decoded to %v, want %v", trial, v, dec, want)
				}
			default:
				// Finite values: within half a step of the input whenever the
				// step is a normal float32 (subnormal steps can be off the
				// ideal absmax/127 by up to 2x, loosening the bound).
				if step >= math.SmallestNonzeroFloat32*(1<<23) && math.Abs(dec-v) > step*0.5000001 {
					t.Fatalf("trial %d: %v decoded to %v, off by more than step/2 (%v)", trial, v, dec, step)
				}
			}
		}

		// RoundTripValues must agree with the wire bit for bit: it is what
		// error feedback uses to pre-absorb the quantization residual.
		rt := append([]float64(nil), vals...)
		if err := RoundTripValues(FormatPairsI8, rt); err != nil {
			t.Fatal(err)
		}
		for i := range rt {
			if math.Float64bits(rt[i]) != math.Float64bits(got.Vals[i]) {
				t.Fatalf("trial %d: RoundTripValues[%d]=%v, wire decode=%v", trial, i, rt[i], got.Vals[i])
			}
		}
	}
}

// TestI8DegenerateStreams pins the all-zero / nothing-finite edge cases:
// the stored step is 0 and every value decodes to exactly 0, including
// infinities (there is no magnitude to scale them against).
func TestI8DegenerateStreams(t *testing.T) {
	for _, vals := range [][]float64{
		{0, 0, 0},
		{math.NaN(), math.NaN()},
		{math.Inf(1), math.NaN(), math.Inf(-1)},
		{},
	} {
		idx := make([]int32, len(vals))
		for i := range idx {
			idx[i] = int32(i)
		}
		s := &tensor.Sparse{Dim: len(vals) + 1, Idx: idx, Vals: vals}
		if step := i8Step(vals); step != 0 {
			t.Fatalf("vals %v: step %v, want 0", vals, step)
		}
		buf, err := Encode(s, FormatPairsI8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got.Vals {
			if v != 0 {
				t.Fatalf("vals %v: decoded[%d]=%v, want 0", vals, i, v)
			}
		}
	}
}

// TestRoundTripValuesMatchesWire checks, for every pair-layout format,
// that RoundTripValues applied to a copy of the values equals the
// encode+decode pipeline bitwise. This equality is the error-feedback
// wire-exactness contract.
func TestRoundTripValuesMatchesWire(t *testing.T) {
	s := randomSparse(t, 2000, 120, 3)
	for i := range s.Vals {
		// Break the float32-exactness of randomSparse so the lossy formats
		// actually round.
		s.Vals[i] += 1e-9 * float64(i)
	}
	for _, f := range []Format{FormatPairs, FormatBitmap, FormatDeltaVarint,
		FormatPairs64, FormatPairsF16, FormatPairsBF16, FormatPairsI8} {
		buf, err := Encode(s, f)
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if got.NNZ() != s.NNZ() {
			t.Fatalf("format %d: nnz %d, want %d", f, got.NNZ(), s.NNZ())
		}
		rt := append([]float64(nil), s.Vals...)
		if err := RoundTripValues(f, rt); err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		for i := range rt {
			if math.Float64bits(rt[i]) != math.Float64bits(got.Vals[i]) {
				t.Fatalf("format %d: RoundTripValues[%d]=%v, wire decode=%v", f, i, rt[i], got.Vals[i])
			}
		}
	}
}

// TestQuantizedSizesMatchAccounting pins the closed-form sizes of the
// quantized formats and the Size dispatcher against real encodings.
func TestQuantizedSizesMatchAccounting(t *testing.T) {
	s := randomSparse(t, 777, 33, 2)
	for f, want := range map[Format]int{
		FormatPairsF16:  PairsF16Size(777, 33),
		FormatPairsBF16: PairsBF16Size(777, 33),
		FormatPairsI8:   PairsI8Size(777, 33),
		FormatPairs64:   Pairs64Size(777, 33),
	} {
		buf, err := Encode(s, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != want {
			t.Errorf("format %d: size %d, want %d", f, len(buf), want)
		}
		if sz, err := Size(f, 777, 33); err != nil || sz != want {
			t.Errorf("Size(%d) = %d, %v; want %d", f, sz, err, want)
		}
	}
	if _, err := Size(FormatDeltaVarint, 777, 33); err == nil {
		t.Error("Size(FormatDeltaVarint) should report data-dependent size")
	}
}

// TestBestFormatPrecisionAware exercises the precision-class rules: the
// requested value format caps how narrow BestFormat may go, binary16
// and bfloat16 never substitute for each other, and float64 requests
// always get the lossless format.
func TestBestFormatPrecisionAware(t *testing.T) {
	d := 100000
	k := d / 1000
	if f, sz := BestFormat(d, k, FormatPairsI8); f != FormatPairsI8 || sz != PairsI8Size(d, k) {
		t.Errorf("i8 request: got format %d size %d", f, sz)
	}
	if f, _ := BestFormat(d, k, FormatPairsF16); f != FormatPairsF16 {
		t.Errorf("f16 request: got format %d (bf16 must not substitute)", f)
	}
	if f, _ := BestFormat(d, k, FormatPairsBF16); f != FormatPairsBF16 {
		t.Errorf("bf16 request: got format %d (f16 must not substitute)", f)
	}
	if f, _ := BestFormat(d, k, FormatPairs64); f != FormatPairs64 {
		t.Errorf("f64 request: got format %d, want lossless", f)
	}
	// A float32 request at full density must still fall through to dense,
	// never to a narrower format.
	if f, _ := BestFormat(d, d, FormatPairs); f != FormatDense {
		t.Errorf("f32 dense request: got format %d", f)
	}
	// At full density an i8 request prefers whatever is smallest overall;
	// the i8 pair format (5 B/value + step) still beats dense (4 B/value)
	// only below ~4/5 density, so dense wins here.
	if f, _ := BestFormat(d, d, FormatPairsI8); f != FormatDense {
		t.Errorf("i8 full-density request: got format %d, want dense", f)
	}
}
