package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// FormatPairs64 encodes (uint32 index, float64 value) per non-zero: 12
// bytes each. It is the only lossless format — values round-trip bitwise
// instead of through float32 — so it is what internal/cluster ships when
// a training run must stay bit-identical to the in-process aggregation
// path. BestFormat never picks it: it exists for exactness, not size.
const FormatPairs64 Format = 4

// Pairs64Size returns the encoded size in bytes of k non-zeros of a
// d-dimensional vector in lossless pair format.
func Pairs64Size(d, k int) int { return headerSize + 12*k }

func appendPairs64(dst []byte, s *tensor.Sparse) []byte {
	dst, buf := extend(dst, Pairs64Size(s.Dim, s.NNZ()))
	putHeader(buf, FormatPairs64, s.Dim, s.NNZ())
	off := headerSize
	for i, j := range s.Idx {
		binary.LittleEndian.PutUint32(buf[off:], uint32(j))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(s.Vals[i]))
		off += 12
	}
	return dst
}

func decodePairs64(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	if len(buf) != Pairs64Size(dim, nnz) {
		return fmt.Errorf("encoding: pairs64 size %d, want %d", len(buf), Pairs64Size(dim, nnz))
	}
	s.Reset(dim)
	s.Grow(nnz)
	off := headerSize
	for i := 0; i < nnz; i++ {
		j := int32(binary.LittleEndian.Uint32(buf[off:]))
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		s.Append(j, v)
		off += 12
	}
	return s.Validate()
}
