package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// FormatDeltaVarint encodes indices as varint-encoded gaps plus packed
// float32 values. Because sparse selections produce small, regular gaps
// (mean gap = 1/delta), the gap stream compresses far below the 4 bytes
// per index of the pair format — the index-compression direction the
// paper cites (Gajjala et al., Huffman-coded DGC). Typical size at
// delta = 0.001 is ~5.5 bytes/element vs 8 for pairs.
const FormatDeltaVarint Format = 3

// DeltaVarintMaxSize bounds the encoded size (header + values + worst
// case 5 bytes per gap for int32 gaps).
func DeltaVarintMaxSize(d, k int) int { return headerSize + 4*k + 5*k }

// EncodeDeltaVarint serialises s with varint index gaps. Unlike the
// fixed-layout formats its exact size is data-dependent; use the returned
// buffer's length for accounting.
func EncodeDeltaVarint(s *tensor.Sparse) ([]byte, error) {
	if s.Dim > math.MaxUint32 || s.NNZ() > math.MaxUint32 {
		return nil, fmt.Errorf("encoding: vector too large")
	}
	return appendDeltaVarint(nil, s), nil
}

func appendDeltaVarint(dst []byte, s *tensor.Sparse) []byte {
	buf, hdr := extend(dst, headerSize)
	putHeader(hdr, FormatDeltaVarint, s.Dim, s.NNZ())
	prev := int32(-1)
	var tmp [binary.MaxVarintLen64]byte
	for _, j := range s.Idx {
		gap := uint64(j - prev) // >= 1 by the ascending-unique invariant
		n := binary.PutUvarint(tmp[:], gap)
		buf = append(buf, tmp[:n]...)
		prev = j
	}
	for _, v := range s.Vals {
		var vb [4]byte
		binary.LittleEndian.PutUint32(vb[:], math.Float32bits(float32(v)))
		buf = append(buf, vb[:]...)
	}
	return buf
}

// decodeDeltaVarint is the counterpart of EncodeDeltaVarint; it is wired
// into DecodeInto via the format byte.
func decodeDeltaVarint(s *tensor.Sparse, buf []byte, dim, nnz int) error {
	// Every gap takes at least one byte and every value exactly four, so a
	// buffer shorter than headerSize+5*nnz cannot be valid. Checking first
	// keeps a hostile header from provoking a huge allocation.
	if len(buf) < headerSize+5*nnz {
		return fmt.Errorf("encoding: delta-varint size %d below minimum %d for nnz %d",
			len(buf), headerSize+5*nnz, nnz)
	}
	s.Reset(dim)
	s.Grow(nnz)
	pos := headerSize
	prev := int64(-1)
	for i := 0; i < nnz; i++ {
		gap, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return fmt.Errorf("encoding: corrupt varint gap at element %d", i)
		}
		if gap == 0 || gap > uint64(dim) {
			return fmt.Errorf("encoding: varint gap %d out of range at element %d", gap, i)
		}
		if n > 1 && buf[pos+n-1] == 0 {
			// Redundant trailing continuation bytes would let two distinct
			// buffers decode to the same vector, breaking the exact
			// byte-accounting the transport instrumentation relies on.
			return fmt.Errorf("encoding: non-canonical varint gap at element %d", i)
		}
		pos += n
		prev += int64(gap)
		if prev >= int64(dim) {
			return fmt.Errorf("encoding: decoded index %d out of dim %d", prev, dim)
		}
		s.Idx = append(s.Idx, int32(prev))
	}
	if len(buf) != pos+4*nnz {
		return fmt.Errorf("encoding: delta-varint size %d, want %d", len(buf), pos+4*nnz)
	}
	for i := 0; i < nnz; i++ {
		s.Vals = append(s.Vals, float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[pos:]))))
		pos += 4
	}
	return nil
}
