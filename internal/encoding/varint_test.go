package encoding

import (
	"testing"
)

func TestDeltaVarintRoundTrip(t *testing.T) {
	for _, k := range []int{1, 10, 500, 5000} {
		s := randomSparse(t, 10000, k, int64(100+k))
		buf, err := EncodeDeltaVarint(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got.Dim != s.Dim || got.NNZ() != s.NNZ() {
			t.Fatalf("k=%d: dim/nnz mismatch", k)
		}
		for i := range s.Idx {
			if got.Idx[i] != s.Idx[i] || got.Vals[i] != s.Vals[i] {
				t.Fatalf("k=%d: element %d mismatch", k, i)
			}
		}
	}
}

func TestDeltaVarintViaGenericEncode(t *testing.T) {
	s := randomSparse(t, 2000, 40, 101)
	buf, err := Encode(s, FormatDeltaVarint)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 40 {
		t.Fatalf("NNZ = %d", got.NNZ())
	}
}

func TestDeltaVarintBeatsPairsAtAggressiveSparsity(t *testing.T) {
	// At delta = 0.001 the mean index gap is 1000, which fits in 2 varint
	// bytes: ~6 bytes/element vs 8 for pairs.
	const d, k = 1_000_000, 1000
	s := randomSparse(t, d, k, 102)
	buf, err := EncodeDeltaVarint(s)
	if err != nil {
		t.Fatal(err)
	}
	pairs := PairsSize(d, k)
	if len(buf) >= pairs {
		t.Errorf("delta-varint %d bytes >= pairs %d bytes", len(buf), pairs)
	}
	if len(buf) > DeltaVarintMaxSize(d, k) {
		t.Errorf("encoded size %d exceeds documented bound %d", len(buf), DeltaVarintMaxSize(d, k))
	}
}

func TestDeltaVarintCorruptionDetected(t *testing.T) {
	s := randomSparse(t, 1000, 20, 103)
	buf, err := EncodeDeltaVarint(s)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation drops value bytes.
	if _, err := Decode(buf[:len(buf)-3]); err == nil {
		t.Error("truncated payload should error")
	}
	// Blowing up a gap pushes indices past dim.
	bad := append([]byte(nil), buf...)
	bad[headerSize] = 0xFF
	bad[headerSize+1] |= 0x7F
	if _, err := Decode(bad); err == nil {
		t.Error("out-of-range index should error")
	}
}
