package encoding

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randomSparse(t *testing.T, dim, k int, seed int64) *tensor.Sparse {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(dim)[:k]
	idxSet := make(map[int]struct{}, k)
	for _, p := range perm {
		idxSet[p] = struct{}{}
	}
	idx := make([]int32, 0, k)
	for j := 0; j < dim; j++ {
		if _, ok := idxSet[j]; ok {
			idx = append(idx, int32(j))
		}
	}
	vals := make([]float64, len(idx))
	for i := range vals {
		// Values exactly representable in float32 so round-trips compare
		// equal.
		vals[i] = float64(float32(rng.NormFloat64()))
		if vals[i] == 0 {
			vals[i] = 1
		}
	}
	s, err := tensor.NewSparse(dim, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTripAllFormats(t *testing.T) {
	s := randomSparse(t, 1000, 50, 1)
	for _, f := range []Format{FormatPairs, FormatBitmap, FormatDense} {
		buf, err := Encode(s, f)
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if got.Dim != s.Dim || got.NNZ() != s.NNZ() {
			t.Fatalf("format %d: dim/nnz mismatch", f)
		}
		for i := range s.Idx {
			if got.Idx[i] != s.Idx[i] || got.Vals[i] != s.Vals[i] {
				t.Fatalf("format %d: element %d mismatch", f, i)
			}
		}
	}
}

func TestEncodedSizesMatchAccounting(t *testing.T) {
	s := randomSparse(t, 777, 33, 2)
	for f, want := range map[Format]int{
		FormatPairs:  PairsSize(777, 33),
		FormatBitmap: BitmapSize(777, 33),
		FormatDense:  DenseSize(777),
	} {
		buf, err := Encode(s, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != want {
			t.Errorf("format %d: size %d, want %d", f, len(buf), want)
		}
	}
}

func TestBestFormatCrossovers(t *testing.T) {
	// Aggressive sparsity: pairs wins. Moderate: bitmap. Dense: dense.
	d := 100000
	if f, _ := BestFormat(d, d/1000, FormatPairs); f != FormatPairs {
		t.Errorf("0.1%% density: got format %d", f)
	}
	if f, _ := BestFormat(d, d/4, FormatPairs); f != FormatBitmap {
		t.Errorf("25%% density: got format %d", f)
	}
	if f, _ := BestFormat(d, d, FormatPairs); f != FormatDense {
		t.Errorf("100%% density: got format %d", f)
	}
	// BestFormat size must be the min of the three.
	_, size := BestFormat(d, d/10, FormatPairs)
	min := PairsSize(d, d/10)
	if s := BitmapSize(d, d/10); s < min {
		min = s
	}
	if s := DenseSize(d); s < min {
		min = s
	}
	if size != min {
		t.Errorf("BestFormat size %d, want %d", size, min)
	}
}

func TestEncodeBestRoundTrip(t *testing.T) {
	for _, k := range []int{1, 100, 5000, 10000} {
		s := randomSparse(t, 10000, k, int64(k))
		buf, err := EncodeBest(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != s.NNZ() {
			t.Fatalf("k=%d: NNZ %d != %d", k, got.NNZ(), s.NNZ())
		}
	}
}

func TestPairs64RoundTripIsLossless(t *testing.T) {
	// Values chosen to NOT be float32-representable: pairs64 must return
	// them bit-for-bit while every float32 format would perturb them.
	vals := []float64{1e-300, math.Pi, -2.0000000000000004, math.Nextafter(1, 2)}
	s, err := tensor.NewSparse(50, []int32{1, 7, 20, 49}, vals)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := Encode(s, FormatPairs64)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != Pairs64Size(50, 4) {
		t.Errorf("size %d, want %d", len(buf), Pairs64Size(50, 4))
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got.Vals[i] != vals[i] {
			t.Errorf("value %d: %v != %v (lossy round-trip)", i, got.Vals[i], vals[i])
		}
	}
	// Sanity: the float32 pair format really would lose these values.
	lossy, _ := Encode(s, FormatPairs)
	back, _ := Decode(lossy)
	if back.Vals[0] == vals[0] {
		t.Error("expected float32 round-trip to perturb 1e-300")
	}
}

func TestDecodeRejectsHostileHeaders(t *testing.T) {
	// Headers claiming huge nnz/dim must fail fast without allocating.
	mk := func(f Format, dim, nnz uint32, payload int) []byte {
		buf := make([]byte, 9+payload)
		buf[0] = byte(f)
		binary.LittleEndian.PutUint32(buf[1:5], dim)
		binary.LittleEndian.PutUint32(buf[5:9], nnz)
		return buf
	}
	cases := [][]byte{
		mk(FormatPairs, 100, 200, 0),                       // nnz > dim
		mk(FormatDeltaVarint, 1<<31, 1<<30, 64),            // huge nnz, tiny buffer
		mk(FormatPairs64, 4_000_000_000, 3_000_000_000, 8), // huge lossless claim
		mk(FormatBitmap, 4_000_000_000, 10, 8),             // huge bitmap claim
	}
	for i, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("case %d: hostile header accepted", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil buffer should error")
	}
	if _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("short buffer should error")
	}
	s := randomSparse(t, 100, 10, 3)
	buf, _ := Encode(s, FormatPairs)
	buf[0] = 99
	if _, err := Decode(buf); err == nil {
		t.Error("bad format byte should error")
	}
	buf[0] = byte(FormatPairs)
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload should error")
	}
}

func TestEncodeUnknownFormat(t *testing.T) {
	s := randomSparse(t, 10, 2, 4)
	if _, err := Encode(s, Format(42)); err == nil {
		t.Error("unknown format should error")
	}
}

func TestDenseDropsExplicitZeros(t *testing.T) {
	// A stored value that rounds to float32 zero disappears through the
	// dense format; sizes still match the header accounting.
	s, err := tensor.NewSparse(4, []int32{0, 2}, []float64{1, 1e-60})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := Encode(s, FormatDense)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (float32 underflow drops the tiny value)", got.NNZ())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, dimRaw, kRaw uint16) bool {
		dim := int(dimRaw%2000) + 1
		k := int(kRaw) % (dim + 1)
		if k == 0 {
			k = 1
		}
		if k > dim {
			k = dim
		}
		rng := rand.New(rand.NewSource(seed))
		idx := make([]int32, 0, k)
		vals := make([]float64, 0, k)
		for j := 0; j < dim && len(idx) < k; j++ {
			if rng.Float64() < float64(k)/float64(dim)*2 {
				idx = append(idx, int32(j))
				v := float64(float32(rng.NormFloat64()))
				if v == 0 {
					v = 1
				}
				vals = append(vals, v)
			}
		}
		if len(idx) == 0 {
			return true
		}
		s, err := tensor.NewSparse(dim, idx, vals)
		if err != nil {
			return false
		}
		for _, format := range []Format{FormatPairs, FormatBitmap} {
			buf, err := Encode(s, format)
			if err != nil {
				return false
			}
			got, err := Decode(buf)
			if err != nil || got.NNZ() != s.NNZ() {
				return false
			}
			for i := range s.Idx {
				if got.Idx[i] != s.Idx[i] || math.Abs(got.Vals[i]-s.Vals[i]) > 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
