package encoding

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzDecode drives Decode with arbitrary buffers: it must never panic,
// must reject malformed and truncated input with a clean error, and any
// buffer it accepts must decode to a Sparse that satisfies the package
// invariants and re-encodes to the same bytes in its own format.
func FuzzDecode(f *testing.F) {
	s, err := tensor.NewSparse(64, []int32{0, 3, 17, 40, 63}, []float64{1, -2.5, 0.25, 3, -4})
	if err != nil {
		f.Fatal(err)
	}
	// Seed corpus: one valid encoding per format, plus a truncation and a
	// header corruption of each so the fuzzer starts at the error paths.
	for _, format := range []Format{FormatPairs, FormatBitmap, FormatDense, FormatDeltaVarint, FormatPairs64} {
		buf, err := Encode(s, format)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1])
		bad := append([]byte(nil), buf...)
		binary.LittleEndian.PutUint32(bad[5:9], 1<<31) // hostile nnz
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(FormatDeltaVarint), 255, 255, 255, 255, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, buf []byte) {
		s, err := Decode(buf)
		if err != nil {
			if s != nil {
				t.Fatal("non-nil Sparse alongside error")
			}
			return
		}
		if s.NNZ() > s.Dim {
			t.Fatalf("decoded nnz %d exceeds dim %d", s.NNZ(), s.Dim)
		}
		prev := int32(-1)
		for _, j := range s.Idx {
			if j <= prev || int(j) >= s.Dim {
				t.Fatalf("decoded indices invalid: %v (dim %d)", s.Idx, s.Dim)
			}
			prev = j
		}
		// Accepted buffers must round-trip bytewise through their own
		// format. Two exemptions: the dense format re-derives nnz from the
		// payload, and NaN payload bits are not preserved through the
		// float32<->float64 conversions of the lossy formats (signaling
		// NaNs quiet on conversion).
		format := Format(buf[0])
		for _, v := range s.Vals {
			if math.IsNaN(v) {
				return
			}
		}
		re, err := Encode(s, format)
		if err != nil {
			t.Fatalf("re-encode of accepted buffer failed: %v", err)
		}
		if format != FormatDense && !bytes.Equal(re, buf) {
			t.Fatalf("format %d: re-encode differs from accepted input", format)
		}
	})
}
