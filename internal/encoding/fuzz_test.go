package encoding

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzDecode drives Decode with arbitrary buffers: it must never panic,
// must reject malformed and truncated input with a clean error, and any
// buffer it accepts must decode to a Sparse that satisfies the package
// invariants and re-encodes to the same bytes in its own format.
func FuzzDecode(f *testing.F) {
	s, err := tensor.NewSparse(64, []int32{0, 3, 17, 40, 63}, []float64{1, -2.5, 0.25, 3, -4})
	if err != nil {
		f.Fatal(err)
	}
	// Seed corpus: one valid encoding per format, plus a truncation and a
	// header corruption of each so the fuzzer starts at the error paths.
	for _, format := range []Format{FormatPairs, FormatBitmap, FormatDense, FormatDeltaVarint,
		FormatPairs64, FormatPairsF16, FormatPairsBF16, FormatPairsI8} {
		buf, err := Encode(s, format)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1])
		bad := append([]byte(nil), buf...)
		binary.LittleEndian.PutUint32(bad[5:9], 1<<31) // hostile nnz
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(FormatDeltaVarint), 255, 255, 255, 255, 255, 255, 255, 255})
	// Hostile int8 scale fields: NaN, +Inf and negative steps must all be
	// rejected before any value is materialised.
	for _, scale := range []float32{float32(math.NaN()), float32(math.Inf(1)), -1} {
		buf, err := Encode(s, FormatPairsI8)
		if err != nil {
			f.Fatal(err)
		}
		bad := append([]byte(nil), buf...)
		binary.LittleEndian.PutUint32(bad[9:13], math.Float32bits(scale))
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, buf []byte) {
		s, err := Decode(buf)
		if err != nil {
			if s != nil {
				t.Fatal("non-nil Sparse alongside error")
			}
			return
		}
		if s.NNZ() > s.Dim {
			t.Fatalf("decoded nnz %d exceeds dim %d", s.NNZ(), s.Dim)
		}
		prev := int32(-1)
		for _, j := range s.Idx {
			if j <= prev || int(j) >= s.Dim {
				t.Fatalf("decoded indices invalid: %v (dim %d)", s.Idx, s.Dim)
			}
			prev = j
		}
		// Accepted buffers must round-trip bytewise through their own
		// format. Three exemptions: the dense format re-derives nnz from
		// the payload, NaN payload bits are not preserved through the
		// float32<->float64 conversions of the lossy formats (signaling
		// NaNs quiet on conversion), and the int8 format's re-encode
		// derives a fresh absmax step from the decoded values, which need
		// not match an arbitrary accepted step (e.g. a subnormal step whose
		// ideal replacement differs after rounding).
		format := Format(buf[0])
		for _, v := range s.Vals {
			if math.IsNaN(v) {
				return
			}
		}
		re, err := Encode(s, format)
		if err != nil {
			t.Fatalf("re-encode of accepted buffer failed: %v", err)
		}
		if format != FormatDense && format != FormatPairsI8 && !bytes.Equal(re, buf) {
			t.Fatalf("format %d: re-encode differs from accepted input", format)
		}
	})
}

// FuzzEncodeToDecodeIntoReuse targets the reused-buffer fast paths with
// deliberately dirty scratch: the decode target is pre-filled with stale
// pairs and the encode destination with stale bytes, then every result is
// cross-checked against the allocating paths. Any divergence is an
// aliasing or stale-data bug — exactly the class of defect buffer reuse
// can introduce silently.
func FuzzEncodeToDecodeIntoReuse(f *testing.F) {
	s, err := tensor.NewSparse(64, []int32{0, 3, 17, 40, 63}, []float64{1, -2.5, 0.25, 3, -4})
	if err != nil {
		f.Fatal(err)
	}
	for _, format := range []Format{FormatPairs, FormatBitmap, FormatDense, FormatDeltaVarint,
		FormatPairs64, FormatPairsF16, FormatPairsBF16, FormatPairsI8} {
		buf, err := Encode(s, format)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)-1])
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, buf []byte) {
		fresh, freshErr := Decode(buf)

		// Decode into storage polluted by a previous unrelated decode.
		dirty := &tensor.Sparse{Dim: 999, Idx: []int32{5, 6, 900}, Vals: []float64{math.NaN(), 7, -1}}
		intoErr := DecodeInto(dirty, buf)
		if (freshErr == nil) != (intoErr == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", freshErr, intoErr)
		}
		if freshErr != nil {
			return
		}
		if dirty.Dim != fresh.Dim || dirty.NNZ() != fresh.NNZ() {
			t.Fatalf("DecodeInto shape (%d,%d) != Decode shape (%d,%d)",
				dirty.Dim, dirty.NNZ(), fresh.Dim, fresh.NNZ())
		}
		for i := range fresh.Idx {
			if dirty.Idx[i] != fresh.Idx[i] ||
				math.Float64bits(dirty.Vals[i]) != math.Float64bits(fresh.Vals[i]) {
				t.Fatalf("DecodeInto element %d = (%d,%v), Decode = (%d,%v): stale data leaked",
					i, dirty.Idx[i], dirty.Vals[i], fresh.Idx[i], fresh.Vals[i])
			}
		}

		// Re-encode the decoded vector in every format through a reused,
		// garbage-prefilled destination buffer, twice back to back: both
		// passes must match the allocating Encode bytewise (the second
		// pass catches stale state the first one left behind, e.g. bitmap
		// bits or varint tails surviving a shorter re-encode).
		for _, format := range []Format{FormatPairs, FormatBitmap, FormatDense, FormatDeltaVarint,
			FormatPairs64, FormatPairsF16, FormatPairsBF16, FormatPairsI8} {
			want, err := Encode(fresh, format)
			if err != nil {
				t.Fatalf("format %d: Encode failed: %v", format, err)
			}
			reuse := bytes.Repeat([]byte{0xAA}, 7) // dirty, oddly-sized seed capacity
			for pass := 0; pass < 2; pass++ {
				reuse, err = EncodeTo(reuse[:0], fresh, format)
				if err != nil {
					t.Fatalf("format %d pass %d: EncodeTo failed: %v", format, pass, err)
				}
				if !bytes.Equal(reuse, want) {
					t.Fatalf("format %d pass %d: EncodeTo differs from Encode", format, pass)
				}
			}
			// And the reused wire must decode back into reused storage to
			// the same vector.
			if err := DecodeInto(dirty, reuse); err != nil {
				t.Fatalf("format %d: DecodeInto of EncodeTo output failed: %v", format, err)
			}
		}
	})
}
