package dist

import (
	"fmt"

	"repro/internal/tensor"
)

// ExchangeInput is one worker's contribution to a gradient exchange:
// the dense local gradient is always present, and Sparse carries the
// compressed selection when a compressor ran.
type ExchangeInput struct {
	// Worker is the contributing worker's id; Trainer fills inputs in
	// worker-index order, so ins[i].Worker == i.
	Worker int
	// Dense is the worker's local (clipped) gradient of model dimension.
	Dense []float64
	// Sparse is the compressor's selection, nil on the dense path.
	Sparse *tensor.Sparse
}

// GradientExchange is the strategy that turns per-worker gradients into
// the aggregated mean the optimizer applies. Implementations must leave
// the mean of the contributions in agg (zeroing it first) and must reduce
// deterministically — the Trainer's bit-reproducibility guarantee extends
// only to exchanges that sum contributions in worker-index order.
//
// The default is the in-process reducer below; internal/cluster provides
// message-passing implementations that ship encoded buffers through real
// transports.
type GradientExchange interface {
	Exchange(step int, ins []ExchangeInput, agg []float64) error
}

// InProcess is the shared-memory reducer: sparse contributions are
// scatter-added (O(sum of nnz), no per-worker densify) and dense ones
// added, in worker-index order, then scaled to the mean.
type InProcess struct{}

// Exchange implements GradientExchange.
func (InProcess) Exchange(step int, ins []ExchangeInput, agg []float64) error {
	if len(ins) == 0 {
		return fmt.Errorf("dist: exchange with no inputs")
	}
	tensor.Zero(agg)
	for _, in := range ins {
		if in.Sparse != nil {
			in.Sparse.AddTo(agg)
		} else {
			tensor.Add(in.Dense, agg)
		}
	}
	tensor.Scale(1/float64(len(ins)), agg)
	return nil
}
