package dist

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/nn"
)

// TestCheckpointWireRoundTrip pins the binary format: a checkpoint
// survives serialisation bit-for-bit, including empty residual slots,
// and the file-level save is atomic-replace (a second save overwrites
// cleanly).
func TestCheckpointWireRoundTrip(t *testing.T) {
	c := &Checkpoint{
		Step: 7, Seed: 42, Workers: 3, FirstWorker: 1,
		Weights:   []float64{0.5, -1.25, 3e-17, 0},
		Residuals: [][]float64{{1, 2}, nil, {-0.125}},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != c.Step || got.Seed != c.Seed || got.Workers != c.Workers || got.FirstWorker != c.FirstWorker {
		t.Fatalf("header mismatch: %+v vs %+v", got, c)
	}
	for i := range c.Weights {
		if got.Weights[i] != c.Weights[i] {
			t.Fatalf("weight[%d] = %v, want %v (must be bitwise)", i, got.Weights[i], c.Weights[i])
		}
	}
	if len(got.Residuals) != len(c.Residuals) {
		t.Fatalf("%d residual slots, want %d", len(got.Residuals), len(c.Residuals))
	}
	for w, r := range c.Residuals {
		if len(got.Residuals[w]) != len(r) {
			t.Fatalf("worker %d residual has %d elements, want %d", w, len(got.Residuals[w]), len(r))
		}
		for i := range r {
			if got.Residuals[w][i] != r[i] {
				t.Fatalf("worker %d residual[%d] = %v, want %v", w, i, got.Residuals[w][i], r[i])
			}
		}
	}

	path := filepath.Join(t.TempDir(), "ck")
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	c2 := *c
	c2.Step = 8
	if err := SaveCheckpoint(path, &c2); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != 8 {
		t.Fatalf("loaded step %d, want the overwriting save's 8", loaded.Step)
	}

	if _, err := ReadCheckpoint(bytes.NewReader([]byte("NOTMAGIC________"))); err == nil {
		t.Fatal("garbage input should fail the magic check")
	}
}

// TestResumeBitIdentical is the checkpoint guarantee itself: a run that
// checkpoints at step k and resumes in a fresh trainer must produce
// exactly — bitwise — the losses and final weights of a run that never
// stopped, within the documented scope (stateless optimizer, EC-only
// compressor state).
func TestResumeBitIdentical(t *testing.T) {
	const workers, total, cut = 3, 6, 3
	const seed = 11

	ref := convTrainer(t, workers, "topk", 0.01, true, seed, nil)
	wantLosses, _, err := ref.Run(total)
	if err != nil {
		t.Fatal(err)
	}
	wantW := nn.FlattenWeights(ref.Params(), nil)

	// First half, then checkpoint through the file format.
	first := convTrainer(t, workers, "topk", 0.01, true, seed, nil)
	if _, _, err := first.Run(cut); err != nil {
		t.Fatal(err)
	}
	ck, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "resume.ck")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != cut {
		t.Fatalf("checkpoint at step %d, want %d", loaded.Step, cut)
	}

	// Second half in a fresh trainer, as a restarted process would.
	resumed := convTrainer(t, workers, "topk", 0.01, true, seed, nil)
	if err := resumed.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	if resumed.Iter() != cut {
		t.Fatalf("resumed trainer at iter %d, want %d", resumed.Iter(), cut)
	}
	for it := cut; it < total; it++ {
		loss, err := resumed.Step()
		if err != nil {
			t.Fatal(err)
		}
		if loss != wantLosses[it] {
			t.Fatalf("resumed loss[%d] = %v, uninterrupted run says %v (must be bit-identical)",
				it, loss, wantLosses[it])
		}
	}
	gotW := nn.FlattenWeights(resumed.Params(), nil)
	for i := range wantW {
		if gotW[i] != wantW[i] {
			t.Fatalf("resumed weight[%d] = %v, uninterrupted run says %v (must be bit-identical)",
				i, gotW[i], wantW[i])
		}
	}
}

// TestRestoreValidation pins Restore's compatibility checks: a
// checkpoint only fits a trainer built with the same topology and seed,
// and only before its first step.
func TestRestoreValidation(t *testing.T) {
	tr := convTrainer(t, 2, "topk", 0.01, true, 5, nil)
	if _, _, err := tr.Run(1); err != nil {
		t.Fatal(err)
	}
	ck, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	wrongSeed := convTrainer(t, 2, "topk", 0.01, true, 6, nil)
	if err := wrongSeed.Restore(ck); err == nil {
		t.Error("restore with a different seed should fail")
	}
	wrongWorkers := convTrainer(t, 3, "topk", 0.01, true, 5, nil)
	if err := wrongWorkers.Restore(ck); err == nil {
		t.Error("restore with a different worker count should fail")
	}
	stepped := convTrainer(t, 2, "topk", 0.01, true, 5, nil)
	if _, _, err := stepped.Run(1); err != nil {
		t.Fatal(err)
	}
	if err := stepped.Restore(ck); err == nil {
		t.Error("restore after stepping should fail")
	}
}
