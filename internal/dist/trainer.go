// Package dist implements the distributed side of the reproduction: a
// goroutine-per-worker synchronous data-parallel training engine with
// pluggable gradient compression and per-worker error feedback, plus the
// Table 1 workload catalog and the timeline simulator that prices one
// training iteration (compute + compress + communicate) on a modelled
// device and network.
//
// The Trainer runs real backpropagation through internal/nn; the
// simulator drives internal/simgrad statistical gradients through the
// same Compressor interface and converts achieved sparsity into
// communication time via internal/netsim. Both are deterministic for a
// fixed Seed, including with Workers > 1.
//
// Gradient aggregation is a strategy: the default GradientExchange is
// the in-process shared-memory reducer, and internal/cluster substitutes
// real message-passing collectives over a Transport without the Trainer
// noticing (bit-identically, for the order-preserving collectives over a
// lossless wire format).
//
// Checkpoint captures a Trainer's deterministic-resume state — weights,
// per-worker error-feedback residuals, and the RNG stream positions
// (reconstructed by replay) — so a restarted process continues
// bit-identically to a run that never stopped, within the documented
// stateless-optimizer/EC-only-compressor scope. See Trainer.Checkpoint,
// Trainer.Restore and SaveCheckpoint/LoadCheckpoint.
package dist

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/compress"
	"repro/internal/encoding"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// TrainerConfig assembles a synchronous data-parallel training run.
type TrainerConfig struct {
	// Workers is the number of data-parallel workers N (>= 1).
	Workers int
	// Model is the shared model replica. Weights are read by all workers
	// during the gradient phase and updated once per step by Opt.
	Model *nn.Sequential
	// Loss scores model outputs against integer targets.
	Loss nn.Loss
	// Opt applies the aggregated gradient once per step.
	Opt nn.Optimizer
	// Batch draws one worker's batch. It is called concurrently for
	// different workers and must only use the provided per-worker rng for
	// randomness (shared dataset state must be read-only).
	Batch func(worker int, rng *rand.Rand) (*nn.Tensor, []int)
	// NewCompressor constructs one compressor per worker (stateful
	// compressors keep per-worker state). Nil means dense (no
	// compression) training.
	NewCompressor func() compress.Compressor
	// Delta is the target compression ratio k/d handed to the compressor.
	Delta float64
	// EC wraps each worker's compressor with error feedback: the
	// sparsification residual is carried to the next iteration.
	EC bool
	// ECWire, if non-nil, additionally makes the error-feedback wrapper
	// pre-round every selected value to the given wire format's decoded
	// precision (compress.ErrorFeedback.SetWireFormat), so the
	// quantization residual of a narrow wire is absorbed by EC rather
	// than lost. Requires EC. Point it at the encoding format the
	// deployment's cluster wire actually ships.
	ECWire *encoding.Format
	// Parallelism fans each worker's compression passes out over up to
	// this many goroutines (compress.SetParallelism on every worker's
	// compressor). Selections are bit-identical at any setting; 0 or 1
	// stays single-core.
	Parallelism int
	// ClipNorm rescales each worker's local gradient to at most this L2
	// norm before compression (0 disables clipping).
	ClipNorm float64
	// Seed fixes every random stream (batch draws and randomized
	// compressors).
	Seed int64
	// FirstWorker offsets this trainer's worker ids: local worker i
	// behaves as global worker FirstWorker+i — its Batch calls and RNG
	// stream are seeded by the global id. A multi-process deployment
	// (cmd/sidco-node) runs one Workers=1 trainer per process with
	// FirstWorker set to the process rank, so each process reproduces
	// exactly the worker it owns and the union of processes draws the
	// same batches as one in-process trainer with the full worker count.
	// 0 (the default) is the single-process behaviour.
	FirstWorker int
	// Exchange aggregates the workers' gradients each step. Nil selects
	// the in-process shared-memory reducer; internal/cluster plugs real
	// message-passing collectives in here. Exchanges that sum in
	// worker-index order over a lossless wire format (all-gather and
	// parameter-server over encoding.FormatPairs64) reproduce the
	// in-process losses bit-for-bit.
	Exchange GradientExchange
	// Telemetry, if non-nil, traces every step's phases: a step span
	// plus per-worker compute and compress spans, trainer-level
	// exchange and apply spans, and a steps counter (node-attributed to
	// FirstWorker). A nil tracer is free: the instrumentation calls are
	// no-ops and the steady-state step stays allocation-free.
	Telemetry *telemetry.Tracer
	// OnGradient, if set, observes worker 0's gradient each iteration
	// exactly as its compressor sees it: after clipping and, under EC,
	// with the carried residual added (internal/trace.Recorder hooks in
	// here so the fitting studies analyse the same vectors the
	// compressors saw). The slice is reused between iterations;
	// observers must copy.
	OnGradient func(iter int, flat []float64)
}

// worker is the per-goroutine state of one data-parallel worker.
type worker struct {
	id     int
	rng    *rand.Rand
	comp   compress.Compressor // nil = dense path
	flat   []float64           // local gradient buffer
	sparse *tensor.Sparse      // reused compressed-selection storage
	loss   float64
	ratio  float64
	err    error
}

// Trainer executes synchronous data-parallel steps: each worker draws a
// batch, computes a local gradient, optionally compresses it, the sparse
// contributions are aggregated, and a single optimizer step is applied.
//
// Workers run concurrently. The forward/backward pass itself is
// serialized through a mutex because internal/nn layers cache one
// in-flight batch, but each worker's gradient depends only on its own
// batch and the step-start weights, so scheduling order cannot change
// any result: batch draws use per-worker RNG streams, and losses and
// gradients are reduced in worker-index order. Output is therefore
// bit-identical across runs for a fixed Seed.
type Trainer struct {
	// LastRatio is the mean achieved k-hat/k across workers in the most
	// recent Step (1 for dense training).
	LastRatio float64

	cfg      TrainerConfig
	params   []*nn.Param
	dim      int
	k        int // target non-zeros per worker, 0 when dense
	workers  []*worker
	modelMu  sync.Mutex
	agg      []float64
	ins      []ExchangeInput
	exchange GradientExchange
	tapBuf   []float64
	iter     int
	wg       sync.WaitGroup // reused per-step barrier
}

// NewTrainer validates the configuration and allocates per-worker state.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: Workers = %d, need >= 1", cfg.Workers)
	}
	if cfg.FirstWorker < 0 {
		return nil, fmt.Errorf("dist: FirstWorker = %d, need >= 0", cfg.FirstWorker)
	}
	if cfg.Model == nil || cfg.Loss == nil || cfg.Opt == nil || cfg.Batch == nil {
		return nil, fmt.Errorf("dist: Model, Loss, Opt and Batch are all required")
	}
	params := cfg.Model.Params()
	dim := nn.ParamCount(params)
	if dim == 0 {
		return nil, fmt.Errorf("dist: model has no trainable parameters")
	}
	compressed := cfg.NewCompressor != nil
	if compressed && (cfg.Delta <= 0 || cfg.Delta > 1) {
		return nil, fmt.Errorf("dist: Delta = %v outside (0, 1]", cfg.Delta)
	}
	t := &Trainer{
		LastRatio: 1,
		cfg:       cfg,
		params:    params,
		dim:       dim,
		workers:   make([]*worker, cfg.Workers),
		agg:       make([]float64, dim),
		ins:       make([]ExchangeInput, cfg.Workers),
		exchange:  cfg.Exchange,
	}
	if t.exchange == nil {
		t.exchange = InProcess{}
	}
	if compressed {
		t.k = compress.TargetK(dim, cfg.Delta)
	}
	for w := range t.workers {
		var comp compress.Compressor
		if compressed {
			comp = cfg.NewCompressor()
			if comp != nil && cfg.EC {
				ec := compress.NewErrorFeedback(comp)
				if cfg.ECWire != nil {
					ec.SetWireFormat(*cfg.ECWire)
				}
				comp = ec
			}
			if comp != nil && cfg.Parallelism > 1 {
				compress.SetParallelism(comp, cfg.Parallelism)
			}
		}
		t.workers[w] = &worker{
			id:     cfg.FirstWorker + w,
			rng:    rand.New(rand.NewSource(workerSeed(cfg.Seed, cfg.FirstWorker+w))),
			comp:   comp,
			flat:   make([]float64, dim),
			sparse: &tensor.Sparse{Dim: dim},
		}
	}
	return t, nil
}

// workerSeed derives an independent, deterministic seed per worker from
// the trainer seed (splitmix64 finalizer: nearby base seeds still give
// uncorrelated worker streams).
func workerSeed(seed int64, w int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(w+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Dim returns the model parameter count d.
func (t *Trainer) Dim() int { return t.dim }

// Params exposes the model's trainable parameters (for weight
// inspection in tests and checkpoint-style tooling).
func (t *Trainer) Params() []*nn.Param { return t.params }

// localGradient runs one worker's half-step: batch draw, forward,
// backward, clip, and compression. Only the model pass holds the mutex.
//
//sidco:hotpath
func (t *Trainer) localGradient(w *worker) error {
	// The model pass includes lock wait: with several workers the mutex
	// serialises the passes, and that contention is part of what the
	// compute span is for.
	cs := t.cfg.Telemetry.Begin(telemetry.SpanCompute, w.id, -1, -1, int64(t.iter))
	x, targets := t.cfg.Batch(w.id, w.rng)

	t.modelMu.Lock()
	for _, p := range t.params {
		p.ZeroGrad()
	}
	y := t.cfg.Model.Forward(x)
	w.loss = t.cfg.Loss.Forward(y, targets)
	t.cfg.Model.Backward(t.cfg.Loss.Backward())
	nn.FlattenGrads(t.params, w.flat)
	t.modelMu.Unlock()

	if t.cfg.ClipNorm > 0 {
		nn.ClipFlatNorm(w.flat, t.cfg.ClipNorm)
	}
	cs.End()
	if w.id == 0 {
		t.tapGradient(w)
	}
	if w.comp == nil {
		w.ratio = 1
		return nil
	}
	// The selection lands in the worker's reused sparse scratch: the
	// exchange consumes it synchronously inside Step, so by the next
	// iteration no one holds a reference and the storage can be recycled.
	ks := t.cfg.Telemetry.Begin(telemetry.SpanCompress, w.id, -1, -1, int64(t.iter))
	err := w.comp.CompressInto(w.sparse, w.flat, t.cfg.Delta)
	ks.End()
	if err != nil {
		return fmt.Errorf("dist: worker %d: %w", w.id, err) //sidco:alloc compressor-failure error path, not steady state
	}
	w.ratio = float64(w.sparse.NNZ()) / float64(t.k)
	return nil
}

// tapGradient feeds OnGradient the vector worker w's compressor is
// about to see: the clipped local gradient, plus the error-feedback
// residual when EC is carrying one. Only worker 0 taps, so observers
// need not be concurrency-safe.
func (t *Trainer) tapGradient(w *worker) {
	if t.cfg.OnGradient == nil {
		return
	}
	tap := w.flat
	if ec, ok := w.comp.(*compress.ErrorFeedback); ok {
		if res := ec.Residual(); res != nil {
			if t.tapBuf == nil {
				t.tapBuf = make([]float64, t.dim)
			}
			copy(t.tapBuf, w.flat)
			tensor.Add(res, t.tapBuf)
			tap = t.tapBuf
		}
	}
	t.cfg.OnGradient(t.iter, tap)
}

// stepWorker is the goroutine body of one worker's half-step. It is a
// plain method (not a closure) so spawning it each step allocates
// nothing.
//
//sidco:hotpath
func (t *Trainer) stepWorker(w *worker) {
	w.err = t.localGradient(w)
	t.wg.Done()
}

// Step runs one synchronous iteration and returns the mean training loss
// across workers.
//
//sidco:hotpath
func (t *Trainer) Step() (float64, error) {
	ss := t.cfg.Telemetry.Begin(telemetry.SpanStep, t.cfg.FirstWorker, -1, -1, int64(t.iter))
	if len(t.workers) == 1 {
		// Single-worker training needs no barrier; running inline keeps
		// the steady-state step allocation-free.
		w := t.workers[0]
		w.err = t.localGradient(w)
	} else {
		t.wg.Add(len(t.workers))
		for _, w := range t.workers {
			go t.stepWorker(w) //sidco:alloc one spawn-bookkeeping object per worker, pinned by the Step alloc budget test
		}
		t.wg.Wait()
	}

	// All reductions below iterate workers in index order so the
	// floating-point results are independent of goroutine scheduling.
	for _, w := range t.workers {
		if w.err != nil {
			return 0, w.err
		}
	}
	loss, ratio := 0.0, 0.0
	for i, w := range t.workers {
		var sp *tensor.Sparse
		if w.comp != nil {
			sp = w.sparse
		}
		t.ins[i] = ExchangeInput{Worker: w.id, Dense: w.flat, Sparse: sp}
		loss += w.loss
		ratio += w.ratio
	}
	xs := t.cfg.Telemetry.Begin(telemetry.SpanExchange, t.cfg.FirstWorker, -1, -1, int64(t.iter))
	err := t.exchange.Exchange(t.iter, t.ins, t.agg)
	xs.End()
	if err != nil {
		return 0, fmt.Errorf("dist: exchange at step %d: %w", t.iter, err) //sidco:alloc exchange-failure error path, not steady state
	}
	inv := 1 / float64(len(t.workers))
	loss *= inv
	t.LastRatio = ratio * inv

	as := t.cfg.Telemetry.Begin(telemetry.SpanApply, t.cfg.FirstWorker, -1, -1, int64(t.iter))
	t.cfg.Opt.StepFlat(t.params, t.agg)
	as.End()
	t.iter++
	t.cfg.Telemetry.Count(telemetry.CounterSteps, t.cfg.FirstWorker, -1, 1)
	ss.End()
	return loss, nil
}

// Run executes iters steps and returns the per-iteration mean losses and
// mean achieved compression ratios (k-hat/k; all ones for dense runs).
// Both result slices are preallocated to their final length up front, so
// the run's only per-step work is the steps themselves.
func (t *Trainer) Run(iters int) ([]float64, []float64, error) {
	if iters < 0 {
		iters = 0
	}
	losses := make([]float64, iters)
	ratios := make([]float64, iters)
	for i := 0; i < iters; i++ {
		loss, err := t.Step()
		if err != nil {
			return nil, nil, err
		}
		losses[i] = loss
		ratios[i] = t.LastRatio
	}
	return losses, ratios, nil
}
