package dist

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/simgrad"
	"repro/internal/stats"
)

// SimConfig drives one simulated training run of a Table 1 workload: a
// statistical gradient stream is compressed for real at reduced
// dimensionality, and the achieved sparsity prices the communication of
// the full-dimension model on the configured network while the device
// profile prices the compression op itself.
type SimConfig struct {
	// Workload is the Table 1 entry being simulated.
	Workload Workload
	// Net is the cluster fabric (zero value: the paper's 8-node 25 GbE).
	Net netsim.Network
	// Collective selects the exchange schedule the network prices
	// (ring, all-gather, parameter server). The zero value CollectiveAuto
	// keeps the paper's pairing: ring for dense, all-gather for sparse.
	Collective netsim.Collective
	// Dev is the compression device profile (zero value: GPU).
	Dev device.Profile
	// NewCompressor constructs the compressor under test (nil: none).
	NewCompressor func() compress.Compressor
	// Delta is the target compression ratio k/d.
	Delta float64
	// Iters is the number of simulated iterations (default 100).
	Iters int
	// SimScale divides the gradient dimensionality for the statistical
	// stream (default 100), keeping multi-million-parameter workloads
	// tractable while the timeline model still uses the full dimension.
	SimScale int
	// Seed fixes the gradient stream and randomized compressors.
	Seed int64
}

// SimResult aggregates one simulated run. Time fields are per-iteration
// means in seconds.
type SimResult struct {
	// Workload and Compressor identify the run.
	Workload   string
	Compressor string
	// Delta is the target ratio of the run.
	Delta float64

	// ComputeTime is the forward+backward time.
	ComputeTime float64
	// CompressTime is the modelled compression-op time on the device.
	CompressTime float64
	// CommTime is the gradient-exchange time on the network.
	CommTime float64
	// IterTime = ComputeTime + CompressTime + CommTime.
	IterTime float64
	// Throughput is cluster samples/second: Workers * BatchSize / IterTime.
	Throughput float64

	// MeanRatio is the mean achieved k-hat/k with CI90 its 90% interval.
	MeanRatio float64
	CI90      float64
	// GeoMeanRatio is the geometric mean of k-hat/k.
	GeoMeanRatio float64
	// RatioSeries is the per-iteration achieved k-hat/k.
	RatioSeries []float64
}

// Speedup returns the training speed-up of res over base (ratio of
// iteration times), the headline metric of the training figures.
func Speedup(res, base *SimResult) float64 {
	if res == nil || base == nil || res.IterTime <= 0 {
		return math.NaN()
	}
	return base.IterTime / res.IterTime
}

// SimulateWorkload runs the timeline simulation described on SimConfig.
func SimulateWorkload(cfg SimConfig) (*SimResult, error) {
	wl := cfg.Workload
	if wl.Dim <= 0 || wl.BatchSize <= 0 {
		return nil, fmt.Errorf("dist: workload %q has no dimensions (use Table1/WorkloadByName)", wl.Name)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	if cfg.SimScale <= 0 {
		cfg.SimScale = 100
	}
	if cfg.Net == (netsim.Network{}) {
		cfg.Net = netsim.Cluster25GbE(8)
	} else if cfg.Net.Workers < 1 || cfg.Net.BandwidthBps <= 0 || cfg.Net.LatencySec < 0 {
		// netsim treats an invalid fabric as cost-0; catch it here so a
		// half-specified Net errors instead of simulating free comms.
		return nil, fmt.Errorf("dist: invalid network %+v", cfg.Net)
	}
	if cfg.Dev.Name == "" {
		cfg.Dev = device.GPU()
	} else if cfg.Dev.StreamRate <= 0 || cfg.Dev.SortRate <= 0 || cfg.Dev.SelectRate <= 0 ||
		cfg.Dev.GatherRate <= 0 || cfg.Dev.ComputeRate <= 0 {
		// A named profile with zero rates would divide to +Inf latencies.
		return nil, fmt.Errorf("dist: invalid device profile %q", cfg.Dev.Name)
	}
	var comp compress.Compressor
	if cfg.NewCompressor != nil {
		comp = cfg.NewCompressor()
	}
	if comp == nil {
		comp = compress.None{}
	}
	name := comp.Name()
	isNone := name == "none"
	if !isNone && (cfg.Delta <= 0 || cfg.Delta > 1) {
		return nil, fmt.Errorf("dist: Delta = %v outside (0, 1]", cfg.Delta)
	}
	delta := cfg.Delta
	if isNone && (delta <= 0 || delta > 1) {
		delta = 1 // None ignores delta; keep TargetK well-defined
	}

	simDim := wl.Dim / cfg.SimScale
	if simDim < 16 {
		simDim = 16
	}
	gen := simgrad.New(simgrad.Config{
		Dim:         simDim,
		Family:      wl.Grad.Family,
		Shape:       wl.Grad.Shape,
		Scale:       wl.Grad.Scale,
		ScaleDecay:  wl.Grad.ScaleDecay,
		SharpenRate: wl.Grad.SharpenRate,
		OutlierFrac: wl.Grad.OutlierFrac,
		Seed:        cfg.Seed,
	})

	// Table 1's communication overhead is measured on the paper's
	// reference cluster: it says what fraction of a dense iteration that
	// fabric spends exchanging gradients, which pins the compute stage —
	// a property of the training device — to compute = refComm *
	// (1-ov)/ov. The configured Net then prices only communication, so a
	// faster fabric makes the same workload compute-bound rather than
	// shrinking compute with it.
	refComm := netsim.Cluster25GbE(8).CommTime(encoding.DenseSize(wl.Dim), 0, false)
	var computeTime float64
	if wl.CommOverhead > 0 && wl.CommOverhead < 1 {
		computeTime = refComm * (1 - wl.CommOverhead) / wl.CommOverhead
	} else {
		computeTime = cfg.Dev.ComputeTime(wl.Dim, wl.BatchSize)
	}
	denseBytes := encoding.DenseSize(wl.Dim)
	commDense := cfg.Net.CollectiveTime(cfg.Collective, denseBytes, denseBytes, false)

	kSim := compress.TargetK(simDim, delta)
	kFull := compress.TargetK(wl.Dim, delta)
	var (
		running  stats.Running
		logSum   float64
		series   = make([]float64, 0, cfg.Iters)
		buf      = make([]float64, simDim)
		sumComp  float64
		sumComm  float64
		sumTotal float64
	)
	for i := 0; i < cfg.Iters; i++ {
		gen.Fill(buf)
		s, err := comp.Compress(buf, delta)
		if err != nil {
			return nil, fmt.Errorf("dist: %s on %s: %w", name, wl.Name, err)
		}
		ratio := float64(s.NNZ()) / float64(kSim)
		running.Add(ratio)
		logSum += math.Log(math.Max(ratio, 1e-12))
		series = append(series, ratio)

		stages := 1
		if sc, ok := comp.(*core.SIDCo); ok {
			stages = sc.Stages()
		}
		compressLat, err := cfg.Dev.CompressLatency(name, wl.Dim, delta, stages)
		if err != nil {
			return nil, fmt.Errorf("dist: %s on %s: %w", name, wl.Name, err)
		}

		var commLat float64
		if isNone {
			commLat = commDense
		} else {
			// Scale the achieved sparsity up to the full model dimension
			// and price the smallest wire format over the sparse
			// collective.
			nnzFull := int(math.Round(ratio * float64(kFull)))
			if nnzFull < 1 {
				nnzFull = 1
			}
			if nnzFull > wl.Dim {
				nnzFull = wl.Dim
			}
			_, bytes := encoding.BestFormat(wl.Dim, nnzFull, encoding.FormatPairs)
			commLat = cfg.Net.CollectiveTime(cfg.Collective, denseBytes, bytes, true)
		}
		sumComp += compressLat
		sumComm += commLat
		sumTotal += computeTime + compressLat + commLat
	}

	inv := 1 / float64(cfg.Iters)
	res := &SimResult{
		Workload:     wl.Name,
		Compressor:   name,
		Delta:        cfg.Delta,
		ComputeTime:  computeTime,
		CompressTime: sumComp * inv,
		CommTime:     sumComm * inv,
		IterTime:     sumTotal * inv,
		MeanRatio:    running.Mean(),
		CI90:         running.ConfidenceInterval(0.90),
		GeoMeanRatio: math.Exp(logSum * inv),
		RatioSeries:  series,
	}
	if res.IterTime > 0 {
		res.Throughput = float64(cfg.Net.Workers*wl.BatchSize) / res.IterTime
	}
	return res, nil
}
