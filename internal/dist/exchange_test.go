package dist

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/tensor"
)

func TestInProcessExchangeMeansContributions(t *testing.T) {
	dense := [][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	}
	ins := make([]ExchangeInput, len(dense))
	for w, g := range dense {
		ins[w] = ExchangeInput{Worker: w, Dense: g}
	}
	agg := []float64{99, 99, 99, 99} // must be zeroed by the exchanger
	if err := (InProcess{}).Exchange(0, ins, agg); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 7, 8}
	for i := range want {
		if agg[i] != want[i] {
			t.Errorf("agg[%d] = %v, want %v", i, agg[i], want[i])
		}
	}
}

func TestInProcessExchangeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const dim, workers = 200, 3
	ins := make([]ExchangeInput, workers)
	want := make([]float64, dim)
	for w := 0; w < workers; w++ {
		g := make([]float64, dim)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		s, err := compress.NewTopK().Compress(g, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		ins[w] = ExchangeInput{Worker: w, Dense: g, Sparse: s}
		s.AddTo(want)
	}
	tensor.Scale(1.0/workers, want)
	agg := make([]float64, dim)
	if err := (InProcess{}).Exchange(0, ins, agg); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if agg[i] != want[i] {
			t.Fatalf("agg[%d] = %v, want %v", i, agg[i], want[i])
		}
	}
}

func TestInProcessExchangeRejectsEmpty(t *testing.T) {
	if err := (InProcess{}).Exchange(0, nil, []float64{0}); err == nil {
		t.Error("empty input set should error")
	}
}

// exchangeRecorder wraps InProcess and records the steps it saw, proving
// the Trainer routes every iteration through the configured exchange.
type exchangeRecorder struct {
	steps []int
}

func (r *exchangeRecorder) Exchange(step int, ins []ExchangeInput, agg []float64) error {
	r.steps = append(r.steps, step)
	return InProcess{}.Exchange(step, ins, agg)
}

func TestTrainerUsesConfiguredExchange(t *testing.T) {
	rec := &exchangeRecorder{}
	tr := convTrainer(t, 2, "topk", 0.05, false, 6, nil)
	tr.exchange = rec
	if _, _, err := tr.Run(4); err != nil {
		t.Fatal(err)
	}
	if len(rec.steps) != 4 {
		t.Fatalf("exchange called %d times, want 4", len(rec.steps))
	}
	for i, s := range rec.steps {
		if s != i {
			t.Errorf("exchange step %d reported as %d", i, s)
		}
	}
}
