package dist

import (
	"fmt"

	"repro/internal/simgrad"
)

// GradProfile describes the statistical character of a workload's
// gradient stream (fed to internal/simgrad by the simulator). The
// parameters follow the paper's fitting study: all benchmarks are
// well-described by sparsity-inducing double-sided distributions whose
// scale decays and whose tail sharpens as training progresses.
type GradProfile struct {
	// Family is the base marginal distribution.
	Family simgrad.Family
	// Shape is the family shape parameter (gamma/GP families).
	Shape float64
	// Scale is the initial typical |g|.
	Scale float64
	// ScaleDecay shrinks the scale over iterations (Figure 2's decay).
	ScaleDecay float64
	// SharpenRate sharpens the tail over iterations (gamma family).
	SharpenRate float64
	// OutlierFrac injects rare large-magnitude elements that stress
	// max-based threshold heuristics.
	OutlierFrac float64
}

// Workload is one row of the paper's Table 1 benchmark suite.
type Workload struct {
	// Name is the registry key ("lstm-ptb", "vgg16-cifar10", ...).
	Name string
	// Task is the human-readable task description.
	Task string
	// Dim is the model parameter count d.
	Dim int
	// BatchSize is the per-worker batch size.
	BatchSize int
	// LR is the base learning rate.
	LR float64
	// Epochs is the training budget.
	Epochs int
	// CommOverhead is the fraction of a no-compression iteration spent
	// communicating on the reference 8-node cluster (the column that
	// makes a workload communication- or compute-bound).
	CommOverhead float64
	// Optimizer names the local optimizer.
	Optimizer string
	// Quality names the benchmark's quality metric.
	Quality string
	// Grad parameterises the simulated gradient stream.
	Grad GradProfile
}

// table1 is the benchmark catalog in the paper's presentation order:
// the two RNN benchmarks, then the CIFAR-10 CNNs, then the ImageNet
// CNNs. Parameter counts match the micro-benchmark dimensions used
// throughout the figures.
var table1 = []Workload{
	{
		Name: "lstm-ptb", Task: "language modelling (PTB)",
		Dim: 66_034_000, BatchSize: 20, LR: 22, Epochs: 40,
		CommOverhead: 0.94, Optimizer: "nesterov", Quality: "perplexity",
		Grad: GradProfile{Family: simgrad.FamilyDoubleGamma, Shape: 0.55, Scale: 0.012,
			ScaleDecay: 0.002, SharpenRate: 0.001, OutlierFrac: 5e-6},
	},
	{
		Name: "lstm-an4", Task: "speech recognition (AN4)",
		Dim: 27_569_568, BatchSize: 8, LR: 0.0003, Epochs: 80,
		CommOverhead: 0.92, Optimizer: "adam", Quality: "WER/CER",
		Grad: GradProfile{Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01,
			ScaleDecay: 0.001, SharpenRate: 0.0008, OutlierFrac: 5e-6},
	},
	{
		Name: "resnet20-cifar10", Task: "image classification (CIFAR-10)",
		Dim: 269_467, BatchSize: 32, LR: 0.1, Epochs: 140,
		CommOverhead: 0.56, Optimizer: "nesterov", Quality: "top-1 accuracy",
		Grad: GradProfile{Family: simgrad.FamilyDoubleGamma, Shape: 0.7, Scale: 0.02,
			ScaleDecay: 0.003, SharpenRate: 0.002, OutlierFrac: 1e-5},
	},
	{
		Name: "vgg16-cifar10", Task: "image classification (CIFAR-10)",
		Dim: 14_982_987, BatchSize: 32, LR: 0.1, Epochs: 140,
		CommOverhead: 0.85, Optimizer: "nesterov", Quality: "top-1 accuracy",
		Grad: GradProfile{Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.015,
			ScaleDecay: 0.002, SharpenRate: 0.001, OutlierFrac: 1e-5},
	},
	{
		Name: "resnet50-imagenet", Task: "image classification (ImageNet)",
		Dim: 25_559_081, BatchSize: 64, LR: 0.1, Epochs: 90,
		CommOverhead: 0.72, Optimizer: "nesterov", Quality: "top-1 accuracy",
		Grad: GradProfile{Family: simgrad.FamilyDoubleGamma, Shape: 0.65, Scale: 0.012,
			ScaleDecay: 0.001, SharpenRate: 0.0008, OutlierFrac: 5e-6},
	},
	{
		Name: "vgg19-imagenet", Task: "image classification (ImageNet)",
		Dim: 143_667_240, BatchSize: 64, LR: 0.01, Epochs: 90,
		CommOverhead: 0.89, Optimizer: "nesterov", Quality: "top-1 accuracy",
		Grad: GradProfile{Family: simgrad.FamilyDoubleGP, Shape: 0.2, Scale: 0.01,
			ScaleDecay: 0.001, OutlierFrac: 5e-6},
	},
}

// Table1 returns the benchmark suite in presentation order. The slice is
// a copy; callers may reorder it freely.
func Table1() []Workload {
	out := make([]Workload, len(table1))
	copy(out, table1)
	return out
}

// WorkloadByName looks up one Table 1 entry.
func WorkloadByName(name string) (Workload, error) {
	for _, wl := range table1 {
		if wl.Name == name {
			return wl, nil
		}
	}
	return Workload{}, fmt.Errorf("dist: unknown workload %q", name)
}
