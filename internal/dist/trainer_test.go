package dist

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
)

// convTrainer builds the quickstart-sized conv workload: a small conv
// net on synthetic class-textured images.
func convTrainer(t *testing.T, workers int, comp string, delta float64, ec bool, seed int64, tap func(int, []float64)) *Trainer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := nn.NewSequential(
		nn.NewConv2D("c1", 3, 6, 3, rng),
		&nn.ReLU{},
		&nn.MaxPool2D{},
		&nn.Flatten{},
		nn.NewDense("d1", 6*5*5, 10, rng),
	)
	ds := data.NewImages(data.ImagesConfig{N: 256, Classes: 10, Seed: seed})
	var factory func() compress.Compressor
	switch comp {
	case "":
	case "topk":
		factory = func() compress.Compressor { return compress.NewTopK() }
	default:
		t.Fatalf("unknown compressor %q", comp)
	}
	tr, err := NewTrainer(TrainerConfig{
		Workers: workers,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			return ds.Batch(rng, 16)
		},
		NewCompressor: factory,
		Delta:         delta,
		EC:            ec,
		Seed:          seed,
		OnGradient:    tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunDeterministicAcrossRuns(t *testing.T) {
	// Two independent trainers with the same seed and 4 concurrent
	// workers must produce bit-identical losses, ratios and weights.
	run := func() ([]float64, []float64, []float64) {
		tr := convTrainer(t, 4, "topk", 0.01, true, 3, nil)
		losses, ratios, err := tr.Run(8)
		if err != nil {
			t.Fatal(err)
		}
		return losses, ratios, nn.FlattenWeights(tr.cfg.Model.Params(), nil)
	}
	l1, r1, w1 := run()
	l2, r2, w2 := run()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("loss[%d] differs: %v vs %v", i, l1[i], l2[i])
		}
		if r1[i] != r2[i] {
			t.Fatalf("ratio[%d] differs: %v vs %v", i, r1[i], r2[i])
		}
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weight[%d] differs: %v vs %v", i, w1[i], w2[i])
		}
	}
}

func TestLossDecreasesOnConvWorkload(t *testing.T) {
	tr := convTrainer(t, 2, "", 0, false, 1, nil)
	losses, ratios, err := tr.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	head := mean(losses[:10])
	tail := mean(losses[50:])
	if tail >= head {
		t.Errorf("loss did not decrease: first-10 mean %v, last-10 mean %v", head, tail)
	}
	for i, r := range ratios {
		if r != 1 {
			t.Fatalf("dense run ratio[%d] = %v, want 1", i, r)
		}
	}
}

func TestTopKRatioIsExact(t *testing.T) {
	tr := convTrainer(t, 2, "topk", 0.01, false, 2, nil)
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if tr.LastRatio != 1 {
		t.Errorf("exact Top-k should achieve k-hat/k = 1, got %v", tr.LastRatio)
	}
}

// TestECAccumulatesResiduals checks the purpose of error feedback: with
// EC, the cumulative weight movement of a compressed run tracks the
// uncompressed run's direction better than without EC, because
// suppressed gradient mass is re-injected instead of lost.
func TestECAccumulatesResiduals(t *testing.T) {
	const iters = 50
	final := func(comp string, delta float64, ec bool) []float64 {
		tr := convTrainer(t, 2, comp, delta, ec, 5, nil)
		w0 := nn.FlattenWeights(tr.cfg.Model.Params(), nil)
		if _, _, err := tr.Run(iters); err != nil {
			t.Fatal(err)
		}
		w1 := nn.FlattenWeights(tr.cfg.Model.Params(), nil)
		for i := range w1 {
			w1[i] -= w0[i]
		}
		return w1 // total weight movement
	}
	dense := final("", 0, false)
	withEC := final("topk", 0.01, true)
	without := final("topk", 0.01, false)
	if c1, c2 := cosine(withEC, dense), cosine(without, dense); c1 <= c2 {
		t.Errorf("EC update direction should track the dense run better: cos(EC)=%v <= cos(noEC)=%v", c1, c2)
	}
}

func TestOnGradientTapSeesEveryIteration(t *testing.T) {
	var iters []int
	var dims []int
	tap := func(i int, g []float64) {
		iters = append(iters, i)
		dims = append(dims, len(g))
	}
	tr := convTrainer(t, 2, "topk", 0.05, false, 4, tap)
	if _, _, err := tr.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 5 {
		t.Fatalf("tap called %d times, want 5", len(iters))
	}
	for i, it := range iters {
		if it != i {
			t.Errorf("tap iteration %d reported as %d", i, it)
		}
		if dims[i] != tr.Dim() {
			t.Errorf("tap gradient length %d, want %d", dims[i], tr.Dim())
		}
	}
}

// TestFirstWorkerReproducesGlobalStreams pins the contract behind
// multi-process training: a Workers=1 trainer with FirstWorker=r must
// hand its Batch callback global worker id r and the exact RNG stream
// worker r of a full-width trainer draws — so the union of per-process
// trainers consumes the same batches as one in-process trainer.
func TestFirstWorkerReproducesGlobalStreams(t *testing.T) {
	const seed, steps = 5, 3
	draws := func(workers, firstWorker int) map[int][]float64 {
		rng := rand.New(rand.NewSource(seed))
		model := nn.NewSequential(nn.NewDense("d", 4, 2, rng))
		got := map[int][]float64{}
		var mu sync.Mutex // Batch runs concurrently across workers
		tr, err := NewTrainer(TrainerConfig{
			Workers: workers,
			Model:   model,
			Loss:    &nn.SoftmaxCrossEntropy{},
			Opt:     &nn.SGD{LR: 0.01},
			Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
				mu.Lock()
				got[worker] = append(got[worker], rng.Float64())
				mu.Unlock()
				x := nn.NewTensor(1, 4)
				return x, []int{0}
			},
			Seed:        seed,
			FirstWorker: firstWorker,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := tr.Run(steps); err != nil {
			t.Fatal(err)
		}
		return got
	}
	full := draws(3, 0)
	if len(full) != 3 {
		t.Fatalf("full trainer drew for %d workers, want 3", len(full))
	}
	for rank := 0; rank < 3; rank++ {
		solo := draws(1, rank)
		stream, ok := solo[rank]
		if !ok {
			t.Fatalf("FirstWorker=%d trainer passed ids %v to Batch, want [%d]", rank, solo, rank)
		}
		if len(stream) != steps {
			t.Fatalf("rank %d drew %d batches, want %d", rank, len(stream), steps)
		}
		for i := range stream {
			if stream[i] != full[rank][i] {
				t.Fatalf("rank %d draw %d = %v, full trainer's worker %d drew %v (streams must match)",
					rank, i, stream[i], rank, full[rank][i])
			}
		}
	}
	if _, err := NewTrainer(TrainerConfig{Workers: 1, FirstWorker: -1}); err == nil {
		t.Error("negative FirstWorker should error")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewSequential(nn.NewDense("d", 4, 2, rng))
	batch := func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
		return nn.NewTensor(1, 4), []int{0}
	}
	valid := TrainerConfig{
		Workers: 2, Model: model, Loss: &nn.SoftmaxCrossEntropy{},
		Opt: &nn.SGD{LR: 0.1}, Batch: batch,
	}
	if _, err := NewTrainer(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(c *TrainerConfig)
	}{
		{"zero workers", func(c *TrainerConfig) { c.Workers = 0 }},
		{"nil model", func(c *TrainerConfig) { c.Model = nil }},
		{"nil loss", func(c *TrainerConfig) { c.Loss = nil }},
		{"nil opt", func(c *TrainerConfig) { c.Opt = nil }},
		{"nil batch", func(c *TrainerConfig) { c.Batch = nil }},
		{"bad delta", func(c *TrainerConfig) {
			c.NewCompressor = func() compress.Compressor { return compress.NewTopK() }
			c.Delta = 0
		}},
		{"delta above one", func(c *TrainerConfig) {
			c.NewCompressor = func() compress.Compressor { return compress.NewTopK() }
			c.Delta = 1.5
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := valid
			c.mutate(&cfg)
			if _, err := NewTrainer(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDimMatchesParamCount(t *testing.T) {
	tr := convTrainer(t, 1, "", 0, false, 1, nil)
	if got, want := tr.Dim(), nn.ParamCount(tr.cfg.Model.Params()); got != want {
		t.Errorf("Dim() = %d, want %d", got, want)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	return dot / math.Sqrt(na*nb)
}
