package dist

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/encoding"
	"repro/internal/nn"
)

// quantTrainer builds the conv workload with an optional EC wire format
// and compression parallelism.
func quantTrainer(t *testing.T, wire *encoding.Format, parallelism int, seed int64) *Trainer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := nn.NewSequential(
		nn.NewConv2D("c1", 3, 6, 3, rng),
		&nn.ReLU{},
		&nn.MaxPool2D{},
		&nn.Flatten{},
		nn.NewDense("d1", 6*5*5, 10, rng),
	)
	ds := data.NewImages(data.ImagesConfig{N: 256, Classes: 10, Seed: seed})
	tr, err := NewTrainer(TrainerConfig{
		Workers: 2,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			return ds.Batch(rng, 16)
		},
		NewCompressor: func() compress.Compressor { return compress.NewTopK() },
		Delta:         0.05,
		EC:            true,
		ECWire:        wire,
		Parallelism:   parallelism,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestInt8WireConverges trains the conv workload over the int8 EC wire
// and requires the final loss within a small tolerance of the fp64-wire
// run: the quantization residual is fed back, so 8x narrower values do
// not change where training lands, only its rounding path.
func TestInt8WireConverges(t *testing.T) {
	const iters = 60
	run := func(wire *encoding.Format) []float64 {
		losses, _, err := quantTrainer(t, wire, 0, 9).Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	ref := run(nil)
	i8 := encoding.FormatPairsI8
	quant := run(&i8)
	refTail, quantTail := mean(ref[iters-10:]), mean(quant[iters-10:])
	if quantTail > refTail*1.10+0.02 {
		t.Errorf("int8 wire final loss %v, fp64 wire %v: more than 10%% worse", quantTail, refTail)
	}
	// And it must actually have trained.
	if head := mean(quant[:10]); quantTail >= head {
		t.Errorf("int8 wire loss did not decrease: first-10 mean %v, last-10 mean %v", head, quantTail)
	}
}

// TestTrainerParallelismBitIdentical pins the Parallelism knob's
// determinism contract end to end: the full loss trajectory and final
// weights of a multi-core-compression run are bit-identical to the
// single-core run.
func TestTrainerParallelismBitIdentical(t *testing.T) {
	const iters = 6
	run := func(parallelism int) ([]float64, []float64) {
		tr := quantTrainer(t, nil, parallelism, 11)
		losses, _, err := tr.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return losses, nn.FlattenWeights(tr.cfg.Model.Params(), nil)
	}
	l1, w1 := run(0)
	l8, w8 := run(8)
	for i := range l1 {
		if l1[i] != l8[i] {
			t.Fatalf("loss[%d]: %v (P=1) != %v (P=8)", i, l1[i], l8[i])
		}
	}
	for i := range w1 {
		if w1[i] != w8[i] {
			t.Fatalf("weight[%d]: %v (P=1) != %v (P=8)", i, w1[i], w8[i])
		}
	}
}
