package dist

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/nn"
)

// allocTrainer builds a trainer whose Batch callback reuses its tensors,
// so the measurement isolates the engine's own per-step garbage.
func allocTrainer(t *testing.T, workers int, factory func() compress.Compressor) *Trainer {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	model := nn.NewSequential(
		nn.NewDense("d1", 24, 16, rng),
		&nn.ReLU{},
		nn.NewDense("d2", 16, 4, rng),
	)
	const batch = 8
	xs := make([]*nn.Tensor, workers)
	ts := make([][]int, workers)
	for w := range xs {
		xs[w] = nn.NewTensor(batch, 24)
		ts[w] = make([]int, batch)
	}
	tr, err := NewTrainer(TrainerConfig{
		Workers: workers,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			x, targets := xs[worker], ts[worker]
			for i := range targets {
				targets[i] = rng.Intn(4)
				for j := 0; j < 24; j++ {
					x.Data[i*24+j] = rng.NormFloat64() + float64(targets[i])
				}
			}
			return x, targets
		},
		NewCompressor: factory,
		Delta:         0.05,
		EC:            factory != nil,
		ClipNorm:      5,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestStepSteadyStateAllocs is the PR's acceptance criterion: after
// warm-up, a full synchronous training step — batch draw, forward,
// backward, clip, EC + SIDCo compression, in-process exchange, optimizer
// update — must stay within a small constant allocation budget. The
// multi-worker case tolerates the runtime's goroutine bookkeeping; the
// single-worker case runs inline and must be allocation-free.
func TestStepSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		factory func() compress.Compressor
		budget  float64
	}{
		{"1worker-sidco-ec", 1, func() compress.Compressor { return core.NewE() }, 0},
		{"2workers-sidco-ec", 2, func() compress.Compressor { return core.NewE() }, 8},
		{"4workers-topk-ec", 4, func() compress.Compressor { return compress.NewTopK() }, 8},
		{"2workers-dense", 2, nil, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := allocTrainer(t, tc.workers, tc.factory)
			for i := 0; i < 30; i++ { // warm every scratch buffer
				if _, err := tr.Step(); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := tr.Step(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.budget {
				t.Errorf("Step allocates %v objects/op in steady state, budget %v", allocs, tc.budget)
			}
		})
	}
}
