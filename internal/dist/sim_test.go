package dist

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/netsim"
)

func topkFactory() compress.Compressor  { return compress.NewTopK() }
func sidcoFactory() compress.Compressor { return core.NewE() }

func TestTable1Catalog(t *testing.T) {
	wls := Table1()
	if len(wls) != 6 {
		t.Fatalf("Table 1 has %d workloads, want 6", len(wls))
	}
	seen := map[string]bool{}
	for _, wl := range wls {
		if wl.Dim <= 0 || wl.BatchSize <= 0 || wl.Epochs <= 0 {
			t.Errorf("%s: degenerate dimensions %+v", wl.Name, wl)
		}
		if wl.CommOverhead <= 0 || wl.CommOverhead >= 1 {
			t.Errorf("%s: comm overhead %v outside (0, 1)", wl.Name, wl.CommOverhead)
		}
		if seen[wl.Name] {
			t.Errorf("duplicate workload %q", wl.Name)
		}
		seen[wl.Name] = true
		got, err := WorkloadByName(wl.Name)
		if err != nil {
			t.Errorf("WorkloadByName(%q): %v", wl.Name, err)
		}
		if got.Dim != wl.Dim {
			t.Errorf("WorkloadByName(%q) roundtrip mismatch", wl.Name)
		}
	}
	if ptb, _ := WorkloadByName("lstm-ptb"); ptb.Dim != 66_034_000 || ptb.CommOverhead != 0.94 {
		t.Errorf("lstm-ptb catalog entry drifted: %+v", ptb)
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Error("unknown workload should error")
	}
	// Table1 returns a copy: mutating it must not corrupt the catalog.
	wls[0].Dim = 1
	if again := Table1(); again[0].Dim == 1 {
		t.Error("Table1 exposed internal catalog storage")
	}
}

// TestSimulatedSpeedupOnCommBoundWorkload checks the paper's core claim
// end to end: on a communication-bound workload (LSTM-PTB spends 94% of
// a dense iteration communicating), aggressive sparsification at delta =
// 0.001 must beat the no-compression baseline.
func TestSimulatedSpeedupOnCommBoundWorkload(t *testing.T) {
	wl, err := WorkloadByName("lstm-ptb")
	if err != nil {
		t.Fatal(err)
	}
	base := SimConfig{
		Workload: wl,
		Net:      netsim.Cluster25GbE(8),
		Dev:      device.GPU(),
		Delta:    0.001,
		Iters:    20,
		SimScale: 1000,
		Seed:     1,
	}
	none, err := SimulateWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, factory := range map[string]func() compress.Compressor{
		"topk": topkFactory, "sidco-e": sidcoFactory,
	} {
		cfg := base
		cfg.NewCompressor = factory
		res, err := SimulateWorkload(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.CommTime >= none.CommTime {
			t.Errorf("%s: sparse comm %v not cheaper than dense %v", name, res.CommTime, none.CommTime)
		}
		// Exact Top-k pays a full GPU sort at d = 66M, which can eat the
		// communication win — the paper's motivating observation. The
		// linear-time estimator must come out ahead overall.
		if name == "sidco-e" {
			if s := Speedup(res, none); s <= 1 {
				t.Errorf("%s: speedup %v at delta=0.001 on comm-bound workload, want > 1", name, s)
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	wl, _ := WorkloadByName("resnet20-cifar10")
	cfg := SimConfig{Workload: wl, NewCompressor: sidcoFactory, Delta: 0.01, Iters: 15, SimScale: 100, Seed: 7}
	a, err := SimulateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRatio != b.MeanRatio || a.IterTime != b.IterTime {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.RatioSeries {
		if a.RatioSeries[i] != b.RatioSeries[i] {
			t.Fatalf("ratio series diverges at %d", i)
		}
	}
}

func TestSimResultAccounting(t *testing.T) {
	wl, _ := WorkloadByName("vgg16-cifar10")
	res, err := SimulateWorkload(SimConfig{
		Workload: wl, NewCompressor: topkFactory, Delta: 0.01, Iters: 12, SimScale: 1000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RatioSeries) != 12 {
		t.Errorf("RatioSeries has %d entries, want 12", len(res.RatioSeries))
	}
	if sum := res.ComputeTime + res.CompressTime + res.CommTime; math.Abs(sum-res.IterTime)/res.IterTime > 1e-9 {
		t.Errorf("IterTime %v != compute+compress+comm %v", res.IterTime, sum)
	}
	if res.Throughput <= 0 {
		t.Errorf("Throughput = %v", res.Throughput)
	}
	if res.MeanRatio != 1 || res.GeoMeanRatio != 1 {
		t.Errorf("exact Top-k ratios should be 1: mean %v geo %v", res.MeanRatio, res.GeoMeanRatio)
	}
	if res.Workload != "vgg16-cifar10" || res.Compressor != "topk" {
		t.Errorf("run labels wrong: %+v", res)
	}
}

func TestSimulateDefaultsAndErrors(t *testing.T) {
	wl, _ := WorkloadByName("resnet20-cifar10")
	// Zero Net/Dev/Iters/SimScale take documented defaults.
	res, err := SimulateWorkload(SimConfig{Workload: wl, Delta: 0.01, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.IterTime <= 0 || res.Compressor != "none" {
		t.Errorf("defaulted run wrong: %+v", res)
	}
	if _, err := SimulateWorkload(SimConfig{Delta: 0.01}); err == nil {
		t.Error("empty workload should error")
	}
	if _, err := SimulateWorkload(SimConfig{Workload: wl, NewCompressor: topkFactory, Delta: 0}); err == nil {
		t.Error("bad delta with a compressor should error")
	}
	for _, net := range []netsim.Network{
		{Workers: 8},         // bandwidth forgotten
		{BandwidthBps: 10e9}, // workers forgotten
		{Workers: -1, BandwidthBps: 10e9},
		{Workers: 8, BandwidthBps: 25e9, LatencySec: -1e-3},
	} {
		if _, err := SimulateWorkload(SimConfig{Workload: wl, Net: net, Delta: 0.01}); err == nil {
			t.Errorf("half-specified network %+v should error, not default or simulate free comms", net)
		}
	}
	badDev := device.Profile{Name: "custom"} // rates forgotten
	if _, err := SimulateWorkload(SimConfig{Workload: wl, Dev: badDev, Delta: 0.01}); err == nil {
		t.Error("half-specified device profile should error, not produce Inf latencies")
	}
}

// TestSimulateCollectiveKnob checks that SimulateWorkload prices the
// chosen topology: the parameter server's central bottleneck must cost
// more than the all-gather on the same sparse run, and explicit choices
// must reproduce the Auto pairing.
func TestSimulateCollectiveKnob(t *testing.T) {
	wl, err := WorkloadByName("vgg16-cifar10")
	if err != nil {
		t.Fatal(err)
	}
	run := func(coll netsim.Collective, factory func() compress.Compressor) *SimResult {
		res, err := SimulateWorkload(SimConfig{
			Workload:      wl,
			Collective:    coll,
			NewCompressor: factory,
			Delta:         0.01,
			Iters:         10,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	auto := run(netsim.CollectiveAuto, topkFactory)
	ag := run(netsim.CollectiveAllGather, topkFactory)
	ps := run(netsim.CollectivePS, topkFactory)
	if auto.CommTime != ag.CommTime {
		t.Errorf("auto sparse comm %v != all-gather %v", auto.CommTime, ag.CommTime)
	}
	if ps.CommTime <= ag.CommTime {
		t.Errorf("PS comm %v should exceed all-gather %v (central dense pull)", ps.CommTime, ag.CommTime)
	}
	// Dense runs: auto and ring agree.
	autoDense := run(netsim.CollectiveAuto, nil)
	ringDense := run(netsim.CollectiveRing, nil)
	if autoDense.CommTime != ringDense.CommTime {
		t.Errorf("auto dense comm %v != ring %v", autoDense.CommTime, ringDense.CommTime)
	}
}

// TestComputeTimeIsFabricInvariant pins compute to the reference
// cluster's overhead calibration: swapping the fabric must change only
// the communication stage, not the modelled forward+backward time.
func TestComputeTimeIsFabricInvariant(t *testing.T) {
	wl, _ := WorkloadByName("resnet50-imagenet")
	run := func(net netsim.Network) *SimResult {
		res, err := SimulateWorkload(SimConfig{
			Workload: wl, Net: net, NewCompressor: topkFactory, Delta: 0.01, Iters: 5, SimScale: 1000, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow := run(netsim.Cluster25GbE(8))
	fast := run(netsim.NVLinkNode(8))
	if slow.ComputeTime != fast.ComputeTime {
		t.Errorf("compute time moved with the fabric: %v vs %v", slow.ComputeTime, fast.ComputeTime)
	}
	if fast.CommTime >= slow.CommTime {
		t.Errorf("NVLink comm %v not cheaper than 25GbE %v", fast.CommTime, slow.CommTime)
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	a := &SimResult{IterTime: 1}
	b := &SimResult{IterTime: 2}
	if got := Speedup(a, b); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if !math.IsNaN(Speedup(nil, b)) || !math.IsNaN(Speedup(&SimResult{}, b)) {
		t.Error("degenerate speedups should be NaN")
	}
}
