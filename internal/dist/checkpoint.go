package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/compress"
	"repro/internal/nn"
)

// Checkpoint is the deterministic-resume state of a Trainer: everything
// a fresh process needs to continue training bit-identically to a run
// that never stopped. Weights are the flattened model parameters in
// parameter order; Residuals carries each local worker's error-feedback
// residual (empty when the worker runs without EC). RNG stream
// positions are not serialised — they are reconstructed on Restore by
// replaying the completed steps' batch draws, which is exact because a
// worker's draws depend only on its seeded stream, never on the
// weights.
//
// The guarantee is scoped to state the checkpoint actually captures:
// stateless optimizers (nn.SGD) and compressors whose only cross-step
// state is the EC residual (topk, threshold, none). Adaptive
// compressors (the SIDCo estimators' per-iteration adaptation) and
// stateful optimizers resume functionally but not bit-identically.
type Checkpoint struct {
	Step        int   // completed steps; resume continues at this iteration
	Seed        int64 // must match the resuming trainer's Seed
	Workers     int   // local worker count of the checkpointing trainer
	FirstWorker int   // worker-id offset of the checkpointing trainer
	Weights     []float64
	Residuals   [][]float64 // per local worker; nil/empty when no EC
}

// Checkpoint captures the trainer's current resume state. The trainer
// must be quiescent (between Step calls).
func (t *Trainer) Checkpoint() (*Checkpoint, error) {
	if _, ok := t.cfg.Opt.(*nn.SGD); !ok {
		return nil, fmt.Errorf("dist: checkpointing supports stateless optimizers (nn.SGD); %T carries state the checkpoint would lose", t.cfg.Opt)
	}
	c := &Checkpoint{
		Step:        t.iter,
		Seed:        t.cfg.Seed,
		Workers:     t.cfg.Workers,
		FirstWorker: t.cfg.FirstWorker,
		Weights:     make([]float64, 0, t.dim),
		Residuals:   make([][]float64, t.cfg.Workers),
	}
	for _, p := range t.params {
		c.Weights = append(c.Weights, p.W...)
	}
	for i, w := range t.workers {
		if ec, ok := w.comp.(*compress.ErrorFeedback); ok {
			if res := ec.Residual(); res != nil {
				c.Residuals[i] = append([]float64(nil), res...)
			}
		}
	}
	return c, nil
}

// Iter returns the number of completed steps.
func (t *Trainer) Iter() int { return t.iter }

// Restore rewinds a freshly constructed trainer onto a checkpoint:
// weights and per-worker EC residuals are overwritten, and each
// worker's RNG stream is fast-forwarded by replaying the completed
// steps' batch draws. The trainer must have been built with the same
// Seed, Workers, FirstWorker, model shape and Batch function as the
// checkpointing one, and must not have stepped yet. After Restore, the
// next Step is bit-identical to step c.Step of an uninterrupted run
// (within the Checkpoint type's stateless-optimizer/compressor scope).
func (t *Trainer) Restore(c *Checkpoint) error {
	if t.iter != 0 {
		return fmt.Errorf("dist: Restore on a trainer that already ran %d steps; restore before stepping", t.iter)
	}
	if _, ok := t.cfg.Opt.(*nn.SGD); !ok {
		return fmt.Errorf("dist: checkpoint resume supports stateless optimizers (nn.SGD), got %T", t.cfg.Opt)
	}
	if c.Seed != t.cfg.Seed {
		return fmt.Errorf("dist: checkpoint seed %d, trainer seed %d", c.Seed, t.cfg.Seed)
	}
	if c.Workers != t.cfg.Workers || c.FirstWorker != t.cfg.FirstWorker {
		return fmt.Errorf("dist: checkpoint covers workers %d+%d, trainer hosts %d+%d",
			c.FirstWorker, c.Workers, t.cfg.FirstWorker, t.cfg.Workers)
	}
	if len(c.Weights) != t.dim {
		return fmt.Errorf("dist: checkpoint has %d weights, model has %d", len(c.Weights), t.dim)
	}
	if len(c.Residuals) != len(t.workers) {
		return fmt.Errorf("dist: checkpoint has %d residual slots, trainer has %d workers", len(c.Residuals), len(t.workers))
	}
	off := 0
	for _, p := range t.params {
		copy(p.W, c.Weights[off:off+len(p.W)])
		off += len(p.W)
	}
	for i, w := range t.workers {
		res := c.Residuals[i]
		ec, ok := w.comp.(*compress.ErrorFeedback)
		if !ok {
			if len(res) > 0 {
				return fmt.Errorf("dist: checkpoint carries an EC residual for worker %d, but the trainer runs without error feedback", w.id)
			}
			continue
		}
		if len(res) > 0 && len(res) != t.dim {
			return fmt.Errorf("dist: worker %d residual has %d elements, model has %d", w.id, len(res), t.dim)
		}
		ec.RestoreResidual(res)
	}
	// Fast-forward every worker's RNG to its post-step-c.Step position by
	// replaying the batch draws of the completed steps. Draw order within
	// a step is irrelevant (streams are per-worker), and the draws cannot
	// depend on weights, so replay is exact.
	for step := 0; step < c.Step; step++ {
		for _, w := range t.workers {
			t.cfg.Batch(w.id, w.rng)
		}
	}
	t.iter = c.Step
	return nil
}

// ckptMagic identifies the checkpoint wire format. The format is custom
// binary (little-endian, float64 bits verbatim) because resume is gated
// bitwise: a decimal round-trip would be a correctness bug.
var ckptMagic = [8]byte{'S', 'D', 'C', 'K', 'P', 'T', '1', '\n'}

// WriteCheckpoint serialises c. Layout after the 8-byte magic, all
// little-endian: step i64 | seed i64 | workers i32 | firstWorker i32 |
// dim i64 | dim×f64 weights | workers × (rlen i64 | rlen×f64 residual).
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	if _, err := w.Write(ckptMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	hdr := []interface{}{
		int64(c.Step), c.Seed, int32(c.Workers), int32(c.FirstWorker), int64(len(c.Weights)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, le, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, le, c.Weights); err != nil {
		return err
	}
	if len(c.Residuals) != c.Workers {
		return fmt.Errorf("dist: checkpoint has %d residual slots for %d workers", len(c.Residuals), c.Workers)
	}
	for _, res := range c.Residuals {
		if err := binary.Write(w, le, int64(len(res))); err != nil {
			return err
		}
		if err := binary.Write(w, le, res); err != nil {
			return err
		}
	}
	return nil
}

// ReadCheckpoint deserialises a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("dist: reading checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("dist: not a checkpoint file (magic %q)", magic[:])
	}
	le := binary.LittleEndian
	var step, seed, dim int64
	var workers, firstWorker int32
	for _, v := range []interface{}{&step, &seed, &workers, &firstWorker, &dim} {
		if err := binary.Read(r, le, v); err != nil {
			return nil, fmt.Errorf("dist: reading checkpoint header: %w", err)
		}
	}
	if step < 0 || workers < 1 || firstWorker < 0 || dim < 0 || dim > 1<<30 {
		return nil, fmt.Errorf("dist: implausible checkpoint header (step %d, workers %d, firstWorker %d, dim %d)", step, workers, firstWorker, dim)
	}
	c := &Checkpoint{
		Step:        int(step),
		Seed:        seed,
		Workers:     int(workers),
		FirstWorker: int(firstWorker),
		Weights:     make([]float64, dim),
		Residuals:   make([][]float64, workers),
	}
	if err := binary.Read(r, le, c.Weights); err != nil {
		return nil, fmt.Errorf("dist: reading checkpoint weights: %w", err)
	}
	for i := range c.Residuals {
		var rlen int64
		if err := binary.Read(r, le, &rlen); err != nil {
			return nil, fmt.Errorf("dist: reading residual %d length: %w", i, err)
		}
		if rlen < 0 || rlen > 1<<30 {
			return nil, fmt.Errorf("dist: implausible residual length %d", rlen)
		}
		if rlen == 0 {
			continue
		}
		c.Residuals[i] = make([]float64, rlen)
		if err := binary.Read(r, le, c.Residuals[i]); err != nil {
			return nil, fmt.Errorf("dist: reading residual %d: %w", i, err)
		}
	}
	return c, nil
}

// SaveCheckpoint atomically writes c to path (temp file + rename, so a
// crash mid-write never leaves a torn checkpoint behind).
func SaveCheckpoint(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(tmp, c); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a checkpoint file written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
