// Package tensor provides the dense/sparse vector substrate for gradient
// compression: elementwise operations, exact top-k selection via
// quickselect and sorting, threshold filtering, and a sparse vector type
// that carries (index, value) pairs between compressor and collective.
package tensor

import "math"

// Axpy computes y += a*x elementwise. The two slices must have equal
// length.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, xi := range x {
		y[i] += a * xi
	}
}

// Scale multiplies every element of x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Add computes y += x elementwise.
func Add(x, y []float64) { Axpy(1, x, y) }

// Sub computes y -= x elementwise.
func Sub(x, y []float64) { Axpy(-1, x, y) }

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Zero sets every element of x to 0.
func Zero(x []float64) { Fill(x, 0) }

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Abs writes |x| into dst and returns it; dst may be x itself for in-place
// operation, or nil to allocate.
func Abs(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(x))
	}
	if len(dst) != len(x) {
		panic("tensor: Abs length mismatch")
	}
	for i, xi := range x {
		dst[i] = math.Abs(xi)
	}
	return dst
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	sum := 0.0
	for i, xi := range x {
		sum += xi * y[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	sum := 0.0
	for _, xi := range x {
		sum += xi * xi
	}
	return math.Sqrt(sum)
}

// Norm1 returns the l1 norm of x.
func Norm1(x []float64) float64 {
	sum := 0.0
	for _, xi := range x {
		sum += math.Abs(xi)
	}
	return sum
}

// NormInf returns the l-infinity norm of x.
func NormInf(x []float64) float64 {
	max := 0.0
	for _, xi := range x {
		if a := math.Abs(xi); a > max {
			max = a
		}
	}
	return max
}

// CountAboveThreshold returns the number of elements with |x_i| >= eta —
// the single O(d) pass at the heart of threshold sparsification.
func CountAboveThreshold(x []float64, eta float64) int {
	n := 0
	for _, xi := range x {
		if math.Abs(xi) >= eta {
			n++
		}
	}
	return n
}

// FilterAboveThreshold appends the indices and values of elements with
// |x_i| >= eta to the provided slices (which may be nil) and returns them.
// This is the compression operator C_eta of Section 2.3.
func FilterAboveThreshold(x []float64, eta float64, idx []int32, vals []float64) ([]int32, []float64) {
	for i, xi := range x {
		if math.Abs(xi) >= eta {
			idx = append(idx, int32(i))
			vals = append(vals, xi)
		}
	}
	return idx, vals
}

// ValuesAboveThreshold appends the |values| of elements with |x_i| > eta to
// dst and returns it. The strict inequality matches the exceedance
// definition of the multi-stage estimator (values equal to the previous
// threshold have already been counted).
func ValuesAboveThreshold(x []float64, eta float64, dst []float64) []float64 {
	for _, xi := range x {
		if a := math.Abs(xi); a > eta {
			dst = append(dst, a)
		}
	}
	return dst
}

// SparsificationError returns ||g - T_k(g)||_2 given the dense vector and
// the set of kept indices — the sigma_k(g) of Definition 1, used to verify
// gradient compressibility (Figure 7b).
func SparsificationError(g []float64, kept []int32) float64 {
	keptSet := make(map[int32]struct{}, len(kept))
	for _, i := range kept {
		keptSet[i] = struct{}{}
	}
	sum := 0.0
	for i, gi := range g {
		if _, ok := keptSet[int32(i)]; !ok {
			sum += gi * gi
		}
	}
	return math.Sqrt(sum)
}
