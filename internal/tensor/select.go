package tensor

import (
	"math"
	"sort"

	"repro/internal/par"
)

// Selector carries the scratch of the radix top-k selection — the 64K
// first-digit histogram, the candidate-bit buffer, the quickselect |g|
// copy for small inputs and the cutoff-tie side lists — so steady-state
// selections allocate nothing. The zero value is ready; each compressor
// instance owns one (Selector is not concurrency-safe: parallelism is
// internal, via SetParallelism).
type Selector struct {
	counts  []int
	cands   []uint64
	abs     []float64
	tieIdx  []int32
	tieVals []float64
	par     int
	workers []selWorker
}

// selWorker is one worker's private scratch for the parallel counting,
// gather and filter passes.
type selWorker struct {
	counts  []int
	cands   []uint64
	idx     []int32
	vals    []float64
	tieIdx  []int32
	tieVals []float64
}

// SetParallelism sets how many goroutines the selection passes fan out
// over; p <= 1 selects the serial paths. Results are bit-identical at
// every p: workers own fixed contiguous index ranges (the par.RangeBounds
// split) and their integer counts, gathers and tie lists merge in worker
// order, reproducing exactly the order a single left-to-right pass
// produces.
func (sel *Selector) SetParallelism(p int) { sel.par = p }

func (sel *Selector) growWorkers(p int) {
	if len(sel.workers) < p {
		sel.workers = append(sel.workers, make([]selWorker, p-len(sel.workers))...)
	}
}

// TopKSelect returns the indices and values of the k elements of g with
// the largest absolute value, using an O(d) byte-wise radix select over
// the IEEE-754 bit patterns to find the magnitude cutoff followed by a
// filtering pass. Ties at the cutoff are broken by index order so exactly
// k elements are returned (or all of them when k >= len(g)). The returned
// indices are ascending.
//
// This is the exact Top-k operator T_k of Definition 1 and the reference
// against which every threshold estimator is judged. It allocates its
// scratch per call; hot paths hold a Selector and use TopKInto.
func TopKSelect(g []float64, k int) (idx []int32, vals []float64) {
	var sel Selector
	s := &Sparse{}
	sel.TopKInto(s, g, k)
	if s.NNZ() == 0 {
		return nil, nil
	}
	return s.Idx, s.Vals
}

// TopKInto appends the exact top-k selection of g to dst (which the
// caller typically Resets first), reusing the Selector's scratch. The
// selection — cutoff, tie-breaking, output order — is identical to
// TopKSelect's.
//
//sidco:hotpath
func (sel *Selector) TopKInto(dst *Sparse, g []float64, k int) {
	d := len(g)
	if k <= 0 || d == 0 {
		return
	}
	if k >= d {
		dst.Grow(len(dst.Idx) + d)
		for i, gi := range g {
			dst.Append(int32(i), gi)
		}
		return
	}

	cutoff := sel.AbsKth(g, k) // k-th largest magnitude

	dst.Grow(len(dst.Idx) + k)
	base := len(dst.Idx)
	// One pass: keep everything strictly above the cutoff (guaranteed
	// < k elements) and stash the cutoff-magnitude ties on the side, so
	// the tie fill never needs a second scan of g. Magnitude compares run
	// on the masked bit patterns (order-isomorphic for non-negative
	// floats), keeping the loop branch-cheap.
	cb := math.Float64bits(cutoff)
	if p := sel.par; p > 1 && len(g) >= radixMin {
		sel.filterPar(dst, g, k, cb, p)
	} else {
		tieIdx, tieVals := sel.tieIdx[:0], sel.tieVals[:0]
		for i, gi := range g {
			bits := math.Float64bits(gi) & absMask
			if bits > cb {
				dst.Append(int32(i), gi)
			} else if bits == cb && len(tieIdx) < k {
				// At most k ties can be kept (need = k - len(idx) <= k), so
				// capping here bounds the temporaries at O(k) even when the
				// cutoff magnitude is shared by most of g (e.g. a mostly-zero
				// gradient).
				tieIdx = append(tieIdx, int32(i))
				tieVals = append(tieVals, gi)
			}
		}
		sel.tieIdx, sel.tieVals = tieIdx, tieVals
	}
	// Fill the remainder with the lowest-index ties, merging the two
	// ascending lists in place from the back.
	if need := k - (len(dst.Idx) - base); need > 0 {
		mergeTiesInPlace(dst, base, sel.tieIdx[:need], sel.tieVals[:need])
	}
}

// mergeTiesInPlace merges the ascending tie list into dst[base:], itself
// ascending, walking backwards so no temporary output list is needed.
func mergeTiesInPlace(dst *Sparse, base int, tieIdx []int32, tieVals []float64) {
	na := len(dst.Idx) - base
	nb := len(tieIdx)
	dst.Grow(base + na + nb)
	dst.Idx = dst.Idx[:base+na+nb]
	dst.Vals = dst.Vals[:base+na+nb]
	i, j, w := base+na-1, nb-1, base+na+nb-1
	for j >= 0 {
		if i >= base && dst.Idx[i] > tieIdx[j] {
			dst.Idx[w], dst.Vals[w] = dst.Idx[i], dst.Vals[i]
			i--
		} else {
			dst.Idx[w], dst.Vals[w] = tieIdx[j], tieVals[j]
			j--
		}
		w--
	}
}

// QuickSelectKth returns the k-th largest value of xs (k is 1-based:
// k=1 returns the maximum). It partially reorders xs in place; pass a copy
// if the original order matters. It panics if k is out of range.
//
// The pivot is chosen by median-of-three, giving expected linear time on
// the heavy-tailed magnitude vectors gradients produce.
func QuickSelectKth(xs []float64, k int) float64 {
	if k < 1 || k > len(xs) {
		panic("tensor: QuickSelectKth k out of range")
	}
	// Select the element with descending rank k, i.e. ascending index
	// len(xs)-k.
	target := len(xs) - k
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case p == target:
			return xs[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return xs[target]
}

// partition performs Lomuto partition around a median-of-three pivot and
// returns the pivot's final index.
func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Order xs[lo] <= xs[mid] <= xs[hi], then use xs[mid] as the pivot by
	// stashing it at hi-1... simpler: move median to hi.
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	xs[mid], xs[hi] = xs[hi], xs[mid]
	pivot := xs[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}

// TopKThreshold returns the magnitude of the k-th largest |g_i| — the
// oracle threshold a perfect estimator would produce. It does not modify
// g.
func TopKThreshold(g []float64, k int) float64 {
	if k <= 0 || len(g) == 0 {
		return math.Inf(1)
	}
	if k >= len(g) {
		return 0
	}
	return RadixSelectAbsKth(g, k)
}

// absMask clears the sign bit of a float64 bit pattern. For non-negative
// floats the uint64 patterns order identically to the values, so |g_i|
// comparisons reduce to integer comparisons on masked bits.
const absMask = ^uint64(0) >> 1

// RadixSelectAbsKth returns the k-th largest |g_i| (k is 1-based: k=1
// returns the max magnitude) without modifying g, allocating fresh
// scratch per call. Hot paths hold a Selector and use AbsKth.
func RadixSelectAbsKth(g []float64, k int) float64 {
	var sel Selector
	return sel.AbsKth(g, k)
}

// AbsKth returns the k-th largest |g_i| (k is 1-based: k=1 returns the
// max magnitude) without modifying g. It runs a most-
// significant-byte-first radix select over the masked IEEE-754 bit
// patterns: one counting pass over all of g, one gather of the candidate
// bucket, then counting passes over geometrically shrinking candidate
// sets. Unlike quickselect it is swap-free, scratch is reused across
// calls, and the running time is O(d) worst case — on 1M-element
// gradients it is ~5x faster than median-of-three quickselect.
// It panics if k is out of range.
func (sel *Selector) AbsKth(g []float64, k int) float64 {
	if k < 1 || k > len(g) {
		panic("tensor: RadixSelectAbsKth k out of range")
	}
	if len(g) < radixMin {
		abs := append(sel.abs[:0], g...)
		for i, gi := range abs {
			abs[i] = math.Abs(gi)
		}
		sel.abs = abs
		return QuickSelectKth(abs, k)
	}
	// Level 0 counts the top 16 bits (sign cleared: the full 11-bit
	// exponent plus 5 mantissa bits) directly over g, avoiding a d-sized
	// |g| copy. A byte-wide first digit is too coarse for gradients —
	// heavy-tailed magnitudes concentrate within a few binades, which all
	// share one top byte — while 16 bits splits every binade 32 ways.
	if sel.counts == nil {
		sel.counts = make([]int, 1<<16)
	}
	counts := sel.counts
	var cands []uint64
	if p := sel.par; p > 1 {
		var chosen uint64
		chosen, k = sel.histogramPar(g, k, p)
		cands = sel.gatherPar(g, chosen, p)
	} else {
		for _, gi := range g {
			counts[(math.Float64bits(gi)&absMask)>>48]++
		}
		chosen, rem := pickBucket16(counts, k)
		bucketLen := counts[chosen]
		// The histogram is cleared before the next phase so the Selector is
		// reusable; a 512 KiB memclr is noise next to the counting pass.
		clear(counts)
		if cap(sel.cands) < bucketLen {
			sel.cands = make([]uint64, 0, bucketLen)
		}
		cands = sel.cands[:0]
		for _, gi := range g {
			bits := math.Float64bits(gi) & absMask
			if bits>>48 == chosen {
				cands = append(cands, bits)
			}
		}
		k = rem
	}
	return sel.refine(cands, k)
}

// Below this size the 64K-bucket histogram costs more than the
// selection (and fork-join overhead more than a pass over g);
// quickselect on an |g| copy wins and every pass stays serial.
const radixMin = 1 << 14

// histogramPar runs the level-0 counting pass on p workers over fixed
// contiguous ranges of g. Bucket counts are integers, so summing the
// per-worker histograms gives exactly the serial histogram; the merge
// itself fans out over bucket ranges (and clears the worker histograms
// in the same pass) to keep the 64K x p additions off the critical path.
func (sel *Selector) histogramPar(g []float64, k, p int) (chosen uint64, rem int) {
	sel.growWorkers(p)
	counts := sel.counts
	par.Do(p, func(w int) {
		c := counts
		if w > 0 {
			if sel.workers[w].counts == nil {
				sel.workers[w].counts = make([]int, 1<<16)
			}
			c = sel.workers[w].counts
		}
		lo, hi := par.RangeBounds(len(g), p, w)
		for _, gi := range g[lo:hi] {
			c[(math.Float64bits(gi)&absMask)>>48]++
		}
	})
	par.Do(p, func(w int) {
		blo, bhi := par.RangeBounds(1<<16, p, w)
		for x := 1; x < p; x++ {
			wc := sel.workers[x].counts
			for b := blo; b < bhi; b++ {
				counts[b] += wc[b]
				wc[b] = 0
			}
		}
	})
	chosen, rem = pickBucket16(counts, k)
	clear(counts)
	return chosen, rem
}

// gatherPar collects the chosen bucket's candidate bit patterns with p
// workers gathering their own ranges, concatenated in worker order —
// the same left-to-right candidate order the serial gather produces.
func (sel *Selector) gatherPar(g []float64, chosen uint64, p int) []uint64 {
	sel.growWorkers(p)
	par.Do(p, func(w int) {
		lo, hi := par.RangeBounds(len(g), p, w)
		out := sel.workers[w].cands[:0]
		for _, gi := range g[lo:hi] {
			bits := math.Float64bits(gi) & absMask
			if bits>>48 == chosen {
				out = append(out, bits)
			}
		}
		sel.workers[w].cands = out
	})
	cands := sel.cands[:0]
	for w := 0; w < p; w++ {
		cands = append(cands, sel.workers[w].cands...)
	}
	sel.cands = cands
	return cands
}

// refine walks the remaining 8-bit digits of the candidate set serially
// (the set shrinks geometrically, so this is never the hot pass) and
// returns the k-th largest magnitude.
func (sel *Selector) refine(cands []uint64, k int) float64 {
	for shift := 40; shift >= 0 && len(cands) > 1; shift -= 8 {
		var c [256]int
		for _, b := range cands {
			c[byte(b>>uint(shift))]++
		}
		ch, rem := pickBucket(&c, k)
		k = rem
		// In-place filter: the write index never outruns the read index.
		out := cands[:0]
		for _, b := range cands {
			if byte(b>>uint(shift)) == ch {
				out = append(out, b)
			}
		}
		cands = out
	}
	// Either one candidate remains or all surviving candidates share
	// every byte and are equal.
	kth := math.Float64frombits(cands[0])
	sel.cands = cands[:0]
	return kth
}

// filterPar is TopKInto's keep/tie pass at parallelism p: each worker
// filters its own contiguous range into private keep and tie lists
// (ties capped at k per worker — a worker that drops a tie has k kept
// ties before it, so the dropped tie's global rank exceeds k and the
// serial pass would never have kept it either), then the lists
// concatenate in worker order, reproducing the serial left-to-right
// output exactly.
func (sel *Selector) filterPar(dst *Sparse, g []float64, k int, cb uint64, p int) {
	sel.growWorkers(p)
	par.Do(p, func(w int) {
		lo, hi := par.RangeBounds(len(g), p, w)
		ws := &sel.workers[w]
		idx, vals := ws.idx[:0], ws.vals[:0]
		tieIdx, tieVals := ws.tieIdx[:0], ws.tieVals[:0]
		for i := lo; i < hi; i++ {
			gi := g[i]
			bits := math.Float64bits(gi) & absMask
			if bits > cb {
				idx = append(idx, int32(i))
				vals = append(vals, gi)
			} else if bits == cb && len(tieIdx) < k {
				tieIdx = append(tieIdx, int32(i))
				tieVals = append(tieVals, gi)
			}
		}
		ws.idx, ws.vals, ws.tieIdx, ws.tieVals = idx, vals, tieIdx, tieVals
	})
	tieIdx, tieVals := sel.tieIdx[:0], sel.tieVals[:0]
	for w := 0; w < p; w++ {
		ws := &sel.workers[w]
		for i := range ws.idx {
			dst.Append(ws.idx[i], ws.vals[i])
		}
		for i := 0; i < len(ws.tieIdx) && len(tieIdx) < k; i++ {
			tieIdx = append(tieIdx, ws.tieIdx[i])
			tieVals = append(tieVals, ws.tieVals[i])
		}
	}
	sel.tieIdx, sel.tieVals = tieIdx, tieVals
}

// pickBucket walks bucket counts from high byte value to low and returns
// the bucket containing the k-th largest element together with k's
// residual rank inside that bucket.
func pickBucket(counts *[256]int, k int) (byte, int) {
	for b := 255; b >= 0; b-- {
		if counts[b] >= k {
			return byte(b), k
		}
		k -= counts[b]
	}
	panic("tensor: radix bucket walk exhausted") // unreachable: sum(counts) >= k
}

// pickBucket16 is pickBucket for the 16-bit first digit.
func pickBucket16(counts []int, k int) (uint64, int) {
	for b := len(counts) - 1; b >= 0; b-- {
		if counts[b] >= k {
			return uint64(b), k
		}
		k -= counts[b]
	}
	panic("tensor: radix bucket walk exhausted") // unreachable: sum(counts) >= k
}

// TopKSort is a sort-based O(d log d) top-k used as a differential-testing
// oracle for TopKSelect and as the "slow Top-k" arm of the device model.
// Indices are returned in ascending order.
func TopKSort(g []float64, k int) (idx []int32, vals []float64) {
	d := len(g)
	if k <= 0 || d == 0 {
		return nil, nil
	}
	if k > d {
		k = d
	}
	order := make([]int32, d)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(g[order[a]]) > math.Abs(g[order[b]])
	})
	top := order[:k]
	sort.Slice(top, func(a, b int) bool { return top[a] < top[b] })
	idx = make([]int32, k)
	vals = make([]float64, k)
	for i, j := range top {
		idx[i] = j
		vals[i] = g[j]
	}
	return idx, vals
}

// SortedAbsDescending returns |g| sorted in descending order — the
// compressibility diagnostic vector of Figure 7a.
func SortedAbsDescending(g []float64) []float64 {
	abs := make([]float64, len(g))
	for i, gi := range g {
		abs[i] = math.Abs(gi)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(abs)))
	return abs
}
