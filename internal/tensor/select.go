package tensor

import (
	"math"
	"sort"
)

// TopKSelect returns the indices and values of the k elements of g with
// the largest absolute value, using an expected-O(d) quickselect to find
// the magnitude cutoff followed by a filtering pass. Ties at the cutoff
// are broken by index order so exactly k elements are returned (or all of
// them when k >= len(g)). The returned indices are ascending.
//
// This is the exact Top-k operator T_k of Definition 1 and the reference
// against which every threshold estimator is judged.
func TopKSelect(g []float64, k int) (idx []int32, vals []float64) {
	d := len(g)
	if k <= 0 || d == 0 {
		return nil, nil
	}
	if k >= d {
		idx = make([]int32, d)
		vals = make([]float64, d)
		for i, gi := range g {
			idx[i] = int32(i)
			vals[i] = gi
		}
		return idx, vals
	}

	abs := make([]float64, d)
	for i, gi := range g {
		abs[i] = math.Abs(gi)
	}
	cutoff := QuickSelectKth(abs, k) // k-th largest magnitude

	idx = make([]int32, 0, k)
	vals = make([]float64, 0, k)
	// First pass: strictly above the cutoff (guaranteed < k elements).
	for i, gi := range g {
		if math.Abs(gi) > cutoff {
			idx = append(idx, int32(i))
			vals = append(vals, gi)
		}
	}
	// Second pass: fill the remainder with elements equal to the cutoff.
	need := k - len(idx)
	if need > 0 {
		extraIdx := make([]int32, 0, need)
		extraVals := make([]float64, 0, need)
		for i, gi := range g {
			if math.Abs(gi) == cutoff {
				extraIdx = append(extraIdx, int32(i))
				extraVals = append(extraVals, gi)
				if len(extraIdx) == need {
					break
				}
			}
		}
		idx, vals = mergeSortedByIndex(idx, vals, extraIdx, extraVals)
	}
	return idx, vals
}

// mergeSortedByIndex merges two (index, value) lists, each ascending by
// index, into one ascending list.
func mergeSortedByIndex(ai []int32, av []float64, bi []int32, bv []float64) ([]int32, []float64) {
	outI := make([]int32, 0, len(ai)+len(bi))
	outV := make([]float64, 0, len(av)+len(bv))
	i, j := 0, 0
	for i < len(ai) && j < len(bi) {
		if ai[i] < bi[j] {
			outI = append(outI, ai[i])
			outV = append(outV, av[i])
			i++
		} else {
			outI = append(outI, bi[j])
			outV = append(outV, bv[j])
			j++
		}
	}
	outI = append(outI, ai[i:]...)
	outV = append(outV, av[i:]...)
	outI = append(outI, bi[j:]...)
	outV = append(outV, bv[j:]...)
	return outI, outV
}

// QuickSelectKth returns the k-th largest value of xs (k is 1-based:
// k=1 returns the maximum). It partially reorders xs in place; pass a copy
// if the original order matters. It panics if k is out of range.
//
// The pivot is chosen by median-of-three, giving expected linear time on
// the heavy-tailed magnitude vectors gradients produce.
func QuickSelectKth(xs []float64, k int) float64 {
	if k < 1 || k > len(xs) {
		panic("tensor: QuickSelectKth k out of range")
	}
	// Select the element with descending rank k, i.e. ascending index
	// len(xs)-k.
	target := len(xs) - k
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case p == target:
			return xs[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return xs[target]
}

// partition performs Lomuto partition around a median-of-three pivot and
// returns the pivot's final index.
func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Order xs[lo] <= xs[mid] <= xs[hi], then use xs[mid] as the pivot by
	// stashing it at hi-1... simpler: move median to hi.
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	xs[mid], xs[hi] = xs[hi], xs[mid]
	pivot := xs[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}

// TopKThreshold returns the magnitude of the k-th largest |g_i| — the
// oracle threshold a perfect estimator would produce. It does not modify
// g.
func TopKThreshold(g []float64, k int) float64 {
	if k <= 0 || len(g) == 0 {
		return math.Inf(1)
	}
	if k >= len(g) {
		return 0
	}
	abs := make([]float64, len(g))
	for i, gi := range g {
		abs[i] = math.Abs(gi)
	}
	return QuickSelectKth(abs, k)
}

// TopKSort is a sort-based O(d log d) top-k used as a differential-testing
// oracle for TopKSelect and as the "slow Top-k" arm of the device model.
// Indices are returned in ascending order.
func TopKSort(g []float64, k int) (idx []int32, vals []float64) {
	d := len(g)
	if k <= 0 || d == 0 {
		return nil, nil
	}
	if k > d {
		k = d
	}
	order := make([]int32, d)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(g[order[a]]) > math.Abs(g[order[b]])
	})
	top := order[:k]
	sort.Slice(top, func(a, b int) bool { return top[a] < top[b] })
	idx = make([]int32, k)
	vals = make([]float64, k)
	for i, j := range top {
		idx[i] = j
		vals[i] = g[j]
	}
	return idx, vals
}

// SortedAbsDescending returns |g| sorted in descending order — the
// compressibility diagnostic vector of Figure 7a.
func SortedAbsDescending(g []float64) []float64 {
	abs := make([]float64, len(g))
	for i, gi := range g {
		abs[i] = math.Abs(gi)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(abs)))
	return abs
}
