package tensor

import (
	"math"
	"sort"
)

// TopKSelect returns the indices and values of the k elements of g with
// the largest absolute value, using an O(d) byte-wise radix select over
// the IEEE-754 bit patterns to find the magnitude cutoff followed by a
// filtering pass. Ties at the cutoff are broken by index order so exactly
// k elements are returned (or all of them when k >= len(g)). The returned
// indices are ascending.
//
// This is the exact Top-k operator T_k of Definition 1 and the reference
// against which every threshold estimator is judged.
func TopKSelect(g []float64, k int) (idx []int32, vals []float64) {
	d := len(g)
	if k <= 0 || d == 0 {
		return nil, nil
	}
	if k >= d {
		idx = make([]int32, d)
		vals = make([]float64, d)
		for i, gi := range g {
			idx[i] = int32(i)
			vals[i] = gi
		}
		return idx, vals
	}

	cutoff := RadixSelectAbsKth(g, k) // k-th largest magnitude

	idx = make([]int32, 0, k)
	vals = make([]float64, 0, k)
	// One pass: keep everything strictly above the cutoff (guaranteed
	// < k elements) and stash the cutoff-magnitude ties on the side, so
	// the tie fill never needs a second scan of g. Magnitude compares run
	// on the masked bit patterns (order-isomorphic for non-negative
	// floats), keeping the loop branch-cheap.
	cb := math.Float64bits(cutoff)
	var tieIdx []int32
	var tieVals []float64
	for i, gi := range g {
		bits := math.Float64bits(gi) & absMask
		if bits > cb {
			idx = append(idx, int32(i))
			vals = append(vals, gi)
		} else if bits == cb && len(tieIdx) < k {
			// At most k ties can be kept (need = k - len(idx) <= k), so
			// capping here bounds the temporaries at O(k) even when the
			// cutoff magnitude is shared by most of g (e.g. a mostly-zero
			// gradient).
			tieIdx = append(tieIdx, int32(i))
			tieVals = append(tieVals, gi)
		}
	}
	// Fill the remainder with the lowest-index ties.
	if need := k - len(idx); need > 0 {
		idx, vals = mergeSortedByIndex(idx, vals, tieIdx[:need], tieVals[:need])
	}
	return idx, vals
}

// mergeSortedByIndex merges two (index, value) lists, each ascending by
// index, into one ascending list.
func mergeSortedByIndex(ai []int32, av []float64, bi []int32, bv []float64) ([]int32, []float64) {
	outI := make([]int32, 0, len(ai)+len(bi))
	outV := make([]float64, 0, len(av)+len(bv))
	i, j := 0, 0
	for i < len(ai) && j < len(bi) {
		if ai[i] < bi[j] {
			outI = append(outI, ai[i])
			outV = append(outV, av[i])
			i++
		} else {
			outI = append(outI, bi[j])
			outV = append(outV, bv[j])
			j++
		}
	}
	outI = append(outI, ai[i:]...)
	outV = append(outV, av[i:]...)
	outI = append(outI, bi[j:]...)
	outV = append(outV, bv[j:]...)
	return outI, outV
}

// QuickSelectKth returns the k-th largest value of xs (k is 1-based:
// k=1 returns the maximum). It partially reorders xs in place; pass a copy
// if the original order matters. It panics if k is out of range.
//
// The pivot is chosen by median-of-three, giving expected linear time on
// the heavy-tailed magnitude vectors gradients produce.
func QuickSelectKth(xs []float64, k int) float64 {
	if k < 1 || k > len(xs) {
		panic("tensor: QuickSelectKth k out of range")
	}
	// Select the element with descending rank k, i.e. ascending index
	// len(xs)-k.
	target := len(xs) - k
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case p == target:
			return xs[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return xs[target]
}

// partition performs Lomuto partition around a median-of-three pivot and
// returns the pivot's final index.
func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Order xs[lo] <= xs[mid] <= xs[hi], then use xs[mid] as the pivot by
	// stashing it at hi-1... simpler: move median to hi.
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	xs[mid], xs[hi] = xs[hi], xs[mid]
	pivot := xs[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}

// TopKThreshold returns the magnitude of the k-th largest |g_i| — the
// oracle threshold a perfect estimator would produce. It does not modify
// g.
func TopKThreshold(g []float64, k int) float64 {
	if k <= 0 || len(g) == 0 {
		return math.Inf(1)
	}
	if k >= len(g) {
		return 0
	}
	return RadixSelectAbsKth(g, k)
}

// absMask clears the sign bit of a float64 bit pattern. For non-negative
// floats the uint64 patterns order identically to the values, so |g_i|
// comparisons reduce to integer comparisons on masked bits.
const absMask = ^uint64(0) >> 1

// RadixSelectAbsKth returns the k-th largest |g_i| (k is 1-based: k=1
// returns the max magnitude) without modifying g. It runs a most-
// significant-byte-first radix select over the masked IEEE-754 bit
// patterns: one counting pass over all of g, one gather of the candidate
// bucket, then counting passes over geometrically shrinking candidate
// sets. Unlike quickselect it is swap-free, allocation is bounded by the
// first bucket's size, and the running time is O(d) worst case — on 1M-
// element gradients it is ~5x faster than median-of-three quickselect.
// It panics if k is out of range.
func RadixSelectAbsKth(g []float64, k int) float64 {
	if k < 1 || k > len(g) {
		panic("tensor: RadixSelectAbsKth k out of range")
	}
	// Below this size the 64K-bucket histogram costs more than the
	// selection; quickselect on an |g| copy wins.
	const radixMin = 1 << 14
	if len(g) < radixMin {
		abs := make([]float64, len(g))
		for i, gi := range g {
			abs[i] = math.Abs(gi)
		}
		return QuickSelectKth(abs, k)
	}
	// Level 0 counts the top 16 bits (sign cleared: the full 11-bit
	// exponent plus 5 mantissa bits) directly over g, avoiding a d-sized
	// |g| copy. A byte-wide first digit is too coarse for gradients —
	// heavy-tailed magnitudes concentrate within a few binades, which all
	// share one top byte — while 16 bits splits every binade 32 ways.
	counts := make([]int, 1<<16)
	for _, gi := range g {
		counts[(math.Float64bits(gi)&absMask)>>48]++
	}
	chosen, rem := pickBucket16(counts, k)
	cands := make([]uint64, 0, counts[chosen])
	for _, gi := range g {
		bits := math.Float64bits(gi) & absMask
		if bits>>48 == chosen {
			cands = append(cands, bits)
		}
	}
	k = rem
	for shift := 40; shift >= 0 && len(cands) > 1; shift -= 8 {
		var c [256]int
		for _, b := range cands {
			c[byte(b>>uint(shift))]++
		}
		ch, rem := pickBucket(&c, k)
		k = rem
		// In-place filter: the write index never outruns the read index.
		out := cands[:0]
		for _, b := range cands {
			if byte(b>>uint(shift)) == ch {
				out = append(out, b)
			}
		}
		cands = out
	}
	// Either one candidate remains or all surviving candidates share
	// every byte and are equal.
	return math.Float64frombits(cands[0])
}

// pickBucket walks bucket counts from high byte value to low and returns
// the bucket containing the k-th largest element together with k's
// residual rank inside that bucket.
func pickBucket(counts *[256]int, k int) (byte, int) {
	for b := 255; b >= 0; b-- {
		if counts[b] >= k {
			return byte(b), k
		}
		k -= counts[b]
	}
	panic("tensor: radix bucket walk exhausted") // unreachable: sum(counts) >= k
}

// pickBucket16 is pickBucket for the 16-bit first digit.
func pickBucket16(counts []int, k int) (uint64, int) {
	for b := len(counts) - 1; b >= 0; b-- {
		if counts[b] >= k {
			return uint64(b), k
		}
		k -= counts[b]
	}
	panic("tensor: radix bucket walk exhausted") // unreachable: sum(counts) >= k
}

// TopKSort is a sort-based O(d log d) top-k used as a differential-testing
// oracle for TopKSelect and as the "slow Top-k" arm of the device model.
// Indices are returned in ascending order.
func TopKSort(g []float64, k int) (idx []int32, vals []float64) {
	d := len(g)
	if k <= 0 || d == 0 {
		return nil, nil
	}
	if k > d {
		k = d
	}
	order := make([]int32, d)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(g[order[a]]) > math.Abs(g[order[b]])
	})
	top := order[:k]
	sort.Slice(top, func(a, b int) bool { return top[a] < top[b] })
	idx = make([]int32, k)
	vals = make([]float64, k)
	for i, j := range top {
		idx[i] = j
		vals[i] = g[j]
	}
	return idx, vals
}

// SortedAbsDescending returns |g| sorted in descending order — the
// compressibility diagnostic vector of Figure 7a.
func SortedAbsDescending(g []float64) []float64 {
	abs := make([]float64, len(g))
	for i, gi := range g {
		abs[i] = math.Abs(gi)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(abs)))
	return abs
}
