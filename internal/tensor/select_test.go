package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKSelectMatchesSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(400)
		g := make([]float64, d)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(d)
		qi, qv := TopKSelect(g, k)
		si, sv := TopKSort(g, k)
		if len(qi) != k || len(si) != k {
			t.Fatalf("trial %d: lengths %d %d, want %d", trial, len(qi), len(si), k)
		}
		// The kept index sets may differ only on magnitude ties; compare
		// the multiset of magnitudes instead.
		qm := magnitudes(qv)
		sm := magnitudes(sv)
		for i := range qm {
			if math.Abs(qm[i]-sm[i]) > 1e-15 {
				t.Fatalf("trial %d: magnitude sets differ: %v vs %v", trial, qm, sm)
			}
		}
		// Values must come from g at the reported indices.
		for i, j := range qi {
			if g[j] != qv[i] {
				t.Fatalf("value mismatch at idx %d", j)
			}
		}
	}
}

func magnitudes(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = math.Abs(v)
	}
	sort.Float64s(out)
	return out
}

func TestTopKSelectEdgeCases(t *testing.T) {
	if idx, vals := TopKSelect(nil, 3); idx != nil || vals != nil {
		t.Error("empty input should return nil")
	}
	if idx, _ := TopKSelect([]float64{1, 2}, 0); idx != nil {
		t.Error("k=0 should return nil")
	}
	idx, vals := TopKSelect([]float64{1, -2}, 10)
	if len(idx) != 2 || vals[1] != -2 {
		t.Errorf("k > d should return all: %v %v", idx, vals)
	}
}

func TestTopKSelectWithTies(t *testing.T) {
	g := []float64{1, -1, 1, -1, 1}
	idx, vals := TopKSelect(g, 3)
	if len(idx) != 3 || len(vals) != 3 {
		t.Fatalf("ties: got %d elements, want 3", len(idx))
	}
	// Indices must be ascending and unique.
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("indices not ascending: %v", idx)
		}
	}
}

func TestTopKSelectIndicesAscending(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		g := sanitize(raw)
		if len(g) == 0 {
			return true
		}
		k := int(kRaw)%len(g) + 1
		idx, vals := TopKSelect(g, k)
		if len(idx) != k || len(vals) != k {
			return false
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				return false
			}
		}
		for i, j := range idx {
			if g[j] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectKth(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	for k := 1; k <= 5; k++ {
		cp := Clone(xs)
		got := QuickSelectKth(cp, k)
		want := float64(6 - k) // k-th largest of 1..5
		if got != want {
			t.Errorf("k=%d: got %v, want %v", k, got, want)
		}
	}
}

func TestQuickSelectKthRandomMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(n)
		sorted := Clone(xs)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		got := QuickSelectKth(Clone(xs), k)
		if got != sorted[k-1] {
			t.Fatalf("trial %d: QuickSelectKth(%d) = %v, want %v", trial, k, got, sorted[k-1])
		}
	}
}

func TestQuickSelectKthPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			QuickSelectKth([]float64{1, 2}, k)
		}()
	}
}

func TestRadixSelectAbsKthMatchesQuickSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 90; trial++ {
		// Below 1<<14 RadixSelectAbsKth takes the quickselect fallback;
		// mix small sizes with ones large enough to drive the radix path
		// proper.
		n := 1 + rng.Intn(300)
		if trial%3 == 0 {
			n = 1<<14 + rng.Intn(1<<14)
		}
		g := make([]float64, n)
		for i := range g {
			switch rng.Intn(10) {
			case 0:
				g[i] = 0 // exercise equal-bucket paths
			case 1:
				g[i] = math.Copysign(1.5, rng.NormFloat64()) // duplicates
			default:
				g[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
			}
		}
		k := 1 + rng.Intn(n)
		abs := make([]float64, n)
		for i, gi := range g {
			abs[i] = math.Abs(gi)
		}
		want := QuickSelectKth(abs, k)
		if got := RadixSelectAbsKth(g, k); got != want {
			t.Fatalf("trial %d (n=%d k=%d): radix %v, quickselect %v", trial, n, k, got, want)
		}
	}
}

func TestRadixSelectAbsKthPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			RadixSelectAbsKth([]float64{1, 2}, k)
		}()
	}
}

func TestTopKThreshold(t *testing.T) {
	g := []float64{0.1, -0.9, 0.5, -0.3}
	if got := TopKThreshold(g, 2); got != 0.5 {
		t.Errorf("threshold = %v, want 0.5", got)
	}
	if got := TopKThreshold(g, 4); got != 0 {
		t.Errorf("k=d threshold = %v, want 0", got)
	}
	if got := TopKThreshold(g, 0); !math.IsInf(got, 1) {
		t.Errorf("k=0 threshold = %v, want +Inf", got)
	}
	// The input must not be reordered.
	if g[0] != 0.1 || g[1] != -0.9 {
		t.Error("TopKThreshold modified its input")
	}
}

func TestTopKThresholdSelectsExactlyK(t *testing.T) {
	// With distinct magnitudes, count(|g| >= threshold) == k.
	rng := rand.New(rand.NewSource(23))
	g := make([]float64, 500)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	for _, k := range []int{1, 5, 50, 499} {
		eta := TopKThreshold(g, k)
		if got := CountAboveThreshold(g, eta); got != k {
			t.Errorf("k=%d: count = %d", k, got)
		}
	}
}

func TestSortedAbsDescending(t *testing.T) {
	g := []float64{0.3, -1.2, 0.7}
	got := SortedAbsDescending(g)
	want := []float64{1.2, 0.7, 0.3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedAbsDescending = %v", got)
		}
	}
	if g[1] != -1.2 {
		t.Error("input was modified")
	}
}

func BenchmarkTopKSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	g := make([]float64, 1<<20)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	k := len(g) / 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKSelect(g, k)
	}
}

func BenchmarkTopKSort(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	g := make([]float64, 1<<20)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	k := len(g) / 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKSort(g, k)
	}
}

func BenchmarkRadixSelectAbsKth(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	g := make([]float64, 1<<20)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	k := len(g) / 1000
	b.SetBytes(int64(8 * len(g)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RadixSelectAbsKth(g, k)
	}
}

func BenchmarkCountAboveThreshold(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	g := make([]float64, 1<<20)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountAboveThreshold(g, 2.5)
	}
}
