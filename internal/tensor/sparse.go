package tensor

import (
	"fmt"
	"sort"
)

// Sparse is a sparse gradient vector: the (index, value) pairs a
// compressor keeps, plus the dense dimension. Indices are ascending and
// unique; NewSparse enforces this invariant.
type Sparse struct {
	Dim  int
	Idx  []int32
	Vals []float64
}

// NewSparse constructs a Sparse after validating the invariants: equal
// index/value lengths, indices in [0, dim) and strictly ascending.
func NewSparse(dim int, idx []int32, vals []float64) (*Sparse, error) {
	if len(idx) != len(vals) {
		return nil, fmt.Errorf("tensor: index/value length mismatch: %d vs %d", len(idx), len(vals))
	}
	prev := int32(-1)
	for _, i := range idx {
		if i <= prev {
			return nil, fmt.Errorf("tensor: indices not strictly ascending at %d", i)
		}
		if int(i) >= dim {
			return nil, fmt.Errorf("tensor: index %d out of range for dim %d", i, dim)
		}
		prev = i
	}
	return &Sparse{Dim: dim, Idx: idx, Vals: vals}, nil
}

// NNZ returns the number of stored non-zeros.
func (s *Sparse) NNZ() int { return len(s.Idx) }

// Dense scatters the sparse vector into a fresh dense slice of length Dim.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Dim)
	for i, j := range s.Idx {
		out[j] = s.Vals[i]
	}
	return out
}

// AddTo scatters s into dst (dst[j] += v), which must have length Dim.
func (s *Sparse) AddTo(dst []float64) {
	if len(dst) != s.Dim {
		panic("tensor: AddTo dimension mismatch")
	}
	for i, j := range s.Idx {
		dst[j] += s.Vals[i]
	}
}

// Scale multiplies all stored values by a in place.
func (s *Sparse) Scale(a float64) {
	for i := range s.Vals {
		s.Vals[i] *= a
	}
}

// SumSparse accumulates several sparse vectors (all with the same Dim)
// into a single sparse vector whose indices are the union of the inputs.
// This models the all-gather aggregation path of sparse collectives.
func SumSparse(vs []*Sparse) (*Sparse, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("tensor: SumSparse of no vectors")
	}
	dim := vs[0].Dim
	acc := make(map[int32]float64)
	for _, v := range vs {
		if v.Dim != dim {
			return nil, fmt.Errorf("tensor: SumSparse dimension mismatch: %d vs %d", v.Dim, dim)
		}
		for i, j := range v.Idx {
			acc[j] += v.Vals[i]
		}
	}
	idx := make([]int32, 0, len(acc))
	for j := range acc {
		idx = append(idx, j)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	vals := make([]float64, len(idx))
	for i, j := range idx {
		vals[i] = acc[j]
	}
	return &Sparse{Dim: dim, Idx: idx, Vals: vals}, nil
}
