package tensor

import (
	"fmt"
	"sort"
)

// Sparse is a sparse gradient vector: the (index, value) pairs a
// compressor keeps, plus the dense dimension. Indices are ascending and
// unique; NewSparse enforces this invariant.
type Sparse struct {
	Dim  int
	Idx  []int32
	Vals []float64
}

// NewSparse constructs a Sparse after validating the invariants: equal
// index/value lengths, indices in [0, dim) and strictly ascending.
func NewSparse(dim int, idx []int32, vals []float64) (*Sparse, error) {
	s := &Sparse{Dim: dim, Idx: idx, Vals: vals}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the Sparse invariants without allocating: equal
// index/value lengths, indices in [0, Dim) and strictly ascending. It is
// what NewSparse enforces, exposed so decoders filling reused storage can
// re-establish the contract.
func (s *Sparse) Validate() error {
	if len(s.Idx) != len(s.Vals) {
		return fmt.Errorf("tensor: index/value length mismatch: %d vs %d", len(s.Idx), len(s.Vals))
	}
	prev := int32(-1)
	for _, i := range s.Idx {
		if i <= prev {
			return fmt.Errorf("tensor: indices not strictly ascending at %d", i)
		}
		if int(i) >= s.Dim {
			return fmt.Errorf("tensor: index %d out of range for dim %d", i, s.Dim)
		}
		prev = i
	}
	return nil
}

// Reset prepares s for reuse as an empty dim-dimensional vector, keeping
// the index/value storage capacity. It is the entry point of every
// *Into fast path: compressors and decoders Reset then append, so
// steady-state iterations recycle the same backing arrays.
func (s *Sparse) Reset(dim int) {
	s.Dim = dim
	s.Idx = s.Idx[:0]
	s.Vals = s.Vals[:0]
}

// Append adds one (index, value) pair. Callers must append in strictly
// ascending index order to preserve the Sparse invariant; Append does not
// re-check it (use Validate after bulk fills of untrusted data).
func (s *Sparse) Append(i int32, v float64) {
	s.Idx = append(s.Idx, i)
	s.Vals = append(s.Vals, v)
}

// Grow ensures capacity for at least n stored elements, preserving
// current contents.
func (s *Sparse) Grow(n int) {
	if cap(s.Idx) < n {
		idx := make([]int32, len(s.Idx), n)
		copy(idx, s.Idx)
		s.Idx = idx
	}
	if cap(s.Vals) < n {
		vals := make([]float64, len(s.Vals), n)
		copy(vals, s.Vals)
		s.Vals = vals
	}
}

// CopyFrom makes s an independent copy of o, reusing s's storage.
func (s *Sparse) CopyFrom(o *Sparse) {
	s.Dim = o.Dim
	s.Idx = append(s.Idx[:0], o.Idx...)
	s.Vals = append(s.Vals[:0], o.Vals...)
}

// NNZ returns the number of stored non-zeros.
func (s *Sparse) NNZ() int { return len(s.Idx) }

// Dense scatters the sparse vector into a fresh dense slice of length Dim.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Dim)
	for i, j := range s.Idx {
		out[j] = s.Vals[i]
	}
	return out
}

// AddTo scatters s into dst (dst[j] += v), which must have length Dim.
func (s *Sparse) AddTo(dst []float64) {
	if len(dst) != s.Dim {
		panic("tensor: AddTo dimension mismatch")
	}
	for i, j := range s.Idx {
		dst[j] += s.Vals[i]
	}
}

// Scale multiplies all stored values by a in place.
func (s *Sparse) Scale(a float64) {
	for i := range s.Vals {
		s.Vals[i] *= a
	}
}

// SumSparse accumulates several sparse vectors (all with the same Dim)
// into a single sparse vector whose indices are the union of the inputs.
// This models the all-gather aggregation path of sparse collectives.
func SumSparse(vs []*Sparse) (*Sparse, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("tensor: SumSparse of no vectors")
	}
	dim := vs[0].Dim
	acc := make(map[int32]float64)
	for _, v := range vs {
		if v.Dim != dim {
			return nil, fmt.Errorf("tensor: SumSparse dimension mismatch: %d vs %d", v.Dim, dim)
		}
		for i, j := range v.Idx {
			acc[j] += v.Vals[i]
		}
	}
	idx := make([]int32, 0, len(acc))
	for j := range acc {
		idx = append(idx, j)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	vals := make([]float64, len(idx))
	for i, j := range idx {
		vals[i] = acc[j]
	}
	return &Sparse{Dim: dim, Idx: idx, Vals: vals}, nil
}
