package tensor

// Pool is a free-list arena for Sparse vectors, for call sites that
// need a variable number of live Sparse values per step (fan-out over
// shards, speculative selections) rather than the fixed per-owner
// scratch the current pipeline stages get away with: the in-repo chunk
// decode and aggregation paths each hold exactly one reused Sparse, so
// they recycle a plain field and do not go through a Pool.
//
// Pool is deliberately not concurrency-safe: each owner holds one
// (matching the one-compressor-per-worker ownership model), which keeps
// Get/Put free of synchronization on the hot path. The zero value is
// ready to use.
type Pool struct {
	free []*Sparse
}

// Get returns an empty Sparse of the given dimension, reusing pooled
// storage when available.
func (p *Pool) Get(dim int) *Sparse {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		s.Reset(dim)
		return s
	}
	return &Sparse{Dim: dim}
}

// Put returns s to the pool for a later Get. s must not be used by the
// caller afterwards; nil is ignored.
func (p *Pool) Put(s *Sparse) {
	if s == nil {
		return
	}
	p.free = append(p.free, s)
}
