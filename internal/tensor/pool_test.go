package tensor

import "testing"

func TestPoolRecyclesStorage(t *testing.T) {
	var p Pool
	s := p.Get(10)
	if s.Dim != 10 || s.NNZ() != 0 {
		t.Fatalf("fresh Get: dim %d nnz %d", s.Dim, s.NNZ())
	}
	s.Append(1, 2.5)
	s.Append(7, -1)
	base := &s.Idx[0]
	p.Put(s)
	r := p.Get(5)
	if r != s {
		t.Fatal("Get did not return the pooled Sparse")
	}
	if r.Dim != 5 || r.NNZ() != 0 {
		t.Fatalf("recycled Get not reset: dim %d nnz %d", r.Dim, r.NNZ())
	}
	r.Append(0, 1)
	if &r.Idx[0] != base {
		t.Error("recycled Sparse did not reuse its index storage")
	}
	p.Put(nil) // must be a no-op
	if got := p.Get(3); got == nil {
		t.Fatal("Get after Put(nil) returned nil")
	}
}

func TestSparseResetAppendValidate(t *testing.T) {
	s := &Sparse{}
	s.Reset(8)
	s.Append(2, 1.5)
	s.Append(5, -2)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid sparse rejected: %v", err)
	}
	if s.NNZ() != 2 || s.Dim != 8 {
		t.Fatalf("nnz %d dim %d", s.NNZ(), s.Dim)
	}
	cap0 := cap(s.Idx)
	s.Reset(4)
	if s.NNZ() != 0 || cap(s.Idx) != cap0 {
		t.Error("Reset must empty without shrinking capacity")
	}
	s.Append(3, 1)
	s.Append(1, 2) // out of order
	if err := s.Validate(); err == nil {
		t.Error("descending indices accepted")
	}
	s.Reset(2)
	s.Append(5, 1) // out of range
	if err := s.Validate(); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestSparseCopyFromAndGrow(t *testing.T) {
	src := &Sparse{Dim: 6, Idx: []int32{1, 4}, Vals: []float64{2, 3}}
	dst := &Sparse{}
	dst.CopyFrom(src)
	if dst.Dim != 6 || dst.NNZ() != 2 || dst.Idx[1] != 4 || dst.Vals[0] != 2 {
		t.Fatalf("CopyFrom got %+v", dst)
	}
	src.Vals[0] = 99
	if dst.Vals[0] == 99 {
		t.Error("CopyFrom aliases the source")
	}
	dst.Grow(100)
	if cap(dst.Idx) < 100 || cap(dst.Vals) < 100 {
		t.Error("Grow did not reserve capacity")
	}
	if dst.NNZ() != 2 || dst.Idx[0] != 1 {
		t.Error("Grow lost contents")
	}
}
