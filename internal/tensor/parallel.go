package tensor

import (
	"math"

	"repro/internal/par"
)

// Par runs the threshold passes (count / filter / exceedance gather)
// across P goroutines over fixed contiguous index ranges, merging
// per-worker results in worker order so every output is bit-identical
// to the serial functions. The zero value (P <= 1) delegates straight
// to the serial passes with no overhead; each compressor instance owns
// one (Par is not concurrency-safe from the outside).
type Par struct {
	P      int
	counts []int
	idx    [][]int32
	vals   [][]float64
}

// parMin is the input size below which fork-join overhead exceeds the
// pass itself; smaller inputs always take the serial path (which is
// bit-identical anyway).
const parMin = 1 << 14

func (pp *Par) grow(p int) {
	if len(pp.counts) < p {
		pp.counts = append(pp.counts, make([]int, p-len(pp.counts))...)
	}
	for len(pp.idx) < p {
		pp.idx = append(pp.idx, nil)
	}
	for len(pp.vals) < p {
		pp.vals = append(pp.vals, nil)
	}
}

// CountAbove is CountAboveThreshold at parallelism P: per-range counts
// are integers, so their sum is exactly the serial count.
func (pp *Par) CountAbove(x []float64, eta float64) int {
	p := pp.P
	if p <= 1 || len(x) < parMin {
		return CountAboveThreshold(x, eta)
	}
	pp.grow(p)
	par.Do(p, func(w int) {
		lo, hi := par.RangeBounds(len(x), p, w)
		pp.counts[w] = CountAboveThreshold(x[lo:hi], eta)
	})
	n := 0
	for _, c := range pp.counts[:p] {
		n += c
	}
	return n
}

// FilterAbove is FilterAboveThreshold at parallelism P: workers filter
// their own ranges into private pair lists, which concatenate in worker
// order — exactly the ascending-index output of the serial pass.
func (pp *Par) FilterAbove(x []float64, eta float64, idx []int32, vals []float64) ([]int32, []float64) {
	p := pp.P
	if p <= 1 || len(x) < parMin {
		return FilterAboveThreshold(x, eta, idx, vals)
	}
	pp.grow(p)
	par.Do(p, func(w int) {
		lo, hi := par.RangeBounds(len(x), p, w)
		widx, wvals := pp.idx[w][:0], pp.vals[w][:0]
		for i := lo; i < hi; i++ {
			if math.Abs(x[i]) >= eta {
				widx = append(widx, int32(i))
				wvals = append(wvals, x[i])
			}
		}
		pp.idx[w], pp.vals[w] = widx, wvals
	})
	for w := 0; w < p; w++ {
		idx = append(idx, pp.idx[w]...)
		vals = append(vals, pp.vals[w]...)
	}
	return idx, vals
}

// ValuesAbove is ValuesAboveThreshold at parallelism P.
func (pp *Par) ValuesAbove(x []float64, eta float64, dst []float64) []float64 {
	p := pp.P
	if p <= 1 || len(x) < parMin {
		return ValuesAboveThreshold(x, eta, dst)
	}
	pp.grow(p)
	par.Do(p, func(w int) {
		lo, hi := par.RangeBounds(len(x), p, w)
		pp.vals[w] = ValuesAboveThreshold(x[lo:hi], eta, pp.vals[w][:0])
	})
	for w := 0; w < p; w++ {
		dst = append(dst, pp.vals[w]...)
	}
	return dst
}
