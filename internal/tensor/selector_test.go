package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestSelectorMatchesTopKSelect cross-checks the scratch-reusing
// Selector against the allocating reference on a mix of sizes (spanning
// the quickselect/radix crossover), k values, and tie-heavy inputs —
// including reuse of one Selector across different distributions, which
// is exactly how per-worker compressors drive it.
func TestSelectorMatchesTopKSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sel Selector
	dims := []int{1, 5, 100, 1 << 10, 1 << 14, 1<<14 + 3, 40000}
	for trial := 0; trial < 20; trial++ {
		d := dims[trial%len(dims)]
		g := make([]float64, d)
		switch trial % 3 {
		case 0:
			for i := range g {
				g[i] = rng.NormFloat64()
			}
		case 1: // heavy ties: few distinct magnitudes
			for i := range g {
				g[i] = float64(rng.Intn(4)) * (1 - 2*float64(rng.Intn(2)))
			}
		case 2: // mostly zero
			for i := range g {
				if rng.Intn(10) == 0 {
					g[i] = rng.ExpFloat64()
				}
			}
		}
		for _, k := range []int{1, 2, d / 7, d - 1, d, d + 5} {
			if k < 1 {
				continue
			}
			wantIdx, wantVals := TopKSelect(g, k)
			dst := &Sparse{}
			dst.Reset(d)
			sel.TopKInto(dst, g, k)
			if len(dst.Idx) != len(wantIdx) {
				t.Fatalf("d=%d k=%d: got %d elements, want %d", d, k, len(dst.Idx), len(wantIdx))
			}
			for i := range wantIdx {
				if dst.Idx[i] != wantIdx[i] || math.Float64bits(dst.Vals[i]) != math.Float64bits(wantVals[i]) {
					t.Fatalf("d=%d k=%d element %d: got (%d,%v), want (%d,%v)",
						d, k, i, dst.Idx[i], dst.Vals[i], wantIdx[i], wantVals[i])
				}
			}
		}
	}
}

// TestSelectorAbsKthMatchesReference checks the reusable radix select
// against the package-level function across the size crossover.
func TestSelectorAbsKthMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sel Selector
	for _, d := range []int{3, 1000, 1 << 14, 50000} {
		g := make([]float64, d)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		for _, k := range []int{1, d / 3, d} {
			if got, want := sel.AbsKth(g, k), RadixSelectAbsKth(g, k); got != want {
				t.Fatalf("d=%d k=%d: %v != %v", d, k, got, want)
			}
		}
	}
}

// TestSelectorZeroAllocSteadyState guards the whole point of the type.
func TestSelectorZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := make([]float64, 1<<15)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	var sel Selector
	dst := &Sparse{}
	k := 500
	for i := 0; i < 10; i++ {
		dst.Reset(len(g))
		sel.TopKInto(dst, g, k)
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst.Reset(len(g))
		sel.TopKInto(dst, g, k)
	})
	if allocs > 0 {
		t.Errorf("TopKInto allocates %v objects/op in steady state, want 0", allocs)
	}
}
