package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAxpyScaleAddSub(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy: %v", y)
		}
	}
	Scale(0.5, y)
	if y[0] != 6 || y[2] != 18 {
		t.Fatalf("Scale: %v", y)
	}
	Sub(x, y) // y -= x
	if y[0] != 5 || y[1] != 10 || y[2] != 15 {
		t.Fatalf("Sub: %v", y)
	}
	Add(x, y)
	if y[0] != 6 {
		t.Fatalf("Add: %v", y)
	}
}

func TestAxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestFillZeroClone(t *testing.T) {
	x := []float64{1, 2, 3}
	c := Clone(x)
	Zero(x)
	if x[0] != 0 || x[2] != 0 {
		t.Fatalf("Zero: %v", x)
	}
	if c[0] != 1 || c[2] != 3 {
		t.Fatalf("Clone shares storage: %v", c)
	}
	Fill(x, 7)
	if x[1] != 7 {
		t.Fatalf("Fill: %v", x)
	}
}

func TestAbs(t *testing.T) {
	x := []float64{-1, 2, -3}
	out := Abs(x, nil)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("Abs: %v", out)
	}
	// In-place.
	Abs(x, x)
	if x[0] != 1 || x[2] != 3 {
		t.Fatalf("Abs in-place: %v", x)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v", got)
	}
	if got := Dot(x, x); got != 25 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCountAndFilterAboveThreshold(t *testing.T) {
	g := []float64{0.1, -0.5, 0.3, -0.05, 0.5}
	if got := CountAboveThreshold(g, 0.3); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	idx, vals := FilterAboveThreshold(g, 0.3, nil, nil)
	if len(idx) != 3 || idx[0] != 1 || idx[1] != 2 || idx[2] != 4 {
		t.Errorf("idx = %v", idx)
	}
	if vals[0] != -0.5 || vals[1] != 0.3 || vals[2] != 0.5 {
		t.Errorf("vals = %v", vals)
	}
}

func TestValuesAboveThresholdStrict(t *testing.T) {
	g := []float64{0.3, -0.3, 0.4}
	got := ValuesAboveThreshold(g, 0.3, nil)
	if len(got) != 1 || got[0] != 0.4 {
		t.Errorf("strict exceedances = %v", got)
	}
}

func TestFilterCountConsistency(t *testing.T) {
	f := func(raw []float64, etaRaw float64) bool {
		g := sanitize(raw)
		eta := math.Abs(math.Mod(etaRaw, 10))
		idx, vals := FilterAboveThreshold(g, eta, nil, nil)
		if len(idx) != len(vals) {
			return false
		}
		return len(idx) == CountAboveThreshold(g, eta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(raw []float64) []float64 {
	g := make([]float64, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		g = append(g, math.Mod(x, 100))
	}
	return g
}

func TestSparsificationError(t *testing.T) {
	g := []float64{3, 0, -4, 1}
	// Keep indices 0 and 2 -> error is ||(0,0,0,1)|| = 1.
	if got := SparsificationError(g, []int32{0, 2}); got != 1 {
		t.Errorf("SparsificationError = %v", got)
	}
	// Keep everything -> 0.
	if got := SparsificationError(g, []int32{0, 1, 2, 3}); got != 0 {
		t.Errorf("full keep error = %v", got)
	}
	// Keep nothing -> full norm.
	if got := SparsificationError(g, nil); math.Abs(got-Norm2(g)) > 1e-12 {
		t.Errorf("empty keep error = %v", got)
	}
}

func TestTopKMinimizesSparsificationError(t *testing.T) {
	// Property: among random index sets of size k, Top-k has minimal
	// sparsification error (Definition 1 / eq. 2).
	rng := rand.New(rand.NewSource(20))
	g := make([]float64, 200)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	const k = 20
	idx, _ := TopKSelect(g, k)
	best := SparsificationError(g, idx)
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(g))[:k]
		randIdx := make([]int32, k)
		for i, p := range perm {
			randIdx[i] = int32(p)
		}
		if SparsificationError(g, randIdx) < best-1e-12 {
			t.Fatal("random subset beat Top-k")
		}
	}
}
