package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// heavyTailed builds a gradient-like vector with repeated magnitudes
// (tie pressure), exact zeros and a heavy tail — the inputs where a
// parallel selection could plausibly diverge from the serial one.
func heavyTailed(d int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, d)
	for i := range g {
		switch rng.Intn(8) {
		case 0:
			g[i] = 0
		case 1:
			g[i] = 0.5 // many exact ties
		case 2:
			g[i] = -0.5
		default:
			g[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64()*3)
		}
	}
	return g
}

// TestSelectorParallelBitIdentity checks that TopKInto and AbsKth are
// bit-identical across parallelism 1, 2, 3 and 8 on tie-heavy inputs
// larger than the radix threshold.
func TestSelectorParallelBitIdentity(t *testing.T) {
	for _, d := range []int{1 << 14, 1<<16 + 917} {
		g := heavyTailed(d, int64(d))
		for _, k := range []int{1, 7, d / 100, d / 3} {
			var ref Selector
			want := &Sparse{}
			want.Reset(d)
			ref.TopKInto(want, g, k)
			wantKth := ref.AbsKth(g, k)
			for _, p := range []int{2, 3, 8} {
				var sel Selector
				sel.SetParallelism(p)
				got := &Sparse{}
				got.Reset(d)
				sel.TopKInto(got, g, k)
				if got.NNZ() != want.NNZ() {
					t.Fatalf("d=%d k=%d p=%d: nnz %d, serial %d", d, k, p, got.NNZ(), want.NNZ())
				}
				for i := range want.Idx {
					if got.Idx[i] != want.Idx[i] ||
						math.Float64bits(got.Vals[i]) != math.Float64bits(want.Vals[i]) {
						t.Fatalf("d=%d k=%d p=%d: element %d = (%d,%v), serial (%d,%v)",
							d, k, p, i, got.Idx[i], got.Vals[i], want.Idx[i], want.Vals[i])
					}
				}
				if kth := sel.AbsKth(g, k); math.Float64bits(kth) != math.Float64bits(wantKth) {
					t.Fatalf("d=%d k=%d p=%d: AbsKth %v, serial %v", d, k, p, kth, wantKth)
				}
				// Second use of the same Selector must still match (stale
				// per-worker scratch would show up here).
				got.Reset(d)
				sel.TopKInto(got, g, k)
				if got.NNZ() != want.NNZ() {
					t.Fatalf("d=%d k=%d p=%d: second pass nnz %d, serial %d", d, k, p, got.NNZ(), want.NNZ())
				}
			}
		}
	}
}

// TestParThresholdOpsBitIdentity checks the Par count/filter/gather
// passes against their serial counterparts at several parallelism
// levels.
func TestParThresholdOpsBitIdentity(t *testing.T) {
	d := 1<<15 + 331
	g := heavyTailed(d, 5)
	for _, eta := range []float64{0, 0.25, 0.5, 3.7} {
		wantN := CountAboveThreshold(g, eta)
		wantIdx, wantVals := FilterAboveThreshold(g, eta, nil, nil)
		wantAbove := ValuesAboveThreshold(g, eta, nil)
		for _, p := range []int{2, 5, 8} {
			pp := &Par{P: p}
			if n := pp.CountAbove(g, eta); n != wantN {
				t.Fatalf("eta=%v p=%d: count %d, serial %d", eta, p, n, wantN)
			}
			idx, vals := pp.FilterAbove(g, eta, nil, nil)
			if len(idx) != len(wantIdx) {
				t.Fatalf("eta=%v p=%d: filter len %d, serial %d", eta, p, len(idx), len(wantIdx))
			}
			for i := range idx {
				if idx[i] != wantIdx[i] || math.Float64bits(vals[i]) != math.Float64bits(wantVals[i]) {
					t.Fatalf("eta=%v p=%d: filter[%d] = (%d,%v), serial (%d,%v)",
						eta, p, i, idx[i], vals[i], wantIdx[i], wantVals[i])
				}
			}
			above := pp.ValuesAbove(g, eta, nil)
			if len(above) != len(wantAbove) {
				t.Fatalf("eta=%v p=%d: gather len %d, serial %d", eta, p, len(above), len(wantAbove))
			}
			for i := range above {
				if math.Float64bits(above[i]) != math.Float64bits(wantAbove[i]) {
					t.Fatalf("eta=%v p=%d: gather[%d] = %v, serial %v", eta, p, i, above[i], wantAbove[i])
				}
			}
		}
	}
}
