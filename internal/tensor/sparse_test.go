package tensor

import (
	"math"
	"testing"
)

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(5, []int32{0, 2}, []float64{1, 2}); err != nil {
		t.Fatalf("valid sparse rejected: %v", err)
	}
	cases := []struct {
		name string
		dim  int
		idx  []int32
		vals []float64
	}{
		{"length mismatch", 5, []int32{0}, []float64{1, 2}},
		{"not ascending", 5, []int32{2, 1}, []float64{1, 2}},
		{"duplicate", 5, []int32{1, 1}, []float64{1, 2}},
		{"out of range", 2, []int32{0, 2}, []float64{1, 2}},
	}
	for _, c := range cases {
		if _, err := NewSparse(c.dim, c.idx, c.vals); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	s, err := NewSparse(6, []int32{1, 4}, []float64{-2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 {
		t.Errorf("NNZ = %d", s.NNZ())
	}
	d := s.Dense()
	want := []float64{0, -2, 0, 0, 3, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Dense = %v", d)
		}
	}
}

func TestSparseAddToAndScale(t *testing.T) {
	s, _ := NewSparse(3, []int32{0, 2}, []float64{1, 2})
	dst := []float64{10, 10, 10}
	s.AddTo(dst)
	if dst[0] != 11 || dst[1] != 10 || dst[2] != 12 {
		t.Fatalf("AddTo = %v", dst)
	}
	s.Scale(2)
	if s.Vals[0] != 2 || s.Vals[1] != 4 {
		t.Fatalf("Scale = %v", s.Vals)
	}
}

func TestSparseAddToDimMismatchPanics(t *testing.T) {
	s, _ := NewSparse(3, []int32{0}, []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.AddTo(make([]float64, 2))
}

func TestSumSparse(t *testing.T) {
	a, _ := NewSparse(5, []int32{0, 3}, []float64{1, 2})
	b, _ := NewSparse(5, []int32{3, 4}, []float64{10, 20})
	sum, err := SumSparse([]*Sparse{a, b})
	if err != nil {
		t.Fatal(err)
	}
	dense := sum.Dense()
	want := []float64{1, 0, 0, 12, 20}
	for i := range want {
		if math.Abs(dense[i]-want[i]) > 1e-15 {
			t.Fatalf("SumSparse dense = %v", dense)
		}
	}
	// Indices must come out ascending.
	for i := 1; i < len(sum.Idx); i++ {
		if sum.Idx[i] <= sum.Idx[i-1] {
			t.Fatalf("indices not ascending: %v", sum.Idx)
		}
	}
}

func TestSumSparseErrors(t *testing.T) {
	if _, err := SumSparse(nil); err == nil {
		t.Error("empty sum should error")
	}
	a, _ := NewSparse(5, []int32{0}, []float64{1})
	b, _ := NewSparse(6, []int32{0}, []float64{1})
	if _, err := SumSparse([]*Sparse{a, b}); err == nil {
		t.Error("dimension mismatch should error")
	}
}
