package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestLoopbackStudy runs the four-way comparison end to end over real
// loopback sockets: the study itself errors if the per-rank node
// deployment disagrees with itself, and the rendered table must report
// exact traffic and an all-zero diff column (bit-identity of every mode
// against the in-process trainer).
func TestLoopbackStudy(t *testing.T) {
	var buf bytes.Buffer
	err := LoopbackStudy(&buf, LoopbackStudyConfig{Workers: 3, Iters: 3, Compressor: "topk", Chunks: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "exact=true") {
		t.Errorf("traffic cross-check not exact:\n%s", out)
	}
	if strings.Contains(out, "exact=false") {
		t.Errorf("traffic mismatch reported:\n%s", out)
	}
	// Every data row ends in the max-|diff| column; bit-identity means
	// each one renders as exactly "0".
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && fields[0] != "iter" && !strings.HasPrefix(fields[0], "-") && !strings.Contains(line, "—") {
			rows++
			if fields[5] != "0" {
				t.Errorf("iteration %s: max |diff| = %s, want 0 (bit-identity):\n%s", fields[0], fields[5], out)
			}
		}
	}
	if rows != 3 {
		t.Errorf("found %d data rows, want 3:\n%s", rows, out)
	}
}
