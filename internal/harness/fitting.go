package harness

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/nn"
	"repro/internal/simgrad"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// buildConvTrainer assembles the ResNet20-CIFAR10 stand-in: a small conv
// net on synthetic class-textured images, trained by N workers with the
// given compressor.
func buildConvTrainer(compName string, delta float64, ec bool, opt Options, tap func(int, []float64)) (*dist.Trainer, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	model := nn.NewSequential(
		nn.NewConv2D("c1", 3, 8, 3, rng),
		&nn.ReLU{},
		&nn.MaxPool2D{},
		nn.NewConv2D("c2", 8, 8, 3, rng),
		&nn.ReLU{},
		&nn.Flatten{},
		nn.NewDense("d1", 8*3*3, 10, rng),
	)
	ds := data.NewImages(data.ImagesConfig{N: 512, Classes: 10, Seed: opt.Seed})
	var factory func() compress.Compressor
	if compName != "" && compName != "none" {
		name := compName
		factory = Factory(name, opt.Seed)
	}
	return dist.NewTrainer(dist.TrainerConfig{
		Workers: 4,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			return ds.Batch(rng, 16)
		},
		NewCompressor: factory,
		Delta:         delta,
		EC:            ec,
		Seed:          opt.Seed,
		OnGradient:    tap,
	})
}

// buildLMTrainer assembles the LSTM-PTB stand-in: an embedding + LSTM
// language model on a synthetic Markov corpus.
func buildLMTrainer(compName string, delta float64, opt Options) (*dist.Trainer, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	const vocab, emb, hidden, T = 30, 16, 64, 12
	model := nn.NewSequential(
		nn.NewEmbedding("emb", vocab, emb, rng),
		nn.NewLSTM("lstm", emb, hidden, rng),
		nn.NewTimeDistributed(nn.NewDense("out", hidden, vocab, rng)),
	)
	corpus := data.NewCorpus(data.CorpusConfig{Tokens: 30000, Vocab: vocab, Seed: opt.Seed})
	var factory func() compress.Compressor
	if compName != "" && compName != "none" {
		name := compName
		factory = Factory(name, opt.Seed)
	}
	return dist.NewTrainer(dist.TrainerConfig{
		Workers: 4,
		Model:   model,
		Loss:    &nn.SoftmaxCrossEntropy{},
		Opt:     &nn.Momentum{LR: 0.2, Mu: 0.9, Nesterov: true},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			return corpus.Batch(rng, 8, T)
		},
		NewCompressor: factory,
		Delta:         delta,
		EC:            true,
		ClipNorm:      5,
		Seed:          opt.Seed,
	})
}

// fitAndReport fits the three SIDs to one gradient snapshot and appends
// rows to the table.
func fitAndReport(tbl *Table, label string, g []float64) {
	e := stats.NewECDF(g)
	absG := tensor.Abs(g, nil)
	absE := stats.NewECDF(absG)

	expFit := stats.FitExponentialAbs(g)
	gammaFit := stats.FitGammaAbs(g)
	gpFit := stats.FitGPAbs(g)

	tbl.AddRow(label+" double-exp",
		fmt.Sprintf("beta=%.3e", expFit.Scale),
		fmt.Sprintf("%.4f", absE.KSDistance(expFit)),
		fmt.Sprintf("%.4f", e.KSDistance(stats.Laplace{Scale: expFit.Scale})))
	tbl.AddRow(label+" double-gamma",
		fmt.Sprintf("alpha=%.3f beta=%.3e", gammaFit.Shape, gammaFit.Scale),
		fmt.Sprintf("%.4f", absE.KSDistance(stats.Gamma{Shape: gammaFit.Shape, Scale: gammaFit.Scale})),
		fmt.Sprintf("%.4f", e.KSDistance(stats.DoubleGamma{Shape: gammaFit.Shape, Scale: gammaFit.Scale})))
	tbl.AddRow(label+" double-GP",
		fmt.Sprintf("alpha=%.3f beta=%.3e", gpFit.Shape, gpFit.Scale),
		fmt.Sprintf("%.4f", absE.KSDistance(stats.GeneralizedPareto{Shape: gpFit.Shape, Scale: gpFit.Scale})),
		fmt.Sprintf("%.4f", e.KSDistance(stats.DoubleGP{Shape: gpFit.Shape, Scale: gpFit.Scale})))
}

// fittingFigure is the shared implementation of Figures 2 (no EC) and 8
// (with EC): train the conv net with Top-k compression, snapshot the
// gradient early and late, and fit the three SIDs.
func fittingFigure(w io.Writer, title string, ec bool, opt Options) error {
	opt = opt.withDefaults()
	early := opt.Iters / 10
	late := opt.Iters - 1
	rec := trace.NewRecorder(true, early, late)
	tr, err := buildConvTrainer("topk", 0.001, ec, opt, rec.Observe)
	if err != nil {
		return err
	}
	if _, _, err := tr.Run(opt.Iters); err != nil {
		return err
	}
	tbl := NewTable(title, "snapshot + SID", "fitted params", "KS(|g|)", "KS(g)")
	for _, it := range []int{early, late} {
		g, err := rec.Snapshot(it)
		if err != nil {
			return err
		}
		fitAndReport(tbl, fmt.Sprintf("iter %d:", it), g)
	}
	tbl.Render(w)
	return nil
}

// Fig2 reproduces Figure 2: SID fits of training gradients without error
// compensation.
func Fig2(w io.Writer, opt Options) error {
	return fittingFigure(w, "Fig 2: SID fits of conv-net gradients (no EC), early vs late iteration", false, opt)
}

// Fig8 reproduces Figure 8: SID fits with the EC mechanism enabled.
func Fig8(w io.Writer, opt Options) error {
	return fittingFigure(w, "Fig 8: SID fits of conv-net gradients (with EC), early vs late iteration", true, opt)
}

// Fig7 reproduces Figure 7: the compressibility study — power-law decay of
// sorted gradient magnitudes and the best-k sparsification error.
func Fig7(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	snaps := []int{0, opt.Iters / 2, opt.Iters - 1}
	rec := trace.NewRecorder(true, snaps...)
	tr, err := buildConvTrainer("", 0, false, opt, rec.Observe)
	if err != nil {
		return err
	}
	if _, _, err := tr.Run(opt.Iters); err != nil {
		return err
	}
	tbl := NewTable("Fig 7: gradient compressibility (power-law decay exponent p and sparsification error)",
		"snapshot", "p (fit)", "compressible (p>0.5)", "sigma_k/||g|| @1%", "@5%", "@20%")
	for _, it := range snaps {
		g, err := rec.Snapshot(it)
		if err != nil {
			return err
		}
		sorted := tensor.SortedAbsDescending(g)
		p := simgrad.PowerLawFit(sorted)
		norm := tensor.Norm2(g)
		row := []string{fmt.Sprintf("iter %d", it), fmt.Sprintf("%.3f", p), fmt.Sprintf("%v", p > 0.5)}
		for _, frac := range []float64{0.01, 0.05, 0.20} {
			k := int(frac * float64(len(g)))
			if k < 1 {
				k = 1
			}
			idx, _ := tensor.TopKSelect(g, k)
			row = append(row, fmt.Sprintf("%.4f", tensor.SparsificationError(g, idx)/norm))
		}
		tbl.AddRow(row...)
	}
	tbl.Render(w)
	return nil
}

// Fig4 reproduces Figure 4: training loss and threshold-estimation quality
// over iterations at the aggressive ratio for the LSTM language model.
func Fig4(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const delta = 0.001
	tbl := NewTable(fmt.Sprintf("Fig 4: LSTM-LM training at delta=%g (final losses; lower is better)", delta),
		"compressor", "final loss", "mean k-hat/k", "geo-mean k-hat/k")
	for _, cName := range []string{"none", "topk", "dgc", "redsync", "gaussiank", "sidco-e"} {
		tr, err := buildLMTrainer(cName, delta, opt)
		if err != nil {
			return err
		}
		losses, ratios, err := tr.Run(opt.Iters)
		if err != nil {
			return err
		}
		geo := geoMean(ratios)
		tbl.AddRow(cName, fmt.Sprintf("%.4f", meanTail(losses, 10)),
			fmt.Sprintf("%.4f", meanOf(ratios)), fmt.Sprintf("%.4f", geo))
		Series(w, fmt.Sprintf("Fig 4 loss vs iteration (%s)", cName), losses, 8)
	}
	tbl.Render(w)
	return nil
}

// Fig10 reproduces Figure 10: training loss against simulated wall time,
// combining the real loss curves with the timeline model of the LSTM-PTB
// workload.
func Fig10(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const delta = 0.01
	wl, err := dist.WorkloadByName("lstm-ptb")
	if err != nil {
		return err
	}
	tbl := NewTable("Fig 10: loss vs simulated wall time, LSTM-PTB timeline, delta=0.01",
		"compressor", "iter time", "final loss", "sim. time to loss<=2.5")
	for _, cName := range []string{"none", "topk", "dgc", "sidco-e"} {
		res, err := dist.SimulateWorkload(dist.SimConfig{
			Workload:      wl,
			Net:           defaultNet(),
			Dev:           deviceGPU(),
			NewCompressor: Factory(cName, opt.Seed),
			Delta:         delta,
			Iters:         opt.Iters,
			SimScale:      opt.SimScale,
			Seed:          opt.Seed,
		})
		if err != nil {
			return err
		}
		tr, err := buildLMTrainer(cName, delta, opt)
		if err != nil {
			return err
		}
		losses, _, err := tr.Run(opt.Iters)
		if err != nil {
			return err
		}
		timeTo := -1.0
		for i, l := range losses {
			if l <= 2.5 {
				timeTo = float64(i+1) * res.IterTime
				break
			}
		}
		timeStr := "not reached"
		if timeTo >= 0 {
			timeStr = FmtSecs(timeTo)
		}
		tbl.AddRow(cName, FmtSecs(res.IterTime), fmt.Sprintf("%.4f", meanTail(losses, 10)), timeStr)
	}
	tbl.Render(w)
	return nil
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func meanTail(xs []float64, n int) float64 {
	if len(xs) < n {
		n = len(xs)
	}
	return meanOf(xs[len(xs)-n:])
}

func geoMean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
