package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadBenchHistory reads a committed sidco-bench JSON baseline (the
// BENCH_pipeline.json trajectory) and rejects unknown schemas up front
// so a compare never silently diffs incompatible field meanings. v2
// files load as-is; a v1 single-report baseline is wrapped as a
// one-entry history at parallelism 1.
func LoadBenchHistory(path string) (*BenchHistory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: load baseline: %w", err)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("harness: load baseline %s: %w", path, err)
	}
	switch probe.Schema {
	case BenchSchema:
		var hist BenchHistory
		if err := json.Unmarshal(data, &hist); err != nil {
			return nil, fmt.Errorf("harness: load baseline %s: %w", path, err)
		}
		if len(hist.Entries) == 0 {
			return nil, fmt.Errorf("harness: baseline %s has no entries", path)
		}
		return &hist, nil
	case benchSchemaV1:
		var rep BenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("harness: load baseline %s: %w", path, err)
		}
		rep.Parallelism = 1
		return &BenchHistory{Schema: BenchSchema, Entries: []BenchReport{rep}}, nil
	default:
		return nil, fmt.Errorf("harness: baseline %s has schema %q, this build speaks %q (or legacy %q) — regenerate the baseline",
			path, probe.Schema, BenchSchema, benchSchemaV1)
	}
}

// CompareBenchReports checks the current record against a baseline and
// returns one line per regression. Only compressor throughput is
// gated: a compressor present in both records whose MBPerSec fell more
// than tolerance (a fraction; 0.30 = 30% slower) is a regression.
// Collective step timings are too machine-noise-dominated for a hard
// gate and are reported informationally by the caller instead; exact
// traffic counts are already asserted by tests. Compressors that are
// new in the current record pass (no baseline to regress against), and
// compressors missing from the current record fail — a silently dropped
// bench would otherwise hide a deleted code path.
func CompareBenchReports(baseline, current *BenchReport, tolerance float64) []string {
	var regressions []string
	cur := make(map[string]CompressorBench, len(current.Compressors))
	for _, cb := range current.Compressors {
		cur[cb.Name] = cb
	}
	for _, base := range baseline.Compressors {
		now, ok := cur[base.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("compressor %s: in baseline but missing from current run", base.Name))
			continue
		}
		if base.MBPerSec <= 0 {
			continue // degenerate baseline entry; nothing to gate against
		}
		floor := base.MBPerSec * (1 - tolerance)
		if now.MBPerSec < floor {
			regressions = append(regressions,
				fmt.Sprintf("compressor %s: %.1f MB/s vs baseline %.1f MB/s (-%.0f%%, tolerance %.0f%%)",
					base.Name, now.MBPerSec, base.MBPerSec,
					100*(1-now.MBPerSec/base.MBPerSec), 100*tolerance))
		}
	}
	return regressions
}
