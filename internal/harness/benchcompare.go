package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadBenchReport reads a committed sidco-bench JSON record (the
// BENCH_pipeline.json baseline) and rejects schema mismatches up front
// so a compare never silently diffs incompatible field meanings.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: load baseline: %w", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("harness: load baseline %s: %w", path, err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("harness: baseline %s has schema %q, this build speaks %q — regenerate the baseline",
			path, rep.Schema, BenchSchema)
	}
	return &rep, nil
}

// CompareBenchReports checks the current record against a baseline and
// returns one line per regression. Only compressor throughput is
// gated: a compressor present in both records whose MBPerSec fell more
// than tolerance (a fraction; 0.30 = 30% slower) is a regression.
// Collective step timings are too machine-noise-dominated for a hard
// gate and are reported informationally by the caller instead; exact
// traffic counts are already asserted by tests. Compressors that are
// new in the current record pass (no baseline to regress against), and
// compressors missing from the current record fail — a silently dropped
// bench would otherwise hide a deleted code path.
func CompareBenchReports(baseline, current *BenchReport, tolerance float64) []string {
	var regressions []string
	cur := make(map[string]CompressorBench, len(current.Compressors))
	for _, cb := range current.Compressors {
		cur[cb.Name] = cb
	}
	for _, base := range baseline.Compressors {
		now, ok := cur[base.Name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("compressor %s: in baseline but missing from current run", base.Name))
			continue
		}
		if base.MBPerSec <= 0 {
			continue // degenerate baseline entry; nothing to gate against
		}
		floor := base.MBPerSec * (1 - tolerance)
		if now.MBPerSec < floor {
			regressions = append(regressions,
				fmt.Sprintf("compressor %s: %.1f MB/s vs baseline %.1f MB/s (-%.0f%%, tolerance %.0f%%)",
					base.Name, now.MBPerSec, base.MBPerSec,
					100*(1-now.MBPerSec/base.MBPerSec), 100*tolerance))
		}
	}
	return regressions
}
