package harness

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// allocGradient is a deterministic heavy-tailed-ish gradient that gives
// threshold estimators a sane fit.
func allocGradient(dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, dim)
	for i := range g {
		g[i] = rng.NormFloat64() * rng.ExpFloat64()
	}
	return g
}

// TestCompressIntoSteadyStateAllocs is the allocation-regression guard of
// the streaming pipeline: after warm-up, CompressInto must not allocate
// for any registry compressor (plus randomk and the EC wrapper). A
// regression here silently reintroduces the per-step garbage the chunked
// pipeline was built to remove, so the budget is zero, not "small".
func TestCompressIntoSteadyStateAllocs(t *testing.T) {
	const dim = 1 << 15
	const delta = 0.01
	g := allocGradient(dim, 42)
	names := append(append([]string{}, CompressorNames...), "randomk", "none")
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			c := MustCompressor(name, 7)
			dst := &tensor.Sparse{}
			for i := 0; i < 50; i++ { // warm every scratch buffer
				if err := c.CompressInto(dst, g, delta); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := c.CompressInto(dst, g, delta); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("CompressInto allocates %v objects/op in steady state, want 0", allocs)
			}
		})
		t.Run(name+"+ec", func(t *testing.T) {
			c := compress.NewErrorFeedback(MustCompressor(name, 7))
			dst := &tensor.Sparse{}
			for i := 0; i < 50; i++ {
				if err := c.CompressInto(dst, g, delta); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := c.CompressInto(dst, g, delta); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("EC CompressInto allocates %v objects/op in steady state, want 0", allocs)
			}
		})
	}
}

// TestEncodeToDecodeIntoSteadyStateAllocs guards the wire path: encoding
// into a recycled buffer and decoding into recycled sparse storage must
// be allocation-free for every format.
func TestEncodeToDecodeIntoSteadyStateAllocs(t *testing.T) {
	const dim = 1 << 12
	g := allocGradient(dim, 9)
	sel, err := compress.NewTopK().Compress(g, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	formats := []encoding.Format{
		encoding.FormatPairs, encoding.FormatBitmap, encoding.FormatDense,
		encoding.FormatDeltaVarint, encoding.FormatPairs64,
		encoding.FormatPairsF16, encoding.FormatPairsBF16, encoding.FormatPairsI8,
	}
	for _, f := range formats {
		var buf []byte
		var dec tensor.Sparse
		// Warm the buffers, and verify the round-trip once.
		buf, err := encoding.EncodeTo(buf[:0], sel, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := encoding.DecodeInto(&dec, buf); err != nil {
			t.Fatal(err)
		}
		if dec.NNZ() != sel.NNZ() || dec.Dim != sel.Dim {
			t.Fatalf("format %d: round-trip lost shape: nnz %d dim %d", f, dec.NNZ(), dec.Dim)
		}
		allocs := testing.AllocsPerRun(20, func() {
			var err error
			buf, err = encoding.EncodeTo(buf[:0], sel, f)
			if err != nil {
				t.Fatal(err)
			}
			if err := encoding.DecodeInto(&dec, buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("format %d: EncodeTo+DecodeInto allocates %v objects/op, want 0", f, allocs)
		}
	}
}
