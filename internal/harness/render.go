package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width ASCII table matching the figures' row/bar
// structure.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	sep := make([]string, len(t.Columns))
	head := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		head[i] = pad(c, widths[i])
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(head, "  "))
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			cells[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(cells, "  "))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FmtX formats a speed-up multiple ("41.7x", "0" for non-convergence).
func FmtX(v float64) string {
	if v == 0 {
		return "0 (no conv.)"
	}
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", v)
}

// FmtRatio formats an estimation-quality ratio with its confidence
// interval.
func FmtRatio(mean, ci float64) string {
	switch {
	case math.IsNaN(mean):
		return "n/a"
	case mean >= 0.01:
		return fmt.Sprintf("%.3f +/- %.3f", mean, ci)
	default:
		return fmt.Sprintf("%.2e +/- %.1e", mean, ci)
	}
}

// FmtSecs formats a duration in engineering units.
func FmtSecs(s float64) string {
	switch {
	case math.IsNaN(s):
		return "n/a"
	case s >= 1:
		return fmt.Sprintf("%.3f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3f ms", s*1e3)
	default:
		return fmt.Sprintf("%.1f us", s*1e6)
	}
}

// Series renders a downsampled numeric series ("loss vs iteration") as
// index/value pairs, nPoints evenly spaced.
func Series(w io.Writer, title string, xs []float64, nPoints int) {
	fmt.Fprintf(w, "\n-- %s --\n", title)
	if len(xs) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	if nPoints <= 0 || nPoints > len(xs) {
		nPoints = len(xs)
	}
	step := float64(len(xs)-1) / float64(max(nPoints-1, 1))
	for p := 0; p < nPoints; p++ {
		i := int(math.Round(float64(p) * step))
		fmt.Fprintf(w, "  [%5d] %.6g\n", i, xs[i])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
