package harness

import (
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/simgrad"
	"repro/internal/stats"
)

// Options scales experiments down for tests and benches; zero values take
// the full defaults.
type Options struct {
	// Iters is the number of statistical iterations per run (default 100).
	Iters int
	// SimScale divides gradient dimensionality for statistical streams
	// (default 100).
	SimScale int
	// Seed fixes all random streams.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Iters <= 0 {
		o.Iters = 100
	}
	if o.SimScale <= 0 {
		o.SimScale = 100
	}
	return o
}

// Ratios are the paper's three target compression ratios.
var Ratios = []float64{0.1, 0.01, 0.001}

// sidcoStagesFor estimates the stage count the adaptive controller settles
// at for a target ratio (used by the analytic latency model when no
// statistical run is available).
func sidcoStagesFor(delta float64) int {
	return len(core.StageRatios(delta, 0.25, 99))
}

// estimationQuality runs a compressor over a synthetic stream and returns
// mean achieved ratio with 90% CI.
func estimationQuality(name string, dim int, delta float64, opt Options) (mean, ci float64, stages int, err error) {
	comp, err := NewCompressor(name, opt.Seed)
	if err != nil {
		return 0, 0, 0, err
	}
	gen := simgrad.New(simgrad.Config{
		Dim: dim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01,
		OutlierFrac: 5e-6, OutlierScale: 300, Seed: opt.Seed,
	})
	k := compress.TargetK(dim, delta)
	var r stats.Running
	buf := make([]float64, dim)
	for i := 0; i < opt.Iters; i++ {
		gen.Fill(buf)
		s, err := comp.Compress(buf, delta)
		if err != nil {
			return 0, 0, 0, err
		}
		r.Add(float64(s.NNZ()) / float64(k))
	}
	if sc, ok := comp.(*core.SIDCo); ok {
		stages = sc.Stages()
	}
	return r.Mean(), r.ConfidenceInterval(0.90), stages, nil
}

// Fig1 reproduces Figure 1: compression speed-up over Top-k on GPU (a) and
// CPU (b) for the VGG16-sized gradient at the three ratios, plus the
// threshold-estimation quality (c).
func Fig1(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	vgg, err := dist.WorkloadByName("vgg16-cifar10")
	if err != nil {
		return err
	}
	dim := vgg.Dim
	simDim := dim / opt.SimScale
	names := []string{"dgc", "redsync", "gaussiank", "sidco-e"}

	for _, dev := range []device.Profile{device.GPU(), device.CPU()} {
		tbl := NewTable(fmt.Sprintf("Fig 1 (%s): compression speed-up over Top-k, VGG16 (d=%d)", dev.Name, dim),
			append([]string{"compressor"}, ratioHeaders()...)...)
		for _, name := range names {
			row := []string{name}
			for _, delta := range Ratios {
				topk, err := dev.CompressLatency("topk", dim, delta, 1)
				if err != nil {
					return err
				}
				lat, err := dev.CompressLatency(name, dim, delta, sidcoStagesFor(delta))
				if err != nil {
					return err
				}
				row = append(row, FmtX(topk/lat))
			}
			tbl.AddRow(row...)
		}
		tbl.Render(w)
	}

	tbl := NewTable("Fig 1c: threshold estimation quality (mean k-hat/k, 90% CI)",
		append([]string{"compressor"}, ratioHeaders()...)...)
	for _, name := range names {
		row := []string{name}
		for _, delta := range Ratios {
			mean, ci, _, err := estimationQuality(name, simDim, delta, opt)
			if err != nil {
				return err
			}
			row = append(row, FmtRatio(mean, ci))
		}
		tbl.AddRow(row...)
	}
	tbl.Render(w)
	return nil
}

func ratioHeaders() []string {
	out := make([]string, len(Ratios))
	for i, r := range Ratios {
		out[i] = fmt.Sprintf("delta=%g", r)
	}
	return out
}

// Fig14And15 reproduces Figures 14 (speed-up over Top-k) and 15 (absolute
// latency) for real model sizes on both devices.
func Fig14And15(w io.Writer, opt Options) error {
	models := []struct {
		name string
		dim  int
	}{
		{"resnet20", 269467},
		{"vgg16", 14982987},
		{"resnet50", 25559081},
		{"lstm", 66034000},
	}
	names := []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"}
	for _, dev := range []device.Profile{device.GPU(), device.CPU()} {
		for _, m := range models {
			tbl := NewTable(fmt.Sprintf("Fig 14/15 (%s, %s d=%d): latency and speed-up over Top-k", dev.Name, m.name, m.dim),
				"compressor", "delta=0.1", "delta=0.01", "delta=0.001", "speedup@0.001")
			var topkLat float64
			for _, name := range names {
				row := []string{name}
				var last float64
				for _, delta := range Ratios {
					lat, err := dev.CompressLatency(name, m.dim, delta, sidcoStagesFor(delta))
					if err != nil {
						return err
					}
					row = append(row, FmtSecs(lat))
					last = lat
				}
				if name == "topk" {
					topkLat = last
				}
				row = append(row, FmtX(topkLat/last))
				tbl.AddRow(row...)
			}
			tbl.Render(w)
		}
	}
	return nil
}

// Fig16And17 reproduces Figures 16/17: latency and speed-up on synthetic
// tensors of 0.26M to 260M elements.
func Fig16And17(w io.Writer, opt Options) error {
	sizes := []int{260_000, 2_600_000, 26_000_000, 260_000_000}
	names := []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"}
	const delta = 0.001
	for _, dev := range []device.Profile{device.GPU(), device.CPU()} {
		tbl := NewTable(fmt.Sprintf("Fig 16/17 (%s): synthetic tensors, delta=%g", dev.Name, delta),
			"compressor", "0.26M", "2.6M", "26M", "260M", "speedup@26M")
		for _, name := range names {
			row := []string{name}
			var at26 float64
			for _, d := range sizes {
				lat, err := dev.CompressLatency(name, d, delta, sidcoStagesFor(delta))
				if err != nil {
					return err
				}
				if d == 26_000_000 {
					at26 = lat
				}
				row = append(row, FmtSecs(lat))
			}
			topk, err := dev.CompressLatency("topk", 26_000_000, delta, 1)
			if err != nil {
				return err
			}
			row = append(row, FmtX(topk/at26))
			tbl.AddRow(row...)
		}
		tbl.Render(w)
	}
	return nil
}

// GoWallClock measures the *actual Go implementation* wall-clock of each
// compressor on this machine for a given dimension, complementing the
// analytic device model with real numbers (reported alongside Figure 1).
func GoWallClock(w io.Writer, dim int, delta float64, iters int, seed int64) error {
	if iters <= 0 {
		iters = 3
	}
	gen := simgrad.New(simgrad.Config{
		Dim: dim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01, Seed: seed,
	})
	g := gen.Next()
	tbl := NewTable(fmt.Sprintf("Go wall-clock (this machine), d=%d, delta=%g", dim, delta),
		"compressor", "mean latency", "speedup vs topk", "k-hat/k")
	var topkTime float64
	names := []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"}
	k := compress.TargetK(dim, delta)
	for _, name := range names {
		comp, err := NewCompressor(name, seed)
		if err != nil {
			return err
		}
		var nnz int
		elapsed := timeIt(iters, func() {
			s, err := comp.Compress(g, delta)
			if err != nil {
				panic(err)
			}
			nnz = s.NNZ()
		})
		if name == "topk" {
			topkTime = elapsed
		}
		tbl.AddRow(name, FmtSecs(elapsed), FmtX(topkTime/elapsed),
			fmt.Sprintf("%.3f", float64(nnz)/float64(k)))
	}
	tbl.Render(w)
	return nil
}

// timeIt returns the mean wall-clock seconds of f over n runs.
func timeIt(n int, f func()) float64 {
	t0 := now()
	for i := 0; i < n; i++ {
		f()
	}
	return (now() - t0) / float64(n)
}

// Fig12 reproduces Figure 12: training throughput with the CPU as the
// compression device.
func Fig12(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	return deviceThroughputFigure(w, opt, device.CPU(),
		"Fig 12: training throughput, CPU compression device (samples/s)",
		[]string{"resnet20-cifar10", "vgg16-cifar10", "lstm-ptb"},
		[]string{"topk", "dgc", "sidco-e"})
}

func deviceThroughputFigure(w io.Writer, opt Options, dev device.Profile, title string, workloads, compressors []string) error {
	tbl := NewTable(title, append([]string{"workload"}, headerFor(compressors)...)...)
	for _, wl := range workloads {
		wk, err := dist.WorkloadByName(wl)
		if err != nil {
			return err
		}
		row := []string{wl}
		for _, cName := range compressors {
			for _, delta := range Ratios {
				res, err := dist.SimulateWorkload(dist.SimConfig{
					Workload:      wk,
					Net:           defaultNet(),
					Dev:           dev,
					NewCompressor: Factory(cName, opt.Seed),
					Delta:         delta,
					Iters:         opt.Iters,
					SimScale:      opt.SimScale,
					Seed:          opt.Seed,
				})
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.0f", res.Throughput))
			}
		}
		tbl.AddRow(row...)
	}
	tbl.Render(w)
	return nil
}

func headerFor(compressors []string) []string {
	var out []string
	for _, c := range compressors {
		for _, r := range Ratios {
			out = append(out, fmt.Sprintf("%s@%g", c, r))
		}
	}
	return out
}

// sanity guard referenced by tests.
var _ = math.NaN
