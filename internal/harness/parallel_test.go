package harness

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/encoding"
	"repro/internal/tensor"
)

// heavyTailedGrad builds a gradient with the pathologies that stress the
// parallel merge paths: exact magnitude ties straddling worker
// boundaries, zeros, and a lognormal heavy tail.
func heavyTailedGrad(d int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, d)
	for i := range g {
		switch rng.Intn(10) {
		case 0:
			g[i] = 0
		case 1, 2:
			if rng.Intn(2) == 0 {
				g[i] = 0.5
			} else {
				g[i] = -0.5
			}
		default:
			v := math.Exp(rng.NormFloat64() * 2)
			if rng.Intn(2) == 0 {
				v = -v
			}
			g[i] = v
		}
	}
	return g
}

func sparseEqual(t *testing.T, name string, step int, a, b *tensor.Sparse) {
	t.Helper()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("%s step %d: nnz %d (serial) != %d (parallel)", name, step, a.NNZ(), b.NNZ())
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] {
			t.Fatalf("%s step %d: idx[%d] %d != %d", name, step, i, a.Idx[i], b.Idx[i])
		}
		if math.Float64bits(a.Vals[i]) != math.Float64bits(b.Vals[i]) {
			t.Fatalf("%s step %d: val[%d] %x != %x", name, step, i, a.Vals[i], b.Vals[i])
		}
	}
}

// TestRegistryParallelBitIdentity runs every registry compressor (plain
// and EC-wrapped) over a multi-step stream at P=1 and P=8 and requires
// bitwise-identical selections at every step. Under -race this also
// exercises the goroutine fan-out for data races.
func TestRegistryParallelBitIdentity(t *testing.T) {
	const d = 1<<16 + 917
	const steps = 4
	const delta = 0.01

	grads := make([][]float64, steps)
	for s := range grads {
		grads[s] = heavyTailedGrad(d, int64(100+s))
	}

	for _, name := range CompressorNames {
		for _, ec := range []bool{false, true} {
			label := name
			serial := MustCompressor(name, 42)
			parallel := MustCompressor(name, 42)
			var sc, pc compress.Compressor = serial, parallel
			if ec {
				label += "+ec"
				sc = compress.NewErrorFeedback(serial)
				pc = compress.NewErrorFeedback(parallel)
			}
			if !compress.SetParallelism(pc, 8) {
				t.Fatalf("%s: compressor does not accept a parallelism knob", label)
			}
			// Setting P=1 explicitly must also be accepted and harmless.
			if !compress.SetParallelism(sc, 1) {
				t.Fatalf("%s: P=1 rejected", label)
			}
			var ds, dp tensor.Sparse
			for s := 0; s < steps; s++ {
				if err := sc.CompressInto(&ds, grads[s], delta); err != nil {
					t.Fatalf("%s step %d serial: %v", label, s, err)
				}
				if err := pc.CompressInto(&dp, grads[s], delta); err != nil {
					t.Fatalf("%s step %d parallel: %v", label, s, err)
				}
				sparseEqual(t, label, s, &ds, &dp)
			}
		}
	}
}

// TestErrorFeedbackWireFormat checks the quantized-wire EC contract: the
// emitted values are exactly what a decoder of the configured format
// reconstructs, and the quantization error joins the residual instead of
// being lost.
func TestErrorFeedbackWireFormat(t *testing.T) {
	const d = 4096
	const delta = 0.05
	g := heavyTailedGrad(d, 7)

	for _, f := range []encoding.Format{
		encoding.FormatPairs, encoding.FormatPairsF16,
		encoding.FormatPairsBF16, encoding.FormatPairsI8,
	} {
		ec := compress.NewErrorFeedback(compress.NewTopK())
		ec.SetWireFormat(f)
		var dst tensor.Sparse
		if err := ec.CompressInto(&dst, g, delta); err != nil {
			t.Fatalf("format %d: %v", f, err)
		}

		// Emitted values must be fixed points of the wire round-trip.
		rt := append([]float64(nil), dst.Vals...)
		if err := encoding.RoundTripValues(f, rt); err != nil {
			t.Fatalf("format %d round-trip: %v", f, err)
		}
		for i := range rt {
			if math.Float64bits(rt[i]) != math.Float64bits(dst.Vals[i]) {
				t.Fatalf("format %d: val[%d] %v not wire-exact (decodes to %v)", f, i, dst.Vals[i], rt[i])
			}
		}

		// residual[j] must equal g[j] - emitted[j] on selected coordinates
		// (first step: residual starts at zero), i.e. the quantization
		// error is absorbed, not discarded.
		res := ec.Residual()
		for i, j := range dst.Idx {
			want := g[j] - dst.Vals[i]
			if math.Float64bits(res[j]) != math.Float64bits(want) {
				t.Fatalf("format %d: residual[%d] = %v, want %v", f, j, res[j], want)
			}
		}
	}

	// ClearWireFormat restores plain EC: emitted values are the corrected
	// gradient values untouched.
	ec := compress.NewErrorFeedback(compress.NewTopK())
	ec.SetWireFormat(encoding.FormatPairsI8)
	ec.ClearWireFormat()
	var dst tensor.Sparse
	if err := ec.CompressInto(&dst, g, delta); err != nil {
		t.Fatal(err)
	}
	for i, j := range dst.Idx {
		if math.Float64bits(dst.Vals[i]) != math.Float64bits(g[j]) {
			t.Fatalf("cleared wire format still rounds: val[%d]=%v want %v", i, dst.Vals[i], g[j])
		}
	}
}
