package harness

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/netsim"
)

// topologyCollectives are the schedules the topology study sweeps; they
// are the same three that internal/cluster executes as real message
// passing.
var topologyCollectives = []netsim.Collective{
	netsim.CollectiveRing, netsim.CollectiveAllGather, netsim.CollectivePS,
}

// TopologyStudy compares the three collective topologies on every
// requested workload: per-iteration communication time and speedup over
// the dense ring baseline, at each compression ratio. It is the analytic
// counterpart of cmd/sidco-cluster's measured exchanges — the same
// SimConfig.Collective knob any harness figure can now set.
func TopologyStudy(w io.Writer, workloads []string, compressor string, opt Options) error {
	opt = opt.withDefaults()
	if len(workloads) == 0 {
		workloads = []string{"lstm-ptb", "resnet20-cifar10"}
	}
	if compressor == "" {
		compressor = "sidco-e"
	}
	for _, wlName := range workloads {
		wl, err := dist.WorkloadByName(wlName)
		if err != nil {
			return err
		}
		tbl := NewTable(
			fmt.Sprintf("Topology study — %s (%s, 8x 25GbE): comm time and speed-up vs dense ring", wlName, compressor),
			"collective", "dense comm",
			fmt.Sprintf("comm d=%g", Ratios[0]), fmt.Sprintf("comm d=%g", Ratios[2]),
			fmt.Sprintf("speedup d=%g", Ratios[0]), fmt.Sprintf("speedup d=%g", Ratios[2]))
		base, err := dist.SimulateWorkload(dist.SimConfig{
			Workload: wl, Collective: netsim.CollectiveRing,
			Iters: opt.Iters, SimScale: opt.SimScale, Seed: opt.Seed,
		})
		if err != nil {
			return err
		}
		for _, coll := range topologyCollectives {
			dense, err := dist.SimulateWorkload(dist.SimConfig{
				Workload: wl, Collective: coll,
				Iters: opt.Iters, SimScale: opt.SimScale, Seed: opt.Seed,
			})
			if err != nil {
				return err
			}
			row := []string{coll.String(), FmtSecs(dense.CommTime)}
			var comms, speeds []string
			for _, delta := range []float64{Ratios[0], Ratios[2]} {
				res, err := dist.SimulateWorkload(dist.SimConfig{
					Workload: wl, Collective: coll, Dev: device.GPU(),
					NewCompressor: Factory(compressor, opt.Seed), Delta: delta,
					Iters: opt.Iters, SimScale: opt.SimScale, Seed: opt.Seed,
				})
				if err != nil {
					return err
				}
				comms = append(comms, FmtSecs(res.CommTime))
				speeds = append(speeds, FmtX(dist.Speedup(res, base)))
			}
			row = append(row, comms...)
			row = append(row, speeds...)
			tbl.AddRow(row...)
		}
		tbl.Render(w)
	}
	return nil
}
