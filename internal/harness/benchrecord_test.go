package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// small keeps the bench-record test fast: tiny tensors, two iterations.
var small = BenchOptions{
	Dim: 4096, Iters: 2,
	CollectiveDim: 2048, CollectiveIters: 2,
	Seed: 7,
}

// TestBenchRecordTrafficMatchesFormulas is the machine-independent core
// of the bench record: the instrumented message counts of every
// collective case must equal the netsim closed form exactly.
func TestBenchRecordTrafficMatchesFormulas(t *testing.T) {
	rep, err := BenchRecord(small)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if len(rep.Collectives) != len(benchCollectives) {
		t.Fatalf("got %d collective entries, want %d", len(rep.Collectives), len(benchCollectives))
	}
	for _, c := range rep.Collectives {
		if c.Messages != c.PredictedMessages {
			t.Errorf("%s chunks=%d: %d messages, formula predicts %d",
				c.Collective, c.Chunks, c.Messages, c.PredictedMessages)
		}
		if c.Messages == 0 || c.Bytes == 0 {
			t.Errorf("%s chunks=%d: empty traffic (%d msgs, %d bytes)",
				c.Collective, c.Chunks, c.Messages, c.Bytes)
		}
		if c.StepWallSec <= 0 {
			t.Errorf("%s chunks=%d: non-positive step time %g",
				c.Collective, c.Chunks, c.StepWallSec)
		}
	}
	for _, cb := range rep.Compressors {
		if cb.MeanSec <= 0 || cb.MBPerSec <= 0 {
			t.Errorf("%s: non-positive timing (%g s, %g MB/s)", cb.Name, cb.MeanSec, cb.MBPerSec)
		}
		if cb.KHatOverK <= 0 {
			t.Errorf("%s: khat/k = %g, want > 0", cb.Name, cb.KHatOverK)
		}
	}
	if len(rep.Formats) != len(benchFormats) {
		t.Fatalf("got %d format entries, want %d", len(rep.Formats), len(benchFormats))
	}
	for _, fb := range rep.Formats {
		if fb.Bytes <= 0 || fb.BytesPerValue <= 0 {
			t.Errorf("format %s: empty sizing (%d bytes, %g per value)", fb.Format, fb.Bytes, fb.BytesPerValue)
		}
		if fb.EncodeMBPerSec <= 0 || fb.DecodeMBPerSec <= 0 {
			t.Errorf("format %s: non-positive throughput", fb.Format)
		}
	}
}

// TestBenchHistoryRecordEntries pins the trajectory shape: a P=1 entry
// always, plus the parallel entry when requested — with bit-identically
// deterministic traffic counts between the two (parallelism must not
// change what goes on the wire).
func TestBenchHistoryRecordEntries(t *testing.T) {
	opt := small
	opt.Parallelism = 4
	hist, err := BenchHistoryRecord(opt)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", hist.Schema, BenchSchema)
	}
	if len(hist.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(hist.Entries))
	}
	if hist.Entries[0].Parallelism != 1 || hist.Entries[1].Parallelism != 4 {
		t.Fatalf("entry parallelisms = %d, %d; want 1, 4",
			hist.Entries[0].Parallelism, hist.Entries[1].Parallelism)
	}
	for i := range hist.Entries[0].Collectives {
		a, b := hist.Entries[0].Collectives[i], hist.Entries[1].Collectives[i]
		if a.Messages != b.Messages || a.Bytes != b.Bytes {
			t.Errorf("%s chunks=%d: traffic differs across parallelism (%d/%d msgs, %d/%d bytes)",
				a.Collective, a.Chunks, a.Messages, b.Messages, a.Bytes, b.Bytes)
		}
	}
}

// TestWriteBenchJSONRoundTrips asserts the emitted bytes are a valid
// JSON document that decodes back into the same schema — the contract
// BENCH_pipeline.json consumers rely on.
func TestWriteBenchJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, small); err != nil {
		t.Fatal(err)
	}
	var hist BenchHistory
	if err := json.Unmarshal(buf.Bytes(), &hist); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if hist.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", hist.Schema, BenchSchema)
	}
	if len(hist.Entries) == 0 {
		t.Fatal("emitted history has no entries")
	}
	rep := hist.Entries[0]
	if len(rep.Compressors) == 0 || len(rep.Collectives) == 0 {
		t.Fatalf("empty report: %d compressors, %d collectives", len(rep.Compressors), len(rep.Collectives))
	}
	if buf.Bytes()[buf.Len()-1] != '\n' {
		t.Error("report does not end in a newline")
	}
}
