package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// small keeps the bench-record test fast: tiny tensors, two iterations.
var small = BenchOptions{
	Dim: 4096, Iters: 2,
	CollectiveDim: 2048, CollectiveIters: 2,
	Seed: 7,
}

// TestBenchRecordTrafficMatchesFormulas is the machine-independent core
// of the bench record: the instrumented message counts of every
// collective case must equal the netsim closed form exactly.
func TestBenchRecordTrafficMatchesFormulas(t *testing.T) {
	rep, err := BenchRecord(small)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if len(rep.Collectives) != len(benchCollectives) {
		t.Fatalf("got %d collective entries, want %d", len(rep.Collectives), len(benchCollectives))
	}
	for _, c := range rep.Collectives {
		if c.Messages != c.PredictedMessages {
			t.Errorf("%s chunks=%d: %d messages, formula predicts %d",
				c.Collective, c.Chunks, c.Messages, c.PredictedMessages)
		}
		if c.Messages == 0 || c.Bytes == 0 {
			t.Errorf("%s chunks=%d: empty traffic (%d msgs, %d bytes)",
				c.Collective, c.Chunks, c.Messages, c.Bytes)
		}
		if c.StepWallSec <= 0 {
			t.Errorf("%s chunks=%d: non-positive step time %g",
				c.Collective, c.Chunks, c.StepWallSec)
		}
	}
	for _, cb := range rep.Compressors {
		if cb.MeanSec <= 0 || cb.MBPerSec <= 0 {
			t.Errorf("%s: non-positive timing (%g s, %g MB/s)", cb.Name, cb.MeanSec, cb.MBPerSec)
		}
		if cb.KHatOverK <= 0 {
			t.Errorf("%s: khat/k = %g, want > 0", cb.Name, cb.KHatOverK)
		}
	}
}

// TestWriteBenchJSONRoundTrips asserts the emitted bytes are a valid
// JSON document that decodes back into the same schema — the contract
// BENCH_pipeline.json consumers rely on.
func TestWriteBenchJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, small); err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if len(rep.Compressors) == 0 || len(rep.Collectives) == 0 {
		t.Fatalf("empty report: %d compressors, %d collectives", len(rep.Compressors), len(rep.Collectives))
	}
	if buf.Bytes()[buf.Len()-1] != '\n' {
		t.Error("report does not end in a newline")
	}
}
