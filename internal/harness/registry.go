// Package harness assembles the experiments: a compressor registry, ASCII
// table/series rendering, and one entry point per paper table/figure. The
// cmd/ binaries and the benchmark suite are thin wrappers over these
// functions, so `go test -bench` and the CLIs print the same numbers.
package harness

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/device"
)

// CompressorNames lists the registry in the paper's presentation order.
var CompressorNames = []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"}

// NewCompressor builds a fresh compressor by registry name. Stateful
// compressors (DGC's sampler, GaussianKSGD's factor, SIDCo's stage
// controller) are created fresh per call, so each experiment run is
// independent; seed feeds the randomized ones.
func NewCompressor(name string, seed int64) (compress.Compressor, error) {
	switch name {
	case "none":
		return compress.None{}, nil
	case "topk":
		return compress.NewTopK(), nil
	case "dgc":
		return compress.NewDGC(seed), nil
	case "redsync":
		return compress.NewRedSync(), nil
	case "gaussiank":
		return compress.NewGaussianKSGD(), nil
	case "randomk":
		return compress.NewRandomK(seed, false), nil
	case "sidco-e":
		return core.NewE(), nil
	case "sidco-gp":
		return core.NewGammaGP(), nil
	case "sidco-p":
		return core.NewGP(), nil
	default:
		return nil, fmt.Errorf("harness: unknown compressor %q", name)
	}
}

// MustCompressor is NewCompressor for static names.
func MustCompressor(name string, seed int64) compress.Compressor {
	c, err := NewCompressor(name, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Factory returns a constructor closure for dist.SimConfig.NewCompressor.
func Factory(name string, seed int64) func() compress.Compressor {
	return func() compress.Compressor { return MustCompressor(name, seed) }
}

// deviceGPU returns the default GPU device profile (indirection keeps the
// figure code free of repeated imports).
func deviceGPU() device.Profile { return device.GPU() }
