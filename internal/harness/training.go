package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/stats"
)

func defaultNet() netsim.Network { return netsim.Cluster25GbE(8) }

// now reads the wall clock for throughput reporting.
//
//sidco:nondet wall-clock benchmark measurement, reporting only
func now() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// Table1Catalog prints the benchmark suite (Table 1).
func Table1Catalog(w io.Writer) {
	tbl := NewTable("Table 1: benchmark suite",
		"workload", "task", "params", "batch/worker", "LR", "epochs", "comm overhead", "optimizer", "quality metric")
	for _, wl := range dist.Table1() {
		tbl.AddRow(wl.Name, wl.Task, fmt.Sprintf("%d", wl.Dim), fmt.Sprintf("%d", wl.BatchSize),
			fmt.Sprintf("%g", wl.LR), fmt.Sprintf("%d", wl.Epochs),
			fmt.Sprintf("%.0f%%", wl.CommOverhead*100), wl.Optimizer, wl.Quality)
	}
	tbl.Render(w)
}

// TrainingFigureConfig drives the simulated training figures (3, 5, 6, 13,
// 18).
type TrainingFigureConfig struct {
	Title       string
	Workloads   []string
	Ratios      []float64
	Compressors []string
	Net         netsim.Network
	Dev         device.Profile
	Opt         Options
}

// TrainingFigure renders speed-up, normalized throughput and estimation
// quality tables for each workload, mirroring the three-panel layout of
// Figures 3, 5, 6, 13 and 18.
func TrainingFigure(w io.Writer, cfg TrainingFigureConfig) error {
	cfg.Opt = cfg.Opt.withDefaults()
	if cfg.Net.Workers == 0 {
		cfg.Net = defaultNet()
	}
	if cfg.Dev.Name == "" {
		cfg.Dev = device.GPU()
	}
	if len(cfg.Ratios) == 0 {
		cfg.Ratios = Ratios
	}
	if len(cfg.Compressors) == 0 {
		cfg.Compressors = CompressorNames
	}
	for _, wlName := range cfg.Workloads {
		wl, err := dist.WorkloadByName(wlName)
		if err != nil {
			return err
		}
		ratioHdr := make([]string, len(cfg.Ratios))
		for i, r := range cfg.Ratios {
			ratioHdr[i] = fmt.Sprintf("delta=%g", r)
		}
		speed := NewTable(fmt.Sprintf("%s — %s: normalized training speed-up (vs no compression)", cfg.Title, wlName),
			append([]string{"compressor"}, ratioHdr...)...)
		tput := NewTable(fmt.Sprintf("%s — %s: normalized average training throughput", cfg.Title, wlName),
			append([]string{"compressor"}, ratioHdr...)...)
		qual := NewTable(fmt.Sprintf("%s — %s: estimation quality (mean k-hat/k, 90%% CI)", cfg.Title, wlName),
			append([]string{"compressor"}, ratioHdr...)...)

		baselines := make(map[float64]*dist.SimResult)
		for _, delta := range cfg.Ratios {
			base, err := dist.SimulateWorkload(simConfig(cfg, wl, "none", delta))
			if err != nil {
				return err
			}
			baselines[delta] = base
		}
		for _, cName := range cfg.Compressors {
			speedRow := []string{cName}
			tputRow := []string{cName}
			qualRow := []string{cName}
			for _, delta := range cfg.Ratios {
				res, err := dist.SimulateWorkload(simConfig(cfg, wl, cName, delta))
				if err != nil {
					return err
				}
				base := baselines[delta]
				speedRow = append(speedRow, FmtX(dist.Speedup(res, base)))
				tputRow = append(tputRow, FmtX(res.Throughput/base.Throughput))
				qualRow = append(qualRow, FmtRatio(res.MeanRatio, res.CI90))
			}
			speed.AddRow(speedRow...)
			tput.AddRow(tputRow...)
			qual.AddRow(qualRow...)
		}
		speed.Render(w)
		tput.Render(w)
		qual.Render(w)
	}
	return nil
}

func simConfig(cfg TrainingFigureConfig, wl dist.Workload, cName string, delta float64) dist.SimConfig {
	return dist.SimConfig{
		Workload:      wl,
		Net:           cfg.Net,
		Dev:           cfg.Dev,
		NewCompressor: Factory(cName, cfg.Opt.Seed),
		Delta:         delta,
		Iters:         cfg.Opt.Iters,
		SimScale:      cfg.Opt.SimScale,
		Seed:          cfg.Opt.Seed,
	}
}

// Fig3 renders the RNN benchmarks (LSTM-PTB, LSTM-AN4).
func Fig3(w io.Writer, opt Options) error {
	return TrainingFigure(w, TrainingFigureConfig{
		Title:     "Fig 3",
		Workloads: []string{"lstm-ptb", "lstm-an4"},
		Compressors: []string{
			"topk", "dgc", "redsync", "gaussiank", "sidco-e",
		},
		Opt: opt,
	})
}

// Fig5 renders the CIFAR-10 CNN benchmarks.
func Fig5(w io.Writer, opt Options) error {
	return TrainingFigure(w, TrainingFigureConfig{
		Title:       "Fig 5",
		Workloads:   []string{"resnet20-cifar10", "vgg16-cifar10"},
		Compressors: []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e"},
		Opt:         opt,
	})
}

// Fig6 renders the ImageNet benchmarks.
func Fig6(w io.Writer, opt Options) error {
	return TrainingFigure(w, TrainingFigureConfig{
		Title:       "Fig 6",
		Workloads:   []string{"resnet50-imagenet", "vgg19-imagenet"},
		Compressors: []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e"},
		Opt:         opt,
	})
}

// Fig13 renders the multi-GPU single-node ImageNet experiment (fast
// NVLink-class fabric).
func Fig13(w io.Writer, opt Options) error {
	return TrainingFigure(w, TrainingFigureConfig{
		Title:     "Fig 13",
		Workloads: []string{"resnet50-imagenet", "vgg19-imagenet"},
		Ratios:    []float64{0.1, 0.01},
		Net:       netsim.NVLinkNode(8),
		Opt:       opt,
	})
}

// Fig18 renders the full all-SIDs comparison across every workload.
func Fig18(w io.Writer, opt Options) error {
	return TrainingFigure(w, TrainingFigureConfig{
		Title: "Fig 18",
		Workloads: []string{
			"lstm-ptb", "lstm-an4", "resnet20-cifar10",
			"vgg16-cifar10", "resnet50-imagenet", "vgg19-imagenet",
		},
		Opt: opt,
	})
}

// Fig9 renders the smoothed (EWMA) achieved-compression-ratio series for
// every workload and ratio — the stability view of threshold estimators.
func Fig9(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	names := []string{"dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"}
	for _, wlName := range []string{"resnet20-cifar10", "vgg16-cifar10", "lstm-ptb", "lstm-an4"} {
		wl, err := dist.WorkloadByName(wlName)
		if err != nil {
			return err
		}
		for _, delta := range Ratios {
			tbl := NewTable(fmt.Sprintf("Fig 9 — %s, delta=%g: smoothed achieved ratio over training", wlName, delta),
				"compressor", "iter 25%", "iter 50%", "iter 75%", "iter 100%", "geo-mean")
			for _, cName := range names {
				res, err := dist.SimulateWorkload(dist.SimConfig{
					Workload:      wl,
					Net:           defaultNet(),
					Dev:           device.GPU(),
					NewCompressor: Factory(cName, opt.Seed),
					Delta:         delta,
					Iters:         opt.Iters,
					SimScale:      opt.SimScale,
					Seed:          opt.Seed,
				})
				if err != nil {
					return err
				}
				e := stats.EWMA{Alpha: 0.1}
				smoothed := make([]float64, len(res.RatioSeries))
				for i, r := range res.RatioSeries {
					smoothed[i] = e.Add(r * delta) // absolute achieved ratio, as the paper plots
				}
				n := len(smoothed)
				tbl.AddRow(cName,
					fmt.Sprintf("%.2e", smoothed[n/4]),
					fmt.Sprintf("%.2e", smoothed[n/2]),
					fmt.Sprintf("%.2e", smoothed[3*n/4]),
					fmt.Sprintf("%.2e", smoothed[n-1]),
					fmt.Sprintf("%.3f", res.GeoMeanRatio))
			}
			tbl.Render(w)
		}
	}
	return nil
}

// Fig11 renders the VGG19 delta=0.001 deep dive: smoothed ratio and the
// iteration-time decomposition.
func Fig11(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	wl, err := dist.WorkloadByName("vgg19-imagenet")
	if err != nil {
		return err
	}
	tbl := NewTable("Fig 11 — VGG19 ImageNet, delta=0.001: ratio quality and iteration breakdown",
		"compressor", "mean ratio", "geo-mean", "compute", "compress", "comm", "iter")
	for _, cName := range []string{"none", "topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"} {
		res, err := dist.SimulateWorkload(dist.SimConfig{
			Workload:      wl,
			Net:           defaultNet(),
			Dev:           device.GPU(),
			NewCompressor: Factory(cName, opt.Seed),
			Delta:         0.001,
			Iters:         opt.Iters,
			SimScale:      opt.SimScale,
			Seed:          opt.Seed,
		})
		if err != nil {
			return err
		}
		tbl.AddRow(cName,
			fmt.Sprintf("%.3f", res.MeanRatio),
			fmt.Sprintf("%.3f", res.GeoMeanRatio),
			FmtSecs(res.ComputeTime), FmtSecs(res.CompressTime),
			FmtSecs(res.CommTime), FmtSecs(res.IterTime))
	}
	tbl.Render(w)
	return nil
}
