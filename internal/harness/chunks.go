package harness

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
)

// ChunkStudyConfig parameterises the chunked-pipeline study.
type ChunkStudyConfig struct {
	// Workers is the cluster size N (default 4).
	Workers int
	// Dim is the gradient dimension (default 1<<18).
	Dim int
	// Delta is the compression ratio (default 0.05).
	Delta float64
	// Straggler is the compute slowdown of the last node in the
	// straggler scenario (default 8).
	Straggler float64
	// Chunks are the chunk counts swept (default 1, 2, 4, 8, 16).
	Chunks []int
	// Net is the fabric priced by the scenario (default: a commodity
	// 1 Gbps / 50 us edge fabric, the bandwidth-constrained regime the
	// paper motivates compression with — there the collective is long
	// enough for the pipeline to hide real work behind it).
	Net netsim.Network
	// Seed fixes the synthetic gradients.
	Seed int64
}

func (c ChunkStudyConfig) withDefaults() ChunkStudyConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Dim <= 0 {
		c.Dim = 1 << 18
	}
	if c.Delta <= 0 || c.Delta > 1 {
		c.Delta = 0.05
	}
	if c.Straggler <= 0 {
		c.Straggler = 8
	}
	if len(c.Chunks) == 0 {
		c.Chunks = []int{1, 2, 4, 8, 16}
	}
	if c.Net == (netsim.Network{}) {
		c.Net = netsim.Network{Workers: c.Workers, BandwidthBps: 1e9, LatencySec: 50e-6}
	}
	return c
}

// chunkRun is one measured engine exchange of the study.
type chunkRun struct {
	chunks    int
	elapsed   float64
	msgs      int
	bytes     int
	wantMsgs  int
	wantBytes int
	agg       []float64
}

// ChunkStudy measures the chunked, pipelined all-gather against the
// monolithic schedule on the alpha-beta virtual clock: top-k-compressed
// synthetic gradients are exchanged through the real message-passing
// engine at each chunk count, under a homogeneous scenario and under a
// straggler whose compression time the pipeline can hide. Every row
// cross-validates measured traffic against the exact accounting
// (encoding sizes and netsim's chunked message formula) and checks the
// chunked aggregate bit-identical to the monolithic one; the predicted
// column is netsim's closed-form pipeline span for the homogeneous case.
//
// The compression-time charge comes from the CPU device profile's top-k
// latency — the hardware regime where SIDCo's motivation (compression
// stalls the step) is strongest.
func ChunkStudy(w io.Writer, cfg ChunkStudyConfig) error {
	cfg = cfg.withDefaults()
	ins, err := chunkStudyInputs(cfg)
	if err != nil {
		return err
	}
	net := cfg.Net
	compressSec, err := device.CPU().CompressLatency("topk", cfg.Dim, cfg.Delta, 1)
	if err != nil {
		return err
	}

	scenarios := []struct {
		name      string
		straggler bool
	}{
		{"homogeneous", false},
		{fmt.Sprintf("straggler x%g", cfg.Straggler), true},
	}
	for _, sc := range scenarios {
		tbl := NewTable(
			fmt.Sprintf("Chunked pipeline study — %s: N=%d, d=%d, delta=%g, topk, %.0fGbps, compress %s/step",
				sc.name, cfg.Workers, cfg.Dim, cfg.Delta, net.BandwidthBps/1e9, FmtSecs(compressSec)),
			"chunks", "virtual time", "speedup vs mono", "predicted (uniform)",
			"msgs", "bytes", "traffic exact", "bit-identical")
		var mono *chunkRun
		for _, chunks := range cfg.Chunks {
			run, err := measureChunks(cfg, ins, scenarioFor(cfg, sc.straggler), compressSec, chunks)
			if err != nil {
				return err
			}
			if mono == nil {
				mono = run
			}
			predicted := "-"
			if !sc.straggler {
				predicted = FmtSecs(chunkPrediction(net, cfg, ins, compressSec, chunks))
			}
			tbl.AddRow(
				fmt.Sprintf("%d", run.chunks),
				FmtSecs(run.elapsed),
				FmtX(mono.elapsed/run.elapsed),
				predicted,
				fmt.Sprintf("%d", run.msgs),
				fmt.Sprintf("%d", run.bytes),
				fmt.Sprintf("%v", run.msgs == run.wantMsgs && run.bytes == run.wantBytes),
				fmt.Sprintf("%v", sameFloats(run.agg, mono.agg)),
			)
		}
		tbl.Render(w)
	}
	return nil
}

// chunkStudyInputs builds per-worker top-k-compressed synthetic
// gradients (deterministic in the seed).
func chunkStudyInputs(cfg ChunkStudyConfig) ([]dist.ExchangeInput, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ins := make([]dist.ExchangeInput, cfg.Workers)
	topk := compress.NewTopK()
	for w := range ins {
		dense := make([]float64, cfg.Dim)
		for i := range dense {
			dense[i] = rng.NormFloat64()
		}
		s, err := topk.Compress(dense, cfg.Delta)
		if err != nil {
			return nil, err
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense, Sparse: s}
	}
	return ins, nil
}

// measureChunks runs one engine exchange at the given chunk count and
// returns the measured clock, traffic and aggregate, alongside the exact
// traffic accounting (per-chunk encoded sizes over the lossless wire).
func measureChunks(cfg ChunkStudyConfig, ins []dist.ExchangeInput, scen *cluster.Scenario, compressSec float64, chunks int) (*chunkRun, error) {
	e, err := cluster.New(cluster.Config{
		Workers:     cfg.Workers,
		Collective:  netsim.CollectiveAllGather,
		Scenario:    scen,
		Chunks:      chunks,
		CompressSec: compressSec,
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	agg := make([]float64, cfg.Dim)
	if err := e.Exchange(0, ins, agg); err != nil {
		return nil, err
	}
	msgs, bytes := e.Transport().Totals()
	run := &chunkRun{
		chunks:   chunks,
		elapsed:  e.Transport().Elapsed(),
		msgs:     msgs,
		bytes:    bytes,
		wantMsgs: cfg.Workers * netsim.ChunkedAllGatherMessages(cfg.Workers, chunks),
		agg:      agg,
	}
	// Exact byte accounting: every worker's selection, partitioned into
	// chunk ranges, encoded in the lossless pair format and forwarded
	// N-1 times.
	for _, in := range ins {
		for _, nnz := range cluster.ChunkNNZ(in.Sparse.Idx, cfg.Dim, chunks) {
			run.wantBytes += netsim.AllGatherTrafficBytes(cfg.Workers, encoding.Pairs64Size(cfg.Dim, nnz))
		}
	}
	return run, nil
}

// chunkPrediction is netsim's closed-form pipelined all-gather span for
// the homogeneous scenario, using worker 0's actual per-chunk payload
// sizes (all workers draw i.i.d. gradients, so they are representative).
func chunkPrediction(net netsim.Network, cfg ChunkStudyConfig, ins []dist.ExchangeInput, compressSec float64, chunks int) float64 {
	chunkBytes := make([]int, 0, chunks)
	for _, nnz := range cluster.ChunkNNZ(ins[0].Sparse.Idx, cfg.Dim, chunks) {
		chunkBytes = append(chunkBytes, encoding.Pairs64Size(cfg.Dim, nnz))
	}
	return net.ChunkedAllGatherSparse(chunkBytes, compressSec/float64(chunks))
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scenarioFor builds the study's scenario (with or without the straggler
// on the last node) for the configured fabric.
func scenarioFor(cfg ChunkStudyConfig, straggler bool) *cluster.Scenario {
	s := cluster.ScenarioFromNetwork(cfg.Net)
	if straggler {
		s.StragglerFactor = map[int]float64{cfg.Workers - 1: cfg.Straggler}
	}
	return s
}
