package harness

import (
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/simgrad"
	"repro/internal/stats"
)

// qualityOf streams gradients from gen through comp and returns the mean
// achieved ratio and the mean absolute log-ratio error (0 = perfect).
func qualityOf(comp compress.Compressor, gen *simgrad.Generator, dim int, delta float64, iters int) (mean, logErr float64, err error) {
	k := compress.TargetK(dim, delta)
	var r stats.Running
	sumLog := 0.0
	buf := make([]float64, dim)
	for i := 0; i < iters; i++ {
		gen.Fill(buf)
		s, err := comp.Compress(buf, delta)
		if err != nil {
			return 0, 0, err
		}
		ratio := float64(s.NNZ()) / float64(k)
		r.Add(ratio)
		sumLog += math.Abs(math.Log(math.Max(ratio, 1e-9)))
	}
	return r.Mean(), sumLog / float64(iters), nil
}

func gammaStream(dim int, seed int64) *simgrad.Generator {
	return simgrad.New(simgrad.Config{
		Dim: dim, Family: simgrad.FamilyDoubleGamma, Shape: 0.55, Scale: 0.01, Seed: seed,
	})
}

// AblationStages compares the adaptive multi-stage estimator against
// forced single-stage fitting across ratios (the Section 2.4 motivation).
func AblationStages(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const dim = 200000
	tbl := NewTable("Ablation: multi-stage vs single-stage fitting (mean |log k-hat/k|; lower is better)",
		"delta", "single-stage", "adaptive multi-stage")
	for _, delta := range Ratios {
		single := core.New(core.Config{SID: core.SIDExponential, MaxStages: 1})
		multi := core.NewE()
		_, singleErr, err := qualityOf(single, gammaStream(dim, opt.Seed), dim, delta, opt.Iters)
		if err != nil {
			return err
		}
		_, multiErr, err := qualityOf(multi, gammaStream(dim, opt.Seed), dim, delta, opt.Iters)
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("%g", delta), fmt.Sprintf("%.4f", singleErr), fmt.Sprintf("%.4f", multiErr))
	}
	tbl.Render(w)
	return nil
}

// AblationDelta1 sweeps the first-stage ratio delta1 (the paper fixes
// 0.25), reporting estimation quality and modelled GPU latency.
func AblationDelta1(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const dim, delta = 200000, 0.001
	dev := device.GPU()
	tbl := NewTable("Ablation: first-stage ratio delta1 at delta=0.001",
		"delta1", "mean k-hat/k", "|log err|", "stages", "GPU latency (model)")
	for _, d1 := range []float64{0.05, 0.1, 0.25, 0.5} {
		c := core.New(core.Config{SID: core.SIDExponential, Delta1: d1})
		mean, logErr, err := qualityOf(c, gammaStream(dim, opt.Seed), dim, delta, opt.Iters)
		if err != nil {
			return err
		}
		lat, err := dev.CompressLatency("sidco-e", 14982987, delta, c.Stages())
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("%g", d1), fmt.Sprintf("%.4f", mean),
			fmt.Sprintf("%.4f", logErr), fmt.Sprintf("%d", c.Stages()), FmtSecs(lat))
	}
	tbl.Render(w)
	return nil
}

// AblationAdapt compares the adaptive stage controller against fixed stage
// counts.
func AblationAdapt(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const dim, delta = 200000, 0.001
	tbl := NewTable("Ablation: stage adaptation on/off at delta=0.001",
		"configuration", "mean k-hat/k", "|log err|", "final stages")
	configs := []struct {
		name string
		c    *core.SIDCo
	}{
		{"adaptive (paper)", core.NewE()},
		{"fixed M=1", core.New(core.Config{SID: core.SIDExponential, MaxStages: 1})},
		{"fixed M=2", core.New(core.Config{SID: core.SIDExponential, MaxStages: 2})},
		{"fixed M=4", core.New(core.Config{SID: core.SIDExponential, MaxStages: 4})},
	}
	for _, cfg := range configs {
		mean, logErr, err := qualityOf(cfg.c, gammaStream(dim, opt.Seed), dim, delta, opt.Iters)
		if err != nil {
			return err
		}
		tbl.AddRow(cfg.name, fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", logErr),
			fmt.Sprintf("%d", cfg.c.Stages()))
	}
	tbl.Render(w)
	return nil
}

// AblationSID crosses the three SIDCo variants with three gradient
// families, showing how fitting family matches tail behaviour.
func AblationSID(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const dim, delta = 200000, 0.01
	families := []struct {
		name string
		cfg  simgrad.Config
	}{
		{"laplace", simgrad.Config{Dim: dim, Family: simgrad.FamilyLaplace, Scale: 0.01, Seed: opt.Seed}},
		{"gamma(0.55)", simgrad.Config{Dim: dim, Family: simgrad.FamilyDoubleGamma, Shape: 0.55, Scale: 0.01, Seed: opt.Seed}},
		{"gp(0.2)", simgrad.Config{Dim: dim, Family: simgrad.FamilyDoubleGP, Shape: 0.2, Scale: 0.01, Seed: opt.Seed}},
	}
	tbl := NewTable("Ablation: SID family vs gradient family (mean k-hat/k at delta=0.01)",
		"gradient family", "sidco-e", "sidco-gp", "sidco-p")
	for _, fam := range families {
		row := []string{fam.name}
		for _, cName := range []string{"sidco-e", "sidco-gp", "sidco-p"} {
			c := MustCompressor(cName, opt.Seed)
			mean, _, err := qualityOf(c, simgrad.New(fam.cfg), dim, delta, opt.Iters)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.4f", mean))
		}
		tbl.AddRow(row...)
	}
	tbl.Render(w)
	return nil
}

// AblationGammaApprox compares the paper's closed-form gamma threshold
// approximation (eq. 15) against the exact inverse-incomplete-gamma
// quantile used by default in this implementation.
func AblationGammaApprox(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const dim, delta = 200000, 0.001
	tbl := NewTable("Ablation: gamma threshold — paper's closed form vs exact quantile (delta=0.001)",
		"first stage", "mean k-hat/k", "|log err|")
	for _, cfg := range []struct {
		name   string
		approx bool
	}{{"exact quantile (default)", false}, {"paper closed form (eq. 15)", true}} {
		c := core.New(core.Config{SID: core.SIDGammaGP, ApproxGamma: cfg.approx})
		mean, logErr, err := qualityOf(c, gammaStream(dim, opt.Seed), dim, delta, opt.Iters)
		if err != nil {
			return err
		}
		tbl.AddRow(cfg.name, fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", logErr))
	}
	tbl.Render(w)
	return nil
}

// AblationEC trains the conv model with and without error feedback under
// Top-k and SIDCo compression, reporting final losses — the Figure 2 vs
// Figure 8 contrast in training-quality terms.
func AblationEC(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	const delta = 0.01
	tbl := NewTable("Ablation: error feedback on/off (conv net, delta=0.01; final loss, lower is better)",
		"compressor", "EC on", "EC off")
	for _, cName := range []string{"topk", "sidco-e"} {
		row := []string{cName}
		for _, ec := range []bool{true, false} {
			tr, err := buildConvTrainer(cName, delta, ec, opt, nil)
			if err != nil {
				return err
			}
			losses, _, err := tr.Run(opt.Iters)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.4f", meanTail(losses, 10)))
		}
		tbl.AddRow(row...)
	}
	tbl.Render(w)
	return nil
}
