package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/simgrad"
)

// BenchSchema identifies the machine-readable bench record format. Bump
// the version suffix when a field changes meaning; adding fields is
// backward compatible and does not.
const BenchSchema = "sidco-bench/v1"

// BenchReport is the machine-readable perf baseline emitted by
// `sidco-micro -json` and committed as BENCH_pipeline.json: real Go
// wall-clock numbers for every compressor plus measured step time and
// exact traffic for each collective. Timings are machine-dependent
// (compare runs from the same machine); message counts are exact and
// machine-independent — PredictedMessages restates the netsim closed
// form so a reader can verify the engine against the model from the
// JSON alone.
type BenchReport struct {
	Schema      string            `json:"schema"`
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	Compressors []CompressorBench `json:"compressors"`
	Collectives []CollectiveBench `json:"collectives"`
}

// CompressorBench is one compressor's wall-clock measurement: mean
// seconds per Compress call on a double-gamma synthetic gradient, the
// implied input throughput, and the achieved-vs-target selection ratio.
type CompressorBench struct {
	Name      string  `json:"name"`
	Dim       int     `json:"dim"`
	Delta     float64 `json:"delta"`
	Iters     int     `json:"iters"`
	MeanSec   float64 `json:"mean_sec"`
	MBPerSec  float64 `json:"mb_per_s"`
	KHatOverK float64 `json:"khat_over_k"`
}

// CollectiveBench is one collective's measured exchange: mean wall
// seconds per full exchange over the in-process ChanTransport, the
// total messages and payload bytes the instrumented transport counted
// across all iterations, and the message count the netsim closed form
// predicts for the same run. Messages must equal PredictedMessages
// exactly — the harness test asserts it.
type CollectiveBench struct {
	Collective        string  `json:"collective"`
	Workers           int     `json:"workers"`
	Chunks            int     `json:"chunks"`
	Dim               int     `json:"dim"`
	Delta             float64 `json:"delta"`
	Iters             int     `json:"iters"`
	StepWallSec       float64 `json:"step_wall_sec"`
	Messages          int     `json:"messages"`
	Bytes             int     `json:"bytes"`
	PredictedMessages int     `json:"predicted_messages"`
}

// BenchOptions scales the bench record; zero values take full defaults
// (the parameters of the committed baseline).
type BenchOptions struct {
	// Dim is the gradient dimension for compressor benches (default 1M).
	Dim int
	// Delta is the compressor target ratio (default 0.001).
	Delta float64
	// Iters is the runs averaged per compressor (default 3).
	Iters int
	// Workers is the collective fan-out (default 4).
	Workers int
	// CollectiveDim is the gradient dimension for collective benches
	// (default 65536).
	CollectiveDim int
	// CollectiveDelta is the sparsification ratio for collective benches
	// (default 0.01).
	CollectiveDelta float64
	// CollectiveIters is the exchanges averaged per collective
	// (default 3).
	CollectiveIters int
	// Seed fixes the synthetic gradient streams.
	Seed int64
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Dim <= 0 {
		o.Dim = 1_000_000
	}
	if o.Delta <= 0 {
		o.Delta = 0.001
	}
	if o.Iters <= 0 {
		o.Iters = 3
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CollectiveDim <= 0 {
		o.CollectiveDim = 65536
	}
	if o.CollectiveDelta <= 0 {
		o.CollectiveDelta = 0.01
	}
	if o.CollectiveIters <= 0 {
		o.CollectiveIters = 3
	}
	return o
}

// benchCollectives is the fixed matrix of collective cases recorded in
// the baseline: each ring collective once, plus the chunked pipeline at
// a chunk count where the overlap matters.
var benchCollectives = []struct {
	collective netsim.Collective
	chunks     int
}{
	{netsim.CollectiveRing, 1},
	{netsim.CollectiveAllGather, 1},
	{netsim.CollectiveAllGather, 8},
	{netsim.CollectivePS, 1},
}

// BenchRecord measures the current build and returns the report.
func BenchRecord(opt BenchOptions) (*BenchReport, error) {
	opt = opt.withDefaults()
	rep := &BenchReport{
		Schema:    BenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	names := []string{"topk", "dgc", "redsync", "gaussiank", "sidco-e", "sidco-gp", "sidco-p"}
	for _, name := range names {
		cb, err := compressorBench(name, opt)
		if err != nil {
			return nil, err
		}
		rep.Compressors = append(rep.Compressors, cb)
	}
	for _, c := range benchCollectives {
		cb, err := collectiveBench(c.collective, c.chunks, opt)
		if err != nil {
			return nil, err
		}
		rep.Collectives = append(rep.Collectives, cb)
	}
	return rep, nil
}

func compressorBench(name string, opt BenchOptions) (CompressorBench, error) {
	comp, err := NewCompressor(name, opt.Seed)
	if err != nil {
		return CompressorBench{}, err
	}
	gen := simgrad.New(simgrad.Config{
		Dim: opt.Dim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01, Seed: opt.Seed,
	})
	g := gen.Next()
	k := compress.TargetK(opt.Dim, opt.Delta)
	var nnz int
	var benchErr error
	mean := timeIt(opt.Iters, func() {
		s, err := comp.Compress(g, opt.Delta)
		if err != nil {
			benchErr = err
			return
		}
		nnz = s.NNZ()
	})
	if benchErr != nil {
		return CompressorBench{}, fmt.Errorf("harness: bench %s: %w", name, benchErr)
	}
	mbps := 0.0
	if mean > 0 {
		mbps = float64(opt.Dim) * 8 / mean / 1e6
	}
	return CompressorBench{
		Name: name, Dim: opt.Dim, Delta: opt.Delta, Iters: opt.Iters,
		MeanSec: mean, MBPerSec: mbps, KHatOverK: float64(nnz) / float64(k),
	}, nil
}

// predictedMessages returns the netsim closed-form message count of one
// exchange: the rings put n sending nodes on the wire, the parameter
// server's formula already counts both sides.
func predictedMessages(c netsim.Collective, workers, chunks int) int {
	switch c {
	case netsim.CollectiveRing:
		return workers * netsim.RingMessages(workers)
	case netsim.CollectiveAllGather:
		return workers * netsim.ChunkedAllGatherMessages(workers, chunks)
	case netsim.CollectivePS:
		return netsim.PSMessages(workers)
	default:
		return 0
	}
}

func collectiveBench(c netsim.Collective, chunks int, opt BenchOptions) (CollectiveBench, error) {
	e, err := cluster.New(cluster.Config{
		Workers:    opt.Workers,
		Collective: c,
		Chunks:     chunks,
	})
	if err != nil {
		return CollectiveBench{}, err
	}
	defer e.Close()

	gen := simgrad.New(simgrad.Config{
		Dim: opt.CollectiveDim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01, Seed: opt.Seed,
	})
	comp, err := NewCompressor("topk", opt.Seed)
	if err != nil {
		return CollectiveBench{}, err
	}
	ins := make([]dist.ExchangeInput, opt.Workers)
	for w := range ins {
		dense := make([]float64, opt.CollectiveDim)
		gen.Fill(dense)
		sp, err := comp.Compress(dense, opt.CollectiveDelta)
		if err != nil {
			return CollectiveBench{}, err
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense, Sparse: sp}
	}
	agg := make([]float64, opt.CollectiveDim)

	// One untimed, uncounted warm-up exchange fills per-node scratch so
	// the timed loop measures steady state.
	if err := e.Exchange(0, ins, agg); err != nil {
		return CollectiveBench{}, err
	}
	e.Transport().Reset()

	step := 1
	var benchErr error
	mean := timeIt(opt.CollectiveIters, func() {
		if err := e.Exchange(step, ins, agg); err != nil {
			benchErr = err
		}
		step++
	})
	if benchErr != nil {
		return CollectiveBench{}, fmt.Errorf("harness: bench %s: %w", c, benchErr)
	}
	msgs, bytes := e.Transport().Totals()
	return CollectiveBench{
		Collective: c.String(), Workers: opt.Workers, Chunks: chunks,
		Dim: opt.CollectiveDim, Delta: opt.CollectiveDelta, Iters: opt.CollectiveIters,
		StepWallSec: mean, Messages: msgs, Bytes: bytes,
		PredictedMessages: opt.CollectiveIters * predictedMessages(c, opt.Workers, chunks),
	}, nil
}

// WriteBenchJSON runs BenchRecord and writes the indented JSON report,
// trailing newline included — the exact bytes committed as
// BENCH_pipeline.json.
func WriteBenchJSON(w io.Writer, opt BenchOptions) error {
	rep, err := BenchRecord(opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
