package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/encoding"
	"repro/internal/netsim"
	"repro/internal/simgrad"
	"repro/internal/tensor"
)

// BenchSchema identifies the machine-readable bench record format. Bump
// the version suffix when a field changes meaning; adding fields is
// backward compatible and does not. v2 wraps the report in a
// BenchHistory trajectory and adds per-entry compression parallelism
// plus per-format wire-size/throughput rows; v1 single-report baselines
// are still read (LoadBenchHistory wraps them as one P=1 entry).
const BenchSchema = "sidco-bench/v2"

// benchSchemaV1 is the previous single-report schema, accepted on load.
const benchSchemaV1 = "sidco-bench/v1"

// BenchHistory is the committed trajectory: one entry per measurement
// configuration (at minimum single-core plus the machine's parallel
// setting), so BENCH_pipeline.json carries the perf history rather than
// a single point.
type BenchHistory struct {
	Schema  string        `json:"schema"`
	Entries []BenchReport `json:"entries"`
}

// EntryFor returns the entry measured at the given compression
// parallelism, or — when no exact match exists — the entry with the
// nearest parallelism (ties toward the lower setting). Entries without
// a recorded parallelism (v1 baselines) count as 1.
func (h *BenchHistory) EntryFor(parallelism int) (*BenchReport, error) {
	if len(h.Entries) == 0 {
		return nil, fmt.Errorf("harness: bench history has no entries")
	}
	if parallelism < 1 {
		parallelism = 1
	}
	norm := func(p int) int {
		if p < 1 {
			return 1
		}
		return p
	}
	best := 0
	for i := 1; i < len(h.Entries); i++ {
		bd := norm(h.Entries[best].Parallelism) - parallelism
		id := norm(h.Entries[i].Parallelism) - parallelism
		if bd < 0 {
			bd = -bd
		}
		if id < 0 {
			id = -id
		}
		if id < bd || (id == bd && norm(h.Entries[i].Parallelism) < norm(h.Entries[best].Parallelism)) {
			best = i
		}
	}
	return &h.Entries[best], nil
}

// BenchReport is the machine-readable perf baseline emitted by
// `sidco-micro -json` and committed as BENCH_pipeline.json: real Go
// wall-clock numbers for every compressor plus measured step time and
// exact traffic for each collective. Timings are machine-dependent
// (compare runs from the same machine); message counts are exact and
// machine-independent — PredictedMessages restates the netsim closed
// form so a reader can verify the engine against the model from the
// JSON alone.
type BenchReport struct {
	Schema      string            `json:"schema"`
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	Parallelism int               `json:"parallelism"`
	Compressors []CompressorBench `json:"compressors"`
	Collectives []CollectiveBench `json:"collectives"`
	Formats     []FormatBench     `json:"formats,omitempty"`
}

// FormatBench is one wire format's measured encode/decode throughput and
// exact size on a top-k selection: Bytes is the full encoded payload,
// BytesPerValue the per-element wire cost (header amortized in), and the
// MB/s columns move encoded payload bytes per wall second.
type FormatBench struct {
	Format         string  `json:"format"`
	Dim            int     `json:"dim"`
	NNZ            int     `json:"nnz"`
	Bytes          int     `json:"bytes"`
	BytesPerValue  float64 `json:"bytes_per_value"`
	EncodeMBPerSec float64 `json:"encode_mb_per_s"`
	DecodeMBPerSec float64 `json:"decode_mb_per_s"`
}

// CompressorBench is one compressor's wall-clock measurement: mean
// seconds per Compress call on a double-gamma synthetic gradient, the
// implied input throughput, and the achieved-vs-target selection ratio.
type CompressorBench struct {
	Name      string  `json:"name"`
	Dim       int     `json:"dim"`
	Delta     float64 `json:"delta"`
	Iters     int     `json:"iters"`
	MeanSec   float64 `json:"mean_sec"`
	MBPerSec  float64 `json:"mb_per_s"`
	KHatOverK float64 `json:"khat_over_k"`
}

// CollectiveBench is one collective's measured exchange: mean wall
// seconds per full exchange over the in-process ChanTransport, the
// total messages and payload bytes the instrumented transport counted
// across all iterations, and the message count the netsim closed form
// predicts for the same run. Messages must equal PredictedMessages
// exactly — the harness test asserts it.
type CollectiveBench struct {
	Collective        string  `json:"collective"`
	Workers           int     `json:"workers"`
	Chunks            int     `json:"chunks"`
	Dim               int     `json:"dim"`
	Delta             float64 `json:"delta"`
	Iters             int     `json:"iters"`
	StepWallSec       float64 `json:"step_wall_sec"`
	Messages          int     `json:"messages"`
	Bytes             int     `json:"bytes"`
	PredictedMessages int     `json:"predicted_messages"`
}

// BenchOptions scales the bench record; zero values take full defaults
// (the parameters of the committed baseline).
type BenchOptions struct {
	// Dim is the gradient dimension for compressor benches (default 1M).
	Dim int
	// Delta is the compressor target ratio (default 0.001).
	Delta float64
	// Iters is the runs averaged per compressor (default 3).
	Iters int
	// Workers is the collective fan-out (default 4).
	Workers int
	// CollectiveDim is the gradient dimension for collective benches
	// (default 65536).
	CollectiveDim int
	// CollectiveDelta is the sparsification ratio for collective benches
	// (default 0.01).
	CollectiveDelta float64
	// CollectiveIters is the exchanges averaged per collective
	// (default 3).
	CollectiveIters int
	// Seed fixes the synthetic gradient streams.
	Seed int64
	// Parallelism is the compression fan-out applied to every
	// compressor bench (compress.SetParallelism; default 1).
	Parallelism int
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Dim <= 0 {
		o.Dim = 1_000_000
	}
	if o.Delta <= 0 {
		o.Delta = 0.001
	}
	if o.Iters <= 0 {
		o.Iters = 3
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CollectiveDim <= 0 {
		o.CollectiveDim = 65536
	}
	if o.CollectiveDelta <= 0 {
		o.CollectiveDelta = 0.01
	}
	if o.CollectiveIters <= 0 {
		o.CollectiveIters = 3
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return o
}

// benchCollectives is the fixed matrix of collective cases recorded in
// the baseline: each ring collective once, plus the chunked pipeline at
// a chunk count where the overlap matters.
var benchCollectives = []struct {
	collective netsim.Collective
	chunks     int
}{
	{netsim.CollectiveRing, 1},
	{netsim.CollectiveAllGather, 1},
	{netsim.CollectiveAllGather, 8},
	{netsim.CollectivePS, 1},
}

// BenchRecord measures the current build and returns the report.
func BenchRecord(opt BenchOptions) (*BenchReport, error) {
	opt = opt.withDefaults()
	rep := &BenchReport{
		Schema:      BenchSchema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Parallelism: opt.Parallelism,
	}
	for _, name := range CompressorNames {
		cb, err := compressorBench(name, opt)
		if err != nil {
			return nil, err
		}
		rep.Compressors = append(rep.Compressors, cb)
	}
	for _, c := range benchCollectives {
		cb, err := collectiveBench(c.collective, c.chunks, opt)
		if err != nil {
			return nil, err
		}
		rep.Collectives = append(rep.Collectives, cb)
	}
	fbs, err := formatBenches(opt)
	if err != nil {
		return nil, err
	}
	rep.Formats = fbs
	return rep, nil
}

// BenchHistoryRecord measures the standard trajectory: one single-core
// entry plus, when opt.Parallelism > 1, one entry at that fan-out.
func BenchHistoryRecord(opt BenchOptions) (*BenchHistory, error) {
	opt = opt.withDefaults()
	hist := &BenchHistory{Schema: BenchSchema}
	serial := opt
	serial.Parallelism = 1
	rep, err := BenchRecord(serial)
	if err != nil {
		return nil, err
	}
	hist.Entries = append(hist.Entries, *rep)
	if opt.Parallelism > 1 {
		rep, err := BenchRecord(opt)
		if err != nil {
			return nil, err
		}
		hist.Entries = append(hist.Entries, *rep)
	}
	return hist, nil
}

// benchFormats is the fixed list of wire formats recorded per entry:
// every data-independent format, lossless through the 8x-narrower int8.
var benchFormats = []encoding.Format{
	encoding.FormatPairs64, encoding.FormatPairs, encoding.FormatBitmap,
	encoding.FormatDense, encoding.FormatPairsF16, encoding.FormatPairsBF16,
	encoding.FormatPairsI8,
}

// formatBenches measures wire encode/decode throughput and exact sizes
// over a top-k selection of the collective-bench gradient.
func formatBenches(opt BenchOptions) ([]FormatBench, error) {
	gen := simgrad.New(simgrad.Config{
		Dim: opt.CollectiveDim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01, Seed: opt.Seed,
	})
	dense := make([]float64, opt.CollectiveDim)
	gen.Fill(dense)
	comp, err := NewCompressor("topk", opt.Seed)
	if err != nil {
		return nil, err
	}
	sp, err := comp.Compress(dense, opt.CollectiveDelta)
	if err != nil {
		return nil, err
	}
	var out []FormatBench
	var buf []byte
	var dec tensor.Sparse
	for _, f := range benchFormats {
		wantSize, err := encoding.Size(f, sp.Dim, sp.NNZ())
		if err != nil {
			return nil, err
		}
		var benchErr error
		encMean := timeIt(opt.Iters, func() {
			buf, benchErr = encoding.EncodeTo(buf[:0], sp, f)
		})
		if benchErr != nil {
			return nil, fmt.Errorf("harness: format bench %v: %w", f, benchErr)
		}
		if len(buf) != wantSize {
			return nil, fmt.Errorf("harness: format %v encoded %d bytes, Size says %d", f, len(buf), wantSize)
		}
		decMean := timeIt(opt.Iters, func() {
			benchErr = encoding.DecodeInto(&dec, buf)
		})
		if benchErr != nil {
			return nil, fmt.Errorf("harness: format bench %v decode: %w", f, benchErr)
		}
		fb := FormatBench{
			Format: f.String(), Dim: sp.Dim, NNZ: sp.NNZ(), Bytes: len(buf),
			BytesPerValue: float64(len(buf)) / float64(sp.NNZ()),
		}
		if encMean > 0 {
			fb.EncodeMBPerSec = float64(len(buf)) / encMean / 1e6
		}
		if decMean > 0 {
			fb.DecodeMBPerSec = float64(len(buf)) / decMean / 1e6
		}
		out = append(out, fb)
	}
	return out, nil
}

func compressorBench(name string, opt BenchOptions) (CompressorBench, error) {
	comp, err := NewCompressor(name, opt.Seed)
	if err != nil {
		return CompressorBench{}, err
	}
	if opt.Parallelism > 1 {
		compress.SetParallelism(comp, opt.Parallelism)
	}
	gen := simgrad.New(simgrad.Config{
		Dim: opt.Dim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01, Seed: opt.Seed,
	})
	g := gen.Next()
	k := compress.TargetK(opt.Dim, opt.Delta)
	var nnz int
	var benchErr error
	mean := timeIt(opt.Iters, func() {
		s, err := comp.Compress(g, opt.Delta)
		if err != nil {
			benchErr = err
			return
		}
		nnz = s.NNZ()
	})
	if benchErr != nil {
		return CompressorBench{}, fmt.Errorf("harness: bench %s: %w", name, benchErr)
	}
	mbps := 0.0
	if mean > 0 {
		mbps = float64(opt.Dim) * 8 / mean / 1e6
	}
	return CompressorBench{
		Name: name, Dim: opt.Dim, Delta: opt.Delta, Iters: opt.Iters,
		MeanSec: mean, MBPerSec: mbps, KHatOverK: float64(nnz) / float64(k),
	}, nil
}

// predictedMessages returns the netsim closed-form message count of one
// exchange: the rings put n sending nodes on the wire, the parameter
// server's formula already counts both sides.
func predictedMessages(c netsim.Collective, workers, chunks int) int {
	switch c {
	case netsim.CollectiveRing:
		return workers * netsim.RingMessages(workers)
	case netsim.CollectiveAllGather:
		return workers * netsim.ChunkedAllGatherMessages(workers, chunks)
	case netsim.CollectivePS:
		return netsim.PSMessages(workers)
	default:
		return 0
	}
}

func collectiveBench(c netsim.Collective, chunks int, opt BenchOptions) (CollectiveBench, error) {
	e, err := cluster.New(cluster.Config{
		Workers:    opt.Workers,
		Collective: c,
		Chunks:     chunks,
	})
	if err != nil {
		return CollectiveBench{}, err
	}
	defer e.Close()

	gen := simgrad.New(simgrad.Config{
		Dim: opt.CollectiveDim, Family: simgrad.FamilyDoubleGamma, Shape: 0.6, Scale: 0.01, Seed: opt.Seed,
	})
	comp, err := NewCompressor("topk", opt.Seed)
	if err != nil {
		return CollectiveBench{}, err
	}
	ins := make([]dist.ExchangeInput, opt.Workers)
	for w := range ins {
		dense := make([]float64, opt.CollectiveDim)
		gen.Fill(dense)
		sp, err := comp.Compress(dense, opt.CollectiveDelta)
		if err != nil {
			return CollectiveBench{}, err
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense, Sparse: sp}
	}
	agg := make([]float64, opt.CollectiveDim)

	// One untimed, uncounted warm-up exchange fills per-node scratch so
	// the timed loop measures steady state.
	if err := e.Exchange(0, ins, agg); err != nil {
		return CollectiveBench{}, err
	}
	e.Transport().Reset()

	step := 1
	var benchErr error
	mean := timeIt(opt.CollectiveIters, func() {
		if err := e.Exchange(step, ins, agg); err != nil {
			benchErr = err
		}
		step++
	})
	if benchErr != nil {
		return CollectiveBench{}, fmt.Errorf("harness: bench %s: %w", c, benchErr)
	}
	msgs, bytes := e.Transport().Totals()
	return CollectiveBench{
		Collective: c.String(), Workers: opt.Workers, Chunks: chunks,
		Dim: opt.CollectiveDim, Delta: opt.CollectiveDelta, Iters: opt.CollectiveIters,
		StepWallSec: mean, Messages: msgs, Bytes: bytes,
		PredictedMessages: opt.CollectiveIters * predictedMessages(c, opt.Workers, chunks),
	}, nil
}

// WriteBenchJSON runs BenchHistoryRecord and writes the indented JSON
// trajectory, trailing newline included — the exact bytes committed as
// BENCH_pipeline.json.
func WriteBenchJSON(w io.Writer, opt BenchOptions) error {
	hist, err := BenchHistoryRecord(opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(hist)
}
