package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFixture(names []string, mbps []float64) *BenchReport {
	rep := &BenchReport{Schema: BenchSchema}
	for i, n := range names {
		rep.Compressors = append(rep.Compressors, CompressorBench{Name: n, MBPerSec: mbps[i]})
	}
	return rep
}

func TestCompareBenchReports(t *testing.T) {
	base := benchFixture([]string{"topk", "dgc", "sidco-e"}, []float64{100, 200, 300})

	t.Run("within tolerance passes", func(t *testing.T) {
		cur := benchFixture([]string{"topk", "dgc", "sidco-e"}, []float64{71, 400, 300})
		if regs := CompareBenchReports(base, cur, 0.30); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})
	t.Run("regression beyond tolerance fails", func(t *testing.T) {
		cur := benchFixture([]string{"topk", "dgc", "sidco-e"}, []float64{69, 200, 300})
		regs := CompareBenchReports(base, cur, 0.30)
		if len(regs) != 1 || !strings.Contains(regs[0], "topk") {
			t.Fatalf("want one topk regression, got %v", regs)
		}
	})
	t.Run("missing compressor fails", func(t *testing.T) {
		cur := benchFixture([]string{"topk", "dgc"}, []float64{100, 200})
		regs := CompareBenchReports(base, cur, 0.30)
		if len(regs) != 1 || !strings.Contains(regs[0], "sidco-e") {
			t.Fatalf("want one missing-compressor failure, got %v", regs)
		}
	})
	t.Run("new compressor passes", func(t *testing.T) {
		cur := benchFixture([]string{"topk", "dgc", "sidco-e", "brandnew"}, []float64{100, 200, 300, 1})
		if regs := CompareBenchReports(base, cur, 0.30); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})
	t.Run("zero-throughput baseline entry is skipped", func(t *testing.T) {
		b := benchFixture([]string{"topk"}, []float64{0})
		cur := benchFixture([]string{"topk"}, []float64{0})
		if regs := CompareBenchReports(b, cur, 0.30); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})
}

func TestLoadBenchHistorySchemas(t *testing.T) {
	dir := t.TempDir()

	// A v2 trajectory loads as-is.
	v2 := filepath.Join(dir, "v2.json")
	doc := `{"schema":"` + BenchSchema + `","entries":[` +
		`{"schema":"` + BenchSchema + `","parallelism":1,"compressors":[{"name":"topk","mb_per_s":5}]},` +
		`{"schema":"` + BenchSchema + `","parallelism":8,"compressors":[{"name":"topk","mb_per_s":9}]}]}`
	if err := os.WriteFile(v2, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	hist, err := LoadBenchHistory(v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(hist.Entries))
	}
	for _, c := range []struct{ ask, wantP int }{{1, 1}, {8, 8}, {0, 1}, {6, 8}, {4, 1}, {100, 8}} {
		e, err := hist.EntryFor(c.ask)
		if err != nil {
			t.Fatal(err)
		}
		if e.Parallelism != c.wantP {
			t.Errorf("EntryFor(%d) picked parallelism %d, want %d", c.ask, e.Parallelism, c.wantP)
		}
	}

	// A v1 single report wraps into a one-entry P=1 history.
	v1 := filepath.Join(dir, "v1.json")
	if err := os.WriteFile(v1, []byte(`{"schema":"sidco-bench/v1","compressors":[{"name":"topk","mb_per_s":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hist, err = LoadBenchHistory(v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Entries) != 1 || hist.Entries[0].Parallelism != 1 {
		t.Fatalf("v1 baseline wrapped wrong: %+v", hist)
	}
	if hist.Entries[0].Compressors[0].MBPerSec != 5 {
		t.Fatalf("v1 report mangled: %+v", hist.Entries[0])
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"sidco-bench/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchHistory(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema-mismatch error, got %v", err)
	}
	if _, err := LoadBenchHistory(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestLoadCommittedBaseline(t *testing.T) {
	// The committed baseline must stay loadable by the current build, or
	// the CI compare gate dies on its first step.
	hist, err := LoadBenchHistory("../../BENCH_pipeline.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hist.EntryFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compressors) == 0 {
		t.Fatal("committed baseline has no compressor entries")
	}
}
