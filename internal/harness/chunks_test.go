package harness

import (
	"strings"
	"testing"
)

// TestChunkStudyRenders exercises the full study end to end and checks
// that every cross-validation column comes out clean: no row may report
// inexact traffic or a non-bit-identical aggregate.
func TestChunkStudyRenders(t *testing.T) {
	var sb strings.Builder
	cfg := ChunkStudyConfig{Workers: 3, Dim: 1 << 12, Delta: 0.05, Chunks: []int{1, 2, 4}, Seed: 5}
	if err := ChunkStudy(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "false") {
		t.Fatalf("study reports a failed cross-check:\n%s", out)
	}
	for _, want := range []string{"homogeneous", "straggler", "chunks", "bit-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestChunkStudyStragglerWin pins the acceptance criterion: under the
// default bandwidth-constrained fabric with a straggling node, at least
// one chunked configuration must beat the monolithic schedule on the
// alpha-beta virtual clock. The virtual clock is deterministic, so this
// is a stable assertion, not a flaky wall-clock race.
func TestChunkStudyStragglerWin(t *testing.T) {
	cfg := ChunkStudyConfig{Seed: 1}.withDefaults()
	ins, err := chunkStudyInputs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compressSec := 2e-3
	measure := func(chunks int, straggler bool) float64 {
		s := scenarioFor(cfg, straggler)
		run, err := measureChunks(cfg, ins, s, compressSec, chunks)
		if err != nil {
			t.Fatal(err)
		}
		if run.msgs != run.wantMsgs || run.bytes != run.wantBytes {
			t.Fatalf("chunks=%d: traffic mismatch: msgs %d want %d, bytes %d want %d",
				chunks, run.msgs, run.wantMsgs, run.bytes, run.wantBytes)
		}
		return run.elapsed
	}
	for _, straggler := range []bool{false, true} {
		mono := measure(1, straggler)
		best := mono
		for _, c := range []int{2, 4, 8} {
			if v := measure(c, straggler); v < best {
				best = v
			}
		}
		if best >= mono {
			t.Errorf("straggler=%v: no chunked config beats monolithic (mono %v, best %v)", straggler, mono, best)
		}
	}
}
