package harness

import (
	"bytes"
	"strings"
	"testing"
)

// fastOpt keeps harness tests quick; the cmd binaries use fuller settings.
var fastOpt = Options{Iters: 15, SimScale: 1000, Seed: 1}

func TestRegistry(t *testing.T) {
	for _, name := range append([]string{"none", "randomk"}, CompressorNames...) {
		c, err := NewCompressor(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "none" && c.Name() != name {
			t.Errorf("registry name mismatch: %q -> %q", name, c.Name())
		}
	}
	if _, err := NewCompressor("bogus", 1); err == nil {
		t.Error("unknown name should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompressor should panic on unknown name")
		}
	}()
	MustCompressor("bogus", 1)
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tbl := NewTable("demo", "a", "bb")
	tbl.AddRow("x", "y")
	tbl.AddRow("longer")
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "longer"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := FmtX(0); got != "0 (no conv.)" {
		t.Errorf("FmtX(0) = %q", got)
	}
	if got := FmtX(41.7); got != "41.70x" {
		t.Errorf("FmtX = %q", got)
	}
	if got := FmtSecs(0.5); got != "500.000 ms" {
		t.Errorf("FmtSecs = %q", got)
	}
	if got := FmtSecs(2); got != "2.000 s" {
		t.Errorf("FmtSecs = %q", got)
	}
	if got := FmtSecs(2e-6); got != "2.0 us" {
		t.Errorf("FmtSecs = %q", got)
	}
	if got := FmtRatio(0.95, 0.01); !strings.Contains(got, "0.950") {
		t.Errorf("FmtRatio = %q", got)
	}
	if got := FmtRatio(1e-4, 1e-5); !strings.Contains(got, "e-0") {
		t.Errorf("FmtRatio small = %q", got)
	}
}

func TestSeriesRendering(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "s", []float64{1, 2, 3, 4, 5}, 3)
	out := buf.String()
	if !strings.Contains(out, "[    0]") || !strings.Contains(out, "[    4]") {
		t.Errorf("series endpoints missing:\n%s", out)
	}
	Series(&buf, "empty", nil, 3)
	if !strings.Contains(buf.String(), "(empty)") {
		t.Error("empty series not handled")
	}
}

func TestTable1Catalog(t *testing.T) {
	var buf bytes.Buffer
	Table1Catalog(&buf)
	for _, want := range []string{"lstm-ptb", "vgg19-imagenet", "94%", "66034000"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

// skipIfShort skips the multi-second figure regenerations under
// `go test -short`, keeping the fast CI path fast; the full figure
// suite still runs them.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-second figure regeneration skipped in -short mode")
	}
}

// runFigure executes a figure entry point with fast options and returns
// its output.
func runFigure(t *testing.T, name string, f func() error, buf *bytes.Buffer) string {
	t.Helper()
	if err := f(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", name)
	}
	return out
}

func TestFig1(t *testing.T) {
	var buf bytes.Buffer
	out := runFigure(t, "fig1", func() error { return Fig1(&buf, fastOpt) }, &buf)
	for _, want := range []string{"Fig 1 (gpu)", "Fig 1 (cpu)", "Fig 1c", "sidco-e", "dgc"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

func TestFig3RNNBenchmarks(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig3", func() error { return Fig3(&buf, fastOpt) }, &buf)
	for _, want := range []string{"lstm-ptb", "lstm-an4", "speed-up", "throughput", "estimation quality"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 missing %q", want)
		}
	}
}

func TestFig5And6CNNBenchmarks(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig5", func() error { return Fig5(&buf, fastOpt) }, &buf)
	if !strings.Contains(out, "resnet20-cifar10") || !strings.Contains(out, "vgg16-cifar10") {
		t.Error("Fig5 workloads missing")
	}
	buf.Reset()
	out = runFigure(t, "fig6", func() error { return Fig6(&buf, fastOpt) }, &buf)
	if !strings.Contains(out, "resnet50-imagenet") || !strings.Contains(out, "vgg19-imagenet") {
		t.Error("Fig6 workloads missing")
	}
}

func TestFig2And8Fitting(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{Iters: 40, Seed: 2}
	out := runFigure(t, "fig2", func() error { return Fig2(&buf, opt) }, &buf)
	for _, want := range []string{"double-exp", "double-gamma", "double-GP", "KS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 missing %q", want)
		}
	}
	buf.Reset()
	out = runFigure(t, "fig8", func() error { return Fig8(&buf, opt) }, &buf)
	if !strings.Contains(out, "with EC") {
		t.Error("Fig8 title missing")
	}
}

func TestFig4TrainingLoss(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig4", func() error { return Fig4(&buf, Options{Iters: 25, Seed: 3}) }, &buf)
	for _, want := range []string{"sidco-e", "gaussiank", "final loss", "loss vs iteration"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 missing %q", want)
		}
	}
}

func TestFig7Compressibility(t *testing.T) {
	var buf bytes.Buffer
	out := runFigure(t, "fig7", func() error { return Fig7(&buf, Options{Iters: 30, Seed: 4}) }, &buf)
	if !strings.Contains(out, "p (fit)") || !strings.Contains(out, "sigma_k") {
		t.Errorf("Fig7 output malformed:\n%s", out)
	}
}

func TestFig9Smoothed(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig9", func() error { return Fig9(&buf, fastOpt) }, &buf)
	if !strings.Contains(out, "smoothed achieved ratio") {
		t.Error("Fig9 title missing")
	}
}

func TestFig10LossVsTime(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig10", func() error { return Fig10(&buf, Options{Iters: 25, SimScale: 400, Seed: 5}) }, &buf)
	if !strings.Contains(out, "wall time") {
		t.Error("Fig10 title missing")
	}
}

func TestFig11Breakdown(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig11", func() error { return Fig11(&buf, fastOpt) }, &buf)
	for _, want := range []string{"compute", "compress", "comm", "VGG19"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig11 missing %q", want)
		}
	}
}

func TestFig12CPUDevice(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig12", func() error { return Fig12(&buf, fastOpt) }, &buf)
	if !strings.Contains(out, "CPU compression device") {
		t.Error("Fig12 title missing")
	}
}

func TestFig13NVLink(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	out := runFigure(t, "fig13", func() error { return Fig13(&buf, fastOpt) }, &buf)
	if !strings.Contains(out, "Fig 13") {
		t.Error("Fig13 title missing")
	}
}

func TestFig14Through17DeviceModels(t *testing.T) {
	var buf bytes.Buffer
	out := runFigure(t, "fig14/15", func() error { return Fig14And15(&buf, fastOpt) }, &buf)
	if !strings.Contains(out, "resnet50") || !strings.Contains(out, "lstm") {
		t.Error("Fig14/15 models missing")
	}
	buf.Reset()
	out = runFigure(t, "fig16/17", func() error { return Fig16And17(&buf, fastOpt) }, &buf)
	if !strings.Contains(out, "260M") {
		t.Error("Fig16/17 sizes missing")
	}
}

func TestFig18AllSIDs(t *testing.T) {
	var buf bytes.Buffer
	out := runFigure(t, "fig18", func() error {
		return TrainingFigure(&buf, TrainingFigureConfig{
			Title:     "Fig 18",
			Workloads: []string{"resnet20-cifar10"}, // one workload keeps the test fast
			Opt:       fastOpt,
		})
	}, &buf)
	if !strings.Contains(out, "sidco-p") || !strings.Contains(out, "sidco-gp") {
		t.Error("Fig18 variants missing")
	}
}

func TestTopologyStudy(t *testing.T) {
	var buf bytes.Buffer
	out := runFigure(t, "topology", func() error {
		return TopologyStudy(&buf, []string{"resnet20-cifar10"}, "topk", fastOpt)
	}, &buf)
	for _, want := range []string{"Topology study", "ring", "allgather", "ps", "speed-up"} {
		if !strings.Contains(out, want) {
			t.Errorf("TopologyStudy missing %q:\n%s", want, out)
		}
	}
	if err := TopologyStudy(&buf, []string{"bogus"}, "topk", fastOpt); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestGoWallClock(t *testing.T) {
	var buf bytes.Buffer
	if err := GoWallClock(&buf, 200000, 0.01, 1, 6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wall-clock") {
		t.Error("wall clock output missing")
	}
}

func TestAblations(t *testing.T) {
	skipIfShort(t)
	cases := []struct {
		name string
		f    func(buf *bytes.Buffer) error
	}{
		{"stages", func(b *bytes.Buffer) error { return AblationStages(b, fastOpt) }},
		{"delta1", func(b *bytes.Buffer) error { return AblationDelta1(b, fastOpt) }},
		{"adapt", func(b *bytes.Buffer) error { return AblationAdapt(b, fastOpt) }},
		{"sid", func(b *bytes.Buffer) error { return AblationSID(b, fastOpt) }},
		{"gamma-approx", func(b *bytes.Buffer) error { return AblationGammaApprox(b, fastOpt) }},
		{"ec", func(b *bytes.Buffer) error { return AblationEC(b, Options{Iters: 25, Seed: 7}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.f(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Ablation") {
				t.Error("ablation title missing")
			}
		})
	}
}
