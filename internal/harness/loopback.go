package harness

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/nn"
)

// LoopbackStudyConfig parameterises the TCP loopback study.
type LoopbackStudyConfig struct {
	// Workers is the cluster size N (default 4).
	Workers int
	// Iters is the number of training iterations compared (default 6).
	Iters int
	// Compressor is the registry compressor (default "sidco-e").
	Compressor string
	// Delta is the compression ratio (default 0.05).
	Delta float64
	// Chunks is the chunked-pipeline setting for the all-gather rounds
	// (default 1: monolithic).
	Chunks int
	// Seed fixes every random stream.
	Seed int64
}

func (c LoopbackStudyConfig) withDefaults() LoopbackStudyConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Iters <= 0 {
		c.Iters = 6
	}
	if c.Compressor == "" {
		c.Compressor = "sidco-e"
	}
	if c.Delta <= 0 || c.Delta > 1 {
		c.Delta = 0.05
	}
	return c
}

// LoopbackStudy runs the same compressed training workload four ways —
// the in-process reducer, the cluster engine over in-process channels,
// the cluster engine over loopback TCP sockets, and the multi-process
// topology (one Node, one single-worker trainer and one single-rank
// TCPTransport per worker, exactly cmd/sidco-node's shape minus process
// isolation) — and tabulates the per-iteration global losses. Over the
// lossless wire all four columns must agree bit-for-bit, and the
// engine-over-TCP traffic must match netsim's all-gather formula
// exactly; the study prints both checks per row.
func LoopbackStudy(w io.Writer, cfg LoopbackStudyConfig) error {
	cfg = cfg.withDefaults()

	ref, err := loopbackTrainer(cfg, cfg.Workers, 0, nil)
	if err != nil {
		return err
	}
	refLoss, _, err := ref.Run(cfg.Iters)
	if err != nil {
		return err
	}

	engineRun := func(tp cluster.Transport) ([]float64, int, error) {
		e, err := cluster.New(cluster.Config{
			Workers:    cfg.Workers,
			Collective: netsim.CollectiveAllGather,
			Chunks:     cfg.Chunks,
			Transport:  tp,
			Verify:     true,
		})
		if err != nil {
			return nil, 0, err
		}
		defer e.Close()
		tr, err := loopbackTrainer(cfg, cfg.Workers, 0, e)
		if err != nil {
			return nil, 0, err
		}
		losses, _, err := tr.Run(cfg.Iters)
		if err != nil {
			return nil, 0, err
		}
		msgs, _ := e.Transport().Totals()
		return losses, msgs, nil
	}

	chanLoss, _, err := engineRun(nil)
	if err != nil {
		return fmt.Errorf("harness: loopback study, channel engine: %w", err)
	}
	tcpAddrs := make([]string, cfg.Workers)
	for i := range tcpAddrs {
		tcpAddrs[i] = "127.0.0.1:0"
	}
	tcpTransport, err := cluster.NewTCPTransport(cluster.TCPConfig{Addrs: tcpAddrs})
	if err != nil {
		return err
	}
	tcpLoss, tcpMsgs, err := engineRun(tcpTransport)
	if err != nil {
		return fmt.Errorf("harness: loopback study, tcp engine: %w", err)
	}
	nodeLoss, err := loopbackNodes(cfg)
	if err != nil {
		return fmt.Errorf("harness: loopback study, per-rank nodes: %w", err)
	}

	wantMsgs := cfg.Iters * cfg.Workers * netsim.ChunkedAllGatherMessages(cfg.Workers, cfg.Chunks)
	tbl := NewTable(
		fmt.Sprintf("Loopback study — %s, N=%d, delta=%g, chunks=%d: global loss, in-process vs channels vs TCP sockets vs per-rank nodes",
			cfg.Compressor, cfg.Workers, cfg.Delta, max(cfg.Chunks, 1)),
		"iter", "in-process", "chan engine", "tcp engine", "tcp nodes", "max |diff|")
	for i := range refLoss {
		diff := math.Max(math.Abs(chanLoss[i]-refLoss[i]),
			math.Max(math.Abs(tcpLoss[i]-refLoss[i]), math.Abs(nodeLoss[i]-refLoss[i])))
		tbl.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.17g", refLoss[i]), fmt.Sprintf("%.17g", chanLoss[i]),
			fmt.Sprintf("%.17g", tcpLoss[i]), fmt.Sprintf("%.17g", nodeLoss[i]),
			fmt.Sprintf("%g", diff))
	}
	tbl.Render(w)
	fmt.Fprintf(w, "tcp engine traffic: %d messages, formula %d, exact=%v\n\n",
		tcpMsgs, wantMsgs, tcpMsgs == wantMsgs)
	return nil
}

// loopbackTrainer builds the study's demo trainer: the same model and
// batch stream for every mode, at any (workers, firstWorker) split.
func loopbackTrainer(cfg LoopbackStudyConfig, workers, firstWorker int, ex dist.GradientExchange) (*dist.Trainer, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	model := nn.NewSequential(
		nn.NewDense("d1", 16, 12, rng),
		&nn.ReLU{},
		nn.NewDense("d2", 12, 4, rng),
	)
	var factory func() compress.Compressor
	if cfg.Compressor != "none" {
		factory = Factory(cfg.Compressor, cfg.Seed)
	}
	return dist.NewTrainer(dist.TrainerConfig{
		Workers:     workers,
		FirstWorker: firstWorker,
		Model:       model,
		Loss:        &nn.SoftmaxCrossEntropy{},
		Opt:         &nn.SGD{LR: 0.05},
		Batch: func(worker int, rng *rand.Rand) (*nn.Tensor, []int) {
			x := nn.NewTensor(8, 16)
			targets := make([]int, 8)
			for i := range targets {
				targets[i] = rng.Intn(4)
				for j := 0; j < 16; j++ {
					x.Data[i*16+j] = rng.NormFloat64() + float64(targets[i])
				}
			}
			return x, targets
		},
		NewCompressor: factory,
		Delta:         cfg.Delta,
		EC:            factory != nil,
		Seed:          cfg.Seed,
		Exchange:      ex,
	})
}

// loopbackNodes runs the multi-process topology in-process: one
// TCPTransport, Node and Workers=1 trainer per rank, each goroutine
// owning only its rank, global losses reduced through Node.MeanScalar.
// It returns rank 0's global loss sequence after checking all ranks
// agree bitwise.
func loopbackNodes(cfg LoopbackStudyConfig) ([]float64, error) {
	addrs, err := cluster.FreeLoopbackAddrs(cfg.Workers)
	if err != nil {
		return nil, err
	}
	type rankOut struct {
		rank   int
		losses []float64
		err    error
	}
	results := make(chan rankOut, cfg.Workers)
	for rank := 0; rank < cfg.Workers; rank++ {
		go func(rank int) {
			out := rankOut{rank: rank}
			defer func() { results <- out }()
			tp, err := cluster.NewTCPTransport(cluster.TCPConfig{Addrs: addrs, Local: []int{rank}})
			if err != nil {
				out.err = err
				return
			}
			defer tp.Close()
			nd, err := cluster.NewNode(cluster.NodeConfig{
				Workers:    cfg.Workers,
				Rank:       rank,
				Collective: netsim.CollectiveAllGather,
				Chunks:     cfg.Chunks,
				Transport:  tp,
			})
			if err != nil {
				out.err = err
				return
			}
			tr, err := loopbackTrainer(cfg, 1, rank, nd)
			if err != nil {
				out.err = err
				return
			}
			for it := 0; it < cfg.Iters; it++ {
				local, err := tr.Step()
				if err != nil {
					out.err = err
					return
				}
				global, err := nd.MeanScalar(local)
				if err != nil {
					out.err = err
					return
				}
				out.losses = append(out.losses, global)
			}
		}(rank)
	}
	byRank := make([][]float64, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		out := <-results
		if out.err != nil {
			return nil, fmt.Errorf("rank %d: %w", out.rank, out.err)
		}
		byRank[out.rank] = out.losses
	}
	for rank := 1; rank < cfg.Workers; rank++ {
		for it := range byRank[0] {
			if byRank[rank][it] != byRank[0][it] {
				return nil, fmt.Errorf("rank %d loss[%d] = %v disagrees with rank 0's %v",
					rank, it, byRank[rank][it], byRank[0][it])
			}
		}
	}
	return byRank[0], nil
}
