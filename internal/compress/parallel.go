package compress

// Parallelizable is implemented by compressors whose internal passes
// (selection histograms, moment fits, threshold filters) can fan out
// across goroutines. The contract is strict determinism: a compressor
// must produce bit-identical output at every parallelism level, so the
// knob trades nothing but wall-clock. p <= 1 selects the serial paths.
type Parallelizable interface {
	SetParallelism(p int)
}

// SetParallelism applies p to c when it supports internal parallelism
// and reports whether it did. Wrappers (error feedback) forward to the
// compressor they wrap, so calling this on the outermost compressor
// configures the whole stack.
func SetParallelism(c Compressor, p int) bool {
	if pz, ok := c.(Parallelizable); ok {
		pz.SetParallelism(p)
		return true
	}
	return false
}
