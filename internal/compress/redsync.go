package compress

import (
	"repro/internal/stats"
	"repro/internal/tensor"
)

// RedSync implements the threshold search of RedSync (Fang et al., JPDC
// 2019): the threshold is parameterised as
//
//	eta = mean(|g|) + ratio * (max(|g|) - mean(|g|)),
//
// and ratio is moved by a bounded binary search until the selected count
// lands in the acceptance band [k, AcceptFactor*k] or the iteration budget
// runs out, in which case whatever the search landed on is used.
//
// The mean-to-max interpolation is a poor parameterisation for
// heavy-tailed gradients — a single outlier stretches the search range so
// that most ratios select (almost) nothing — which is exactly the
// under-estimation and high variance the paper reports (Figures 1c, 3c,
// 4b).
type RedSync struct {
	// MaxIters bounds the binary search (paper-style small budget;
	// default 10).
	MaxIters int
	// AcceptFactor widens the acceptance band to [k, AcceptFactor*k]
	// (default 2), trading estimation quality for fewer passes.
	AcceptFactor float64

	stat stats.Par
	par  tensor.Par
}

// NewRedSync creates a RedSync compressor with the default search budget.
func NewRedSync() *RedSync {
	return &RedSync{MaxIters: 10, AcceptFactor: 2}
}

// Name implements Compressor.
func (*RedSync) Name() string { return "redsync" }

// SetParallelism implements Parallelizable: the moment passes and the
// per-iteration count passes — up to MaxIters full scans of g, RedSync's
// whole cost — fan out over p goroutines with bit-identical thresholds.
func (r *RedSync) SetParallelism(p int) {
	r.stat.P = p
	r.par.P = p
}

// Compress implements Compressor.
func (r *RedSync) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(r, g, delta)
}

// CompressInto implements Compressor.
//
//sidco:hotpath
func (r *RedSync) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if err := validate(g, delta); err != nil {
		return err
	}
	d := len(g)
	k := TargetK(d, delta)

	mean := r.stat.MeanAbs(g)
	max := r.stat.MaxAbs(g)
	if max <= mean {
		// Degenerate (constant-magnitude) vector: everything ties.
		dst.Reset(d)
		dst.Idx, dst.Vals = r.par.FilterAbove(g, mean, dst.Idx, dst.Vals)
		return nil
	}

	lo, hi := 0.0, 1.0
	eta := mean + 0.5*(max-mean)
	for iter := 0; iter < r.MaxIters; iter++ {
		ratio := (lo + hi) / 2
		eta = mean + ratio*(max-mean)
		nnz := r.par.CountAbove(g, eta)
		if float64(nnz) >= float64(k) && float64(nnz) <= r.AcceptFactor*float64(k) {
			break
		}
		if nnz > k {
			lo = ratio // too many selected: raise the threshold
		} else {
			hi = ratio // too few: lower it
		}
	}
	dst.Reset(d)
	dst.Idx, dst.Vals = r.par.FilterAbove(g, eta, dst.Idx, dst.Vals)
	return nil
}
