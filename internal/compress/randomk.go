package compress

import (
	"math/rand"
	"slices"

	"repro/internal/tensor"
)

// RandomK keeps k = delta*d uniformly random elements, scaled by 1/delta
// so the compressed gradient is an unbiased estimate of the original
// (Wangni et al.). It converges noticeably worse than magnitude-based
// selection (Lin et al.) and serves as the weak baseline.
type RandomK struct {
	rng *rand.Rand
	// Unbiased controls the 1/delta scaling; the paper's comparisons use
	// the unscaled variant, so the default is false.
	Unbiased bool

	// Per-instance sampling scratch: the chosen-index list, the rejection
	// set and the partial Fisher–Yates permutation.
	chosen []int
	seen   map[int]struct{}
	perm   []int
}

// NewRandomK creates a Random-k compressor with its own deterministic
// random stream.
func NewRandomK(seed int64, unbiased bool) *RandomK {
	return &RandomK{rng: rand.New(rand.NewSource(seed)), Unbiased: unbiased}
}

// Name implements Compressor.
func (*RandomK) Name() string { return "randomk" }

// Compress implements Compressor.
func (r *RandomK) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(r, g, delta)
}

// CompressInto implements Compressor.
//
//sidco:hotpath
func (r *RandomK) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if err := validate(g, delta); err != nil {
		return err
	}
	d := len(g)
	k := TargetK(d, delta)
	chosen := r.sampleIndices(d, k)
	slices.Sort(chosen)
	scale := 1.0
	if r.Unbiased {
		scale = float64(d) / float64(k)
	}
	dst.Reset(d)
	dst.Grow(k)
	for _, j := range chosen {
		dst.Append(int32(j), g[j]*scale)
	}
	return nil
}

// sampleIndices draws k distinct indices from [0, d) into reused scratch.
// For small k it uses rejection via a set; for large k a partial
// Fisher–Yates. The random stream it consumes is unchanged from the
// allocating version, so seeded runs stay reproducible across versions.
func (r *RandomK) sampleIndices(d, k int) []int {
	if k >= d {
		out := r.scratchChosen(d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k*8 < d {
		if r.seen == nil {
			r.seen = make(map[int]struct{}, k)
		}
		clear(r.seen)
		out := r.scratchChosen(k)[:0]
		for len(out) < k {
			j := r.rng.Intn(d)
			if _, dup := r.seen[j]; dup {
				continue
			}
			r.seen[j] = struct{}{}
			out = append(out, j)
		}
		return out
	}
	if cap(r.perm) < d {
		r.perm = make([]int, d)
	}
	perm := r.perm[:d]
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.rng.Intn(d-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

func (r *RandomK) scratchChosen(n int) []int {
	if cap(r.chosen) < n {
		r.chosen = make([]int, n)
	}
	return r.chosen[:n]
}
