package compress

import (
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// RandomK keeps k = delta*d uniformly random elements, scaled by 1/delta
// so the compressed gradient is an unbiased estimate of the original
// (Wangni et al.). It converges noticeably worse than magnitude-based
// selection (Lin et al.) and serves as the weak baseline.
type RandomK struct {
	rng *rand.Rand
	// Unbiased controls the 1/delta scaling; the paper's comparisons use
	// the unscaled variant, so the default is false.
	Unbiased bool
}

// NewRandomK creates a Random-k compressor with its own deterministic
// random stream.
func NewRandomK(seed int64, unbiased bool) *RandomK {
	return &RandomK{rng: rand.New(rand.NewSource(seed)), Unbiased: unbiased}
}

// Name implements Compressor.
func (*RandomK) Name() string { return "randomk" }

// Compress implements Compressor.
func (r *RandomK) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	if err := validate(g, delta); err != nil {
		return nil, err
	}
	d := len(g)
	k := TargetK(d, delta)
	chosen := sampleIndices(r.rng, d, k)
	sort.Slice(chosen, func(a, b int) bool { return chosen[a] < chosen[b] })
	idx := make([]int32, k)
	vals := make([]float64, k)
	scale := 1.0
	if r.Unbiased {
		scale = float64(d) / float64(k)
	}
	for i, j := range chosen {
		idx[i] = int32(j)
		vals[i] = g[j] * scale
	}
	return tensor.NewSparse(d, idx, vals)
}

// sampleIndices draws k distinct indices from [0, d). For small k it uses
// rejection via a set; for large k a partial Fisher–Yates.
func sampleIndices(rng *rand.Rand, d, k int) []int {
	if k >= d {
		out := make([]int, d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k*8 < d {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			j := rng.Intn(d)
			if _, dup := seen[j]; dup {
				continue
			}
			seen[j] = struct{}{}
			out = append(out, j)
		}
		return out
	}
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(d-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}
