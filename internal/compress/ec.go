package compress

import (
	"fmt"

	"repro/internal/tensor"
)

// ErrorFeedback wraps any Compressor with the error-compensation (EC)
// mechanism (Karimireddy et al., ICML 2019): the sparsification residual
// of iteration i-1 is added to the gradient of iteration i before
// compression, so no gradient mass is permanently lost. This is the
// memory-based compression mode of Appendix B.2.
type ErrorFeedback struct {
	// Inner is the wrapped sparsifier.
	Inner Compressor

	residual []float64
	buf      []float64
}

// NewErrorFeedback wraps inner with a fresh (zero) residual.
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{Inner: inner}
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.Inner.Name() + "+ec" }

// Compress implements Compressor. It compresses g + residual and folds the
// uncompressed remainder back into the residual. The input g is not
// modified.
func (e *ErrorFeedback) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	d := len(g)
	if e.residual == nil {
		e.residual = make([]float64, d)
		e.buf = make([]float64, d)
	}
	if len(e.residual) != d {
		return nil, fmt.Errorf("compress: EC residual dimension changed from %d to %d", len(e.residual), d)
	}

	corrected := e.buf
	copy(corrected, g)
	tensor.Add(e.residual, corrected)

	s, err := e.Inner.Compress(corrected, delta)
	if err != nil {
		return nil, err
	}

	// residual = corrected - scatter(s)
	copy(e.residual, corrected)
	for i, j := range s.Idx {
		e.residual[j] -= s.Vals[i]
	}
	return s, nil
}

// Residual exposes the current residual for tests and fitting studies
// (Figure 8 fits gradients after EC accumulation). Callers must not
// modify it.
func (e *ErrorFeedback) Residual() []float64 { return e.residual }

// Reset clears the residual, e.g. between independent training runs.
func (e *ErrorFeedback) Reset() {
	if e.residual != nil {
		tensor.Zero(e.residual)
	}
}
