package compress

import (
	"fmt"

	"repro/internal/tensor"
)

// ErrorFeedback wraps any Compressor with the error-compensation (EC)
// mechanism (Karimireddy et al., ICML 2019): the sparsification residual
// of iteration i-1 is added to the gradient of iteration i before
// compression, so no gradient mass is permanently lost. This is the
// memory-based compression mode of Appendix B.2.
type ErrorFeedback struct {
	// Inner is the wrapped sparsifier.
	Inner Compressor

	residual []float64
	buf      []float64
}

// NewErrorFeedback wraps inner with a fresh (zero) residual.
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{Inner: inner}
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.Inner.Name() + "+ec" }

// Compress implements Compressor. It compresses g + residual and folds the
// uncompressed remainder back into the residual. The input g is not
// modified.
func (e *ErrorFeedback) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(e, g, delta)
}

// CompressInto implements Compressor, delegating the selection to the
// wrapped compressor's fast path. The residual bookkeeping itself is
// allocation-free after the first call.
func (e *ErrorFeedback) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	d := len(g)
	if e.residual == nil {
		e.residual = make([]float64, d)
		e.buf = make([]float64, d)
	}
	if len(e.residual) != d {
		return fmt.Errorf("compress: EC residual dimension changed from %d to %d", len(e.residual), d)
	}

	corrected := e.buf
	copy(corrected, g)
	tensor.Add(e.residual, corrected)

	if err := e.Inner.CompressInto(dst, corrected, delta); err != nil {
		return err
	}

	// residual = corrected - scatter(selection)
	copy(e.residual, corrected)
	for i, j := range dst.Idx {
		e.residual[j] -= dst.Vals[i]
	}
	return nil
}

// Residual exposes the current residual for tests and fitting studies
// (Figure 8 fits gradients after EC accumulation). Callers must not
// modify it.
func (e *ErrorFeedback) Residual() []float64 { return e.residual }

// Reset clears the residual, e.g. between independent training runs.
func (e *ErrorFeedback) Reset() {
	if e.residual != nil {
		tensor.Zero(e.residual)
	}
}
