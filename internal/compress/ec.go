package compress

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/par"
	"repro/internal/tensor"
)

// ErrorFeedback wraps any Compressor with the error-compensation (EC)
// mechanism (Karimireddy et al., ICML 2019): the sparsification residual
// of iteration i-1 is added to the gradient of iteration i before
// compression, so no gradient mass is permanently lost. This is the
// memory-based compression mode of Appendix B.2.
//
// With SetWireFormat the same mechanism additionally absorbs the wire
// quantization residual: the selected values are rounded to exactly what
// a receiver of the given encoding format will decode, and the
// difference joins the residual. The transmitted gradient then matches
// what every rank applies, bit for bit, while the precision lost to the
// narrow format is corrected over subsequent steps instead of discarded.
type ErrorFeedback struct {
	// Inner is the wrapped sparsifier.
	Inner Compressor

	residual []float64
	buf      []float64
	wire     encoding.Format
	wireSet  bool
	parP     int
}

// NewErrorFeedback wraps inner with a fresh (zero) residual.
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{Inner: inner}
}

// SetWireFormat makes the wrapper pre-round selected values to format
// f's decoded precision before computing the residual. For the
// per-value formats (float32, binary16, bfloat16, lossless float64)
// the rounding is wire-exact regardless of how the selection is later
// chunked; FormatPairsI8 derives its scale from the whole value stream,
// so it is wire-exact only when the selection is encoded monolithically
// (cluster chunks <= 1).
func (e *ErrorFeedback) SetWireFormat(f encoding.Format) {
	e.wire = f
	e.wireSet = true
}

// ClearWireFormat restores plain sparsification-only error feedback.
func (e *ErrorFeedback) ClearWireFormat() { e.wireSet = false }

// SetParallelism implements Parallelizable: the dense
// residual-accumulate and residual-rebuild passes fan out over p
// goroutines (elementwise on disjoint ranges, so trivially
// bit-identical), and the knob forwards to the wrapped compressor.
func (e *ErrorFeedback) SetParallelism(p int) {
	e.parP = p
	SetParallelism(e.Inner, p)
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.Inner.Name() + "+ec" }

// Compress implements Compressor. It compresses g + residual and folds the
// uncompressed remainder back into the residual. The input g is not
// modified.
func (e *ErrorFeedback) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(e, g, delta)
}

// CompressInto implements Compressor, delegating the selection to the
// wrapped compressor's fast path. The residual bookkeeping itself is
// allocation-free after the first call.
//
//sidco:hotpath
func (e *ErrorFeedback) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	d := len(g)
	if e.residual == nil {
		e.residual = make([]float64, d) //sidco:alloc first-call lazy init of the persistent residual
		e.buf = make([]float64, d)      //sidco:alloc first-call lazy init of the persistent scratch
	}
	if len(e.residual) != d {
		return fmt.Errorf("compress: EC residual dimension changed from %d to %d", len(e.residual), d) //sidco:alloc misuse error path, not steady state
	}

	corrected := e.buf
	p := e.parP
	if p < 1 || d < 1<<14 {
		p = 1
	}
	// The serial path is written out rather than run as par.Do(1, ...):
	// the range-bounded closures capture locals and would allocate,
	// breaking the zero-alloc steady-state contract at P=1.
	if p == 1 {
		copy(corrected, g)
		tensor.Add(e.residual, corrected)
	} else {
		par.Do(p, func(w int) { //sidco:alloc P>1 fan-out only; the zero-alloc P=1 path is written out above
			lo, hi := par.RangeBounds(d, p, w)
			copy(corrected[lo:hi], g[lo:hi])
			tensor.Add(e.residual[lo:hi], corrected[lo:hi])
		})
	}

	if err := e.Inner.CompressInto(dst, corrected, delta); err != nil {
		return err
	}

	// Round the selection to the wire's decoded precision first, so the
	// residual below absorbs the quantization error too.
	if e.wireSet {
		if err := encoding.RoundTripValues(e.wire, dst.Vals); err != nil {
			return err
		}
	}

	// residual = corrected - scatter(selection)
	if p == 1 {
		copy(e.residual, corrected)
	} else {
		par.Do(p, func(w int) { //sidco:alloc P>1 fan-out only; the zero-alloc P=1 path is written out above
			lo, hi := par.RangeBounds(d, p, w)
			copy(e.residual[lo:hi], corrected[lo:hi])
		})
	}
	for i, j := range dst.Idx {
		e.residual[j] -= dst.Vals[i]
	}
	return nil
}

// Residual exposes the current residual for tests and fitting studies
// (Figure 8 fits gradients after EC accumulation). Callers must not
// modify it.
func (e *ErrorFeedback) Residual() []float64 { return e.residual }

// RestoreResidual overwrites the carried residual with a checkpointed
// copy — the resume hook of dist's checkpointing. Nil or empty resets
// to the lazily-initialised zero state.
func (e *ErrorFeedback) RestoreResidual(r []float64) {
	if len(r) == 0 {
		e.residual = nil
		e.buf = nil
		return
	}
	e.residual = append(e.residual[:0], r...)
	if len(e.buf) != len(r) {
		e.buf = make([]float64, len(r))
	}
}

// Reset clears the residual, e.g. between independent training runs.
func (e *ErrorFeedback) Reset() {
	if e.residual != nil {
		tensor.Zero(e.residual)
	}
}
