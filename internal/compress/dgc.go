package compress

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// DGC implements the Deep Gradient Compression sparsifier (Lin et al.,
// ICLR 2018): sample a random sub-population of the gradient (1% by
// default), run Top-k on the sample to obtain a threshold, select all
// elements above it, and — if the selection overshoots the target — run a
// second, hierarchical Top-k on the exceedances to trim to exactly k.
//
// DGC estimates the threshold well (the sample quantile is consistent)
// but pays for the random gather: fast on GPU-like devices, punishing on
// CPUs (Figure 1b).
type DGC struct {
	rng *rand.Rand
	// SampleRatio is the fraction of elements sampled for threshold
	// estimation (paper default 0.01).
	SampleRatio float64
	// MinSample floors the sample size so tiny layers still estimate a
	// usable threshold.
	MinSample int

	// Per-instance scratch of the streaming fast path.
	sample  []float64
	sel     tensor.Selector
	fit     tensor.Sparse // exceedance gather before the hierarchical trim
	trimmed tensor.Sparse // Top-k over the exceedance values
	par     tensor.Par
}

// SetParallelism implements Parallelizable: the full-vector exceedance
// gather and the hierarchical trim fan out over p goroutines. The
// random sample stays sequential — it consumes the deterministic RNG
// stream in order, which is part of DGC's reproducibility contract.
func (c *DGC) SetParallelism(p int) {
	c.par.P = p
	c.sel.SetParallelism(p)
}

// NewDGC creates a DGC compressor with the paper's defaults (1% sample,
// 256-element floor) and a deterministic random stream.
func NewDGC(seed int64) *DGC {
	return &DGC{rng: rand.New(rand.NewSource(seed)), SampleRatio: 0.01, MinSample: 256}
}

// Name implements Compressor.
func (*DGC) Name() string { return "dgc" }

// Compress implements Compressor.
func (c *DGC) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(c, g, delta)
}

// CompressInto implements Compressor.
//
//sidco:hotpath
func (c *DGC) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if err := validate(g, delta); err != nil {
		return err
	}
	d := len(g)
	k := TargetK(d, delta)

	// Stage 1: random sub-sample of magnitudes.
	s := int(math.Ceil(c.SampleRatio * float64(d)))
	if s < c.MinSample {
		s = c.MinSample
	}
	if s > d {
		s = d
	}
	if cap(c.sample) < s {
		c.sample = make([]float64, s) //sidco:alloc sample scratch grows to its high-water mark, then steady state reuses it
	}
	sample := c.sample[:s]
	for i := range sample {
		sample[i] = math.Abs(g[c.rng.Intn(d)])
	}

	// Top-k on the sample yields the threshold estimate.
	ks := TargetK(s, delta)
	eta := tensor.QuickSelectKth(sample, ks)

	// Stage 2: gather exceedances from the full vector.
	fit := &c.fit
	fit.Reset(d)
	fit.Idx, fit.Vals = c.par.FilterAbove(g, eta, fit.Idx, fit.Vals)

	// Hierarchical trim: if the threshold under-shot and selected more
	// than the target, a second exact Top-k over the (much smaller)
	// exceedance set restores |selection| == k. The inner selection runs
	// over the exceedance values, so its indices are positions in fit
	// that map back to gradient indices.
	dst.Reset(d)
	if fit.NNZ() > k {
		c.trimmed.Reset(fit.NNZ())
		c.sel.TopKInto(&c.trimmed, fit.Vals, k)
		dst.Grow(k)
		for i, j := range c.trimmed.Idx {
			dst.Append(fit.Idx[j], c.trimmed.Vals[i])
		}
	} else {
		dst.CopyFrom(fit)
	}
	return nil
}
