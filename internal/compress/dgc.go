package compress

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// DGC implements the Deep Gradient Compression sparsifier (Lin et al.,
// ICLR 2018): sample a random sub-population of the gradient (1% by
// default), run Top-k on the sample to obtain a threshold, select all
// elements above it, and — if the selection overshoots the target — run a
// second, hierarchical Top-k on the exceedances to trim to exactly k.
//
// DGC estimates the threshold well (the sample quantile is consistent)
// but pays for the random gather: fast on GPU-like devices, punishing on
// CPUs (Figure 1b).
type DGC struct {
	rng *rand.Rand
	// SampleRatio is the fraction of elements sampled for threshold
	// estimation (paper default 0.01).
	SampleRatio float64
	// MinSample floors the sample size so tiny layers still estimate a
	// usable threshold.
	MinSample int
}

// NewDGC creates a DGC compressor with the paper's defaults (1% sample,
// 256-element floor) and a deterministic random stream.
func NewDGC(seed int64) *DGC {
	return &DGC{rng: rand.New(rand.NewSource(seed)), SampleRatio: 0.01, MinSample: 256}
}

// Name implements Compressor.
func (*DGC) Name() string { return "dgc" }

// Compress implements Compressor.
func (c *DGC) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	if err := validate(g, delta); err != nil {
		return nil, err
	}
	d := len(g)
	k := TargetK(d, delta)

	// Stage 1: random sub-sample of magnitudes.
	s := int(math.Ceil(c.SampleRatio * float64(d)))
	if s < c.MinSample {
		s = c.MinSample
	}
	if s > d {
		s = d
	}
	sample := make([]float64, s)
	for i := range sample {
		sample[i] = math.Abs(g[c.rng.Intn(d)])
	}

	// Top-k on the sample yields the threshold estimate.
	ks := TargetK(s, delta)
	eta := tensor.QuickSelectKth(sample, ks)

	// Stage 2: gather exceedances from the full vector.
	idx, vals := tensor.FilterAboveThreshold(g, eta, nil, nil)

	// Hierarchical trim: if the threshold under-shot and selected more
	// than the target, a second exact Top-k over the (much smaller)
	// exceedance set restores |selection| == k.
	if len(idx) > k {
		subIdx, subVals := tensor.TopKSelect(vals, k)
		trimmedIdx := make([]int32, k)
		for i, j := range subIdx {
			trimmedIdx[i] = idx[j]
		}
		idx, vals = trimmedIdx, subVals
	}
	return tensor.NewSparse(d, idx, vals)
}
