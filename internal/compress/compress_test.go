package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func laplaceVec(d int, scale float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, d)
	for i := range g {
		mag := rng.ExpFloat64() * scale
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		g[i] = mag
	}
	return g
}

func TestTargetK(t *testing.T) {
	cases := []struct {
		d     int
		delta float64
		want  int
	}{
		{1000, 0.1, 100},
		{1000, 0.001, 1},
		{1000, 1e-9, 1},   // floors at 1
		{1000, 1, 1000},   // full
		{3, 0.5, 2},       // rounds
		{0, 0.5, 0},       // empty
		{10, 0.99999, 10}, // caps at d
	}
	for _, c := range cases {
		if got := TargetK(c.d, c.delta); got != c.want {
			t.Errorf("TargetK(%d, %v) = %d, want %d", c.d, c.delta, got, c.want)
		}
	}
}

func TestValidation(t *testing.T) {
	comps := []Compressor{NewTopK(), NewDGC(1), NewRedSync(), NewGaussianKSGD(), NewRandomK(1, false)}
	for _, c := range comps {
		if _, err := c.Compress(nil, 0.1); err == nil {
			t.Errorf("%s: empty gradient should error", c.Name())
		}
		for _, bad := range []float64{0, -0.1, 1.5, math.NaN()} {
			if _, err := c.Compress([]float64{1, 2}, bad); err == nil {
				t.Errorf("%s: ratio %v should error", c.Name(), bad)
			}
		}
	}
}

func TestNoneKeepsEverything(t *testing.T) {
	g := []float64{1, -2, 0, 3}
	s, err := None{}.Compress(g, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != len(g) {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	dense := s.Dense()
	for i := range g {
		if dense[i] != g[i] {
			t.Fatalf("Dense = %v", dense)
		}
	}
	if _, err := (None{}).Compress(nil, 0.1); err == nil {
		t.Error("empty should error")
	}
}

func TestTopKExactCount(t *testing.T) {
	g := laplaceVec(10000, 0.01, 1)
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		s, err := NewTopK().Compress(g, delta)
		if err != nil {
			t.Fatal(err)
		}
		want := TargetK(len(g), delta)
		if s.NNZ() != want {
			t.Errorf("delta=%v: NNZ = %d, want %d", delta, s.NNZ(), want)
		}
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	g := []float64{0.1, -5, 0.2, 4, -0.3}
	s, err := NewTopK().Compress(g, 0.4) // k = 2
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 || s.Idx[0] != 1 || s.Idx[1] != 3 {
		t.Fatalf("kept %v %v", s.Idx, s.Vals)
	}
}

func TestTopKDoesNotModifyInput(t *testing.T) {
	g := laplaceVec(1000, 1, 2)
	orig := tensor.Clone(g)
	if _, err := NewTopK().Compress(g, 0.01); err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if g[i] != orig[i] {
			t.Fatal("TopK modified its input")
		}
	}
}

func TestThresholdCompressor(t *testing.T) {
	g := []float64{0.5, -1.5, 0.2}
	s, err := Threshold{Eta: 0.5}.Compress(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
}

func TestRandomKCountAndScaling(t *testing.T) {
	g := laplaceVec(5000, 1, 3)
	c := NewRandomK(7, false)
	s, err := c.Compress(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 50 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	for i, j := range s.Idx {
		if s.Vals[i] != g[j] {
			t.Fatal("biased variant must keep raw values")
		}
	}

	u := NewRandomK(7, true)
	su, err := u.Compress(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	scale := float64(len(g)) / 50
	for i, j := range su.Idx {
		if math.Abs(su.Vals[i]-g[j]*scale) > 1e-12 {
			t.Fatal("unbiased variant must scale by d/k")
		}
	}
}

func TestRandomKUnbiasedInExpectation(t *testing.T) {
	// The mean of many unbiased Random-k compressions approximates g.
	g := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	c := NewRandomK(11, true)
	acc := make([]float64, len(g))
	const trials = 20000
	for i := 0; i < trials; i++ {
		s, err := c.Compress(g, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		s.AddTo(acc)
	}
	for i := range acc {
		got := acc[i] / trials
		if math.Abs(got-g[i]) > 0.15*g[i] {
			t.Errorf("coordinate %d: mean %v, want %v", i, got, g[i])
		}
	}
}

func TestDGCTracksTarget(t *testing.T) {
	// The sample-quantile threshold is noisy per call (its error scales
	// with 1/(delta * sample size)), so judge the mean achieved ratio over
	// repeated draws, as the paper's estimation-quality metric does.
	c := NewDGC(5)
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		const d, reps = 200000, 20
		k := TargetK(d, delta)
		sum := 0.0
		for r := 0; r < reps; r++ {
			g := laplaceVec(d, 0.01, int64(40+r))
			s, err := c.Compress(g, delta)
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(s.NNZ()) / float64(k)
			if ratio > 1.0001 {
				t.Errorf("delta=%v: DGC over target after trim: %v", delta, ratio)
			}
			sum += ratio
		}
		avg := sum / reps
		// Trimming caps over-shoots at 1, so the mean sits below 1; it
		// must still be the right order of magnitude (cf. Figure 1c).
		if avg < 0.45 || avg > 1.0001 {
			t.Errorf("delta=%v: DGC mean ratio = %v", delta, avg)
		}
	}
}

func TestDGCTrimsToExactlyKWhenOverselecting(t *testing.T) {
	// Force an under-shooting threshold by sampling everything: then the
	// sample quantile is exact and the trim keeps exactly k.
	g := laplaceVec(10000, 1, 6)
	c := NewDGC(7)
	c.SampleRatio = 1.0
	s, err := c.Compress(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.NNZ(), TargetK(len(g), 0.01); got > want {
		t.Errorf("NNZ = %d > k = %d", got, want)
	}
}

func TestDGCKeepsLargeElements(t *testing.T) {
	// The trimmed selection must still contain the single dominant
	// element.
	g := laplaceVec(50000, 0.001, 8)
	g[12345] = 100
	s, err := NewDGC(9).Compress(g, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range s.Idx {
		if j == 12345 {
			found = true
		}
	}
	if !found {
		t.Error("DGC dropped the dominant element")
	}
}

func TestRedSyncReasonableOnCleanData(t *testing.T) {
	// On clean light-tailed data with a generous iteration budget RedSync
	// lands in its acceptance band.
	g := laplaceVec(100000, 0.01, 10)
	c := NewRedSync()
	c.MaxIters = 30
	s, err := c.Compress(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	k := TargetK(len(g), 0.01)
	ratio := float64(s.NNZ()) / float64(k)
	if ratio < 0.5 || ratio > 3 {
		t.Errorf("RedSync ratio = %v", ratio)
	}
}

func TestRedSyncDegradesWithOutliers(t *testing.T) {
	// A single huge outlier stretches the mean-max range and degrades the
	// bounded search — the failure mode in the paper's Figures 1c/3c.
	g := laplaceVec(100000, 0.01, 11)
	g[0] = 1000 // outlier
	c := NewRedSync()
	s, err := c.Compress(g, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	k := TargetK(len(g), 0.001)
	cleanErr := estimationError(t, NewRedSync(), laplaceVec(100000, 0.01, 12), 0.001)
	dirtyRatio := float64(s.NNZ()) / float64(k)
	// The outlier run should be materially worse than the clean run.
	if math.Abs(math.Log(dirtyRatio)) < math.Abs(math.Log(cleanErr))-1e-9 {
		t.Logf("clean ratio error %v, dirty %v", cleanErr, dirtyRatio)
	}
	if dirtyRatio > 0.9 && dirtyRatio < 1.1 {
		t.Errorf("expected degraded estimate with outlier, got ratio %v", dirtyRatio)
	}
}

func estimationError(t *testing.T, c Compressor, g []float64, delta float64) float64 {
	t.Helper()
	s, err := c.Compress(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	return float64(s.NNZ()) / float64(TargetK(len(g), delta))
}

func TestRedSyncDegenerateConstantVector(t *testing.T) {
	g := []float64{0.5, -0.5, 0.5, -0.5}
	s, err := NewRedSync().Compress(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != len(g) {
		t.Errorf("constant vector: NNZ = %d", s.NNZ())
	}
}

func TestGaussianKSGDUnderSelectsOnHeavyTails(t *testing.T) {
	// Run GaussianKSGD over a stream of Laplace gradients at an aggressive
	// ratio: the asymmetric adjustment should drive the achieved ratio
	// well below the target, as in Figure 4b/4d.
	c := NewGaussianKSGD()
	const d, delta = 50000, 0.001
	k := TargetK(d, delta)
	sum := 0.0
	const iters = 100
	for i := 0; i < iters; i++ {
		g := laplaceVec(d, 0.01, int64(100+i))
		s, err := c.Compress(g, delta)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(s.NNZ()) / float64(k)
	}
	avg := sum / iters
	if avg > 0.8 {
		t.Errorf("GaussianKSGD average ratio %v; expected substantial under-selection", avg)
	}
}

func TestGaussianKSGDFactorClamped(t *testing.T) {
	c := NewGaussianKSGD()
	g := laplaceVec(1000, 1, 13)
	for i := 0; i < 500; i++ {
		if _, err := c.Compress(g, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	if f := c.Factor(); f < 1e-2 || f > 1e2 {
		t.Errorf("factor escaped clamp: %v", f)
	}
}

func TestAllCompressorsProduceValidSparse(t *testing.T) {
	comps := []Compressor{NewTopK(), NewDGC(21), NewRedSync(), NewGaussianKSGD(), NewRandomK(22, false), None{}}
	f := func(seedRaw int64, deltaRaw float64) bool {
		delta := 0.001 + math.Mod(math.Abs(deltaRaw), 0.999)
		g := laplaceVec(2000, 0.1, seedRaw)
		for _, c := range comps {
			s, err := c.Compress(g, delta)
			if err != nil {
				return false
			}
			// NewSparse already validates ascending unique indices; check
			// the values match the source where not scaled.
			if s.NNZ() == 0 && c.Name() != "gaussiank" && c.Name() != "redsync" {
				return false
			}
			if s.Dim != len(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTargetKChunks is the table-driven guard on the chunk-budget
// helper, with the rounding-to-zero edge front and center: tiny chunks
// must be allowed a 0 budget, and the budgets must always sum to the
// global TargetK — never to the inflated sum a per-chunk TargetK (with
// its k >= 1 floor) would produce.
func TestTargetKChunks(t *testing.T) {
	cases := []struct {
		name   string
		d      int
		delta  float64
		chunks int
		want   []int
	}{
		{"even split", 100, 0.1, 2, []int{5, 5}},
		{"single chunk", 100, 0.1, 1, []int{10}},
		// Global k = 1 and eight chunks: seven chunks legitimately get 0
		// (a per-chunk TargetK would hand out eight 1s); the single unit
		// goes to the largest remainder, i.e. the first 2-element range.
		{"k rounds to zero on tiny chunks", 10, 0.1, 8,
			[]int{0, 0, 0, 1, 0, 0, 0, 0}},
		{"more chunks than elements", 3, 0.5, 6, // chunks 0,2,4 are empty ranges
			[]int{0, 1, 0, 1, 0, 0}},
		// d=3, C=8: five of the eight ranges are empty (c*d/C collides);
		// they must get 0 without panicking or inflating the total, and
		// the k=2 budget lands on the two lowest-index tied remainders.
		{"d3 c8 collision-heavy split", 3, 0.5, 8,
			[]int{0, 0, 1, 0, 0, 1, 0, 0}},
		{"uneven ranges get proportional budgets", 10, 0.5, 3, // ranges 3,3,4
			[]int{2, 1, 2}},
		{"full keep", 7, 1, 3, []int{2, 2, 3}},
		{"zero dim", 0, 0.5, 4, []int{0, 0, 0, 0}},
		{"chunks clamped to one", 12, 0.25, 0, []int{3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := TargetKChunks(tc.d, tc.delta, tc.chunks)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			sum := 0
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
				sum += got[i]
			}
			if tc.d > 0 {
				if k := TargetK(tc.d, tc.delta); sum != k {
					t.Errorf("budgets sum to %d, want global k = %d", sum, k)
				}
			}
			// Each budget must fit its chunk range.
			for c, kc := range got {
				lo, hi := c*tc.d/len(got), (c+1)*tc.d/len(got)
				if kc > hi-lo {
					t.Errorf("chunk %d budget %d exceeds range size %d", c, kc, hi-lo)
				}
			}
		})
	}
}

// legacyOnly is a Compress-only implementation for exercising Adapt.
type legacyOnly struct{}

func (legacyOnly) Name() string { return "legacy" }
func (legacyOnly) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return NewTopK().Compress(g, delta)
}

// TestAdaptLiftsLegacyCompressor checks the adapter both ways: a
// Compress-only implementation gains a working CompressInto, and a full
// Compressor passes through unwrapped.
func TestAdaptLiftsLegacyCompressor(t *testing.T) {
	g := []float64{3, -1, 0.5, -4, 2, 0.1, -0.2, 5}
	adapted := Adapt(legacyOnly{})
	if adapted.Name() != "legacy" {
		t.Errorf("name = %q", adapted.Name())
	}
	want, err := adapted.Compress(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dst := &tensor.Sparse{Dim: 3, Idx: []int32{0}, Vals: []float64{9}} // dirty
	if err := adapted.CompressInto(dst, g, 0.5); err != nil {
		t.Fatal(err)
	}
	if dst.Dim != want.Dim || dst.NNZ() != want.NNZ() {
		t.Fatalf("adapted CompressInto shape (%d,%d), want (%d,%d)", dst.Dim, dst.NNZ(), want.Dim, want.NNZ())
	}
	for i := range want.Idx {
		if dst.Idx[i] != want.Idx[i] || dst.Vals[i] != want.Vals[i] {
			t.Fatalf("element %d differs", i)
		}
	}
	full := NewTopK()
	if Adapt(full) != Compressor(full) {
		t.Error("Adapt should pass a full Compressor through unchanged")
	}
}

// TestCompressIntoMatchesCompress cross-checks the two interface entry
// points elementwise for every compressor in this package: same
// selection, same values, regardless of dirty destination state.
// Stateful and randomized compressors get twin instances so both paths
// see identical internal state and random streams.
func TestCompressIntoMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := make([]float64, 4096)
	for i := range g {
		g[i] = rng.NormFloat64() * rng.ExpFloat64()
	}
	pairs := []struct {
		name string
		a, b Compressor
	}{
		{"none", None{}, None{}},
		{"topk", NewTopK(), NewTopK()},
		{"threshold", Threshold{Eta: 0.8}, Threshold{Eta: 0.8}},
		{"dgc", NewDGC(5), NewDGC(5)},
		{"redsync", NewRedSync(), NewRedSync()},
		{"gaussiank", NewGaussianKSGD(), NewGaussianKSGD()},
		{"randomk", NewRandomK(5, true), NewRandomK(5, true)},
		{"ec-topk", NewErrorFeedback(NewTopK()), NewErrorFeedback(NewTopK())},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			dst := &tensor.Sparse{Dim: 1, Idx: []int32{0}, Vals: []float64{123}}
			for iter := 0; iter < 3; iter++ { // stateful paths must track across calls
				want, err := p.a.Compress(g, 0.01)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.b.CompressInto(dst, g, 0.01); err != nil {
					t.Fatal(err)
				}
				if dst.Dim != want.Dim || dst.NNZ() != want.NNZ() {
					t.Fatalf("iter %d: shape (%d,%d), want (%d,%d)", iter, dst.Dim, dst.NNZ(), want.Dim, want.NNZ())
				}
				for i := range want.Idx {
					if dst.Idx[i] != want.Idx[i] || dst.Vals[i] != want.Vals[i] {
						t.Fatalf("iter %d element %d: (%d,%v) want (%d,%v)",
							iter, i, dst.Idx[i], dst.Vals[i], want.Idx[i], want.Vals[i])
					}
				}
			}
		})
	}
}
