package compress

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestErrorFeedbackConservesMass(t *testing.T) {
	// Invariant: after every step, residual + transmitted == sum of all
	// corrected gradients so far; equivalently, per step,
	// corrected = transmitted + residual.
	ec := NewErrorFeedback(NewTopK())
	g := laplaceVec(5000, 0.01, 30)
	prevResidual := make([]float64, len(g))
	for step := 0; step < 10; step++ {
		s, err := ec.Compress(g, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		// corrected = g + prevResidual; check corrected == dense(s) + residual.
		dense := s.Dense()
		for i := range g {
			corrected := g[i] + prevResidual[i]
			if math.Abs(corrected-(dense[i]+ec.Residual()[i])) > 1e-12 {
				t.Fatalf("step %d: mass not conserved at %d", step, i)
			}
		}
		copy(prevResidual, ec.Residual())
	}
}

func TestErrorFeedbackEventuallyTransmitsEverything(t *testing.T) {
	// With a constant gradient, EC guarantees every coordinate is
	// eventually transmitted: the residual of suppressed coordinates grows
	// until it crosses the Top-k bar.
	d := 100
	g := make([]float64, d)
	for i := range g {
		g[i] = 1.0 / float64(i+1) // strictly decreasing magnitudes
	}
	ec := NewErrorFeedback(NewTopK())
	transmitted := make([]bool, d)
	for step := 0; step < 200; step++ {
		s, err := ec.Compress(g, 0.05) // k = 5
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range s.Idx {
			transmitted[j] = true
		}
	}
	for i, ok := range transmitted {
		if !ok {
			t.Fatalf("coordinate %d never transmitted under EC", i)
		}
	}
}

func TestErrorFeedbackResidualShrinksAggregate(t *testing.T) {
	// The time-averaged transmitted vector under EC converges to the true
	// gradient mean (here constant), unlike plain Top-k which permanently
	// drops the tail.
	d := 1000
	g := laplaceVec(d, 0.01, 31)
	ec := NewErrorFeedback(NewTopK())
	acc := make([]float64, d)
	accPlain := make([]float64, d)
	const steps = 400
	for step := 0; step < steps; step++ {
		s, err := ec.Compress(g, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		s.AddTo(acc)
		sp, err := NewTopK().Compress(g, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		sp.AddTo(accPlain)
	}
	tensor.Scale(1.0/steps, acc)
	tensor.Scale(1.0/steps, accPlain)
	relErr := func(avg []float64) float64 {
		diff := tensor.Clone(avg)
		tensor.Sub(g, diff)
		return tensor.Norm2(diff) / tensor.Norm2(g)
	}
	ecErr, plainErr := relErr(acc), relErr(accPlain)
	if ecErr > 0.15 {
		t.Errorf("EC average relative error = %v, want < 0.15", ecErr)
	}
	// Plain Top-k permanently drops the tail; EC must beat it decisively.
	if ecErr > plainErr/3 {
		t.Errorf("EC error %v not clearly better than plain Top-k %v", ecErr, plainErr)
	}
}

func TestErrorFeedbackDimensionChangeErrors(t *testing.T) {
	ec := NewErrorFeedback(NewTopK())
	if _, err := ec.Compress(make([]float64, 10), 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Compress(make([]float64, 11), 0.5); err == nil {
		t.Error("dimension change should error")
	}
}

func TestErrorFeedbackReset(t *testing.T) {
	ec := NewErrorFeedback(NewTopK())
	g := laplaceVec(100, 1, 32)
	if _, err := ec.Compress(g, 0.1); err != nil {
		t.Fatal(err)
	}
	ec.Reset()
	for _, r := range ec.Residual() {
		if r != 0 {
			t.Fatal("Reset left residual mass")
		}
	}
}

func TestErrorFeedbackName(t *testing.T) {
	if got := NewErrorFeedback(NewTopK()).Name(); got != "topk+ec" {
		t.Errorf("Name = %q", got)
	}
}

func TestErrorFeedbackDoesNotModifyInput(t *testing.T) {
	ec := NewErrorFeedback(NewTopK())
	g := laplaceVec(500, 1, 33)
	orig := tensor.Clone(g)
	for i := 0; i < 5; i++ {
		if _, err := ec.Compress(g, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	for i := range g {
		if g[i] != orig[i] {
			t.Fatal("EC modified its input")
		}
	}
}
