// Package compress implements the gradient sparsifiers evaluated in the
// SIDCo paper: exact Top-k, DGC (random sub-sampling + hierarchical
// Top-k), RedSync (max/mean ratio search), GaussianKSGD (Gaussian fit with
// iterative threshold adjustment), Random-k, and a no-op baseline —
// together with the error-feedback (EC) wrapper used to preserve
// convergence under aggressive sparsification.
//
// The SIDCo compressor itself lives in internal/core and satisfies the
// same Compressor interface.
package compress

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Compressor selects a sparse subset of a gradient vector targeting a
// compression ratio delta = k/d.
type Compressor interface {
	// Name returns a short identifier used in reports ("topk", "dgc", ...).
	Name() string
	// Compress sparsifies g at target ratio delta in (0, 1]. The returned
	// sparse vector has ascending unique indices. Implementations must not
	// modify g.
	Compress(g []float64, delta float64) (*tensor.Sparse, error)
}

// TargetK converts a compression ratio to an element count: k =
// round(delta*d), at least 1 for non-empty vectors.
func TargetK(d int, delta float64) int {
	if d == 0 {
		return 0
	}
	k := int(math.Round(delta * float64(d)))
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	return k
}

func validate(g []float64, delta float64) error {
	if len(g) == 0 {
		return fmt.Errorf("compress: empty gradient")
	}
	if math.IsNaN(delta) || delta <= 0 || delta > 1 {
		return fmt.Errorf("compress: ratio %v outside (0, 1]", delta)
	}
	return nil
}

// None is the no-compression baseline: it keeps the full gradient.
type None struct{}

// Name implements Compressor.
func (None) Name() string { return "none" }

// Compress implements Compressor; delta is ignored and the whole vector is
// kept.
func (None) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	if len(g) == 0 {
		return nil, fmt.Errorf("compress: empty gradient")
	}
	idx := make([]int32, len(g))
	vals := make([]float64, len(g))
	for i, gi := range g {
		idx[i] = int32(i)
		vals[i] = gi
	}
	return tensor.NewSparse(len(g), idx, vals)
}

// TopK is the exact Top-k sparsifier T_k: it keeps the k = delta*d
// elements with the largest magnitude. It is the accuracy gold standard
// and the computational worst case of the study.
type TopK struct{}

// Name implements Compressor.
func (TopK) Name() string { return "topk" }

// Compress implements Compressor.
func (TopK) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	if err := validate(g, delta); err != nil {
		return nil, err
	}
	k := TargetK(len(g), delta)
	idx, vals := tensor.TopKSelect(g, k)
	return tensor.NewSparse(len(g), idx, vals)
}

// Threshold keeps every element with |g_i| >= Eta, regardless of delta —
// the raw compression operator C_eta of Section 2.3, exposed for tests and
// for estimators that compute eta themselves.
type Threshold struct {
	Eta float64
}

// Name implements Compressor.
func (Threshold) Name() string { return "threshold" }

// Compress implements Compressor; delta is ignored.
func (t Threshold) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	if len(g) == 0 {
		return nil, fmt.Errorf("compress: empty gradient")
	}
	idx, vals := tensor.FilterAboveThreshold(g, t.Eta, nil, nil)
	return tensor.NewSparse(len(g), idx, vals)
}
