// Package compress implements the gradient sparsifiers evaluated in the
// SIDCo paper: exact Top-k, DGC (random sub-sampling + hierarchical
// Top-k), RedSync (max/mean ratio search), GaussianKSGD (Gaussian fit with
// iterative threshold adjustment), Random-k, and a no-op baseline —
// together with the error-feedback (EC) wrapper used to preserve
// convergence under aggressive sparsification.
//
// The SIDCo compressor itself lives in internal/core and satisfies the
// same Compressor interface.
package compress

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// errEmptyGradient is hoisted to package level so the zero-alloc
// CompressInto hot paths can reject empty input without constructing
// an error value per call.
var errEmptyGradient = errors.New("compress: empty gradient")

// Compressor selects a sparse subset of a gradient vector targeting a
// compression ratio delta = k/d.
//
// CompressInto is the streaming fast path: the selection lands in
// caller-owned storage, and every in-repo compressor keeps per-instance
// scratch (fit buffers, sample buffers, radix-select histograms) so
// steady-state iterations are allocation-free. Compress remains the
// convenient allocating form; pre-pipeline implementations that only
// have Compress are lifted via Adapt.
type Compressor interface {
	// Name returns a short identifier used in reports ("topk", "dgc", ...).
	Name() string
	// Compress sparsifies g at target ratio delta in (0, 1]. The returned
	// sparse vector has ascending unique indices. Implementations must not
	// modify g.
	Compress(g []float64, delta float64) (*tensor.Sparse, error)
	// CompressInto sparsifies g into dst, resetting dst first and reusing
	// its storage. dst is left untouched on error. Implementations must
	// not modify g and must not retain dst or alias internal scratch into
	// it — the caller owns dst between calls.
	CompressInto(dst *tensor.Sparse, g []float64, delta float64) error
}

// Legacy is the pre-pipeline compressor contract: Compress only. Adapt
// lifts a Legacy implementation into the full Compressor interface.
type Legacy interface {
	Name() string
	Compress(g []float64, delta float64) (*tensor.Sparse, error)
}

// Adapt wraps a Legacy compressor so it satisfies Compressor: the
// CompressInto fast path falls back to Compress plus a copy into dst. If
// c already implements Compressor it is returned unchanged.
func Adapt(c Legacy) Compressor {
	if full, ok := c.(Compressor); ok {
		return full
	}
	return adapted{c}
}

type adapted struct{ Legacy }

// CompressInto implements Compressor by allocating through the wrapped
// Compress and copying — correct but not allocation-free.
func (a adapted) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	s, err := a.Legacy.Compress(g, delta)
	if err != nil {
		return err
	}
	dst.CopyFrom(s)
	return nil
}

// FreshCompress implements the allocating Compress in terms of a
// CompressInto fast path: every concrete compressor's Compress is this
// one-liner, so the two entry points cannot drift.
func FreshCompress(c Compressor, g []float64, delta float64) (*tensor.Sparse, error) {
	dst := &tensor.Sparse{}
	if err := c.CompressInto(dst, g, delta); err != nil {
		return nil, err
	}
	return dst, nil
}

// TargetK converts a compression ratio to an element count: k =
// round(delta*d), at least 1 for non-empty vectors.
func TargetK(d int, delta float64) int {
	if d == 0 {
		return 0
	}
	k := int(math.Round(delta * float64(d)))
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	return k
}

// TargetKChunks allocates the global budget k = TargetK(d, delta) across
// the standard balanced chunking of d elements into the given number of
// chunks (chunk c covers [c*d/n, (c+1)*d/n)). Budgets are proportional to
// chunk sizes with largest-remainder rounding, so they always sum to
// exactly k and a tiny chunk can legitimately receive 0 — unlike calling
// TargetK per chunk, whose k >= 1 floor would inflate the total. Ties in
// the remainders break toward lower chunk indices.
func TargetKChunks(d int, delta float64, chunks int) []int {
	if chunks < 1 {
		chunks = 1
	}
	out := make([]int, chunks)
	if d == 0 {
		return out
	}
	k := TargetK(d, delta)
	assigned := 0
	type rem struct {
		frac  float64
		chunk int
	}
	rems := make([]rem, chunks)
	for c := range out {
		lo, hi := c*d/chunks, (c+1)*d/chunks
		exact := float64(k) * float64(hi-lo) / float64(d)
		out[c] = int(math.Floor(exact))
		assigned += out[c]
		rems[c] = rem{frac: exact - math.Floor(exact), chunk: c}
	}
	// Hand the leftover k - assigned units to the largest remainders,
	// lower chunk index first on ties (stable selection sort over the
	// short chunk list keeps this dependency-free and deterministic).
	for left := k - assigned; left > 0; left-- {
		best := -1
		for i := range rems {
			if rems[i].chunk < 0 {
				continue
			}
			if best < 0 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		out[rems[best].chunk]++
		rems[best].chunk = -1
	}
	return out
}

func validate(g []float64, delta float64) error {
	if len(g) == 0 {
		return errEmptyGradient
	}
	if math.IsNaN(delta) || delta <= 0 || delta > 1 {
		return fmt.Errorf("compress: ratio %v outside (0, 1]", delta)
	}
	return nil
}

// None is the no-compression baseline: it keeps the full gradient.
type None struct{}

// Name implements Compressor.
func (None) Name() string { return "none" }

// Compress implements Compressor; delta is ignored and the whole vector is
// kept.
func (n None) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(n, g, delta)
}

// CompressInto implements Compressor.
//
//sidco:hotpath
func (None) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if len(g) == 0 {
		return errEmptyGradient
	}
	dst.Reset(len(g))
	dst.Grow(len(g))
	for i, gi := range g {
		dst.Append(int32(i), gi)
	}
	return nil
}

// TopK is the exact Top-k sparsifier T_k: it keeps the k = delta*d
// elements with the largest magnitude. It is the accuracy gold standard
// and the computational worst case of the study. Each instance owns its
// radix-select scratch; create one per worker with NewTopK.
type TopK struct {
	sel tensor.Selector
}

// NewTopK creates a Top-k compressor with its own selection scratch.
func NewTopK() *TopK { return &TopK{} }

// Name implements Compressor.
func (*TopK) Name() string { return "topk" }

// SetParallelism implements Parallelizable: the radix histogram, the
// candidate gather and the keep/tie filter pass fan out over p
// goroutines with bit-identical selection.
func (t *TopK) SetParallelism(p int) { t.sel.SetParallelism(p) }

// Compress implements Compressor.
func (t *TopK) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(t, g, delta)
}

// CompressInto implements Compressor.
//
//sidco:hotpath
func (t *TopK) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if err := validate(g, delta); err != nil {
		return err
	}
	k := TargetK(len(g), delta)
	dst.Reset(len(g))
	t.sel.TopKInto(dst, g, k)
	return nil
}

// Threshold keeps every element with |g_i| >= Eta, regardless of delta —
// the raw compression operator C_eta of Section 2.3, exposed for tests and
// for estimators that compute eta themselves.
type Threshold struct {
	Eta float64
}

// Name implements Compressor.
func (Threshold) Name() string { return "threshold" }

// Compress implements Compressor; delta is ignored.
func (t Threshold) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(t, g, delta)
}

// CompressInto implements Compressor; delta is ignored.
//
//sidco:hotpath
func (t Threshold) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if len(g) == 0 {
		return errEmptyGradient
	}
	dst.Reset(len(g))
	dst.Idx, dst.Vals = tensor.FilterAboveThreshold(g, t.Eta, dst.Idx, dst.Vals)
	return nil
}
