package compress

import (
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// GaussianKSGD implements the Gaussian-fit threshold estimator of
// GaussianK-SGD (Shi et al., 2019): each iteration fits a normal
// distribution to the gradient and takes the (1 - delta/2) Gaussian
// quantile as the base threshold, corrected by a multiplicative factor
// adjusted iteratively from the previously achieved selection count.
//
// The adjustment is asymmetric — over-selection (which costs
// communication) is punished with a large step, under-selection recovered
// with a small one — so on heavy-tailed gradients the factor ratchets
// upward and the achieved ratio collapses far below the target, matching
// the near-zero compression ratios the paper observes at delta = 0.001
// (Figures 4b, 4d, 9).
type GaussianKSGD struct {
	// Epsilon is the relative tolerance band around k within which no
	// adjustment happens (default 0.1).
	Epsilon float64
	// StepUp is the multiplicative factor increase applied after
	// over-selection (default 0.5, i.e. factor *= 1.5).
	StepUp float64
	// StepDown is the decrease applied after under-selection (default
	// 0.05).
	StepDown float64

	factor float64 // cumulative correction, lazily initialised to 1

	stat stats.Par
	par  tensor.Par
}

// SetParallelism implements Parallelizable: the Gaussian moment fit and
// the threshold filter fan out over p goroutines with bit-identical
// thresholds and selection.
func (c *GaussianKSGD) SetParallelism(p int) {
	c.stat.P = p
	c.par.P = p
}

// NewGaussianKSGD creates the estimator with the default adjustment
// schedule.
func NewGaussianKSGD() *GaussianKSGD {
	return &GaussianKSGD{Epsilon: 0.1, StepUp: 0.5, StepDown: 0.05}
}

// Name implements Compressor.
func (*GaussianKSGD) Name() string { return "gaussiank" }

// Compress implements Compressor. The receiver carries the correction
// factor across iterations, mirroring the stateful heuristic of the
// original method.
func (c *GaussianKSGD) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return FreshCompress(c, g, delta)
}

// CompressInto implements Compressor.
//
//sidco:hotpath
func (c *GaussianKSGD) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if err := validate(g, delta); err != nil {
		return err
	}
	if c.factor == 0 {
		c.factor = 1
	}
	d := len(g)
	k := TargetK(d, delta)

	fit := c.stat.FitGaussian(g)
	base := math.Abs(fit.Mu) + fit.Sigma*stats.NormalQuantile(1-delta/2)
	if base <= 0 || math.IsNaN(base) {
		base = c.stat.MaxAbs(g)
	}
	eta := base * c.factor

	dst.Reset(d)
	dst.Idx, dst.Vals = c.par.FilterAbove(g, eta, dst.Idx, dst.Vals)
	nnz := dst.NNZ()

	// Iterative adjustment for the next call.
	switch {
	case float64(nnz) > float64(k)*(1+c.Epsilon):
		c.factor *= 1 + c.StepUp
	case float64(nnz) < float64(k)*(1-c.Epsilon):
		c.factor *= 1 - c.StepDown
	}
	const minFactor, maxFactor = 1e-2, 1e2
	if c.factor < minFactor {
		c.factor = minFactor
	}
	if c.factor > maxFactor {
		c.factor = maxFactor
	}
	return nil
}

// Factor exposes the current correction factor for tests and diagnostics.
func (c *GaussianKSGD) Factor() float64 {
	if c.factor == 0 {
		return 1
	}
	return c.factor
}
