package simgrad

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Dim: 1000, Family: FamilyLaplace, Seed: 5}
	a, b := New(cfg), New(cfg)
	ga, gb := a.Next(), b.Next()
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	// Different seeds diverge.
	c := New(Config{Dim: 1000, Family: FamilyLaplace, Seed: 6})
	gc := c.Next()
	same := true
	for i := range ga {
		if ga[i] != gc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorMarginalsMatchFamily(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		dist stats.Distribution
	}{
		{"laplace", Config{Dim: 50000, Family: FamilyLaplace, Scale: 0.02, Seed: 1},
			stats.Laplace{Scale: 0.02}},
		{"gamma", Config{Dim: 50000, Family: FamilyDoubleGamma, Scale: 0.02, Shape: 0.7, Seed: 2},
			stats.DoubleGamma{Shape: 0.7, Scale: 0.02}},
		{"gp", Config{Dim: 50000, Family: FamilyDoubleGP, Scale: 0.02, Shape: 0.2, Seed: 3},
			stats.DoubleGP{Shape: 0.2, Scale: 0.02}},
	}
	for _, c := range cases {
		g := New(c.cfg).Next()
		ks := stats.NewECDF(g).KSDistance(c.dist)
		if ks > 0.02 {
			t.Errorf("%s: KS distance %v against target marginal", c.name, ks)
		}
	}
}

func TestScaleDecayAndSharpening(t *testing.T) {
	gen := New(Config{
		Dim: 20000, Family: FamilyDoubleGamma, Scale: 0.1,
		ScaleDecay: 0.01, SharpenRate: 0.001, Seed: 4,
	})
	first := gen.Next()
	// Fast-forward the iteration counter.
	for i := 0; i < 500; i++ {
		gen.Next()
	}
	late := gen.Next()
	if stats.MeanAbs(late) >= stats.MeanAbs(first) {
		t.Errorf("scale did not decay: %v -> %v", stats.MeanAbs(first), stats.MeanAbs(late))
	}
	// Sharpened gradients are relatively sparser: higher kurtosis.
	if stats.Kurtosis(late) <= stats.Kurtosis(first) {
		t.Errorf("tail did not sharpen: kurtosis %v -> %v",
			stats.Kurtosis(first), stats.Kurtosis(late))
	}
}

func TestOutliersPresent(t *testing.T) {
	gen := New(Config{
		Dim: 100000, Family: FamilyLaplace, Scale: 0.01,
		OutlierFrac: 1e-4, OutlierScale: 1000, Seed: 7,
	})
	g := gen.Next()
	if tensor.NormInf(g) < 1 {
		t.Errorf("expected outliers with magnitude >= 10, max = %v", tensor.NormInf(g))
	}
}

func TestTheoreticalThresholdSelectsDelta(t *testing.T) {
	for _, fam := range []Family{FamilyLaplace, FamilyDoubleGamma, FamilyDoubleGP} {
		gen := New(Config{Dim: 200000, Family: fam, Scale: 0.01, Seed: 8})
		g := gen.Next()
		for _, delta := range []float64{0.1, 0.01} {
			eta := gen.TheoreticalThreshold(0, delta)
			got := float64(tensor.CountAboveThreshold(g, eta)) / float64(len(g))
			if math.Abs(got-delta)/delta > 0.25 {
				t.Errorf("family %d delta %v: achieved %v", fam, delta, got)
			}
		}
	}
}

func TestGeneratedGradientsAreCompressible(t *testing.T) {
	// Property 1: sorted magnitudes follow a power-law with p > 1/2. The
	// GP family has a polynomial tail whose sorted-coefficient log-log
	// slope equals its shape, so shape 0.7 certifies compressibility.
	gen := New(Config{Dim: 100000, Family: FamilyDoubleGP, Scale: 0.01, Shape: 0.7, Seed: 9})
	g := gen.Next()
	p := PowerLawFit(tensor.SortedAbsDescending(g))
	if math.IsNaN(p) || p < 0.5 {
		t.Errorf("GP(0.7): power-law exponent %v, want > 0.5", p)
	}

	// Exponential-type tails (gamma family) decay logarithmically in rank
	// space, so the fitted exponent is positive but small; the test only
	// asserts a sane fit, matching the discussion around Figure 7.
	gen = New(Config{Dim: 100000, Family: FamilyDoubleGamma, Scale: 0.01, Shape: 0.4, Seed: 9})
	g = gen.Next()
	p = PowerLawFit(tensor.SortedAbsDescending(g))
	if math.IsNaN(p) || p <= 0 {
		t.Errorf("gamma(0.4): power-law exponent %v, want > 0", p)
	}
}

func TestPowerLawFitOnExactPowerLaw(t *testing.T) {
	// g_j = j^-0.8 exactly: the fit must recover 0.8.
	n := 10000
	sorted := make([]float64, n)
	for j := range sorted {
		sorted[j] = math.Pow(float64(j+1), -0.8)
	}
	p := PowerLawFit(sorted)
	if math.Abs(p-0.8) > 0.01 {
		t.Errorf("power-law fit = %v, want 0.8", p)
	}
}

func TestPowerLawFitDegenerate(t *testing.T) {
	if p := PowerLawFit([]float64{1}); !math.IsNaN(p) {
		t.Errorf("single point fit = %v, want NaN", p)
	}
	if p := PowerLawFit([]float64{0, 0, 0}); !math.IsNaN(p) {
		t.Errorf("all-zero fit = %v, want NaN", p)
	}
}

func TestFillReusesBuffer(t *testing.T) {
	gen := New(Config{Dim: 100, Family: FamilyLaplace, Seed: 10})
	buf := make([]float64, 100)
	gen.Fill(buf)
	if gen.Iter() != 1 {
		t.Errorf("iter = %d", gen.Iter())
	}
	nonZero := false
	for _, v := range buf {
		if v != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Error("Fill left buffer empty")
	}
}

func TestFillPanicsOnBadLength(t *testing.T) {
	gen := New(Config{Dim: 100, Seed: 11})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	gen.Fill(make([]float64, 99))
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Dim: 0})
}
