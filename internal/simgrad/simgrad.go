// Package simgrad generates synthetic gradient vectors with the
// statistical character the paper documents for real DNN training:
// sparsity-inducing heavy-tailed marginals (Property 2), power-law
// compressibility (Property 1), scale decay and tail sharpening over
// iterations (Figure 2), and occasional outliers that stress max-based
// threshold heuristics.
//
// It substitutes for the proprietary GPU training traces the paper
// collected: micro-benchmarks (Figures 1, 14-17) depend only on vector
// size and marginal distribution, both of which this package matches at
// the exact dimensionalities of Table 1.
package simgrad

import (
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Family selects the base marginal distribution of generated gradients.
type Family int

const (
	// FamilyLaplace draws from a double exponential.
	FamilyLaplace Family = iota
	// FamilyDoubleGamma draws from a symmetric double gamma (shape < 1:
	// sparser than Laplace).
	FamilyDoubleGamma
	// FamilyDoubleGP draws from a symmetric double generalized Pareto
	// (polynomial tail).
	FamilyDoubleGP
)

// Config parameterises a Generator.
type Config struct {
	// Dim is the gradient dimensionality.
	Dim int
	// Family is the base marginal.
	Family Family
	// Scale is the initial distribution scale (typical |g|, default 0.01).
	Scale float64
	// Shape is the family shape parameter (gamma/GP only; default 0.7 for
	// gamma, 0.2 for GP).
	Shape float64
	// ScaleDecay makes the scale shrink as training progresses:
	// scale_i = Scale / (1 + ScaleDecay * i). Zero keeps it stationary.
	ScaleDecay float64
	// SharpenRate drives the shape parameter of the gamma family toward
	// sparser values over iterations, mimicking Figure 2's faster tails
	// at iteration 10000 vs 100. Zero keeps it stationary.
	SharpenRate float64
	// OutlierFrac is the fraction of elements replaced by large-magnitude
	// outliers (default 0; micro-benchmarks of estimator robustness use
	// ~1e-5).
	OutlierFrac float64
	// OutlierScale multiplies the base scale for outliers (default 100).
	OutlierScale float64
	// Seed makes the stream deterministic.
	Seed int64
}

// Generator produces a stream of gradient vectors whose distribution
// evolves with the iteration counter.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	iter int
}

// New creates a Generator, filling config defaults.
func New(cfg Config) *Generator {
	if cfg.Dim <= 0 {
		panic("simgrad: Dim must be positive")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.01
	}
	if cfg.Shape <= 0 {
		switch cfg.Family {
		case FamilyDoubleGamma:
			cfg.Shape = 0.7
		case FamilyDoubleGP:
			cfg.Shape = 0.2
		}
	}
	if cfg.OutlierScale <= 0 {
		cfg.OutlierScale = 100
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Iter returns the current iteration counter (number of vectors produced).
func (g *Generator) Iter() int { return g.iter }

// scaleAt returns the distribution scale at iteration i.
func (g *Generator) scaleAt(i int) float64 {
	return g.cfg.Scale / (1 + g.cfg.ScaleDecay*float64(i))
}

// shapeAt returns the shape parameter at iteration i (gamma sharpening).
func (g *Generator) shapeAt(i int) float64 {
	sh := g.cfg.Shape
	if g.cfg.SharpenRate > 0 {
		// Decay toward 0.3 (very sparse) without crossing it.
		sh = 0.3 + (sh-0.3)*math.Exp(-g.cfg.SharpenRate*float64(i))
	}
	return sh
}

// dist returns the marginal distribution for iteration i.
func (g *Generator) dist(i int) stats.Distribution {
	scale := g.scaleAt(i)
	switch g.cfg.Family {
	case FamilyDoubleGamma:
		return stats.DoubleGamma{Shape: g.shapeAt(i), Scale: scale}
	case FamilyDoubleGP:
		return stats.DoubleGP{Shape: g.cfg.Shape, Scale: scale}
	default:
		return stats.Laplace{Scale: scale}
	}
}

// Next returns a fresh gradient vector and advances the iteration
// counter.
func (g *Generator) Next() []float64 {
	out := make([]float64, g.cfg.Dim)
	g.Fill(out)
	return out
}

// Fill writes a fresh gradient into dst (len dst == Dim) and advances the
// iteration counter. It allows callers to reuse buffers on 100M+ element
// vectors.
func (g *Generator) Fill(dst []float64) {
	if len(dst) != g.cfg.Dim {
		panic("simgrad: Fill length mismatch")
	}
	d := g.dist(g.iter)
	for i := range dst {
		dst[i] = d.Sample(g.rng)
	}
	if g.cfg.OutlierFrac > 0 {
		n := int(g.cfg.OutlierFrac * float64(len(dst)))
		if n < 1 {
			n = 1
		}
		scale := g.scaleAt(g.iter) * g.cfg.OutlierScale
		for j := 0; j < n; j++ {
			v := scale * (1 + g.rng.ExpFloat64())
			if g.rng.Intn(2) == 0 {
				v = -v
			}
			dst[g.rng.Intn(len(dst))] = v
		}
	}
	g.iter++
}

// TheoreticalThreshold returns the exact Top-k threshold (the 1-delta
// quantile of |G|) for the distribution in force at iteration i — the
// oracle against which estimators are scored in tests.
func (g *Generator) TheoreticalThreshold(i int, delta float64) float64 {
	switch d := g.dist(i).(type) {
	case stats.Laplace:
		return d.Abs().Quantile(1 - delta)
	case stats.DoubleGamma:
		return d.Abs().Quantile(1 - delta)
	case stats.DoubleGP:
		return d.Abs().Quantile(1 - delta)
	default:
		return math.NaN()
	}
}

// PowerLawFit estimates the decay exponent p of sortedAbs (|g| sorted
// descending) by least-squares regression of log magnitude on log rank
// over the top portion of the vector (indices 1..n/10, where the power
// law of Definition 1 is the binding constraint). A fitted p > 0.5
// certifies compressibility.
func PowerLawFit(sortedAbs []float64) (p float64) {
	n := len(sortedAbs) / 10
	if n < 10 {
		n = len(sortedAbs)
	}
	var sx, sy, sxx, sxy float64
	m := 0
	for j := 0; j < n; j++ {
		v := sortedAbs[j]
		if v <= 0 {
			break // sorted descending: the rest are zero too
		}
		x := math.Log(float64(j + 1))
		y := math.Log(v)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		m++
	}
	if m < 2 {
		return math.NaN()
	}
	fm := float64(m)
	slope := (fm*sxy - sx*sy) / (fm*sxx - sx*sx)
	return -slope
}
