// Package analysis is the repo's static-analysis suite: four analyzers
// that enforce at compile time the invariants the runtime test matrix
// (AllocsPerRun guards, -race, bitwise loss comparisons) can only catch
// on exercised paths.
//
//   - determinism flags wall-clock reads (time.Now/Since/...), global
//     math/rand top-level functions, and map iteration whose body
//     accumulates floats, appends to a result, or writes output —
//     iteration-order-dependent results break the repo's bit-identity
//     contract. A seeded *rand.Rand is fine; intentional wall-clock
//     sites carry a `//sidco:nondet <reason>` directive.
//   - hotpath checks functions marked `//sidco:hotpath` (the
//     CompressInto/EncodeTo/DecodeInto/Step/schedule-runner paths the
//     AllocsPerRun tests pin at zero) for allocation sources on every
//     branch, including error branches runtime guards never execute:
//     closure literals, interface boxing, fmt/errors constructors,
//     string concatenation, make/new, slice and map literals, goroutine
//     spawns, and appends that do not land in persistent scratch.
//     Intentional allocations (one-time ring growth, failing error
//     paths) carry `//sidco:alloc <reason>`.
//   - lockcheck ties struct fields annotated `// guarded by <mu>` to
//     the named sibling mutex: accessing such a field in a function
//     that has not locked the mutex (lexically before the access, with
//     no intervening unlock) is a finding. Functions whose caller holds
//     the lock declare it with `//sidco:locked <mu> <reason>`; reads
//     that are safe without the lock (immutable slice headers) carry
//     `//sidco:nolock <reason>`.
//   - errclass runs in packages that declare the classified transport
//     sentinels (ErrPeerLost, ErrTimeout, ErrClosed,
//     ErrHandshakeTimeout — internal/cluster): a returned error must be
//     nil, a propagated error value, a wrap of a sentinel or of another
//     error, or a type with an Unwrap method. Freshly minted
//     unclassified errors (errors.New, fmt.Errorf with no error
//     operand) defeat the retry logic's recoverable-vs-fatal split and
//     need a `//sidco:errclass <reason>` exemption.
//
// The types here deliberately mirror golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic), but the implementation is stdlib-only:
// packages are loaded via `go list -export` and type-checked against
// compiler export data (see load.go), so the suite adds no module
// dependencies. cmd/sidco-vet is the multichecker driver; the CI quick
// gate runs it over ./... and requires a clean exit.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check, structured like
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is the one-paragraph description shown by sidco-vet -help.
	Doc string
	// Run performs the check, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass hands one analyzer one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string

	// Report records one finding. The driver wires it up.
	Report func(Diagnostic)

	directives map[string]map[int][]Directive // filename -> line -> directives
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted finding at pos unless a directive of the
// given suppression name covers the position (same line, the line
// above, or the enclosing function declaration — see Suppressed).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// TypeOf returns the static type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// RunAnalyzers applies each analyzer to each package and returns every
// finding sorted by position. Analyzer errors abort the run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ImportPath: pkg.ImportPath,
				Report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	// All packages of one load share a FileSet (see Load), so any
	// package's Fset positions every diagnostic.
	fset := pkgs[0].Fset
	sort.Slice(diags, func(i, j int) bool {
		pi := fset.Position(diags[i].Pos)
		pj := fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DeterminismAnalyzer, HotpathAnalyzer, LockcheckAnalyzer, ErrclassAnalyzer}
}
