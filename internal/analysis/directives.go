package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one in-source annotation the analyzers understand:
//
//	//sidco:nondet <reason>    suppress a determinism finding
//	//sidco:hotpath            mark a function for hotpath checking
//	//sidco:alloc <reason>     suppress a hotpath finding
//	//sidco:locked <mu> [why]  function runs with <mu> already held
//	//sidco:nolock <reason>    suppress a lockcheck finding
//	//sidco:errclass <reason>  suppress an errclass finding
//	// guarded by <mu>         struct field protected by sibling mutex
//
// The sidco: forms follow the Go directive-comment convention (no
// space after //, so gofmt leaves them alone). A suppression directive
// covers the line it sits on and the line below it, so it can trail a
// statement or sit on its own line above one; nondet, hotpath, locked
// and errclass also apply function-wide from a function's doc comment.
type Directive struct {
	Name string // "nondet", "hotpath", "alloc", "locked", "nolock", "errclass"
	Arg  string // remainder of the comment, trimmed
	Pos  token.Pos
}

const directivePrefix = "//sidco:"

// parseDirective extracts a directive from one comment, if present.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := text[len(directivePrefix):]
	name := rest
	arg := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	switch name {
	case "nondet", "hotpath", "alloc", "locked", "nolock", "errclass":
		return Directive{Name: name, Arg: arg, Pos: c.Pos()}, true
	}
	return Directive{}, false
}

// directivesByLine indexes every sidco: directive of the pass's files
// by filename and line, built lazily.
func (p *Pass) directivesByLine() map[string]map[int][]Directive {
	if p.directives != nil {
		return p.directives
	}
	p.directives = make(map[string]map[int][]Directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Directive)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return p.directives
}

// DirectiveAt returns the directive of the given name covering pos: on
// pos's own line or on the line directly above it.
func (p *Pass) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	position := p.Fset.Position(pos)
	byLine := p.directivesByLine()[position.Filename]
	for _, line := range [2]int{position.Line, position.Line - 1} {
		for _, d := range byLine[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// FuncDirective returns the directive of the given name in a function
// declaration's doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	if fn.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fn.Doc.List {
		if d, ok := parseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// suppressed reports whether a finding at pos is silenced by a
// line-level directive or a function-level one on fn (which may be
// nil). Directives with an empty reason do not suppress: the analyzers
// report them as malformed instead, so every exemption carries its why.
func (p *Pass) suppressed(pos token.Pos, fn *ast.FuncDecl, name string) bool {
	if d, ok := p.DirectiveAt(pos, name); ok && d.Arg != "" {
		return true
	}
	if fn != nil {
		if d, ok := FuncDirective(fn, name); ok && d.Arg != "" {
			return true
		}
	}
	return false
}

// checkDirectiveReasons reports every directive of the given name that
// is missing its reason argument — an exemption without a why defeats
// the point of annotating.
func checkDirectiveReasons(p *Pass, name string) {
	for _, byLine := range p.directivesByLine() {
		for _, ds := range byLine {
			for _, d := range ds {
				if d.Name == name && d.Arg == "" {
					p.Reportf(d.Pos, "sidco:%s directive is missing its reason", name)
				}
			}
		}
	}
}

// guardedFields maps struct fields annotated `// guarded by <mu>` to
// the name of the protecting sibling mutex field. The annotation may
// trail the field or sit in its doc comment.
func guardedFields(p *Pass) map[*ast.Field]string {
	out := make(map[*ast.Field]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if mu := guardComment(field.Comment); mu != "" {
					out[field] = mu
				} else if mu := guardComment(field.Doc); mu != "" {
					out[field] = mu
				}
			}
			return true
		})
	}
	return out
}

// guardComment extracts the mutex name from a `// guarded by <mu>`
// annotation anywhere in the comment group.
func guardComment(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		rest, ok := strings.CutPrefix(text, "guarded by ")
		if !ok {
			continue
		}
		mu := rest
		if i := strings.IndexAny(mu, " .,;:("); i >= 0 {
			mu = mu[:i]
		}
		if mu != "" {
			return mu
		}
	}
	return ""
}
