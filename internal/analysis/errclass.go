package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errclassSentinels are the classified transport sentinels the retry
// logic dispatches on: ErrPeerLost and ErrTimeout are recoverable
// (re-dial, re-admit, retry the step), ErrClosed and
// ErrHandshakeTimeout are fatal. The analyzer activates only in
// packages that declare at least one of them — internal/cluster in
// this repo, and the golden testdata packages in the analyzer's own
// tests.
var errclassSentinels = map[string]bool{
	"ErrPeerLost":         true,
	"ErrTimeout":          true,
	"ErrClosed":           true,
	"ErrHandshakeTimeout": true,
}

// ErrclassAnalyzer enforces the error taxonomy of the classified
// packages: an error returned to a caller must be classifiable —
// errors.Is must be able to reach one of the sentinels, or the error
// must carry an Unwrap chain a caller can walk. Concretely, a return
// may produce:
//
//   - nil, a sentinel, or a propagated error value (ident, field,
//     call result) — classification is the producer's problem;
//   - fmt.Errorf wrapping an error operand with %w;
//   - a value of a type that has an Unwrap() error method.
//
// What it flags is freshly minted opaque errors: errors.New, and
// fmt.Errorf with no %w-wrapped error operand. Those defeat the
// recoverable-vs-fatal split that drives retry (a step failure that is
// really a lost peer must surface as ErrPeerLost, or the harness
// aborts a recoverable run). Deliberate opaque errors — programmer-
// misuse reports, config validation — carry `//sidco:errclass
// <reason>` on the line or in the function's doc comment.
var ErrclassAnalyzer = &Analyzer{
	Name: "errclass",
	Doc: "check that errors returned from classified packages wrap " +
		"ErrPeerLost/ErrTimeout/ErrClosed/ErrHandshakeTimeout or carry an Unwrap chain",
	Run: runErrclass,
}

func runErrclass(pass *Pass) error {
	if !declaresSentinel(pass) {
		return nil
	}
	checkDirectiveReasons(pass, "errclass")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !returnsError(pass, fn) {
				continue
			}
			checkErrclassBody(pass, fn)
		}
	}
	return nil
}

// declaresSentinel reports whether the package declares a package-level
// error variable named like one of the classified sentinels.
func declaresSentinel(pass *Pass) bool {
	if pass.Pkg == nil {
		return false
	}
	scope := pass.Pkg.Scope()
	for name := range errclassSentinels {
		if obj, ok := scope.Lookup(name).(*types.Var); ok && isErrorType(obj.Type()) {
			return true
		}
	}
	return false
}

// returnsError reports whether fn's signature includes an error result.
func returnsError(pass *Pass, fn *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	res := obj.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// checkErrclassBody flags every return whose error operand is a fresh
// unclassified error. Closure bodies are walked too: a schedule step
// returning an opaque error through a closure is just as fatal.
func checkErrclassBody(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isErrorLike(pass.TypeOf(res)) {
				continue
			}
			if reason := unclassified(pass, res); reason != "" &&
				!pass.suppressed(res.Pos(), fn, "errclass") {
				pass.Reportf(res.Pos(),
					"%s: wrap a classified sentinel with %%w (ErrPeerLost/ErrTimeout recoverable, ErrClosed/ErrHandshakeTimeout fatal) or annotate //sidco:errclass <reason>",
					reason)
			}
		}
		return true
	})
}

// unclassified reports why expr mints an error no caller can classify,
// or "" if the expression is fine.
func unclassified(pass *Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return "" // conversion or local helper: producer's problem
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		switch {
		case obj.Pkg().Path() == "errors" && obj.Name() == "New":
			return "errors.New returns an unclassified error"
		case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
			if errorfWraps(pass, e) {
				return ""
			}
			return "fmt.Errorf without %w wrapping an error operand returns an unclassified error"
		}
		return ""
	case *ast.UnaryExpr:
		if lit, ok := e.X.(*ast.CompositeLit); ok {
			return unclassifiedLit(pass, lit)
		}
	case *ast.CompositeLit:
		return unclassifiedLit(pass, e)
	}
	return "" // idents, fields, indexes: propagation
}

// unclassifiedLit reports a composite-literal error whose type has no
// Unwrap() error method — callers cannot walk past it to a sentinel.
func unclassifiedLit(pass *Pass, lit *ast.CompositeLit) string {
	t := pass.TypeOf(lit)
	if t == nil || hasUnwrap(t) || hasUnwrap(types.NewPointer(t)) {
		return ""
	}
	return "error type " + t.String() + " has no Unwrap method"
}

// errorfWraps reports whether a fmt.Errorf call wraps an error operand
// with a %w verb. Both halves are required: %w with no error operand
// is malformed, and an error operand under %v breaks errors.Is.
func errorfWraps(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	hasErrOperand := false
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.TypeOf(arg)) {
			hasErrOperand = true
			break
		}
	}
	if !hasErrOperand {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		// Non-constant format string: assume the caller knows what it
		// is doing — it passed an error operand.
		return true
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}

// hasUnwrap reports whether t's method set includes Unwrap() error or
// Unwrap() []error.
func hasUnwrap(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		f, ok := ms.At(i).Obj().(*types.Func)
		if !ok || f.Name() != "Unwrap" {
			continue
		}
		sig := f.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		rt := sig.Results().At(0).Type()
		if isErrorType(rt) {
			return true
		}
		if sl, ok := rt.Underlying().(*types.Slice); ok && isErrorType(sl.Elem()) {
			return true
		}
	}
	return false
}

// isErrorLike reports whether t is the error interface or a concrete
// type implementing it — a `return &someErr{...}` has the concrete
// type as its static type, and must be checked too.
func isErrorLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return ok && types.Implements(t, iface)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}
