package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// goList runs `go list -export -deps -json` in dir over the patterns
// and returns every listed package (targets and dependencies).
// -export materialises compiler export data for each package in the
// build cache; the type-checker imports dependencies from those files,
// so loading needs no network and no source re-checking of deps.
func goList(dir string, patterns []string) (map[string]*listedPkg, []string, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	byPath := make(map[string]*listedPkg)
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		cp := p
		byPath[p.ImportPath] = &cp
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p.ImportPath)
		}
	}
	sort.Strings(targets)
	return byPath, targets, nil
}

// exportImporter builds a types.Importer that resolves every import
// from the export data files `go list -export` reported.
func exportImporter(fset *token.FileSet, byPath map[string]*listedPkg) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		p := byPath[path]
		if p == nil {
			return nil, fmt.Errorf("analysis: import %q was not listed", path)
		}
		if p.Export == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// parseAndCheck parses files and type-checks them as one package.
func parseAndCheck(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", f, err)
		}
		asts = append(asts, af)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Load resolves the package patterns relative to dir (a directory
// inside a Go module), parses and type-checks every matched package
// from source, and returns them in import-path order. Test files are
// not loaded: the invariants the suite enforces are production-code
// contracts, and tests legitimately use wall clocks and allocate.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	byPath, targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, byPath)
	var pkgs []*Package
	for _, path := range targets {
		lp := byPath[path]
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := parseAndCheck(fset, imp, path, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads one package from the .go files directly inside dir
// (non-recursive), under the given import path. It is the analysistest
// loader: golden packages live under testdata, outside the module's
// package graph, and may import the standard library — imports are
// resolved through `go list -export` run from dir (any directory of
// this repo works, since stdlib resolution only needs a Go toolchain).
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)

	// Discover the imports so one go list call can materialise export
	// data for exactly the packages the golden files use.
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", f, err)
		}
		for _, im := range af.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	byPath := make(map[string]*listedPkg)
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		byPath, _, err = goList(dir, paths)
		if err != nil {
			return nil, err
		}
	}
	pkg, err := parseAndCheck(fset, exportImporter(fset, byPath), importPath, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}
