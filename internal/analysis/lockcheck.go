package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockcheckAnalyzer ties struct fields annotated `// guarded by <mu>`
// to the named sibling mutex. An access to a guarded field is legal
// only while the mutex is held: a Lock/RLock call on a path reaching
// the access, with no intervening Unlock/RUnlock (deferred unlocks
// hold to function end, and an unlock followed by return does not
// leak into the fall-through path).
//
// The analysis is a branch-aware, intraprocedural walk — the cheap 90%
// of lock discipline; the -race test matrix remains the runtime
// backstop. Functions documented to run with the lock already held
// declare it with `//sidco:locked <mu> <reason>` in their doc comment;
// individual accesses that are safe without the lock (reading an
// immutable slice header, a constructor before publication) carry
// `//sidco:nolock <reason>` on or above the line.
var LockcheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc: "check that fields annotated `// guarded by <mu>` are only " +
		"accessed while the named mutex is held",
	Run: runLockcheck,
}

func runLockcheck(pass *Pass) error {
	checkDirectiveReasons(pass, "nolock")
	guards := guardedObjects(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, fn: fn, guards: guards}
			held := make(heldSet)
			if d, ok := FuncDirective(fn, "locked"); ok && d.Arg != "" {
				// `//sidco:locked <mu> [why]`: the caller holds <mu>
				// for the whole function body.
				mu := d.Arg
				if i := strings.IndexAny(mu, " \t"); i >= 0 {
					mu = mu[:i]
				}
				held[lockKey{nil, mu}] = 1
			}
			w.walkBlock(fn.Body, held)
		}
	}
	return nil
}

// guardedObjects resolves the `// guarded by <mu>` field annotations to
// their types.Var objects so uses match through any selector spelling.
func guardedObjects(pass *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for field, mu := range guardedFields(pass) {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = mu
			}
		}
	}
	return out
}

// lockKey identifies one held mutex: the object of the base identifier
// the mutex hangs off (receiver, local, or the mutex variable itself)
// plus the mutex name. A nil base stands for "any receiver", used by
// function-level //sidco:locked directives.
type lockKey struct {
	base types.Object
	mu   string
}

// heldSet counts how many times each mutex is held on the current path.
type heldSet map[lockKey]int

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// merge keeps, for each key, the minimum of the two path states: after
// a branch, a mutex only counts as held if every surviving path holds it.
func (h heldSet) merge(o heldSet) heldSet {
	m := make(heldSet)
	for k, v := range h {
		if ov := o[k]; ov < v {
			v = ov
		}
		if v > 0 {
			m[k] = v
		}
	}
	return m
}

// lockWalker is a branch-aware interpreter of one function body that
// tracks the held-mutex set along each path.
type lockWalker struct {
	pass   *Pass
	fn     *ast.FuncDecl
	guards map[types.Object]string
}

// walkBlock processes stmts in order against held (mutated in place),
// returning true if the block always terminates (return, branch,
// panic) before falling off the end.
func (w *lockWalker) walkBlock(block *ast.BlockStmt, held heldSet) bool {
	if block == nil {
		return false
	}
	return w.walkStmts(block.List, held)
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held heldSet) bool {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true // statements after a terminator are dead code
		}
	}
	return false
}

// walkStmt processes one statement, returning true if it always
// terminates the enclosing path.
func (w *lockWalker) walkStmt(s ast.Stmt, held heldSet) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return w.walkBlock(s, held)
	case *ast.ExprStmt:
		w.walkExpr(s.X, held)
		return isPanicCall(w.pass, s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto leave this path
	case *ast.DeferStmt:
		// A deferred unlock releases at return, after every access in
		// the body — it must not clear the held set. A deferred FuncLit
		// is checked as its own context.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkClosure(lit)
		}
		return false
	case *ast.GoStmt:
		// The spawned function runs concurrently: its body gets a
		// fresh held set.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkClosure(lit)
		}
		return false
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.walkExpr(s.Cond, held)
		bodyHeld := held.clone()
		bodyTerm := w.walkBlock(s.Body, bodyHeld)
		elseHeld := held.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseHeld)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			replace(held, elseHeld)
		case elseTerm:
			replace(held, bodyHeld)
		default:
			replace(held, bodyHeld.merge(elseHeld))
		}
		return false
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		w.walkExpr(s.Cond, held)
		// The loop body starts from the pre-loop state; its lock
		// effects do not reliably persist past the loop.
		bodyHeld := held.clone()
		w.walkBlock(s.Body, bodyHeld)
		w.walkStmt(s.Post, bodyHeld)
		return false
	case *ast.RangeStmt:
		w.walkExpr(s.X, held)
		bodyHeld := held.clone()
		w.walkBlock(s.Body, bodyHeld)
		return false
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, held)
		w.walkExpr(s.Tag, held)
		return w.walkCases(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, held)
		w.walkStmt(s.Assign, held)
		return w.walkCases(s.Body, held)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.walkExpr(r, held)
		}
		for _, l := range s.Lhs {
			w.walkExpr(l, held)
		}
		return false
	case *ast.IncDecStmt:
		w.walkExpr(s.X, held)
		return false
	case *ast.SendStmt:
		w.walkExpr(s.Chan, held)
		w.walkExpr(s.Value, held)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, held)
					}
				}
			}
		}
		return false
	default:
		return false
	}
}

// walkCases processes a switch/select body: each clause runs from a
// copy of the entry state; afterwards a mutex is held only if every
// non-terminating clause (and the implicit no-default fall-through)
// holds it.
func (w *lockWalker) walkCases(body *ast.BlockStmt, held heldSet) bool {
	if body == nil {
		return false
	}
	var exits []heldSet
	hasDefault := false
	allTerm := true
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				w.walkExpr(e, held)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
			clauseHeld := held.clone()
			w.walkStmt(cs.Comm, clauseHeld)
			if !w.walkStmts(cs.Body, clauseHeld) {
				exits = append(exits, clauseHeld)
				allTerm = false
			}
			continue
		default:
			continue
		}
		clauseHeld := held.clone()
		if !w.walkStmts(stmts, clauseHeld) {
			exits = append(exits, clauseHeld)
			allTerm = false
		}
	}
	if !hasDefault {
		exits = append(exits, held.clone())
		allTerm = false
	}
	if allTerm {
		return true
	}
	post := exits[0]
	for _, e := range exits[1:] {
		post = post.merge(e)
	}
	replace(held, post)
	return false
}

// walkClosure checks a func literal as its own locking context: locks
// held where the closure is created may be released before it runs.
func (w *lockWalker) walkClosure(lit *ast.FuncLit) {
	w.walkBlock(lit.Body, make(heldSet))
}

// walkExpr scans one expression tree for lock operations (updating
// held) and guarded-field uses (checked against held). Nested func
// literals become independent contexts.
func (w *lockWalker) walkExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkClosure(n)
			return false
		case *ast.CallExpr:
			if base, mu, op, ok := lockCall(w.pass, n); ok {
				key := lockKey{base, mu}
				switch op {
				case "Lock", "RLock":
					held[key]++
				case "Unlock", "RUnlock":
					if held[key] > 0 {
						held[key]--
					}
				}
				return false // don't treat s.mu in s.mu.Lock() as an access
			}
		case *ast.SelectorExpr:
			w.checkGuardedUse(n, held)
		}
		return true
	})
}

// checkGuardedUse reports a selector that resolves to a guarded field
// while its mutex is not in the held set.
func (w *lockWalker) checkGuardedUse(sel *ast.SelectorExpr, held heldSet) {
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	mu, guarded := w.guards[obj]
	if !guarded {
		return
	}
	// A lock on the same mutex name counts regardless of the base
	// expression shape: lexical analysis cannot prove receiver aliasing
	// either way, and the -race matrix backs this up at runtime.
	for key, n := range held {
		if n > 0 && key.mu == mu {
			return
		}
	}
	if w.pass.suppressed(sel.Pos(), w.fn, "nolock") {
		return
	}
	w.pass.Reportf(sel.Pos(),
		"%s.%s is guarded by %s, which is not held here (lock it, or annotate //sidco:nolock <reason> / //sidco:locked %s <reason>)",
		exprString(sel.X), sel.Sel.Name, mu, mu)
}

// replace overwrites dst's contents with src's.
func replace(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// lockCall decodes a call of the form <base>.<mu>.Lock() (or
// RLock/Unlock/RUnlock), returning the base object, the mutex field
// name and the operation. It also accepts <mu>.Lock() where <mu> is a
// plain ident (package-level or local mutex): base is then the mutex
// object itself and mu its name.
func lockCall(pass *Pass, call *ast.CallExpr) (base types.Object, mu, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", "", false
	}
	if !isMutexType(pass.TypeOf(sel.X)) {
		return nil, "", "", false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr: // s.mu.Lock()
		mu = x.Sel.Name
		if id, isID := x.X.(*ast.Ident); isID {
			base = pass.TypesInfo.ObjectOf(id)
		}
		return base, mu, op, true
	case *ast.Ident: // mu.Lock()
		obj := pass.TypesInfo.ObjectOf(x)
		return obj, x.Name, op, true
	}
	return nil, "", "", false
}

// isMutexType reports whether t is sync.Mutex/sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// exprString renders a simple selector base for the diagnostic.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "<expr>"
}
