package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the repo's bit-identity contract: for a
// fixed seed, every execution mode (in-process, channel, TCP,
// multi-core, checkpoint-resume) must produce bitwise-equal results.
// Three things silently break that:
//
//   - wall-clock reads (time.Now, time.Since, ...) feeding computation;
//   - the global math/rand functions, whose stream is shared,
//     unseeded, and scheduling-dependent (a seeded *rand.Rand owned by
//     one worker is fine and idiomatic here);
//   - ranging over a map while accumulating floats, appending to a
//     result, or writing output — Go randomises map iteration order,
//     so the result depends on the run. Integer accumulation is
//     exempt (exact arithmetic commutes), and the collect-then-sort
//     idiom is recognised: appending map keys into a slice that is
//     sorted later in the same function is deterministic.
//
// Intentional wall-clock sites (TCP deadlines, benchmark measurement,
// debug clocks) are annotated `//sidco:nondet <reason>`.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, global math/rand use, and order-dependent " +
		"map iteration that break bit-identical training",
	Run: runDeterminism,
}

// nondetTimeFuncs are the time package functions that read the wall or
// monotonic clock. time.Sleep only delays; it cannot change a result.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runDeterminism(pass *Pass) error {
	checkDirectiveReasons(pass, "nondet")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, _ := decl.(*ast.FuncDecl)
			checkDeterminismNode(pass, decl, fn)
		}
	}
	return nil
}

// checkDeterminismNode walks one top-level declaration. fn is the
// enclosing function declaration when the decl is one (so function-doc
// directives can suppress), else nil.
func checkDeterminismNode(pass *Pass, root ast.Node, fn *ast.FuncDecl) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondetCall(pass, n, fn)
		case *ast.RangeStmt:
			checkMapRange(pass, n, fn, root)
		}
		return true
	})
}

// checkNondetCall flags wall-clock reads and global math/rand calls.
func checkNondetCall(pass *Pass, call *ast.CallExpr, fn *ast.FuncDecl) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. a seeded *rand.Rand) are fine
	}
	switch obj.Pkg().Path() {
	case "time":
		if nondetTimeFuncs[obj.Name()] && !pass.suppressed(call.Pos(), fn, "nondet") {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a deterministic package (annotate //sidco:nondet <reason> if intentional)",
				obj.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewZipf, ...) build seeded
		// generators — the seed is right there at the call site and
		// determinism is the caller's choice. Only the top-level draw
		// functions (Intn, Float64, Perm, Shuffle, ...) touch the
		// shared stream.
		if strings.HasPrefix(obj.Name(), "New") {
			return
		}
		if !pass.suppressed(call.Pos(), fn, "nondet") {
			pass.Reportf(call.Pos(),
				"global %s.%s draws from the shared unseeded stream; use a seeded *rand.Rand (or annotate //sidco:nondet <reason>)",
				obj.Pkg().Name(), obj.Name())
		}
	}
}

// checkMapRange flags a range over a map whose body makes the result
// depend on iteration order.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, fn *ast.FuncDecl, root ast.Node) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkRangeAssign(pass, rng, n, fn, root)
		case *ast.SendStmt:
			if !pass.suppressed(n.Pos(), fn, "nondet") {
				pass.Reportf(n.Pos(), "channel send inside map iteration emits values in random order")
			}
		case *ast.CallExpr:
			checkRangeOutputCall(pass, n, fn)
		}
		return true
	})
}

// checkRangeAssign flags float accumulation and result-building
// appends whose target outlives the loop.
func checkRangeAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt, fn *ast.FuncDecl, root ast.Node) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if isFloat(pass.TypeOf(lhs)) && declaredOutside(pass, lhs, rng) &&
				!pass.suppressed(as.Pos(), fn, "nondet") {
				pass.Reportf(as.Pos(),
					"float accumulation inside map iteration is order-dependent (rounding does not commute)")
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			lhs := as.Lhs[i]
			if !declaredOutside(pass, lhs, rng) {
				continue
			}
			if sortedAfter(pass, lhs, rng, root) {
				continue // collect-then-sort: deterministic by construction
			}
			if !pass.suppressed(as.Pos(), fn, "nondet") {
				pass.Reportf(as.Pos(),
					"append inside map iteration builds a randomly-ordered result; sort it afterwards or iterate sorted keys")
			}
		}
	}
}

// checkRangeOutputCall flags writes to output streams inside a map
// range: fmt.Fprint*/Print* and Write* methods emit in random order.
func checkRangeOutputCall(pass *Pass, call *ast.CallExpr, fn *ast.FuncDecl) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	name := obj.Name()
	isOutput := false
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch name {
		case "Fprintf", "Fprint", "Fprintln", "Printf", "Print", "Println":
			isOutput = true
		}
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			isOutput = true
		}
	}
	if isOutput && !pass.suppressed(call.Pos(), fn, "nondet") {
		pass.Reportf(call.Pos(), "%s inside map iteration writes output in random order", name)
	}
}

// isFloat reports whether t has floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether expr's root object is declared
// outside the range statement (so writes to it survive the loop).
// Non-identifier targets (fields, indexed elements) count as outside.
func declaredOutside(pass *Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether the append target is passed to a sort.*
// or slices.Sort* call positioned after the range loop within root —
// the collect-then-sort idiom that restores determinism. Targets are
// matched by object identity for plain identifiers and by canonical
// spelling for selector chains (tl.Steps), which is lexical but
// faithful to how the idiom is written.
func sortedAfter(pass *Pass, expr ast.Expr, rng *ast.RangeStmt, root ast.Node) bool {
	key, ok := sortTargetKey(pass, expr)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fnObj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fnObj.Pkg() == nil {
			return true
		}
		pkg := fnObj.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if akey, ok := sortTargetKey(pass, arg); ok && akey == key {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortTargetKey canonicalises an append/sort target for matching: the
// types.Object for identifiers, the rendered spelling for selectors.
func sortTargetKey(pass *Pass, expr ast.Expr) (any, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
			return obj, true
		}
	case *ast.SelectorExpr:
		return exprString(e), true
	}
	return nil, false
}
