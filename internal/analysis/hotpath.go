package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer statically audits the zero-allocation contract of
// functions marked `//sidco:hotpath` — the CompressInto / EncodeTo /
// DecodeInto / Step / schedule-runner paths whose steady state the
// AllocsPerRun tests pin at zero. The runtime guards only see the
// branches a test exercises; this check walks every branch, error
// paths included, and flags the allocation sources Go hides in plain
// syntax:
//
//   - closure literals and `go` statements;
//   - make, new, and slice/map composite literals (&T{...} included);
//   - fmt.* and errors.New constructors, string concatenation, and
//     string<->[]byte/[]rune conversions;
//   - interface boxing: a non-pointer-shaped concrete value passed or
//     assigned where an interface is expected;
//   - append whose destination is not persistent scratch (a struct
//     field, or a local derived from one): appending into a fresh
//     local grows a throwaway backing array.
//
// The check is intraprocedural: calls into other functions are trusted
// (annotate them too if they are on the path — the AllocsPerRun tests
// remain the cross-procedural backstop). Deliberate allocations — a
// one-time ring growth, an error path that is allowed to cost — carry
// `//sidco:alloc <reason>` on or above the line.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc: "check //sidco:hotpath functions for allocation sources on every " +
		"branch, including error branches runtime guards never execute",
	Run: runHotpath,
}

func runHotpath(pass *Pass) error {
	checkDirectiveReasons(pass, "alloc")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := FuncDirective(fn, "hotpath"); !ok {
				continue
			}
			checkHotpathBody(pass, fn)
		}
	}
	return nil
}

// hotpathCtx carries per-function state: which locals are scratch
// (derived from struct fields, so appends to them are amortized).
type hotpathCtx struct {
	pass    *Pass
	fn      *ast.FuncDecl
	scratch map[types.Object]bool
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	ctx := &hotpathCtx{pass: pass, fn: fn, scratch: map[types.Object]bool{}}
	ctx.collectScratch()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ctx.report(n.Pos(), "closure literal allocates (hoist to a method or package function)")
			return false // the closure body is not the hot path's own frame
		case *ast.GoStmt:
			ctx.report(n.Pos(), "go statement allocates goroutine bookkeeping")
		case *ast.CompositeLit:
			ctx.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					ctx.report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n)) {
				ctx.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			ctx.checkCall(n)
		}
		return true
	})
}

// collectScratch records locals initialised or reassigned from an
// expression rooted at a struct-field selector (the `b := s.buf[:0]`
// reuse idiom) — appends that land back in such storage are amortized
// and allocation-free in steady state.
func (ctx *hotpathCtx) collectScratch() {
	// Receiver-rooted scratch propagates through chained assignments,
	// so iterate to a fixed point (function bodies are small).
	for changed := true; changed; {
		changed = false
		ast.Inspect(ctx.fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := ctx.pass.TypesInfo.ObjectOf(id)
				if obj == nil || ctx.scratch[obj] {
					continue
				}
				if ctx.fieldRooted(as.Rhs[i]) {
					ctx.scratch[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// fieldRooted reports whether expr derives from a struct-field
// selector or an already-known scratch local, through slicing, index,
// append and paren chains.
func (ctx *hotpathCtx) fieldRooted(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := ctx.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
	case *ast.Ident:
		obj := ctx.pass.TypesInfo.ObjectOf(e)
		return obj != nil && ctx.scratch[obj]
	case *ast.SliceExpr:
		return ctx.fieldRooted(e.X)
	case *ast.IndexExpr:
		return ctx.fieldRooted(e.X)
	case *ast.ParenExpr:
		return ctx.fieldRooted(e.X)
	case *ast.CallExpr:
		if isBuiltinAppend(ctx.pass, e) && len(e.Args) > 0 {
			return ctx.fieldRooted(e.Args[0])
		}
	}
	return false
}

func (ctx *hotpathCtx) checkCompositeLit(lit *ast.CompositeLit) {
	t := ctx.pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		ctx.report(lit.Pos(), "slice literal allocates its backing array")
	case *types.Map:
		ctx.report(lit.Pos(), "map literal allocates")
	}
}

func (ctx *hotpathCtx) checkCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := ctx.pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				ctx.report(call.Pos(), "make allocates")
			case "new":
				ctx.report(call.Pos(), "new allocates")
			case "append":
				ctx.checkAppend(call)
			}
			return
		case *types.TypeName:
			ctx.checkConversion(call, obj.Type())
			return
		}
	case *ast.SelectorExpr:
		if obj, ok := ctx.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "fmt":
				ctx.report(call.Pos(), "fmt.%s allocates (format machinery + boxed arguments)", obj.Name())
				return
			case "errors":
				if obj.Name() == "New" {
					ctx.report(call.Pos(), "errors.New allocates; hoist to a package-level sentinel")
					return
				}
			}
		}
		// A selector can also be a type conversion via a package-qualified
		// type; resolve through Uses.
		if tn, ok := ctx.pass.TypesInfo.Uses[fun.Sel].(*types.TypeName); ok {
			ctx.checkConversion(call, tn.Type())
			return
		}
	case *ast.ArrayType, *ast.MapType, *ast.InterfaceType:
		if t := ctx.pass.TypeOf(call.Fun); t != nil {
			ctx.checkConversion(call, t)
			return
		}
	}
	ctx.checkBoxedArgs(call)
}

// checkConversion flags conversions that copy memory: string <->
// []byte/[]rune, and conversions to interface types (boxing).
func (ctx *hotpathCtx) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 || to == nil {
		return
	}
	from := ctx.pass.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case isString(to) && isByteOrRuneSlice(from):
		ctx.report(call.Pos(), "[]byte/[]rune-to-string conversion allocates")
	case isByteOrRuneSlice(to) && isString(from):
		ctx.report(call.Pos(), "string-to-slice conversion allocates")
	case types.IsInterface(to) && !types.IsInterface(from) && !pointerShaped(from):
		ctx.report(call.Pos(), "conversion to interface boxes a %s on the heap", from.String())
	}
}

// checkAppend flags appends whose destination is not persistent
// scratch: growth lands in a fresh backing array every call.
func (ctx *hotpathCtx) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if ctx.fieldRooted(call.Args[0]) {
		return
	}
	ctx.report(call.Pos(), "append to a non-scratch slice allocates its growth (reuse field-backed storage)")
}

// checkBoxedArgs flags non-interface, non-pointer-shaped arguments
// passed to interface parameters — implicit boxing that heap-allocates
// the value.
func (ctx *hotpathCtx) checkBoxedArgs(call *ast.CallExpr) {
	sigT := ctx.pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := ctx.pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if tv, ok := ctx.pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
			continue // constants may be boxed from read-only statics
		}
		ctx.report(arg.Pos(), "passing %s to an interface parameter boxes it on the heap", at.String())
	}
}

func (ctx *hotpathCtx) report(pos token.Pos, format string, args ...any) {
	if ctx.pass.suppressed(pos, nil, "alloc") {
		return
	}
	ctx.pass.Reportf(pos, format, args...)
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit an interface word
// without heap allocation: pointers, channels, maps, functions and
// unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
