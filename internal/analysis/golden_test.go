package analysis

import "testing"

func TestDeterminismGolden(t *testing.T) { runGolden(t, DeterminismAnalyzer, "determinism") }

func TestHotpathGolden(t *testing.T) { runGolden(t, HotpathAnalyzer, "hotpath") }

func TestLockcheckGolden(t *testing.T) { runGolden(t, LockcheckAnalyzer, "lockcheck") }

func TestErrclassGolden(t *testing.T) { runGolden(t, ErrclassAnalyzer, "errclass") }

// TestSuiteCleanOnRepo is the acceptance gate sidco-vet enforces in
// CI: the full analyzer suite over the whole module must be silent —
// every genuine finding fixed, every intentional one annotated with a
// reasoned directive.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		t.Errorf("%s: %s: %s", pos, d.Analyzer, d.Message)
	}
}
