package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the analysistest harness: golden packages under
// testdata/src/<name> carry `// want "regex"` comments on the lines
// where an analyzer must report, and runGolden checks the two-way
// match — every want claims a diagnostic on its line, every diagnostic
// is claimed by a want. The block form (/* want "..." */) exists so a
// want can share a line with a trailing //sidco: directive.

// expectation is one want assertion: a regexp that must match a
// diagnostic message on the given line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// collectWants parses every want comment of a golden package. Multiple
// quoted patterns after one `want` each assert a separate diagnostic
// on the same line.
func collectWants(t *testing.T, pkg *Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimPrefix(text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest = strings.TrimSpace(rest)
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q: %v", pos.Filename, pos.Line, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/src/<name> as one package, runs a single
// analyzer over it, and verifies the diagnostics against the golden
// want comments.
func runGolden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, name)
	if err != nil {
		t.Fatalf("loading golden package %s: %v", name, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}
	type lineKey struct {
		file string
		line int
	}
	pending := make(map[lineKey][]Diagnostic)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		pending[k] = append(pending[k], d)
	}
	for _, w := range collectWants(t, pkg) {
		k := lineKey{w.file, w.line}
		ds := pending[k]
		hit := -1
		for i, d := range ds {
			if w.re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("%s:%d: no %s diagnostic matching %q (unclaimed on this line: %v)",
				w.file, w.line, a.Name, w.raw, messages(ds))
			continue
		}
		pending[k] = append(ds[:hit:hit], ds[hit+1:]...)
	}
	for k, ds := range pending {
		for _, d := range ds {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
}

func messages(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Message
	}
	return out
}
