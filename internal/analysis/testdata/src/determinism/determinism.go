// Package determinism is the golden corpus for the determinism
// analyzer: every want comment pins a finding the analyzer must
// produce, everything else must stay silent.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func annotatedClock() time.Duration {
	start := time.Now()      //sidco:nondet benchmark measurement, reporting only
	return time.Since(start) //sidco:nondet benchmark measurement, reporting only
}

// funcWideClock is covered whole by its function-level directive.
//
//sidco:nondet deadline bookkeeping, never feeds training math
func funcWideClock() (time.Time, *time.Timer) {
	return time.Now(), time.NewTimer(time.Second)
}

func sleepIsFine() {
	time.Sleep(time.Millisecond)
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn draws from the shared unseeded stream`
}

// seededRand is the blessed idiom: the seed is explicit, methods on a
// *rand.Rand are deterministic given it.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func mapFloatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float accumulation inside map iteration is order-dependent`
	}
	return sum
}

// mapIntSum is exempt: integer addition is exact, so it commutes.
func mapIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside map iteration builds a randomly-ordered result`
	}
	return keys
}

// mapCollectThenSort is the recognised deterministic idiom: the
// appended slice is sorted after the loop.
func mapCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapPrint(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `Fprintf inside map iteration writes output in random order`
	}
}

func mapSend(ch chan<- string, m map[string]int) {
	for k := range m {
		ch <- k // want `channel send inside map iteration emits values in random order`
	}
}
