// Package errclass is the golden corpus for the errclass analyzer. It
// declares classified sentinels, so the analyzer self-scopes to it:
// every returned error must be classifiable (nil, propagation, a %w
// wrap, or a type with an Unwrap method) or carry a reasoned
// exemption.
package errclass

import (
	"errors"
	"fmt"
)

var (
	// ErrPeerLost is the recoverable-class sentinel.
	ErrPeerLost = errors.New("errclass: peer lost")
	// ErrClosed is the fatal-class sentinel.
	ErrClosed = errors.New("errclass: closed")
)

func wrapSentinel(peer int) error {
	return fmt.Errorf("errclass: recv from %d: %w", peer, ErrPeerLost)
}

func returnSentinel() error {
	return ErrClosed
}

func fresh() error {
	return errors.New("errclass: boom") // want `errors\.New returns an unclassified error`
}

func opaqueErrorf(n int) error {
	return fmt.Errorf("errclass: bad geometry %d", n) // want `fmt\.Errorf without %w wrapping an error operand`
}

func exemptLine(n int) error {
	return fmt.Errorf("errclass: %d chunks for %d nodes", n, n) //sidco:errclass caller misuse, deliberately fatal
}

// exemptFunc validates configuration; its opaque errors are fatal by
// design and the function-level directive covers them all.
//
//sidco:errclass config validation, fatal by design
func exemptFunc(n int) error {
	if n < 0 {
		return errors.New("errclass: negative")
	}
	return fmt.Errorf("errclass: odd %d", n)
}

// propagate returns an existing error value: classification is the
// producer's problem.
func propagate(err error) error {
	if err != nil {
		return err
	}
	return nil
}

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapped) Unwrap() error { return w.inner }

// viaType is classifiable: *wrapped has an Unwrap chain callers can
// walk to a sentinel.
func viaType(inner error) error {
	return &wrapped{inner: inner}
}

type opaque struct{ msg string }

func (o *opaque) Error() string { return o.msg }

func viaOpaqueType() error {
	return &opaque{msg: "errclass: nope"} // want `error type errclass\.opaque has no Unwrap method`
}
