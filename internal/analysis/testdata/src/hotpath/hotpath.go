// Package hotpath is the golden corpus for the hotpath analyzer: only
// functions marked //sidco:hotpath are checked, and inside them every
// syntactic allocation source must fire unless a reasoned //sidco:alloc
// covers it.
package hotpath

import (
	"errors"
	"fmt"
)

type enc struct {
	scratch []byte
}

// cold is unmarked: allocation is unconstrained off the hot path.
func cold(n int) []byte {
	return make([]byte, n)
}

func sink(v any) { _ = v }

// hot is the positive corpus: one finding per allocation source.
//
//sidco:hotpath
func hot(e *enc, n int, s string, f func()) error {
	b := make([]byte, n) // want `make allocates`
	p := new(int)        // want `new allocates`
	_ = append(b, 0)     // want `append to a non-scratch slice allocates its growth`
	_ = s + s            // want `string concatenation allocates`
	_ = []byte(s)        // want `string-to-slice conversion allocates`
	_ = string(b)        // want `\[\]byte/\[\]rune-to-string conversion allocates`
	_ = []int{1, 2}      // want `slice literal allocates its backing array`
	_ = map[int]int{}    // want `map literal allocates`
	_ = &enc{}           // want `&composite literal escapes to the heap`
	cb := func() {}      // want `closure literal allocates`
	go f()               // want `go statement allocates goroutine bookkeeping`
	_ = cb
	_ = p
	if n < 0 {
		return fmt.Errorf("hotpath: negative %d", n) // want `fmt\.Errorf allocates \(format machinery \+ boxed arguments\)`
	}
	return errors.New("hotpath: done") // want `errors\.New allocates; hoist to a package-level sentinel`
}

// boxing: interface conversions and interface-typed parameters box
// non-pointer-shaped values; pointers and constants do not.
//
//sidco:hotpath
func boxes(e *enc, n int) any {
	sink(n)       // want `passing int to an interface parameter boxes it on the heap`
	sink(e)       // pointer-shaped: fits the interface word
	sink(42)      // constant: boxed from a read-only static
	return any(n) // want `conversion to interface boxes a int on the heap`
}

// appendScratch is the blessed reuse idiom: the append lands in
// field-backed storage, so growth amortizes to zero.
//
//sidco:hotpath
func appendScratch(e *enc, v byte) {
	b := e.scratch[:0]
	b = append(b, v)
	e.scratch = b
}

// lazyInit carries a reasoned exemption for its one-time growth.
//
//sidco:hotpath
func lazyInit(e *enc, n int) {
	if cap(e.scratch) < n {
		e.scratch = make([]byte, n) //sidco:alloc one-time growth to the high-water mark
	}
}

// malformed shows that an exemption without a reason suppresses
// nothing and is itself reported.
//
//sidco:hotpath
func malformed(n int) []byte {
	return make([]byte, n) /* want `make allocates` `sidco:alloc directive is missing its reason` */ //sidco:alloc
}
