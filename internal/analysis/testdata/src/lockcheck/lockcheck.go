// Package lockcheck is the golden corpus for the lockcheck analyzer:
// fields annotated `// guarded by mu` may only be touched while the
// named mutex is held on every surviving path.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by mu
}

func bad(c *counter) int {
	return c.n // want `c\.n is guarded by mu, which is not held here`
}

func good(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// deferredUnlock releases at return, after every access in the body.
func deferredUnlock(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 0 {
		return c.n
	}
	return c.m
}

func earlyUnlock(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + c.n // want `c\.n is guarded by mu, which is not held here`
}

// unlockOnReturningBranch: the branch that released the lock left the
// function, so the fall-through path still holds it.
func unlockOnReturningBranch(c *counter, fast bool) int {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// unlockOnFallthroughBranch: one surviving path released the lock, so
// after the merge the mutex no longer counts as held.
func unlockOnFallthroughBranch(c *counter, fast bool) int {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
	}
	return c.n // want `c\.n is guarded by mu, which is not held here`
}

// lockedCaller runs with the mutex already held by its caller.
//
//sidco:locked mu caller holds the lock across the whole batch
func lockedCaller(c *counter) int {
	return c.n + c.m
}

func nolockRead(c *counter) int {
	return c.n //sidco:nolock approximate stats read, staleness is acceptable
}
