package traceview

import (
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Segment is one piece of a critical path: the window during which the
// named activity was the reason the step had not finished yet.
type Segment struct {
	// Kind is the binding activity's phase (send/recv/compute/compress),
	// or the Kind of the successor when Slack is set.
	Kind telemetry.SpanKind
	// Node owns the activity; for receives Peer is the sending rank the
	// receiver was waiting on — the straggler attribution edge.
	Node, Peer int32
	// Start and End bound the segment in global nanoseconds.
	Start, End float64
	// Slack marks an unattributed gap: no observed activity ended at
	// the moment the successor needed it (wall-clock runs only; the
	// virtual clock binds every start exactly).
	Slack bool
}

// CriticalPath is the longest chain of causally bound activities ending
// at a step's last event: the work that set the step's duration. Every
// other activity overlapped something on this chain.
type CriticalPath struct {
	// Step is the step the path was extracted for, -1 for all events.
	Step int64
	// StartNanos/EndNanos bound the path; TotalNanos is their
	// difference and equals the sum of all segment widths.
	StartNanos, EndNanos, TotalNanos float64
	// Segments in chronological order.
	Segments []Segment
	// ByKind sums non-slack segment time per phase.
	ByKind map[telemetry.SpanKind]float64
	// WaitOnRank sums critical-path receive time by the *sending* rank:
	// how long the path was blocked waiting for each peer's data — the
	// straggler attribution.
	WaitOnRank map[int32]float64
	// SlackNanos is the total unattributed gap time.
	SlackNanos float64
}

// laneFor maps an activity to the serialized resource it occupies on
// its node: the NIC transmit queue (sends), the clock lane (receives
// and compute — cluster.Instrumented advances one clock through both),
// or the compression pipeline lane.
type lane int

const (
	laneTx lane = iota
	laneClock
	lanePipe
	laneNone
)

func laneFor(k telemetry.SpanKind) lane {
	switch k {
	case telemetry.SpanSend:
		return laneTx
	case telemetry.SpanRecv, telemetry.SpanCompute:
		return laneClock
	case telemetry.SpanCompress:
		return lanePipe
	}
	return laneNone
}

// CriticalPath extracts the critical path of one step (or of the whole
// timeline when step < 0) by walking backward from the latest-ending
// activity. At every hop the predecessor is the event whose end equals
// the current activity's start: cluster.Instrumented computes each start
// as a max over resource-free times and message arrival, and stores the
// winning float bit-exactly, so on virtual timelines the binding
// predecessor matches with zero tolerance. A receive additionally binds
// to its paired send when the sender's start time is what gated it —
// that hop crosses ranks and is what attributes wait time to the
// straggler. On wall-clock timelines exact binding is impossible;
// unattributed gaps become Slack segments.
func (tl *Timeline) CriticalPath(step int64) (*CriticalPath, error) {
	// Filter to the step's schedulable activities and build per-node
	// lane orderings.
	var acts []int
	lanes := make(map[int32]*[3][]int)
	for i := range tl.Activities {
		a := &tl.Activities[i]
		l := laneFor(a.Kind)
		if l == laneNone || (step >= 0 && a.Step != step) {
			continue
		}
		acts = append(acts, i)
		nl := lanes[a.Node]
		if nl == nil {
			nl = &[3][]int{}
			lanes[a.Node] = nl
		}
		nl[l] = append(nl[l], i)
	}
	if len(acts) == 0 {
		return nil, fmt.Errorf("traceview: no schedulable activities for step %d", step)
	}
	for _, nl := range lanes {
		for l := range nl {
			ids := nl[l]
			sort.Slice(ids, func(x, y int) bool {
				ax, ay := &tl.Activities[ids[x]], &tl.Activities[ids[y]]
				if ax.End != ay.End {
					return ax.End < ay.End
				}
				return ids[x] < ids[y]
			})
		}
	}
	// Paired send of each receive activity, for the cross-rank hop.
	sendOfRecv := make(map[int]int)
	for _, m := range tl.Messages {
		if m.SendAct >= 0 && m.RecvAct >= 0 {
			sendOfRecv[m.RecvAct] = m.SendAct
		}
	}

	// Start from the latest-ending activity (prefer receives, then
	// lower node id, for a deterministic choice among exact ties).
	cur := acts[0]
	for _, i := range acts[1:] {
		a, b := &tl.Activities[i], &tl.Activities[cur]
		switch {
		case a.End > b.End:
			cur = i
		case a.End == b.End:
			aRecv, bRecv := a.Kind == telemetry.SpanRecv, b.Kind == telemetry.SpanRecv
			if (aRecv && !bRecv) || (aRecv == bRecv && (a.Node < b.Node || (a.Node == b.Node && i < cur))) {
				cur = i
			}
		}
	}

	cp := &CriticalPath{
		Step:       step,
		EndNanos:   tl.Activities[cur].End,
		ByKind:     make(map[telemetry.SpanKind]float64),
		WaitOnRank: make(map[int32]float64),
	}
	frontier := tl.Activities[cur].End

	// latestAtOrBefore returns the lane activity with the greatest end
	// ≤ t, excluding the current activity itself.
	latestAtOrBefore := func(node int32, l lane, t float64, exclude int) (int, bool) {
		nl := lanes[node]
		if nl == nil {
			return 0, false
		}
		ids := nl[l]
		for x := len(ids) - 1; x >= 0; x-- {
			if ids[x] == exclude {
				continue
			}
			if tl.Activities[ids[x]].End <= t {
				return ids[x], true
			}
		}
		return 0, false
	}

	for hops := 0; ; hops++ {
		if hops > 2*len(acts)+4 {
			return nil, fmt.Errorf("traceview: critical-path walk did not terminate (cycle in bindings?)")
		}
		a := &tl.Activities[cur]
		target := a.Start

		// Candidate predecessors: the activity's own lane plus the
		// cross-lane gates Instrumented's start computation maxes over.
		type cand struct {
			idx     int
			ready   float64
			viaSend bool
		}
		var cands []cand
		add := func(node int32, l lane) {
			if idx, ok := latestAtOrBefore(node, l, target, cur); ok {
				cands = append(cands, cand{idx, tl.Activities[idx].End, false})
			}
		}
		switch a.Kind {
		case telemetry.SpanSend:
			add(a.Node, laneTx)    // previous transmit finishing
			add(a.Node, laneClock) // the node's clock reaching the send
			add(a.Node, lanePipe)  // WaitFor on the chunk's compression
		case telemetry.SpanRecv:
			add(a.Node, laneClock) // rx chain / clock
			if s, ok := sendOfRecv[cur]; ok {
				sa := &tl.Activities[s]
				if sa.Start <= target {
					cands = append(cands, cand{s, sa.Start, true})
				}
			}
		case telemetry.SpanCompute:
			add(a.Node, laneClock)
		case telemetry.SpanCompress:
			add(a.Node, lanePipe)
			add(a.Node, laneClock) // lane start gated by the clock
		}

		best, found := cand{}, false
		for _, c := range cands {
			if !found || c.ready > best.ready ||
				(c.ready == best.ready && ((c.viaSend && !best.viaSend) ||
					(c.viaSend == best.viaSend && c.idx < best.idx))) {
				best, found = c, true
			}
		}

		// Attribute [start, frontier] to the current activity; the
		// frontier then retreats to the binding predecessor's ready
		// time, with any gap recorded as slack.
		if frontier > a.Start {
			cp.Segments = append(cp.Segments, Segment{
				Kind: a.Kind, Node: a.Node, Peer: a.Peer,
				Start: a.Start, End: frontier,
			})
			cp.ByKind[a.Kind] += frontier - a.Start
			if a.Kind == telemetry.SpanRecv && a.Peer >= 0 {
				cp.WaitOnRank[a.Peer] += frontier - a.Start
			}
		}
		if !found {
			cp.StartNanos = a.Start
			break
		}
		if a.Start > best.ready {
			cp.Segments = append(cp.Segments, Segment{
				Kind: a.Kind, Node: a.Node, Peer: a.Peer,
				Start: best.ready, End: a.Start, Slack: true,
			})
			cp.SlackNanos += a.Start - best.ready
		}
		frontier = min(frontier, best.ready)
		cur = best.idx
	}

	// The walk emitted segments newest-first; flip to chronological.
	for i, j := 0, len(cp.Segments)-1; i < j; i, j = i+1, j-1 {
		cp.Segments[i], cp.Segments[j] = cp.Segments[j], cp.Segments[i]
	}
	cp.TotalNanos = cp.EndNanos - cp.StartNanos
	return cp, nil
}

// Rollup is one node's summed busy time per phase.
type Rollup struct {
	// Node is the rank (or the PS server's node id).
	Node int32
	// Busy sums activity durations per phase in nanoseconds.
	Busy map[telemetry.SpanKind]float64
	// Sends/Recvs count message activities; SentBytes/RecvBytes sum
	// their payloads.
	Sends, Recvs         int
	SentBytes, RecvBytes int64
}

// Rollups sums per-node, per-phase busy time over the step (all events
// when step < 0), sorted by node id — the global per-phase view the
// report prints.
func (tl *Timeline) Rollups(step int64) []Rollup {
	byNode := make(map[int32]*Rollup)
	for i := range tl.Activities {
		a := &tl.Activities[i]
		if a.Node < 0 || (step >= 0 && a.Step != step) {
			continue
		}
		r := byNode[a.Node]
		if r == nil {
			r = &Rollup{Node: a.Node, Busy: make(map[telemetry.SpanKind]float64)}
			byNode[a.Node] = r
		}
		r.Busy[a.Kind] += a.Dur()
		switch a.Kind {
		case telemetry.SpanSend:
			r.Sends++
			r.SentBytes += a.Bytes
		case telemetry.SpanRecv:
			r.Recvs++
			r.RecvBytes += a.Bytes
		}
	}
	out := make([]Rollup, 0, len(byNode))
	for _, r := range byNode {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// RecvWaitMatrix sums receive-side window time per (receiver, sender)
// link over the step (all steps when step < 0). On wall timelines the
// windows are the blocked time inside Recv — straggler plus network
// wait; on virtual timelines they are NIC receive occupancy (use the
// critical path's WaitOnRank for gating attribution there).
func (tl *Timeline) RecvWaitMatrix(step int64) map[[2]int32]float64 {
	m := make(map[[2]int32]float64)
	for _, msg := range tl.Messages {
		if !msg.HasRecv || (step >= 0 && msg.Step != step) {
			continue
		}
		m[[2]int32{msg.To, msg.From}] += msg.RecvEnd - msg.RecvStart
	}
	return m
}
