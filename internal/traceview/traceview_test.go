package traceview

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

const workers = 4

// uniformSparseInputs builds per-worker selections with identical index
// supports (every stride-th index) and distinct values: payload sizes
// are then identical across workers and chunks, the lockstep-uniform
// regime where cluster.Instrumented's virtual clock and netsim's closed
// forms describe the same execution.
func uniformSparseInputs(t *testing.T, dim, stride int) []dist.ExchangeInput {
	t.Helper()
	var idx []int32
	for i := 0; i < dim; i += stride {
		idx = append(idx, int32(i))
	}
	ins := make([]dist.ExchangeInput, workers)
	for w := range ins {
		vals := make([]float64, len(idx))
		dense := make([]float64, dim)
		for i := range vals {
			vals[i] = float64(w+1) + float64(i%7)*0.5
			dense[idx[i]] = vals[i]
		}
		sp, err := tensor.NewSparse(dim, append([]int32(nil), idx...), vals)
		if err != nil {
			t.Fatal(err)
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense, Sparse: sp}
	}
	return ins
}

func denseInputs(dim int) []dist.ExchangeInput {
	ins := make([]dist.ExchangeInput, workers)
	for w := range ins {
		dense := make([]float64, dim)
		for i := range dense {
			dense[i] = float64(w+1) * float64(i+1)
		}
		ins[w] = dist.ExchangeInput{Worker: w, Dense: dense}
	}
	return ins
}

// runEngineTrace runs iters exchanges on the chan-transport engine over
// the dyadic fabric with telemetry captured as a JSONL stream, and
// returns the decoded stream plus the transport's virtual elapsed time.
func runEngineTrace(t *testing.T, cfg cluster.Config, ins []dist.ExchangeInput, dim, iters int) (*Stream, float64) {
	t.Helper()
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	cfg.Workers = workers
	cfg.Scenario = cluster.ScenarioFromNetwork(netsim.DyadicLab(workers))
	cfg.Telemetry = telemetry.New(jl)
	e, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := make([]float64, dim)
	for it := 0; it < iters; it++ {
		if err := e.Exchange(it, ins, agg); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := e.Transport().Elapsed()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	meta, events, err := telemetry.DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return &Stream{Meta: meta, Events: events}, elapsed
}

func assemble1(t *testing.T, s *Stream) *Timeline {
	t.Helper()
	tl, err := Assemble([]*Stream{s})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Virtual {
		t.Fatal("engine run with a Scenario should assemble in virtual mode")
	}
	return tl
}

// requireAllPaired asserts the ISSUE invariant: every gradient send is
// matched with exactly one receive, and the total equals the netsim
// message formula.
func requireAllPaired(t *testing.T, tl *Timeline, wantPairs int) {
	t.Helper()
	paired, sendOnly, recvOnly := tl.PairStats(false)
	if sendOnly != 0 || recvOnly != 0 {
		t.Fatalf("unpaired messages: %d send-only, %d recv-only", sendOnly, recvOnly)
	}
	if paired != wantPairs {
		t.Fatalf("paired messages = %d, want %d (netsim formula)", paired, wantPairs)
	}
}

// requireExactPath asserts bitwise equality between the assembled
// critical path and the closed form, in the uniform nanos domain.
func requireExactPath(t *testing.T, tl *Timeline, step int64, wantNanos float64) *CriticalPath {
	t.Helper()
	cp, err := tl.CriticalPath(step)
	if err != nil {
		t.Fatal(err)
	}
	if cp.TotalNanos != wantNanos {
		t.Fatalf("step %d critical path = %v ns, want exactly %v ns (diff %v)",
			step, cp.TotalNanos, wantNanos, cp.TotalNanos-wantNanos)
	}
	if cp.SlackNanos != 0 {
		t.Fatalf("virtual critical path has %v ns slack; every hop must bind exactly", cp.SlackNanos)
	}
	var sum float64
	for _, seg := range cp.Segments {
		if seg.End < seg.Start {
			t.Fatalf("segment %+v runs backward", seg)
		}
		sum += seg.End - seg.Start
	}
	if sum != cp.TotalNanos {
		t.Fatalf("segments sum to %v ns, path total %v ns — the path has gaps or overlaps", sum, cp.TotalNanos)
	}
	return cp
}

// linkMessages returns the gradient messages of one directed link in
// seq order (Assemble sorts by (from, to, seq)).
func linkMessages(tl *Timeline, from, to int32) []Message {
	var out []Message
	for _, m := range tl.Messages {
		if m.From == from && m.To == to {
			out = append(out, m)
		}
	}
	return out
}

func TestCriticalPathRingExactAndPerStep(t *testing.T) {
	const dim, iters = 1024, 2
	s, elapsed := runEngineTrace(t, cluster.Config{Collective: netsim.CollectiveRing}, denseInputs(dim), dim, iters)
	tl := assemble1(t, s)
	net := netsim.DyadicLab(workers)

	requireAllPaired(t, tl, iters*workers*netsim.RingMessages(workers))
	for _, m := range tl.Messages {
		if m.Bytes != 8*dim/workers {
			t.Fatalf("ring message carries %d bytes, want %d", m.Bytes, 8*dim/workers)
		}
	}
	if len(tl.Steps) != iters || tl.Steps[0] != 0 || tl.Steps[1] != 1 {
		t.Fatalf("steps = %v, want [0 1]", tl.Steps)
	}

	f := net.AllReduceDense(8 * dim)
	// Step 0 starts at virtual zero; step 1's bounds are both sums of
	// exact dyadic step times, so the nanos conversion of each bound is
	// the same single rounding the engine applied.
	cp0 := requireExactPath(t, tl, 0, f*1e9)
	requireExactPath(t, tl, 1, 2*f*1e9-f*1e9)
	cp1, err := tl.CriticalPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if cp1.EndNanos != elapsed*1e9 {
		t.Fatalf("step 1 path ends at %v ns, transport elapsed %v ns", cp1.EndNanos, elapsed*1e9)
	}
	if cp0.ByKind[telemetry.SpanSend]+cp0.ByKind[telemetry.SpanRecv] != cp0.TotalNanos {
		t.Fatalf("ring path should be pure communication, got %+v", cp0.ByKind)
	}
}

func TestCriticalPathRingWithComputeExact(t *testing.T) {
	const dim = 1024
	computeSec := 1.0 / (1 << 10)
	s, elapsed := runEngineTrace(t, cluster.Config{
		Collective: netsim.CollectiveRing, ComputeSec: computeSec,
	}, denseInputs(dim), dim, 1)
	tl := assemble1(t, s)
	net := netsim.DyadicLab(workers)

	want := (computeSec + net.AllReduceDense(8*dim)) * 1e9
	cp := requireExactPath(t, tl, 0, want)
	if cp.EndNanos != elapsed*1e9 {
		t.Fatalf("path end %v != elapsed %v", cp.EndNanos, elapsed*1e9)
	}
	if cp.ByKind[telemetry.SpanCompute] != computeSec*1e9 {
		t.Fatalf("compute on path = %v ns, want %v ns", cp.ByKind[telemetry.SpanCompute], computeSec*1e9)
	}
}

func TestCriticalPathAllGatherExact(t *testing.T) {
	const dim = 1024
	s, elapsed := runEngineTrace(t, cluster.Config{
		Collective: netsim.CollectiveAllGather,
	}, uniformSparseInputs(t, dim, 4), dim, 1)
	tl := assemble1(t, s)
	net := netsim.DyadicLab(workers)

	requireAllPaired(t, tl, workers*netsim.AllGatherMessages(workers))
	b := tl.Messages[0].Bytes
	for _, m := range tl.Messages {
		if m.Bytes != b {
			t.Fatalf("payloads not uniform: %d vs %d bytes", m.Bytes, b)
		}
	}
	cp := requireExactPath(t, tl, 0, net.AllGatherSparse(int(b))*1e9)
	if cp.EndNanos != elapsed*1e9 {
		t.Fatalf("path end %v != elapsed %v", cp.EndNanos, elapsed*1e9)
	}
}

// chunkSizes reads the per-chunk payload sizes off the assembled
// timeline: on the 0→1 ring link, chunk c's all-gather occupies seqs
// [c(N-1), (c+1)(N-1)), and uniform inputs make every message of a
// chunk the same size.
func chunkSizes(t *testing.T, tl *Timeline, chunks int) []int {
	t.Helper()
	msgs := linkMessages(tl, 0, 1)
	perChunk := workers - 1
	if len(msgs) != chunks*perChunk {
		t.Fatalf("link 0->1 carries %d messages, want %d", len(msgs), chunks*perChunk)
	}
	out := make([]int, chunks)
	for c := 0; c < chunks; c++ {
		b := msgs[c*perChunk].Bytes
		for _, m := range msgs[c*perChunk : (c+1)*perChunk] {
			if m.Bytes != b {
				t.Fatalf("chunk %d payloads not uniform: %d vs %d", c, m.Bytes, b)
			}
		}
		out[c] = int(b)
	}
	return out
}

func TestCriticalPathChunkedAllGatherExact(t *testing.T) {
	const dim, chunks = 1024, 8
	s, elapsed := runEngineTrace(t, cluster.Config{
		Collective: netsim.CollectiveAllGather, Chunks: chunks,
	}, uniformSparseInputs(t, dim, 4), dim, 1)
	tl := assemble1(t, s)
	net := netsim.DyadicLab(workers)

	requireAllPaired(t, tl, workers*netsim.ChunkedAllGatherMessages(workers, chunks))
	want := net.ChunkedAllGatherSparse(chunkSizes(t, tl, chunks), 0) * 1e9
	cp := requireExactPath(t, tl, 0, want)
	if cp.EndNanos != elapsed*1e9 {
		t.Fatalf("path end %v != elapsed %v", cp.EndNanos, elapsed*1e9)
	}
}

func TestCriticalPathChunkedCompressExact(t *testing.T) {
	const dim, chunks = 1024, 4
	compressSec := 1.0 / (1 << 14) // per chunk: 2^-16 s, exactly dyadic
	s, elapsed := runEngineTrace(t, cluster.Config{
		Collective: netsim.CollectiveAllGather, Chunks: chunks, CompressSec: compressSec,
	}, uniformSparseInputs(t, dim, 4), dim, 1)
	tl := assemble1(t, s)
	net := netsim.DyadicLab(workers)

	sizes := chunkSizes(t, tl, chunks)
	perChunk := compressSec / chunks
	// The closed form and the engine follow the same recurrence only in
	// the communication-dominant regime (each chunk's compression hides
	// entirely behind the previous chunk's collective); make sure the
	// test stays in it.
	for _, b := range sizes {
		if comm := net.AllGatherSparse(b); perChunk > comm {
			t.Fatalf("test setup leaves the comm-dominant regime: compress %v > comm %v", perChunk, comm)
		}
	}
	want := net.ChunkedAllGatherSparse(sizes, perChunk) * 1e9
	cp := requireExactPath(t, tl, 0, want)
	if cp.EndNanos != elapsed*1e9 {
		t.Fatalf("path end %v != elapsed %v", cp.EndNanos, elapsed*1e9)
	}
	if cp.ByKind[telemetry.SpanCompress] == 0 {
		t.Fatal("chunk 0's compression gates the first send; the path must cross the compress lane")
	}
}

func TestCriticalPathParameterServerExact(t *testing.T) {
	const dim = 1024
	srv := int32(workers)
	s, elapsed := runEngineTrace(t, cluster.Config{
		Collective: netsim.CollectivePS,
	}, uniformSparseInputs(t, dim, 4), dim, 1)
	tl := assemble1(t, s)
	net := netsim.DyadicLab(workers)

	requireAllPaired(t, tl, netsim.PSMessages(workers))
	var push, pull int64 = -1, -1
	for _, m := range tl.Messages {
		switch {
		case m.To == srv:
			if push >= 0 && m.Bytes != push {
				t.Fatalf("push payloads not uniform: %d vs %d", m.Bytes, push)
			}
			push = m.Bytes
		case m.From == srv:
			if pull >= 0 && m.Bytes != pull {
				t.Fatalf("pull payloads not uniform: %d vs %d", m.Bytes, pull)
			}
			pull = m.Bytes
		default:
			t.Fatalf("unexpected worker-to-worker message %d->%d in PS mode", m.From, m.To)
		}
	}
	want := net.ParameterServer(int(push), int(pull)) * 1e9
	cp := requireExactPath(t, tl, 0, want)
	if cp.EndNanos != elapsed*1e9 {
		t.Fatalf("path end %v != elapsed %v", cp.EndNanos, elapsed*1e9)
	}
	// The last pull's wait attributes to the server — the bottleneck
	// rank of the PS schedule.
	if cp.WaitOnRank[srv] == 0 {
		t.Fatalf("PS critical path should wait on the server, got %+v", cp.WaitOnRank)
	}
}

func TestRollupsAndReport(t *testing.T) {
	const dim = 1024
	s, _ := runEngineTrace(t, cluster.Config{
		Collective: netsim.CollectiveAllGather, Chunks: 4, CompressSec: 1.0 / (1 << 14),
	}, uniformSparseInputs(t, dim, 4), dim, 2)
	tl := assemble1(t, s)

	rolls := tl.Rollups(-1)
	if len(rolls) != workers {
		t.Fatalf("rollups cover %d nodes, want %d", len(rolls), workers)
	}
	for _, r := range rolls {
		if r.Sends != 2*netsim.ChunkedAllGatherMessages(workers, 4) {
			t.Errorf("node %d sends = %d", r.Node, r.Sends)
		}
		if r.Busy[telemetry.SpanSend] <= 0 || r.Busy[telemetry.SpanRecv] <= 0 || r.Busy[telemetry.SpanCompress] <= 0 {
			t.Errorf("node %d busy rollup missing phases: %+v", r.Node, r.Busy)
		}
	}
	if m := tl.RecvWaitMatrix(0); len(m) == 0 {
		t.Error("recv matrix empty")
	}

	var rep strings.Builder
	if err := WriteReport(&rep, tl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"virtual", "critical path:", "step 0", "step 1", "paired"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
}
