package traceview

import (
	"math"
	"testing"

	"repro/internal/telemetry"
)

// synthetic clock geometry: global times are ground truth, and each
// stream records local = global − offset. Alignment must recover the
// offsets from message constraints alone, within half the minimum
// round-trip of the probe traffic.
const (
	off1 = 5e6 // stream 1 (node 1) runs 5ms behind the global axis
	off2 = 2e6 // stream 2 (node 2), reachable only through node 1
)

func counterEvt(k telemetry.CounterKind, from, to int32, seq, ts int64) telemetry.Event {
	return telemetry.Event{
		WallNanos: ts, Type: telemetry.EventCounter, Counter: k,
		Node: from, Peer: to, Chunk: -1, Step: 0, Seq: seq, Value: 64,
	}
}

// skewStreams builds three wall-clock streams exchanging wire traffic
// 0↔1 and gradient traffic 1↔2, with known clock offsets and one-way
// delays.
func skewStreams() []*Stream {
	s0 := &Stream{Meta: telemetry.Meta{Schema: telemetry.SchemaVersion, Node: 0}}
	s1 := &Stream{Meta: telemetry.Meta{Schema: telemetry.SchemaVersion, Node: 1}}
	s2 := &Stream{Meta: telemetry.Meta{Schema: telemetry.SchemaVersion, Node: 2}}

	// 0→1 wire frames: delays 40/80/120 µs.
	for i, m := range []struct{ g, d int64 }{{1e6, 40e3}, {2e6, 80e3}, {3e6, 120e3}} {
		s0.Events = append(s0.Events, counterEvt(telemetry.CounterWireSentBytes, 0, 1, int64(i), m.g))
		s1.Events = append(s1.Events, counterEvt(telemetry.CounterWireRecvBytes, 0, 1, int64(i), m.g+m.d-off1))
	}
	// 1→0 wire frames: delays 30/60 µs.
	for i, m := range []struct{ g, d int64 }{{15e5, 30e3}, {25e5, 60e3}} {
		s1.Events = append(s1.Events, counterEvt(telemetry.CounterWireSentBytes, 1, 0, int64(i), m.g-off1))
		s0.Events = append(s0.Events, counterEvt(telemetry.CounterWireRecvBytes, 1, 0, int64(i), m.g+m.d))
	}
	// 1→2 gradient messages: delays 50/90 µs.
	for i, m := range []struct{ g, d int64 }{{4e6, 50e3}, {5e6, 90e3}} {
		s1.Events = append(s1.Events, counterEvt(telemetry.CounterSentMessages, 1, 2, int64(i), m.g-off1))
		s2.Events = append(s2.Events, counterEvt(telemetry.CounterRecvMessages, 1, 2, int64(i), m.g+m.d-off2))
	}
	// 2→1 gradient message: delay 70 µs.
	s2.Events = append(s2.Events, counterEvt(telemetry.CounterSentMessages, 2, 1, 0, 45e5-off2))
	s1.Events = append(s1.Events, counterEvt(telemetry.CounterRecvMessages, 2, 1, 0, 45e5+70e3-off1))
	return []*Stream{s0, s1, s2}
}

func TestClockSkewRecovery(t *testing.T) {
	streams := skewStreams()
	tl, err := Assemble(streams)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Virtual {
		t.Fatal("counter-only streams must assemble in wall mode")
	}
	if streams[0].OffsetNanos != 0 || streams[0].SkewBoundNanos != 0 {
		t.Fatalf("stream 0 is the reference axis, got offset %v ± %v", streams[0].OffsetNanos, streams[0].SkewBoundNanos)
	}
	// Per-hop error is half the asymmetry of the minimum one-way
	// delays; the bound is half the minimum RTT (the handshake RTT
	// bound), accumulating along the spanning tree.
	cases := []struct {
		stream    int
		trueOff   float64
		wantOff   float64
		wantBound float64
	}{
		{1, off1, off1 - 5e3, 35e3},
		{2, off2, off2 + 5e3, 35e3 + 60e3},
	}
	for _, c := range cases {
		s := streams[c.stream]
		if s.OffsetNanos != c.wantOff {
			t.Errorf("stream %d offset = %v, want midpoint estimate %v", c.stream, s.OffsetNanos, c.wantOff)
		}
		if s.SkewBoundNanos != c.wantBound {
			t.Errorf("stream %d skew bound = %v, want %v", c.stream, s.SkewBoundNanos, c.wantBound)
		}
		if err := math.Abs(s.OffsetNanos - c.trueOff); err > s.SkewBoundNanos {
			t.Errorf("stream %d offset error %v exceeds its own bound %v", c.stream, err, s.SkewBoundNanos)
		}
	}

	// After alignment, causality must hold on every paired message:
	// global receive at or after global send.
	if p, so, ro := tl.PairStats(true); p != 5 || so != 0 || ro != 0 {
		t.Fatalf("wire pairs = (%d,%d,%d), want (5,0,0)", p, so, ro)
	}
	if p, so, ro := tl.PairStats(false); p != 3 || so != 0 || ro != 0 {
		t.Fatalf("gradient pairs = (%d,%d,%d), want (3,0,0)", p, so, ro)
	}
	for _, msgs := range [][]Message{tl.Messages, tl.WireMessages} {
		for _, m := range msgs {
			if m.HasSend && m.HasRecv && m.RecvEnd < m.SendStart {
				t.Errorf("message %d->%d seq %d received %v ns before it was sent", m.From, m.To, m.Seq, m.SendStart-m.RecvEnd)
			}
		}
	}
}

// TestClockSkewUnreachableStream pins the degraded mode: a stream with
// no paired traffic to the rest cannot be aligned and must say so
// rather than silently claim offset 0 is meaningful.
func TestClockSkewUnreachableStream(t *testing.T) {
	streams := skewStreams()[:2]
	lone := &Stream{Meta: telemetry.Meta{Schema: telemetry.SchemaVersion, Node: 9}}
	lone.Events = append(lone.Events, counterEvt(telemetry.CounterWireSentBytes, 9, 8, 0, 1e6))
	streams = append(streams, lone)
	if _, err := Assemble(streams); err != nil {
		t.Fatal(err)
	}
	if lone.SkewBoundNanos != -1 {
		t.Fatalf("unreachable stream should report SkewBoundNanos -1, got %v", lone.SkewBoundNanos)
	}
}
