// Package traceview assembles per-rank telemetry JSONL streams into one
// merged global timeline and analyzes it: send/recv pairing by per-link
// sequence number, per-rank clock alignment, per-step critical-path
// extraction, straggler attribution, per-phase rollups, and export to
// Chrome trace-event JSON (Perfetto-loadable) and a plaintext report.
//
// Two time domains exist. Engine runs with a Scenario carry EventVirtual
// records on cluster.Instrumented's alpha-beta clock; assembly then works
// purely in virtual nanoseconds, and on a dyadic fabric
// (netsim.DyadicLab) the assembled critical path equals netsim's closed
// forms exactly. Real deployments carry only wall-clock counters; assembly
// then estimates per-rank monotonic-clock offsets from paired messages
// (each i→j message proves off_j − off_i ≥ sendTS_i − recvTS_j) and the
// timeline is wall nanoseconds on rank 0's axis, accurate to within half
// the minimum round-trip between ranks.
package traceview

import (
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/telemetry"
)

// Stream is one rank's decoded telemetry stream plus the clock
// alignment Assemble computed for it.
type Stream struct {
	// Meta is the stream's leading self-description record.
	Meta telemetry.Meta
	// Events are the decoded records in emission order.
	Events []telemetry.Event
	// OffsetNanos is added to this stream's wall timestamps to place
	// them on the global (stream 0) axis. Zero for stream 0 and in
	// virtual mode (one shared virtual clock).
	OffsetNanos float64
	// SkewBoundNanos bounds the offset estimation error: half the
	// width of the feasible interval the message constraints leave,
	// accumulated along the alignment spanning tree. -1 when the
	// stream could not be aligned (no paired messages reach it).
	SkewBoundNanos float64
}

// ReadFile decodes one telemetry JSONL file into a Stream.
func ReadFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	meta, events, err := telemetry.DecodeJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Stream{Meta: meta, Events: events}, nil
}

// Activity is one busy window on the global timeline: a span, a virtual
// send/recv/compute/compress window, or (wall mode) a message event
// reconstructed from counters.
type Activity struct {
	// Kind is the phase; sends and receives use SpanSend/SpanRecv.
	Kind telemetry.SpanKind
	// Node is the owning node; Peer the link peer for send/recv
	// (send: Peer=to, recv: Peer=from), else -1.
	Node, Peer int32
	// Chunk is the pipeline chunk, -1 when not chunked.
	Chunk int32
	// Step is the training iteration, -1 when unscoped.
	Step int64
	// Seq is the link sequence number for send/recv, else -1.
	Seq int64
	// Bytes is the payload size for send/recv, else 0.
	Bytes int64
	// Start and End bound the window in global nanoseconds.
	Start, End float64
	// Stream indexes Timeline.Streams.
	Stream int
}

// Dur returns the window length in nanoseconds.
func (a Activity) Dur() float64 { return a.End - a.Start }

// Message is one paired (or half-paired) directed message.
type Message struct {
	// From and To are the sending and receiving node ids.
	From, To int32
	// Seq is the per-directed-link sequence number.
	Seq int64
	// Step is the training iteration the message belongs to, -1 for
	// wire-level traffic.
	Step int64
	// Bytes is the payload size (gradient) or frame size (wire).
	Bytes int64
	// Wire marks raw TCP traffic (frames + handshakes) as opposed to
	// gradient-layer messages.
	Wire bool
	// HasSend/HasRecv say which sides were observed.
	HasSend, HasRecv bool
	// SendStream/RecvStream index Timeline.Streams, -1 when unseen.
	SendStream, RecvStream int
	// SendStart..RecvEnd bound the two sides in global nanoseconds.
	// Wall mode has point sends (SendStart == SendEnd).
	SendStart, SendEnd, RecvStart, RecvEnd float64
	// SendAct/RecvAct index Timeline.Activities, -1 when the side has
	// no activity (wire traffic never does).
	SendAct, RecvAct int
}

// Timeline is the assembled global view of one run.
type Timeline struct {
	// Virtual is true when the run carries EventVirtual records; all
	// times are then virtual nanoseconds (exact on a dyadic fabric).
	Virtual bool
	// Streams are the inputs, with their computed clock offsets.
	Streams []*Stream
	// Activities are all busy windows, sorted by Start.
	Activities []Activity
	// Messages are the gradient-layer messages, sorted by (From, To,
	// Seq).
	Messages []Message
	// WireMessages are raw TCP frames and handshakes, same order.
	WireMessages []Message
	// Steps are the distinct step ids (≥ 0) seen on activities and
	// messages, ascending.
	Steps []int64
}

// PairStats counts pairing outcomes over the chosen message layer.
func (tl *Timeline) PairStats(wire bool) (paired, sendOnly, recvOnly int) {
	msgs := tl.Messages
	if wire {
		msgs = tl.WireMessages
	}
	for _, m := range msgs {
		switch {
		case m.HasSend && m.HasRecv:
			paired++
		case m.HasSend:
			sendOnly++
		default:
			recvOnly++
		}
	}
	return
}

// pairKey identifies one directed message within a layer.
type pairKey struct {
	from, to int32
	seq      int64
}

// msgDraft accumulates the per-side observations of one message before
// it becomes a Message.
type msgDraft struct {
	m        Message
	sendStep int64
	recvStep int64
}

// sortedPairKeys returns the draft map's keys in (from, to, seq) order
// — the canonical message order every map-derived output follows so
// assembly is deterministic.
func sortedPairKeys(m map[pairKey]*msgDraft) []pairKey {
	keys := make([]pairKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.seq < b.seq
	})
	return keys
}

// Assemble merges the streams into one global timeline. It pairs sends
// with receives by (from, to, seq) — exact, because every transport in
// this repo is FIFO per directed link — estimates per-stream clock
// offsets in wall mode, and validates cross-side consistency (paired
// byte counts and steps must agree).
func Assemble(streams []*Stream) (*Timeline, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("traceview: no streams")
	}
	tl := &Timeline{Streams: streams}
	for _, s := range streams {
		for i := range s.Events {
			if s.Events[i].Type == telemetry.EventVirtual {
				tl.Virtual = true
			}
		}
	}

	if err := alignClocks(streams, tl.Virtual); err != nil {
		return nil, err
	}

	grad := make(map[pairKey]*msgDraft)
	wire := make(map[pairKey]*msgDraft)
	draft := func(m map[pairKey]*msgDraft, k pairKey, isWire bool) *msgDraft {
		d := m[k]
		if d == nil {
			d = &msgDraft{m: Message{
				From: k.from, To: k.to, Seq: k.seq, Step: -1, Wire: isWire,
				SendStream: -1, RecvStream: -1, SendAct: -1, RecvAct: -1,
			}, sendStep: -1, recvStep: -1}
			m[k] = d
		}
		return d
	}

	for si, s := range streams {
		off := s.OffsetNanos
		for i := range s.Events {
			e := &s.Events[i]
			switch e.Type {
			case telemetry.EventVirtual:
				a := Activity{
					Kind: e.Span, Node: e.Node, Peer: e.Peer, Chunk: e.Chunk,
					Step: e.Step, Seq: e.Seq, Bytes: e.Value,
					Start: e.VStartNanos, End: e.VEndNanos,
					Stream: si,
				}
				idx := len(tl.Activities)
				tl.Activities = append(tl.Activities, a)
				switch e.Span {
				case telemetry.SpanSend:
					d := draft(grad, pairKey{e.Node, e.Peer, e.Seq}, false)
					d.m.HasSend, d.m.SendStream, d.m.SendAct = true, si, idx
					d.m.SendStart, d.m.SendEnd = a.Start, a.End
					d.m.Bytes, d.sendStep = e.Value, e.Step
				case telemetry.SpanRecv:
					d := draft(grad, pairKey{e.Peer, e.Node, e.Seq}, false)
					d.m.HasRecv, d.m.RecvStream, d.m.RecvAct = true, si, idx
					d.m.RecvStart, d.m.RecvEnd = a.Start, a.End
					d.recvStep = e.Step
					if !d.m.HasSend {
						d.m.Bytes = e.Value
					}
				}
			case telemetry.EventSpan:
				if tl.Virtual {
					// Wall spans live on a different axis than the
					// virtual clock; they carry no virtual position.
					continue
				}
				ts := float64(e.WallNanos) + off
				tl.Activities = append(tl.Activities, Activity{
					Kind: e.Span, Node: e.Node, Peer: e.Peer, Chunk: e.Chunk,
					Step: e.Step, Seq: -1,
					Start: ts - float64(e.DurNanos), End: ts, Stream: si,
				})
			case telemetry.EventCounter:
				if e.Seq < 0 {
					continue // plain counter, not a link message
				}
				ts := float64(e.WallNanos) + off
				switch e.Counter {
				case telemetry.CounterWireSentBytes:
					d := draft(wire, pairKey{e.Node, e.Peer, e.Seq}, true)
					d.m.HasSend, d.m.SendStream = true, si
					d.m.SendStart, d.m.SendEnd = ts, ts
					d.m.Bytes = e.Value
				case telemetry.CounterWireRecvBytes:
					d := draft(wire, pairKey{e.Node, e.Peer, e.Seq}, true)
					d.m.HasRecv, d.m.RecvStream = true, si
					d.m.RecvStart, d.m.RecvEnd = ts, ts
					if !d.m.HasSend {
						d.m.Bytes = e.Value
					}
				case telemetry.CounterSentMessages:
					d := draft(grad, pairKey{e.Node, e.Peer, e.Seq}, false)
					d.m.HasSend, d.m.SendStream = true, si
					d.m.SendStart, d.m.SendEnd = ts, ts
					d.sendStep = e.Step
				case telemetry.CounterSentBytes:
					d := draft(grad, pairKey{e.Node, e.Peer, e.Seq}, false)
					d.m.Bytes = e.Value
				case telemetry.CounterRecvMessages:
					d := draft(grad, pairKey{e.Node, e.Peer, e.Seq}, false)
					d.m.HasRecv, d.m.RecvStream = true, si
					d.m.RecvStart, d.m.RecvEnd = ts, ts
					d.recvStep = e.Step
				case telemetry.CounterRecvWaitNanos:
					// (Node=to, Peer=from): the blocked window inside
					// Recv, ending at the counter's timestamp.
					d := draft(grad, pairKey{e.Peer, e.Node, e.Seq}, false)
					d.m.RecvStart = ts - float64(e.Value)
					d.m.RecvEnd = ts
				}
			}
		}
	}

	// In wall mode, materialize gradient messages as point/window
	// activities so the timeline and Chrome export show them. Sorted
	// key order keeps equal-Start activities (the SliceStable below
	// preserves insertion order on ties) deterministic across runs.
	if !tl.Virtual {
		for _, k := range sortedPairKeys(grad) {
			d := grad[k]
			if d.m.HasSend {
				d.m.SendAct = len(tl.Activities)
				tl.Activities = append(tl.Activities, Activity{
					Kind: telemetry.SpanSend, Node: d.m.From, Peer: d.m.To,
					Chunk: -1, Step: d.sendStep, Seq: d.m.Seq, Bytes: d.m.Bytes,
					Start: d.m.SendStart, End: d.m.SendEnd, Stream: d.m.SendStream,
				})
			}
			if d.m.HasRecv {
				d.m.RecvAct = len(tl.Activities)
				tl.Activities = append(tl.Activities, Activity{
					Kind: telemetry.SpanRecv, Node: d.m.To, Peer: d.m.From,
					Chunk: -1, Step: d.recvStep, Seq: d.m.Seq, Bytes: d.m.Bytes,
					Start: d.m.RecvStart, End: d.m.RecvEnd, Stream: d.m.RecvStream,
				})
			}
		}
	}

	flatten := func(m map[pairKey]*msgDraft) ([]Message, error) {
		keys := sortedPairKeys(m)
		out := make([]Message, 0, len(keys))
		for _, k := range keys {
			d := m[k]
			if d.m.HasSend && d.m.HasRecv && !d.m.Wire &&
				d.sendStep >= 0 && d.recvStep >= 0 && d.sendStep != d.recvStep {
				return nil, fmt.Errorf("traceview: message %d->%d seq %d sent in step %d but received in step %d",
					k.from, k.to, k.seq, d.sendStep, d.recvStep)
			}
			if d.m.HasSend {
				d.m.Step = d.sendStep
			} else {
				d.m.Step = d.recvStep
			}
			out = append(out, d.m)
		}
		return out, nil
	}
	var err error
	if tl.Messages, err = flatten(grad); err != nil {
		return nil, err
	}
	if tl.WireMessages, err = flatten(wire); err != nil {
		return nil, err
	}

	sort.SliceStable(tl.Activities, func(i, j int) bool {
		return tl.Activities[i].Start < tl.Activities[j].Start
	})
	// The sort moved activities; re-link messages by (from, to, seq).
	sendIdx := make(map[pairKey]int)
	recvIdx := make(map[pairKey]int)
	for i, a := range tl.Activities {
		switch a.Kind {
		case telemetry.SpanSend:
			if a.Seq >= 0 {
				sendIdx[pairKey{a.Node, a.Peer, a.Seq}] = i
			}
		case telemetry.SpanRecv:
			if a.Seq >= 0 {
				recvIdx[pairKey{a.Peer, a.Node, a.Seq}] = i
			}
		}
	}
	for i := range tl.Messages {
		m := &tl.Messages[i]
		k := pairKey{m.From, m.To, m.Seq}
		m.SendAct, m.RecvAct = -1, -1
		if idx, ok := sendIdx[k]; ok {
			m.SendAct = idx
		}
		if idx, ok := recvIdx[k]; ok {
			m.RecvAct = idx
		}
	}

	steps := make(map[int64]bool)
	for _, a := range tl.Activities {
		if a.Step >= 0 {
			steps[a.Step] = true
		}
	}
	for _, m := range tl.Messages {
		if m.Step >= 0 {
			steps[m.Step] = true
		}
	}
	for s := range steps {
		tl.Steps = append(tl.Steps, s)
	}
	sort.Slice(tl.Steps, func(i, j int) bool { return tl.Steps[i] < tl.Steps[j] })
	return tl, nil
}

// alignClocks estimates per-stream monotonic-clock offsets onto stream
// 0's axis. Every observed i→j message (wire or gradient layer) gives
// the one-sided constraint off_j − off_i ≥ sendTS_i − recvTS_j, since
// the send truly happened before the receive. With traffic in both
// directions the feasible interval is [L_ij, −L_ji] (L the per-direction
// max of sendTS − recvTS); the midpoint is the estimate and half the
// width — at most half the minimum round-trip — bounds its error. On the
// Instrumented virtual clock all streams share one axis and every offset
// is trivially zero.
func alignClocks(streams []*Stream, virtual bool) error {
	for _, s := range streams {
		s.OffsetNanos, s.SkewBoundNanos = 0, 0
	}
	if virtual || len(streams) == 1 {
		return nil
	}

	// Streams are matched by node id: a message's sides live in the
	// streams owned by its endpoints.
	byNode := make(map[int32]int)
	for i, s := range streams {
		if s.Meta.Node < 0 {
			return fmt.Errorf("traceview: stream %d has no node id (meta.node = %d); multi-stream alignment needs per-rank streams", i, s.Meta.Node)
		}
		if prev, dup := byNode[int32(s.Meta.Node)]; dup {
			return fmt.Errorf("traceview: streams %d and %d both claim node %d", prev, i, s.Meta.Node)
		}
		byNode[int32(s.Meta.Node)] = i
	}

	// Wire and gradient layers each have their own per-link seq space,
	// so the probe key carries the layer to keep their pairings apart.
	type probeKey struct {
		k    pairKey
		wire bool
	}
	type side struct {
		stream int
		ts     int64
	}
	sends := make(map[probeKey]side)
	// L[i][j] = max over i→j messages of sendTS − recvTS (local nanos).
	L := make([][]float64, len(streams))
	seen := make([][]bool, len(streams))
	for i := range L {
		L[i] = make([]float64, len(streams))
		seen[i] = make([]bool, len(streams))
		for j := range L[i] {
			L[i][j] = math.Inf(-1)
		}
	}
	observe := func(pk probeKey, isSend bool, si int, ts int64) {
		// A message names its endpoints; only the endpoint that owns
		// the stream contributes its side.
		if isSend {
			if byNode[pk.k.from] == si {
				sends[pk] = side{si, ts}
			}
			return
		}
		if byNode[pk.k.to] != si {
			return
		}
		s, ok := sends[pk]
		if !ok {
			return
		}
		d := float64(s.ts - ts)
		if d > L[s.stream][si] {
			L[s.stream][si] = d
		}
		seen[s.stream][si] = true
	}
	// Two passes: all sends first, then receives, so pairing does not
	// depend on the order streams were passed in.
	for pass := 0; pass < 2; pass++ {
		for si, s := range streams {
			for i := range s.Events {
				e := &s.Events[i]
				if e.Type != telemetry.EventCounter || e.Seq < 0 {
					continue
				}
				k := pairKey{e.Node, e.Peer, e.Seq}
				switch e.Counter {
				case telemetry.CounterWireSentBytes:
					if pass == 0 {
						observe(probeKey{k, true}, true, si, e.WallNanos)
					}
				case telemetry.CounterSentMessages:
					if pass == 0 {
						observe(probeKey{k, false}, true, si, e.WallNanos)
					}
				case telemetry.CounterWireRecvBytes:
					if pass == 1 {
						observe(probeKey{k, true}, false, si, e.WallNanos)
					}
				case telemetry.CounterRecvMessages:
					if pass == 1 {
						observe(probeKey{k, false}, false, si, e.WallNanos)
					}
				}
			}
		}
	}

	// BFS a spanning tree from stream 0 over pairs with traffic.
	const unaligned = -1.0
	off := make([]float64, len(streams))
	bound := make([]float64, len(streams))
	done := make([]bool, len(streams))
	for i := range bound {
		bound[i] = unaligned
	}
	queue := []int{0}
	done[0], bound[0] = true, 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for j := range streams {
			if done[j] || (!seen[i][j] && !seen[j][i]) {
				continue
			}
			lo, hi := math.Inf(-1), math.Inf(1)
			if seen[i][j] {
				lo = L[i][j] // off_j − off_i ≥ L[i][j]
			}
			if seen[j][i] {
				hi = -L[j][i] // off_j − off_i ≤ −L[j][i]
			}
			var rel, halfWidth float64
			switch {
			case seen[i][j] && seen[j][i]:
				rel, halfWidth = (lo+hi)/2, (hi-lo)/2
			case seen[i][j]:
				rel, halfWidth = lo, math.Inf(1)
			default:
				rel, halfWidth = hi, math.Inf(1)
			}
			off[j] = off[i] + rel
			bound[j] = bound[i] + halfWidth
			done[j] = true
			queue = append(queue, j)
		}
	}
	for i, s := range streams {
		if !done[i] {
			s.OffsetNanos, s.SkewBoundNanos = 0, -1
			continue
		}
		s.OffsetNanos, s.SkewBoundNanos = off[i], bound[i]
	}
	return nil
}
