package traceview

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/telemetry"
)

// fmtNS renders nanoseconds with a unit that keeps 3-4 significant
// digits readable across the virtual (sub-ms) and wall (ms-s) regimes.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// reportKinds is the phase order of the rollup table.
var reportKinds = []telemetry.SpanKind{
	telemetry.SpanCompute, telemetry.SpanCompress, telemetry.SpanEncode,
	telemetry.SpanSend, telemetry.SpanRecv, telemetry.SpanCollective,
	telemetry.SpanExchange, telemetry.SpanApply, telemetry.SpanStep,
}

// WriteReport prints the human-readable analysis: stream alignment,
// pairing outcomes, per-step per-node phase rollups, the critical path
// with its phase decomposition, and straggler attribution.
func WriteReport(w io.Writer, tl *Timeline) error {
	mode := "wall-clock"
	if tl.Virtual {
		mode = "virtual (alpha-beta clock)"
	}
	fmt.Fprintf(w, "trace assembly: %d stream(s), %s time\n", len(tl.Streams), mode)
	for i, s := range tl.Streams {
		bound := "exact"
		switch {
		case math.IsInf(s.SkewBoundNanos, 1):
			// One-directional traffic only: the offset satisfies the
			// causality constraints but the interval is unbounded above.
			bound = "one-sided bound"
		case s.SkewBoundNanos > 0:
			bound = "±" + fmtNS(s.SkewBoundNanos)
		case s.SkewBoundNanos < 0:
			bound = "unaligned"
		}
		fmt.Fprintf(w, "  stream %d: node %d, %d events, clock offset %+.0fns (%s)\n",
			i, s.Meta.Node, len(s.Events), s.OffsetNanos, bound)
	}
	gp, gs, gr := tl.PairStats(false)
	fmt.Fprintf(w, "gradient messages: %d paired, %d send-only, %d recv-only\n", gp, gs, gr)
	if wp, ws, wr := tl.PairStats(true); wp+ws+wr > 0 {
		fmt.Fprintf(w, "wire messages:     %d paired, %d send-only, %d recv-only\n", wp, ws, wr)
	}

	steps := tl.Steps
	if len(steps) == 0 {
		steps = []int64{-1}
	}
	for _, step := range steps {
		if step >= 0 {
			fmt.Fprintf(w, "\nstep %d\n", step)
		} else {
			fmt.Fprintf(w, "\nall events\n")
		}
		for _, r := range tl.Rollups(step) {
			fmt.Fprintf(w, "  node %d:", r.Node)
			for _, k := range reportKinds {
				if d, ok := r.Busy[k]; ok {
					fmt.Fprintf(w, " %s=%s", k, fmtNS(d))
				}
			}
			if r.Sends+r.Recvs > 0 {
				fmt.Fprintf(w, " (%d sends/%dB, %d recvs/%dB)", r.Sends, r.SentBytes, r.Recvs, r.RecvBytes)
			}
			fmt.Fprintln(w)
		}
		cp, err := tl.CriticalPath(step)
		if err != nil {
			fmt.Fprintf(w, "  critical path: %v\n", err)
			continue
		}
		fmt.Fprintf(w, "  critical path: %s over %d segment(s)\n", fmtNS(cp.TotalNanos), len(cp.Segments))
		kinds := make([]telemetry.SpanKind, 0, len(cp.ByKind))
		for k := range cp.ByKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			fmt.Fprintf(w, "    %-9s %s\n", k, fmtNS(cp.ByKind[k]))
		}
		if cp.SlackNanos > 0 {
			fmt.Fprintf(w, "    %-9s %s\n", "slack", fmtNS(cp.SlackNanos))
		}
		if len(cp.WaitOnRank) > 0 {
			ranks := make([]int32, 0, len(cp.WaitOnRank))
			for r := range cp.WaitOnRank {
				ranks = append(ranks, r)
			}
			sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
			fmt.Fprintf(w, "  waiting on rank:")
			for _, r := range ranks {
				fmt.Fprintf(w, " %d=%s", r, fmtNS(cp.WaitOnRank[r]))
			}
			fmt.Fprintln(w)
		}
		if m := tl.RecvWaitMatrix(step); len(m) > 0 {
			keys := make([][2]int32, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i][0] != keys[j][0] {
					return keys[i][0] < keys[j][0]
				}
				return keys[i][1] < keys[j][1]
			})
			fmt.Fprintf(w, "  recv windows (to<-from):")
			for _, k := range keys {
				fmt.Fprintf(w, " %d<-%d=%s", k[0], k[1], fmtNS(m[k]))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
