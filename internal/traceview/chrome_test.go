package traceview

import (
	"bytes"
	"encoding/json"

	"testing"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

// TestChromeTraceSchema validates the exported trace-event JSON against
// the subset of the Chrome trace format Perfetto requires: a
// traceEvents array whose members carry a known phase, non-negative
// complete-event durations, per-process metadata for every rank, and a
// matching "f" for every flow start "s".
func TestChromeTraceSchema(t *testing.T) {
	const dim = 1024
	s, _ := runEngineTrace(t, cluster.Config{
		Collective: netsim.CollectiveAllGather, Chunks: 4, CompressSec: 1.0 / (1 << 14),
	}, uniformSparseInputs(t, dim, 4), dim, 2)
	tl := assemble1(t, s)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tl); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if trace.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayUnit)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	flows := map[any][2]int{} // id -> {s count, f count}
	processNames := map[any]bool{}
	var xEvents int
	for i, e := range trace.TraceEvents {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		if _, ok := e["pid"]; !ok {
			t.Fatalf("event %d has no pid: %v", i, e)
		}
		switch ph {
		case "X":
			xEvents++
			ts, tsOK := e["ts"].(float64)
			if !tsOK || ts < 0 {
				t.Fatalf("X event %d has bad ts: %v", i, e)
			}
			if dur, ok := e["dur"].(float64); ok && dur < 0 {
				t.Fatalf("X event %d has negative dur: %v", i, e)
			}
			if name == "" {
				t.Fatalf("X event %d unnamed: %v", i, e)
			}
		case "M":
			if name == "process_name" {
				processNames[e["pid"]] = true
			}
		case "s", "f":
			id, ok := e["id"]
			if !ok {
				t.Fatalf("flow event %d has no id: %v", i, e)
			}
			c := flows[id]
			if ph == "s" {
				c[0]++
			} else {
				c[1]++
				if bp, _ := e["bp"].(string); bp != "e" {
					t.Fatalf("flow finish %d must bind to the enclosing slice (bp=e): %v", i, e)
				}
			}
			flows[id] = c
		default:
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
	}
	if xEvents == 0 {
		t.Fatal("no complete events exported")
	}
	for n := int32(0); n < workers; n++ {
		if !processNames[float64(n)] {
			t.Errorf("no process_name metadata for rank %d", n)
		}
	}
	paired, _, _ := tl.PairStats(false)
	if len(flows) != paired {
		t.Errorf("%d flow ids for %d paired messages", len(flows), paired)
	}
	for id, c := range flows {
		if c[0] != 1 || c[1] != 1 {
			t.Errorf("flow %v has %d starts and %d finishes, want exactly one of each", id, c[0], c[1])
		}
	}
}
