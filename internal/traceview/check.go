package traceview

import (
	"fmt"

	"repro/internal/netsim"
)

// CheckComplete verifies the assembled run is causally complete: every
// gradient message and every wire frame observed on a send side has
// exactly one matching receive, and vice versa. Half-paired messages
// mean lost telemetry, a torn-down deployment, or broken sequence
// numbering — all worth failing a gate over.
func CheckComplete(tl *Timeline) error {
	if p, so, ro := tl.PairStats(false); so != 0 || ro != 0 {
		return fmt.Errorf("traceview: gradient pairing incomplete: %d paired, %d send-only, %d recv-only", p, so, ro)
	}
	if p, so, ro := tl.PairStats(true); so != 0 || ro != 0 {
		return fmt.Errorf("traceview: wire pairing incomplete: %d paired, %d send-only, %d recv-only", p, so, ro)
	}
	return nil
}

// ExpectedGradientMessages returns the gradient messages one exchange
// of the collective puts on the wire across every sending node — the
// netsim alpha-count, which the assembled pair count must equal exactly
// per iteration.
func ExpectedGradientMessages(coll netsim.Collective, workers, chunks int) int {
	switch coll {
	case netsim.CollectiveRing:
		return workers * netsim.RingMessages(workers)
	case netsim.CollectiveAllGather:
		return workers * netsim.ChunkedAllGatherMessages(workers, chunks)
	case netsim.CollectivePS:
		return netsim.PSMessages(workers)
	}
	return 0
}

// CheckMessageCount verifies the paired gradient-message total equals
// iters exchanges of the collective's closed-form count.
func CheckMessageCount(tl *Timeline, coll netsim.Collective, workers, chunks, iters int) error {
	want := iters * ExpectedGradientMessages(coll, workers, chunks)
	paired, _, _ := tl.PairStats(false)
	if paired != want {
		return fmt.Errorf("traceview: %d paired gradient messages, %s formula says %d (%d iters x %d workers, chunks=%d)",
			paired, coll, want, iters, workers, chunks)
	}
	return nil
}
