package traceview

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"

	"repro/internal/telemetry"
)

// ChromeEvent is one record of the Chrome trace-event format ("JSON
// Object Format"), which Perfetto and chrome://tracing load directly.
// Only the event phases this exporter emits are modeled: "X" complete
// events, "M" metadata, and "s"/"f" flow arrows.
type ChromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	// TS and Dur are microseconds (the format's native unit).
	TS  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	// PID is the cluster node id; TID the lane on that node.
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
	Cat  string         `json:"cat,omitempty"`
}

// ChromeTrace is the top-level envelope Perfetto expects.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID gives every phase a stable per-node track so overlapping
// windows (a send transmitted while compute runs) render side by side
// instead of as bogus nesting.
func chromeTID(k telemetry.SpanKind) (int32, string) {
	switch k {
	case telemetry.SpanStep, telemetry.SpanExchange, telemetry.SpanCollective, telemetry.SpanApply:
		return 0, "step"
	case telemetry.SpanCompute:
		return 1, "compute"
	case telemetry.SpanCompress, telemetry.SpanEncode:
		return 2, "compress"
	case telemetry.SpanSend, telemetry.SpanDial:
		return 3, "tx"
	case telemetry.SpanRecv:
		return 4, "rx"
	}
	return 5, "other"
}

// BuildChromeTrace converts the timeline into trace-event form: one
// process per cluster node (named "rank N"), one thread per lane, an
// "X" complete event per activity, and an "s"→"f" flow arrow per paired
// gradient message so Perfetto draws the send→recv causality.
func BuildChromeTrace(tl *Timeline) *ChromeTrace {
	tr := &ChromeTrace{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	nodes := make(map[int32]bool)
	tids := make(map[[2]int32]string)
	for i := range tl.Activities {
		a := &tl.Activities[i]
		if a.Node < 0 {
			continue
		}
		tid, lane := chromeTID(a.Kind)
		nodes[a.Node] = true
		tids[[2]int32{a.Node, tid}] = lane
		args := map[string]any{"step": a.Step}
		if a.Seq >= 0 {
			args["seq"] = a.Seq
			args["bytes"] = a.Bytes
			args["peer"] = a.Peer
		}
		if a.Chunk >= 0 {
			args["chunk"] = a.Chunk
		}
		name := a.Kind.String()
		switch a.Kind {
		case telemetry.SpanSend:
			name = fmt.Sprintf("send->%d", a.Peer)
		case telemetry.SpanRecv:
			name = fmt.Sprintf("recv<-%d", a.Peer)
		}
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: name, Ph: "X", TS: a.Start / 1e3, Dur: a.Dur() / 1e3,
			PID: a.Node, TID: tid, Args: args,
		})
	}
	// Metadata events emit in sorted (node, tid) order so the exported
	// JSON is byte-identical across runs despite the map bookkeeping.
	nodeIDs := make([]int32, 0, len(nodes))
	for n := range nodes {
		nodeIDs = append(nodeIDs, n)
	}
	slices.Sort(nodeIDs)
	for _, n := range nodeIDs {
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", PID: n,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", n)},
		})
	}
	tidKeys := make([][2]int32, 0, len(tids))
	for k := range tids {
		tidKeys = append(tidKeys, k)
	}
	slices.SortFunc(tidKeys, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
	for _, k := range tidKeys {
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]any{"name": tids[k]},
		})
	}
	for i, m := range tl.Messages {
		if m.SendAct < 0 || m.RecvAct < 0 {
			continue
		}
		s, r := &tl.Activities[m.SendAct], &tl.Activities[m.RecvAct]
		stid, _ := chromeTID(telemetry.SpanSend)
		rtid, _ := chromeTID(telemetry.SpanRecv)
		tr.TraceEvents = append(tr.TraceEvents,
			ChromeEvent{
				Name: "msg", Cat: "msg", Ph: "s", ID: i + 1,
				TS: s.Start / 1e3, PID: s.Node, TID: stid,
			},
			ChromeEvent{
				Name: "msg", Cat: "msg", Ph: "f", BP: "e", ID: i + 1,
				TS: r.End / 1e3, PID: r.Node, TID: rtid,
			},
		)
	}
	return tr
}

// WriteChromeTrace writes the timeline as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, tl *Timeline) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildChromeTrace(tl))
}
