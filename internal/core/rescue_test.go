package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/stats"
)

func TestRescueRecoversFromOutlierPollutedGPFit(t *testing.T) {
	// Extreme outliers explode the GP moment fit's variance and push the
	// single-call threshold so high that almost nothing is selected; the
	// two-tier rescue must bring the selection back within an order of
	// magnitude of the target.
	rng := rand.New(rand.NewSource(1))
	const d, delta = 200000, 0.001
	g := make([]float64, d)
	gen := stats.DoubleGamma{Shape: 0.55, Scale: 0.01}
	for i := range g {
		g[i] = gen.Sample(rng)
	}
	for j := 0; j < 10; j++ {
		g[rng.Intn(d)] = 50 * (rng.Float64() - 0.5)
	}
	s := NewGP()
	sp, err := s.Compress(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	k := compress.TargetK(d, delta)
	ratio := float64(sp.NNZ()) / float64(k)
	if ratio < 0.1 {
		t.Errorf("rescue failed: ratio %v (selected %d of target %d)", ratio, sp.NNZ(), k)
	}
	if !s.LastRescued() {
		t.Error("expected the rescue pass to trigger")
	}
}

func TestRescueNotTriggeredInNormalOperation(t *testing.T) {
	s := NewE()
	g := sampleVec(stats.Laplace{Scale: 0.01}, 100000, 2)
	if _, err := s.Compress(g, 0.01); err != nil {
		t.Fatal(err)
	}
	if s.LastRescued() {
		t.Error("rescue fired on a well-behaved gradient")
	}
}

func TestRescueBreaksErrorFeedbackSpiral(t *testing.T) {
	// Light-tailed (Gaussian) gradients under EC are the spiral scenario:
	// the exponential fit under-selects, the residual inflates the scale,
	// and without rescue the achieved ratio collapses toward zero. With
	// rescue the long-run ratio must stay healthy.
	ec := newECOverSIDCo()
	rng := rand.New(rand.NewSource(3))
	const d, delta = 2000, 0.05
	k := compress.TargetK(d, delta)
	sum := 0.0
	const iters = 120
	for i := 0; i < iters; i++ {
		g := make([]float64, d)
		for j := range g {
			g[j] = rng.NormFloat64() * 0.01
		}
		sp, err := ec.Compress(g, delta)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 20 {
			sum += float64(sp.NNZ()) / float64(k)
		}
	}
	avg := sum / float64(iters-20)
	if avg < 0.4 {
		t.Errorf("EC spiral not contained: mean ratio %v", avg)
	}
}

func newECOverSIDCo() compress.Compressor {
	return compress.NewErrorFeedback(NewE())
}

func TestStageRatiosProductProperty(t *testing.T) {
	f := func(deltaRaw, d1Raw float64, mRaw uint8) bool {
		delta := 1e-4 + math.Mod(math.Abs(deltaRaw), 0.999)
		d1 := 0.05 + math.Mod(math.Abs(d1Raw), 0.9)
		m := int(mRaw%8) + 1
		rs := StageRatios(delta, d1, m)
		prod := 1.0
		for _, r := range rs {
			if r <= 0 || r > 1 {
				return false
			}
			prod *= r
		}
		return math.Abs(prod-delta) < 1e-9*math.Max(1, delta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSIDCoSelectionIsTopKHatOfGradient(t *testing.T) {
	// Footnote 5 of the paper: threshold selection coincides with Top-k at
	// k = k-hat. Verify: every selected magnitude >= every dropped one.
	s := NewE()
	g := sampleVec(stats.Laplace{Scale: 0.01}, 50000, 4)
	sp, err := s.Compress(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	minKept := math.Inf(1)
	kept := make(map[int32]struct{}, sp.NNZ())
	for i, j := range sp.Idx {
		kept[j] = struct{}{}
		if a := math.Abs(sp.Vals[i]); a < minKept {
			minKept = a
		}
	}
	for i, gi := range g {
		if _, ok := kept[int32(i)]; ok {
			continue
		}
		if math.Abs(gi) > minKept {
			t.Fatalf("dropped element %d (|%v|) larger than kept minimum %v", i, gi, minKept)
		}
	}
}
