// Package core implements SIDCo, the sparsity-inducing distribution based
// compressor of the paper: single-stage closed-form threshold estimators
// for the three SIDs (double exponential, double gamma, double generalized
// Pareto), the multi-stage peak-over-threshold refinement of Section 2.4,
// and the adaptive stage controller of Algorithm 1.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// errEmptyGradient is hoisted to package level so the zero-alloc
// CompressInto hot path can reject empty input without constructing an
// error value per call.
var errEmptyGradient = errors.New("sidco: empty gradient")

// SID selects the sparsity-inducing distribution family used for fitting.
type SID int

const (
	// SIDExponential is multi-stage double-exponential fitting (SIDCo-E).
	// Exceedances of an exponential remain exponential (Corollary 2.1), so
	// every stage refits the same family.
	SIDExponential SID = iota
	// SIDGammaGP fits a double gamma in the first stage and generalized
	// Pareto in later stages per extreme value theory (SIDCo-GP).
	SIDGammaGP
	// SIDGP is multi-stage generalized Pareto fitting (SIDCo-P).
	SIDGP
)

// String returns the paper's name for the variant.
func (s SID) String() string {
	switch s {
	case SIDExponential:
		return "sidco-e"
	case SIDGammaGP:
		return "sidco-gp"
	case SIDGP:
		return "sidco-p"
	default:
		return fmt.Sprintf("sid(%d)", int(s))
	}
}

// Config holds the SIDCo hyper-parameters; the zero value is completed by
// Default (paper Section 4.1: delta1 = 0.25, epsilon = 20%, Q = 5).
type Config struct {
	// SID is the distribution family.
	SID SID
	// Delta1 is the per-stage compression ratio applied by all but the
	// final stage (paper default 0.25).
	Delta1 float64
	// EpsilonH and EpsilonL are the upper/lower relative error bounds of
	// the stage adaptation (Algorithm 1, defaults 0.2).
	EpsilonH float64
	EpsilonL float64
	// Q is the number of iterations between stage adaptations (default 5).
	Q int
	// MaxStages caps M. Zero derives the cap from the target ratio so the
	// final stage ratio stays <= 1.
	MaxStages int
	// MinFitSize is the smallest exceedance set a later stage will fit
	// (default 16); below it the multi-stage loop stops early.
	MinFitSize int
	// ApproxGamma selects the paper's closed-form gamma threshold
	// approximation (eq. 15) for the first stage of SIDCo-GP instead of
	// the exact inverse incomplete gamma quantile. The approximation is an
	// upper bound that is tight only near shape 1 — the paper attributes
	// SIDCo-GP's first-stage estimation error to it (Appendix E.1) — so
	// the default here is the exact quantile, whose extra cost is a single
	// scalar Newton solve on top of the O(d) moment pass.
	ApproxGamma bool
}

// Default fills unset fields with the paper's values.
func (c Config) Default() Config {
	if c.Delta1 <= 0 || c.Delta1 >= 1 {
		c.Delta1 = 0.25
	}
	if c.EpsilonH <= 0 {
		c.EpsilonH = 0.2
	}
	if c.EpsilonL <= 0 {
		c.EpsilonL = 0.2
	}
	if c.Q <= 0 {
		c.Q = 5
	}
	if c.MinFitSize <= 0 {
		c.MinFitSize = 16
	}
	return c
}

// SIDCo is the adaptive multi-stage threshold compressor. It implements
// compress.Compressor and carries the stage count M and estimation-quality
// window across iterations. It is not safe for concurrent use; each worker
// owns one instance.
type SIDCo struct {
	cfg Config

	stages      int // current M
	iter        int // training iteration counter (for the Q-periodic adaptation)
	ratioSum    float64
	ratioCnt    int
	lastK       int // ˆk of the most recent call
	lastEta     float64
	lastUsedM   int
	lastRescued bool

	// Streaming-path scratch, reused across iterations: the exceedance
	// magnitudes of the multi-stage loop and the per-stage ratio
	// decomposition.
	exceed   []float64
	stageBuf []float64

	stat stats.Par
	par  tensor.Par
}

// SetParallelism implements compress.Parallelizable: the moment passes
// of every stage fit, the exceedance gathers and the threshold filters
// fan out over p goroutines. Thresholds and selections are bit-identical
// at every p — the reductions keep the serial code's fixed 4096-element
// block summation order and the gathers merge per-worker ranges in
// index order.
func (s *SIDCo) SetParallelism(p int) {
	s.stat.P = p
	s.par.P = p
}

// New creates a SIDCo compressor from cfg (missing fields defaulted). The
// stage count starts at 1 and adapts online, as in the paper.
func New(cfg Config) *SIDCo {
	return &SIDCo{cfg: cfg.Default(), stages: 1}
}

// NewE returns SIDCo with multi-stage double-exponential fitting.
func NewE() *SIDCo { return New(Config{SID: SIDExponential}) }

// NewGammaGP returns SIDCo with gamma-then-GP fitting.
func NewGammaGP() *SIDCo { return New(Config{SID: SIDGammaGP}) }

// NewGP returns SIDCo with multi-stage GP fitting.
func NewGP() *SIDCo { return New(Config{SID: SIDGP}) }

// Name implements compress.Compressor.
func (s *SIDCo) Name() string { return s.cfg.SID.String() }

// Stages returns the current number of fitting stages M.
func (s *SIDCo) Stages() int { return s.stages }

// LastThreshold returns the threshold used by the most recent Compress.
func (s *SIDCo) LastThreshold() float64 { return s.lastEta }

// LastStagesUsed returns how many stages the most recent Compress actually
// executed (early exit can use fewer than M).
func (s *SIDCo) LastStagesUsed() int { return s.lastUsedM }

// LastRescued reports whether the most recent Compress needed the
// collapse-rescue correction pass.
func (s *SIDCo) LastRescued() bool { return s.lastRescued }

// maxStages returns the largest usable M for the given target ratio: each
// non-final stage contributes Delta1, and the final stage ratio
// delta/Delta1^(M-1) must stay below 1.
func (s *SIDCo) maxStages(delta float64) int {
	if s.cfg.MaxStages > 0 {
		return s.cfg.MaxStages
	}
	m := 1 + int(math.Floor(math.Log(delta)/math.Log(s.cfg.Delta1)))
	if m < 1 {
		m = 1
	}
	return m
}

// Compress implements compress.Compressor: Algorithm 1's Sparsify.
func (s *SIDCo) Compress(g []float64, delta float64) (*tensor.Sparse, error) {
	return compress.FreshCompress(s, g, delta)
}

// CompressInto implements compress.Compressor: Algorithm 1's Sparsify
// over caller-owned sparse storage, with the fit and exceedance scratch
// reused across iterations.
//
//sidco:hotpath
func (s *SIDCo) CompressInto(dst *tensor.Sparse, g []float64, delta float64) error {
	if len(g) == 0 {
		return errEmptyGradient
	}
	if math.IsNaN(delta) || delta <= 0 || delta > 1 {
		return fmt.Errorf("sidco: ratio %v outside (0, 1]", delta) //sidco:alloc input-validation error path, not steady state
	}
	d := len(g)
	k := compress.TargetK(d, delta)

	maxM := s.maxStages(delta)
	if s.stages > maxM {
		s.stages = maxM
	}
	eta, used := s.estimateThreshold(g, delta, s.stages)

	dst.Reset(d)
	dst.Idx, dst.Vals = s.par.FilterAbove(g, eta, dst.Idx, dst.Vals)

	// Rescue pass: if the estimate collapsed beyond 3x the target on
	// either side — far outside the paper's epsilon = 0.2 tolerance band —
	// apply one exponential-model correction (count(eta) ~ exp(-eta/beta),
	// so eta' = eta + beta*log(k-hat/k)) and refilter. Without this, error
	// feedback can spiral on light-tailed gradients: under-selection
	// inflates the residual, which inflates the fitted scale and raises
	// the next threshold further. The trigger is wide enough that the
	// estimation-quality dynamics the paper reports (deviations within
	// ~2x) are untouched.
	s.lastRescued = false
	//sidco:alloc non-escaping closures, stack-allocated; AllocsPerRun pins the steady state at zero
	refilter := func() {
		dst.Reset(d)
		dst.Idx, dst.Vals = s.par.FilterAbove(g, eta, dst.Idx, dst.Vals)
	}
	collapsed := func(kh int) bool { return kh*3 < k || kh > 3*k } //sidco:alloc non-escaping closure, stack-allocated
	if kHat := dst.NNZ(); collapsed(kHat) {
		beta := s.stat.MeanAbs(g)
		if beta > 0 {
			obs := float64(kHat)
			if obs < 1 {
				obs = 1
			}
			etaNew := eta + beta*math.Log(obs/float64(k))
			if etaNew < 0 {
				etaNew = 0
			}
			eta = etaNew
			refilter()
			s.lastRescued = true
		}
		// Second tier, under-selection only: if the local correction was
		// not enough (e.g. a GP moment fit whose variance was exploded by
		// outliers overshot the threshold by far more than one exponential
		// step), fall back to a fresh single-stage exponential estimate —
		// MeanAbs is linear in the data and therefore outlier-robust.
		// Over-selection is left alone: sending extra elements costs
		// bandwidth but never convergence, and correcting it upward with
		// an inflated scale can re-enter the collapse.
		if kHat := dst.NNZ(); kHat*3 < k && beta > 0 {
			if etaFB := ThresholdExp(beta, delta); etaFB < eta {
				eta = etaFB
				refilter()
				s.lastRescued = true
			}
		}
	}
	s.lastEta = eta
	s.lastUsedM = used
	s.lastK = dst.NNZ()

	// Record estimation quality and run the Q-periodic stage adaptation.
	s.ratioSum += float64(s.lastK) / float64(k)
	s.ratioCnt++
	s.iter++
	if s.iter%s.cfg.Q == 0 {
		s.adaptStages(maxM)
	}
	return nil
}

// estimateThreshold runs the multi-stage fitting loop and returns the
// final threshold together with the number of stages actually executed.
func (s *SIDCo) estimateThreshold(g []float64, delta float64, m int) (eta float64, used int) {
	s.stageBuf = appendStageRatios(s.stageBuf[:0], delta, s.cfg.Delta1, m)
	ratios := s.stageBuf

	// Stage 1 fits the full gradient with the primary SID.
	eta = s.firstStageThreshold(g, ratios[0])
	used = 1
	if len(ratios) == 1 || !(eta > 0) || math.IsNaN(eta) {
		if !(eta > 0) || math.IsNaN(eta) {
			// Degenerate fit: fall back to keeping everything non-zero.
			eta = 0
		}
		return eta, used
	}

	// Later stages fit the exceedances (PoT) over the running threshold.
	// The exceedance buffer is per-instance scratch, reused every call.
	s.exceed = s.par.ValuesAbove(g, eta, s.exceed[:0])
	for _, dm := range ratios[1:] {
		if len(s.exceed) < s.cfg.MinFitSize {
			break
		}
		next := s.nextStageThreshold(s.exceed, eta, dm)
		if !(next > eta) || math.IsNaN(next) || math.IsInf(next, 0) {
			break // fit degenerated; keep the last sound threshold
		}
		// Keep only exceedances of the new threshold for the next stage.
		// The values are already magnitudes, so the strict-exceedance
		// gather doubles as the in-place compaction (per-worker buffers
		// are filled before dst is touched, making the aliasing safe).
		s.exceed = s.par.ValuesAbove(s.exceed, next, s.exceed[:0])
		eta = next
		used++
	}
	return eta, used
}

// firstStageThreshold computes the single-stage threshold from the full
// gradient (Thresh_Estimation in Algorithm 1).
func (s *SIDCo) firstStageThreshold(g []float64, delta float64) float64 {
	switch s.cfg.SID {
	case SIDExponential:
		return ThresholdExp(s.stat.MeanAbs(g), delta)
	case SIDGammaGP:
		mu := s.stat.MeanAbs(g)
		muLog := s.stat.MeanLogAbs(g)
		if s.cfg.ApproxGamma {
			return ThresholdGamma(mu, muLog, delta)
		}
		return ThresholdGammaExact(mu, muLog, delta)
	case SIDGP:
		mu, v := s.stat.MeanVarAbs(g)
		return ThresholdGP(mu, v, delta)
	default:
		return math.NaN()
	}
}

// nextStageThreshold computes the stage-m threshold from the exceedance
// magnitudes over etaPrev (Lemma 2 / Corollary 2.1).
func (s *SIDCo) nextStageThreshold(exceed []float64, etaPrev, delta float64) float64 {
	switch s.cfg.SID {
	case SIDExponential:
		beta := s.stat.Mean(exceed) - etaPrev
		return ThresholdExp(beta, delta) + etaPrev
	case SIDGammaGP, SIDGP:
		fit := s.stat.FitGPExceedance(exceed, etaPrev)
		return thresholdGPParams(fit, delta) + etaPrev
	default:
		return math.NaN()
	}
}

// adaptStages implements Adapt_Stages: compare the window-averaged
// achieved ratio against the tolerance band and step M accordingly.
//
// Direction note: the paper's pseudocode (Algorithm 1) writes M-1 on
// over-selection and M+1 on under-selection, but its own narrative
// (Appendix E.1: single-stage start "leading to a slight over-estimation
// of k" until adaptation "reach[es] the appropriate number of stages")
// and the PoT mathematics point the other way — on heavy-tailed gradients
// each extra stage raises the threshold and so reduces over-selection. We
// implement the direction consistent with the dynamics the paper reports.
func (s *SIDCo) adaptStages(maxM int) {
	if s.ratioCnt == 0 {
		return
	}
	avg := s.ratioSum / float64(s.ratioCnt)
	switch {
	case avg > 1+s.cfg.EpsilonH:
		// Over-selecting: the threshold is too low; more aggressive tail
		// fitting (an extra stage) raises it.
		s.stages++
	case avg < 1-s.cfg.EpsilonL:
		s.stages--
	}
	if s.stages < 1 {
		s.stages = 1
	}
	if s.stages > maxM {
		s.stages = maxM
	}
	s.ratioSum, s.ratioCnt = 0, 0
}

// StageRatios decomposes the target ratio delta into per-stage ratios:
// stages 1..M-1 apply delta1 and the final stage applies
// delta/delta1^(M-1), so that the product is exactly delta. M is clamped
// so the final ratio stays in (0, 1].
func StageRatios(delta, delta1 float64, m int) []float64 {
	return appendStageRatios(nil, delta, delta1, m)
}

// appendStageRatios is StageRatios over caller-owned storage, so the
// per-iteration hot path reuses its decomposition buffer.
func appendStageRatios(dst []float64, delta, delta1 float64, m int) []float64 {
	if m < 1 {
		m = 1
	}
	for m > 1 && delta/math.Pow(delta1, float64(m-1)) > 1 {
		m--
	}
	for i := 0; i < m-1; i++ {
		dst = append(dst, delta1)
	}
	return append(dst, delta/math.Pow(delta1, float64(m-1)))
}

// ThresholdExp is the closed-form double-exponential threshold of
// Corollary 1.1: eta = beta * log(1/delta), with beta the MLE scale
// (mean absolute gradient).
func ThresholdExp(beta, delta float64) float64 {
	return beta * math.Log(1/delta)
}

// ThresholdGamma is the closed-form approximation of Corollary 1.2:
// eta ~= -beta*(log(delta) + logGamma(alpha)), with (alpha, beta) the
// Minka closed-form gamma fit computed from the mean and log-mean of the
// absolute gradients.
func ThresholdGamma(meanAbs, meanLogAbs, delta float64) float64 {
	s := math.Log(meanAbs) - meanLogAbs
	if !(s > 0) {
		return math.NaN()
	}
	alpha := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	beta := meanAbs / alpha
	return -beta * (math.Log(delta) + stats.LogGamma(alpha))
}

// ThresholdGammaExact computes the gamma threshold through the exact
// inverse regularized incomplete gamma function — the expensive route the
// closed form approximates; used by tests and the ablation bench.
func ThresholdGammaExact(meanAbs, meanLogAbs, delta float64) float64 {
	s := math.Log(meanAbs) - meanLogAbs
	if !(s > 0) {
		return math.NaN()
	}
	alpha := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	beta := meanAbs / alpha
	return beta * stats.InverseRegularizedGammaP(alpha, 1-delta)
}

// ThresholdGP is the closed-form generalized Pareto threshold of
// Corollary 1.3 with moment-matched parameters:
// eta = beta/alpha * (delta^-alpha - 1).
func ThresholdGP(meanAbs, varAbs, delta float64) float64 {
	return thresholdGPParams(stats.FitGPMoments(meanAbs, varAbs), delta)
}

func thresholdGPParams(p stats.GPParams, delta float64) float64 {
	if math.IsNaN(p.Shape) || math.IsNaN(p.Scale) {
		return math.NaN()
	}
	if math.Abs(p.Shape) < 1e-12 {
		// GP degenerates to the exponential as the shape vanishes.
		return ThresholdExp(p.Scale, delta)
	}
	return p.Scale / p.Shape * math.Expm1(-p.Shape*math.Log(delta))
}
