package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/stats"
)

func sampleVec(d Distribution, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	return xs
}

// Distribution aliases the stats interface for test brevity.
type Distribution = stats.Distribution

func TestThresholdExpExactOnLaplace(t *testing.T) {
	// For true Laplace(beta) data the closed form hits the exact
	// (1 - delta) quantile of |G| ~ Exp(beta).
	const beta = 0.02
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		eta := ThresholdExp(beta, delta)
		want := stats.Exponential{Scale: beta}.Quantile(1 - delta)
		if math.Abs(eta-want)/want > 1e-12 {
			t.Errorf("delta=%v: eta=%v want %v", delta, eta, want)
		}
	}
}

func TestThresholdGammaAgreesWithExactNearShapeOne(t *testing.T) {
	g := sampleVec(stats.DoubleGamma{Shape: 1.0, Scale: 0.5}, 200000, 1)
	mu := stats.MeanAbs(g)
	muLog := stats.MeanLogAbs(g)
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		approx := ThresholdGamma(mu, muLog, delta)
		exact := ThresholdGammaExact(mu, muLog, delta)
		if math.Abs(approx-exact)/exact > 0.05 {
			t.Errorf("delta=%v: approx %v vs exact %v", delta, approx, exact)
		}
	}
}

func TestThresholdGammaDegenerate(t *testing.T) {
	if got := ThresholdGamma(1, math.Log(1), 0.1); !math.IsNaN(got) {
		t.Errorf("s=0 should give NaN, got %v", got)
	}
}

func TestThresholdGPOnTrueGP(t *testing.T) {
	const shape, scale = 0.2, 0.05
	g := sampleVec(stats.DoubleGP{Shape: shape, Scale: scale}, 500000, 2)
	mu, v := stats.MeanVarAbs(g)
	for _, delta := range []float64{0.1, 0.01} {
		eta := ThresholdGP(mu, v, delta)
		want := stats.GeneralizedPareto{Shape: shape, Scale: scale}.Quantile(1 - delta)
		if math.Abs(eta-want)/want > 0.2 {
			t.Errorf("delta=%v: eta=%v want %v", delta, eta, want)
		}
	}
}

func TestThresholdGPShapeZeroFallsBackToExp(t *testing.T) {
	// Moments of an exponential give shape ~ 0; the threshold must match
	// the exponential closed form.
	p := stats.GPParams{Shape: 0, Scale: 0.3}
	got := thresholdGPParams(p, 0.01)
	want := ThresholdExp(0.3, 0.01)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GP shape-0 threshold %v, want %v", got, want)
	}
}

func TestStageRatios(t *testing.T) {
	rs := StageRatios(0.001, 0.25, 3)
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0] != 0.25 || rs[1] != 0.25 {
		t.Errorf("early stages: %v", rs)
	}
	prod := 1.0
	for _, r := range rs {
		prod *= r
		if r <= 0 || r > 1 {
			t.Errorf("ratio out of range: %v", rs)
		}
	}
	if math.Abs(prod-0.001) > 1e-15 {
		t.Errorf("product = %v", prod)
	}
	// Requesting more stages than delta supports must clamp M.
	rs = StageRatios(0.1, 0.25, 10)
	prod = 1.0
	for _, r := range rs {
		if r <= 0 || r > 1 {
			t.Fatalf("clamped ratios invalid: %v", rs)
		}
		prod *= r
	}
	if math.Abs(prod-0.1) > 1e-15 {
		t.Errorf("clamped product = %v", prod)
	}
	if len(rs) > 2 {
		t.Errorf("expected clamp, got %d stages", len(rs))
	}
	// M < 1 clamps to single stage.
	rs = StageRatios(0.5, 0.25, 0)
	if len(rs) != 1 || rs[0] != 0.5 {
		t.Errorf("m=0: %v", rs)
	}
}

func TestSIDCoValidation(t *testing.T) {
	s := NewE()
	if _, err := s.Compress(nil, 0.1); err == nil {
		t.Error("empty gradient should error")
	}
	for _, bad := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := s.Compress([]float64{1, 2}, bad); err == nil {
			t.Errorf("ratio %v should error", bad)
		}
	}
}

func TestSIDCoNames(t *testing.T) {
	if NewE().Name() != "sidco-e" || NewGammaGP().Name() != "sidco-gp" || NewGP().Name() != "sidco-p" {
		t.Error("variant names wrong")
	}
	if SID(99).String() == "" {
		t.Error("unknown SID should still stringify")
	}
}

// runSIDCo streams iters fresh gradient vectors through the compressor and
// returns the mean achieved ratio k-hat/k (skipping a warm-up during which
// stage adaptation settles).
func runSIDCo(t *testing.T, s *SIDCo, dist Distribution, d int, delta float64, iters, warmup int) float64 {
	t.Helper()
	k := compress.TargetK(d, delta)
	sum, n := 0.0, 0
	for i := 0; i < iters; i++ {
		g := sampleVec(dist, d, int64(1000+i))
		sp, err := s.Compress(g, delta)
		if err != nil {
			t.Fatal(err)
		}
		if i >= warmup {
			sum += float64(sp.NNZ()) / float64(k)
			n++
		}
	}
	return sum / float64(n)
}

func TestSIDCoEAccurateOnLaplace(t *testing.T) {
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		s := NewE()
		avg := runSIDCo(t, s, stats.Laplace{Scale: 0.01}, 100000, delta, 40, 10)
		if math.Abs(avg-1) > 0.2 {
			t.Errorf("delta=%v: mean ratio %v outside paper tolerance (eps=0.2)", delta, avg)
		}
	}
}

func TestSIDCoPAccurateOnGP(t *testing.T) {
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		s := NewGP()
		avg := runSIDCo(t, s, stats.DoubleGP{Shape: 0.15, Scale: 0.01}, 100000, delta, 40, 10)
		if math.Abs(avg-1) > 0.25 {
			t.Errorf("delta=%v: mean ratio %v", delta, avg)
		}
	}
}

func TestSIDCoGammaGPAccurateOnDoubleGamma(t *testing.T) {
	for _, delta := range []float64{0.1, 0.01, 0.001} {
		s := NewGammaGP()
		avg := runSIDCo(t, s, stats.DoubleGamma{Shape: 0.7, Scale: 0.01}, 100000, delta, 40, 10)
		if math.Abs(avg-1) > 0.3 {
			t.Errorf("delta=%v: mean ratio %v", delta, avg)
		}
	}
}

func TestSIDCoAdaptsStagesUpForAggressiveRatio(t *testing.T) {
	// At delta = 0.001 on a mis-matched heavy-tailed distribution,
	// single-stage exponential fitting under-thresholds; the controller
	// must add stages.
	s := NewE()
	if s.Stages() != 1 {
		t.Fatalf("initial stages = %d", s.Stages())
	}
	runSIDCo(t, s, stats.DoubleGamma{Shape: 0.5, Scale: 0.01}, 100000, 0.001, 40, 0)
	if s.Stages() < 2 {
		t.Errorf("stages stayed at %d; expected adaptation upward", s.Stages())
	}
}

func TestSIDCoStaysSingleStageAtModerateRatio(t *testing.T) {
	// At delta = 0.25 = delta1 there is only one possible stage.
	s := NewE()
	runSIDCo(t, s, stats.Laplace{Scale: 0.01}, 50000, 0.25, 20, 0)
	if s.Stages() != 1 {
		t.Errorf("stages = %d, want 1", s.Stages())
	}
}

func TestSIDCoStageCap(t *testing.T) {
	s := New(Config{SID: SIDExponential, MaxStages: 2})
	runSIDCo(t, s, stats.DoubleGamma{Shape: 0.4, Scale: 0.01}, 50000, 0.001, 30, 0)
	if s.Stages() > 2 {
		t.Errorf("stages = %d exceeds cap", s.Stages())
	}
}

func TestSIDCoBetterThanSingleStageAtAggressiveRatio(t *testing.T) {
	// Head-to-head: adaptive multi-stage vs forced single stage on
	// gamma-distributed gradients at delta = 0.001 (the Section 2.4
	// motivation).
	dist := stats.DoubleGamma{Shape: 0.5, Scale: 0.01}
	const d, delta = 100000, 0.001

	multi := NewE()
	multiAvg := runSIDCo(t, multi, dist, d, delta, 50, 20)

	single := New(Config{SID: SIDExponential, MaxStages: 1})
	singleAvg := runSIDCo(t, single, dist, d, delta, 50, 20)

	multiErr := math.Abs(math.Log(multiAvg))
	singleErr := math.Abs(math.Log(singleAvg))
	if multiErr >= singleErr {
		t.Errorf("multi-stage error %v (ratio %v) not better than single-stage %v (ratio %v)",
			multiErr, multiAvg, singleErr, singleAvg)
	}
}

func TestSIDCoLastThresholdPositive(t *testing.T) {
	s := NewE()
	g := sampleVec(stats.Laplace{Scale: 1}, 10000, 3)
	if _, err := s.Compress(g, 0.01); err != nil {
		t.Fatal(err)
	}
	if !(s.LastThreshold() > 0) {
		t.Errorf("threshold = %v", s.LastThreshold())
	}
	if s.LastStagesUsed() < 1 {
		t.Errorf("stages used = %d", s.LastStagesUsed())
	}
}

func TestSIDCoAllZeroGradient(t *testing.T) {
	s := NewE()
	g := make([]float64, 1000)
	sp, err := s.Compress(g, 0.01)
	if err != nil {
		t.Fatalf("all-zero gradient should not error: %v", err)
	}
	// Threshold estimation degenerates (beta = 0, eta = 0); everything
	// "exceeds" a zero threshold, which is safe (it keeps the vector).
	if sp.Dim != 1000 {
		t.Errorf("dim = %d", sp.Dim)
	}
}

func TestSIDCoTinyVector(t *testing.T) {
	s := NewE()
	sp, err := s.Compress([]float64{0.5, -0.1, 0.2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NNZ() == 0 {
		t.Error("tiny vector lost everything")
	}
}

func TestSIDCoDeterministicGivenSameStream(t *testing.T) {
	// Two identical compressor instances fed the same gradients produce
	// identical selections (the algorithm has no internal randomness).
	a, b := NewE(), NewE()
	for i := 0; i < 10; i++ {
		g := sampleVec(stats.Laplace{Scale: 0.02}, 20000, int64(50+i))
		sa, err := a.Compress(g, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Compress(g, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if sa.NNZ() != sb.NNZ() {
			t.Fatalf("iteration %d: nondeterministic NNZ %d vs %d", i, sa.NNZ(), sb.NNZ())
		}
		for j := range sa.Idx {
			if sa.Idx[j] != sb.Idx[j] || sa.Vals[j] != sb.Vals[j] {
				t.Fatalf("iteration %d: selections differ at %d", i, j)
			}
		}
	}
}

func TestSIDCoEstimationBeatsBaselineEstimators(t *testing.T) {
	// The headline claim of Figure 1c: SIDCo's mean estimation error is
	// far smaller than RedSync's and GaussianKSGD's on heavy-tailed
	// gradients with outliers at delta = 0.001.
	rng := rand.New(rand.NewSource(60))
	const d, delta, iters = 100000, 0.001, 40
	k := compress.TargetK(d, delta)

	makeGrad := func() []float64 {
		g := make([]float64, d)
		for i := range g {
			mag := rng.ExpFloat64() * 0.01
			if rng.Intn(2) == 0 {
				mag = -mag
			}
			g[i] = mag
		}
		// Outlier contamination stressing max-based heuristics.
		for j := 0; j < 5; j++ {
			g[rng.Intn(d)] = (rng.Float64() - 0.5) * 10
		}
		return g
	}

	meanAbsLogErr := func(c compress.Compressor) float64 {
		sum, n := 0.0, 0
		for i := 0; i < iters; i++ {
			sp, err := c.Compress(makeGrad(), delta)
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(sp.NNZ()) / float64(k)
			if ratio <= 0 {
				ratio = 1e-6 // selected nothing: attribute a large error
			}
			if i >= 10 {
				sum += math.Abs(math.Log(ratio))
				n++
			}
		}
		return sum / float64(n)
	}

	sidcoErr := meanAbsLogErr(NewE())
	redsyncErr := meanAbsLogErr(compress.NewRedSync())
	gaussErr := meanAbsLogErr(compress.NewGaussianKSGD())

	if sidcoErr > 0.3 {
		t.Errorf("SIDCo-E mean |log ratio| = %v, want < 0.3", sidcoErr)
	}
	if sidcoErr*2 > redsyncErr {
		t.Errorf("SIDCo (%v) not clearly better than RedSync (%v)", sidcoErr, redsyncErr)
	}
	if sidcoErr*2 > gaussErr {
		t.Errorf("SIDCo (%v) not clearly better than GaussianKSGD (%v)", sidcoErr, gaussErr)
	}
}
