package netsim

import (
	"math"
	"testing"
)

func TestAllReduceDenseRingModel(t *testing.T) {
	n := Network{Workers: 8, BandwidthBps: 25e9, LatencySec: 0}
	bytes := 100 << 20 // 100 MiB
	got := n.AllReduceDense(bytes)
	// Ring: 2(N-1)/N * bytes over the wire.
	want := 2 * 7.0 / 8.0 * float64(bytes) * 8 / 25e9
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("allreduce = %v, want %v", got, want)
	}
}

func TestAllGatherSparseModel(t *testing.T) {
	n := Network{Workers: 8, BandwidthBps: 25e9, LatencySec: 0}
	bytes := 1 << 20
	got := n.AllGatherSparse(bytes)
	want := 7 * float64(bytes) * 8 / 25e9
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("allgather = %v, want %v", got, want)
	}
}

func TestLatencyTermsCounted(t *testing.T) {
	n := Network{Workers: 4, BandwidthBps: 1e12, LatencySec: 1e-3}
	// With huge bandwidth, latency dominates: 2(N-1) steps.
	if got := n.AllReduceDense(1000); math.Abs(got-6e-3) > 1e-6 {
		t.Errorf("allreduce latency share = %v", got)
	}
	if got := n.AllGatherSparse(1000); math.Abs(got-3e-3) > 1e-6 {
		t.Errorf("allgather latency share = %v", got)
	}
}

func TestSingleWorkerIsFree(t *testing.T) {
	n := Network{Workers: 1, BandwidthBps: 25e9, LatencySec: 1e-5}
	if n.AllReduceDense(1<<20) != 0 || n.AllGatherSparse(1<<20) != 0 || n.ParameterServer(1<<20, 1<<20) != 0 {
		t.Error("single worker communication should be free")
	}
}

func TestSparsificationWinsWhenSparseEnough(t *testing.T) {
	// The entire premise of the paper: at delta = 0.001 the sparse
	// all-gather beats the dense all-reduce even though all-gather scales
	// worse with N.
	n := Cluster25GbE(8)
	d := 66034000 // LSTM-PTB parameters
	denseBytes := 4 * d
	sparseBytes := 8 * d / 1000 // (idx+val) per kept element at 0.001
	dense := n.CommTime(denseBytes, 0, false)
	sparse := n.CommTime(0, sparseBytes, true)
	if sparse >= dense {
		t.Errorf("sparse %v not faster than dense %v at delta=0.001", sparse, dense)
	}
	// And at delta ~ 0.25 the crossover flips for 8 workers: 7*2delta > 2*7/8.
	sparseBytes = 8 * d / 4
	sparse = n.CommTime(0, sparseBytes, true)
	if sparse <= dense {
		t.Errorf("sparse %v should lose to dense %v at delta=0.25", sparse, dense)
	}
}

func TestParameterServerModel(t *testing.T) {
	n := Network{Workers: 8, BandwidthBps: 10e9, LatencySec: 0}
	got := n.ParameterServer(1<<20, 1<<20)
	want := 2 * 8 * float64(1<<20) * 8 / 10e9
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("ps = %v, want %v", got, want)
	}
}

func TestParameterServerAccounting(t *testing.T) {
	cases := []struct {
		name       string
		net        Network
		push, pull int
		want       float64
	}{
		{
			// N pushes + N pulls, each paying alpha: 2*4 messages.
			name: "per-message latency",
			net:  Network{Workers: 4, BandwidthBps: 1e15, LatencySec: 1e-3},
			push: 1000, pull: 1000,
			want: 8e-3 + 2*4*1000*8/1e15,
		},
		{
			name: "asymmetric push and pull",
			net:  Network{Workers: 2, BandwidthBps: 1e9, LatencySec: 1e-4},
			push: 1000, pull: 4000,
			want: 2*(1000*8/1e9+1e-4) + 2*(4000*8/1e9+1e-4),
		},
		{
			name: "single worker is free",
			net:  Network{Workers: 1, BandwidthBps: 1e9, LatencySec: 1e-3},
			push: 1 << 20, pull: 1 << 20,
			want: 0,
		},
		{
			name: "zero workers degenerate",
			net:  Network{Workers: 0, BandwidthBps: 1e9, LatencySec: 1e-3},
			push: 100, pull: 100,
			want: 0,
		},
		{
			name: "zero bandwidth degenerate",
			net:  Network{Workers: 4, BandwidthBps: 0, LatencySec: 1e-3},
			push: 100, pull: 100,
			want: 0,
		},
		{
			name: "empty messages still pay latency",
			net:  Network{Workers: 3, BandwidthBps: 1e9, LatencySec: 1e-3},
			push: 0, pull: 0,
			want: 6e-3,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.net.ParameterServer(c.push, c.pull)
			if c.want == 0 {
				if got != 0 {
					t.Errorf("ParameterServer = %v, want 0", got)
				}
				return
			}
			if math.Abs(got-c.want)/c.want > 1e-9 {
				t.Errorf("ParameterServer = %v, want %v", got, c.want)
			}
		})
	}
}

func TestCollectiveTimeDispatch(t *testing.T) {
	n := Cluster25GbE(8)
	denseBytes, sparseBytes := 4<<20, 1<<16
	cases := []struct {
		c          Collective
		compressed bool
		want       float64
	}{
		{CollectiveAuto, false, n.AllReduceDense(denseBytes)},
		{CollectiveAuto, true, n.AllGatherSparse(sparseBytes)},
		{CollectiveRing, false, n.AllReduceDense(denseBytes)},
		{CollectiveAllGather, true, n.AllGatherSparse(sparseBytes)},
		{CollectivePS, true, n.ParameterServer(sparseBytes, denseBytes)},
		{CollectivePS, false, n.ParameterServer(denseBytes, denseBytes)},
	}
	for _, c := range cases {
		if got := n.CollectiveTime(c.c, denseBytes, sparseBytes, c.compressed); got != c.want {
			t.Errorf("%v compressed=%v: %v, want %v", c.c, c.compressed, got, c.want)
		}
	}
}

func TestCollectiveMessageFormulas(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		if got := RingMessages(n); got != 2*(n-1) {
			t.Errorf("RingMessages(%d) = %d", n, got)
		}
		if got := AllGatherMessages(n); got != n-1 {
			t.Errorf("AllGatherMessages(%d) = %d", n, got)
		}
		if got := PSMessages(n); got != 2*n {
			t.Errorf("PSMessages(%d) = %d", n, got)
		}
	}
	if RingMessages(1) != 0 || AllGatherMessages(1) != 0 {
		t.Error("single worker should need no ring messages")
	}
	// PS keeps a distinct server node, so one worker still pushes and
	// pulls — matching what cluster.Engine actually puts on the wire.
	if PSMessages(1) != 2 {
		t.Errorf("PSMessages(1) = %d, want 2", PSMessages(1))
	}
	if PSMessages(0) != 0 {
		t.Errorf("PSMessages(0) = %d, want 0", PSMessages(0))
	}
}

func TestCollectiveStrings(t *testing.T) {
	for c, want := range map[Collective]string{
		CollectiveAuto: "auto", CollectiveRing: "ring",
		CollectiveAllGather: "allgather", CollectivePS: "ps",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestPresetClusters(t *testing.T) {
	if c := Cluster25GbE(8); c.Workers != 8 || c.BandwidthBps != 25e9 {
		t.Error("25GbE preset wrong")
	}
	if c := Cluster10GbE(8); c.BandwidthBps != 10e9 {
		t.Error("10GbE preset wrong")
	}
	if c := NVLinkNode(8); c.BandwidthBps <= 25e9 {
		t.Error("NVLink preset should be much faster than Ethernet")
	}
}

func TestDegenerateNetworks(t *testing.T) {
	bad := Network{Workers: 0, BandwidthBps: 1e9}
	if bad.AllReduceDense(100) != 0 {
		t.Error("invalid network should cost 0 (degenerate)")
	}
	bad = Network{Workers: 4, BandwidthBps: 0}
	if bad.AllGatherSparse(100) != 0 {
		t.Error("zero-bandwidth network should cost 0 (degenerate)")
	}
}

func TestPipelineSpan(t *testing.T) {
	cases := []struct {
		name    string
		compute []float64
		comm    []float64
		want    float64
	}{
		{"single chunk", []float64{3}, []float64{2}, 5},
		{"comm bound", []float64{1, 1, 1}, []float64{4, 4, 4}, 1 + 12},
		{"compute bound", []float64{4, 4, 4}, []float64{1, 1, 1}, 12 + 1},
		{"balanced", []float64{2, 2}, []float64{2, 2}, 2 + 2 + 2},
		{"empty", nil, nil, 0},
	}
	for _, tc := range cases {
		if got := PipelineSpan(tc.compute, tc.comm); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: PipelineSpan = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestChunkedAllGatherSparse(t *testing.T) {
	net := Network{Workers: 4, BandwidthBps: 1e9, LatencySec: 1e-4}
	// One chunk must price exactly like compress + monolithic all-gather.
	mono := 3e-3 + net.AllGatherSparse(120000)
	if got := net.ChunkedAllGatherSparse([]int{120000}, 3e-3); math.Abs(got-mono) > 1e-12 {
		t.Errorf("single chunk = %v, want %v", got, mono)
	}
	// Four equal chunks with compression dominating: the span approaches
	// total compression plus one chunk's collective.
	chunks := []int{30000, 30000, 30000, 30000}
	got := net.ChunkedAllGatherSparse(chunks, 3e-3)
	want := 4*3e-3 + net.AllGatherSparse(30000)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("compute-bound chunked = %v, want %v", got, want)
	}
	if got >= mono+3*3e-3 {
		t.Errorf("chunked %v should undercut serialised compress+comm %v", got, mono+3*3e-3)
	}
	// Degenerate fabric prices to zero, like the other collectives.
	if got := (Network{}).ChunkedAllGatherSparse(chunks, 1); got != 0 {
		t.Errorf("invalid network = %v, want 0", got)
	}
}

func TestChunkedAllGatherMessages(t *testing.T) {
	if got := ChunkedAllGatherMessages(4, 8); got != 8*3 {
		t.Errorf("got %d, want 24", got)
	}
	if got := ChunkedAllGatherMessages(4, 0); got != AllGatherMessages(4) {
		t.Errorf("chunks clamp: got %d, want %d", got, AllGatherMessages(4))
	}
	if got := ChunkedAllGatherMessages(1, 5); got != 0 {
		t.Errorf("single node: got %d, want 0", got)
	}
}
