// Package netsim models the communication stage of synchronous
// data-parallel training: ring all-reduce for dense gradients, all-gather
// for sparse (index, value) gradients, and a parameter-server alternative.
// Costs follow the standard alpha-beta (latency-bandwidth) collective
// model.
package netsim

import "fmt"

// Network describes the cluster fabric.
type Network struct {
	// Workers is the number of training nodes N.
	Workers int
	// BandwidthBps is per-link bandwidth in bits/second (the paper's
	// dedicated cluster uses 25 Gbps Ethernet).
	BandwidthBps float64
	// LatencySec is the per-message latency alpha.
	LatencySec float64
}

// Cluster25GbE returns the paper's dedicated 8-node cluster fabric.
func Cluster25GbE(workers int) Network {
	return Network{Workers: workers, BandwidthBps: 25e9, LatencySec: 20e-6}
}

// Cluster10GbE returns the 10 Gbps configuration of Section 4.1.
func Cluster10GbE(workers int) Network {
	return Network{Workers: workers, BandwidthBps: 10e9, LatencySec: 30e-6}
}

// NVLinkNode returns the shared multi-GPU single-node fabric of the
// Figure 13 experiment (fast intra-node interconnect).
func NVLinkNode(workers int) Network {
	return Network{Workers: workers, BandwidthBps: 200e9, LatencySec: 5e-6}
}

// DyadicLab returns a test fabric whose alpha-beta arithmetic is exact
// in float64: bandwidth 2^27 bits/s and latency 2^-20 s, both powers of
// two, so a transfer of b bytes costs b*2^-24 seconds — a dyadic
// rational for any integer payload size. Every closed form in this
// package is then a finite sum/product of dyadic rationals well inside
// float64's 53-bit mantissa, and cluster.Instrumented's incremental
// accumulation of the same quantities lands on bit-identical values.
// That is the fabric the trace-assembly cross-checks run on: assembled
// critical paths must equal these formulas exactly, not approximately.
// (~128 Mbps with ~1 microsecond latency — a plausible slow fabric, but
// chosen for representability, not realism.)
func DyadicLab(workers int) Network {
	return Network{Workers: workers, BandwidthBps: 1 << 27, LatencySec: 1.0 / (1 << 20)}
}

func (n Network) validate() error {
	if n.Workers < 1 {
		return fmt.Errorf("netsim: %d workers", n.Workers)
	}
	if n.BandwidthBps <= 0 {
		return fmt.Errorf("netsim: bandwidth %v", n.BandwidthBps)
	}
	return nil
}

// transfer returns the time to move b bytes over one link.
func (n Network) transfer(bytes float64) float64 {
	return bytes * 8 / n.BandwidthBps
}

// AllReduceDense returns the time of a ring all-reduce over a dense buffer
// of the given size: 2(N-1) steps each moving bytes/N.
func (n Network) AllReduceDense(bytes int) float64 {
	if err := n.validate(); err != nil || n.Workers == 1 {
		return 0
	}
	steps := float64(2 * (n.Workers - 1))
	return steps*n.transfer(float64(bytes)/float64(n.Workers)) + steps*n.LatencySec
}

// AllGatherSparse returns the time for every worker to receive every other
// worker's sparse gradient of the given encoded size (the collective used
// with sparsification, since sparse buffers cannot be reduced in-ring
// without densifying): N-1 steps each moving one worker's buffer.
func (n Network) AllGatherSparse(bytesPerWorker int) float64 {
	if err := n.validate(); err != nil || n.Workers == 1 {
		return 0
	}
	steps := float64(n.Workers - 1)
	return steps*n.transfer(float64(bytesPerWorker)) + steps*n.LatencySec
}

// ParameterServer returns the time for all workers to push their (sparse
// or dense) gradient of pushBytes to a central server and pull back an
// aggregate of pullBytes, assuming the server link is the bottleneck.
// Every push and every pull is a separate message, so each of the 2N
// transfers pays the per-message latency alpha.
func (n Network) ParameterServer(pushBytes, pullBytes int) float64 {
	if err := n.validate(); err != nil || n.Workers == 1 {
		return 0
	}
	w := float64(n.Workers)
	inbound := w * (n.transfer(float64(pushBytes)) + n.LatencySec)
	outbound := w * (n.transfer(float64(pullBytes)) + n.LatencySec)
	return inbound + outbound
}

// CommTime returns the gradient-exchange time for one iteration given the
// dense dimension and the per-worker sparse payload size in bytes; dense
// (nil payload semantics: bytesSparse < 0) uses ring all-reduce, sparse
// uses all-gather.
func (n Network) CommTime(denseBytes, sparseBytes int, compressed bool) float64 {
	return n.CollectiveTime(CollectiveAuto, denseBytes, sparseBytes, compressed)
}

// Collective names a gradient-exchange schedule. internal/cluster executes
// the same three schedules as real message exchanges; this package prices
// them analytically.
type Collective int

const (
	// CollectiveAuto picks ring all-reduce for dense exchanges and
	// all-gather for sparse ones — the pairing the paper's cluster uses.
	CollectiveAuto Collective = iota
	// CollectiveRing is ring all-reduce: 2(N-1) steps of bytes/N.
	CollectiveRing
	// CollectiveAllGather is the sparse all-gather ring: N-1 steps each
	// forwarding one worker's whole payload.
	CollectiveAllGather
	// CollectivePS is the central parameter server: N pushes, N pulls.
	CollectivePS
)

// String implements fmt.Stringer.
func (c Collective) String() string {
	switch c {
	case CollectiveAuto:
		return "auto"
	case CollectiveRing:
		return "ring"
	case CollectiveAllGather:
		return "allgather"
	case CollectivePS:
		return "ps"
	default:
		return fmt.Sprintf("collective(%d)", int(c))
	}
}

// CollectiveTime prices one gradient exchange over the chosen collective.
// denseBytes is the full-model payload (used by ring and as the PS pull
// size), sparseBytes the per-worker encoded payload (used by all-gather
// and as the PS push size when compressed).
func (n Network) CollectiveTime(c Collective, denseBytes, sparseBytes int, compressed bool) float64 {
	switch c {
	case CollectiveRing:
		return n.AllReduceDense(denseBytes)
	case CollectiveAllGather:
		return n.AllGatherSparse(sparseBytes)
	case CollectivePS:
		push := denseBytes
		if compressed {
			push = sparseBytes
		}
		return n.ParameterServer(push, denseBytes)
	default:
		if compressed {
			return n.AllGatherSparse(sparseBytes)
		}
		return n.AllReduceDense(denseBytes)
	}
}

// PipelineSpan returns the completion time of a two-stage pipeline:
// stage-one items (per-chunk compression, compute[i]) are produced
// serially on one device, and each finished item is shipped through a
// serial communication channel (comm[i]). Chunk i's transmission starts
// when its compression is done and the channel is free, so compression of
// chunk i+1 overlaps the transmission of chunk i. The two slices must
// have equal length; the result is the time the last transmission ends.
//
// This is the closed-form counterpart of internal/cluster's chunked
// execution mode: with a single chunk it degenerates to compute + comm,
// and the monolithic-vs-chunked gap is exactly the hidden overlap.
func PipelineSpan(compute, comm []float64) float64 {
	computeEnd, commEnd := 0.0, 0.0
	for i, c := range compute {
		computeEnd += c
		start := computeEnd
		if commEnd > start {
			start = commEnd
		}
		commEnd = start + comm[i]
	}
	return commEnd
}

// ChunkedAllGatherSparse prices the chunked, pipelined sparse all-gather:
// the per-worker payload is split into chunks of the given encoded sizes,
// each chunk costs compressSecPerChunk to produce, and chunk i+1's
// compression overlaps chunk i's ring all-gather. Each chunk's collective
// pays the full N-1 steps of per-message latency, so chunking trades
// (C-1)*(N-1) extra alphas for the overlap — the model reproduces the
// measured crossover where too-small chunks lose to latency.
func (n Network) ChunkedAllGatherSparse(chunkBytes []int, compressSecPerChunk float64) float64 {
	if err := n.validate(); err != nil {
		return 0
	}
	computeEnd, commEnd := 0.0, 0.0
	for _, b := range chunkBytes {
		computeEnd += compressSecPerChunk
		start := computeEnd
		if commEnd > start {
			start = commEnd
		}
		commEnd = start + n.AllGatherSparse(b)
	}
	return commEnd
}

// Message-count formulas of the three collectives, shared with
// internal/cluster's instrumented-transport tests: the analytic model
// charges one latency alpha per step, and the message-passing engine must
// put exactly that many messages on the wire.

// RingMessages returns the messages each node sends in a ring all-reduce
// of n workers: N-1 reduce-scatter steps plus N-1 all-gather steps.
func RingMessages(n int) int {
	if n <= 1 {
		return 0
	}
	return 2 * (n - 1)
}

// AllGatherMessages returns the messages each node sends in a ring
// all-gather of n workers: N-1 forwarding steps.
func AllGatherMessages(n int) int {
	if n <= 1 {
		return 0
	}
	return n - 1
}

// ChunkedAllGatherMessages returns the messages each node sends in a
// chunked ring all-gather: one full all-gather per chunk.
func ChunkedAllGatherMessages(n, chunks int) int {
	if chunks < 1 {
		chunks = 1
	}
	return chunks * AllGatherMessages(n)
}

// PSMessages returns the total messages of a parameter-server exchange
// with n workers: N pushes plus N pulls. Unlike the ring collectives a
// single worker still exchanges 2 messages — the server is a distinct
// node.
func PSMessages(n int) int {
	if n < 1 {
		return 0
	}
	return 2 * n
}

// Byte closed forms of the three collectives. Like the message counts
// these are exact integer identities, not estimates: the instrumented
// transport's byte counters must land on them to the byte, for any wire
// format, because the formulas take the actual encoded payload sizes as
// inputs (encoding.Size supplies them for the data-independent formats).

// AllGatherTrafficBytes returns the bytes the ring all-gather moves to
// distribute ONE worker's encoded payload to the n-1 others: the payload
// is forwarded once per step. Sum it over every worker's (per-chunk)
// payload for the cluster total; divide that by n for the per-node send
// total only when payloads are uniform.
func AllGatherTrafficBytes(n, payloadBytes int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) * payloadBytes
}

// RingTrafficBytes returns the total bytes all n nodes send in one ring
// all-reduce over a dense buffer of denseBytes: each of the 2(n-1) steps
// moves every node's chunk, and the chunks partition the buffer, so each
// step moves exactly denseBytes across the cluster — regardless of how
// unevenly the d/n chunking rounds.
func RingTrafficBytes(n, denseBytes int) int {
	if n <= 1 {
		return 0
	}
	return 2 * (n - 1) * denseBytes
}

// PSTrafficBytes returns the total bytes of a parameter-server exchange
// with n workers: every worker pushes pushBytes and pulls pullBytes.
func PSTrafficBytes(n, pushBytes, pullBytes int) int {
	if n < 1 {
		return 0
	}
	return n * (pushBytes + pullBytes)
}
