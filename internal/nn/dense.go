package nn

import (
	"fmt"
	"math/rand"
)

// Dense is a fully-connected layer: y = x W + b, with x of shape [B, in]
// and y of shape [B, out].
type Dense struct {
	In, Out int
	W       *Param // shape [in, out]
	B       *Param // shape [out]

	x           *Tensor // cached input
	out, gradIn *Tensor // reused output / input-gradient storage
}

// NewDense creates a dense layer with Glorot-uniform weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   newParam(name+".W", in, out),
		B:   newParam(name+".b", out),
	}
	initUniform(rng, d.W.W, in, out)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.W.Name[:len(d.W.Name)-2] }

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: dense %s: input shape %v, want [B, %d]", d.Name(), x.Shape, d.In))
	}
	d.x = x
	batch := x.Shape[0]
	out := ensure(&d.out, batch, d.Out)
	for b := 0; b < batch; b++ {
		xRow := x.Data[b*d.In : (b+1)*d.In]
		oRow := out.Data[b*d.Out : (b+1)*d.Out]
		copy(oRow, d.B.W)
		for i, xv := range xRow {
			if xv == 0 {
				continue
			}
			wRow := d.W.W[i*d.Out : (i+1)*d.Out]
			for j, wv := range wRow {
				oRow[j] += xv * wv
			}
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *Tensor) *Tensor {
	batch := d.x.Shape[0]
	gradIn := ensure(&d.gradIn, batch, d.In)
	for b := 0; b < batch; b++ {
		xRow := d.x.Data[b*d.In : (b+1)*d.In]
		gRow := gradOut.Data[b*d.Out : (b+1)*d.Out]
		giRow := gradIn.Data[b*d.In : (b+1)*d.In]
		for j, gv := range gRow {
			d.B.G[j] += gv
		}
		for i, xv := range xRow {
			wRow := d.W.W[i*d.Out : (i+1)*d.Out]
			wgRow := d.W.G[i*d.Out : (i+1)*d.Out]
			sum := 0.0
			for j, gv := range gRow {
				wgRow[j] += xv * gv
				sum += wRow[j] * gv
			}
			giRow[i] = sum
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Embedding maps integer token ids (encoded as float64 in the input
// tensor) of shape [B, T] to dense vectors of shape [B, T, E].
type Embedding struct {
	Vocab, Dim int
	W          *Param // shape [vocab, dim]

	ids []int
	bt  int // batch * time of the cached forward
	t   int

	out, gradIn *Tensor
}

// NewEmbedding creates an embedding table with small random init.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{Vocab: vocab, Dim: dim, W: newParam(name+".W", vocab, dim)}
	initUniform(rng, e.W.W, vocab, dim)
	return e
}

// Name implements Layer.
func (e *Embedding) Name() string { return e.W.Name[:len(e.W.Name)-2] }

// Forward implements Layer.
func (e *Embedding) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 2 {
		panic(fmt.Sprintf("nn: embedding: input shape %v, want [B, T]", x.Shape))
	}
	batch, T := x.Shape[0], x.Shape[1]
	e.bt = batch * T
	e.t = T
	e.ids = e.ids[:0]
	out := ensure(&e.out, batch, T, e.Dim)
	for n := 0; n < batch*T; n++ {
		id := int(x.Data[n])
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("nn: embedding: token id %d out of vocab %d", id, e.Vocab))
		}
		e.ids = append(e.ids, id)
		copy(out.Data[n*e.Dim:(n+1)*e.Dim], e.W.W[id*e.Dim:(id+1)*e.Dim])
	}
	return out
}

// Backward implements Layer. The returned gradient w.r.t. the integer
// input is zero (ids are not differentiable) but has the input's shape so
// Sequential chaining still works.
func (e *Embedding) Backward(gradOut *Tensor) *Tensor {
	for n, id := range e.ids {
		g := gradOut.Data[n*e.Dim : (n+1)*e.Dim]
		wg := e.W.G[id*e.Dim : (id+1)*e.Dim]
		for j, gv := range g {
			wg[j] += gv
		}
	}
	return ensure(&e.gradIn, e.bt/e.t, e.t)
}

// Params implements Layer.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }

// TimeDistributed applies a Dense layer independently at every timestep of
// a [B, T, in] tensor, producing [B, T, out] — the output projection of
// the language model.
type TimeDistributed struct {
	Inner *Dense

	b, t                     int
	flatView, outView        *Tensor
	gradFlatView, gradInView *Tensor
}

// NewTimeDistributed wraps dense.
func NewTimeDistributed(inner *Dense) *TimeDistributed {
	return &TimeDistributed{Inner: inner}
}

// Name implements Layer.
func (td *TimeDistributed) Name() string { return "td-" + td.Inner.Name() }

// Forward implements Layer.
func (td *TimeDistributed) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: time-distributed: input shape %v, want [B, T, in]", x.Shape))
	}
	td.b, td.t = x.Shape[0], x.Shape[1]
	flat := viewInto(&td.flatView, x, td.b*td.t, x.Shape[2])
	out := td.Inner.Forward(flat)
	return viewInto(&td.outView, out, td.b, td.t, td.Inner.Out)
}

// Backward implements Layer.
func (td *TimeDistributed) Backward(gradOut *Tensor) *Tensor {
	flat := viewInto(&td.gradFlatView, gradOut, td.b*td.t, td.Inner.Out)
	gradIn := td.Inner.Backward(flat)
	return viewInto(&td.gradInView, gradIn, td.b, td.t, td.Inner.In)
}

// Params implements Layer.
func (td *TimeDistributed) Params() []*Param { return td.Inner.Params() }
