package nn

import "math"

// Optimizer applies parameter updates from accumulated gradients.
type Optimizer interface {
	// Name identifies the optimizer.
	Name() string
	// Step applies one update using each parameter's G and zeroes it.
	Step(params []*Param)
	// StepFlat applies one update from a flat aggregated gradient (the
	// distributed path: gradients arrive from the collective, not from
	// local Backward).
	StepFlat(params []*Param, flat []float64)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// WeightDecay is the L2 coefficient (0 to disable).
	WeightDecay float64
}

// Name implements Optimizer.
func (*SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.W {
			g := p.G[i] + s.WeightDecay*p.W[i]
			p.W[i] -= s.LR * g
			p.G[i] = 0
		}
	}
}

// StepFlat implements Optimizer.
func (s *SGD) StepFlat(params []*Param, flat []float64) {
	off := 0
	for _, p := range params {
		for i := range p.W {
			g := flat[off+i] + s.WeightDecay*p.W[i]
			p.W[i] -= s.LR * g
		}
		off += len(p.W)
	}
}

// Momentum is SGD with classical or Nesterov momentum — the paper's local
// optimizers (Table 1 uses Nesterov momentum SGD for the RNN and ImageNet
// benchmarks).
type Momentum struct {
	// LR is the learning rate.
	LR float64
	// Mu is the momentum coefficient (e.g. 0.9).
	Mu float64
	// Nesterov selects the Nesterov-accelerated update.
	Nesterov bool
	// WeightDecay is the L2 coefficient.
	WeightDecay float64

	vel map[*Param][]float64
}

// Name implements Optimizer.
func (m *Momentum) Name() string {
	if m.Nesterov {
		return "nesterov"
	}
	return "momentum"
}

func (m *Momentum) velocity(p *Param) []float64 {
	if m.vel == nil {
		m.vel = make(map[*Param][]float64)
	}
	v, ok := m.vel[p]
	if !ok {
		v = make([]float64, len(p.W))
		m.vel[p] = v
	}
	return v
}

// Step implements Optimizer.
func (m *Momentum) Step(params []*Param) {
	for _, p := range params {
		v := m.velocity(p)
		for i := range p.W {
			g := p.G[i] + m.WeightDecay*p.W[i]
			v[i] = m.Mu*v[i] + g
			if m.Nesterov {
				p.W[i] -= m.LR * (g + m.Mu*v[i])
			} else {
				p.W[i] -= m.LR * v[i]
			}
			p.G[i] = 0
		}
	}
}

// StepFlat implements Optimizer.
func (m *Momentum) StepFlat(params []*Param, flat []float64) {
	off := 0
	for _, p := range params {
		v := m.velocity(p)
		for i := range p.W {
			g := flat[off+i] + m.WeightDecay*p.W[i]
			v[i] = m.Mu*v[i] + g
			if m.Nesterov {
				p.W[i] -= m.LR * (g + m.Mu*v[i])
			} else {
				p.W[i] -= m.LR * v[i]
			}
		}
		off += len(p.W)
	}
}

// ClipGradNorm rescales all parameter gradients so their global L2 norm is
// at most maxNorm (the RNN benchmarks train with gradient clipping). It
// returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	sum := 0.0
	for _, p := range params {
		for _, g := range p.G {
			sum += g * g
		}
	}
	norm := math.Sqrt(sum)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
	}
	return norm
}

// ClipFlatNorm is ClipGradNorm for a flat gradient vector.
func ClipFlatNorm(flat []float64, maxNorm float64) float64 {
	sum := 0.0
	for _, g := range flat {
		sum += g * g
	}
	norm := math.Sqrt(sum)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for i := range flat {
			flat[i] *= scale
		}
	}
	return norm
}
