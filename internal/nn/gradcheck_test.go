package nn

import (
	"math"
	"math/rand"
	"testing"
)

// lossOf runs a full forward pass and returns the scalar loss.
func lossOf(model Layer, loss Loss, x *Tensor, targets []int) float64 {
	return loss.Forward(model.Forward(x.Clone()), targets)
}

// checkParamGradients verifies every parameter gradient of model against
// central finite differences of the loss. It checks up to maxPerParam
// randomly chosen coordinates per parameter.
func checkParamGradients(t *testing.T, model Layer, loss Loss, x *Tensor, targets []int, maxPerParam int, tol float64) {
	t.Helper()
	// Analytic gradients.
	for _, p := range model.Params() {
		p.ZeroGrad()
	}
	l := loss.Forward(model.Forward(x.Clone()), targets)
	if math.IsNaN(l) {
		t.Fatal("loss is NaN")
	}
	model.Backward(loss.Backward())

	rng := rand.New(rand.NewSource(99))
	const h = 1e-5
	for _, p := range model.Params() {
		analytic := append([]float64(nil), p.G...)
		n := len(p.W)
		checks := maxPerParam
		if checks > n {
			checks = n
		}
		for c := 0; c < checks; c++ {
			i := rng.Intn(n)
			orig := p.W[i]
			p.W[i] = orig + h
			lp := lossOf(model, loss, x, targets)
			p.W[i] = orig - h
			lm := lossOf(model, loss, x, targets)
			p.W[i] = orig
			numeric := (lp - lm) / (2 * h)
			diff := math.Abs(numeric - analytic[i])
			scale := math.Max(1e-4, math.Max(math.Abs(numeric), math.Abs(analytic[i])))
			if diff/scale > tol {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic[i], numeric)
			}
		}
	}
}

// checkInputGradients verifies dL/dx against finite differences.
func checkInputGradients(t *testing.T, model Layer, loss Loss, x *Tensor, targets []int, maxChecks int, tol float64) {
	t.Helper()
	for _, p := range model.Params() {
		p.ZeroGrad()
	}
	loss.Forward(model.Forward(x.Clone()), targets)
	gradIn := model.Backward(loss.Backward())

	rng := rand.New(rand.NewSource(98))
	const h = 1e-5
	checks := maxChecks
	if checks > x.Len() {
		checks = x.Len()
	}
	for c := 0; c < checks; c++ {
		i := rng.Intn(x.Len())
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := lossOf(model, loss, x, targets)
		x.Data[i] = orig - h
		lm := lossOf(model, loss, x, targets)
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		diff := math.Abs(numeric - gradIn.Data[i])
		scale := math.Max(1e-4, math.Max(math.Abs(numeric), math.Abs(gradIn.Data[i])))
		if diff/scale > tol {
			t.Errorf("input[%d]: analytic %v vs numeric %v", i, gradIn.Data[i], numeric)
		}
	}
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	x := NewTensor(shape...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func randTargets(rng *rand.Rand, n, classes int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(classes)
	}
	return out
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewSequential(NewDense("d1", 7, 5, rng))
	x := randTensor(rng, 4, 7)
	targets := randTargets(rng, 4, 5)
	checkParamGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 20, 1e-4)
	checkInputGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 20, 1e-4)
}

func TestMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewSequential(
		NewDense("d1", 6, 8, rng),
		&ReLU{},
		NewDense("d2", 8, 8, rng),
		&Tanh{},
		NewDense("d3", 8, 3, rng),
	)
	x := randTensor(rng, 5, 6)
	targets := randTargets(rng, 5, 3)
	checkParamGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 15, 2e-4)
	checkInputGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 15, 2e-4)
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := NewSequential(NewDense("d1", 4, 4, rng), &Sigmoid{}, NewDense("d2", 4, 2, rng))
	x := randTensor(rng, 3, 4)
	targets := randTargets(rng, 3, 2)
	checkParamGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 15, 2e-4)
}

func TestConvNetGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := NewSequential(
		NewConv2D("c1", 2, 3, 3, rng),
		&ReLU{},
		&MaxPool2D{},
		&Flatten{},
		NewDense("d1", 3*3*3, 4, rng),
	)
	x := randTensor(rng, 2, 2, 8, 8)
	targets := randTargets(rng, 2, 4)
	checkParamGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 15, 3e-4)
	checkInputGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 15, 3e-4)
}

func TestSimpleRNNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rnn := NewSimpleRNN("r1", 3, 5, rng)
	model := NewSequential(rnn, NewTimeDistributed(NewDense("out", 5, 4, rng)))
	x := randTensor(rng, 2, 6, 3) // batch 2, seq 6
	targets := randTargets(rng, 2*6, 4)
	checkParamGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 15, 3e-4)
	checkInputGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 15, 3e-4)
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lstm := NewLSTM("l1", 3, 4, rng)
	model := NewSequential(lstm, NewTimeDistributed(NewDense("out", 4, 3, rng)))
	x := randTensor(rng, 2, 5, 3)
	targets := randTargets(rng, 2*5, 3)
	checkParamGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 20, 3e-4)
	checkInputGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 20, 3e-4)
}

func TestEmbeddingLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := NewSequential(
		NewEmbedding("emb", 10, 4, rng),
		NewLSTM("l1", 4, 5, rng),
		NewTimeDistributed(NewDense("out", 5, 10, rng)),
	)
	// Token-id input.
	x := NewTensor(2, 4)
	for i := range x.Data {
		x.Data[i] = float64(rng.Intn(10))
	}
	targets := randTargets(rng, 2*4, 10)
	checkParamGradients(t, model, &SoftmaxCrossEntropy{}, x, targets, 20, 3e-4)
}

func TestMSEGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model := NewSequential(NewDense("d1", 3, 2, rng))
	x := randTensor(rng, 4, 3)
	loss := &MSE{}
	vals := make([]float64, 8)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	loss.SetTargetValues(vals)
	checkParamGradients(t, model, loss, x, nil, 10, 1e-4)
	checkInputGradients(t, model, loss, x, nil, 10, 1e-4)
}

func TestXentIgnoresPaddedTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	y := randTensor(rng, 4, 3)
	loss := &SoftmaxCrossEntropy{}
	full := loss.Forward(y, []int{0, 1, 2, 0})
	masked := loss.Forward(y, []int{0, 1, -1, -1})
	if math.IsNaN(full) || math.IsNaN(masked) {
		t.Fatal("NaN loss")
	}
	grad := loss.Backward()
	// Gradient rows for masked targets must be zero.
	for j := 2 * 3; j < 4*3; j++ {
		if grad.Data[j] != 0 {
			t.Fatalf("masked row has gradient: %v", grad.Data[j])
		}
	}
	// All-masked batch gives zero loss and gradient.
	zero := loss.Forward(y, []int{-1, -1, -1, -1})
	if zero != 0 {
		t.Errorf("all-masked loss = %v", zero)
	}
}
