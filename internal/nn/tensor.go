// Package nn is a small, exact neural-network library: dense,
// convolutional and recurrent layers with hand-derived backpropagation,
// softmax cross-entropy and MSE losses, and SGD-family optimizers. It
// exists to produce genuine non-stationary gradient streams for the
// compression experiments — the substitution for the PyTorch models the
// paper trains — so correctness (verified by finite-difference gradient
// checks) matters more than speed.
package nn

import "fmt"

// Tensor is a dense n-dimensional array in row-major order.
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	return &Tensor{Shape: shape, Data: make([]float64, Volume(shape))}
}

// Volume returns the number of elements implied by shape.
func Volume(shape []int) int {
	v := 1
	for _, s := range shape {
		if s < 0 {
			// The copy keeps the panic message intact without making the
			// shape parameter escape: Volume sits on the allocation-free
			// hot path of every layer's ensure call, where a heap-escaping
			// variadic slice would cost one allocation per layer per pass.
			panic(fmt.Sprintf("nn: negative dimension %v", append([]int(nil), shape...)))
		}
		v *= s
	}
	return v
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape of equal volume. The data is
// shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Volume(shape) != len(t.Data) {
		panic(fmt.Sprintf("nn: reshape %v -> %v changes volume", t.Shape, shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// ensure returns the cached tensor resized to shape with zeroed storage —
// the steady-state replacement for NewTensor inside layer Forward and
// Backward passes. Each layer owns its output and input-gradient buffers,
// so once batch shapes stabilise a full forward/backward allocates
// nothing. Callers get NewTensor semantics (zeroed data) with recycled
// backing arrays; the previous pass's result becomes invalid, which is
// safe because training consumes activations within the step that
// produced them.
func ensure(cache **Tensor, shape ...int) *Tensor {
	n := Volume(shape)
	t := *cache
	if t == nil {
		t = &Tensor{}
		*cache = t
	}
	if cap(t.Data) < n {
		t.Data = make([]float64, n)
	} else {
		t.Data = t.Data[:n]
		clear(t.Data)
	}
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// scratch returns a zeroed []float64 of length n backed by *buf, growing
// it as needed — the slice counterpart of ensure for recurrence state and
// gate caches.
func scratch(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// viewInto reshapes src into the cached view tensor without copying —
// the zero-allocation counterpart of Reshape for layers that only
// re-interpret shapes (Flatten, TimeDistributed).
func viewInto(cache **Tensor, src *Tensor, shape ...int) *Tensor {
	if Volume(shape) != len(src.Data) {
		// Copied for the same no-escape reason as in Volume.
		panic(fmt.Sprintf("nn: reshape %v -> %v changes volume", src.Shape, append([]int(nil), shape...)))
	}
	t := *cache
	if t == nil {
		t = &Tensor{}
		*cache = t
	}
	t.Data = src.Data
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// Param is a trainable parameter: weights plus accumulated gradient.
type Param struct {
	// Name identifies the parameter in diagnostics ("dense1.W").
	Name string
	// W is the weight storage.
	W []float64
	// G is the gradient accumulated by Backward; optimizers consume and
	// zero it.
	G []float64
	// Shape documents the logical shape of W.
	Shape []int
}

func newParam(name string, shape ...int) *Param {
	n := Volume(shape)
	return &Param{Name: name, W: make([]float64, n), G: make([]float64, n), Shape: shape}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// ParamCount sums the weight counts of params.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.W)
	}
	return n
}

// FlattenGrads concatenates all parameter gradients into dst (allocating
// if nil) in parameter order — the vector handed to the compressor each
// iteration.
func FlattenGrads(params []*Param, dst []float64) []float64 {
	n := ParamCount(params)
	if dst == nil {
		dst = make([]float64, n)
	}
	if len(dst) != n {
		panic("nn: FlattenGrads destination size mismatch")
	}
	off := 0
	for _, p := range params {
		copy(dst[off:], p.G)
		off += len(p.G)
	}
	return dst
}

// ScatterGrads writes a flat gradient vector back into the parameter
// gradient slots — the inverse of FlattenGrads, applied after aggregation.
func ScatterGrads(params []*Param, flat []float64) {
	if len(flat) != ParamCount(params) {
		panic("nn: ScatterGrads size mismatch")
	}
	off := 0
	for _, p := range params {
		copy(p.G, flat[off:off+len(p.G)])
		off += len(p.G)
	}
}

// FlattenWeights concatenates all weights (for checkpoint comparison in
// tests).
func FlattenWeights(params []*Param, dst []float64) []float64 {
	n := ParamCount(params)
	if dst == nil {
		dst = make([]float64, n)
	}
	off := 0
	for _, p := range params {
		copy(dst[off:], p.W)
		off += len(p.W)
	}
	return dst
}
