package nn

import (
	"math"
	"math/rand"
	"testing"
)

// xorBatch builds the classic XOR classification problem.
func xorBatch() (*Tensor, []int) {
	x := NewTensor(4, 2)
	copy(x.Data, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	return x, []int{0, 1, 1, 0}
}

func trainSteps(model *Sequential, loss Loss, opt Optimizer, x *Tensor, targets []int, steps int) float64 {
	var l float64
	for i := 0; i < steps; i++ {
		model.ZeroGrad()
		l = loss.Forward(model.Forward(x.Clone()), targets)
		model.Backward(loss.Backward())
		opt.Step(model.Params())
	}
	return l
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	model := NewSequential(
		NewDense("d1", 2, 8, rng),
		&Tanh{},
		NewDense("d2", 8, 2, rng),
	)
	x, targets := xorBatch()
	loss := &SoftmaxCrossEntropy{}
	final := trainSteps(model, loss, &SGD{LR: 0.5}, x, targets, 800)
	if final > 0.05 {
		t.Fatalf("XOR loss after training = %v", final)
	}
	if acc := Accuracy(model.Forward(x.Clone()), targets); acc != 1 {
		t.Fatalf("XOR accuracy = %v", acc)
	}
}

func TestMomentumFasterThanSGDOnQuadratic(t *testing.T) {
	// On an ill-conditioned quadratic (linear regression), momentum should
	// reach a lower loss than plain SGD in the same step budget.
	build := func(seed int64) (*Sequential, *MSE, *Tensor) {
		rng := rand.New(rand.NewSource(seed))
		model := NewSequential(NewDense("d", 4, 1, rng))
		x := NewTensor(16, 4)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		// Stretch one input dimension to worsen conditioning.
		for r := 0; r < 16; r++ {
			x.Data[r*4] *= 8
		}
		loss := &MSE{}
		vals := make([]float64, 16)
		for i := range vals {
			vals[i] = x.Data[i*4]*0.5 - x.Data[i*4+1]
		}
		loss.SetTargetValues(vals)
		return model, loss, x
	}

	model1, loss1, x1 := build(11)
	l1 := trainSteps(model1, loss1, &SGD{LR: 0.002}, x1, nil, 300)
	model2, loss2, x2 := build(11)
	l2 := trainSteps(model2, loss2, &Momentum{LR: 0.002, Mu: 0.9, Nesterov: true}, x2, nil, 300)
	if l2 >= l1 {
		t.Errorf("nesterov %v not better than sgd %v", l2, l1)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := newParam("w", 4)
	for i := range p.W {
		p.W[i] = rng.NormFloat64()
	}
	before := math.Abs(p.W[0]) + math.Abs(p.W[1]) + math.Abs(p.W[2]) + math.Abs(p.W[3])
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	for i := 0; i < 20; i++ {
		opt.Step([]*Param{p}) // zero gradient: pure decay
	}
	after := math.Abs(p.W[0]) + math.Abs(p.W[1]) + math.Abs(p.W[2]) + math.Abs(p.W[3])
	if after >= before {
		t.Errorf("weights grew under decay: %v -> %v", before, after)
	}
}

func TestStepFlatMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	build := func() []*Param {
		a := newParam("a", 3)
		b := newParam("b", 2)
		for i := range a.W {
			a.W[i] = rng.NormFloat64()
		}
		for i := range b.W {
			b.W[i] = rng.NormFloat64()
		}
		return []*Param{a, b}
	}
	p1 := build()
	rng = rand.New(rand.NewSource(13))
	p2 := build()
	grad := []float64{1, -2, 3, 0.5, -0.5}

	// Path 1: gradient in param slots.
	off := 0
	for _, p := range p1 {
		copy(p.G, grad[off:off+len(p.G)])
		off += len(p.G)
	}
	o1 := &Momentum{LR: 0.1, Mu: 0.9, Nesterov: true}
	o1.Step(p1)

	// Path 2: flat gradient.
	o2 := &Momentum{LR: 0.1, Mu: 0.9, Nesterov: true}
	o2.StepFlat(p2, grad)

	for i := range p1 {
		for j := range p1[i].W {
			if math.Abs(p1[i].W[j]-p2[i].W[j]) > 1e-15 {
				t.Fatalf("param %d[%d]: %v vs %v", i, j, p1[i].W[j], p2[i].W[j])
			}
		}
	}
}

func TestFlattenScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := newParam("a", 2, 3)
	b := newParam("b", 4)
	for i := range a.G {
		a.G[i] = rng.NormFloat64()
	}
	for i := range b.G {
		b.G[i] = rng.NormFloat64()
	}
	params := []*Param{a, b}
	flat := FlattenGrads(params, nil)
	if len(flat) != 10 {
		t.Fatalf("flat len = %d", len(flat))
	}
	want := append(append([]float64{}, a.G...), b.G...)
	for i := range want {
		if flat[i] != want[i] {
			t.Fatal("flatten order wrong")
		}
	}
	// Scatter back doubled values.
	for i := range flat {
		flat[i] *= 2
	}
	ScatterGrads(params, flat)
	for i := range a.G {
		if a.G[i] != want[i]*2 {
			t.Fatal("scatter wrong")
		}
	}
	if ParamCount(params) != 10 {
		t.Errorf("ParamCount = %d", ParamCount(params))
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 2)
	p.G[0], p.G[1] = 3, 4 // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if pre != 5 {
		t.Errorf("pre-clip norm = %v", pre)
	}
	if math.Abs(p.G[0]-0.6) > 1e-12 || math.Abs(p.G[1]-0.8) > 1e-12 {
		t.Errorf("clipped = %v", p.G)
	}
	// No-op below the limit.
	p.G[0], p.G[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.G[0] != 0.3 {
		t.Error("clip modified in-limit gradient")
	}

	flat := []float64{3, 4}
	ClipFlatNorm(flat, 1)
	if math.Abs(flat[0]-0.6) > 1e-12 {
		t.Errorf("flat clip = %v", flat)
	}
}

func TestLSTMLearnsCopyTask(t *testing.T) {
	// Predict the previous token: a one-step memory task an LSTM must
	// solve nearly perfectly.
	rng := rand.New(rand.NewSource(15))
	const vocab, T, batch = 5, 8, 8
	model := NewSequential(
		NewEmbedding("emb", vocab, 8, rng),
		NewLSTM("l1", 8, 16, rng),
		NewTimeDistributed(NewDense("out", 16, vocab, rng)),
	)
	loss := &SoftmaxCrossEntropy{}
	opt := &Momentum{LR: 0.25, Mu: 0.9, Nesterov: true}
	var final float64
	for step := 0; step < 300; step++ {
		x := NewTensor(batch, T)
		targets := make([]int, batch*T)
		for b := 0; b < batch; b++ {
			prev := -1
			for tt := 0; tt < T; tt++ {
				tok := rng.Intn(vocab)
				x.Data[b*T+tt] = float64(tok)
				targets[b*T+tt] = prev // predict previous token
				if tt == 0 {
					targets[b*T+tt] = -1 // nothing to predict at t=0
				}
				prev = tok
			}
		}
		model.ZeroGrad()
		final = loss.Forward(model.Forward(x), targets)
		model.Backward(loss.Backward())
		ClipGradNorm(model.Params(), 5)
		opt.Step(model.Params())
	}
	if final > 0.2 {
		t.Errorf("copy-task loss = %v after training", final)
	}
}

func TestPerplexity(t *testing.T) {
	if got := Perplexity(0); got != 1 {
		t.Errorf("Perplexity(0) = %v", got)
	}
	if got := Perplexity(math.Log(50)); math.Abs(got-50) > 1e-9 {
		t.Errorf("Perplexity(log 50) = %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	y := NewTensor(2, 3)
	copy(y.Data, []float64{1, 5, 2 /* argmax 1 */, 9, 0, 3 /* argmax 0 */})
	if got := Accuracy(y, []int{1, 0}); got != 1 {
		t.Errorf("accuracy = %v", got)
	}
	if got := Accuracy(y, []int{1, 2}); got != 0.5 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestReshapeAndVolume(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Len() != 6 || x.Dim(1) != 3 {
		t.Fatal("tensor basics wrong")
	}
	y := x.Reshape(3, 2)
	if y.Shape[0] != 3 {
		t.Fatal("reshape wrong")
	}
	y.Data[0] = 7
	if x.Data[0] != 7 {
		t.Fatal("reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Error("volume-changing reshape should panic")
		}
	}()
	x.Reshape(4, 2)
}
