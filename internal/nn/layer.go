package nn

import (
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a network. Forward must be called
// before Backward; layers cache whatever activations they need for the
// backward pass (single in-flight batch).
type Layer interface {
	// Name identifies the layer in diagnostics.
	Name() string
	// Forward computes the layer output for x.
	Forward(x *Tensor) *Tensor
	// Backward receives dL/d(output) and returns dL/d(input), adding
	// parameter gradients into the layer's Params.
	Backward(gradOut *Tensor) *Tensor
	// Params returns the trainable parameters (empty for stateless
	// layers).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return "sequential" }

// Forward implements Layer.
func (s *Sequential) Forward(x *Tensor) *Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(gradOut *Tensor) *Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// initUniform fills w with Glorot/Xavier uniform values for the given fan
// counts.
func initUniform(rng *rand.Rand, w []float64, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (2*rng.Float64() - 1) * limit
	}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask        []bool
	out, gradIn *Tensor
}

// Name implements Layer.
func (*ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := ensure(&r.out, x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			out.Data[i] = v
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *Tensor) *Tensor {
	in := ensure(&r.gradIn, gradOut.Shape...)
	for i, g := range gradOut.Data {
		if r.mask[i] {
			in.Data[i] = g
		}
	}
	return in
}

// Params implements Layer.
func (*ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	out          []float64
	outT, gradIn *Tensor
}

// Name implements Layer.
func (*Tanh) Name() string { return "tanh" }

// Forward implements Layer.
func (t *Tanh) Forward(x *Tensor) *Tensor {
	out := ensure(&t.outT, x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.out = append(t.out[:0], out.Data...)
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *Tensor) *Tensor {
	in := ensure(&t.gradIn, gradOut.Shape...)
	for i, g := range gradOut.Data {
		in.Data[i] = g * (1 - t.out[i]*t.out[i])
	}
	return in
}

// Params implements Layer.
func (*Tanh) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	out          []float64
	outT, gradIn *Tensor
}

// Name implements Layer.
func (*Sigmoid) Name() string { return "sigmoid" }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *Tensor) *Tensor {
	out := ensure(&s.outT, x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.out = append(s.out[:0], out.Data...)
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(gradOut *Tensor) *Tensor {
	in := ensure(&s.gradIn, gradOut.Shape...)
	for i, g := range gradOut.Data {
		in.Data[i] = g * s.out[i] * (1 - s.out[i])
	}
	return in
}

// Params implements Layer.
func (*Sigmoid) Params() []*Param { return nil }

// Flatten collapses all axes after the batch axis.
type Flatten struct {
	inShape          []int
	outView, gradInV *Tensor
}

// Name implements Layer.
func (*Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(x *Tensor) *Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	batch := x.Shape[0]
	return viewInto(&f.outView, x, batch, len(x.Data)/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *Tensor) *Tensor {
	return viewInto(&f.gradInV, gradOut, f.inShape...)
}

// Params implements Layer.
func (*Flatten) Params() []*Param { return nil }
