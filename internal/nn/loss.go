package nn

import (
	"fmt"
	"math"
)

// Loss computes a scalar training loss and the gradient of the loss with
// respect to the network output (averaged over the batch).
type Loss interface {
	// Name identifies the loss.
	Name() string
	// Forward returns the mean loss for logits/outputs y against targets.
	// The target encoding is loss-specific.
	Forward(y *Tensor, targets []int) float64
	// Backward returns dLoss/dy for the most recent Forward.
	Backward() *Tensor
}

// SoftmaxCrossEntropy is the softmax + negative log-likelihood loss over
// class logits. It accepts outputs of shape [N, C] or [B, T, C] (flattened
// to [B*T, C]); targets are class indices, one per row, with -1 marking
// positions to ignore (sequence padding).
type SoftmaxCrossEntropy struct {
	probs   []float64
	targets []int
	rows    int
	classes int
	shape   []int
	counted int
	grad    *Tensor
}

// Name implements Loss.
func (*SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Forward implements Loss.
func (s *SoftmaxCrossEntropy) Forward(y *Tensor, targets []int) float64 {
	classes := y.Shape[len(y.Shape)-1]
	rows := y.Len() / classes
	if len(targets) != rows {
		panic(fmt.Sprintf("nn: xent: %d targets for %d rows", len(targets), rows))
	}
	s.rows, s.classes = rows, classes
	s.shape = append(s.shape[:0], y.Shape...)
	s.targets = append(s.targets[:0], targets...)
	if cap(s.probs) < y.Len() {
		s.probs = make([]float64, y.Len())
	}
	s.probs = s.probs[:y.Len()]

	total := 0.0
	s.counted = 0
	for r := 0; r < rows; r++ {
		row := y.Data[r*classes : (r+1)*classes]
		probs := s.probs[r*classes : (r+1)*classes]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - max)
			probs[j] = e
			sum += e
		}
		for j := range probs {
			probs[j] /= sum
		}
		if t := targets[r]; t >= 0 {
			if t >= classes {
				panic(fmt.Sprintf("nn: xent: target %d out of %d classes", t, classes))
			}
			total += -math.Log(math.Max(probs[t], 1e-300))
			s.counted++
		}
	}
	if s.counted == 0 {
		return 0
	}
	return total / float64(s.counted)
}

// Backward implements Loss.
func (s *SoftmaxCrossEntropy) Backward() *Tensor {
	grad := ensure(&s.grad, s.shape...)
	if s.counted == 0 {
		return grad
	}
	inv := 1.0 / float64(s.counted)
	for r := 0; r < s.rows; r++ {
		t := s.targets[r]
		if t < 0 {
			continue
		}
		probs := s.probs[r*s.classes : (r+1)*s.classes]
		out := grad.Data[r*s.classes : (r+1)*s.classes]
		for j, p := range probs {
			out[j] = p * inv
		}
		out[t] -= inv
	}
	return grad
}

// Perplexity converts a mean cross-entropy (nats) to perplexity — the
// quality metric of the PTB benchmark.
func Perplexity(meanXent float64) float64 { return math.Exp(meanXent) }

// MSE is the mean squared error loss over flat outputs; targets index into
// a caller-provided table via SetTargetValues, or more simply targets are
// ignored and explicit values are set.
type MSE struct {
	y      *Tensor
	values []float64
	grad   *Tensor
}

// Name implements Loss.
func (*MSE) Name() string { return "mse" }

// SetTargetValues provides the regression targets (same length as the
// output tensor) before calling Forward.
func (m *MSE) SetTargetValues(v []float64) { m.values = v }

// Forward implements Loss; the targets argument is unused (regression
// targets come from SetTargetValues).
func (m *MSE) Forward(y *Tensor, _ []int) float64 {
	if len(m.values) != y.Len() {
		panic(fmt.Sprintf("nn: mse: %d target values for %d outputs", len(m.values), y.Len()))
	}
	m.y = y
	sum := 0.0
	for i, v := range y.Data {
		d := v - m.values[i]
		sum += d * d
	}
	return sum / float64(y.Len())
}

// Backward implements Loss.
func (m *MSE) Backward() *Tensor {
	grad := ensure(&m.grad, m.y.Shape...)
	inv := 2.0 / float64(m.y.Len())
	for i, v := range m.y.Data {
		grad.Data[i] = (v - m.values[i]) * inv
	}
	return grad
}

// Accuracy returns the fraction of rows of logits [N, C] whose argmax
// matches the target class.
func Accuracy(y *Tensor, targets []int) float64 {
	classes := y.Shape[len(y.Shape)-1]
	rows := y.Len() / classes
	if rows == 0 {
		return math.NaN()
	}
	correct := 0
	for r := 0; r < rows; r++ {
		row := y.Data[r*classes : (r+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == targets[r] {
			correct++
		}
	}
	return float64(correct) / float64(rows)
}
