package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// SimpleRNN is a tanh recurrence over [B, T, In] producing the full hidden
// sequence [B, T, H]: h_t = tanh(x_t Wx + h_{t-1} Wh + b).
type SimpleRNN struct {
	In, Hidden int
	Wx         *Param // [In, H]
	Wh         *Param // [H, H]
	B          *Param // [H]

	x           *Tensor
	hs          []float64 // cached hidden states, [B, T, H]
	out, gradIn *Tensor
	dhNext, da  []float64 // BPTT scratch
}

// NewSimpleRNN creates the recurrence with Glorot init.
func NewSimpleRNN(name string, in, hidden int, rng *rand.Rand) *SimpleRNN {
	r := &SimpleRNN{
		In:     in,
		Hidden: hidden,
		Wx:     newParam(name+".Wx", in, hidden),
		Wh:     newParam(name+".Wh", hidden, hidden),
		B:      newParam(name+".b", hidden),
	}
	initUniform(rng, r.Wx.W, in, hidden)
	initUniform(rng, r.Wh.W, hidden, hidden)
	return r
}

// Name implements Layer.
func (r *SimpleRNN) Name() string { return r.Wx.Name[:len(r.Wx.Name)-3] }

// Forward implements Layer.
func (r *SimpleRNN) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != r.In {
		panic(fmt.Sprintf("nn: rnn %s: input shape %v, want [B, T, %d]", r.Name(), x.Shape, r.In))
	}
	r.x = x
	batch, T, H := x.Shape[0], x.Shape[1], r.Hidden
	out := ensure(&r.out, batch, T, H)
	for b := 0; b < batch; b++ {
		var prev []float64
		for t := 0; t < T; t++ {
			xRow := x.Data[(b*T+t)*r.In : (b*T+t+1)*r.In]
			hRow := out.Data[(b*T+t)*H : (b*T+t+1)*H]
			copy(hRow, r.B.W)
			for i, xv := range xRow {
				if xv == 0 {
					continue
				}
				w := r.Wx.W[i*H : (i+1)*H]
				for j := range hRow {
					hRow[j] += xv * w[j]
				}
			}
			for i, hv := range prev {
				if hv == 0 {
					continue
				}
				w := r.Wh.W[i*H : (i+1)*H]
				for j := range hRow {
					hRow[j] += hv * w[j]
				}
			}
			for j := range hRow {
				hRow[j] = math.Tanh(hRow[j])
			}
			prev = hRow
		}
	}
	r.hs = out.Data
	return out
}

// Backward implements Layer (truncated BPTT over the full sequence).
func (r *SimpleRNN) Backward(gradOut *Tensor) *Tensor {
	x := r.x
	batch, T, H := x.Shape[0], x.Shape[1], r.Hidden
	gradIn := ensure(&r.gradIn, batch, T, r.In)
	for b := 0; b < batch; b++ {
		dhNext := scratch(&r.dhNext, H)
		for t := T - 1; t >= 0; t-- {
			h := r.hs[(b*T+t)*H : (b*T+t+1)*H]
			da := scratch(&r.da, H)
			for j := 0; j < H; j++ {
				dh := gradOut.Data[(b*T+t)*H+j] + dhNext[j]
				da[j] = dh * (1 - h[j]*h[j])
				r.B.G[j] += da[j]
			}
			xRow := x.Data[(b*T+t)*r.In : (b*T+t+1)*r.In]
			giRow := gradIn.Data[(b*T+t)*r.In : (b*T+t+1)*r.In]
			for i, xv := range xRow {
				w := r.Wx.W[i*H : (i+1)*H]
				wg := r.Wx.G[i*H : (i+1)*H]
				sum := 0.0
				for j, dv := range da {
					wg[j] += xv * dv
					sum += w[j] * dv
				}
				giRow[i] = sum
			}
			for j := range dhNext {
				dhNext[j] = 0
			}
			if t > 0 {
				hPrev := r.hs[(b*T+t-1)*H : (b*T+t)*H]
				for i, hv := range hPrev {
					w := r.Wh.W[i*H : (i+1)*H]
					wg := r.Wh.G[i*H : (i+1)*H]
					sum := 0.0
					for j, dv := range da {
						wg[j] += hv * dv
						sum += w[j] * dv
					}
					dhNext[i] = sum
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (r *SimpleRNN) Params() []*Param { return []*Param{r.Wx, r.Wh, r.B} }

// LSTM is a single-layer long short-term memory recurrence over
// [B, T, In] producing [B, T, H] — the architecture of the paper's PTB
// and AN4 benchmarks. Gate pre-activations are packed as [i, f, g, o]
// blocks of size H.
type LSTM struct {
	In, Hidden int
	Wx         *Param // [In, 4H]
	Wh         *Param // [H, 4H]
	B          *Param // [4H]

	x     *Tensor
	hs    []float64 // [B, T, H] hidden states
	cs    []float64 // [B, T, H] cell states
	gates []float64 // [B, T, 4H] post-nonlinearity gate values

	out, gradIn          *Tensor
	aBuf, daBuf          []float64 // gate pre-activation / BPTT scratch
	dhNextBuf, dcNextBuf []float64
}

// NewLSTM creates the cell with Glorot init and forget-gate bias 1 (the
// standard trick for stable early training).
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     newParam(name+".Wx", in, 4*hidden),
		Wh:     newParam(name+".Wh", hidden, 4*hidden),
		B:      newParam(name+".b", 4*hidden),
	}
	initUniform(rng, l.Wx.W, in, hidden)
	initUniform(rng, l.Wh.W, hidden, hidden)
	for j := hidden; j < 2*hidden; j++ {
		l.B.W[j] = 1 // forget gate
	}
	return l
}

// Name implements Layer.
func (l *LSTM) Name() string { return l.Wx.Name[:len(l.Wx.Name)-3] }

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward implements Layer.
func (l *LSTM) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != l.In {
		panic(fmt.Sprintf("nn: lstm %s: input shape %v, want [B, T, %d]", l.Name(), x.Shape, l.In))
	}
	l.x = x
	batch, T, H := x.Shape[0], x.Shape[1], l.Hidden
	H4 := 4 * H
	out := ensure(&l.out, batch, T, H)
	l.hs = out.Data
	l.cs = scratch(&l.cs, batch*T*H)
	l.gates = scratch(&l.gates, batch*T*H4)
	a := scratch(&l.aBuf, H4)
	for b := 0; b < batch; b++ {
		var hPrev, cPrev []float64
		for t := 0; t < T; t++ {
			xRow := x.Data[(b*T+t)*l.In : (b*T+t+1)*l.In]
			copy(a, l.B.W)
			for i, xv := range xRow {
				if xv == 0 {
					continue
				}
				w := l.Wx.W[i*H4 : (i+1)*H4]
				for j := range a {
					a[j] += xv * w[j]
				}
			}
			if hPrev != nil {
				for i, hv := range hPrev {
					if hv == 0 {
						continue
					}
					w := l.Wh.W[i*H4 : (i+1)*H4]
					for j := range a {
						a[j] += hv * w[j]
					}
				}
			}
			gate := l.gates[(b*T+t)*H4 : (b*T+t+1)*H4]
			h := out.Data[(b*T+t)*H : (b*T+t+1)*H]
			c := l.cs[(b*T+t)*H : (b*T+t+1)*H]
			for j := 0; j < H; j++ {
				ig := sigmoid(a[j])
				fg := sigmoid(a[H+j])
				gg := math.Tanh(a[2*H+j])
				og := sigmoid(a[3*H+j])
				gate[j], gate[H+j], gate[2*H+j], gate[3*H+j] = ig, fg, gg, og
				cv := ig * gg
				if cPrev != nil {
					cv += fg * cPrev[j]
				}
				c[j] = cv
				h[j] = og * math.Tanh(cv)
			}
			hPrev, cPrev = h, c
		}
	}
	return out
}

// Backward implements Layer (full BPTT).
func (l *LSTM) Backward(gradOut *Tensor) *Tensor {
	x := l.x
	batch, T, H := x.Shape[0], x.Shape[1], l.Hidden
	H4 := 4 * H
	gradIn := ensure(&l.gradIn, batch, T, l.In)
	da := scratch(&l.daBuf, H4)
	for b := 0; b < batch; b++ {
		dhNext := scratch(&l.dhNextBuf, H)
		dcNext := scratch(&l.dcNextBuf, H)
		for t := T - 1; t >= 0; t-- {
			gate := l.gates[(b*T+t)*H4 : (b*T+t+1)*H4]
			c := l.cs[(b*T+t)*H : (b*T+t+1)*H]
			var cPrev []float64
			if t > 0 {
				cPrev = l.cs[(b*T+t-1)*H : (b*T+t)*H]
			}
			for j := 0; j < H; j++ {
				ig, fg, gg, og := gate[j], gate[H+j], gate[2*H+j], gate[3*H+j]
				tc := math.Tanh(c[j])
				dh := gradOut.Data[(b*T+t)*H+j] + dhNext[j]
				dc := dcNext[j] + dh*og*(1-tc*tc)
				dog := dh * tc
				dig := dc * gg
				dgg := dc * ig
				var dfg float64
				if cPrev != nil {
					dfg = dc * cPrev[j]
					dcNext[j] = dc * fg
				} else {
					dcNext[j] = 0
				}
				da[j] = dig * ig * (1 - ig)
				da[H+j] = dfg * fg * (1 - fg)
				da[2*H+j] = dgg * (1 - gg*gg)
				da[3*H+j] = dog * og * (1 - og)
				l.B.G[j] += da[j]
				l.B.G[H+j] += da[H+j]
				l.B.G[2*H+j] += da[2*H+j]
				l.B.G[3*H+j] += da[3*H+j]
			}
			xRow := x.Data[(b*T+t)*l.In : (b*T+t+1)*l.In]
			giRow := gradIn.Data[(b*T+t)*l.In : (b*T+t+1)*l.In]
			for i, xv := range xRow {
				w := l.Wx.W[i*H4 : (i+1)*H4]
				wg := l.Wx.G[i*H4 : (i+1)*H4]
				sum := 0.0
				for j, dv := range da {
					wg[j] += xv * dv
					sum += w[j] * dv
				}
				giRow[i] = sum
			}
			for j := range dhNext {
				dhNext[j] = 0
			}
			if t > 0 {
				hPrev := l.hs[(b*T+t-1)*H : (b*T+t)*H]
				for i, hv := range hPrev {
					w := l.Wh.W[i*H4 : (i+1)*H4]
					wg := l.Wh.G[i*H4 : (i+1)*H4]
					sum := 0.0
					for j, dv := range da {
						wg[j] += hv * dv
						sum += w[j] * dv
					}
					dhNext[i] = sum
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
