package nn

import (
	"fmt"
	"math/rand"
)

// Conv2D is a 2-D convolution (stride 1, valid padding) over inputs of
// shape [B, C, H, W] with kernels [OutC, C, K, K], producing
// [B, OutC, H-K+1, W-K+1].
type Conv2D struct {
	InC, OutC, K int
	W            *Param // [OutC, InC, K, K]
	B            *Param // [OutC]

	x           *Tensor
	out, gradIn *Tensor
}

// NewConv2D creates a convolution with Glorot-uniform kernels.
func NewConv2D(name string, inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC:  inC,
		OutC: outC,
		K:    k,
		W:    newParam(name+".W", outC, inC, k, k),
		B:    newParam(name+".b", outC),
	}
	initUniform(rng, c.W.W, inC*k*k, outC*k*k)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.W.Name[:len(c.W.Name)-2] }

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: conv %s: input shape %v, want [B, %d, H, W]", c.Name(), x.Shape, c.InC))
	}
	c.x = x
	batch, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := h-c.K+1, w-c.K+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv %s: input %dx%d smaller than kernel %d", c.Name(), h, w, c.K))
	}
	out := ensure(&c.out, batch, c.OutC, oh, ow)
	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.W[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bias
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							xRow := x.Data[((b*c.InC+ic)*h+oy+ky)*w+ox:]
							wRow := c.W.W[((oc*c.InC+ic)*c.K+ky)*c.K:]
							for kx := 0; kx < c.K; kx++ {
								sum += xRow[kx] * wRow[kx]
							}
						}
					}
					out.Data[((b*c.OutC+oc)*oh+oy)*ow+ox] = sum
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *Tensor) *Tensor {
	x := c.x
	batch, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := h-c.K+1, w-c.K+1
	gradIn := ensure(&c.gradIn, batch, c.InC, h, w)
	for b := 0; b < batch; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gradOut.Data[((b*c.OutC+oc)*oh+oy)*ow+ox]
					if g == 0 {
						continue
					}
					c.B.G[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							xRow := x.Data[((b*c.InC+ic)*h+oy+ky)*w+ox:]
							wRow := c.W.W[((oc*c.InC+ic)*c.K+ky)*c.K:]
							wgRow := c.W.G[((oc*c.InC+ic)*c.K+ky)*c.K:]
							giRow := gradIn.Data[((b*c.InC+ic)*h+oy+ky)*w+ox:]
							for kx := 0; kx < c.K; kx++ {
								wgRow[kx] += g * xRow[kx]
								giRow[kx] += g * wRow[kx]
							}
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool2D is 2x2 max pooling with stride 2 over [B, C, H, W]; odd
// trailing rows/columns are dropped (floor semantics).
type MaxPool2D struct {
	argmax      []int
	inShape     []int
	out, gradIn *Tensor
}

// Name implements Layer.
func (*MaxPool2D) Name() string { return "maxpool2" }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: maxpool: input shape %v, want [B, C, H, W]", x.Shape))
	}
	m.inShape = append(m.inShape[:0], x.Shape...)
	batch, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/2, w/2
	out := ensure(&m.out, batch, ch, oh, ow)
	m.argmax = m.argmax[:0]
	for b := 0; b < batch; b++ {
		for c := 0; c < ch; c++ {
			base := (b*ch + c) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (2*oy)*w + 2*ox
					best := x.Data[bestIdx]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := base + (2*oy+dy)*w + 2*ox + dx
							if x.Data[idx] > best {
								best = x.Data[idx]
								bestIdx = idx
							}
						}
					}
					out.Data[((b*ch+c)*oh+oy)*ow+ox] = best
					m.argmax = append(m.argmax, bestIdx)
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(gradOut *Tensor) *Tensor {
	gradIn := ensure(&m.gradIn, m.inShape...)
	for i, src := range m.argmax {
		gradIn.Data[src] += gradOut.Data[i]
	}
	return gradIn
}

// Params implements Layer.
func (*MaxPool2D) Params() []*Param { return nil }
