package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsDisabledAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	s := tr.Begin(SpanStep, 0, -1, -1, 3)
	s.End()
	tr.Count(CounterSentBytes, 0, 1, 64)
	if !New().Enabled() {
		t.Error("sink-less tracer should still report enabled")
	}
}

func TestAggregatorCounterTotalsAreExact(t *testing.T) {
	agg := NewAggregator()
	tr := New(agg)
	for i := 0; i < 100; i++ {
		tr.Count(CounterSentMessages, 0, 1, 1)
		tr.Count(CounterSentBytes, 0, 1, int64(i))
		tr.Count(CounterRecvMessages, 0, 1, 1)
		tr.Count(CounterRecvBytes, 0, 1, int64(2*i))
	}
	tr.Count(CounterSentMessages, 1, 2, 5)
	tr.Count(CounterSteps, 0, -1, 7)
	tr.Count(CounterRecvWaitNanos, 2, 0, 1_500_000_000)
	// A zero delta must be dropped, not recorded as a touched link.
	tr.Count(CounterSentBytes, 8, 9, 0)

	if got := agg.Total(CounterSentMessages); got != 105 {
		t.Errorf("sent messages = %d, want 105", got)
	}
	if got := agg.Total(CounterSentBytes); got != 4950 {
		t.Errorf("sent bytes = %d, want 4950", got)
	}
	if got := agg.Total(CounterRecvBytes); got != 9900 {
		t.Errorf("recv bytes = %d, want 9900", got)
	}
	lc := agg.LinkTotals(0, 1)
	if lc.SentMessages != 100 || lc.SentBytes != 4950 || lc.RecvMessages != 100 || lc.RecvBytes != 9900 {
		t.Errorf("link 0->1 = %+v", lc)
	}
	if got := agg.LinkTotals(1, 2).SentMessages; got != 5 {
		t.Errorf("link 1->2 sent messages = %d, want 5", got)
	}
	if nc := agg.NodeTotals(0); nc.Steps != 7 {
		t.Errorf("node 0 steps = %d, want 7", nc.Steps)
	}
	if nc := agg.NodeTotals(2); nc.RecvWaitNanos != 1_500_000_000 {
		t.Errorf("node 2 recv wait = %d", nc.RecvWaitNanos)
	}
	// RecvWaitNanos is node-attributed, so only the two traffic links
	// exist, sorted by (from, to).
	links := agg.LinksSeen()
	if len(links) != 2 || links[0] != (Link{0, 1}) || links[1] != (Link{1, 2}) {
		t.Errorf("LinksSeen = %v (want sorted 0->1, 1->2)", links)
	}
	agg.Reset()
	if agg.Total(CounterSentMessages) != 0 || len(agg.LinksSeen()) != 0 {
		t.Error("Reset left state behind")
	}
}

// TestAggregatorSpanPercentiles feeds a known duration distribution and
// pins the nearest-rank percentiles.
func TestAggregatorSpanPercentiles(t *testing.T) {
	agg := NewAggregator()
	for i := int64(1); i <= 100; i++ {
		agg.Emit(Event{Type: EventSpan, Span: SpanExchange, DurNanos: i})
	}
	spans := agg.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d span summaries, want 1", len(spans))
	}
	s := spans[0]
	if s.Kind != SpanExchange || s.Count != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.Sum != 5050*time.Nanosecond {
		t.Errorf("sum = %v, want 5050ns", s.Sum)
	}
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 || s.Max != 100 {
		t.Errorf("p50/p90/p99/max = %v/%v/%v/%v, want 50/90/99/100 ns", s.P50, s.P90, s.P99, s.Max)
	}
}

// TestAggregatorRingIsBounded overflows the sample ring: counts and sums
// stay exact over every event while percentiles cover the newest window.
func TestAggregatorRingIsBounded(t *testing.T) {
	agg := NewAggregator()
	n := int64(3 * ringCap)
	var sum int64
	for i := int64(1); i <= n; i++ {
		agg.Emit(Event{Type: EventSpan, Span: SpanStep, DurNanos: i})
		sum += i
	}
	s := agg.Spans()[0]
	if s.Count != n || s.Sum != time.Duration(sum) || s.Max != time.Duration(n) {
		t.Errorf("count/sum/max = %d/%v/%v, want exact over all %d events", s.Count, s.Sum, s.Max, n)
	}
	// The ring holds the last ringCap values: 2*ringCap+1 .. 3*ringCap.
	if s.P50 < time.Duration(2*ringCap) {
		t.Errorf("p50 = %v predates the retained window", s.P50)
	}
}

func TestSpanEmitsDuration(t *testing.T) {
	agg := NewAggregator()
	tr := New(agg)
	sp := tr.Begin(SpanCompress, 3, -1, 2, 9)
	time.Sleep(time.Millisecond)
	sp.End()
	s := agg.Spans()
	if len(s) != 1 || s[0].Kind != SpanCompress || s[0].Count != 1 {
		t.Fatalf("spans = %+v", s)
	}
	if s[0].Sum < time.Millisecond {
		t.Errorf("duration %v did not cover the sleep", s[0].Sum)
	}
}

// TestPrometheusRoundTrip renders an aggregate and parses it back:
// integer counters must survive exactly, durations in seconds.
func TestPrometheusRoundTrip(t *testing.T) {
	agg := NewAggregator()
	tr := New(agg)
	tr.Count(CounterSentMessages, 0, 1, 3)
	tr.Count(CounterSentBytes, 0, 1, 1<<40+7) // big enough to catch float rendering
	tr.Count(CounterRecvMessages, 1, 0, 2)
	tr.Count(CounterRecvBytes, 1, 0, 512)
	tr.Count(CounterSteps, 0, -1, 4)
	tr.Count(CounterRecvWaitNanos, 0, 1, 2_500_000_000)
	tr.Count(CounterWireSentBytes, 0, 1, 99)
	agg.Emit(Event{Type: EventSpan, Span: SpanStep, DurNanos: 1_000_000})

	var buf bytes.Buffer
	if err := agg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseProm(buf.String())
	if err != nil {
		t.Fatalf("rendered metrics do not parse: %v\n%s", err, buf.String())
	}
	want := map[string]float64{
		"sidco_sent_messages_total":                       3,
		"sidco_sent_bytes_total":                          1<<40 + 7,
		"sidco_recv_messages_total":                       2,
		"sidco_recv_bytes_total":                          512,
		"sidco_steps_total":                               4,
		"sidco_wire_sent_bytes_total":                     99,
		"sidco_recv_wait_seconds_total":                   2.5,
		`sidco_link_sent_messages_total{from="0",to="1"}`: 3,
		`sidco_link_sent_bytes_total{from="0",to="1"}`:    1<<40 + 7,
		`sidco_link_recv_bytes_total{from="1",to="0"}`:    512,
		`sidco_node_steps_total{node="0"}`:                4,
		`sidco_span_duration_seconds_count{span="step"}`:  1,
		`sidco_span_duration_seconds_sum{span="step"}`:    0.001,
	}
	for k, v := range want {
		if got, ok := m[k]; !ok || got != v {
			t.Errorf("%s = %v (present %v), want %v", k, got, ok, v)
		}
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	if _, err := ParseProm("metric_without_value"); err == nil {
		t.Error("valueless line should error")
	}
	if _, err := ParseProm("metric not_a_number"); err == nil {
		t.Error("non-numeric value should error")
	}
	m, err := ParseProm("# comment\n\nm 1\n")
	if err != nil || m["m"] != 1 {
		t.Errorf("m = %v, err %v", m, err)
	}
}

// TestJSONLSchema asserts every emitted line is valid JSON matching the
// documented v2 schema: a leading meta record, then strictly-decodable
// span/counter/virtual lines — parsed back through DecodeJSONL, the
// consumer's view, which rejects unknown fields and kinds.
func TestJSONLSchema(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLForNode(&buf, 2)
	tr := New(j)
	sp := tr.Begin(SpanEncode, 2, -1, 5, 11)
	sp.End()
	tr.CountSeq(CounterSentBytes, 0, 3, 4096, 12, 11)
	tr.Virtual(SpanSend, 0, 3, -1, 11, 12, 4096, 976.5625, 1953.125)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want meta+span+counter+virtual:\n%s", len(lines), buf.String())
	}
	meta, evs, err := DecodeJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if meta.Schema != SchemaVersion || meta.Node != 2 || meta.GOOS == "" || meta.GOARCH == "" ||
		meta.GoVersion == "" || meta.EpochNanos == 0 {
		t.Errorf("meta = %+v", meta)
	}
	if len(evs) != 3 {
		t.Fatalf("decoded %d events, want 3", len(evs))
	}
	span, counter, virt := evs[0], evs[1], evs[2]
	if span.Type != EventSpan || span.Span != SpanEncode || span.Node != 2 || span.Peer != -1 ||
		span.Chunk != 5 || span.Step != 11 || span.DurNanos < 0 || span.WallNanos == 0 || span.Seq != -1 {
		t.Errorf("span event = %+v", span)
	}
	if counter.Type != EventCounter || counter.Counter != CounterSentBytes || counter.Node != 0 ||
		counter.Peer != 3 || counter.Value != 4096 || counter.Seq != 12 || counter.Step != 11 {
		t.Errorf("counter event = %+v", counter)
	}
	// The virtual window's float64 nanoseconds must round-trip exactly:
	// dyadic virtual clocks stay bit-identical through the stream.
	if virt.Type != EventVirtual || virt.Span != SpanSend || virt.Node != 0 || virt.Peer != 3 ||
		virt.Seq != 12 || virt.Step != 11 || virt.Value != 4096 ||
		virt.VStartNanos != 976.5625 || virt.VEndNanos != 1953.125 {
		t.Errorf("virtual event = %+v", virt)
	}
}

// TestDecodeJSONLRejects pins the strict-decode failure modes: streams
// without a meta record, unknown schema versions, unknown line types,
// unknown kinds, and unknown fields must all error rather than decode
// loosely.
func TestDecodeJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"empty stream":     "",
		"no meta record":   `{"ts":1,"type":"counter","counter":"sent_bytes","node":0,"peer":1,"step":-1,"seq":-1,"value":1}` + "\n",
		"unknown schema":   `{"type":"meta","schema":99,"node":0,"goos":"linux","goarch":"amd64","go":"go1.24","epoch_ns":1}` + "\n",
		"duplicate meta":   validMeta + validMeta,
		"unknown type":     validMeta + `{"ts":1,"type":"gauge","node":0,"peer":-1}` + "\n",
		"unknown counter":  validMeta + `{"ts":1,"type":"counter","counter":"bogus","node":0,"peer":1,"step":-1,"seq":-1,"value":1}` + "\n",
		"unknown span":     validMeta + `{"ts":1,"type":"span","span":"bogus","node":0,"peer":-1,"chunk":-1,"step":-1,"dur_ns":1}` + "\n",
		"unknown field":    validMeta + `{"ts":1,"type":"counter","counter":"sent_bytes","node":0,"peer":1,"step":-1,"seq":-1,"value":1,"extra":true}` + "\n",
		"meta extra field": `{"type":"meta","schema":2,"node":0,"goos":"linux","goarch":"amd64","go":"go1.24","epoch_ns":1,"extra":1}` + "\n",
	}
	for name, stream := range cases {
		if _, _, err := DecodeJSONL(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, _, err := DecodeJSONL(strings.NewReader(validMeta)); err != nil {
		t.Errorf("meta-only stream should decode: %v", err)
	}
}

const validMeta = `{"type":"meta","schema":2,"node":0,"goos":"linux","goarch":"amd64","go":"go1.24","epoch_ns":1}` + "\n"

// TestAggregatorDroppedSamplesCounter pins the satellite: once the span
// ring overflows, the overwritten sample count is exact, surfaces in
// SpanSummary.Dropped and renders as
// sidco_span_samples_dropped_total{span=...} so truncated percentiles
// are visible to a scrape.
func TestAggregatorDroppedSamplesCounter(t *testing.T) {
	agg := NewAggregator()
	const extra = 37
	for i := 0; i < ringCap+extra; i++ {
		agg.Emit(Event{Type: EventSpan, Span: SpanStep, DurNanos: 1})
	}
	agg.Emit(Event{Type: EventSpan, Span: SpanApply, DurNanos: 1}) // under the ring bound
	var step, apply SpanSummary
	for _, s := range agg.Spans() {
		switch s.Kind {
		case SpanStep:
			step = s
		case SpanApply:
			apply = s
		}
	}
	if step.Dropped != extra {
		t.Errorf("step dropped = %d, want %d", step.Dropped, extra)
	}
	if apply.Dropped != 0 {
		t.Errorf("apply dropped = %d, want 0", apply.Dropped)
	}
	var buf bytes.Buffer
	if err := agg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseProm(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := m[`sidco_span_samples_dropped_total{span="step"}`]; got != extra {
		t.Errorf(`sidco_span_samples_dropped_total{span="step"} = %v, want %d`, got, extra)
	}
	if got, ok := m[`sidco_span_samples_dropped_total{span="apply"}`]; !ok || got != 0 {
		t.Errorf(`sidco_span_samples_dropped_total{span="apply"} = %v (present %v), want 0`, got, ok)
	}
}

// errWriter fails after n writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&errWriter{n: 0})
	tr := New(j)
	for i := 0; i < 2000; i++ { // enough to overflow the bufio buffer
		tr.Count(CounterSentBytes, 0, 1, 1)
	}
	if err := j.Flush(); err == nil {
		t.Error("write failure should surface from Flush")
	}
}

// TestConcurrentEmit hammers one tracer from many goroutines into both
// built-in sinks; totals must come out exact. Run under -race in CI,
// this is the concurrency contract's regression test.
func TestConcurrentEmit(t *testing.T) {
	agg := NewAggregator()
	j := NewJSONL(io.Discard)
	tr := New(agg, j)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.Begin(SpanCollective, g, -1, -1, int64(i))
				tr.Count(CounterSentMessages, g, (g+1)%goroutines, 1)
				tr.Count(CounterSentBytes, g, (g+1)%goroutines, 8)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := agg.Total(CounterSentMessages); got != goroutines*per {
		t.Errorf("sent messages = %d, want %d", got, goroutines*per)
	}
	if got := agg.Total(CounterSentBytes); got != goroutines*per*8 {
		t.Errorf("sent bytes = %d, want %d", got, goroutines*per*8)
	}
	spans := agg.Spans()
	if len(spans) != 1 || spans[0].Count != goroutines*per {
		t.Errorf("spans = %+v, want %d collective spans", spans, goroutines*per)
	}
	for g := 0; g < goroutines; g++ {
		if lc := agg.LinkTotals(g, (g+1)%goroutines); lc.SentMessages != per {
			t.Errorf("link %d->%d = %d messages, want %d", g, (g+1)%goroutines, lc.SentMessages, per)
		}
	}
}

func TestMonotonicNeverDecreases(t *testing.T) {
	prev := Monotonic()
	for i := 0; i < 1000; i++ {
		now := Monotonic()
		if now < prev {
			t.Fatalf("monotonic clock went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}
