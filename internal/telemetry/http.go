package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves an Aggregator over HTTP — the live-metrics endpoint
// cmd/sidco-node mounts per process:
//
//	/metrics      Prometheus plaintext exposition (WritePrometheus)
//	/healthz      200 "ok" liveness probe
//	/debug/pprof  the standard net/http/pprof profiles
//
// The aggregator is scraped live (its lock makes concurrent emits and
// scrapes safe), so a dashboard can watch a run in flight.
func Handler(agg *Aggregator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		agg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
